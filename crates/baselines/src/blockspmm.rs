//! Block-SpMM: cuSPARSE's Tensor-Core SpMM over the Blocked-Ellpack
//! format (`CUSPARSE_FORMAT_BLOCKED_ELL`).
//!
//! Every stored (and padded) `bs × bs` block runs a dense Tensor-Core
//! multiply — extremely efficient when the sparsity is block-structured,
//! and extremely wasteful on the unstructured GNN/SC matrices the paper
//! targets, where [`dtc_formats::BellMatrix::fill_ratio`] collapses and the
//! ELL padding can exhaust device memory (Fig 12: DTC wins 1.14–23.51×).

use crate::util::{
    check_spmm_dims, distinct_col_count, estimate_b_hit_rate, push_b_row_sectors, sectors_per_b_row,
};
use crate::SpmmKernel;
use dtc_formats::tf32::round_to_tf32;
use dtc_formats::{BellMatrix, CsrMatrix, DenseMatrix, FormatError};
use dtc_sim::occupancy::KernelResources;
use dtc_sim::{Device, KernelTrace, SectorStream, TbWork};

/// Block-SpMM kernel model over BELL.
#[derive(Debug, Clone)]
pub struct BlockSpmm {
    bell: BellMatrix,
    distinct_cols: usize,
}

impl BlockSpmm {
    /// Converts to Blocked-Ellpack with the given block size (the paper
    /// evaluates 32 and 64), bounded by device memory.
    ///
    /// # Errors
    ///
    /// Propagates [`FormatError::OutOfMemory`] when the padded BELL storage
    /// exceeds `device_bytes`, and [`FormatError::NotSupported`] for a zero
    /// block size.
    pub fn new(a: &CsrMatrix, block_size: usize, device_bytes: u64) -> Result<Self, FormatError> {
        Ok(BlockSpmm {
            bell: BellMatrix::from_csr(a, block_size, device_bytes)?,
            distinct_cols: distinct_col_count(a),
        })
    }

    /// The underlying BELL representation.
    pub fn bell(&self) -> &BellMatrix {
        &self.bell
    }
}

impl SpmmKernel for BlockSpmm {
    fn name(&self) -> &str {
        "Block-SpMM"
    }

    fn rows(&self) -> usize {
        self.bell.rows()
    }

    fn cols(&self) -> usize {
        self.bell.cols()
    }

    fn nnz(&self) -> usize {
        self.bell.nnz()
    }

    fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        check_spmm_dims(self.rows(), self.cols(), b)?;
        let n = b.cols();
        let bs = self.bell.block_size();
        let mut c = DenseMatrix::zeros(self.rows(), n);
        for br in 0..self.bell.num_block_rows() {
            for slot in 0..self.bell.blocks_per_row() {
                let Some(bc) = self.bell.slot_block_col(br, slot) else { continue };
                let vals = self.bell.slot_values(br, slot);
                let mask = self.bell.slot_mask(br, slot);
                for lr in 0..bs {
                    let gr = br * bs + lr;
                    if gr >= self.rows() {
                        break;
                    }
                    let out = c.row_mut(gr);
                    for lc in 0..bs {
                        let v = vals[lr * bs + lc];
                        if !mask[lr * bs + lc] {
                            // ELL padding costs time, not numerics; stored
                            // entries (even explicit zeros) must multiply
                            // so 0 x Inf = NaN propagates like everywhere
                            // else in the lineup.
                            continue;
                        }
                        let gc = bc as usize * bs + lc;
                        if gc >= self.cols() {
                            continue;
                        }
                        let a_v = round_to_tf32(v);
                        for (o, &bv) in out.iter_mut().zip(b.row(gc)) {
                            *o += a_v * round_to_tf32(bv);
                        }
                    }
                }
            }
        }
        Ok(c)
    }

    fn trace(&self, n: usize, device: &Device, record_b_addrs: bool) -> KernelTrace {
        let n_f = n as f64;
        let bs = self.bell.block_size() as f64;
        let mut trace = KernelTrace::new(4, 8);
        trace.set_resources(KernelResources {
            warps_per_block: 8,
            registers_per_thread: 48,
            shared_memory_per_block: 24 * 1024,
        });
        let b_row_sectors = sectors_per_b_row(n);
        // Dense TC work per stored slot: (bs/16)·(bs/8)·(N/8) m16n8k8.
        let hmma_per_slot = (bs / 16.0) * (bs / 8.0) * (n_f / 8.0);
        let mut total_b_sectors = 0.0;
        let slots_per_row = self.bell.blocks_per_row() as f64;
        for br in 0..self.bell.num_block_rows() {
            let mut stored = 0.0;
            let mut addrs = SectorStream::new();
            for slot in 0..self.bell.blocks_per_row() {
                if let Some(bc) = self.bell.slot_block_col(br, slot) {
                    stored += 1.0;
                    if record_b_addrs {
                        for lc in 0..self.bell.block_size() {
                            let gc = bc as usize * self.bell.block_size() + lc;
                            if gc < self.cols() {
                                push_b_row_sectors(&mut addrs, gc, n);
                            }
                        }
                    }
                }
            }
            let lsu_b = stored * bs * b_row_sectors;
            total_b_sectors += lsu_b;
            let tb = TbWork {
                alu_ops: slots_per_row * n_f / 8.0 + 4.0,
                // A blocks are dense: bs*bs floats per slot — the uniform
                // ELL loop reads padding slots too ("the necessity to pad
                // and fill all rows of blocks", §5.2).
                lsu_a_sectors: slots_per_row * bs * bs * 4.0 / 32.0,
                lsu_b_sectors: lsu_b,
                // GEMM-style staging of A and B tiles through shared memory.
                smem_ops: slots_per_row * (bs * n_f / 32.0 + bs * bs / 32.0),
                hmma_ops: slots_per_row * hmma_per_slot,
                hmma_count: slots_per_row * hmma_per_slot * 2.0,
                epilogue_sectors: bs * b_row_sectors,
                iters: slots_per_row,
                overlap_a_fetch: true, // cuSPARSE GEMM-grade pipelining
                b_stream: addrs,
                ..TbWork::default()
            };
            tb.debug_validate();
            trace.push(tb);
        }
        trace.assumed_l2_hit_rate =
            estimate_b_hit_rate(self.distinct_cols, total_b_sectors.max(1.0), n, device);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::{power_law, uniform};
    use dtc_formats::tf32::TF32_UNIT_ROUNDOFF;

    #[test]
    fn matches_reference_within_tf32() {
        let a = uniform(70, 70, 400, 1);
        let b = DenseMatrix::from_fn(70, 8, |r, c| ((r + c) % 9) as f32 * 0.2);
        let k = BlockSpmm::new(&a, 32, u64::MAX).unwrap();
        let c = k.execute(&b).unwrap();
        let reference = a.spmm_reference(&b).unwrap();
        assert!(c.max_abs_diff(&reference) < 30.0 * TF32_UNIT_ROUNDOFF);
    }

    #[test]
    fn oom_propagates() {
        let a = power_law(256, 256, 8.0, 2.0, 2);
        assert!(matches!(BlockSpmm::new(&a, 32, 1000), Err(FormatError::OutOfMemory { .. })));
    }

    #[test]
    fn hmma_work_scales_with_padding_not_nnz() {
        // Same nnz, one matrix scattered (many blocks), one clustered
        // (few blocks): the scattered one does far more TC work.
        let scattered: Vec<(usize, usize, f32)> =
            (0..64).map(|i| (i, (i * 37) % 64, 1.0)).collect();
        let clustered: Vec<(usize, usize, f32)> = (0..64).map(|i| (i % 16, i % 16, 1.0)).collect();
        let device = Device::rtx4090();
        let ks =
            BlockSpmm::new(&CsrMatrix::from_triplets(64, 64, &scattered).unwrap(), 16, u64::MAX)
                .unwrap();
        let kc =
            BlockSpmm::new(&CsrMatrix::from_triplets(64, 64, &clustered).unwrap(), 16, u64::MAX)
                .unwrap();
        let ts = ks.trace(128, &device, false);
        let tc = kc.trace(128, &device, false);
        assert!(ts.total_hmma_ops() > tc.total_hmma_ops() * 2.0);
    }

    #[test]
    fn block_size_64_pads_more() {
        let a = power_law(256, 256, 4.0, 2.2, 3);
        let k32 = BlockSpmm::new(&a, 32, u64::MAX).unwrap();
        let k64 = BlockSpmm::new(&a, 64, u64::MAX).unwrap();
        assert!(k64.bell().fill_ratio() <= k32.bell().fill_ratio());
    }
}
