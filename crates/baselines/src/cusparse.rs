//! cuSPARSE-style CSR row-split SpMM on CUDA cores — the paper's red-line
//! normalizer (`CUSPARSE_SPMM_ALG_DEFAULT` over `CUSPARSE_FORMAT_CSR`).

use crate::util::{
    check_spmm_dims, distinct_col_count, estimate_b_hit_rate, n_tiles, push_b_tile_sectors, N_TILE,
};
use crate::SpmmKernel;
use dtc_formats::{CsrMatrix, DenseMatrix, FormatError};
use dtc_sim::occupancy::KernelResources;
use dtc_sim::{Device, KernelTrace, SectorStream, TbWork};

/// Rows handled by one thread block (row-split).
const ROWS_PER_TB: usize = 16;

/// cuSPARSE-like CSR SpMM.
///
/// Row-split parallelization: each thread block owns a contiguous strip of
/// rows; warps iterate over the strip's non-zeros performing FP32 FMAs on
/// CUDA cores, fetching one full B row per non-zero (no cross-row reuse —
/// the structural weakness TC condensing attacks).
#[derive(Debug, Clone)]
pub struct CusparseSpmm {
    a: CsrMatrix,
    distinct_cols: usize,
}

impl CusparseSpmm {
    /// Prepares the kernel for a sparse matrix (CSR is consumed as-is; the
    /// "format conversion" of cuSPARSE is free).
    pub fn new(a: &CsrMatrix) -> Self {
        CusparseSpmm { distinct_cols: distinct_col_count(a), a: a.clone() }
    }

    /// Borrow of the underlying matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.a
    }
}

impl SpmmKernel for CusparseSpmm {
    fn name(&self) -> &str {
        "cuSPARSE-SpMM"
    }

    fn rows(&self) -> usize {
        self.a.rows()
    }

    fn cols(&self) -> usize {
        self.a.cols()
    }

    fn nnz(&self) -> usize {
        self.a.nnz()
    }

    fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        check_spmm_dims(self.a.rows(), self.a.cols(), b)?;
        // Full-FP32 CUDA-core path: the CSR reference *is* this kernel.
        self.a.spmm_reference(b)
    }

    fn trace(&self, n: usize, device: &Device, record_b_addrs: bool) -> KernelTrace {
        // 8 blocks x 8 warps would claim 64 warp slots against Ada's 48; the
        // register-file-legal occupancy for this launch shape is 6.
        let mut trace = KernelTrace::new(6, 8);
        trace.set_resources(KernelResources {
            warps_per_block: 8,
            registers_per_thread: 32,
            shared_memory_per_block: 2048,
        });
        let mut total_b_sectors = 0.0;
        // 2-D grid: row strips × N tiles of 32 columns (cuSPARSE splits the
        // dense dimension across thread blocks too).
        let tiles = n_tiles(n);
        for tile in 0..tiles {
            let w = (n - tile * N_TILE).min(N_TILE) as f64;
            let tile_sectors = (w * 4.0 / 32.0).max(1.0);
            for start in (0..self.a.rows()).step_by(ROWS_PER_TB) {
                let end = (start + ROWS_PER_TB).min(self.a.rows());
                let mut nnz_tb = 0usize;
                let mut max_row = 0usize;
                let mut addrs = SectorStream::new();
                for r in start..end {
                    let len = self.a.row_len(r);
                    nnz_tb += len;
                    max_row = max_row.max(len);
                    if record_b_addrs {
                        for &c in self.a.row_entries(r).0 {
                            push_b_tile_sectors(
                                &mut addrs,
                                c as usize,
                                n,
                                (tile * N_TILE) as u64 / 8,
                                tile_sectors as u64,
                            );
                        }
                    }
                }
                let l = nnz_tb as f64;
                // Unaligned row starts cost extra sectors — exactly the
                // inefficiency Sputnik's reverse-offset alignment removes.
                let lsu_b = l * tile_sectors * 1.25;
                total_b_sectors += lsu_b;
                let tb = TbWork {
                    // One warp-FFMA per 32 output elements per non-zero.
                    fp_ops: l * w / 32.0,
                    // Address arithmetic per FMA strip plus row-pointer math.
                    alu_ops: l * w / 64.0 + l / 8.0 + 2.0,
                    // A data: 8 bytes (value + column) per non-zero,
                    // re-read by every N tile, with unaligned-segment
                    // overhead.
                    lsu_a_sectors: l / 4.0 * 1.5,
                    lsu_b_sectors: lsu_b,
                    epilogue_sectors: (end - start) as f64 * tile_sectors,
                    // The longest row serializes its warp's loop.
                    iters: max_row as f64,
                    b_stream: addrs,
                    ..TbWork::default()
                };
                tb.debug_validate();
                trace.push(tb);
            }
        }
        trace.assumed_l2_hit_rate =
            estimate_b_hit_rate(self.distinct_cols, total_b_sectors, n, device);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::{long_row, uniform};

    #[test]
    fn matches_reference_exactly() {
        let a = uniform(100, 80, 600, 1);
        let b = DenseMatrix::from_fn(80, 16, |r, c| (r + c) as f32 * 0.1);
        let k = CusparseSpmm::new(&a);
        assert_eq!(k.execute(&b).unwrap(), a.spmm_reference(&b).unwrap());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = uniform(10, 10, 20, 2);
        let k = CusparseSpmm::new(&a);
        assert!(k.execute(&DenseMatrix::zeros(11, 4)).is_err());
    }

    #[test]
    fn trace_covers_all_rows() {
        let a = uniform(100, 100, 500, 3);
        let t = CusparseSpmm::new(&a).trace(128, &Device::rtx4090(), false);
        assert_eq!(t.num_tbs(), 100usize.div_ceil(ROWS_PER_TB) * (128 / N_TILE));
        // No tensor-core work on the CUDA-core path.
        assert_eq!(t.total_hmma_ops(), 0.0);
    }

    #[test]
    fn b_traffic_proportional_to_nnz() {
        let device = Device::rtx4090();
        let small = CusparseSpmm::new(&uniform(64, 64, 256, 4)).trace(128, &device, false);
        let large = CusparseSpmm::new(&uniform(64, 64, 1024, 4)).trace(128, &device, false);
        let s: f64 = small.iter_tbs().map(|t| t.lsu_b_sectors).sum();
        let l: f64 = large.iter_tbs().map(|t| t.lsu_b_sectors).sum();
        assert!(l > s * 3.0);
    }

    #[test]
    fn long_rows_serialize() {
        let a = long_row(32, 512, 200.0, 0.3, 5);
        let t = CusparseSpmm::new(&a).trace(128, &Device::rtx4090(), false);
        assert!(t.iter_tbs().any(|tb| tb.iters > 100.0));
    }

    #[test]
    fn recorded_addresses_match_accounting() {
        let a = uniform(32, 32, 128, 6);
        let t = CusparseSpmm::new(&a).trace(128, &Device::rtx4090(), true);
        for i in 0..t.num_tbs() {
            // Accounted traffic = recorded useful sectors x 1.25 alignment
            // overhead.
            assert!((t.stream(i).len() as f64 * 1.25 - t.tb(i).lsu_b_sectors).abs() < 1e-9);
        }
    }
}
