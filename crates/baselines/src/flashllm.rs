//! Flash-LLM (Xia et al., VLDB'24): Load-as-Sparse-Compute-as-Dense SpMM
//! for unstructured *weight* sparsity in LLM inference.
//!
//! The design reduces memory traffic, not computation: A tiles are loaded
//! in a compressed form (with double buffering) but the Tensor Cores
//! compute the *full dense* `M×K×N` product. Superb at 60–90 % sparsity on
//! tall-and-skinny problems; on the paper's >95 %-sparse GNN matrices the
//! dense compute is 8–15× wasted (Table 4), and format conversion stages
//! the matrix densely — OOM on YeastH-scale inputs.

use crate::util::{check_spmm_dims, distinct_col_count, estimate_b_hit_rate, sectors_per_b_row};
use crate::SpmmKernel;
use dtc_formats::tf32::round_to_tf32;
use dtc_formats::{CsrMatrix, DenseMatrix, FormatError};
use dtc_sim::occupancy::KernelResources;
use dtc_sim::{Device, KernelTrace, TbWork};

/// Rows per output tile (one thread block).
const TILE_M: usize = 128;

/// Flash-LLM version: v1 and v2 differ in the sparse-encoding pipeline
/// (Table 4 lists both; their times differ by a few percent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlashLlmVersion {
    /// First release.
    #[default]
    V1,
    /// Tuned second release.
    V2,
}

/// Flash-LLM kernel model.
#[derive(Debug, Clone)]
pub struct FlashLlmSpmm {
    a: CsrMatrix,
    distinct_cols: usize,
    version: FlashLlmVersion,
}

impl FlashLlmSpmm {
    /// Prepares the kernel. Format conversion materializes the matrix
    /// densely first (the paper: "Flash-LLM performs format conversion on
    /// matrices stored in uncompressed form ... making it prone to OOM").
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::OutOfMemory`] when the `M×K×4`-byte dense
    /// staging exceeds `device_bytes`.
    pub fn new(a: &CsrMatrix, device_bytes: u64) -> Result<Self, FormatError> {
        Self::with_version(a, device_bytes, FlashLlmVersion::V1)
    }

    /// Prepares a specific release version.
    ///
    /// # Errors
    ///
    /// Same as [`FlashLlmSpmm::new`].
    pub fn with_version(
        a: &CsrMatrix,
        device_bytes: u64,
        version: FlashLlmVersion,
    ) -> Result<Self, FormatError> {
        let staging = a.rows() as u64 * a.cols() as u64 * 4;
        if staging > device_bytes {
            return Err(FormatError::OutOfMemory {
                required_bytes: staging,
                available_bytes: device_bytes,
            });
        }
        Ok(FlashLlmSpmm { distinct_cols: distinct_col_count(a), a: a.clone(), version })
    }

    /// The release version being modeled.
    pub fn version(&self) -> FlashLlmVersion {
        self.version
    }
}

impl SpmmKernel for FlashLlmSpmm {
    fn name(&self) -> &str {
        match self.version {
            FlashLlmVersion::V1 => "Flash-LLM(v1)",
            FlashLlmVersion::V2 => "Flash-LLM(v2)",
        }
    }

    fn rows(&self) -> usize {
        self.a.rows()
    }

    fn cols(&self) -> usize {
        self.a.cols()
    }

    fn nnz(&self) -> usize {
        self.a.nnz()
    }

    fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        check_spmm_dims(self.rows(), self.cols(), b)?;
        // Compute-as-dense on Tensor Cores: TF32 inputs, FP32 accumulate.
        // The reconstructed zeros contribute exactly 0, so only real
        // non-zeros affect numerics.
        let n = b.cols();
        let mut c = DenseMatrix::zeros(self.rows(), n);
        for (r, col, v) in self.a.iter() {
            let a_v = round_to_tf32(v);
            let b_row = b.row(col);
            let out = c.row_mut(r);
            for (o, &bv) in out.iter_mut().zip(b_row) {
                *o += a_v * round_to_tf32(bv);
            }
        }
        Ok(c)
    }

    fn trace(&self, n: usize, device: &Device, _record_b_addrs: bool) -> KernelTrace {
        let n_f = n as f64;
        let k_f = self.a.cols() as f64;
        // Heavy shared-memory tiling limits occupancy.
        let mut trace = KernelTrace::new(3, 8);
        trace.set_resources(KernelResources {
            warps_per_block: 8,
            registers_per_thread: 64,
            shared_memory_per_block: 32 * 1024,
        });
        let b_row_sectors = sectors_per_b_row(n);
        // Dense-compute cost per 128-row tile: (128/16)·(K/8)·(N/8) HMMA.
        let hmma_per_tile = (TILE_M as f64 / 16.0) * (k_f / 8.0) * (n_f / 8.0);
        let version_factor = match self.version {
            FlashLlmVersion::V1 => 1.0,
            FlashLlmVersion::V2 => 1.04, // v2's extra decode stage (Table 4)
        };
        let mut total_b_sectors = 0.0;
        for start in (0..self.a.rows()).step_by(TILE_M) {
            let end = (start + TILE_M).min(self.a.rows());
            let tile_nnz: usize = (start..end).map(|r| self.a.row_len(r)).sum();
            // Load-as-sparse: ~6 bytes per non-zero (value + packed index).
            let lsu_a = tile_nnz as f64 * 6.0 / 32.0;
            // B is streamed tile-by-tile over the whole K dimension.
            let lsu_b = k_f * b_row_sectors;
            total_b_sectors += lsu_b;
            let tb = TbWork {
                alu_ops: tile_nnz as f64 * 4.0 / 32.0 + k_f / 8.0,
                lsu_a_sectors: lsu_a,
                lsu_b_sectors: lsu_b,
                smem_ops: k_f * n_f / 64.0,
                hmma_ops: hmma_per_tile * version_factor,
                hmma_count: hmma_per_tile * 2.0 * version_factor,
                epilogue_sectors: TILE_M as f64 * b_row_sectors,
                iters: k_f / 8.0,
                overlap_a_fetch: true, // their double buffering
                ..TbWork::default()
            };
            tb.debug_validate();
            trace.push(tb);
        }
        trace.assumed_l2_hit_rate =
            estimate_b_hit_rate(self.distinct_cols, total_b_sectors.max(1.0), n, device);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::{dl_pruned, power_law};
    use dtc_formats::tf32::TF32_UNIT_ROUNDOFF;

    #[test]
    fn oom_on_big_matrices() {
        let a = power_law(4096, 4096, 3.0, 2.2, 31);
        // 4096^2*4 = 64 MiB staging vs a 32 MiB budget.
        assert!(matches!(
            FlashLlmSpmm::new(&a, 32 * 1024 * 1024),
            Err(FormatError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn matches_reference_within_tf32() {
        let a = dl_pruned(64, 64, 0.8, 32);
        let b = DenseMatrix::from_fn(64, 8, |r, c| ((r + c) % 5) as f32 * 0.4);
        let k = FlashLlmSpmm::new(&a, u64::MAX).unwrap();
        let c = k.execute(&b).unwrap();
        assert!(c.max_abs_diff(&a.spmm_reference(&b).unwrap()) < 30.0 * TF32_UNIT_ROUNDOFF);
    }

    #[test]
    fn dense_compute_independent_of_sparsity() {
        // Same shape, very different nnz: HMMA work identical
        // (compute-as-dense).
        let device = Device::rtx4090();
        let sparse = dl_pruned(128, 128, 0.95, 33);
        let denser = dl_pruned(128, 128, 0.5, 33);
        let ts = FlashLlmSpmm::new(&sparse, u64::MAX).unwrap().trace(64, &device, false);
        let td = FlashLlmSpmm::new(&denser, u64::MAX).unwrap().trace(64, &device, false);
        assert_eq!(ts.total_hmma_ops(), td.total_hmma_ops());
    }

    #[test]
    fn v2_slightly_different_from_v1() {
        let a = dl_pruned(128, 128, 0.8, 34);
        let device = Device::rtx4090();
        let v1 = FlashLlmSpmm::with_version(&a, u64::MAX, FlashLlmVersion::V1)
            .unwrap()
            .simulate(64, &device);
        let v2 = FlashLlmSpmm::with_version(&a, u64::MAX, FlashLlmVersion::V2)
            .unwrap()
            .simulate(64, &device);
        assert!(v2.time_ms >= v1.time_ms);
        assert!(v2.time_ms < v1.time_ms * 1.2);
    }
}
