//! HP-SpMM (Fan et al., IPDPS'23): hybrid-parallel CUDA-core SpMM for GNN
//! training.
//!
//! The paper cites it twice: as prior art on load imbalance (§2.2) and as
//! the recommended *light-overhead* system "for scenarios with varying
//! input sparse matrices in each SpMM execution" (§6) — it consumes CSR
//! directly, so there is no conversion to amortize.
//!
//! The hybrid-parallel strategy assigns short rows to warps in batches and
//! splits long rows across multiple warps, with the split threshold chosen
//! from the average row length.

use crate::util::{
    check_spmm_dims, distinct_col_count, estimate_b_hit_rate, n_tiles, push_b_tile_sectors, N_TILE,
};
use crate::SpmmKernel;
use dtc_formats::{CsrMatrix, DenseMatrix, FormatError};
use dtc_sim::occupancy::KernelResources;
use dtc_sim::{Device, KernelTrace, SectorStream, TbWork};

/// Warp-batches of short rows / row-fragments per thread block.
const UNITS_PER_TB: usize = 8;

/// HP-SpMM kernel model.
#[derive(Debug, Clone)]
pub struct HpSpmm {
    a: CsrMatrix,
    distinct_cols: usize,
    /// Non-zeros above which a row is split across warps.
    split_threshold: usize,
}

impl HpSpmm {
    /// Prepares the kernel: picks the hybrid split threshold from the
    /// average row length (1.5x the mean, at least one warp's worth), so
    /// rows in the heavy tail shatter into balanced fragments.
    pub fn new(a: &CsrMatrix) -> Self {
        let avg = if a.rows() == 0 { 0.0 } else { a.nnz() as f64 / a.rows() as f64 };
        HpSpmm {
            distinct_cols: distinct_col_count(a),
            split_threshold: ((avg * 1.5) as usize).max(32),
            a: a.clone(),
        }
    }

    /// The split threshold in effect.
    pub fn split_threshold(&self) -> usize {
        self.split_threshold
    }

    /// The per-row work units (row fragments) the hybrid strategy creates:
    /// short rows map to one unit; long rows shatter into
    /// `ceil(len / split_threshold)` units.
    pub fn work_units(&self) -> Vec<(u32, usize)> {
        let mut units = Vec::new();
        for r in 0..self.a.rows() {
            let len = self.a.row_len(r);
            if len == 0 {
                continue;
            }
            let pieces = len.div_ceil(self.split_threshold);
            let base = len / pieces;
            let mut rem = len % pieces;
            for _ in 0..pieces {
                let take = base + usize::from(rem > 0);
                rem = rem.saturating_sub(1);
                units.push((r as u32, take));
            }
        }
        units
    }
}

impl SpmmKernel for HpSpmm {
    fn name(&self) -> &str {
        "HP-SpMM"
    }

    fn rows(&self) -> usize {
        self.a.rows()
    }

    fn cols(&self) -> usize {
        self.a.cols()
    }

    fn nnz(&self) -> usize {
        self.a.nnz()
    }

    fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        check_spmm_dims(self.a.rows(), self.a.cols(), b)?;
        // CUDA-core FP32 path: identical sums to the reference (the split
        // fragments of a row add associatively in FP32 exactly because the
        // reference also walks the row left to right).
        self.a.spmm_reference(b)
    }

    fn trace(&self, n: usize, device: &Device, record_b_addrs: bool) -> KernelTrace {
        // 8 blocks x 8 warps would claim 64 warp slots against Ada's 48; the
        // register-file-legal occupancy for this launch shape is 6.
        let mut trace = KernelTrace::new(6, 8);
        trace.set_resources(KernelResources {
            warps_per_block: 8,
            registers_per_thread: 32,
            shared_memory_per_block: 4096,
        });
        let mut total_b_sectors = 0.0;
        let units = self.work_units();
        let tiles = n_tiles(n);
        for tile in 0..tiles {
            let w = (n - tile * N_TILE).min(N_TILE) as f64;
            let tile_sectors = (w * 4.0 / 32.0).max(1.0);
            for chunk in units.chunks(UNITS_PER_TB) {
                let l: f64 = chunk.iter().map(|&(_, len)| len as f64).sum();
                let max_unit = chunk.iter().map(|&(_, len)| len).max().unwrap_or(0);
                let mut addrs = SectorStream::new();
                if record_b_addrs {
                    // Fragment boundaries do not matter for traffic; record
                    // per-row ranges.
                    for &(r, _) in chunk {
                        for &c in self.a.row_entries(r as usize).0.iter().take(max_unit) {
                            push_b_tile_sectors(
                                &mut addrs,
                                c as usize,
                                n,
                                (tile * N_TILE) as u64 / 8,
                                tile_sectors as u64,
                            );
                        }
                    }
                }
                let lsu_b = l * tile_sectors;
                total_b_sectors += lsu_b;
                let tb = TbWork {
                    fp_ops: l * w / 32.0,
                    // Hybrid dispatch costs a little more index math than
                    // Sputnik's fully aligned tiles, less than row-split.
                    alu_ops: l * w / 96.0 + l / 8.0 + 4.0,
                    lsu_a_sectors: l / 4.0,
                    lsu_b_sectors: lsu_b,
                    // Split rows combine partials with atomics.
                    atom_ops: chunk.iter().filter(|&&(_, len)| len >= self.split_threshold).count()
                        as f64
                        * w
                        / 32.0,
                    epilogue_sectors: chunk.len() as f64 * tile_sectors,
                    iters: max_unit as f64 / 4.0,
                    b_stream: addrs,
                    ..TbWork::default()
                };
                tb.debug_validate();
                trace.push(tb);
            }
        }
        trace.assumed_l2_hit_rate =
            estimate_b_hit_rate(self.distinct_cols, total_b_sectors.max(1.0), n, device);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CusparseSpmm;
    use dtc_formats::gen::{long_row, power_law, uniform};

    #[test]
    fn matches_reference() {
        let a = power_law(100, 100, 6.0, 2.2, 81);
        let b = DenseMatrix::from_fn(100, 8, |r, c| ((r + c) % 5) as f32 * 0.5);
        assert_eq!(HpSpmm::new(&a).execute(&b).unwrap(), a.spmm_reference(&b).unwrap());
    }

    #[test]
    fn work_units_cover_all_nonzeros() {
        let a = long_row(128, 512, 150.0, 1.2, 82);
        let k = HpSpmm::new(&a);
        let total: usize = k.work_units().iter().map(|&(_, len)| len).sum();
        assert_eq!(total, a.nnz());
        // Every unit respects the split threshold.
        for (_, len) in k.work_units() {
            assert!(len <= k.split_threshold());
        }
    }

    #[test]
    fn long_rows_are_split() {
        let a = long_row(64, 2048, 400.0, 1.0, 83);
        let k = HpSpmm::new(&a);
        let nonempty = (0..a.rows()).filter(|&r| a.row_len(r) > 0).count();
        assert!(k.work_units().len() > nonempty, "no splitting happened");
    }

    #[test]
    fn beats_cusparse_on_skewed_rows() {
        // The point of the hybrid strategy: balanced fragments.
        let a = long_row(1024, 1024, 200.0, 1.8, 84);
        let device = Device::rtx4090();
        let hp = HpSpmm::new(&a).simulate(128, &device).time_ms;
        let cus = CusparseSpmm::new(&a).simulate(128, &device).time_ms;
        assert!(hp < cus, "hp={hp} cus={cus}");
    }

    #[test]
    fn comparable_to_cusparse_on_uniform_rows() {
        let a = uniform(4096, 4096, 4096 * 8, 85);
        let device = Device::rtx4090();
        let hp = HpSpmm::new(&a).simulate(128, &device).time_ms;
        let cus = CusparseSpmm::new(&a).simulate(128, &device).time_ms;
        assert!(hp < cus * 1.2, "hp={hp} cus={cus}");
    }
}
