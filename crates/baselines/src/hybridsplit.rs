//! Hybrid dense/sparse splitting (Sun et al. HPEC'22, Dun et al. HPEC'23;
//! ASpT-style adaptive tiling): partition the matrix into a *dense part*
//! of heavily shared columns that Tensor Cores process efficiently, and a
//! *sparse residue* handled by CUDA cores.
//!
//! §2.2: "They employed a block-sparse routine to process dense parts with
//! TCs and CUDA cores for sparse segments, respectively. Our approach is
//! orthogonal to theirs and can enhance the performance of their dense
//! parts segment." This model lets that comparison be made concrete.

use crate::util::{
    check_spmm_dims, distinct_col_count, estimate_b_hit_rate, n_tiles, push_b_tile_sectors,
    sectors_per_b_row, N_TILE,
};
use crate::SpmmKernel;
use dtc_formats::tf32::round_to_tf32;
use dtc_formats::{Condensed, CsrMatrix, DenseMatrix, FormatError};
use dtc_sim::occupancy::KernelResources;
use dtc_sim::{Device, KernelTrace, SectorStream, TbWork};

/// Hybrid dense/sparse split SpMM.
#[derive(Debug, Clone)]
pub struct HybridSplitSpmm {
    /// Columns dense enough (per 16-row window) for the TC path.
    dense: CsrMatrix,
    /// Everything else, on CUDA cores.
    sparse: CsrMatrix,
    dense_condensed: Condensed,
    distinct_cols: usize,
    threshold: usize,
}

impl HybridSplitSpmm {
    /// Splits with the default density threshold: a window-column goes to
    /// the dense part when at least half its 16 rows use it.
    pub fn new(a: &CsrMatrix) -> Self {
        Self::with_threshold(a, 8)
    }

    /// Splits with an explicit per-window column-count threshold
    /// (`1..=16`; higher = stricter dense part).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero or exceeds 16.
    pub fn with_threshold(a: &CsrMatrix, threshold: usize) -> Self {
        assert!((1..=16).contains(&threshold), "threshold must be in 1..=16");
        let condensed = Condensed::from_csr(a);
        let mut dense_t: Vec<(usize, usize, f32)> = Vec::new();
        let mut sparse_t: Vec<(usize, usize, f32)> = Vec::new();
        for w in condensed.windows() {
            // Count entries per compressed column of this window.
            let mut per_col = vec![0u8; w.unique_cols.len()];
            for e in &w.entries {
                per_col[e.comp_col as usize] += 1;
            }
            for e in &w.entries {
                let row = w.start_row + e.local_row as usize;
                let entry = (row, e.orig_col as usize, e.value);
                if per_col[e.comp_col as usize] as usize >= threshold {
                    dense_t.push(entry);
                } else {
                    sparse_t.push(entry);
                }
            }
        }
        let dense = CsrMatrix::from_triplets(a.rows(), a.cols(), &dense_t)
            .expect("split entries stay in range");
        let sparse = CsrMatrix::from_triplets(a.rows(), a.cols(), &sparse_t)
            .expect("split entries stay in range");
        HybridSplitSpmm {
            dense_condensed: Condensed::from_csr(&dense),
            dense,
            sparse,
            distinct_cols: distinct_col_count(a),
            threshold,
        }
    }

    /// Fraction of the non-zeros routed to the Tensor-Core dense part.
    pub fn dense_fraction(&self) -> f64 {
        let total = self.dense.nnz() + self.sparse.nnz();
        if total == 0 {
            0.0
        } else {
            self.dense.nnz() as f64 / total as f64
        }
    }

    /// The split threshold in effect.
    pub fn threshold(&self) -> usize {
        self.threshold
    }
}

impl SpmmKernel for HybridSplitSpmm {
    fn name(&self) -> &str {
        "HybridSplit"
    }

    fn rows(&self) -> usize {
        self.dense.rows()
    }

    fn cols(&self) -> usize {
        self.dense.cols()
    }

    fn nnz(&self) -> usize {
        self.dense.nnz() + self.sparse.nnz()
    }

    fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        check_spmm_dims(self.rows(), self.cols(), b)?;
        // Dense part on Tensor Cores (TF32), residue on CUDA cores (FP32).
        let n = b.cols();
        let mut c = DenseMatrix::zeros(self.rows(), n);
        for (r, col, v) in self.dense.iter() {
            let a_v = round_to_tf32(v);
            let out = c.row_mut(r);
            for (o, &bv) in out.iter_mut().zip(b.row(col)) {
                *o += a_v * round_to_tf32(bv);
            }
        }
        let rem = self.sparse.spmm_reference(b)?;
        for (o, &rv) in c.as_mut_slice().iter_mut().zip(rem.as_slice()) {
            *o += rv;
        }
        Ok(c)
    }

    fn trace(&self, n: usize, device: &Device, record_b_addrs: bool) -> KernelTrace {
        let n_f = n as f64;
        let mut trace = KernelTrace::new(6, 8);
        trace.set_resources(KernelResources {
            warps_per_block: 8,
            registers_per_thread: 40,
            shared_memory_per_block: 12 * 1024,
        });
        let b_row_sectors = sectors_per_b_row(n);
        let mut total_b_sectors = 0.0;

        // Dense part: one TB per row window of TC blocks (dense blocks by
        // construction, so the per-block efficiency is high).
        for w in self.dense_condensed.windows() {
            if w.nnz() == 0 {
                continue;
            }
            let nblk = w.num_blocks() as f64;
            let mut addrs = SectorStream::new();
            if record_b_addrs {
                for block in w.blocks() {
                    for &c in block.cols {
                        push_b_tile_sectors(&mut addrs, c as usize, n, 0, b_row_sectors as u64);
                    }
                }
            }
            let lsu_b: f64 = w.blocks().map(|b| b.cols.len() as f64 * b_row_sectors).sum();
            total_b_sectors += lsu_b;
            let tb = TbWork {
                alu_ops: nblk * n_f / 4.0,
                lsu_a_sectors: w.nnz() as f64 * 6.0 / 32.0,
                lsu_b_sectors: lsu_b,
                smem_ops: nblk * n_f / 16.0,
                hmma_ops: nblk * n_f / 8.0,
                hmma_count: nblk * n_f / 4.0,
                epilogue_sectors: 16.0 * b_row_sectors,
                iters: nblk,
                overlap_a_fetch: true,
                b_stream: addrs,
                ..TbWork::default()
            };
            tb.debug_validate();
            trace.push(tb);
        }
        // Sparse residue: cuSPARSE-style row strips x N tiles.
        let tiles = n_tiles(n);
        for tile in 0..tiles {
            let w_cols = (n - tile * N_TILE).min(N_TILE) as f64;
            let tile_sectors = (w_cols * 4.0 / 32.0).max(1.0);
            for start in (0..self.sparse.rows()).step_by(32) {
                let end = (start + 32).min(self.sparse.rows());
                let l: f64 = (start..end).map(|r| self.sparse.row_len(r) as f64).sum();
                if l == 0.0 {
                    continue;
                }
                let lsu_b = l * tile_sectors;
                total_b_sectors += lsu_b;
                let tb = TbWork {
                    fp_ops: l * w_cols / 32.0,
                    alu_ops: l * w_cols / 64.0,
                    lsu_a_sectors: l / 4.0,
                    lsu_b_sectors: lsu_b,
                    epilogue_sectors: (end - start) as f64 * tile_sectors,
                    iters: l / 8.0,
                    ..TbWork::default()
                };
                tb.debug_validate();
                trace.push(tb);
            }
        }
        trace.assumed_l2_hit_rate =
            estimate_b_hit_rate(self.distinct_cols, total_b_sectors.max(1.0), n, device);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::{community_with_shuffle, power_law, uniform};
    use dtc_formats::tf32::TF32_UNIT_ROUNDOFF;

    #[test]
    fn split_preserves_all_nonzeros() {
        let a = power_law(128, 128, 8.0, 2.1, 91);
        let k = HybridSplitSpmm::new(&a);
        assert_eq!(k.nnz(), a.nnz());
    }

    #[test]
    fn matches_reference_within_tf32() {
        let a = community_with_shuffle(96, 96, 6, 8.0, 0.9, 0.2, 92);
        let b = DenseMatrix::from_fn(96, 8, |r, c| ((r * 3 + c) % 7) as f32 * 0.3);
        let k = HybridSplitSpmm::new(&a);
        let diff = k.execute(&b).unwrap().max_abs_diff(&a.spmm_reference(&b).unwrap());
        assert!(diff < 40.0 * TF32_UNIT_ROUNDOFF, "diff={diff}");
    }

    #[test]
    fn dense_fraction_tracks_structure() {
        // Shared columns (everyone hits col 0-7) -> mostly dense part.
        let t: Vec<(usize, usize, f32)> =
            (0..64).flat_map(|r| (0..8).map(move |c| (r, c, 1.0))).collect();
        let shared = CsrMatrix::from_triplets(64, 64, &t).unwrap();
        assert!(HybridSplitSpmm::new(&shared).dense_fraction() > 0.9);
        // Uniform scatter -> almost everything lands in the residue.
        let scattered = uniform(256, 4096, 1024, 93);
        assert!(HybridSplitSpmm::new(&scattered).dense_fraction() < 0.2);
    }

    #[test]
    fn threshold_is_monotone() {
        let a = community_with_shuffle(256, 256, 16, 10.0, 0.9, 0.2, 94);
        let loose = HybridSplitSpmm::with_threshold(&a, 2).dense_fraction();
        let strict = HybridSplitSpmm::with_threshold(&a, 14).dense_fraction();
        assert!(loose >= strict, "loose={loose} strict={strict}");
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_rejected() {
        HybridSplitSpmm::with_threshold(&uniform(8, 8, 8, 95), 0);
    }

    #[test]
    fn simulates_end_to_end() {
        let a = community_with_shuffle(256, 256, 16, 10.0, 0.9, 0.2, 96);
        let r = HybridSplitSpmm::new(&a).simulate(128, &Device::rtx4090());
        assert!(r.time_ms > 0.0);
        assert!(r.hmma_count > 0.0, "dense part must use Tensor Cores");
        assert!(r.num_tbs > 0);
    }
}
