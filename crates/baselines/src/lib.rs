//! Baseline SpMM implementations and the shared kernel interface.
//!
//! Every SpMM engine in the workspace — the eight baselines here and
//! DTC-SpMM itself in `dtc-core` — implements [`SpmmKernel`]: an *exact*
//! numeric execution on the CPU (with TF32 rounding wherever the real
//! kernel would use Tensor Cores) plus a lowering to a
//! [`dtc_sim::KernelTrace`] that the GPU simulator turns into time,
//! pipeline utilization and instruction counts.
//!
//! The baselines (§5 of the paper):
//!
//! | Kernel | Hardware path | Format | Notes |
//! |---|---|---|---|
//! | [`CusparseSpmm`] | CUDA cores | CSR | the red-line normalizer |
//! | [`TcgnnSpmm`] | Tensor Cores (WMMA) | TCF | state-of-the-art TC general SpMM |
//! | [`SputnikSpmm`] | CUDA cores | CSR (1-D tiling) | int32 index limit |
//! | [`HpSpmm`] | CUDA cores | CSR (hybrid-parallel) | the paper's light-overhead alternative (§6) |
//! | [`HybridSplitSpmm`] | TC + CUDA cores | dense/sparse split | the §2.2 "orthogonal" approach |
//! | [`SparseTirSpmm`] | CUDA cores | composable ELL+CSR | compile step |
//! | [`BlockSpmm`] | Tensor Cores | Blocked-Ellpack | padding OOM |
//! | [`VectorSparseSpmm`] | Tensor Cores | CVSE | vector tiles |
//! | [`FlashLlmSpmm`] | Tensor Cores | tiled sparse | load-as-sparse-compute-as-dense |
//! | [`SpartaSpmm`] | sparse TC + CUDA | 2:4 + CSR | ≤ 50 000 rows/cols |
//!
//! # Example
//!
//! ```
//! use dtc_baselines::{CusparseSpmm, SpmmKernel};
//! use dtc_formats::{CsrMatrix, DenseMatrix};
//! use dtc_sim::Device;
//!
//! # fn main() -> Result<(), dtc_formats::FormatError> {
//! let a = CsrMatrix::from_triplets(32, 32, &[(0, 1, 2.0), (17, 30, -1.0)])?;
//! let kernel = CusparseSpmm::new(&a);
//! let c = kernel.execute(&DenseMatrix::ones(32, 64))?;
//! assert_eq!(c.get(0, 0), 2.0); // row 0 of A has a single 2.0
//! assert_eq!(c.get(1, 0), 0.0); // row 1 of A is empty
//! let report = kernel.simulate(64, &Device::rtx4090());
//! assert!(report.time_ms > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blockspmm;
mod cusparse;
mod flashllm;
mod hpspmm;
mod hybridsplit;
mod sparsetir;
mod sparta;
mod sputnik;
mod tcgnn;
pub mod util;
mod vectorsparse;

pub use blockspmm::BlockSpmm;
pub use cusparse::CusparseSpmm;
pub use flashllm::{FlashLlmSpmm, FlashLlmVersion};
pub use hpspmm::HpSpmm;
pub use hybridsplit::HybridSplitSpmm;
pub use sparsetir::SparseTirSpmm;
pub use sparta::{SpartaSpmm, SPARTA_DEFAULT_LIMIT};
pub use sputnik::SputnikSpmm;
pub use tcgnn::TcgnnSpmm;
pub use vectorsparse::VectorSparseSpmm;

use dtc_formats::{DenseMatrix, FormatError};
use dtc_sim::{Device, KernelTrace, SimOptions, SimReport};

/// A complete SpMM engine: exact execution plus performance lowering.
pub trait SpmmKernel {
    /// Display name for tables and figures.
    fn name(&self) -> &str;

    /// Number of rows of the sparse operand (rows of the output).
    fn rows(&self) -> usize;

    /// Number of columns of the sparse operand (rows of the dense operand).
    fn cols(&self) -> usize;

    /// Number of structural non-zeros of the sparse operand.
    fn nnz(&self) -> usize;

    /// Exact SpMM: computes `C = A × B` with the numeric behaviour of the
    /// real kernel (TF32-rounded multiplicands on Tensor-Core paths).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::DimensionMismatch`] when `b.rows() != self.cols()`.
    fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, FormatError>;

    /// Lowers the kernel for an `N`-column dense operand into a
    /// per-thread-block performance trace. When `record_b_addrs` is set,
    /// the trace carries B-access sector addresses for L2 simulation.
    fn trace(&self, n: usize, device: &Device, record_b_addrs: bool) -> KernelTrace;

    /// Lowers and simulates in one call under explicit [`SimOptions`] —
    /// the single simulation entry point every engine shares. B-access
    /// addresses are recorded exactly when `options.simulate_l2` needs
    /// them. [`simulate`](Self::simulate) and
    /// [`simulate_with_l2`](Self::simulate_with_l2) are thin wrappers.
    fn simulate_with(&self, n: usize, device: &Device, options: &SimOptions) -> SimReport {
        dtc_sim::simulate(device, &self.trace(n, device, options.simulate_l2), options)
    }

    /// Convenience: lower and simulate in one call (no L2 simulation).
    fn simulate(&self, n: usize, device: &Device) -> SimReport {
        self.simulate_with(n, device, &SimOptions::default())
    }

    /// Convenience: lower with recorded addresses and simulate the L2.
    fn simulate_with_l2(&self, n: usize, device: &Device) -> SimReport {
        self.simulate_with(n, device, &SimOptions { simulate_l2: true, ..SimOptions::default() })
    }

    /// Total floating-point operations for an `N`-column SpMM: `2·N·NNZ`.
    fn flops(&self, n: usize) -> u64 {
        2 * n as u64 * self.nnz() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::{power_law, uniform};
    use dtc_formats::CsrMatrix;

    fn all_kernels(a: &CsrMatrix) -> Vec<Box<dyn SpmmKernel>> {
        vec![
            Box::new(CusparseSpmm::new(a)),
            Box::new(SputnikSpmm::new(a).unwrap()),
            Box::new(HpSpmm::new(a)),
            Box::new(HybridSplitSpmm::new(a)),
            Box::new(SparseTirSpmm::new(a)),
            Box::new(TcgnnSpmm::new(a).unwrap()),
            Box::new(BlockSpmm::new(a, 32, u64::MAX).unwrap()),
            Box::new(VectorSparseSpmm::new(a, 8).unwrap()),
            Box::new(FlashLlmSpmm::new(a, u64::MAX).unwrap()),
            Box::new(SpartaSpmm::new(a, 50_000).unwrap()),
        ]
    }

    /// All kernels must agree with the CSR reference within TF32 tolerance.
    #[test]
    fn all_kernels_match_reference() {
        let a = power_law(96, 96, 5.0, 2.2, 77);
        let b = DenseMatrix::from_fn(96, 32, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.25 - 1.0);
        let reference = a.spmm_reference(&b).unwrap();
        for k in all_kernels(&a) {
            let c = k.execute(&b).unwrap();
            let diff = c.max_abs_diff(&reference);
            assert!(
                diff <= 64.0 * 2.0 * dtc_formats::tf32::TF32_UNIT_ROUNDOFF + 1e-5,
                "{} deviates by {diff}",
                k.name()
            );
        }
    }

    /// Every kernel must produce a non-trivial trace that simulates.
    #[test]
    fn all_kernels_simulate() {
        let a = uniform(64, 64, 512, 5);
        let device = Device::rtx4090();
        for k in all_kernels(&a) {
            let r = k.simulate(128, &device);
            assert!(r.time_ms > 0.0, "{} produced zero time", k.name());
            assert!(r.num_tbs > 0, "{} launched no blocks", k.name());
            assert_eq!(k.flops(128), 2 * 128 * a.nnz() as u64, "{}", k.name());
        }
    }

    #[test]
    fn empty_matrix_executes() {
        let a = CsrMatrix::from_triplets(16, 16, &[]).unwrap();
        let b = DenseMatrix::ones(16, 8);
        let c = CusparseSpmm::new(&a).execute(&b).unwrap();
        assert_eq!(c.max_abs_diff(&DenseMatrix::zeros(16, 8)), 0.0);
    }

    /// L2 simulation path runs end to end for the kernels recording
    /// addresses.
    #[test]
    fn l2_simulation_produces_hit_rate() {
        let a = power_law(128, 128, 8.0, 2.0, 6);
        let device = Device::rtx4090();
        let r = CusparseSpmm::new(&a).simulate_with_l2(64, &device);
        let hit = r.l2_hit_rate.expect("cache simulated");
        assert!((0.0..=1.0).contains(&hit));
    }
}
