//! SparseTIR (Ye et al., ASPLOS'23): composable-format sparse compilation.
//!
//! SparseTIR lowers SpMM into a *composition* of formats: rows are bucketed
//! by length into power-of-two ELL buckets (padded, vectorized, perfectly
//! balanced) with a CSR residual for the longest rows. We reproduce the
//! bucketing transformation and the per-bucket kernel cost; the one-time
//! "compilation" cost is exposed via [`SparseTirSpmm::compile_cost_ms`].

use crate::util::{
    check_spmm_dims, distinct_col_count, estimate_b_hit_rate, n_tiles, push_b_tile_sectors, N_TILE,
};
use crate::SpmmKernel;
use dtc_formats::{CsrMatrix, DenseMatrix, FormatError};
use dtc_sim::occupancy::KernelResources;
use dtc_sim::{Device, KernelTrace, SectorStream, TbWork};

/// Widest ELL bucket; longer rows fall into the CSR residual.
const MAX_BUCKET_WIDTH: usize = 32;
/// Rows per thread block within a bucket.
const ROWS_PER_TB: usize = 32;

/// SparseTIR-like composable SpMM.
#[derive(Debug, Clone)]
pub struct SparseTirSpmm {
    a: CsrMatrix,
    distinct_cols: usize,
    /// Row indices per bucket (bucket b holds rows with
    /// `2^(b-1) < len <= 2^b`), plus a residual of long rows.
    buckets: Vec<Vec<u32>>,
    residual: Vec<u32>,
}

impl SparseTirSpmm {
    /// Runs the format-composition "compilation" for a matrix.
    pub fn new(a: &CsrMatrix) -> Self {
        let num_buckets = (MAX_BUCKET_WIDTH as f64).log2() as usize + 1; // widths 1,2,4,...,32
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); num_buckets];
        let mut residual = Vec::new();
        for r in 0..a.rows() {
            let len = a.row_len(r);
            if len == 0 {
                continue;
            }
            if len > MAX_BUCKET_WIDTH {
                residual.push(r as u32);
            } else {
                let b = (len.next_power_of_two().trailing_zeros()) as usize;
                buckets[b].push(r as u32);
            }
        }
        SparseTirSpmm { distinct_cols: distinct_col_count(a), a: a.clone(), buckets, residual }
    }

    /// Width (padded row length) of bucket `b`.
    fn bucket_width(b: usize) -> usize {
        1 << b
    }

    /// The one-time composition/compilation cost estimate, charged once per
    /// (matrix, N) pair in end-to-end comparisons.
    pub fn compile_cost_ms(&self) -> f64 {
        // Bucketing is a linear scan; TVM-side schedule tuning dominates in
        // practice — model a fixed cost plus a per-row term.
        2.0 + self.a.rows() as f64 * 2e-6
    }

    /// Rows assigned to each ELL bucket (for tests and diagnostics).
    pub fn bucket_sizes(&self) -> Vec<usize> {
        self.buckets.iter().map(Vec::len).collect()
    }

    /// Rows in the CSR residual.
    pub fn residual_len(&self) -> usize {
        self.residual.len()
    }
}

impl SpmmKernel for SparseTirSpmm {
    fn name(&self) -> &str {
        "SparseTIR"
    }

    fn rows(&self) -> usize {
        self.a.rows()
    }

    fn cols(&self) -> usize {
        self.a.cols()
    }

    fn nnz(&self) -> usize {
        self.a.nnz()
    }

    fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        check_spmm_dims(self.a.rows(), self.a.cols(), b)?;
        // Bucketed execution is a permutation of the same FP32 FMAs.
        self.a.spmm_reference(b)
    }

    fn trace(&self, n: usize, device: &Device, record_b_addrs: bool) -> KernelTrace {
        // 8 blocks x 8 warps would claim 64 warp slots against Ada's 48; the
        // register-file-legal occupancy for this launch shape is 6.
        let mut trace = KernelTrace::new(6, 8);
        trace.set_resources(KernelResources {
            warps_per_block: 8,
            registers_per_thread: 32,
            shared_memory_per_block: 2048,
        });
        let mut total_b_sectors = 0.0;
        let tiles = n_tiles(n);

        for tile in 0..tiles {
            let w = (n - tile * N_TILE).min(N_TILE) as f64;
            let tile_sectors = (w * 4.0 / 32.0).max(1.0);
            let tile_first = (tile * N_TILE) as u64 / 8;
            // ELL buckets: padded width, vectorized, negligible index math.
            for (b, rows) in self.buckets.iter().enumerate() {
                let width = Self::bucket_width(b) as f64;
                for chunk in rows.chunks(ROWS_PER_TB) {
                    let mut real_nnz = 0usize;
                    let mut addrs = SectorStream::new();
                    for &r in chunk {
                        let (cols, _) = self.a.row_entries(r as usize);
                        real_nnz += cols.len();
                        if record_b_addrs {
                            for &c in cols {
                                push_b_tile_sectors(
                                    &mut addrs,
                                    c as usize,
                                    n,
                                    tile_first,
                                    tile_sectors as u64,
                                );
                            }
                        }
                    }
                    // Padded work: every row computes `width` lanes.
                    let padded = chunk.len() as f64 * width;
                    let lsu_b = real_nnz as f64 * tile_sectors;
                    total_b_sectors += lsu_b;
                    let tb = TbWork {
                        fp_ops: padded * w / 32.0,
                        alu_ops: padded * w / 256.0 + 2.0,
                        lsu_a_sectors: padded / 4.0,
                        lsu_b_sectors: lsu_b,
                        epilogue_sectors: chunk.len() as f64 * tile_sectors,
                        iters: width,
                        b_stream: addrs,
                        ..TbWork::default()
                    };
                    tb.debug_validate();
                    trace.push(tb);
                }
            }
            // CSR residual: row-split like cuSPARSE, one TB per 4 long rows.
            for chunk in self.residual.chunks(4) {
                let mut l = 0f64;
                let mut max_row = 0usize;
                let mut addrs = SectorStream::new();
                for &r in chunk {
                    let (cols, _) = self.a.row_entries(r as usize);
                    l += cols.len() as f64;
                    max_row = max_row.max(cols.len());
                    if record_b_addrs {
                        for &c in cols {
                            push_b_tile_sectors(
                                &mut addrs,
                                c as usize,
                                n,
                                tile_first,
                                tile_sectors as u64,
                            );
                        }
                    }
                }
                let lsu_b = l * tile_sectors;
                total_b_sectors += lsu_b;
                let tb = TbWork {
                    fp_ops: l * w / 32.0,
                    alu_ops: l * w / 96.0 + l / 8.0,
                    lsu_a_sectors: l / 4.0,
                    lsu_b_sectors: lsu_b,
                    epilogue_sectors: chunk.len() as f64 * tile_sectors,
                    iters: max_row as f64 / 4.0,
                    b_stream: addrs,
                    ..TbWork::default()
                };
                tb.debug_validate();
                trace.push(tb);
            }
        }

        trace.assumed_l2_hit_rate =
            estimate_b_hit_rate(self.distinct_cols, total_b_sectors, n, device);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::{long_row, power_law, uniform};

    #[test]
    fn buckets_partition_nonempty_rows() {
        let a = power_law(200, 200, 8.0, 2.1, 1);
        let k = SparseTirSpmm::new(&a);
        let bucketed: usize = k.bucket_sizes().iter().sum::<usize>() + k.residual_len();
        let nonempty = (0..a.rows()).filter(|&r| a.row_len(r) > 0).count();
        assert_eq!(bucketed, nonempty);
    }

    #[test]
    fn long_rows_go_to_residual() {
        let a = long_row(32, 512, 100.0, 0.3, 2);
        let k = SparseTirSpmm::new(&a);
        assert!(k.residual_len() > 16);
    }

    #[test]
    fn matches_reference() {
        let a = power_law(100, 100, 6.0, 2.2, 3);
        let b = DenseMatrix::from_fn(100, 8, |r, c| ((r + 2 * c) % 5) as f32);
        let k = SparseTirSpmm::new(&a);
        assert_eq!(k.execute(&b).unwrap(), a.spmm_reference(&b).unwrap());
    }

    #[test]
    fn trace_includes_padding_cost() {
        // Rows of length 3 pad to width 4: fp_ops reflect the padding.
        let t: Vec<(usize, usize, f32)> =
            (0..32).flat_map(|r| (0..3).map(move |j| (r, j * 7, 1.0))).collect();
        let a = CsrMatrix::from_triplets(32, 32, &t).unwrap();
        let trace = SparseTirSpmm::new(&a).trace(32, &Device::rtx4090(), false);
        let fp: f64 = trace.iter_tbs().map(|t| t.fp_ops).sum();
        assert_eq!(fp, 32.0 * 4.0 * 32.0 / 32.0); // padded 4, not 3
    }

    #[test]
    fn compile_cost_positive() {
        let a = uniform(100, 100, 300, 4);
        assert!(SparseTirSpmm::new(&a).compile_cost_ms() > 0.0);
    }
}
