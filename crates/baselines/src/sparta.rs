//! SparTA (Zheng et al., OSDI'22): Tensor-with-Sparsity-Attribute
//! execution of unstructured DNN weight sparsity.
//!
//! SparTA partitions the matrix into a 2:4 *structured* component (at most
//! two non-zeros per 4-wide group, runnable on sparse Tensor Cores via
//! cuSPARSELt) and an unstructured CSR remainder on CUDA cores. The
//! cuSPARSELt backend caps supported shapes — the paper reports "limited
//! to matrices with row and column counts not exceeding 50,000"
//! (Table 4: "Not Supported" on protein/reddit).

use crate::util::{check_spmm_dims, distinct_col_count, estimate_b_hit_rate, sectors_per_b_row};
use crate::SpmmKernel;
use dtc_formats::tf32::round_to_tf32;
use dtc_formats::{CsrMatrix, DenseMatrix, FormatError};
use dtc_sim::occupancy::KernelResources;
use dtc_sim::{Device, KernelTrace, TbWork};

/// SparTA's documented shape limit.
pub const SPARTA_DEFAULT_LIMIT: usize = 50_000;

/// SparTA kernel model: 2:4 split + CUDA-core remainder.
#[derive(Debug, Clone)]
pub struct SpartaSpmm {
    /// 2:4-structured component (≤ 2 nnz per 4-wide group per row).
    structured: CsrMatrix,
    /// Unstructured remainder.
    remainder: CsrMatrix,
    distinct_cols: usize,
    /// 16×16 tiles of A touched by the structured component.
    structured_tiles: usize,
}

impl SpartaSpmm {
    /// Splits the matrix into 2:4 + remainder, enforcing the shape limit.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::NotSupported`] when either dimension exceeds
    /// `limit` (pass [`SPARTA_DEFAULT_LIMIT`] for the real library's cap).
    pub fn new(a: &CsrMatrix, limit: usize) -> Result<Self, FormatError> {
        if a.rows() > limit || a.cols() > limit {
            return Err(FormatError::NotSupported(format!(
                "sparta (cuSPARSELt) supports at most {limit} rows/cols, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        // 2:4 split: within each row, at most 2 non-zeros per group of 4
        // consecutive columns go to the structured part.
        let mut s_trip: Vec<(usize, usize, f32)> = Vec::new();
        let mut r_trip: Vec<(usize, usize, f32)> = Vec::new();
        for r in 0..a.rows() {
            let (cols, vals) = a.row_entries(r);
            let mut group = usize::MAX;
            let mut in_group = 0;
            for (&c, &v) in cols.iter().zip(vals) {
                let g = c as usize / 4;
                if g != group {
                    group = g;
                    in_group = 0;
                }
                if in_group < 2 {
                    s_trip.push((r, c as usize, v));
                    in_group += 1;
                } else {
                    r_trip.push((r, c as usize, v));
                }
            }
        }
        let structured = CsrMatrix::from_triplets(a.rows(), a.cols(), &s_trip)?;
        let remainder = CsrMatrix::from_triplets(a.rows(), a.cols(), &r_trip)?;
        // Count 16x16 A tiles with structured content (sparse-TC workload).
        let tile_cols = a.cols().div_ceil(16);
        let mut touched = std::collections::HashSet::new();
        for (r, c, _) in structured.iter() {
            touched.insert((r / 16) * tile_cols + c / 16);
        }
        Ok(SpartaSpmm {
            structured,
            remainder,
            distinct_cols: distinct_col_count(a),
            structured_tiles: touched.len(),
        })
    }

    /// Fraction of the non-zeros captured by the 2:4 component.
    pub fn structured_fraction(&self) -> f64 {
        let total = self.structured.nnz() + self.remainder.nnz();
        if total == 0 {
            0.0
        } else {
            self.structured.nnz() as f64 / total as f64
        }
    }
}

impl SpmmKernel for SpartaSpmm {
    fn name(&self) -> &str {
        "SparTA"
    }

    fn rows(&self) -> usize {
        self.structured.rows()
    }

    fn cols(&self) -> usize {
        self.structured.cols()
    }

    fn nnz(&self) -> usize {
        self.structured.nnz() + self.remainder.nnz()
    }

    fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        check_spmm_dims(self.rows(), self.cols(), b)?;
        // Structured half on (sparse) Tensor Cores: TF32 rounding.
        let n = b.cols();
        let mut c = DenseMatrix::zeros(self.rows(), n);
        for (r, col, v) in self.structured.iter() {
            let a_v = round_to_tf32(v);
            let out = c.row_mut(r);
            for (o, &bv) in out.iter_mut().zip(b.row(col)) {
                *o += a_v * round_to_tf32(bv);
            }
        }
        // Remainder on CUDA cores: full FP32.
        let rem = self.remainder.spmm_reference(b)?;
        for (o, &rv) in c.as_mut_slice().iter_mut().zip(rem.as_slice()) {
            *o += rv;
        }
        Ok(c)
    }

    fn trace(&self, n: usize, device: &Device, _record_b_addrs: bool) -> KernelTrace {
        let n_f = n as f64;
        let mut trace = KernelTrace::new(6, 8);
        trace.set_resources(KernelResources {
            warps_per_block: 8,
            registers_per_thread: 40,
            shared_memory_per_block: 16 * 1024,
        });
        let b_row_sectors = sectors_per_b_row(n);
        let mut total_b_sectors = 0.0;

        // Structured component: sparse-TC tiles. Each touched 16x16 tile
        // runs m16n8k16-style sparse MMA over N at 2x dense throughput.
        let tiles_per_tb = 16usize;
        let tile_ids: Vec<usize> = (0..self.structured_tiles).collect();
        for chunk in tile_ids.chunks(tiles_per_tb) {
            let t = chunk.len() as f64;
            // Per tile: (N/8) k8-equiv halved by 2:4 sparse speedup.
            let hmma = t * (n_f / 8.0) * 0.5 * 2.0; // k=16 -> two k8 halves
            let lsu_b = t * 16.0 * b_row_sectors;
            total_b_sectors += lsu_b;
            let tb = TbWork {
                alu_ops: t * n_f / 16.0,
                lsu_a_sectors: t * (16.0 * 8.0 * 4.0 + 64.0) / 32.0, // values + metadata
                lsu_b_sectors: lsu_b,
                smem_ops: t * n_f / 8.0,
                hmma_ops: hmma,
                hmma_count: hmma * 2.0,
                epilogue_sectors: t * 16.0 * b_row_sectors / 4.0,
                iters: t,
                overlap_a_fetch: true,
                ..TbWork::default()
            };
            tb.debug_validate();
            trace.push(tb);
        }
        // Remainder: cuSPARSE-like row-split CUDA-core pass.
        for start in (0..self.remainder.rows()).step_by(32) {
            let end = (start + 32).min(self.remainder.rows());
            let l: f64 = (start..end).map(|r| self.remainder.row_len(r) as f64).sum();
            if l == 0.0 {
                continue;
            }
            let lsu_b = l * b_row_sectors;
            total_b_sectors += lsu_b;
            let tb = TbWork {
                fp_ops: l * n_f / 32.0,
                alu_ops: l * n_f / 64.0,
                lsu_a_sectors: l / 4.0,
                lsu_b_sectors: lsu_b,
                epilogue_sectors: (end - start) as f64 * b_row_sectors,
                iters: l / 8.0,
                ..TbWork::default()
            };
            tb.debug_validate();
            trace.push(tb);
        }
        trace.assumed_l2_hit_rate =
            estimate_b_hit_rate(self.distinct_cols, total_b_sectors.max(1.0), n, device);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::{dl_pruned, power_law};
    use dtc_formats::tf32::TF32_UNIT_ROUNDOFF;

    #[test]
    fn shape_limit_enforced() {
        let a = power_law(100, 100, 3.0, 2.2, 41);
        assert!(SpartaSpmm::new(&a, 99).is_err());
        assert!(SpartaSpmm::new(&a, 100).is_ok());
    }

    #[test]
    fn split_preserves_all_nonzeros() {
        let a = dl_pruned(64, 64, 0.6, 42);
        let k = SpartaSpmm::new(&a, SPARTA_DEFAULT_LIMIT).unwrap();
        assert_eq!(k.nnz(), a.nnz());
    }

    #[test]
    fn two_four_constraint_holds() {
        let a = dl_pruned(32, 64, 0.3, 43); // dense enough to overflow groups
        let k = SpartaSpmm::new(&a, SPARTA_DEFAULT_LIMIT).unwrap();
        for r in 0..k.structured.rows() {
            let (cols, _) = k.structured.row_entries(r);
            let mut counts = std::collections::HashMap::new();
            for &c in cols {
                *counts.entry(c / 4).or_insert(0usize) += 1;
            }
            assert!(counts.values().all(|&c| c <= 2), "2:4 violated in row {r}");
        }
        // Dense rows must spill something to the remainder.
        assert!(k.remainder.nnz() > 0);
    }

    #[test]
    fn matches_reference_within_tf32() {
        let a = dl_pruned(48, 48, 0.7, 44);
        let b = DenseMatrix::from_fn(48, 8, |r, c| ((r * 5 + c) % 7) as f32 * 0.25);
        let k = SpartaSpmm::new(&a, SPARTA_DEFAULT_LIMIT).unwrap();
        let c = k.execute(&b).unwrap();
        assert!(c.max_abs_diff(&a.spmm_reference(&b).unwrap()) < 40.0 * TF32_UNIT_ROUNDOFF);
    }

    #[test]
    fn highly_sparse_matrices_mostly_structured() {
        // In SparTA's regime — DL weight pruning at >95% sparsity — nearly
        // every nnz fits the 2:4 budget, but the tile count (and hence TC
        // work) stays high: the paper's point. (Skewed graphs behave
        // differently: heavy rows overflow their 4-column groups.)
        let a = dl_pruned(512, 512, 0.95, 45);
        let k = SpartaSpmm::new(&a, SPARTA_DEFAULT_LIMIT).unwrap();
        assert!(k.structured_fraction() > 0.9);
        assert!(k.structured_tiles > 100);
        let skewed = power_law(512, 512, 4.0, 2.2, 45);
        let ks = SpartaSpmm::new(&skewed, SPARTA_DEFAULT_LIMIT).unwrap();
        assert!(ks.structured_fraction() < k.structured_fraction());
    }
}
