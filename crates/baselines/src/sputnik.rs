//! Sputnik (Gale et al., SC'20): 1-D tiling CUDA-core SpMM with
//! reverse-offset memory alignment — the strongest CUDA-core baseline in
//! the paper's evaluation.

use crate::util::{
    check_spmm_dims, distinct_col_count, estimate_b_hit_rate, n_tiles, push_b_tile_sectors, N_TILE,
};
use crate::SpmmKernel;
use dtc_formats::{CsrMatrix, DenseMatrix, FormatError};
use dtc_sim::occupancy::KernelResources;
use dtc_sim::{Device, KernelTrace, SectorStream, TbWork};

/// Non-zeros per 1-D tile (one tile = one thread block's work unit).
const NNZ_PER_TILE: usize = 256;

/// Sputnik-like 1-D tiled SpMM.
///
/// Rows are cut into fixed-size 1-D non-zero tiles, so thread-block work is
/// balanced by construction; index arithmetic is amortized by the
/// reverse-offset alignment trick (fewer IMADs per non-zero than the
/// row-split kernel). Like the real library, index computation uses `int32`
/// — matrices whose index products overflow are rejected (§5, *Datasets*:
/// "certain matrices surpass the limit, leading to a segmentation fault").
#[derive(Debug, Clone)]
pub struct SputnikSpmm {
    a: CsrMatrix,
    distinct_cols: usize,
}

impl SputnikSpmm {
    /// Prepares the kernel, enforcing the library's default `int32` index
    /// budget.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::NotSupported`] when the `nnz * 4`-byte index
    /// computation exceeds `i32::MAX`.
    pub fn new(a: &CsrMatrix) -> Result<Self, FormatError> {
        Self::with_index_limit(a, i32::MAX as u64 / 4)
    }

    /// Prepares the kernel with an explicit index budget (element count the
    /// `int32` offset math may address). The evaluation harness scales this
    /// with its datasets.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::NotSupported`] when `nnz` exceeds the limit.
    pub fn with_index_limit(a: &CsrMatrix, max_nnz: u64) -> Result<Self, FormatError> {
        if a.nnz() as u64 > max_nnz {
            return Err(FormatError::NotSupported(format!(
                "sputnik int32 index computation overflows: nnz {} > limit {max_nnz}",
                a.nnz()
            )));
        }
        Ok(SputnikSpmm { distinct_cols: distinct_col_count(a), a: a.clone() })
    }
}

impl SpmmKernel for SputnikSpmm {
    fn name(&self) -> &str {
        "Sputnik"
    }

    fn rows(&self) -> usize {
        self.a.rows()
    }

    fn cols(&self) -> usize {
        self.a.cols()
    }

    fn nnz(&self) -> usize {
        self.a.nnz()
    }

    fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        check_spmm_dims(self.a.rows(), self.a.cols(), b)?;
        // CUDA-core FP32 path — numerically the CSR reference.
        self.a.spmm_reference(b)
    }

    fn trace(&self, n: usize, device: &Device, record_b_addrs: bool) -> KernelTrace {
        // 8 blocks x 8 warps would claim 64 warp slots against Ada's 48; the
        // register-file-legal occupancy for this launch shape is 6.
        let mut trace = KernelTrace::new(6, 8);
        trace.set_resources(KernelResources {
            warps_per_block: 8,
            registers_per_thread: 32,
            shared_memory_per_block: 4096,
        });
        let mut total_b_sectors = 0.0;

        // 2-D tiling: 1-D non-zero tiles × N tiles of 32 columns. Within a
        // column tile, walk non-zeros in row order, cutting a thread block
        // every NNZ_PER_TILE non-zeros (rows may span blocks; partial sums
        // combine through a cheap reduction modeled in the epilogue).
        let tiles = n_tiles(n);
        for tile in 0..tiles {
            let w = (n - tile * N_TILE).min(N_TILE) as f64;
            let tile_sectors = (w * 4.0 / 32.0).max(1.0);
            let mut tile_nnz = 0usize;
            let mut tile_rows = 0usize;
            let mut addrs = SectorStream::new();
            let flush = |tile_nnz: &mut usize,
                         tile_rows: &mut usize,
                         addrs: &mut SectorStream,
                         trace: &mut KernelTrace,
                         total_b: &mut f64| {
                if *tile_nnz == 0 {
                    return;
                }
                let l = *tile_nnz as f64;
                let lsu_b = l * tile_sectors;
                *total_b += lsu_b;
                let tb = TbWork {
                    fp_ops: l * w / 32.0,
                    // Reverse-offset alignment halves the per-FMA index math.
                    alu_ops: l * w / 128.0 + l / 16.0 + 2.0,
                    lsu_a_sectors: l / 4.0,
                    lsu_b_sectors: lsu_b,
                    epilogue_sectors: (*tile_rows as f64 + 1.0) * tile_sectors,
                    // Balanced tiles: the loop length is the tile size
                    // itself, divided across the warps.
                    iters: l / 8.0,
                    b_stream: std::mem::take(addrs),
                    ..TbWork::default()
                };
                tb.debug_validate();
                trace.push(tb);
                *tile_nnz = 0;
                *tile_rows = 0;
            };

            for r in 0..self.a.rows() {
                let (cols, _) = self.a.row_entries(r);
                if !cols.is_empty() {
                    tile_rows += 1;
                }
                for &c in cols {
                    if record_b_addrs {
                        push_b_tile_sectors(
                            &mut addrs,
                            c as usize,
                            n,
                            (tile * N_TILE) as u64 / 8,
                            tile_sectors as u64,
                        );
                    }
                    tile_nnz += 1;
                    if tile_nnz >= NNZ_PER_TILE {
                        flush(
                            &mut tile_nnz,
                            &mut tile_rows,
                            &mut addrs,
                            &mut trace,
                            &mut total_b_sectors,
                        );
                    }
                }
            }
            flush(&mut tile_nnz, &mut tile_rows, &mut addrs, &mut trace, &mut total_b_sectors);
        }

        trace.assumed_l2_hit_rate =
            estimate_b_hit_rate(self.distinct_cols, total_b_sectors, n, device);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::{long_row, uniform};

    #[test]
    fn int32_limit_enforced() {
        let a = uniform(64, 64, 500, 1);
        assert!(SputnikSpmm::with_index_limit(&a, 499).is_err());
        assert!(SputnikSpmm::with_index_limit(&a, 10_000).is_ok());
    }

    #[test]
    fn matches_reference() {
        let a = uniform(80, 80, 400, 2);
        let b = DenseMatrix::from_fn(80, 8, |r, c| (r * c) as f32 * 0.01);
        let k = SputnikSpmm::new(&a).unwrap();
        assert_eq!(k.execute(&b).unwrap(), a.spmm_reference(&b).unwrap());
    }

    #[test]
    fn tiles_are_balanced_even_on_skewed_rows() {
        let a = long_row(64, 512, 150.0, 1.5, 3);
        let t = SputnikSpmm::new(&a).unwrap().trace(128, &Device::rtx4090(), false);
        let loads: Vec<f64> = t.iter_tbs().map(|tb| tb.fp_ops).collect();
        let max = loads.iter().cloned().fold(0.0, f64::max);
        let min = loads.iter().cloned().fold(f64::MAX, f64::min);
        // All but the last tile carry exactly NNZ_PER_TILE non-zeros.
        assert!(max <= min * 3.0 || loads.len() <= 2, "max={max} min={min}");
    }

    #[test]
    fn fewer_alu_ops_than_cusparse() {
        let a = uniform(128, 128, 2000, 4);
        let device = Device::rtx4090();
        let sp = SputnikSpmm::new(&a).unwrap().trace(128, &device, false);
        let cu = crate::CusparseSpmm::new(&a).trace(128, &device, false);
        let sp_alu: f64 = sp.iter_tbs().map(|t| t.alu_ops).sum();
        let cu_alu: f64 = cu.iter_tbs().map(|t| t.alu_ops).sum();
        assert!(sp_alu < cu_alu);
    }
}
