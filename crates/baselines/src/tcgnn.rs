//! TCGNN-SpMM (Wang et al., USENIX ATC'23): the state-of-the-art TC-based
//! general SpMM the paper analyses in §2.3/§3 and improves upon.
//!
//! The model reproduces TCGNN-SpMM's four structural costs:
//!
//! 1. **WMMA staging through shared memory** — B tiles are scatter-fetched
//!    with `LDG.32`, stored with `STS`, and re-loaded into fragments with
//!    `wmma::load_matrix_sync` (Fig 7, grey path);
//! 2. **Per-block window re-scan** — for every TC block, threads traverse
//!    the whole row window's edge list to find the block's non-zeros,
//!    giving the `O(window_nnz × blocks_per_window)` coordinate-IMAD
//!    blow-up behind the Type-II `#IMAD/#HMMA` ratios of Table 2;
//! 3. **No prefetching / no double buffering**;
//! 4. **One thread block per row window** — the load imbalance of Fig 3.

use crate::util::{
    check_spmm_dims, distinct_col_count, estimate_b_hit_rate, push_b_row_sectors, sectors_per_b_row,
};
use crate::SpmmKernel;
use dtc_formats::tf32::round_to_tf32;
use dtc_formats::{Condensed, CsrMatrix, DenseMatrix, FormatError, TcfMatrix};
use dtc_sim::occupancy::KernelResources;
use dtc_sim::{Device, KernelTrace, SectorStream, TbWork};

/// IMADs per scanned edge in the per-block window re-scan (per thread,
/// before the 1/32 warp normalization).
const SCAN_IMAD_PER_EDGE: f64 = 8.0;
/// IMADs of scattered-fetch address math per fetched B element.
const FETCH_IMAD_PER_ELEM: f64 = 16.0;

/// TCGNN-SpMM kernel model over the TCF format.
#[derive(Debug, Clone)]
pub struct TcgnnSpmm {
    tcf: TcfMatrix,
    condensed: Condensed,
    distinct_cols: usize,
}

impl TcgnnSpmm {
    /// Converts the matrix to TCF (SGT condensing) and prepares the kernel.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::NotSupported`] for non-square matrices —
    /// TC-GNN's documented limitation.
    pub fn new(a: &CsrMatrix) -> Result<Self, FormatError> {
        let tcf = TcfMatrix::from_csr(a)?;
        Ok(TcgnnSpmm {
            tcf,
            condensed: Condensed::from_csr(a),
            distinct_cols: distinct_col_count(a),
        })
    }

    /// The TCF representation (for footprint accounting).
    pub fn tcf(&self) -> &TcfMatrix {
        &self.tcf
    }

    /// The condensed (SGT) view.
    pub fn condensed(&self) -> &Condensed {
        &self.condensed
    }
}

impl SpmmKernel for TcgnnSpmm {
    fn name(&self) -> &str {
        "TCGNN-SpMM"
    }

    fn rows(&self) -> usize {
        self.condensed.rows()
    }

    fn cols(&self) -> usize {
        self.condensed.cols()
    }

    fn nnz(&self) -> usize {
        self.condensed.nnz()
    }

    fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        check_spmm_dims(self.rows(), self.cols(), b)?;
        let n = b.cols();
        let mut c = DenseMatrix::zeros(self.rows(), n);
        if n == 0 {
            return Ok(c);
        }
        // Tensor-Core path: multiplicands rounded to TF32, FP32 accumulate.
        // One task per 16-row window, exactly the kernel's TB decomposition;
        // each window writes only its own strip of C, in serial entry order.
        let windows: Vec<_> = self.condensed.windows().collect();
        dtc_par::par_chunks_mut(c.as_mut_slice(), 16 * n, |wi, strip| {
            let w = windows[wi];
            debug_assert_eq!(w.start_row, wi * 16);
            for block in w.blocks() {
                for e in block.entries {
                    let local_row = e.local_row as usize;
                    let a_v = round_to_tf32(e.value);
                    let b_row = b.row(e.orig_col as usize);
                    let out = &mut strip[local_row * n..(local_row + 1) * n];
                    for (o, &bv) in out.iter_mut().zip(b_row) {
                        *o += a_v * round_to_tf32(bv);
                    }
                }
            }
        });
        Ok(c)
    }

    fn trace(&self, n: usize, device: &Device, record_b_addrs: bool) -> KernelTrace {
        let n_f = n as f64;
        // Shared-memory staging limits TCGNN's occupancy.
        let mut trace = KernelTrace::new(4, 8);
        trace.set_resources(KernelResources::tcgnn_spmm());
        let b_row_sectors = sectors_per_b_row(n);
        let mut total_b_sectors = 0.0;

        for w in self.condensed.windows() {
            let nnz_w = w.nnz() as f64;
            let nblk = w.num_blocks() as f64;
            let mut addrs = SectorStream::new();
            let mut lsu_b = 0.0;
            let mut hmma_ops = 0.0;
            let mut hmma_count = 0.0;
            let mut alu = 0.0;
            let mut smem = 0.0;
            for block in w.blocks() {
                // WMMA m16x16x8: N/16 mma_sync per block, 2 HMMA.m16n8k8 each.
                hmma_ops += n_f / 8.0;
                hmma_count += n_f / 4.0;
                // (2) per-block re-scan of the whole window's edges.
                alu += nnz_w * SCAN_IMAD_PER_EDGE / 32.0;
                // Scattered B fetch: 8 B-rows regardless of how many block
                // columns are real (the fragment is 16x8 padded), and the
                // per-thread element gathers only partially coalesce —
                // ~1.5 sectors of traffic per useful sector.
                lsu_b += 8.0 * b_row_sectors * 1.5;
                // Address math per fetched element.
                alu += 8.0 * n_f * FETCH_IMAD_PER_ELEM / 32.0;
                // (1) staging: STS + load_matrix_sync LDS for the B tile,
                // plus reconstructing the sparse A tile in shared memory.
                smem += 2.0 * (8.0 * n_f / 32.0) + block.entries.len() as f64 * 2.0 / 32.0;
                if record_b_addrs {
                    for &c in block.cols {
                        push_b_row_sectors(&mut addrs, c as usize, n);
                    }
                }
            }
            total_b_sectors += lsu_b;
            let tb = TbWork {
                alu_ops: alu,
                lsu_a_sectors: nnz_w * 12.0 / 32.0, // 3 int32 arrays per nnz
                lsu_b_sectors: lsu_b,
                smem_ops: smem,
                hmma_ops,
                hmma_count,
                epilogue_sectors: 16.0 * b_row_sectors,
                iters: nblk,
                overlap_a_fetch: false, // (3) no double buffering
                b_stream: addrs,
                ..TbWork::default()
            };
            tb.debug_validate();
            trace.push(tb);
        }
        trace.assumed_l2_hit_rate =
            estimate_b_hit_rate(self.distinct_cols, total_b_sectors, n, device);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CusparseSpmm;
    use dtc_formats::gen::{long_row, power_law};
    use dtc_formats::tf32::TF32_UNIT_ROUNDOFF;

    #[test]
    fn rejects_non_square() {
        let a = CsrMatrix::from_triplets(4, 8, &[(0, 0, 1.0)]).unwrap();
        assert!(TcgnnSpmm::new(&a).is_err());
    }

    #[test]
    fn matches_reference_within_tf32() {
        let a = power_law(80, 80, 5.0, 2.2, 9);
        let b = DenseMatrix::from_fn(80, 16, |r, c| ((r * 3 + c) % 7) as f32 * 0.3);
        let k = TcgnnSpmm::new(&a).unwrap();
        let c = k.execute(&b).unwrap();
        let reference = a.spmm_reference(&b).unwrap();
        // Each output accumulates <= max_row_len products, each with at
        // most ~2 units of TF32 roundoff on operands of magnitude <= ~2.
        let bound = 40.0 * TF32_UNIT_ROUNDOFF;
        assert!(c.max_abs_diff(&reference) < bound);
    }

    #[test]
    fn tf32_rounding_is_actually_applied() {
        // A value that TF32 perturbs: the output must differ from exact FP32.
        let v = 1.0 + f32::EPSILON * 4096.0; // needs > 10 mantissa bits
        let a = CsrMatrix::from_triplets(16, 16, &[(0, 0, v)]).unwrap();
        let b = DenseMatrix::from_fn(16, 1, |_, _| v);
        let k = TcgnnSpmm::new(&a).unwrap();
        let c = k.execute(&b).unwrap();
        let exact = v * v;
        let tf = round_to_tf32(v) * round_to_tf32(v);
        assert_eq!(c.get(0, 0), tf);
        assert_ne!(c.get(0, 0), exact);
    }

    #[test]
    fn imad_per_hmma_explodes_on_long_rows() {
        // The paper's Table 2: Type I ~13.7, Type II (reddit) ~98.5.
        let device = Device::rtx4090();
        let type1 = power_law(640, 640, 2.5, 2.2, 10);
        let type2 = long_row(640, 640, 300.0, 0.6, 11);
        let r1 = TcgnnSpmm::new(&type1).unwrap().simulate(128, &device);
        let r2 = TcgnnSpmm::new(&type2).unwrap().simulate(128, &device);
        assert!(r1.imad_per_hmma > 5.0 && r1.imad_per_hmma < 40.0, "{}", r1.imad_per_hmma);
        assert!(
            r2.imad_per_hmma > r1.imad_per_hmma * 2.0,
            "{} vs {}",
            r2.imad_per_hmma,
            r1.imad_per_hmma
        );
    }

    #[test]
    fn tc_utilization_is_low() {
        // Observation 3: utilization consistently below 8 %.
        let a = power_law(640, 640, 3.0, 2.2, 12);
        let r = TcgnnSpmm::new(&a).unwrap().simulate(128, &Device::rtx4090());
        assert!(r.tc_utilization < 0.08, "{}", r.tc_utilization);
    }

    #[test]
    fn loses_to_cusparse_on_type_ii() {
        // §1: TCGNN-SpMM "demonstrates less competitive performance
        // compared to cuSPARSE ... especially on large matrices with long
        // rows".
        let a = long_row(640, 640, 300.0, 0.6, 13);
        let device = Device::rtx4090();
        let tcgnn = TcgnnSpmm::new(&a).unwrap().simulate(128, &device);
        let cus = CusparseSpmm::new(&a).simulate(128, &device);
        assert!(tcgnn.time_ms > cus.time_ms, "tcgnn={} cus={}", tcgnn.time_ms, cus.time_ms);
    }
}
