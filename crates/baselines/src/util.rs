//! Shared helpers for kernel lowering: B-traffic accounting, L2 hit-rate
//! estimation, and dimension checks.

use dtc_formats::{CsrMatrix, DenseMatrix, FormatError};
use dtc_sim::{Device, SectorStream};

/// Number of distinct columns touched by the sparse matrix — the set of B
/// rows an SpMM actually reads.
pub fn distinct_col_count(a: &CsrMatrix) -> usize {
    let mut touched = vec![false; a.cols()];
    for &c in a.col_idx() {
        touched[c as usize] = true;
    }
    touched.iter().filter(|&&t| t).count()
}

/// Analytic L2 hit-rate estimate for B traffic, used when the cache is not
/// simulated.
///
/// `1 - unique/total` of the accesses are re-reads; the fraction of those
/// that actually hit decays with the ratio of the unique working set to the
/// L2 capacity (square-root law — reuse distances are not uniform).
pub fn estimate_b_hit_rate(
    distinct_cols: usize,
    total_b_sectors: f64,
    n: usize,
    device: &Device,
) -> f64 {
    if total_b_sectors <= 0.0 || distinct_cols == 0 {
        return 0.0;
    }
    let unique_sectors = distinct_cols as f64 * sectors_per_b_row(n);
    let base = (1.0 - unique_sectors / total_b_sectors).max(0.0);
    let unique_bytes = unique_sectors * device.sector_bytes as f64;
    let capacity = (device.l2_bytes as f64 / unique_bytes).min(1.0).sqrt();
    base * capacity
}

/// Sectors per row of an `N`-column row-major f32 B matrix.
pub fn sectors_per_b_row(n: usize) -> f64 {
    (n as f64 * 4.0 / 32.0).max(1.0)
}

/// Appends the sector addresses of B row `col` (for an `N`-column B) to a
/// recording stream. The row is contiguous, so it encodes as a single run.
pub fn push_b_row_sectors(out: &mut SectorStream, col: usize, n: usize) {
    let per_row = sectors_per_b_row(n) as u64;
    out.push_run(col as u64 * per_row, per_row);
}

/// Appends the sector addresses of one *N-tile* of B row `col`: sectors
/// `[tile_first, tile_first + tile_sectors)` of the row — one encoded run.
pub fn push_b_tile_sectors(
    out: &mut SectorStream,
    col: usize,
    n: usize,
    tile_first: u64,
    tile_sectors: u64,
) {
    let per_row = sectors_per_b_row(n) as u64;
    let base = col as u64 * per_row + tile_first;
    out.push_run(base, tile_sectors.min(per_row - tile_first.min(per_row)));
}

/// The column-tile width CUDA-core kernels use to split the N dimension
/// (cuSPARSE/Sputnik launch a 2-D grid: row strips × N tiles).
pub const N_TILE: usize = 32;

/// Splits `n` into `(num_tiles, last_tile_width)` chunks of [`N_TILE`].
pub fn n_tiles(n: usize) -> usize {
    n.div_ceil(N_TILE).max(1)
}

/// Checks the `A.cols == B.rows` contract shared by every kernel.
///
/// # Errors
///
/// Returns [`FormatError::DimensionMismatch`] on disagreement.
pub fn check_spmm_dims(a_rows: usize, a_cols: usize, b: &DenseMatrix) -> Result<(), FormatError> {
    if a_cols != b.rows() {
        return Err(FormatError::DimensionMismatch {
            op: "spmm",
            lhs: (a_rows, a_cols),
            rhs: (b.rows(), b.cols()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_cols_counts_unique() {
        let a = CsrMatrix::from_triplets(4, 10, &[(0, 3, 1.0), (1, 3, 1.0), (2, 7, 1.0)]).unwrap();
        assert_eq!(distinct_col_count(&a), 2);
    }

    #[test]
    fn hit_rate_zero_for_no_reuse() {
        let d = Device::rtx4090();
        // total == unique: every access is a compulsory miss.
        assert_eq!(estimate_b_hit_rate(100, 100.0 * sectors_per_b_row(128), 128, &d), 0.0);
    }

    #[test]
    fn hit_rate_grows_with_reuse() {
        let d = Device::rtx4090();
        let lo = estimate_b_hit_rate(100, 2.0 * 100.0 * sectors_per_b_row(128), 128, &d);
        let hi = estimate_b_hit_rate(100, 50.0 * 100.0 * sectors_per_b_row(128), 128, &d);
        assert!(hi > lo && hi < 1.0);
    }

    #[test]
    fn hit_rate_shrinks_when_working_set_exceeds_l2() {
        let mut d = Device::rtx4090();
        let big = estimate_b_hit_rate(1000, 1e6, 128, &d);
        d.l2_bytes /= 1024;
        let small = estimate_b_hit_rate(1000, 1e6, 128, &d);
        assert!(small < big);
    }

    #[test]
    fn sector_math() {
        assert_eq!(sectors_per_b_row(128), 16.0);
        assert_eq!(sectors_per_b_row(8), 1.0);
        let mut s = SectorStream::new();
        push_b_row_sectors(&mut s, 3, 128);
        assert_eq!(s.to_vec(), (48..64).collect::<Vec<u64>>());
        assert_eq!(s.num_runs(), 1); // one contiguous row == one run
    }

    #[test]
    fn dim_check() {
        let b = DenseMatrix::zeros(8, 4);
        assert!(check_spmm_dims(4, 8, &b).is_ok());
        assert!(check_spmm_dims(4, 9, &b).is_err());
    }
}
