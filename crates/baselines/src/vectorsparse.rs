//! VectorSparse (Chen et al., SC'21): fine-grained column-vector sparsity
//! on Tensor Cores via the CVSE format.
//!
//! Finer than BELL blocks (vectors of 4 or 8 rows), so padding waste is
//! lower — but still proportional to `vector_len / avg-nnz-per-vector`,
//! which on the paper's unstructured matrices leaves DTC-SpMM 1.89–4.95×
//! ahead (Fig 12).

use crate::util::{
    check_spmm_dims, distinct_col_count, estimate_b_hit_rate, push_b_row_sectors, sectors_per_b_row,
};
use crate::SpmmKernel;
use dtc_formats::tf32::round_to_tf32;
use dtc_formats::{CsrMatrix, CvseMatrix, DenseMatrix, FormatError};
use dtc_sim::occupancy::KernelResources;
use dtc_sim::{Device, KernelTrace, SectorStream, TbWork};

/// Row groups per thread block.
const GROUPS_PER_TB: usize = 8;

/// VectorSparse kernel model over CVSE.
#[derive(Debug, Clone)]
pub struct VectorSparseSpmm {
    cvse: CvseMatrix,
    distinct_cols: usize,
}

impl VectorSparseSpmm {
    /// Converts to CVSE with the given vector length (the paper evaluates
    /// 4 and 8).
    ///
    /// # Errors
    ///
    /// Propagates [`FormatError::NotSupported`] for a zero vector length.
    pub fn new(a: &CsrMatrix, vector_len: usize) -> Result<Self, FormatError> {
        Ok(VectorSparseSpmm {
            cvse: CvseMatrix::from_csr(a, vector_len)?,
            distinct_cols: distinct_col_count(a),
        })
    }

    /// The underlying CVSE representation.
    pub fn cvse(&self) -> &CvseMatrix {
        &self.cvse
    }
}

impl SpmmKernel for VectorSparseSpmm {
    fn name(&self) -> &str {
        "VectorSparse"
    }

    fn rows(&self) -> usize {
        self.cvse.rows()
    }

    fn cols(&self) -> usize {
        self.cvse.cols()
    }

    fn nnz(&self) -> usize {
        self.cvse.nnz()
    }

    fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        check_spmm_dims(self.rows(), self.cols(), b)?;
        let n = b.cols();
        let vlen = self.cvse.vector_len();
        let mut c = DenseMatrix::zeros(self.rows(), n);
        for g in 0..self.cvse.num_groups() {
            let (cols, vals) = self.cvse.group(g);
            let mask = self.cvse.group_mask(g);
            for (i, &col) in cols.iter().enumerate() {
                let b_row = b.row(col as usize);
                for lr in 0..vlen {
                    let v = vals[i * vlen + lr];
                    if !mask[i * vlen + lr] {
                        // Vector padding costs time, not numerics; stored
                        // entries (even explicit zeros) must multiply so
                        // 0 x Inf = NaN propagates like everywhere else in
                        // the lineup.
                        continue;
                    }
                    let gr = g * vlen + lr;
                    if gr >= self.rows() {
                        break;
                    }
                    let a_v = round_to_tf32(v);
                    let out = c.row_mut(gr);
                    for (o, &bv) in out.iter_mut().zip(b_row) {
                        *o += a_v * round_to_tf32(bv);
                    }
                }
            }
        }
        Ok(c)
    }

    fn trace(&self, n: usize, device: &Device, record_b_addrs: bool) -> KernelTrace {
        let n_f = n as f64;
        let vlen = self.cvse.vector_len() as f64;
        let mut trace = KernelTrace::new(6, 8);
        trace.set_resources(KernelResources {
            warps_per_block: 8,
            registers_per_thread: 40,
            shared_memory_per_block: 12 * 1024,
        });
        let b_row_sectors = sectors_per_b_row(n);
        // Each 8-vector tile of one group feeds an MMA covering vlen rows x
        // 8 columns; tiles of 16/vlen groups pack into full 16-row MMAs at
        // ~90 % packing efficiency.
        let mut total_b_sectors = 0.0;
        let groups: Vec<usize> = (0..self.cvse.num_groups()).collect();
        for chunk in groups.chunks(GROUPS_PER_TB) {
            let mut slots = 0.0; // 8-vector tiles
            let mut vectors = 0.0;
            let mut addrs = SectorStream::new();
            for &g in chunk {
                let (cols, _) = self.cvse.group(g);
                slots += (cols.len() as f64 / 8.0).ceil();
                vectors += cols.len() as f64;
                if record_b_addrs {
                    for &c in cols {
                        push_b_row_sectors(&mut addrs, c as usize, n);
                    }
                }
            }
            let hmma = slots * (vlen / 16.0) * (n_f / 8.0) / 0.9;
            let lsu_b = vectors * b_row_sectors;
            total_b_sectors += lsu_b;
            let tb = TbWork {
                alu_ops: vectors * 2.0 / 32.0 + slots * n_f / 16.0,
                lsu_a_sectors: vectors * (vlen * 4.0 + 4.0) / 32.0,
                lsu_b_sectors: lsu_b,
                smem_ops: slots * n_f / 16.0,
                hmma_ops: hmma,
                hmma_count: hmma * 2.0,
                epilogue_sectors: chunk.len() as f64 * vlen * b_row_sectors,
                iters: slots,
                overlap_a_fetch: true,
                b_stream: addrs,
                ..TbWork::default()
            };
            tb.debug_validate();
            trace.push(tb);
        }
        trace.assumed_l2_hit_rate =
            estimate_b_hit_rate(self.distinct_cols, total_b_sectors.max(1.0), n, device);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::power_law;
    use dtc_formats::tf32::TF32_UNIT_ROUNDOFF;

    #[test]
    fn matches_reference_within_tf32() {
        let a = power_law(60, 60, 4.0, 2.2, 21);
        let b = DenseMatrix::from_fn(60, 8, |r, c| ((r * 2 + c) % 11) as f32 * 0.15);
        for vlen in [4, 8] {
            let k = VectorSparseSpmm::new(&a, vlen).unwrap();
            let c = k.execute(&b).unwrap();
            assert!(c.max_abs_diff(&a.spmm_reference(&b).unwrap()) < 20.0 * TF32_UNIT_ROUNDOFF);
        }
    }

    #[test]
    fn vlen8_pads_more_than_vlen4_on_sparse_rows() {
        let a = power_law(256, 256, 2.0, 2.2, 22);
        let device = Device::rtx4090();
        let t4 = VectorSparseSpmm::new(&a, 4).unwrap().trace(128, &device, false);
        let t8 = VectorSparseSpmm::new(&a, 8).unwrap().trace(128, &device, false);
        // vlen 8 stores fewer-but-taller vectors; with lonely non-zeros the
        // TC work per useful non-zero is no better than vlen 4.
        assert!(t8.total_hmma_ops() >= t4.total_hmma_ops() * 0.5);
    }

    #[test]
    fn trace_nonempty() {
        let a = power_law(64, 64, 4.0, 2.2, 23);
        let t = VectorSparseSpmm::new(&a, 4).unwrap().trace(64, &Device::rtx4090(), false);
        assert!(t.num_tbs() > 0);
        assert!(t.total_hmma_ops() > 0.0);
    }
}
