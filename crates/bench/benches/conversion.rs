//! Criterion benches for format conversion (§6 overhead path): SGT
//! condensing, CSR → ME-TCF (sequential vs parallel), TCF, BELL, CVSE.

use criterion::{criterion_group, criterion_main, Criterion};
use dtc_core::convert::convert_to_metcf_parallel;
use dtc_formats::{gen, BellMatrix, Condensed, CvseMatrix, MeTcfMatrix, TcfMatrix};
use std::hint::black_box;

fn bench_conversions(c: &mut Criterion) {
    let a = gen::web(8192, 8192, 10.0, 2.1, 0.7, 11);
    let mut group = c.benchmark_group("convert_8192x8192");
    group.bench_function("sgt_condense", |b| b.iter(|| black_box(Condensed::from_csr(&a))));
    group.bench_function("metcf_seq", |b| b.iter(|| black_box(MeTcfMatrix::from_csr(&a))));
    group.bench_function("metcf_par4", |b| {
        b.iter(|| black_box(convert_to_metcf_parallel(&a, 4).expect("within u32 bounds")))
    });
    group.bench_function("tcf", |b| b.iter(|| black_box(TcfMatrix::from_csr(&a).expect("square"))));
    group.bench_function("bell32", |b| {
        b.iter(|| black_box(BellMatrix::from_csr(&a, 32, u64::MAX).expect("fits")))
    });
    group.bench_function("cvse8", |b| {
        b.iter(|| black_box(CvseMatrix::from_csr(&a, 8).expect("ok")))
    });
    group.finish();
}

criterion_group!(benches, bench_conversions);
criterion_main!(benches);
