//! Criterion benches for the GNN case-study path: one training step
//! (3 SpMMs + 5 GEMMs + activations) per backend, and the epoch time
//! accounting itself.

use criterion::{criterion_group, criterion_main, Criterion};
use dtc_formats::{gen, DenseMatrix};
use dtc_gnn::{DglGnnBackend, DtcGnnBackend, Gcn, GnnBackend};
use dtc_sim::Device;
use std::hint::black_box;

fn bench_training_step(c: &mut Criterion) {
    let graph = gen::community_with_shuffle(1024, 1024, 32, 8.0, 0.85, 0.2, 41);
    let x = DenseMatrix::from_fn(1024, 32, |r, q| ((r + q) % 7) as f32 * 0.2);
    let labels: Vec<usize> = (0..1024).map(|r| r % 8).collect();
    let gcn = Gcn::new(32, 32, 8, 1);
    let mut group = c.benchmark_group("gcn_step_1024");
    group.sample_size(10);
    let dtc = DtcGnnBackend::new(&graph);
    group.bench_function("dtc_backend", |b| {
        b.iter(|| black_box(gcn.loss_and_grads(&dtc, &x, &labels).expect("ok")))
    });
    let dgl = DglGnnBackend::new(&graph);
    group.bench_function("dgl_backend", |b| {
        b.iter(|| black_box(gcn.loss_and_grads(&dgl, &x, &labels).expect("ok")))
    });
    group.finish();
}

fn bench_epoch_accounting(c: &mut Criterion) {
    let graph = gen::community_with_shuffle(2048, 2048, 64, 10.0, 0.85, 0.2, 42);
    let device = Device::rtx4090();
    let dtc = DtcGnnBackend::new(&graph);
    c.bench_function("epoch_spmm_accounting", |b| {
        b.iter(|| {
            black_box(
                dtc.spmm_ms(false, 64, &device)
                    + dtc.spmm_ms(false, 128, &device)
                    + dtc.spmm_ms(true, 128, &device),
            )
        })
    });
}

criterion_group!(benches, bench_training_step, bench_epoch_accounting);
criterion_main!(benches);
