//! Criterion benches over the hot kernel paths: exact SpMM execution and
//! performance-trace lowering for each engine.

use criterion::{criterion_group, criterion_main, Criterion};
use dtc_baselines::{CusparseSpmm, SpmmKernel, SputnikSpmm, TcgnnSpmm};
use dtc_core::{BalancedDtcKernel, DtcKernel};
use dtc_formats::{gen, DenseMatrix};
use dtc_sim::Device;
use std::hint::black_box;

fn bench_execute(c: &mut Criterion) {
    let a = gen::web(2048, 2048, 10.0, 2.1, 0.7, 5);
    let b = DenseMatrix::from_fn(2048, 64, |r, q| ((r + q) % 7) as f32 * 0.25);
    let mut group = c.benchmark_group("execute_2048x2048_n64");
    group.bench_function("reference_csr", |bench| {
        bench.iter(|| black_box(a.spmm_reference(&b).expect("ok")))
    });
    let dtc = DtcKernel::new(&a);
    group.bench_function("dtc", |bench| bench.iter(|| black_box(dtc.execute(&b).expect("ok"))));
    let tcgnn = TcgnnSpmm::new(&a).expect("square");
    group.bench_function("tcgnn", |bench| bench.iter(|| black_box(tcgnn.execute(&b).expect("ok"))));
    group.finish();
}

fn bench_trace_lowering(c: &mut Criterion) {
    let a = gen::web(4096, 4096, 10.0, 2.1, 0.7, 6);
    let device = Device::rtx4090();
    let mut group = c.benchmark_group("trace_4096x4096_n128");
    let dtc = DtcKernel::new(&a);
    group.bench_function("dtc", |bench| bench.iter(|| black_box(dtc.trace(128, &device, false))));
    let bal = BalancedDtcKernel::new(&a);
    group.bench_function("dtc_balanced", |bench| {
        bench.iter(|| black_box(bal.trace(128, &device, false)))
    });
    let cus = CusparseSpmm::new(&a);
    group.bench_function("cusparse", |bench| {
        bench.iter(|| black_box(cus.trace(128, &device, false)))
    });
    let spk = SputnikSpmm::new(&a).expect("small");
    group.bench_function("sputnik", |bench| {
        bench.iter(|| black_box(spk.trace(128, &device, false)))
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let a = gen::web(4096, 4096, 10.0, 2.1, 0.7, 7);
    let device = Device::rtx4090();
    let dtc = DtcKernel::new(&a);
    let trace = dtc.trace(128, &device, false);
    c.bench_function("simulate_trace", |bench| {
        bench
            .iter(|| black_box(dtc_sim::simulate(&device, &trace, &dtc_sim::SimOptions::default())))
    });
}

criterion_group!(benches, bench_execute, bench_trace_lowering, bench_simulation);
criterion_main!(benches);
