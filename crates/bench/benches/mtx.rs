//! Criterion benches for Matrix Market I/O throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dtc_formats::{gen, mtx};
use std::hint::black_box;

fn bench_mtx_io(c: &mut Criterion) {
    let a = gen::web(8192, 8192, 10.0, 2.1, 0.7, 51);
    let mut text = Vec::new();
    mtx::write_mtx(&mut text, &a).expect("write ok");
    let mut group = c.benchmark_group("mtx_io");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("parse", |b| {
        b.iter(|| black_box(mtx::read_mtx(text.as_slice()).expect("valid")))
    });
    group.bench_function("write", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(text.len());
            mtx::write_mtx(&mut out, &a).expect("write ok");
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mtx_io);
criterion_main!(benches);
