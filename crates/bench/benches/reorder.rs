//! Criterion benches for the offline reordering stage: MinHash signature
//! computation, LSH candidate generation, and the full TCA pipeline
//! against its baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use dtc_formats::gen;
use dtc_reorder::{
    lsh_candidate_pairs, LouvainReorderer, LshParams, MetisLikeReorderer, MinHasher, Reorderer,
    TcaReorderer,
};
use std::hint::black_box;

fn bench_minhash(c: &mut Criterion) {
    let a = gen::community(4096, 4096, 128, 12.0, 0.9, 21);
    let hasher = MinHasher::new(32, 7);
    c.bench_function("minhash_4096_rows", |b| {
        b.iter(|| {
            let sigs: Vec<Vec<u64>> =
                (0..a.rows()).map(|r| hasher.signature(a.row_entries(r).0)).collect();
            black_box(sigs)
        })
    });
}

fn bench_lsh(c: &mut Criterion) {
    let a = gen::community(4096, 4096, 128, 12.0, 0.9, 22);
    let hasher = MinHasher::new(32, 8);
    let sigs: Vec<Vec<u64>> = (0..a.rows()).map(|r| hasher.signature(a.row_entries(r).0)).collect();
    c.bench_function("lsh_pairs_4096", |b| {
        b.iter(|| black_box(lsh_candidate_pairs(&hasher, &sigs, &LshParams::default())))
    });
}

fn bench_reorderers(c: &mut Criterion) {
    let a = gen::community(4096, 4096, 128, 12.0, 0.9, 23);
    let mut group = c.benchmark_group("reorder_4096");
    group.sample_size(10);
    group.bench_function("tca", |b| b.iter(|| black_box(TcaReorderer::default().reorder(&a))));
    group.bench_function("metis_like", |b| {
        b.iter(|| black_box(MetisLikeReorderer::default().reorder(&a)))
    });
    group.bench_function("louvain_like", |b| {
        b.iter(|| black_box(LouvainReorderer::default().reorder(&a)))
    });
    group.finish();
}

criterion_group!(benches, bench_minhash, bench_lsh, bench_reorderers);
criterion_main!(benches);
