//! Criterion bench for the Selector (§6 reports it at 24.8–42.0 % of one
//! SpMM): makespan simulation under the eq. (1) scheduling model.

use criterion::{criterion_group, criterion_main, Criterion};
use dtc_core::Selector;
use dtc_formats::{gen, MeTcfMatrix};
use dtc_sim::Device;
use std::hint::black_box;

fn bench_selector(c: &mut Criterion) {
    let device = Device::rtx4090();
    let selector = Selector::default();
    let mut group = c.benchmark_group("selector");
    for (label, a) in [
        ("type1_16k_windows", gen::community(16_384, 16_384, 512, 8.0, 0.85, 31)),
        ("type2_long_rows", gen::long_row(2048, 2048, 400.0, 1.2, 32)),
    ] {
        let metcf = MeTcfMatrix::from_csr(&a);
        let counts = metcf.window_block_counts();
        group.bench_function(label, |b| {
            b.iter(|| black_box(selector.decide_from_counts(&counts, &device)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selector);
criterion_main!(benches);
