//! Design-choice ablations beyond the paper's Fig 14 — one sweep per
//! design decision DESIGN.md calls out:
//!
//! 1. Hierarchy-I cluster cap (`BLOCK_HEIGHT`): the paper argues 16 (§4.3,
//!    "a larger cluster size limit (e.g., 64) results in the grouping of
//!    low-similarity rows");
//! 2. strict-balance group size (`BLOCKS_PER_TB`): the paper fixes 32;
//! 3. Selector AR threshold: the paper calibrates 1.2 offline;
//! 4. MinHash signature length: reorder quality vs cost;
//! 5. Tensor-Core input precision (§7 extension): TF32 / FP16 / BF16.

use dtc_baselines::SpmmKernel;
use dtc_bench::print_table;
use dtc_core::{BalancedDtcKernel, DtcKernel, Precision, Selector};
use dtc_datasets::{representative, scaled_device, suite_corpus};
use dtc_formats::{gen, Condensed, DenseMatrix, MeTcfMatrix};
use dtc_reorder::{Reorderer, TcaReorderer};
use dtc_sim::Device;
use std::time::Instant;

fn block_height_sweep() {
    // A shuffled community matrix: reordering quality fully attributable
    // to the cluster cap.
    let a = gen::community(4096, 4096, 128, 12.0, 0.9, 201);
    let mut rows = Vec::new();
    for cap in [8usize, 16, 32, 64] {
        let r = TcaReorderer { block_height: cap, ..TcaReorderer::default() };
        let m = a.permute_rows(&r.reorder(&a));
        let c = Condensed::from_csr(&m);
        rows.push(vec![
            format!("{cap}"),
            format!("{:.2}", c.mean_nnz_tc()),
            format!("{}", c.num_tc_blocks()),
        ]);
    }
    print_table(
        "Ablation 1: Hierarchy-I cluster cap (paper picks 16 = one row window)",
        &["BLOCK_HEIGHT", "MeanNnzTC", "TC blocks"],
        &rows,
    );
}

fn blocks_per_tb_sweep(device: &Device) {
    let d = representative().into_iter().find(|d| d.abbr == "ddi").expect("dataset");
    let a = d.matrix();
    let mut rows = Vec::new();
    for group in [8usize, 16, 32, 64, 128] {
        let k = BalancedDtcKernel::new(&a).with_blocks_per_tb(group);
        let r = k.simulate(128, device);
        rows.push(vec![format!("{group}"), format!("{:.4}", r.time_ms), format!("{}", r.num_tbs)]);
    }
    print_table(
        "Ablation 2: strict-balance TC-block group size on ddi (paper picks 32)",
        &["BLOCKS_PER_TB", "time (ms)", "thread blocks"],
        &rows,
    );
}

fn selector_threshold_sweep(device: &Device) {
    // Over the corpus: how often each threshold picks the kernel that is
    // actually faster, and the total time left on the table vs an oracle.
    let n = 128;
    let corpus = suite_corpus();
    let mut per_matrix: Vec<(f64, f64, f64)> = Vec::new(); // (ar, base, balanced)
    for d in &corpus {
        let a = d.matrix();
        let metcf = MeTcfMatrix::from_csr(&a);
        let ar = Selector::default().decide(&metcf, device).approximation_ratio;
        let base = DtcKernel::new(&a).simulate(n, device).time_ms;
        let balanced = BalancedDtcKernel::new(&a).simulate(n, device).time_ms;
        per_matrix.push((ar, base, balanced));
    }
    let oracle: f64 = per_matrix.iter().map(|&(_, b, bal)| b.min(bal)).sum();
    let mut rows = Vec::new();
    for threshold in [1.0, 1.1, 1.2, 1.5, 2.0, f64::INFINITY] {
        let mut total = 0.0;
        let mut correct = 0usize;
        for &(ar, base, balanced) in &per_matrix {
            let picked = if ar > threshold { balanced } else { base };
            total += picked;
            if (picked - base.min(balanced)).abs() < 1e-12 {
                correct += 1;
            }
        }
        let label =
            if threshold.is_infinite() { "always base".to_owned() } else { format!("{threshold}") };
        rows.push(vec![
            label,
            format!("{:.1}%", correct as f64 / per_matrix.len() as f64 * 100.0),
            format!("{:+.2}%", (total / oracle - 1.0) * 100.0),
        ]);
    }
    print_table(
        &format!(
            "Ablation 3: Selector AR threshold over {} corpus matrices (paper picks 1.2)",
            per_matrix.len()
        ),
        &["threshold", "correct choice", "time vs oracle"],
        &rows,
    );
}

fn minhash_k_sweep() {
    let a = gen::community(4096, 4096, 128, 12.0, 0.9, 202);
    let mut rows = Vec::new();
    for k in [8usize, 16, 32, 64] {
        let lsh = dtc_reorder::LshParams { bands: k / 2, rows_per_band: 2, max_bucket_pairs: 48 };
        let r = TcaReorderer { minhash_k: k, lsh, ..TcaReorderer::default() };
        let t0 = Instant::now();
        let perm = r.reorder(&a);
        let elapsed = t0.elapsed().as_secs_f64() * 1e3;
        let density = Condensed::from_csr(&a.permute_rows(&perm)).mean_nnz_tc();
        rows.push(vec![format!("{k}"), format!("{density:.2}"), format!("{elapsed:.0} ms")]);
    }
    print_table(
        "Ablation 4: MinHash signature length (quality vs reordering cost)",
        &["k", "MeanNnzTC after TCA", "CPU reorder time"],
        &rows,
    );
}

fn precision_sweep(device: &Device) {
    let d = representative().into_iter().find(|d| d.abbr == "protein").expect("dataset");
    let a = d.matrix();
    let b = DenseMatrix::from_fn(a.cols(), 32, |r, c| ((r * 17 + c * 5) % 29) as f32 * 0.071);
    let reference = a.spmm_reference(&b).expect("dims agree");
    let mut rows = Vec::new();
    for precision in [Precision::Tf32, Precision::Fp16, Precision::Bf16] {
        let k = DtcKernel::new(&a).with_precision(precision);
        let time = k.simulate(128, device).time_ms;
        // Normalize the worst absolute error by the output scale (raw
        // relative error explodes on near-cancelled outputs).
        let scale = reference.frobenius_norm() / (reference.as_slice().len() as f32).sqrt();
        let err = k.execute(&b).expect("dims agree").max_abs_diff(&reference) / scale;
        rows.push(vec![precision.name().to_owned(), format!("{time:.4}"), format!("{err:.2e}")]);
    }
    print_table(
        "Ablation 5: Tensor-Core input precision on protein (§7 extension)",
        &["precision", "time (ms)", "max error / RMS output"],
        &rows,
    );
}

fn gcn_depth_sweep(device: &Device) {
    use dtc_gnn::{DeepGcn, DglGnnBackend, DtcGnnBackend};
    let graph = dtc_datasets::igb_datasets()[0].matrix();
    let dtc = DtcGnnBackend::new(&graph);
    let dgl = DglGnnBackend::new(&graph);
    let mut rows = Vec::new();
    for depth in [2usize, 3, 4, 6] {
        let mut dims = vec![64usize];
        dims.extend(std::iter::repeat_n(128usize, depth - 1));
        dims.push(8);
        let model = DeepGcn::new(&dims, 1);
        let t_dtc = model.epoch_spmm_ms(&dtc, 64, device);
        let t_dgl = model.epoch_spmm_ms(&dgl, 64, device);
        rows.push(vec![
            format!("{depth}"),
            format!("{t_dtc:.4}"),
            format!("{t_dgl:.4}"),
            format!("{:.2}x", t_dgl / t_dtc),
        ]);
    }
    print_table(
        "Ablation 6: GCN depth (per-epoch SpMM time; deeper models amplify the kernel)",
        &["layers", "DTC ms", "DGL ms", "speedup"],
        &rows,
    );
}

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    let device = scaled_device(Device::rtx4090());
    block_height_sweep();
    blocks_per_tb_sweep(&device);
    selector_threshold_sweep(&device);
    minhash_k_sweep();
    precision_sweep(&device);
    gcn_depth_sweep(&device);
}
