//! Churn sweep of the two-tier (lossy front + exact) caches on all four
//! converted hot paths: the ME-TCF conversion cache, the per-engine trace
//! cache, the duration-class interning table, and the serve engine pool.
//!
//! For each path and each working-set size W, the benchmark warms W keys,
//! then times a repeated-key lookup loop twice — exact-only
//! (`set_front_tier_enabled(false)`) and two-tier — reporting ns/lookup
//! (best of several repeats) and the front-tier hit rate. Writes
//! `BENCH_cache.json`.
//!
//! Every run first pins correctness: an end-to-end pipeline execute must
//! be **bitwise identical** with the front tier off and on (at 1 and 4
//! worker threads), and a crafted same-slot collision must be verify-
//! rejected, never cross-served.
//!
//! Gates (smoke and full): two-tier ns/lookup ≤ exact-only on the
//! steady-state (W=1) repeated-key workload for the conversion and intern
//! paths, and `verify_rejects > 0` under the crafted collision. The full
//! run additionally requires ≥ 2x steady-state speedup on those two paths.

use dtc_core::cache::metcf_for;
use dtc_core::{DtcSpmm, EngineConfig, EngineKind, KeyMaterial};
use dtc_formats::gen::uniform;
use dtc_formats::{CsrMatrix, DenseMatrix};
use dtc_par::{set_front_tier_enabled, FrontTier};
use dtc_serve::{EnginePool, PoolConfig, PoolKey};
use dtc_sim::{Device, KernelTrace, TbWork};
use dtc_telemetry::json::Json;
use std::sync::Arc;
use std::time::Instant;

/// Timing repeats per (path, W, mode); the minimum is reported.
const REPS: usize = 7;

/// One sweep point.
struct Point {
    working_set: usize,
    exact_ns: f64,
    two_tier_ns: f64,
    l1_hit_rate: f64,
}

impl Point {
    fn speedup(&self) -> f64 {
        self.exact_ns / self.two_tier_ns
    }
}

/// Best-of-[`REPS`] ns per lookup for `run` (one full timed loop per call).
fn ns_per_lookup(total_lookups: usize, mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_nanos() as f64 / total_lookups as f64);
    }
    best
}

/// Front-tier hit rate observed across one extra two-tier pass, read from
/// the `cache.<name>.*` counters.
fn l1_hit_rate(name: &str, mut run: impl FnMut()) -> f64 {
    let hits = dtc_telemetry::counter(&format!("cache.{name}.l1_hits"));
    let misses = dtc_telemetry::counter(&format!("cache.{name}.l1_misses"));
    let (h0, m0) = (hits.get(), misses.get());
    run();
    let (h, m) = (hits.get() - h0, misses.get() - m0);
    if h + m == 0 {
        0.0
    } else {
        h as f64 / (h + m) as f64
    }
}

/// Times one path at one working-set size: `run(iters)` performs `iters`
/// cycles over the W warmed keys, in both modes.
fn sweep_point(name: &str, w: usize, lookups: usize, mut run: impl FnMut(usize)) -> Point {
    let iters = (lookups / w).max(1);
    let total = iters * w;
    set_front_tier_enabled(false);
    let exact_ns = ns_per_lookup(total, || run(iters));
    set_front_tier_enabled(true);
    run(1); // re-warm the front slots after the exact-only phase
    let two_tier_ns = ns_per_lookup(total, || run(iters));
    let hit_rate = l1_hit_rate(name, || run(iters));
    Point { working_set: w, exact_ns, two_tier_ns, l1_hit_rate: hit_rate }
}

/// ME-TCF conversion cache: repeated `metcf_for` over W resident matrices.
/// A front hit skips the second set of full-matrix passes (`matrix_key`).
fn bench_conversion(sets: &[usize], lookups: usize) -> Vec<Point> {
    sets.iter()
        .map(|&w| {
            dtc_core::clear_conversion_cache();
            let mats: Vec<CsrMatrix> =
                (0..w).map(|i| uniform(96, 96, 600, 0xC0DE + i as u64)).collect();
            for m in &mats {
                let _ = metcf_for(m);
            }
            sweep_point("conversion", w, lookups, |iters| {
                for _ in 0..iters {
                    for m in &mats {
                        let _ = std::hint::black_box(metcf_for(m));
                    }
                }
            })
        })
        .collect()
}

/// Per-engine trace cache: repeated `SpmmKernel::trace` over W column
/// counts on one engine. Both tiers pay the dominant trace clone, so the
/// delta here is the smallest of the four paths.
fn bench_trace(sets: &[usize], lookups: usize) -> Vec<Point> {
    let a = uniform(128, 128, 1000, 0x7ACE);
    let device = Device::rtx4090();
    sets.iter()
        .map(|&w| {
            let engine = DtcSpmm::new(&a);
            let ns: Vec<usize> = (0..w).map(|i| 4 << (i % 6)).collect();
            for &n in &ns {
                let _ = engine.trace(n, &device, false);
            }
            sweep_point("trace", w, lookups, |iters| {
                for _ in 0..iters {
                    for &n in &ns {
                        std::hint::black_box(engine.trace(n, &device, false));
                    }
                }
            })
        })
        .collect()
}

/// A distinct duration class per `i` (field values chosen so no two
/// classes are bitwise equal).
fn tb_class(i: usize) -> TbWork {
    TbWork {
        alu_ops: (i * 3 + 1) as f64,
        hmma_ops: (i % 7 + 1) as f64,
        lsu_a_sectors: (i * 5 + 2) as f64,
        iters: (i + 1) as f64,
        ..TbWork::default()
    }
}

/// Duration-class interning: repeated `KernelTrace::push` cycling W
/// classes. A front hit replaces the byte-granular exact key (104 fold
/// steps) with a 13-word hash. Working sets past the 128 front slots
/// exercise the thrash fallback.
fn bench_intern(sets: &[usize], lookups: usize) -> Vec<Point> {
    sets.iter()
        .map(|&w| {
            let mut trace = KernelTrace::new(6, 8);
            for i in 0..w {
                trace.push(tb_class(i));
            }
            sweep_point("intern", w, lookups, |iters| {
                for _ in 0..iters {
                    for i in 0..w {
                        trace.push(tb_class(i));
                    }
                }
            })
        })
        .collect()
}

/// Serve engine pool: repeated `get_or_prepare` over W resident engines.
/// A front hit skips the SipHash bucket map and the bucket walk.
fn bench_pool(sets: &[usize], lookups: usize) -> Vec<Point> {
    let config = EngineConfig::default();
    sets.iter()
        .map(|&w| {
            let pool = EnginePool::new(PoolConfig { capacity: w.max(8), warmup_uses: 1 });
            let mats: Vec<Arc<CsrMatrix>> =
                (0..w).map(|i| Arc::new(uniform(64, 64, 400, 0x9001 + i as u64))).collect();
            let keys: Vec<PoolKey> = mats
                .iter()
                .map(|m| PoolKey::new(EngineKind::Cusparse, &config, KeyMaterial::of(m)))
                .collect();
            for (key, m) in keys.iter().zip(&mats) {
                let m = Arc::clone(m);
                let cfg = config.clone();
                pool.get_or_prepare(key.clone(), move || {
                    dtc_core::prepare(EngineKind::Cusparse, &cfg, &m)
                })
                .expect("warm prepare");
            }
            sweep_point("pool", w, lookups, |iters| {
                for _ in 0..iters {
                    for (key, m) in keys.iter().zip(&mats) {
                        let m = Arc::clone(m);
                        let cfg = config.clone();
                        std::hint::black_box(
                            pool.get_or_prepare(key.clone(), move || {
                                dtc_core::prepare(EngineKind::Cusparse, &cfg, &m)
                            })
                            .expect("resident lookup"),
                        );
                    }
                }
            })
        })
        .collect()
}

/// End-to-end bitwise identity: the same pipeline execute with the front
/// tier off and on (cold and warm caches) at 1 and 4 worker threads.
fn assert_bitwise_identical() {
    let a = uniform(160, 160, 1400, 0xB17);
    let b = DenseMatrix::from_fn(160, 8, |r, c| ((r * 13 + c * 5) % 19) as f32 - 9.0);
    let bits = |m: &DenseMatrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    for threads in [1usize, 4] {
        dtc_par::set_threads(Some(threads));
        set_front_tier_enabled(false);
        dtc_core::clear_conversion_cache();
        let exact = DtcSpmm::new(&a).execute(&b).expect("exact-only execute");
        set_front_tier_enabled(true);
        dtc_core::clear_conversion_cache();
        let cold = DtcSpmm::new(&a).execute(&b).expect("two-tier cold execute");
        let warm = DtcSpmm::new(&a).execute(&b).expect("two-tier warm execute");
        assert_eq!(bits(&exact), bits(&cold), "two-tier (cold) diverged at T={threads}");
        assert_eq!(bits(&exact), bits(&warm), "two-tier (warm) diverged at T={threads}");
    }
    dtc_par::set_threads(None);
    println!("bitwise identity: exact-only == two-tier (cold+warm) at T=1 and T=4");
}

/// Crafted same-slot collision on a dedicated tier: the foreign probe must
/// be verify-rejected, and the resident entry must survive it.
fn crafted_collision_rejects() -> u64 {
    let rejects = dtc_telemetry::counter("cache.bench_collide.verify_rejects");
    let before = rejects.get();
    let mut t: FrontTier<u64, u64> = FrontTier::new("bench_collide", 16);
    t.insert(3, 111, 1);
    assert_eq!(t.get(3 + 16, &222), None, "colliding key must not be cross-served");
    assert_eq!(t.get(3, &111), Some(1), "resident entry must survive the reject");
    rejects.get() - before
}

fn json_point(p: &Point) -> Json {
    Json::obj_inline(vec![
        ("working_set", Json::usize(p.working_set)),
        ("exact_ns", Json::f(p.exact_ns, 1)),
        ("two_tier_ns", Json::f(p.two_tier_ns, 1)),
        ("speedup", Json::f(p.speedup(), 3)),
        ("l1_hit_rate", Json::f(p.l1_hit_rate, 4)),
    ])
}

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    let args = dtc_bench::cli::Args::parse();
    let smoke = args.smoke();

    assert_bitwise_identical();
    let rejects = crafted_collision_rejects();
    assert!(rejects > 0, "crafted collision must be verify-rejected (got {rejects})");
    println!("crafted collision: {rejects} verify reject(s), zero cross-serves");

    // Working-set sweeps. The conversion sweep stays under the exact
    // tier's 64-entry cap (past it every lookup reconverts and the
    // benchmark measures conversion, not lookup). The intern sweep's 512
    // point oversubscribes the 128 front slots to show thrash fallback.
    let (lookups, conv_sets, trace_sets, intern_sets, pool_sets): (
        usize,
        Vec<usize>,
        Vec<usize>,
        Vec<usize>,
        Vec<usize>,
    ) = if smoke {
        (2_000, vec![1, 8], vec![1, 4], vec![1, 64, 512], vec![1, 4])
    } else {
        (20_000, vec![1, 4, 16, 48], vec![1, 2, 4], vec![1, 16, 64, 512], vec![1, 4, 8])
    };

    let paths: Vec<(&str, Vec<Point>)> = vec![
        ("conversion", bench_conversion(&conv_sets, lookups)),
        ("trace", bench_trace(&trace_sets, lookups / 4)),
        ("intern", bench_intern(&intern_sets, lookups)),
        ("pool", bench_pool(&pool_sets, lookups)),
    ];

    println!("\n| path | W | exact ns | two-tier ns | speedup | l1 hit rate |");
    println!("|---|---|---|---|---|---|");
    for (name, points) in &paths {
        for p in points {
            println!(
                "| {name} | {} | {:.0} | {:.0} | {:.2}x | {:.1}% |",
                p.working_set,
                p.exact_ns,
                p.two_tier_ns,
                p.speedup(),
                100.0 * p.l1_hit_rate
            );
        }
    }

    // Gates: steady state (W=1) must never regress on the paths where the
    // front hit provably does less work; the full run additionally
    // requires the 2x the tentpole promises there.
    for gated in ["conversion", "intern"] {
        let steady = paths
            .iter()
            .find(|(n, _)| n == &gated)
            .and_then(|(_, pts)| pts.iter().find(|p| p.working_set == 1))
            .expect("steady-state point");
        assert!(
            steady.two_tier_ns <= steady.exact_ns,
            "{gated}: two-tier steady state ({:.1} ns) must not exceed exact-only ({:.1} ns)",
            steady.two_tier_ns,
            steady.exact_ns
        );
        if !smoke {
            assert!(
                steady.speedup() >= 2.0,
                "{gated}: steady-state speedup {:.2}x below the 2x acceptance bar",
                steady.speedup()
            );
        }
    }
    // Thrash fallback: oversubscribing the intern front tier must engage
    // the exact tier (low hit rate), not degrade into wrong answers (the
    // bitwise check above) or a large slowdown.
    if let Some(thrash) = paths
        .iter()
        .find(|(n, _)| n == &"intern")
        .and_then(|(_, pts)| pts.iter().find(|p| p.working_set == 512))
    {
        assert!(
            thrash.l1_hit_rate < 0.9,
            "a 4x-oversubscribed front tier should mostly miss (hit rate {:.2})",
            thrash.l1_hit_rate
        );
    }

    let json = Json::obj(vec![
        ("bench", Json::str("cache")),
        ("smoke", Json::bool(smoke)),
        ("timing_reps", Json::usize(REPS)),
        ("collision_verify_rejects", Json::u64(rejects)),
        (
            "paths",
            Json::arr(
                paths
                    .iter()
                    .map(|(name, points)| {
                        Json::obj(vec![
                            ("path", Json::str(*name)),
                            ("sweep", Json::arr(points.iter().map(json_point).collect())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render();
    std::fs::write("BENCH_cache.json", &json).expect("write BENCH_cache.json");
    println!("\nwrote BENCH_cache.json");
}
