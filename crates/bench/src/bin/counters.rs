//! Dumps the simulator's full performance-counter set for one matrix —
//! the Nsight-Compute-style view behind every table: instruction mix,
//! per-SM cycles and occupancy, L2 sectors and DRAM traffic.
//!
//! Usage: `counters [abbr] [n]` (defaults: `DD`, 128). With
//! `DTC_METRICS=<path>` the registry snapshot (pipeline-phase spans and
//! cache counters included) is also written as JSON on exit.

use dtc_baselines::{CusparseSpmm, SpmmKernel, TcgnnSpmm};
use dtc_core::DtcSpmm;
use dtc_datasets::{representative, scaled_device};
use dtc_sim::{CounterSet, Device, SimOptions, SimReport};

fn dump(name: &str, report: &SimReport) {
    let c: &CounterSet = &report.counters;
    let i = &c.instructions;
    println!("\n### {name}");
    println!("  time            {:10.4} ms  ({} TBs)", report.time_ms, report.num_tbs);
    println!(
        "  sm cycles       {:10.0} total over {} SMs (max {:.0})",
        c.total_sm_cycles(),
        c.sm_cycles.len(),
        c.sm_cycles.iter().cloned().fold(0.0, f64::max)
    );
    let occ_mean = c.sm_occupancy.iter().sum::<f64>() / c.sm_occupancy.len().max(1) as f64;
    println!(
        "  occupancy       {:10.3} mean achieved (effective {})",
        occ_mean, c.effective_occupancy
    );
    println!("  HMMA            {:10.0}", i.hmma);
    println!("  IMAD            {:10.0}  ({:.1} per HMMA)", i.imad, report.imad_per_hmma);
    println!("  FFMA            {:10.0}", i.ffma);
    println!("  LDG sectors     {:10.0}", i.ldg_sectors);
    println!("  cp.async sectors{:10.0}", i.cp_async_sectors);
    println!("  STG sectors     {:10.0}", i.stg_sectors);
    println!("  STS/LDS         {:10.0}", i.sts);
    println!("  SHFL            {:10.0}", i.shfl);
    println!("  ATOM            {:10.0}", i.atom);
    println!(
        "  L2 sectors      {:10.0} hits / {:.0} misses ({:.1}% hit)",
        c.l2_sector_hits,
        c.l2_sector_misses,
        100.0 * c.l2_hit_rate()
    );
    println!("  DRAM traffic    {:10.2} MB", c.dram_bytes / (1024.0 * 1024.0));
    println!("  stall cycles    {:10.0}", c.stall_cycles);
}

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    let args = dtc_bench::cli::Args::parse();
    let abbr = args.positional(0).unwrap_or("DD").to_owned();
    let n: usize = args.parsed(1, 128);

    let device = scaled_device(Device::rtx4090());
    let d = representative()
        .into_iter()
        .find(|d| d.abbr == abbr)
        .unwrap_or_else(|| panic!("unknown dataset abbreviation {abbr:?}"));
    let a = d.matrix();
    println!(
        "## Performance counters — {} (rows={}, nnz={}), N={}, device={}",
        d.abbr,
        a.rows(),
        a.nnz(),
        n,
        device.name
    );

    let opts = SimOptions { simulate_l2: true, ..SimOptions::default() };
    let dtc = DtcSpmm::builder().device(device.clone()).build(&a);
    dump("DTC-SpMM", &dtc.simulate_with(n, &device, &opts));
    dump("cuSPARSE", &CusparseSpmm::new(&a).simulate_with(n, &device, &opts));
    if let Ok(tcgnn) = TcgnnSpmm::new(&a) {
        dump("TCGNN-SpMM", &tcgnn.simulate_with(n, &device, &opts));
    }
    dump_caches();
    dump_par();
}

/// Every cache in the stack, per tier: the totals (`core.cache.*`,
/// `serve.pool.*` — each lookup counted once whichever tier resolved it)
/// alongside the lossy front tier's own `cache.<name>.*` counters.
fn dump_caches() {
    println!(
        "\n### caches (front tier {})",
        if dtc_par::front_tier_enabled() { "on" } else { "off" }
    );
    let c = |name: &str| dtc_telemetry::counter(name).get();
    println!(
        "  conversion      {:10} hits / {} misses / {} collisions (total)",
        c("core.cache.conversion.hits"),
        c("core.cache.conversion.misses"),
        c("core.cache.conversion.collisions")
    );
    println!(
        "  trace           {:10} hits / {} misses (total)",
        c("core.cache.trace.hits"),
        c("core.cache.trace.misses")
    );
    for name in ["conversion", "trace", "intern", "pool"] {
        let hits = c(&format!("cache.{name}.l1_hits"));
        let misses = c(&format!("cache.{name}.l1_misses"));
        if hits + misses == 0 {
            continue; // tier never probed in this run
        }
        println!(
            "  {name:<15} {hits:10} l1 hits / {} l1 misses / {} evictions / {} verify rejects ({:.0} ns/lookup sampled)",
            misses,
            c(&format!("cache.{name}.l1_evictions")),
            c(&format!("cache.{name}.verify_rejects")),
            dtc_telemetry::gauge(&format!("cache.{name}.ns_per_lookup")).get()
        );
    }
}

/// The host-side parallel substrate's own counters, accumulated over every
/// lowering/simulation above: shard tasks and steals, busy-time imbalance,
/// arena reuse, and the engine's wall/busy/critical-path clocks.
fn dump_par() {
    let s = dtc_par::par_stats();
    println!("\n### dtc-par");
    println!("  threads         {:10}", dtc_par::num_threads());
    println!(
        "  invocations     {:10}  ({:.2} ms wall, {:.2} ms busy, {:.2} ms critical path)",
        s.invocations,
        s.wall_ns as f64 / 1e6,
        s.busy_ns as f64 / 1e6,
        s.crit_ns as f64 / 1e6
    );
    println!("  shard tasks     {:10}", dtc_telemetry::counter("par.shard.tasks").get());
    println!("  shard steals    {:10}", dtc_telemetry::counter("par.shard.steals").get());
    println!(
        "  max imbalance   {:10.3}  (busy_max x workers / busy_sum, last invocation)",
        dtc_telemetry::gauge("par.shard.max_imbalance").get()
    );
    println!("  arena leases    {:10}", dtc_telemetry::counter("par.arena.resets").get());
    println!(
        "  arena peak      {:10.1} KiB retained",
        dtc_telemetry::gauge("par.arena.bytes_peak").get() / 1024.0
    );
}
