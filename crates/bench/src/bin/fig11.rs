//! Figure 11: overall performance comparison on the RTX4090 model.
//!
//! - Default mode (Fig 11a): speedups of every method over cuSPARSE-SpMM
//!   on the 8 representative matrices, averaged over N ∈ {128, 256, 512}.
//! - `--suite` (Fig 11b): achieved GFLOPS of the main methods across the
//!   SuiteSparse stand-in corpus (sorted by DTC-SpMM GFLOPS) plus geomean
//!   speedups.

use dtc_baselines::{CusparseSpmm, SparseTirSpmm, SpmmKernel, SputnikSpmm, TcgnnSpmm};
use dtc_bench::{fig11_lineup, fmt_x, geomean, print_table, row_scale};
use dtc_core::DtcSpmm;
use dtc_datasets::{representative, scaled_device, suite_corpus};
use dtc_sim::Device;

fn representative_mode(device: &Device, ns: &[usize]) {
    let datasets = representative();
    let mut headers: Vec<&str> = vec!["Method"];
    let abbrs: Vec<String> = datasets.iter().map(|d| d.abbr.clone()).collect();
    for a in &abbrs {
        headers.push(a);
    }

    // speedups[method][dataset] averaged (geomean) over N.
    let mut method_names: Vec<String> = Vec::new();
    let mut speedups: Vec<Vec<f64>> = Vec::new();
    for (di, d) in datasets.iter().enumerate() {
        let a = d.matrix();
        let scale = row_scale(d);
        let mut per_n: Vec<Vec<Option<f64>>> = Vec::new(); // [n][method]
        for &n in ns {
            let lineup = fig11_lineup(&a, n, device, scale);
            if method_names.is_empty() {
                method_names = lineup.iter().map(|(name, _)| name.clone()).collect();
                speedups = vec![vec![0.0; datasets.len()]; method_names.len()];
            }
            let cus = lineup[0].1.clone().expect("cuSPARSE always runs");
            per_n.push(lineup.iter().map(|(_, t)| t.as_ref().ok().map(|&ms| cus / ms)).collect());
        }
        for (mi, _) in method_names.iter().enumerate() {
            let vals: Vec<f64> = per_n.iter().filter_map(|row| row[mi]).collect();
            speedups[mi][di] = if vals.len() == ns.len() { geomean(&vals) } else { f64::NAN };
        }
    }

    let rows: Vec<Vec<String>> = method_names
        .iter()
        .enumerate()
        .map(|(mi, name)| {
            let mut row = vec![name.clone()];
            for &s in &speedups[mi][..abbrs.len()] {
                row.push(if s.is_nan() { "OOM/NS".into() } else { fmt_x(s) });
            }
            row
        })
        .collect();
    print_table(
        &format!(
            "Figure 11a: speedup over cuSPARSE-SpMM on {} (geomean over N in {:?})",
            device.name, ns
        ),
        &headers,
        &rows,
    );
}

fn suite_mode(device: &Device) {
    let n = 128;
    let mut rows_out: Vec<(f64, Vec<String>)> = Vec::new();
    let mut speed_tcgnn = Vec::new();
    let mut speed_cus = Vec::new();
    let mut speed_tir = Vec::new();
    let mut speed_sputnik = Vec::new();
    for d in suite_corpus() {
        let a = d.matrix();
        let flops = a.spmm_flops(n);
        let dtc = DtcSpmm::builder().device(device.clone()).build(&a);
        let t_dtc = dtc.simulate(n, device);
        let g_dtc = t_dtc.gflops(flops);
        let t_cus = CusparseSpmm::new(&a).simulate(n, device);
        let t_spk = SputnikSpmm::new(&a).expect("within int32").simulate(n, device);
        let t_tir = SparseTirSpmm::new(&a).simulate(n, device);
        let t_tcg = TcgnnSpmm::new(&a).expect("square").simulate(n, device);
        speed_cus.push(t_cus.time_ms / t_dtc.time_ms);
        speed_sputnik.push(t_spk.time_ms / t_dtc.time_ms);
        speed_tir.push(t_tir.time_ms / t_dtc.time_ms);
        speed_tcgnn.push(t_tcg.time_ms / t_dtc.time_ms);
        rows_out.push((
            g_dtc,
            vec![
                d.name.clone(),
                format!("{:.1}", g_dtc),
                format!("{:.1}", t_cus.gflops(flops)),
                format!("{:.1}", t_spk.gflops(flops)),
                format!("{:.1}", t_tir.gflops(flops)),
                format!("{:.1}", t_tcg.gflops(flops)),
            ],
        ));
    }
    rows_out.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let rows: Vec<Vec<String>> = rows_out.into_iter().map(|(_, r)| r).collect();
    print_table(
        &format!(
            "Figure 11b: GFLOPS across {} SuiteSparse stand-ins on {} (sorted by DTC)",
            rows.len(),
            device.name
        ),
        &["Matrix", "DTC", "cuSPARSE", "Sputnik", "SparseTIR", "TCGNN"],
        &rows,
    );
    println!("\nSuiteSparse* geomean speedups of DTC-SpMM:");
    println!("  vs cuSPARSE : {}", fmt_x(geomean(&speed_cus)));
    println!("  vs TCGNN    : {}", fmt_x(geomean(&speed_tcgnn)));
    println!("  vs SparseTIR: {}", fmt_x(geomean(&speed_tir)));
    println!("  vs Sputnik  : {}", fmt_x(geomean(&speed_sputnik)));
    println!("  (paper RTX4090: 2.16x, 3.25x, 1.57x, 1.46x)");
}

fn extended_mode(device: &Device) {
    let mut names: Vec<String> = Vec::new();
    let mut rows_by_method: Vec<Vec<String>> = Vec::new();
    let datasets = representative();
    for d in &datasets {
        let a = d.matrix();
        let lineup = dtc_bench::extended_lineup(&a, 128, device);
        if names.is_empty() {
            names = lineup.iter().map(|(n, _)| n.clone()).collect();
            rows_by_method = names.iter().map(|n| vec![n.clone()]).collect();
        }
        let cus = lineup[0].1;
        for (mi, (_, ms)) in lineup.iter().enumerate() {
            rows_by_method[mi].push(fmt_x(cus / ms));
        }
    }
    let mut headers: Vec<&str> = vec!["Method"];
    for d in &datasets {
        headers.push(&d.abbr);
    }
    print_table(
        "Extended lineup (speedup over cuSPARSE, N=128): the methods the paper cites but does not plot",
        &headers,
        &rows_by_method,
    );
}

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    let device = scaled_device(Device::rtx4090());
    let args = dtc_bench::cli::Args::parse();
    if args.flag("suite") {
        suite_mode(&device);
    } else if args.flag("extended") {
        extended_mode(&device);
    } else if args.flag("avg") {
        // The paper's figure averages N in {128, 256, 512}. Our TCGNN model's
        // window-scan cost is constant in N and amortizes faster than real
        // hardware at large N (see EXPERIMENTS.md), so the primary view is
        // N=128 below.
        representative_mode(&device, &[128, 256, 512]);
    } else {
        representative_mode(&device, &[128]);
    }
}
