//! Figure 12: DTC-SpMM speedups over the structured-sparsity TC methods —
//! Block-SpMM (BELL, block sizes 32/64) and VectorSparse (CVSE, vector
//! lengths 4/8) — on the 8 representative matrices at N=128.
//!
//! Known scaled-reproduction caveat (documented in EXPERIMENTS.md): the
//! Type-II stand-ins are ~100× denser than the originals, which makes
//! BELL's dense blocks unrealistically full; on paper-scale matrices the
//! fill ratio collapses and DTC wins 1.14–23.51×. The Type-I columns carry
//! the reproducible shape.

use dtc_baselines::{BlockSpmm, SpmmKernel, VectorSparseSpmm};
use dtc_bench::{fmt_x, print_table};
use dtc_core::DtcSpmm;
use dtc_datasets::{representative, scaled_device};
use dtc_sim::Device;

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    let device = scaled_device(Device::rtx4090());
    let n = 128;
    let mut rows = Vec::new();
    for d in representative() {
        let a = d.matrix();
        let dtc = DtcSpmm::builder().device(device.clone()).build(&a).simulate(n, &device).time_ms;
        let mut row = vec![d.abbr.clone()];
        for bs in [32usize, 64] {
            row.push(match BlockSpmm::new(&a, bs, device.global_mem_bytes) {
                Ok(k) => {
                    let fill = k.bell().fill_ratio();
                    format!(
                        "{} (fill {:.1}%)",
                        fmt_x(k.simulate(n, &device).time_ms / dtc),
                        fill * 100.0
                    )
                }
                Err(_) => "OOM".into(),
            });
        }
        for vlen in [4usize, 8] {
            row.push(match VectorSparseSpmm::new(&a, vlen) {
                Ok(k) => fmt_x(k.simulate(n, &device).time_ms / dtc),
                Err(e) => e.to_string(),
            });
        }
        rows.push(row);
    }
    print_table(
        "Figure 12: DTC-SpMM speedup over Block-SpMM and VectorSparse (RTX4090, N=128)",
        &["Dataset", "vs BELL-32", "vs BELL-64", "vs CVSE-4", "vs CVSE-8"],
        &rows,
    );
    println!(
        "\nPaper: 1.14x-23.51x over Block-SpMM, 1.89x-4.95x over VectorSparse.\n\
         Shape holds on Type I; Type II inherits the density artifact of scaling\n\
         (see fill ratios — paper-scale fill is ~100x lower)."
    );
}
