//! Figure 13 + the §5.3 breakdown study:
//!
//! - ME-TCF storage effectiveness (index memory vs CSR/TCF, before and
//!   after TCU-Cache-Aware reordering);
//! - (a) `MeanNnzTC` under SGT alone vs METIS-like, Louvain-like, LSH64
//!   and TCA reordering;
//! - (b) throughput gain from TCA reordering for DTC-SpMM and cuSPARSE;
//! - (c) L2 hit rate: TCU-only hierarchy vs LSH64 vs full TCA (simulated
//!   sectored L2 over the recorded B-access streams).

use dtc_baselines::{CusparseSpmm, SpmmKernel};
use dtc_bench::print_table;
use dtc_core::DtcKernel;
use dtc_datasets::{representative, scaled_device};
use dtc_formats::footprint::footprint_with_metcf;
use dtc_formats::{Condensed, CsrMatrix, MeTcfMatrix};
use dtc_reorder::{
    IdentityReorderer, LouvainReorderer, Lsh64Reorderer, MetisLikeReorderer, Reorderer,
    TcaReorderer, TcuOnlyReorderer,
};
use dtc_sim::Device;

fn mean_nnz_after(a: &CsrMatrix, r: &dyn Reorderer) -> f64 {
    Condensed::from_csr(&a.permute_rows(&r.reorder(a))).mean_nnz_tc()
}

fn storage_breakdown(datasets: &[(String, CsrMatrix)]) {
    let mut rows = Vec::new();
    let mut saving_before = Vec::new();
    let mut saving_after = Vec::new();
    for (abbr, a) in datasets {
        let metcf = MeTcfMatrix::from_csr(a);
        let fp = footprint_with_metcf(a, &metcf);
        let reordered = a.permute_rows(&TcaReorderer::default().reorder(a));
        let metcf_r = MeTcfMatrix::from_csr(&reordered);
        let fp_r = footprint_with_metcf(&reordered, &metcf_r);
        saving_before.push(fp.metcf_saving_vs_csr_pct());
        saving_after.push(fp_r.metcf_saving_vs_csr_pct());
        rows.push(vec![
            abbr.clone(),
            format!("{}", fp.csr),
            format!("{} (+{:.1}%)", fp.tcf, fp.tcf_vs_csr_pct()),
            format!("{} ({:+.1}%)", fp.metcf, -fp.metcf_saving_vs_csr_pct()),
            format!("{} ({:+.1}%)", fp_r.metcf, -fp_r.metcf_saving_vs_csr_pct()),
        ]);
    }
    print_table(
        "Breakdown: index storage in 32-bit elements (vs CSR)",
        &["Dataset", "CSR", "TCF", "ME-TCF", "ME-TCF (TCA-reordered)"],
        &rows,
    );
    let n = saving_before.len() as f64;
    println!(
        "\nAverage ME-TCF saving vs CSR: {:.2}% before reordering, {:.2}% after\n\
         (paper: 6.42% and 30.10%). TCF costs ~168% more than CSR in the paper.",
        saving_before.iter().sum::<f64>() / n,
        saving_after.iter().sum::<f64>() / n,
    );
}

fn panel_a(datasets: &[(String, CsrMatrix)]) {
    let mut rows = Vec::new();
    for (abbr, a) in datasets {
        let sgt = Condensed::from_csr(a).mean_nnz_tc();
        rows.push(vec![
            abbr.clone(),
            format!("{sgt:.2}"),
            format!("{:.2}", mean_nnz_after(a, &MetisLikeReorderer::default())),
            format!("{:.2}", mean_nnz_after(a, &LouvainReorderer::default())),
            format!("{:.2}", mean_nnz_after(a, &Lsh64Reorderer::default())),
            format!("{:.2}", mean_nnz_after(a, &TcaReorderer::default())),
        ]);
    }
    print_table(
        "Figure 13a: MeanNnzTC by reordering method",
        &["Dataset", "SGT only", "METIS-like", "Louvain-like", "LSH64", "TCA (ours)"],
        &rows,
    );
}

fn panel_b(datasets: &[(String, CsrMatrix)], device: &Device) {
    let n = 128;
    let mut rows = Vec::new();
    let mut gains_dtc = Vec::new();
    for (abbr, a) in datasets {
        let reordered = a.permute_rows(&TcaReorderer::default().reorder(a));
        // Simulate the L2 so reordering's cache effect reaches cuSPARSE too.
        let dtc_before = DtcKernel::new(a).simulate_with_l2(n, device).time_ms;
        let dtc_after = DtcKernel::new(&reordered).simulate_with_l2(n, device).time_ms;
        let cus_before = CusparseSpmm::new(a).simulate_with_l2(n, device).time_ms;
        let cus_after = CusparseSpmm::new(&reordered).simulate_with_l2(n, device).time_ms;
        let dtc_gain = (dtc_before / dtc_after - 1.0) * 100.0;
        let cus_gain = (cus_before / cus_after - 1.0) * 100.0;
        gains_dtc.push(dtc_gain);
        rows.push(vec![abbr.clone(), format!("{dtc_gain:+.2}%"), format!("{cus_gain:+.2}%")]);
    }
    print_table(
        "Figure 13b: throughput gain from TCA reordering (N=128)",
        &["Dataset", "DTC-SpMM", "cuSPARSE"],
        &rows,
    );
    println!(
        "\nAverage DTC gain: {:.2}% (paper: 23.23%, larger on long rows; DTC\n\
         gains more than cuSPARSE because reordering is TC-block aware).",
        gains_dtc.iter().sum::<f64>() / gains_dtc.len().max(1) as f64
    );
}

fn panel_c(datasets: &[(String, CsrMatrix)], device: &Device) {
    let n = 128;
    let mut rows = Vec::new();
    for (abbr, a) in datasets {
        let hit = |r: &dyn Reorderer| -> f64 {
            let m = a.permute_rows(&r.reorder(a));
            DtcKernel::new(&m).simulate_with_l2(n, device).l2_hit_rate.expect("cache simulated")
                * 100.0
        };
        rows.push(vec![
            abbr.clone(),
            format!("{:.2}%", hit(&IdentityReorderer)),
            format!("{:.2}%", hit(&TcuOnlyReorderer::default())),
            format!("{:.2}%", hit(&Lsh64Reorderer::default())),
            format!("{:.2}%", hit(&TcaReorderer::default())),
        ]);
    }
    print_table(
        "Figure 13c: simulated L2 hit rate of the DTC kernel's B traffic",
        &["Dataset", "No reorder", "TCU-only", "LSH64", "TCU+Cache (TCA)"],
        &rows,
    );
    println!(
        "\nShape check: TCU-only trails LSH64 slightly; adding the Cache-Aware\n\
         hierarchy recovers it (paper: -1.36% then +0.01% vs LSH64)."
    );
}

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    let device = scaled_device(Device::rtx4090());
    let datasets: Vec<(String, CsrMatrix)> =
        representative().into_iter().map(|d| (d.abbr.clone(), d.matrix())).collect();
    storage_breakdown(&datasets);
    panel_a(&datasets);
    panel_b(&datasets, &device);
    panel_c(&datasets, &device);
}
