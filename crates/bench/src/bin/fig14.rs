//! Figure 14: runtime-kernel optimization ablation — Tensor-Core pipeline
//! utilization and #IMAD/#HMMA along the ladder
//! Base → +SMB → +IP → +SDB → +VFD, with TCGNN-SpMM as the reference.

use dtc_baselines::{SpmmKernel, TcgnnSpmm};
use dtc_bench::print_table;
use dtc_core::{DtcKernel, KernelOpts};
use dtc_datasets::{representative, scaled_device, DatasetKind};
use dtc_sim::Device;

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    let device = scaled_device(Device::rtx4090());
    let n = 128;
    let ladder = KernelOpts::ablation_ladder();

    let mut util_rows = Vec::new();
    let mut ratio_rows = Vec::new();
    let mut time_rows = Vec::new();
    for d in representative() {
        let a = d.matrix();
        let tcgnn = TcgnnSpmm::new(&a).expect("square").simulate(n, &device);
        let mut util = vec![d.abbr.clone(), format!("{:.2}%", tcgnn.tc_utilization * 100.0)];
        let mut ratio = vec![d.abbr.clone(), format!("{:.2}", tcgnn.imad_per_hmma)];
        let mut time = vec![d.abbr.clone(), format!("{:.4}", tcgnn.time_ms)];
        for (_, opts) in &ladder {
            let r = DtcKernel::with_opts(&a, *opts).simulate(n, &device);
            util.push(format!("{:.2}%", r.tc_utilization * 100.0));
            ratio.push(format!("{:.2}", r.imad_per_hmma));
            time.push(format!("{:.4}", r.time_ms));
        }
        util_rows.push(util);
        ratio_rows.push(ratio);
        time_rows.push(time);
        let _ = d.kind == DatasetKind::TypeI;
    }
    let headers: Vec<String> = std::iter::once("Dataset".to_owned())
        .chain(std::iter::once("TCGNN".to_owned()))
        .chain(ladder.iter().map(|(l, _)| l.to_string()))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Figure 14: TC pipeline utilization along the ablation ladder",
        &headers_ref,
        &util_rows,
    );
    print_table("Figure 14: #IMAD/#HMMA along the ablation ladder", &headers_ref, &ratio_rows);
    print_table("Figure 14: kernel time (ms) along the ablation ladder", &headers_ref, &time_rows);
    println!(
        "\nShape checks: Base (ME-TCF only) already beats TCGNN's utilization;\n\
         SMB gives the largest single jump; IP helps most on long rows; SDB and\n\
         VFD add further gains; the DTC #IMAD/#HMMA is far below TCGNN's."
    );
}
