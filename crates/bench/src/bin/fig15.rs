//! Figure 15: effectiveness of the strict-balance design.
//!
//! (a) throughput improvement of DTC-SpMM-balanced over DTC-SpMM-base on
//! reddit and ddi (plus YeastH, where balance should NOT help), with the
//! Selector's AR and decision; (b) per-SM busy-fraction distributions
//! with and without strict balance.

use dtc_baselines::SpmmKernel;
use dtc_bench::print_table;
use dtc_core::{BalancedDtcKernel, DtcKernel, Selector};
use dtc_datasets::{representative, scaled_device};
use dtc_formats::MeTcfMatrix;
use dtc_sim::Device;

fn spread(fractions: &[f64]) -> (f64, f64) {
    let mean = fractions.iter().sum::<f64>() / fractions.len().max(1) as f64;
    let min = fractions.iter().cloned().fold(f64::MAX, f64::min);
    (mean, min)
}

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    let device = scaled_device(Device::rtx4090());
    let n = 128;
    let selector = Selector::default();
    let mut rows = Vec::new();
    for abbr in ["reddit", "ddi", "YH"] {
        let d = representative().into_iter().find(|d| d.abbr == abbr).expect("dataset");
        let a = d.matrix();
        let base = DtcKernel::new(&a).simulate(n, &device);
        let balanced = BalancedDtcKernel::new(&a).simulate(n, &device);
        let decision = selector.decide(&MeTcfMatrix::from_csr(&a), &device);
        let gain = (base.time_ms / balanced.time_ms - 1.0) * 100.0;
        let (mean_b, min_b) = spread(&base.sm_busy_fractions());
        let (mean_bal, min_bal) = spread(&balanced.sm_busy_fractions());
        rows.push(vec![
            d.abbr.clone(),
            format!("{:.4}", base.time_ms),
            format!("{:.4}", balanced.time_ms),
            format!("{gain:+.2}%"),
            format!("{:.2}", decision.approximation_ratio),
            format!("{:?}", decision.choice),
            format!("{mean_b:.2}/{min_b:.2}"),
            format!("{mean_bal:.2}/{min_bal:.2}"),
        ]);
    }
    print_table(
        "Figure 15: strict-balance effectiveness (RTX4090 model, N=128)",
        &[
            "Dataset",
            "base ms",
            "balanced ms",
            "gain",
            "AR",
            "Selector",
            "SM busy mean/min (base)",
            "SM busy mean/min (bal)",
        ],
        &rows,
    );
    println!(
        "\nPaper: +15.82% on reddit, +54.31% on ddi; little benefit on YeastH,\n\
         where the Selector keeps the base kernel. The balanced kernel's\n\
         per-SM busy fractions are near-uniform."
    );
}
