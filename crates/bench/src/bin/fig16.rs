//! Figure 16: end-to-end GCN training time (200 epochs) across four graph
//! datasets, two hidden dimensions and two GPU models, comparing DTC-GCN
//! against DGL, PyG (both modes) and TC-GNN.

use dtc_bench::{fmt_x, geomean, print_table};
use dtc_datasets::{igb_datasets, representative, scaled_device, Dataset};
use dtc_gnn::{
    train_gcn, DglGnnBackend, DtcGnnBackend, GnnBackend, PygGatherScatterBackend,
    PygSparseTensorBackend, TcgnnGnnBackend, TrainConfig,
};
use dtc_sim::Device;

fn graphs() -> Vec<Dataset> {
    let mut out = Vec::new();
    for abbr in ["YH", "protein"] {
        out.push(representative().into_iter().find(|d| d.abbr == abbr).expect("dataset"));
    }
    out.extend(igb_datasets());
    out
}

fn run_device(device: &Device) {
    let mut rows = Vec::new();
    let mut speed_dgl = Vec::new();
    let mut speed_pyg = Vec::new();
    let mut speed_tcgnn = Vec::new();
    for hidden in [128usize, 256] {
        for d in graphs() {
            let a = d.matrix_cached();
            let config =
                TrainConfig { epochs: 200, hidden, features: 64, classes: 8, lr: 0.05, seed: 7 };
            // Time accounting only needs the per-epoch simulated times; cap
            // the real CPU training that runs alongside.
            let cheap = TrainConfig { epochs: 2, ..config };
            let backends: Vec<Box<dyn GnnBackend>> = vec![
                Box::new(DtcGnnBackend::new(&a)),
                Box::new(DglGnnBackend::new(&a)),
                Box::new(PygGatherScatterBackend::new(&a)),
                Box::new(PygSparseTensorBackend::new(&a)),
                Box::new(TcgnnGnnBackend::new(&a).expect("square")),
            ];
            let a = &*a;
            let mut totals = Vec::new();
            for b in &backends {
                let r = train_gcn(a, b.as_ref(), &cheap, device);
                // Scale the accounted total back to 200 epochs.
                totals.push(r.setup_ms + config.epochs as f64 * r.epoch_ms);
            }
            speed_dgl.push(totals[1] / totals[0]);
            speed_pyg.push(totals[3] / totals[0]);
            speed_tcgnn.push(totals[4] / totals[0]);
            rows.push(vec![
                format!("{} (h={hidden})", d.abbr),
                format!("{:.1}", totals[0]),
                format!("{:.1}", totals[1]),
                format!("{:.1}", totals[2]),
                format!("{:.1}", totals[3]),
                format!("{:.1}", totals[4]),
            ]);
        }
    }
    print_table(
        &format!("Figure 16: 200-epoch GCN training time (ms, {} model)", device.name),
        &["Graph", "DTC-GCN", "DGL", "PyG(GS)", "PyG(SpTensor)", "TC-GNN"],
        &rows,
    );
    println!("\n{} geomean speedups of DTC-GCN:", device.name);
    println!("  vs DGL            : {}", fmt_x(geomean(&speed_dgl)));
    println!("  vs PyG(SparseTensor): {}", fmt_x(geomean(&speed_pyg)));
    println!("  vs TC-GNN         : {}", fmt_x(geomean(&speed_tcgnn)));
}

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    run_device(&scaled_device(Device::rtx4090()));
    run_device(&scaled_device(Device::rtx3090()));
    println!(
        "\nPaper: RTX4090 geomeans 1.26x (DGL), 1.91x (PyG SparseTensor),\n\
         2.21x (TC-GNN); RTX3090: 1.22x, 1.81x, 2.69x."
    );
}
