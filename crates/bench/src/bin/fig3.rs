//! Figure 3: relative execution and idle time of all 128 SMs running
//! TCGNN-SpMM on YeastH (mild imbalance) and ddi (severe imbalance).

use dtc_baselines::{SpmmKernel, TcgnnSpmm};
use dtc_datasets::{representative, scaled_device};
use dtc_sim::Device;

fn histogram(label: &str, fractions: &[f64]) {
    // Bucket the per-SM busy fractions into deciles and draw an ASCII bar
    // per decile (count of SMs whose busy fraction falls there).
    let mut buckets = [0usize; 10];
    for &f in fractions {
        let b = ((f * 10.0) as usize).min(9);
        buckets[b] += 1;
    }
    println!("\n{label}: per-SM busy-fraction distribution ({} SMs)", fractions.len());
    for (i, &count) in buckets.iter().enumerate() {
        let bar: String = std::iter::repeat_n('#', count).collect();
        println!("  {:>3}%-{:>3}% | {bar} {count}", i * 10, (i + 1) * 10);
    }
    let mean = fractions.iter().sum::<f64>() / fractions.len().max(1) as f64;
    let idle = fractions.iter().filter(|&&f| f < 0.5).count();
    println!("  mean busy fraction {:.2}; SMs idle >50% of the time: {idle}", mean);
}

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    let device = scaled_device(Device::rtx4090());
    let n = 128;
    println!("## Figure 3: per-SM execution/idle time under TCGNN-SpMM (RTX4090 model)");
    for abbr in ["YH", "ddi"] {
        let d = representative().into_iter().find(|d| d.abbr == abbr).expect("dataset exists");
        let a = d.matrix();
        let report = TcgnnSpmm::new(&a).expect("square").simulate(n, &device);
        histogram(&d.name, &report.sm_busy_fractions());
    }
    println!(
        "\nShape check: ddi leaves many SMs idle (few long row windows),\n\
         YeastH keeps them comparatively busy — Observation 4."
    );
}
