//! `fuzz`: the differential fuzzing sweep over every kernel model.
//!
//! Generates adversarial cases (degenerate shapes, tile straddles,
//! duplicate triplets, power-law extremes, IEEE special values,
//! window-boundary edit scripts), runs each one differentially across all
//! 12 `SpmmKernel` models, both ME-TCF conversion paths, the
//! TCA-reordered pipeline, the two-tier conversion cache, and the
//! in-place delta-update path, and adjudicates with the `dtc-fuzz`
//! oracles (exact f64 reference, TF32 error envelope, `dtc-verify` lint
//! replay). Failures are shrunk to minimal reproducers.
//!
//! Modes: default runs the full 5,760-case sweep and writes `FUZZ.json`;
//! `--smoke` runs 200 cases for CI and writes `FUZZ_smoke.json` so the
//! committed full-sweep artifact is not clobbered by the gate. Both exit
//! nonzero on any failure — the dynamic counterpart to `tracelint`.

use dtc_fuzz::{run_sweep, SweepConfig};
use dtc_sim::Device;

/// Full-sweep case count: 576 rounds over the 10 generator families x 12
/// kernels ≈ 69k kernel executions (the acceptance bar is ≥ 5,000 cases).
const FULL_CASES: usize = 5760;

/// Smoke-mode case count (20 rounds over every family).
const SMOKE_CASES: usize = 200;

/// The fixed master seed: FUZZ.json is a pure function of this value.
const MASTER_SEED: u64 = 0xD7C5_B004;

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    let smoke = dtc_bench::cli::Args::parse().smoke();
    let num_cases = if smoke { SMOKE_CASES } else { FULL_CASES };

    // A panicking kernel is a recorded failure, not a sweep abort; keep
    // the default hook from spamming stderr with expected backtraces.
    std::panic::set_hook(Box::new(|_| {}));

    let config = SweepConfig {
        master_seed: MASTER_SEED,
        num_cases,
        device: Device::rtx4090(),
        shrink: true,
    };
    println!(
        "## fuzz — {} cases, seed {:#x}, device {}",
        num_cases, MASTER_SEED, config.device.name
    );
    let report = run_sweep(&config);
    let _ = std::panic::take_hook();

    let artifact = if smoke { "FUZZ_smoke.json" } else { "FUZZ.json" };
    std::fs::write(artifact, report.to_json()).expect("write fuzz report");
    println!(
        "{} cases ({} kernel runs): {} failures — wrote {}",
        report.cases_run,
        report.kernels_run,
        report.failures.len(),
        artifact,
    );
    for f in &report.failures {
        println!(
            "  [{}] case {} ({}, seed {:#x}): {} — {}",
            f.kind, f.index, f.family, f.seed, f.kernel, f.detail
        );
        println!("    fixture: {}", f.fixture);
    }
    if report.has_failures() {
        eprintln!("fuzz: differential failures found");
        std::process::exit(1);
    }
}
