//! §6 Overhead and Limitation: format-conversion, reordering and Selector
//! overheads on YeastH and protein, expressed as multiples of one SpMM
//! execution (N=128) — the paper's reporting convention.

use dtc_baselines::SpmmKernel;
use dtc_bench::print_table;
use dtc_core::{convert, DtcKernel, Selector};
use dtc_datasets::{representative, scaled_device};
use dtc_formats::MeTcfMatrix;
use dtc_reorder::{Reorderer, TcaReorderer};
use dtc_sim::Device;
use std::time::Instant;

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    let device = scaled_device(Device::rtx4090());
    let n = 128;
    let mut rows = Vec::new();
    for abbr in ["YH", "protein"] {
        let d = representative().into_iter().find(|d| d.abbr == abbr).expect("dataset");
        let a = d.matrix();
        let spmm_ms = DtcKernel::new(&a).simulate(n, &device).time_ms;

        // 1. Format conversion (GPU-kernel model + measured CPU parallel time).
        let report = convert::convert_with_report(&a, 4, &device)
            .expect("representative datasets are within u32 offset bounds");
        let conv_ratio = report.simulated_gpu_ms / spmm_ms;

        // 2. Reordering (optional, offline) — measured CPU wall time.
        let t0 = Instant::now();
        let _perm = TcaReorderer::default().reorder(&a);
        let reorder_ms = t0.elapsed().as_secs_f64() * 1e3;

        // 3. Selector — measured CPU wall time of the makespan simulation.
        let metcf = MeTcfMatrix::from_csr(&a);
        let t1 = Instant::now();
        let decision = Selector::default().decide(&metcf, &device);
        let selector_ms = t1.elapsed().as_secs_f64() * 1e3;
        let _ = decision;

        rows.push(vec![
            d.abbr.clone(),
            format!("{spmm_ms:.4}"),
            format!("{:.4} ({conv_ratio:.2}x SpMM)", report.simulated_gpu_ms),
            format!("{:.1} (CPU, 4 threads)", report.cpu_time.as_secs_f64() * 1e3),
            format!("{reorder_ms:.1} (CPU)"),
            format!("{selector_ms:.3} (CPU)"),
        ]);
    }
    print_table(
        "§6 Overheads (ms; ratios relative to one N=128 SpMM)",
        &[
            "Dataset",
            "one SpMM",
            "conversion (GPU model)",
            "conversion (CPU measured)",
            "TCA reordering",
            "Selector",
        ],
        &rows,
    );
    println!(
        "\nPaper: conversion costs 1.48x (YeastH) and 14.50x (protein) of one\n\
         SpMM; the Selector costs 42.0% and 24.8% of one SpMM; reordering is\n\
         an optional offline step. All three amortize over iterative SpMM\n\
         workloads (GNN training runs thousands of SpMMs on a fixed matrix)."
    );
}
