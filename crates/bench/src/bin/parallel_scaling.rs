//! Thread-scaling sweep for the `dtc-par` execution layer.
//!
//! Runs the full host-side pipeline — ME-TCF conversion, Selector decision,
//! exact kernel execution — end to end on a representative matrix under a
//! range of `dtc_par` thread counts, and writes the speedup curve (relative
//! to the single-thread baseline) to `BENCH_parallel.json`.
//!
//! The conversion cache is cleared before every repetition so each run pays
//! the real conversion cost; a separate pair of timings demonstrates the
//! cache instead (second build over the same matrix must be ~free).

use dtc_baselines::SpmmKernel;
use dtc_core::{clear_conversion_cache, conversion_cache_stats, DtcSpmm};
use dtc_formats::{gen, DenseMatrix};
use std::time::Instant;

const THREAD_SWEEP: [usize; 5] = [1, 2, 4, 8, 16];
const REPS: usize = 3;
const N: usize = 64;

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    // Representative of the paper's mid-size graph suite: power-law-ish
    // community structure, ~0.8 M non-zeros over 12 K rows.
    let rows = 12 * 1024;
    let a = gen::community(rows, rows, 48, 64.0, 0.9, 2024);
    let b = DenseMatrix::from_fn(rows, N, |r, c| ((r * 13 + c * 5) % 17) as f32 * 0.25 - 2.0);
    let host_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    eprintln!(
        "parallel_scaling: {} x {} matrix, {} nnz, N={}, host threads={}",
        a.rows(),
        a.cols(),
        a.nnz(),
        N,
        host_threads
    );

    // End-to-end time (conversion + selection + execute), best of REPS, per
    // thread count. Serial first: it is the baseline of the speedup curve.
    let mut sweep = Vec::new();
    let mut serial_ms = 0.0f64;
    for &threads in &THREAD_SWEEP {
        dtc_par::set_threads(Some(threads));
        let mut best_total = f64::INFINITY;
        let mut best_build = f64::INFINITY;
        let mut best_exec = f64::INFINITY;
        for _ in 0..REPS {
            clear_conversion_cache();
            let t0 = Instant::now();
            let engine = DtcSpmm::new(&a);
            let build_ms = t0.elapsed().as_secs_f64() * 1e3;
            let t1 = Instant::now();
            let c = engine.execute(&b).expect("execute");
            let exec_ms = t1.elapsed().as_secs_f64() * 1e3;
            assert_eq!(c.rows(), rows);
            let total = build_ms + exec_ms;
            if total < best_total {
                best_total = total;
                best_build = build_ms;
                best_exec = exec_ms;
            }
        }
        if threads == 1 {
            serial_ms = best_total;
        }
        let speedup = serial_ms / best_total;
        eprintln!(
            "  threads={threads:2}: {best_total:8.1} ms (build {best_build:.1} + execute {best_exec:.1})  speedup {speedup:.2}x"
        );
        sweep.push((threads, best_total, best_build, best_exec, speedup));
    }
    dtc_par::set_threads(None);

    // Conversion-cache demonstration: a repeated build over the same matrix
    // must skip conversion entirely (observable via the miss counter).
    clear_conversion_cache();
    let (_, misses0) = conversion_cache_stats();
    let t0 = Instant::now();
    let _first = DtcSpmm::new(&a);
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let _second = DtcSpmm::new(&a);
    let warm_ms = t1.elapsed().as_secs_f64() * 1e3;
    let (_, misses1) = conversion_cache_stats();
    assert_eq!(misses1, misses0 + 1, "second build must not re-convert");
    eprintln!("  cache: cold build {cold_ms:.1} ms, warm build {warm_ms:.1} ms");

    let max_speedup = sweep.iter().map(|s| s.4).fold(0.0f64, f64::max);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"parallel_scaling\",\n");
    json.push_str(&format!(
        "  \"matrix\": {{ \"rows\": {}, \"cols\": {}, \"nnz\": {} }},\n",
        a.rows(),
        a.cols(),
        a.nnz()
    ));
    json.push_str(&format!("  \"n\": {N},\n  \"reps\": {REPS},\n"));
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    json.push_str(&format!("  \"serial_ms\": {serial_ms:.3},\n"));
    json.push_str("  \"sweep\": [\n");
    for (i, (threads, total, build, exec, speedup)) in sweep.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"threads\": {threads}, \"total_ms\": {total:.3}, \"build_ms\": {build:.3}, \"execute_ms\": {exec:.3}, \"speedup\": {speedup:.3} }}{}\n",
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"max_speedup\": {max_speedup:.3},\n"));
    json.push_str(&format!(
        "  \"conversion_cache\": {{ \"cold_build_ms\": {cold_ms:.3}, \"warm_build_ms\": {warm_ms:.3} }}\n"
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!(
        "wrote BENCH_parallel.json (max speedup {max_speedup:.2}x on {host_threads}-thread host)"
    );
}
