//! Thread-scaling sweep for the `dtc-par` execution layer.
//!
//! Runs the full host-side pipeline — ME-TCF conversion, Selector decision,
//! exact kernel execution — end to end on a representative matrix under a
//! range of `dtc_par` thread counts, and writes the speedup curve (relative
//! to the single-thread baseline) to `BENCH_parallel.json`.
//!
//! Two clocks are reported per phase:
//!
//! - **wall** — real threaded execution. On a host with fewer cores than
//!   workers this says little about the substrate (threads time-slice one
//!   core), but it guards against regressions: parallel must never be
//!   slower than serial.
//! - **critical path** — the engine's virtual-time mode replays the exact
//!   work-stealing schedule while chunks execute one at a time, so each
//!   chunk's service time is measured without core contention. The phase's
//!   critical path is `wall − par_wall + par_crit` (the parallel sections'
//!   wall replaced by their schedule-limited lower bound): the time the
//!   phase would take on a host with one core per worker.
//!
//! Per-shard steal counts and the busy-time imbalance ratio come from the
//! `par.shard.*` telemetry. The conversion cache is cleared before every
//! repetition so each run pays the real conversion cost; a separate pair of
//! timings demonstrates the cache instead (second build must be ~free).
//!
//! `--smoke` runs a reduced sweep (threads 1 and 4, smaller matrix), skips
//! the JSON dump, and exits non-zero unless the 4-thread critical-path
//! speedup reaches 1.5x — the CI scaling gate.

use dtc_core::{clear_conversion_cache, conversion_cache_stats, DtcSpmm};
use dtc_formats::{gen, CsrMatrix, DenseMatrix};
use dtc_telemetry::json::Json;
use std::time::Instant;

const FULL_SWEEP: &[usize] = &[1, 2, 4, 8, 16];
const SMOKE_SWEEP: &[usize] = &[1, 4];
const N: usize = 64;
const SMOKE_GATE: f64 = 1.5;

/// One thread count's measurements.
struct Sample {
    threads: usize,
    total_ms: f64,
    build_ms: f64,
    exec_ms: f64,
    build_crit_ms: f64,
    exec_crit_ms: f64,
    steals: u64,
    max_imbalance: f64,
}

impl Sample {
    fn crit_ms(&self) -> f64 {
        self.build_crit_ms + self.exec_crit_ms
    }
}

/// Times `f`, attributing the parallel sections inside it: returns the
/// result, the phase wall time, and the phase critical path (wall with the
/// engine sections replaced by their schedule-limited time — meaningful in
/// virtual-time mode, equal to wall in serial mode up to noise).
fn timed_phase<R>(f: impl FnOnce() -> R) -> (R, f64, f64) {
    dtc_par::reset_par_stats();
    let t = Instant::now();
    let r = f();
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let s = dtc_par::par_stats();
    let par_wall_ms = s.wall_ns as f64 / 1e6;
    let par_crit_ms = s.crit_ns as f64 / 1e6;
    (r, wall_ms, (wall_ms - par_wall_ms + par_crit_ms).max(0.0))
}

/// One full pipeline run (cold conversion): returns the result matrix and
/// per-phase `(wall, crit)` pairs for build and execute.
fn run_pipeline(a: &CsrMatrix, b: &DenseMatrix) -> (DenseMatrix, [f64; 2], [f64; 2]) {
    clear_conversion_cache();
    let (engine, build_ms, build_crit) = timed_phase(|| DtcSpmm::new(a));
    let (c, exec_ms, exec_crit) = timed_phase(|| engine.execute(b).expect("execute"));
    (c, [build_ms, build_crit], [exec_ms, exec_crit])
}

fn assert_bits_identical(got: &DenseMatrix, want: &DenseMatrix, what: &str) {
    assert_eq!(got.rows(), want.rows(), "{what}: row mismatch");
    let same = got.as_slice().iter().zip(want.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits());
    assert!(same, "{what}: output differs bitwise from the serial baseline");
}

fn measure(a: &CsrMatrix, b: &DenseMatrix, sweep: &[usize], reps: usize) -> Vec<Sample> {
    let steals_counter = dtc_telemetry::counter("par.shard.steals");
    let imbalance_gauge = dtc_telemetry::gauge("par.shard.max_imbalance");
    let mut serial_c: Option<DenseMatrix> = None;
    let mut samples = Vec::new();
    for &threads in sweep {
        dtc_par::set_threads(Some(threads));

        // Real threaded runs: wall times + steal telemetry.
        let steals0 = steals_counter.get();
        let mut best = (f64::INFINITY, 0.0, 0.0);
        for _ in 0..reps {
            let (c, [build_ms, _], [exec_ms, _]) = run_pipeline(a, b);
            match &serial_c {
                None => serial_c = Some(c),
                Some(want) => assert_bits_identical(&c, want, "threaded run"),
            }
            if build_ms + exec_ms < best.0 {
                best = (build_ms + exec_ms, build_ms, exec_ms);
            }
        }
        let steals = steals_counter.get() - steals0;
        let max_imbalance = imbalance_gauge.get();

        // Virtual-time run: the schedule's critical path, one chunk at a
        // time (deterministic work, so one repetition suffices — timing
        // noise cancels in the wall-vs-par_wall subtraction).
        dtc_par::set_virtual_time(true);
        let (c, [_, build_crit], [_, exec_crit]) = run_pipeline(a, b);
        dtc_par::set_virtual_time(false);
        assert_bits_identical(&c, serial_c.as_ref().unwrap(), "virtual-time run");

        samples.push(Sample {
            threads,
            total_ms: best.0,
            build_ms: best.1,
            exec_ms: best.2,
            build_crit_ms: build_crit,
            exec_crit_ms: exec_crit,
            steals,
            max_imbalance,
        });
    }
    dtc_par::set_threads(None);
    samples
}

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    let smoke = dtc_bench::cli::Args::parse().smoke();

    // Representative of the paper's mid-size graph suite: power-law-ish
    // community structure (smaller in smoke mode, same shape).
    let rows = if smoke { 4 * 1024 } else { 12 * 1024 };
    let a = if smoke {
        gen::community(rows, rows, 32, 48.0, 0.9, 2024)
    } else {
        gen::community(rows, rows, 48, 64.0, 0.9, 2024)
    };
    let b = DenseMatrix::from_fn(rows, N, |r, c| ((r * 13 + c * 5) % 17) as f32 * 0.25 - 2.0);
    let host_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let (sweep, reps) = if smoke { (SMOKE_SWEEP, 2) } else { (FULL_SWEEP, 5) };

    eprintln!(
        "parallel_scaling{}: {} x {} matrix, {} nnz, N={}, host threads={}",
        if smoke { " (smoke)" } else { "" },
        a.rows(),
        a.cols(),
        a.nnz(),
        N,
        host_threads
    );

    let samples = measure(&a, &b, sweep, reps);
    let serial_ms = samples[0].total_ms;
    let serial_crit_ms = samples[0].crit_ms();
    for s in &samples {
        let speedup = serial_ms / s.total_ms;
        let crit_speedup = serial_crit_ms / s.crit_ms();
        eprintln!(
            "  threads={:2}: wall {:8.1} ms (build {:.1} + execute {:.1})  speedup {:.2}x | \
             crit {:8.1} ms (build {:.1} + execute {:.1})  crit speedup {:.2}x | \
             steals {}  imbalance {:.2}",
            s.threads,
            s.total_ms,
            s.build_ms,
            s.exec_ms,
            speedup,
            s.crit_ms(),
            s.build_crit_ms,
            s.exec_crit_ms,
            crit_speedup,
            s.steals,
            s.max_imbalance,
        );
    }

    if smoke {
        let four = samples.iter().find(|s| s.threads == 4).expect("smoke sweep has 4 threads");
        let crit_speedup = serial_crit_ms / four.crit_ms();
        if crit_speedup < SMOKE_GATE {
            eprintln!(
                "FAIL: 4-thread critical-path speedup {crit_speedup:.2}x < {SMOKE_GATE:.1}x gate"
            );
            std::process::exit(1);
        }
        println!("smoke OK: 4-thread critical-path speedup {crit_speedup:.2}x >= {SMOKE_GATE:.1}x");
        return;
    }

    // Conversion-cache demonstration: a repeated build over the same matrix
    // must skip conversion entirely (observable via the miss counter).
    clear_conversion_cache();
    let (_, misses0) = conversion_cache_stats();
    let t0 = Instant::now();
    let _first = DtcSpmm::new(&a);
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let _second = DtcSpmm::new(&a);
    let warm_ms = t1.elapsed().as_secs_f64() * 1e3;
    let (_, misses1) = conversion_cache_stats();
    assert_eq!(misses1, misses0 + 1, "second build must not re-convert");
    eprintln!("  cache: cold build {cold_ms:.1} ms, warm build {warm_ms:.1} ms");

    // Two-tier delta on the warm path: a verified front hit resolves the
    // build from the cheap key material alone, skipping the exact primary
    // key (three more full passes over the matrix). Engines are identical
    // either way; only lookup time moves.
    let warm_build_ms = |enabled: bool| -> f64 {
        dtc_par::set_front_tier_enabled(enabled);
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t = Instant::now();
            let _e = DtcSpmm::new(&a);
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
        }
        best
    };
    let warm_exact_ms = warm_build_ms(false);
    let warm_tiered_ms = warm_build_ms(true);
    dtc_par::set_front_tier_enabled(true);
    eprintln!(
        "  cache: warm build exact-only {warm_exact_ms:.3} ms, two-tier {warm_tiered_ms:.3} ms ({:.2}x)",
        warm_exact_ms / warm_tiered_ms.max(1e-9)
    );

    let max_speedup = samples.iter().map(|s| serial_ms / s.total_ms).fold(0.0f64, f64::max);
    let max_crit_speedup =
        samples.iter().map(|s| serial_crit_ms / s.crit_ms()).fold(0.0f64, f64::max);
    let json = Json::obj(vec![
        ("bench", Json::str("parallel_scaling")),
        (
            "matrix",
            Json::obj_inline(vec![
                ("rows", Json::usize(a.rows())),
                ("cols", Json::usize(a.cols())),
                ("nnz", Json::usize(a.nnz())),
            ]),
        ),
        ("n", Json::raw(N.to_string())),
        ("reps", Json::raw(reps.to_string())),
        ("host_threads", Json::raw(host_threads.to_string())),
        ("serial_ms", Json::f(serial_ms, 3)),
        ("serial_crit_ms", Json::f(serial_crit_ms, 3)),
        (
            "sweep",
            Json::arr(
                samples
                    .iter()
                    .map(|s| {
                        Json::obj_inline(vec![
                            ("threads", Json::usize(s.threads)),
                            ("total_ms", Json::f(s.total_ms, 3)),
                            ("build_ms", Json::f(s.build_ms, 3)),
                            ("execute_ms", Json::f(s.exec_ms, 3)),
                            ("speedup", Json::f(serial_ms / s.total_ms, 3)),
                            ("critical_path_ms", Json::f(s.crit_ms(), 3)),
                            ("build_crit_ms", Json::f(s.build_crit_ms, 3)),
                            ("execute_crit_ms", Json::f(s.exec_crit_ms, 3)),
                            ("crit_speedup", Json::f(serial_crit_ms / s.crit_ms(), 3)),
                            ("steals", Json::raw(s.steals.to_string())),
                            ("max_imbalance", Json::f(s.max_imbalance, 3)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("max_speedup", Json::f(max_speedup, 3)),
        ("max_crit_speedup", Json::f(max_crit_speedup, 3)),
        (
            "conversion_cache",
            Json::obj_inline(vec![
                ("cold_build_ms", Json::f(cold_ms, 3)),
                ("warm_build_ms", Json::f(warm_ms, 3)),
                ("warm_exact_ms", Json::f(warm_exact_ms, 3)),
                ("warm_two_tier_ms", Json::f(warm_tiered_ms, 3)),
            ]),
        ),
    ])
    .render();
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!(
        "wrote BENCH_parallel.json (wall max {max_speedup:.2}x, critical path max \
         {max_crit_speedup:.2}x on {host_threads}-thread host)"
    );
}
