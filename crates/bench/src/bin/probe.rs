//! Calibration probe: prints per-kernel simulated times on key matrices.
use dtc_baselines::*;
use dtc_core::{DtcKernel, SpmmKernel};
use dtc_datasets::{representative, scaled_device};
use dtc_sim::Device;

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    let device = scaled_device(Device::rtx4090());
    let n = 128;
    for d in representative() {
        let a = d.matrix();
        let s = d.stats();
        let mean_nnz = dtc_formats::Condensed::from_csr(&a).mean_nnz_tc();
        let cus = CusparseSpmm::new(&a).simulate(n, &device);
        let tcg = TcgnnSpmm::new(&a).unwrap().simulate(n, &device);
        let dtc = DtcKernel::new(&a).simulate(n, &device);
        let spk = SputnikSpmm::new(&a).unwrap().simulate(n, &device);
        println!(
            "{:8} rows={:6} nnz={:8} avg={:6.1} mnnz={:5.1} | cus={:8.4} tcgnn={:8.4} dtc={:8.4} sputnik={:8.4} | dtc_util={:.3} tcg_util={:.4} dtc_ratio={:.1} tcg_ratio={:.1} | spd_cus={:.2} spd_tcg={:.2}",
            d.abbr, s.rows, s.nnz, s.avg_row_len, mean_nnz,
            cus.time_ms, tcg.time_ms, dtc.time_ms, spk.time_ms,
            dtc.tc_utilization, tcg.tc_utilization, dtc.imad_per_hmma, tcg.imad_per_hmma,
            cus.time_ms / dtc.time_ms, tcg.time_ms / dtc.time_ms
        );
    }
}
