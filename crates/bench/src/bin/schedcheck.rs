//! `schedcheck`: the schedule-space model-checker CI gate.
//!
//! Exhaustively enumerates the steal schedules of a lineup of small
//! [`ShardPlan`] shapes (sleep-set partial-order reduction, see
//! `dtc_sched::explore`), replays every schedule on the real engine
//! substrate, and asserts slot-write exclusivity, chunk coverage,
//! bitwise output identity against the serial reference, arena lease
//! cleanliness and — via the counting allocator this bin installs —
//! steady-state allocation freedom. The workspace lock-order graph is
//! audited in the same run.
//!
//! Modes: default sweeps the full shape lineup (≥ 8 shapes, ≥ 10⁴
//! schedules — the run fails if either floor is missed); `--smoke` runs
//! three small shapes for CI. Writes `SCHEDCHECK.json` and exits nonzero
//! on any error-severity diagnostic.

use dtc_par::ShardPlan;
use dtc_sched::{check_plan, workspace_lock_graph, CheckOptions, SchedReport};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static HOT_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Counts every allocation made while a replay holds the hot-loop flag —
/// the probe behind the `sched-alloc-steady-state` assertion.
struct HotCountingAlloc;

// SAFETY: delegates every operation to `System`; the only addition is a
// relaxed counter bump keyed on a const-initialized thread-local flag.
unsafe impl GlobalAlloc for HotCountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if dtc_par::hot_loop_active() {
            HOT_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if dtc_par::hot_loop_active() {
            HOT_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if dtc_par::hot_loop_active() {
            HOT_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: HotCountingAlloc = HotCountingAlloc;

/// One lineup entry: shape name, the plan, and (for weighted shapes) the
/// item weights handed back to the weight-conservation lints.
type Shape = (&'static str, ShardPlan, Option<Vec<u64>>);

/// The plan-shape lineup. Even cuts at several item/band ratios, plus
/// weighted cuts covering the planner's edge cases: a quadratic profile,
/// a heavy-tailed profile, all-zero weights and a single mega-weight.
fn shapes(smoke: bool) -> Vec<Shape> {
    let even = |name, n, threads| (name, ShardPlan::even(n, threads), None);
    let weighted = |name, threads, weights: Vec<u64>| {
        (name, ShardPlan::weighted(threads, &weights), Some(weights))
    };
    if smoke {
        return vec![
            even("even-6x2", 6, 2),
            even("even-12x3", 12, 3),
            weighted("weighted-quad-10x2", 2, (0..10).map(|i| i * i % 13).collect()),
        ];
    }
    let mut mega = vec![1u64; 12];
    mega[5] = 1 << 20;
    vec![
        even("even-7x2", 7, 2),
        even("even-16x2", 16, 2),
        even("even-9x3", 9, 3),
        even("even-24x3", 24, 3),
        even("even-20x4", 20, 4),
        weighted("weighted-quad-20x2", 2, (0..20).map(|i| i * i % 13).collect()),
        weighted("weighted-skew-24x3", 3, (0..24).map(|i| if i == 0 { 64 } else { 1 }).collect()),
        weighted("weighted-zero-16x2", 2, vec![0; 16]),
        weighted("weighted-mega-12x2", 2, mega),
    ]
}

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    let args = dtc_bench::cli::Args::parse();
    let smoke = args.smoke();
    let cap: u64 = if smoke { 2_000 } else { 40_000 };

    let probe = || HOT_ALLOCS.load(Ordering::Relaxed);
    let opts = CheckOptions { max_schedules: cap, alloc_probe: Some(&probe) };
    let lineup = shapes(smoke);

    println!("## schedcheck — {} plan shapes, cap {cap} schedules/plan", lineup.len());
    let mut report = SchedReport::new();
    for (name, plan, weights) in &lineup {
        let check = check_plan(name, plan, weights.as_deref(), &opts);
        println!(
            "  {name}: {} items / {} chunks / {} bands — {} schedules ({}), {} diagnostics",
            check.items,
            check.chunks,
            check.bands,
            check.schedules,
            if check.exhaustive { "exhaustive" } else { "capped" },
            check.diagnostics.len(),
        );
        for d in &check.diagnostics {
            println!("    {d}");
        }
        report.plans.push(check);
    }

    report.lock_diagnostics = dtc_verify::verify_lock_graph("workspace", &workspace_lock_graph());
    for d in &report.lock_diagnostics {
        println!("  lock graph: {d}");
    }

    let json = report.to_json();
    std::fs::write("SCHEDCHECK.json", &json).expect("write SCHEDCHECK.json");
    println!(
        "{} plans, {} schedules explored, {} errors — wrote SCHEDCHECK.json",
        report.plans.len(),
        report.schedules_total(),
        report.errors(),
    );

    let mut failed = report.errors() > 0;
    if failed {
        eprintln!("schedcheck: error-severity diagnostics found");
    }
    if !smoke {
        if report.plans.len() < 8 {
            eprintln!("schedcheck: shape floor missed ({} < 8 plans)", report.plans.len());
            failed = true;
        }
        if report.schedules_total() < 10_000 {
            eprintln!(
                "schedcheck: exploration floor missed ({} < 10000 schedules)",
                report.schedules_total()
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
