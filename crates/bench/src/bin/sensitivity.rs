//! Architecture-sensitivity study — the §7 portability claim ("our
//! insights and optimizations can be extended ... on parallel devices
//! equipped with matrix computing units") probed by sweeping the device
//! model: L2 capacity, DRAM bandwidth, Tensor-Core throughput and SM count,
//! watching where DTC-SpMM's advantage over cuSPARSE grows or shrinks.

use dtc_baselines::{CusparseSpmm, SpmmKernel};
use dtc_bench::{fmt_x, print_table};
use dtc_core::DtcSpmm;
use dtc_datasets::{representative, scaled_device};
use dtc_formats::CsrMatrix;
use dtc_sim::Device;

fn speedup(a: &CsrMatrix, device: &Device) -> f64 {
    let n = 128;
    let dtc = DtcSpmm::builder().device(device.clone()).build(a).simulate(n, device).time_ms;
    let cus = CusparseSpmm::new(a).simulate(n, device).time_ms;
    cus / dtc
}

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    let base = scaled_device(Device::rtx4090());
    let type1 = representative().into_iter().find(|d| d.abbr == "DD").expect("dataset").matrix();
    let type2 =
        representative().into_iter().find(|d| d.abbr == "protein").expect("dataset").matrix();

    // 1. L2 capacity: more cache mostly helps cuSPARSE (its B re-reads).
    let mut rows = Vec::new();
    for scale in [0.25f64, 0.5, 1.0, 2.0, 4.0] {
        let mut d = base.clone();
        d.l2_bytes = ((d.l2_bytes as f64 * scale) as u64).max(64 * 1024);
        rows.push(vec![
            format!("{scale}x"),
            fmt_x(speedup(&type1, &d)),
            fmt_x(speedup(&type2, &d)),
        ]);
    }
    print_table(
        "Sensitivity 1: L2 capacity (DTC speedup over cuSPARSE)",
        &["L2 scale", "DD (Type I)", "protein (Type II)"],
        &rows,
    );

    // 2. DRAM bandwidth: SpMM is memory-bound; scaling BW shifts the
    // bottleneck toward issue/compute where DTC's lean pipeline wins less.
    let mut rows = Vec::new();
    for scale in [0.5f64, 1.0, 2.0, 4.0] {
        let mut d = base.clone();
        d.dram_bw_gbps *= scale;
        rows.push(vec![
            format!("{scale}x"),
            fmt_x(speedup(&type1, &d)),
            fmt_x(speedup(&type2, &d)),
        ]);
    }
    print_table(
        "Sensitivity 2: DRAM bandwidth",
        &["BW scale", "DD (Type I)", "protein (Type II)"],
        &rows,
    );

    // 3. Tensor-Core throughput: a device with beefier matrix units
    // rewards condensing more.
    let mut rows = Vec::new();
    for scale in [0.5f64, 1.0, 2.0, 4.0] {
        let mut d = base.clone();
        d.tc_hmma_per_cycle *= scale;
        rows.push(vec![
            format!("{scale}x"),
            fmt_x(speedup(&type1, &d)),
            fmt_x(speedup(&type2, &d)),
        ]);
    }
    print_table(
        "Sensitivity 3: Tensor-Core throughput",
        &["TC scale", "DD (Type I)", "protein (Type II)"],
        &rows,
    );

    // 4. SM count (even values keep the eq. (1) policy meaningful).
    let mut rows = Vec::new();
    for sms in [32usize, 64, 128, 256] {
        let mut d = base.clone();
        d.num_sms = sms;
        rows.push(vec![format!("{sms}"), fmt_x(speedup(&type1, &d)), fmt_x(speedup(&type2, &d))]);
    }
    print_table("Sensitivity 4: SM count", &["SMs", "DD (Type I)", "protein (Type II)"], &rows);
    println!(
        "\nReading: DTC's edge is widest when memory is scarce (small L2, low\n\
         BW) and Tensor Cores are strong — the regime the paper targets.\n\
         Abundant bandwidth or cache narrows the gap, as §7 anticipates for\n\
         other architectures."
    );
}
