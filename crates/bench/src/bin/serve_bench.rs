//! Closed-loop offered-load sweep of the `dtc-serve` serving layer.
//!
//! A 4-tenant repeated-matrix workload (two matrices shared pairwise, two
//! engine families) is replayed against an [`SpmmServer`] by the
//! virtual-clock load generator at offered rates calibrated around the
//! measured single-request service rate. Writes `BENCH_serve.json`:
//! achieved QPS, p50/p99 latency, batch-size histogram and engine-pool
//! hit rate per point.
//!
//! Every run first pins correctness: one request per tenant is served
//! through the full admission → pool → batch path and must be
//! **bitwise-equal** to executing the same engine directly.
//!
//! `--smoke` runs a reduced sweep and gates CI: steady-state pool hit
//! rate ≥ 90%, finite latency percentiles, and the bitwise check.
//! `--verify` turns on the per-batch dtc-verify lint replay.

use dtc_core::{EngineConfig, EngineKind};
use dtc_formats::{gen, DenseMatrix};
use dtc_serve::loadgen::{self, LoadGenConfig, LoadPoint, TenantSpec};
use dtc_serve::{Request, ServeConfig, SpmmServer};
use dtc_telemetry::json::Json;
use std::sync::Arc;

/// The smoke gate: steady-state engine-pool hit rate on the repeated-
/// matrix workload must reach this.
const HIT_RATE_GATE: f64 = 0.90;

/// The 4-tenant repeated-matrix workload: tenants 0/2 share one matrix and
/// tenants 1/3 another, exercising cross-tenant engine sharing (same key)
/// next to genuinely distinct engines (different kind or matrix).
fn tenants(small: bool) -> Vec<TenantSpec> {
    let scale = if small { 1 } else { 4 };
    let a = Arc::new(gen::uniform(96 * scale, 96 * scale, 900 * scale, 0xA11));
    let b = Arc::new(gen::power_law(128 * scale, 128 * scale, 8.0, 2.2, 0xB22));
    vec![
        TenantSpec {
            kind: EngineKind::Dtc,
            config: EngineConfig::default(),
            matrix: Arc::clone(&a),
            n_cols: 16,
        },
        TenantSpec {
            kind: EngineKind::Dtc,
            config: EngineConfig::default(),
            matrix: Arc::clone(&b),
            n_cols: 8,
        },
        TenantSpec {
            kind: EngineKind::Dtc,
            config: EngineConfig::default(),
            matrix: Arc::clone(&a),
            n_cols: 32,
        },
        TenantSpec {
            kind: EngineKind::Cusparse,
            config: EngineConfig::default(),
            matrix: Arc::clone(&b),
            n_cols: 16,
        },
    ]
}

/// Serves one request per tenant through the full path and asserts each
/// result is bitwise-equal to executing the prepared engine directly.
fn assert_bitwise(tenants: &[TenantSpec], serve: &ServeConfig) {
    let server = SpmmServer::new(serve.clone());
    for (t, spec) in tenants.iter().enumerate() {
        let b = DenseMatrix::from_fn(spec.matrix.cols(), spec.n_cols, |r, c| {
            ((r * 31 + c * 7 + t) % 17) as f32 - 8.0
        });
        let served = server
            .serve_one(Request {
                tenant: t,
                kind: spec.kind,
                config: spec.config.clone(),
                matrix: Arc::clone(&spec.matrix),
                b: b.clone(),
            })
            .expect("serve_one failed");
        let direct = dtc_core::prepare(spec.kind, &spec.config, &spec.matrix)
            .expect("direct prepare failed")
            .execute(&b)
            .expect("direct execute failed");
        assert_eq!(
            served.as_slice(),
            direct.as_slice(),
            "tenant {t}: served result differs from direct execution"
        );
    }
    println!("bitwise: served == direct for all {} tenants", tenants.len());
}

/// Mean warm-request latency against one server whose engine pool already
/// holds every tenant engine, with the pool's lossy front tier off or on.
/// Results are identical either way; only the pool lookup path changes.
fn warm_request_ms(
    tenants: &[TenantSpec],
    serve: &ServeConfig,
    enabled: bool,
    rounds: usize,
) -> f64 {
    dtc_par::set_front_tier_enabled(enabled);
    let server = SpmmServer::new(serve.clone());
    let request = |t: usize| Request {
        tenant: t,
        kind: tenants[t].kind,
        config: tenants[t].config.clone(),
        matrix: Arc::clone(&tenants[t].matrix),
        b: DenseMatrix::ones(tenants[t].matrix.cols(), tenants[t].n_cols),
    };
    for t in 0..tenants.len() {
        server.serve_one(request(t)).expect("pool warmup failed");
    }
    let t0 = std::time::Instant::now();
    for _ in 0..rounds {
        for t in 0..tenants.len() {
            server.serve_one(request(t)).expect("warm serve failed");
        }
    }
    t0.elapsed().as_secs_f64() * 1e3 / (rounds * tenants.len()) as f64
}

fn json_point(p: &LoadPoint) -> Json {
    let hist = p
        .batch_hist
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(s, &n)| {
            Json::obj_inline(vec![("batch_size", Json::usize(s + 1)), ("batches", Json::u64(n))])
        })
        .collect();
    Json::obj_inline(vec![
        ("offered_qps", Json::f(p.offered_qps, 1)),
        ("achieved_qps", Json::f(p.achieved_qps, 1)),
        ("p50_ms", Json::f(p.p50_ms, 4)),
        ("p99_ms", Json::f(p.p99_ms, 4)),
        ("completed", Json::usize(p.completed)),
        ("rejected", Json::usize(p.rejected)),
        ("batches", Json::usize(p.batches)),
        ("mean_batch", Json::f(p.mean_batch, 3)),
        ("hit_rate", Json::f(p.hit_rate, 4)),
        ("batch_hist", Json::arr_inline(hist)),
    ])
}

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    let args = dtc_bench::cli::Args::parse();
    let smoke = args.smoke();
    let verify = args.flag("verify");

    let serve = ServeConfig { verify, ..ServeConfig::default() };
    let tenants = tenants(smoke);
    assert_bitwise(&tenants, &serve);

    let cfg = LoadGenConfig {
        serve,
        requests: if smoke { 200 } else { 800 },
        ..LoadGenConfig::default()
    };
    let service_ms = loadgen::calibrate_service_ms(&tenants, &cfg)
        .expect("bench tenants are well-formed; calibration must succeed");
    let mu = 1e3 / service_ms; // single-request service rate, QPS
    let multiples: &[f64] =
        if smoke { &[0.25, 1.0, 4.0] } else { &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0] };
    let rates: Vec<f64> = multiples.iter().map(|m| m * mu).collect();
    println!(
        "calibrated service time {service_ms:.4} ms ({mu:.0} QPS); sweeping {} points{}",
        rates.len(),
        if verify { " with verify gate" } else { "" }
    );

    let points = loadgen::sweep(&tenants, &cfg, &rates);
    for p in &points {
        println!(
            "  offered {:8.0} QPS -> achieved {:8.0} QPS  p50 {:8.4} ms  p99 {:8.4} ms  \
             mean batch {:5.2}  hit rate {:.1}%  rejected {}",
            p.offered_qps,
            p.achieved_qps,
            p.p50_ms,
            p.p99_ms,
            p.mean_batch,
            p.hit_rate * 100.0,
            p.rejected
        );
    }

    // End-to-end two-tier delta on the warm request path, plus the pool
    // front tier's own counters for the whole run.
    let rounds = if smoke { 25 } else { 100 };
    let pool_exact_ms = warm_request_ms(&tenants, &cfg.serve, false, rounds);
    let pool_tiered_ms = warm_request_ms(&tenants, &cfg.serve, true, rounds);
    dtc_par::set_front_tier_enabled(true);
    let l1_hits = dtc_telemetry::counter("cache.pool.l1_hits").get();
    let l1_misses = dtc_telemetry::counter("cache.pool.l1_misses").get();
    println!(
        "pool front tier: warm request exact-only {pool_exact_ms:.4} ms, two-tier \
         {pool_tiered_ms:.4} ms ({:.2}x); l1 hits {l1_hits}, l1 misses {l1_misses}",
        pool_exact_ms / pool_tiered_ms.max(1e-9)
    );

    let json = Json::obj(vec![
        ("bench", Json::str("serve")),
        ("smoke", Json::bool(smoke)),
        ("verify", Json::bool(verify)),
        ("tenants", Json::usize(tenants.len())),
        ("requests_per_point", Json::usize(cfg.requests)),
        ("calibrated_service_ms", Json::f(service_ms, 4)),
        ("sweep", Json::arr(points.iter().map(json_point).collect())),
        (
            "pool_front_tier",
            Json::obj_inline(vec![
                ("warm_exact_ms", Json::f(pool_exact_ms, 4)),
                ("warm_two_tier_ms", Json::f(pool_tiered_ms, 4)),
                ("l1_hits", Json::u64(l1_hits)),
                ("l1_misses", Json::u64(l1_misses)),
            ]),
        ),
    ])
    .render();
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json ({} sweep points)", points.len());

    // The CI gates: the repeated-matrix workload must be dominated by pool
    // hits once the 4 engines are resident, and latency must be measured.
    let steady = points.last().expect("sweep is non-empty");
    assert!(
        steady.hit_rate >= HIT_RATE_GATE,
        "steady-state pool hit rate {:.3} below the {HIT_RATE_GATE} gate",
        steady.hit_rate
    );
    for p in &points {
        assert!(p.p50_ms.is_finite() && p.p99_ms.is_finite(), "non-finite latency percentile");
        assert!(p.completed > 0, "a load point completed no requests");
    }
    println!(
        "serve gate OK: steady-state hit rate {:.1}% >= {:.0}%",
        steady.hit_rate * 100.0,
        HIT_RATE_GATE * 100.0
    );
}
