//! Simulator-throughput benchmark for the compressed trace path.
//!
//! Measures the two levers this layer adds:
//!
//! 1. **Class interning** — a duplicate-heavy trace (≥10⁴ blocks drawn from
//!    a few dozen work shapes, the structure of large uniform launches)
//!    simulated with interning on vs off, in both `TimingMode`s. Timing
//!    work is O(classes) when on, O(blocks) when off; reports are pinned
//!    bit-identical by the equivalence tests, so only the wall clock moves.
//! 2. **Set-sharded L2 replay** — the same recorded sector streams replayed
//!    through the cache model under a thread sweep, counting sectors/sec.
//!
//! Writes `BENCH_sim_perf.json`. `--smoke` runs a small trace once with no
//! timing assertions, so CI can exercise the whole path cheaply.

use dtc_sim::{
    l2_counts_over_trace, l2_shard_counts, simulate, Device, KernelTrace, SectorStream, SimOptions,
    TbWork, TimingMode,
};
use dtc_telemetry::json::Json;
use std::time::Instant;

const L2_THREADS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 5;

/// A duplicate-heavy launch: `blocks` thread blocks drawn from `shapes`
/// distinct work classes, each recording one contiguous B-tile run plus a
/// shape-dependent scattered tail (so streams exercise both run shapes).
fn synthetic_trace(blocks: usize, shapes: usize, record_streams: bool) -> KernelTrace {
    let mut trace = KernelTrace::new(6, 8);
    for i in 0..blocks {
        let s = i % shapes;
        let mut stream = SectorStream::new();
        if record_streams {
            stream.push_run((s as u64 % 64) * 32, 32);
            stream.push((i as u64 * 131) % 100_000); // scattered tail sector
        }
        trace.push(TbWork {
            alu_ops: 40.0 + s as f64,
            fp_ops: (s % 3) as f64 * 16.0,
            lsu_a_sectors: 24.0,
            lsu_b_sectors: 33.0,
            hmma_ops: 64.0 + (s % 5) as f64 * 32.0,
            hmma_count: 128.0,
            iters: 40.0, // long main loop: event-driven replay is expensive
            overlap_a_fetch: s.is_multiple_of(2),
            b_stream: stream,
            ..TbWork::default()
        });
    }
    trace
}

/// Best-of-`REPS` wall time of `simulate` over `trace`, in ms.
fn time_simulate(device: &Device, trace: &KernelTrace, opts: &SimOptions) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let r = simulate(device, trace, opts);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(r.time_ms >= 0.0);
        best = best.min(ms);
    }
    best
}

fn main() {
    let smoke = dtc_bench::cli::Args::parse().smoke();
    let _metrics = dtc_bench::metrics_flush_guard();
    let device = Device::rtx4090();
    let blocks = if smoke { 2_000 } else { 50_000 };
    let shapes = 64;

    // Interned (default) and legacy (one class per block) variants of the
    // same launch. Streams are recorded once, on the trace used for L2.
    let interned = synthetic_trace(blocks, shapes, true);
    let mut legacy = KernelTrace::new(interned.occupancy, interned.warps_per_tb);
    legacy.set_interning(false);
    for i in 0..interned.num_tbs() {
        let mut tb = interned.tb(i).clone();
        tb.b_stream = interned.stream(i).clone();
        legacy.push(tb);
    }
    let sectors: usize = (0..interned.num_tbs()).map(|i| interned.stream(i).len()).sum();
    eprintln!(
        "sim_throughput: {blocks} blocks, {} classes, {sectors} recorded sectors{}",
        interned.num_classes(),
        if smoke { " (smoke)" } else { "" }
    );

    // Timing-path speedup, both modes, L2 off (isolates the class lever).
    let mut timing_rows = Vec::new();
    for (name, timing) in
        [("analytical", TimingMode::Analytical), ("event_driven", TimingMode::EventDriven)]
    {
        let opts = SimOptions { simulate_l2: false, timing };
        let legacy_ms = time_simulate(&device, &legacy, &opts);
        let interned_ms = time_simulate(&device, &interned, &opts);
        let speedup = legacy_ms / interned_ms.max(1e-9);
        let blocks_per_sec = blocks as f64 / (interned_ms * 1e-3).max(1e-12);
        eprintln!(
            "  {name:>12}: legacy {legacy_ms:8.3} ms, interned {interned_ms:8.3} ms  ({speedup:.2}x, {blocks_per_sec:.3e} blocks/s)"
        );
        timing_rows.push((name, legacy_ms, interned_ms, speedup, blocks_per_sec));
    }

    // L2 replay thread sweep over the compressed streams. Counts must not
    // move with the thread count (set sharding is exact). Wall time only
    // scales with real cores, so each shard is also timed on its own: the
    // slowest shard is the critical path a T-core host would pay.
    let host_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let serial_counts = l2_counts_over_trace(&device, &interned, 1);
    let mut l2_rows = Vec::new();
    let mut l2_serial_ms = 0.0f64;
    for &threads in &L2_THREADS {
        let mut best_wall = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let counts = l2_counts_over_trace(&device, &interned, threads);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            assert_eq!(counts, serial_counts, "sharded counts diverged at T={threads}");
            best_wall = best_wall.min(ms);
        }
        // Critical path: slowest single shard (and exactness of the sum).
        let mut max_shard_ms = 0.0f64;
        let mut summed = (0u64, 0u64);
        for shard in 0..threads {
            let mut best_shard = f64::INFINITY;
            let mut counts = (0, 0);
            for _ in 0..REPS {
                let t0 = Instant::now();
                counts = l2_shard_counts(&device, &interned, shard, threads);
                best_shard = best_shard.min(t0.elapsed().as_secs_f64() * 1e3);
            }
            summed.0 += counts.0;
            summed.1 += counts.1;
            max_shard_ms = max_shard_ms.max(best_shard);
        }
        assert_eq!(summed, serial_counts, "shard sum diverged at T={threads}");
        if threads == 1 {
            l2_serial_ms = best_wall;
        }
        let wall_speedup = l2_serial_ms / best_wall.max(1e-9);
        let cp_speedup = l2_serial_ms / max_shard_ms.max(1e-9);
        let sectors_per_sec = sectors as f64 / (max_shard_ms * 1e-3).max(1e-12);
        eprintln!(
            "  l2 threads={threads}: wall {best_wall:8.3} ms ({wall_speedup:.2}x), critical path {max_shard_ms:8.3} ms ({cp_speedup:.2}x, {sectors_per_sec:.3e} sectors/s)"
        );
        l2_rows.push((threads, best_wall, wall_speedup, max_shard_ms, cp_speedup, sectors_per_sec));
    }

    // Two-tier intern front cache: trace construction replays the same few
    // dozen work classes, so the interner's lossy front tier should absorb
    // most exact-map probes. End-to-end build-time delta, exact-only vs
    // two-tier (class tables are identical either way).
    let time_build = |enabled: bool| -> f64 {
        dtc_par::set_front_tier_enabled(enabled);
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let t = synthetic_trace(blocks, shapes, false);
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(t.num_classes(), interned.num_classes(), "front tier changed interning");
        }
        best
    };
    let build_exact_ms = time_build(false);
    let build_tiered_ms = time_build(true);
    dtc_par::set_front_tier_enabled(true);
    let intern_speedup = build_exact_ms / build_tiered_ms.max(1e-9);
    eprintln!(
        "  intern front tier: exact-only build {build_exact_ms:8.3} ms, two-tier {build_tiered_ms:8.3} ms  ({intern_speedup:.2}x)"
    );

    // Memory: encoded trace vs the raw u64 sector addresses it replaces.
    let raw_stream_bytes = sectors * std::mem::size_of::<u64>();
    let trace_bytes = interned.memory_bytes();
    eprintln!(
        "  memory: interned trace {trace_bytes} B, raw sector addresses {raw_stream_bytes} B, compression {:.1}x blocks/class",
        interned.compression_ratio()
    );

    if !smoke {
        // Acceptance: ≥3x blocks/sec from interning on a duplicate-heavy
        // trace. The event-driven path (where per-block timing is costly)
        // is the one the class lever targets; the analytical path is bound
        // by the shared O(blocks) schedule/accounting work either way.
        let best_speedup = timing_rows.iter().map(|r| r.3).fold(0.0f64, f64::max);
        assert!(best_speedup >= 3.0, "acceptance: interning speedup {best_speedup:.2}x < 3x");
    }

    let json = Json::obj(vec![
        ("bench", Json::str("sim_throughput")),
        ("smoke", Json::bool(smoke)),
        (
            "trace",
            Json::obj_inline(vec![
                ("blocks", Json::raw(blocks.to_string())),
                ("classes", Json::usize(interned.num_classes())),
                ("sectors", Json::raw(sectors.to_string())),
                ("bytes", Json::raw(trace_bytes.to_string())),
                ("raw_stream_bytes", Json::raw(raw_stream_bytes.to_string())),
            ]),
        ),
        (
            "timing",
            Json::arr(
                timing_rows
                    .iter()
                    .map(|(name, legacy_ms, interned_ms, speedup, bps)| {
                        Json::obj_inline(vec![
                            ("mode", Json::str(*name)),
                            ("legacy_ms", Json::f(*legacy_ms, 4)),
                            ("interned_ms", Json::f(*interned_ms, 4)),
                            ("speedup", Json::f(*speedup, 3)),
                            ("blocks_per_sec", Json::f(*bps, 1)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("host_threads", Json::raw(host_threads.to_string())),
        (
            "l2_sweep",
            Json::arr(
                l2_rows
                    .iter()
                    .map(|(threads, wall, wall_speedup, cp_ms, cp_speedup, sps)| {
                        Json::obj_inline(vec![
                            ("threads", Json::raw(threads.to_string())),
                            ("wall_ms", Json::f(*wall, 4)),
                            ("wall_speedup", Json::f(*wall_speedup, 3)),
                            ("critical_path_ms", Json::f(*cp_ms, 4)),
                            ("critical_path_speedup", Json::f(*cp_speedup, 3)),
                            ("sectors_per_sec", Json::f(*sps, 1)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "intern_front_tier",
            Json::obj_inline(vec![
                ("exact_build_ms", Json::f(build_exact_ms, 4)),
                ("two_tier_build_ms", Json::f(build_tiered_ms, 4)),
                ("speedup", Json::f(intern_speedup, 3)),
            ]),
        ),
    ])
    .render();
    std::fs::write("BENCH_sim_perf.json", &json).expect("write BENCH_sim_perf.json");
    println!("wrote BENCH_sim_perf.json");
}
