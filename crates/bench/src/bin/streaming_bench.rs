//! `streaming_bench`: incremental delta updates vs full engine rebuilds.
//!
//! Streaming workloads (graph updates, online pruning) edit a few entries
//! of a resident matrix at a time. The paper's conversion-cost argument
//! cuts both ways there: a full rebuild pays CSR reconstruction, SGT
//! condensing and the simulation-based Selector on every edit batch,
//! while `DtcSpmm::apply_delta` re-condenses only the touched 16-row
//! windows, splices them in place, drops every stale cached artifact, and
//! re-runs the Selector only when the row-length stats drift.
//!
//! The sweep scales the number of touched windows per edit batch and
//! times both paths end to end (the rebuild path includes constructing
//! the edited CSR, which any rebuild consumer must also do). Reported per
//! point: ms per edit batch for each path and the delta-path speedup; the
//! summary locates the **crossover** — the smallest touched-window count
//! where patching stops beating rebuilding — which full-matrix sweeps
//! never reach. Writes `BENCH_streaming.json`.
//!
//! Every run first pins correctness: for each point the patched engine's
//! ME-TCF must be **bitwise identical** to a fresh build over the edited
//! matrix, and a post-delta execute must match the rebuilt engine's
//! output bit for bit.
//!
//! Gates (smoke and full): bitwise identity at every point, a ≥ 5x
//! single-window speedup (the acceptance bar for the delta path), and
//! crossover sanity — the single-window speedup must be at least the
//! all-windows speedup, so the curve trends the right way.

use dtc_core::{clear_conversion_cache, DeltaPolicy, DtcSpmm, MatrixDelta};
use dtc_formats::gen::uniform;
use dtc_formats::{CsrMatrix, DenseMatrix};
use dtc_telemetry::json::Json;
use std::time::Instant;

/// Timing repeats per (point, path); the minimum is reported. Nine reps
/// because the delta path's sub-millisecond timings are jitter-sensitive
/// on a loaded single-core host and the gate below is a hard assert.
const REPS: usize = 9;

/// One sweep point.
struct Point {
    windows_touched: usize,
    ops: usize,
    delta_ms: f64,
    rebuild_ms: f64,
    reselected: bool,
}

impl Point {
    fn speedup(&self) -> f64 {
        self.rebuild_ms / self.delta_ms
    }
}

/// An edit batch touching exactly `k` of the matrix's row windows, spread
/// evenly across the row space: per window two inserts at seed-dependent
/// columns, one update of a resident entry and one delete of a resident
/// entry (both fall back to inserts when the window is empty).
fn make_delta(a: &CsrMatrix, k: usize, seed: u64) -> MatrixDelta {
    let windows = a.rows().div_ceil(16).max(1);
    let k = k.min(windows);
    let mut delta = MatrixDelta::new();
    for i in 0..k {
        let w = i * windows / k;
        let base = w * 16;
        let rows = (a.rows() - base).min(16);
        let mix = seed ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let col = |j: u64| ((mix.wrapping_mul(j * 2 + 1) >> 17) as usize) % a.cols();
        let row = |j: u64| base + ((mix.wrapping_mul(j * 2 + 7) >> 23) as usize) % rows;
        delta.insert(row(1), col(1), 0.5);
        delta.insert(row(2), col(2), -1.5);
        let resident: Vec<(usize, usize, f32)> = (base..base + rows)
            .flat_map(|r| {
                let (cols, vals) = a.row_entries(r);
                cols.iter().zip(vals).map(move |(&c, &v)| (r, c as usize, v)).collect::<Vec<_>>()
            })
            .collect();
        if resident.is_empty() {
            delta.insert(row(3), col(3), 2.0);
            delta.insert(row(4), col(4), -0.25);
        } else {
            let (r, c, v) = resident[(mix >> 11) as usize % resident.len()];
            delta.update(r, c, v * 2.0 + 1.0);
            let (r, c, _) = resident[(mix >> 29) as usize % resident.len()];
            delta.delete(r, c);
        }
    }
    delta
}

/// Pins the point's correctness: patching in place must equal a fresh
/// build over the edited matrix — format bitwise, output bitwise.
fn assert_bitwise(a: &CsrMatrix, delta: &MatrixDelta, policy: &DeltaPolicy) {
    let mut patched = DtcSpmm::new(a);
    patched.apply_delta(delta, policy).expect("apply_delta");
    let edited = delta.apply_to_csr(a).expect("apply_to_csr");
    clear_conversion_cache();
    let rebuilt = DtcSpmm::new(&edited);
    assert_eq!(patched.metcf(), rebuilt.metcf(), "patched ME-TCF must equal rebuild");
    let b = DenseMatrix::from_fn(a.cols(), 16, |r, c| ((r * 7 + c * 3) % 17) as f32 * 0.25 - 2.0);
    let via_patch = patched.execute(&b).expect("patched execute");
    let via_rebuild = rebuilt.execute(&b).expect("rebuilt execute");
    let bits = |m: &DenseMatrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&via_patch), bits(&via_rebuild), "post-delta execute diverged");
}

/// Times one edit-batch size: the delta path (in-place `apply_delta` on a
/// prepared engine) against the rebuild path (edited-CSR construction
/// plus a cold `DtcSpmm::new`). Both are best-of-[`REPS`]; the engine the
/// delta path patches is rebuilt untimed before every rep, since
/// `apply_delta` consumes the pre-edit state.
fn sweep_point(a: &CsrMatrix, k: usize, policy: &DeltaPolicy) -> Point {
    let delta = make_delta(a, k, 0x57AE_A41B ^ k as u64);
    assert_bitwise(a, &delta, policy);

    let mut delta_ms = f64::INFINITY;
    let mut reselected = false;
    for _ in 0..REPS {
        clear_conversion_cache();
        let mut engine = DtcSpmm::new(a);
        let t0 = Instant::now();
        let outcome = engine.apply_delta(&delta, policy).expect("apply_delta");
        delta_ms = delta_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        reselected = outcome.reselected;
        std::hint::black_box(&engine);
    }

    let mut rebuild_ms = f64::INFINITY;
    for _ in 0..REPS {
        clear_conversion_cache();
        let t0 = Instant::now();
        let edited = delta.apply_to_csr(a).expect("apply_to_csr");
        let engine = DtcSpmm::new(&edited);
        rebuild_ms = rebuild_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(&engine);
    }

    Point { windows_touched: k, ops: delta.len(), delta_ms, rebuild_ms, reselected }
}

fn json_point(p: &Point) -> Json {
    Json::obj_inline(vec![
        ("windows_touched", Json::usize(p.windows_touched)),
        ("ops", Json::usize(p.ops)),
        ("delta_ms", Json::f(p.delta_ms, 4)),
        ("rebuild_ms", Json::f(p.rebuild_ms, 4)),
        ("speedup", Json::f(p.speedup(), 3)),
        ("reselected", Json::bool(p.reselected)),
    ])
}

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    let args = dtc_bench::cli::Args::parse();
    let smoke = args.smoke();

    let (rows, nnz_per_row, ks): (usize, usize, Vec<usize>) = if smoke {
        (2048, 8, vec![1, 4, 16, 64])
    } else {
        (4096, 8, vec![1, 2, 4, 8, 16, 32, 64, 128, 256])
    };
    let a = uniform(rows, rows, rows * nnz_per_row, 0xD7C5_57AE);
    let windows = rows.div_ceil(16);
    let policy = DeltaPolicy::default();
    println!(
        "## streaming — {rows}x{rows}, {} nnz, {windows} windows, {} edit-batch sizes, \
         best of {REPS}",
        a.nnz(),
        ks.len()
    );

    let points: Vec<Point> = ks.iter().map(|&k| sweep_point(&a, k, &policy)).collect();

    println!("\n| windows touched | ops | delta ms | rebuild ms | speedup | reselected |");
    println!("|---|---|---|---|---|---|");
    for p in &points {
        println!(
            "| {} | {} | {:.4} | {:.4} | {:.2}x | {} |",
            p.windows_touched,
            p.ops,
            p.delta_ms,
            p.rebuild_ms,
            p.speedup(),
            p.reselected
        );
    }

    // The crossover: the smallest touched-window count where patching no
    // longer beats rebuilding (None when patching wins everywhere).
    let crossover = points.iter().find(|p| p.speedup() < 1.0).map(|p| p.windows_touched);
    match crossover {
        Some(k) => println!("\ncrossover at {k} touched windows (of {windows})"),
        None => println!("\nno crossover: the delta path won at every sweep point"),
    }

    // Gates. Bitwise identity already ran inside every sweep point.
    let single = &points[0];
    assert_eq!(single.windows_touched, 1, "sweep must start at one window");
    assert!(
        single.speedup() >= 5.0,
        "single-window delta speedup {:.2}x below the 5x acceptance bar \
         ({:.4} ms vs {:.4} ms)",
        single.speedup(),
        single.delta_ms,
        single.rebuild_ms
    );
    let widest = points.last().expect("non-empty sweep");
    assert!(
        single.speedup() >= widest.speedup(),
        "crossover sanity: speedup at 1 window ({:.2}x) must be >= at {} windows ({:.2}x)",
        single.speedup(),
        widest.windows_touched,
        widest.speedup()
    );

    let json = Json::obj(vec![
        ("bench", Json::str("streaming")),
        ("smoke", Json::bool(smoke)),
        ("timing_reps", Json::usize(REPS)),
        (
            "matrix",
            Json::obj_inline(vec![
                ("rows", Json::usize(rows)),
                ("cols", Json::usize(rows)),
                ("nnz", Json::usize(a.nnz())),
                ("windows", Json::usize(windows)),
            ]),
        ),
        ("reselect_drift", Json::f(policy.reselect_drift, 3)),
        ("points", Json::arr(points.iter().map(json_point).collect())),
        ("crossover_windows", crossover.map_or(Json::str("none"), Json::usize)),
    ])
    .render();
    let artifact = if smoke { "BENCH_streaming_smoke.json" } else { "BENCH_streaming.json" };
    std::fs::write(artifact, &json).expect("write streaming artifact");
    println!("wrote {artifact}");
}
