//! Table 1: the 8 representative matrices — paper statistics beside our
//! scaled synthetic stand-ins.

use dtc_bench::print_table;
use dtc_datasets::{representative, DatasetKind};

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    let mut rows = Vec::new();
    for d in representative() {
        let s = d.stats();
        let paper = d.paper.expect("table-1 datasets carry paper stats");
        rows.push(vec![
            match d.kind {
                DatasetKind::TypeI => "I".to_owned(),
                DatasetKind::TypeII => "II".to_owned(),
                DatasetKind::GnnGraph => "-".to_owned(),
            },
            d.name.clone(),
            d.abbr.clone(),
            format!("{}", paper.rows),
            format!("{}", paper.nnz),
            format!("{:.2}", paper.avg_row_len),
            format!("{}", s.rows),
            format!("{}", s.nnz),
            format!("{:.2}", s.avg_row_len),
        ]);
    }
    print_table(
        "Table 1: representative matrices (paper vs. scaled stand-in)",
        &[
            "Type",
            "Name",
            "Abbr",
            "M&K (paper)",
            "NNZ (paper)",
            "AvgRowL (paper)",
            "M&K (ours)",
            "NNZ (ours)",
            "AvgRowL (ours)",
        ],
        &rows,
    );
}
