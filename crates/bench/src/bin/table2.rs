//! Table 2: measured key indicators for TCGNN-SpMM on the 8 representative
//! matrices — `MeanNnzTC` after SGT, `#IMAD/#HMMA`, and Tensor-Core
//! pipeline utilization (paper values in parentheses in the rendered
//! table for reference).

use dtc_baselines::{SpmmKernel, TcgnnSpmm};
use dtc_bench::print_table;
use dtc_datasets::{representative, scaled_device};
use dtc_sim::Device;

/// The paper's measured values, for side-by-side comparison.
fn paper_values(abbr: &str) -> (f64, f64, f64) {
    match abbr {
        "YH" => (9.79, 13.72, 4.19),
        "OH" => (9.66, 13.69, 4.31),
        "Yt" => (10.69, 13.80, 3.97),
        "DD" => (12.97, 13.43, 6.64),
        "WB" => (26.9, 15.16, 6.09),
        "reddit" => (16.53, 98.54, 0.46),
        "ddi" => (25.88, 46.67, 0.90),
        "protein" => (14.80, 63.90, 1.47),
        _ => (0.0, 0.0, 0.0),
    }
}

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    let device = scaled_device(Device::rtx4090());
    let n = 128;
    let mut rows = Vec::new();
    for d in representative() {
        let a = d.matrix();
        let kernel = TcgnnSpmm::new(&a).expect("table-1 matrices are square");
        let report = kernel.simulate(n, &device);
        let mean_nnz = kernel.condensed().mean_nnz_tc();
        let (p_mnnz, p_ratio, p_util) = paper_values(&d.abbr);
        rows.push(vec![
            d.abbr.clone(),
            format!("{mean_nnz:.2} ({p_mnnz:.2})"),
            format!("{:.2} ({p_ratio:.2})", report.imad_per_hmma),
            format!("{:.2}% ({p_util:.2}%)", report.tc_utilization * 100.0),
        ]);
    }
    print_table(
        "Table 2: TCGNN-SpMM key indicators — ours (paper)",
        &["Dataset", "MeanNnzTC", "#IMAD/#HMMA", "TC Pipeline Utilization"],
        &rows,
    );
    println!(
        "\nShape checks: MeanNnzTC mostly < 16 for Type I; #IMAD/#HMMA an order\n\
         of magnitude larger on Type II; utilization low throughout."
    );
}
