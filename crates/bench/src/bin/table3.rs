//! Table 3: summary of the SuiteSparse-corpus comparison on both GPU
//! models — the fraction of matrices in each speedup bucket and the
//! geomean speedup of DTC-SpMM over each baseline.

use dtc_baselines::{CusparseSpmm, SparseTirSpmm, SpmmKernel, SputnikSpmm, TcgnnSpmm};
use dtc_bench::{fmt_x, geomean, print_table};
use dtc_core::DtcSpmm;
use dtc_datasets::{scaled_device, suite_corpus};
use dtc_sim::Device;

#[derive(Default)]
struct Buckets {
    over_15: usize,
    one_to_15: usize,
    nine_to_one: usize,
    five_to_nine: usize,
    below_five: usize,
    speedups: Vec<f64>,
}

impl Buckets {
    fn add(&mut self, s: f64) {
        self.speedups.push(s);
        if s > 1.5 {
            self.over_15 += 1;
        } else if s >= 1.0 {
            self.one_to_15 += 1;
        } else if s >= 0.9 {
            self.nine_to_one += 1;
        } else if s >= 0.5 {
            self.five_to_nine += 1;
        } else {
            self.below_five += 1;
        }
    }

    fn pct(&self, n: usize) -> [String; 4] {
        let total = self.speedups.len().max(1) as f64;
        let _ = n;
        [
            format!("{:.2}%", self.over_15 as f64 / total * 100.0),
            format!("{:.2}%", self.one_to_15 as f64 / total * 100.0),
            format!("{:.2}%", self.nine_to_one as f64 / total * 100.0),
            format!("{:.2}%", (self.five_to_nine + self.below_five) as f64 / total * 100.0),
        ]
    }
}

fn run_device(device: &Device, paper: [&str; 5]) {
    let n = 128;
    let mut vs_cus = Buckets::default();
    let mut vs_tcg = Buckets::default();
    let mut vs_tir = Buckets::default();
    let mut vs_spk = Buckets::default();
    let corpus = suite_corpus();
    for d in &corpus {
        let a = d.matrix();
        let dtc = DtcSpmm::builder().device(device.clone()).build(&a).simulate(n, device).time_ms;
        vs_cus.add(CusparseSpmm::new(&a).simulate(n, device).time_ms / dtc);
        vs_tcg.add(TcgnnSpmm::new(&a).expect("square").simulate(n, device).time_ms / dtc);
        vs_tir.add(SparseTirSpmm::new(&a).simulate(n, device).time_ms / dtc);
        vs_spk.add(SputnikSpmm::new(&a).expect("in range").simulate(n, device).time_ms / dtc);
    }
    let total = corpus.len();
    let mut rows = Vec::new();
    let labels = [">1.5x", "1.0-1.5x", "0.9-1.0x", "<0.9x"];
    let all = [&vs_cus, &vs_tcg, &vs_tir, &vs_spk];
    for (i, label) in labels.iter().enumerate() {
        let mut row = vec![label.to_string()];
        for b in all {
            row.push(b.pct(total)[i].clone());
        }
        rows.push(row);
    }
    let mut geo = vec!["Geomean speedup".to_string()];
    for b in all {
        geo.push(fmt_x(geomean(&b.speedups)));
    }
    rows.push(geo);
    print_table(
        &format!(
            "Table 3 ({}, {} corpus matrices, N=128) — paper: {:?}",
            device.name, total, paper
        ),
        &["DTC speedup", "vs cuSPARSE", "vs TCGNN", "vs SparseTIR", "vs Sputnik"],
        &rows,
    );
}

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    run_device(
        &scaled_device(Device::rtx4090()),
        ["geomeans:", "2.16x", "3.25x", "1.57x", "1.46x"],
    );
    run_device(
        &scaled_device(Device::rtx3090()),
        ["geomeans:", "1.98x", "3.25x", "1.48x", "1.29x"],
    );
    println!(
        "\nShape checks: DTC achieves speedups on the overwhelming majority of\n\
         matrices; cuSPARSE is the weakest baseline and Sputnik the strongest;\n\
         the RTX3090 speedups are slightly lower than the RTX4090 ones."
    );
}
