//! Table 4: execution time of Flash-LLM (v1/v2), SparTA and DTC-SpMM on
//! the matrices they can run (RTX4090 model, N=128). Flash-LLM reports OOM
//! on datasets whose dense conversion staging exceeds device memory;
//! SparTA reports Not Supported beyond its (scaled) 50 000-row/col limit.

use dtc_baselines::{FlashLlmSpmm, FlashLlmVersion, SpartaSpmm, SpmmKernel};
use dtc_bench::{fmt_ms, print_table, row_scale, scaled_sparta_limit};
use dtc_core::DtcSpmm;
use dtc_datasets::{representative, scaled_device};
use dtc_sim::Device;

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    let device = scaled_device(Device::rtx4090());
    let n = 128;
    let mut rows = Vec::new();
    for d in representative() {
        let a = d.matrix();
        let scale = row_scale(&d);
        let flash = |v: FlashLlmVersion| -> String {
            match FlashLlmSpmm::with_version(&a, device.global_mem_bytes, v) {
                Ok(k) => fmt_ms(k.simulate(n, &device).time_ms),
                Err(_) => "OOM".into(),
            }
        };
        let sparta = match SpartaSpmm::new(&a, scaled_sparta_limit(scale)) {
            Ok(k) => fmt_ms(k.simulate(n, &device).time_ms),
            Err(_) => "Not Supported".into(),
        };
        let dtc = fmt_ms(
            DtcSpmm::builder().device(device.clone()).build(&a).simulate(n, &device).time_ms,
        );
        rows.push(vec![
            d.abbr.clone(),
            flash(FlashLlmVersion::V1),
            flash(FlashLlmVersion::V2),
            sparta,
            dtc,
        ]);
    }
    print_table(
        "Table 4: Flash-LLM / SparTA / DTC-SpMM execution time (ms, RTX4090 model, N=128)",
        &["Dataset", "Flash-LLM (v1)", "Flash-LLM (v2)", "SparTA", "Ours"],
        &rows,
    );
    println!(
        "\nPaper (ms): ddi 0.070/0.113/0.049/0.068; protein 30.0/30.0/NS/3.70;\n\
         reddit 90.2/90.2/NS/5.95; OOM for Flash-LLM elsewhere.\n\
         Shape checks: Flash-LLM OOMs on the Type-I matrices (dense staging),\n\
         SparTA only supports ddi, and DTC-SpMM wins where both run."
    );
}
