//! `tracelint`: the static lint sweep over every kernel model.
//!
//! Lowers every kernel (DTC base + balanced and all ten baselines) over a
//! dataset suite and runs the full `dtc-verify` lint battery on each trace
//! — structural invariants, SM resource legality (paper eq. 6),
//! conservation laws, cost-table coverage — plus the speed-of-light and
//! counter-identity lints over a simulated report of the same trace.
//!
//! Modes: default sweeps the eight Table-1 representative matrices;
//! `--suite` sweeps the 120-matrix SuiteSparse stand-in corpus; `--smoke`
//! runs two small matrices for CI. Writes `TRACELINT.json` and exits
//! nonzero when any error-severity diagnostic is produced — this is the CI
//! gate that keeps lowering sites honest.
//!
//! Documentation modes (no sweep): `--explain <lint-id>` prints one
//! lint's id, severity and summary from either registry; `--lints-md`
//! regenerates `docs/LINTS.md` (run from the repo root; the
//! `lint_docs` test fails when the checked-in file drifts).

use dtc_baselines::util::distinct_col_count;
use dtc_baselines::*;
use dtc_core::{BalancedDtcKernel, DtcKernel};
use dtc_datasets::{representative, scaled_device, suite_corpus, Dataset};
use dtc_formats::CsrMatrix;
use dtc_sim::{simulate, Device, SimOptions};
use dtc_verify::{verify_report, verify_trace, CaseResult, LintReport, ProblemSpec, TraceCase};

/// Record B-access streams (and simulate the L2) only below this NNZ, to
/// keep the full-corpus sweep fast; smoke mode always records.
const RECORD_NNZ_LIMIT: usize = 200_000;

/// One lineup entry: kernel name, fallible constructor result, and whether
/// the modeled kernel double-buffers its A fetch with `cp.async` (the SDB
/// flag the gating lint checks `overlap_a_fetch` against).
type LineupEntry = (&'static str, Result<Box<dyn SpmmKernel>, String>, bool);

/// The kernel lineup on one matrix.
fn lineup(a: &CsrMatrix, device: &Device) -> Vec<LineupEntry> {
    let ok = |k: Box<dyn SpmmKernel>| -> Result<Box<dyn SpmmKernel>, String> { Ok(k) };
    vec![
        ("cuSPARSE", ok(Box::new(CusparseSpmm::new(a))), false),
        ("TCGNN", TcgnnSpmm::new(a).map(|k| Box::new(k) as _).map_err(|e| e.to_string()), false),
        (
            "Sputnik",
            SputnikSpmm::new(a).map(|k| Box::new(k) as _).map_err(|e| e.to_string()),
            false,
        ),
        ("SparseTIR", ok(Box::new(SparseTirSpmm::new(a))), false),
        ("HP-SpMM", ok(Box::new(HpSpmm::new(a))), false),
        (
            "Block-SpMM",
            BlockSpmm::new(a, 32, device.global_mem_bytes)
                .map(|k| Box::new(k) as _)
                .map_err(|e| e.to_string()),
            true,
        ),
        (
            "VectorSparse",
            VectorSparseSpmm::new(a, 8).map(|k| Box::new(k) as _).map_err(|e| e.to_string()),
            true,
        ),
        (
            "Flash-LLM",
            FlashLlmSpmm::new(a, device.global_mem_bytes)
                .map(|k| Box::new(k) as _)
                .map_err(|e| e.to_string()),
            true,
        ),
        (
            "SparTA",
            SpartaSpmm::new(a, SPARTA_DEFAULT_LIMIT)
                .map(|k| Box::new(k) as _)
                .map_err(|e| e.to_string()),
            true,
        ),
        ("HybridSplit", ok(Box::new(HybridSplitSpmm::new(a))), true),
        ("DTC-SpMM", ok(Box::new(DtcKernel::new(a))), true),
        ("DTC-SpMM-balanced", ok(Box::new(BalancedDtcKernel::new(a))), true),
    ]
}

/// Lints every kernel on one dataset, appending to the report.
fn lint_dataset(dataset: &Dataset, n: usize, device: &Device, report: &mut LintReport) {
    let a = dataset.matrix();
    let record = a.nnz() <= RECORD_NNZ_LIMIT;
    let b_rows_touched = distinct_col_count(&a);
    for (name, kernel, sdb) in lineup(&a, device) {
        let kernel = match kernel {
            Ok(k) => k,
            Err(reason) => {
                println!("  {name} on {}: skipped ({reason})", dataset.abbr);
                continue;
            }
        };
        let trace = kernel.trace(n, device, record);
        let problem =
            ProblemSpec { rows: a.rows(), cols: a.cols(), nnz: a.nnz(), n, b_rows_touched };
        let case = TraceCase::new(name, device, &trace).with_problem(problem).with_sdb(sdb);
        let mut diagnostics = verify_trace(&case);
        let opts = SimOptions { simulate_l2: record, ..SimOptions::default() };
        let sim = simulate(device, &trace, &opts);
        diagnostics.extend(verify_report(&case, &sim));
        for d in &diagnostics {
            println!("  {name} on {}: {d}", dataset.abbr);
        }
        report.cases.push(CaseResult {
            kernel: name.into(),
            dataset: dataset.abbr.clone(),
            num_tbs: trace.num_tbs(),
            num_classes: trace.classes().len(),
            diagnostics,
        });
    }
}

fn main() {
    let _metrics = dtc_bench::metrics_flush_guard();
    let args = dtc_bench::cli::Args::parse();
    if args.flag("explain") {
        let id = args.positional(0).unwrap_or("");
        match dtc_verify::explain_lint(id) {
            Some(doc) => {
                println!("{} ({})", doc.id, doc.severity.as_str());
                println!("  {}", doc.summary);
                return;
            }
            None => {
                eprintln!("tracelint: unknown lint id {id:?} (see docs/LINTS.md)");
                std::process::exit(2);
            }
        }
    }
    if args.flag("lints-md") {
        std::fs::write("docs/LINTS.md", dtc_verify::lints_markdown()).expect("write docs/LINTS.md");
        println!("wrote docs/LINTS.md");
        return;
    }
    let smoke = args.smoke();
    let suite = args.flag("suite");
    let device = scaled_device(Device::rtx4090());

    let (datasets, n) = if smoke {
        // Two small matrices, one per structure type.
        let ds = representative()
            .into_iter()
            .filter(|d| d.abbr == "DD" || d.abbr == "ddi")
            .collect::<Vec<_>>();
        (ds, 64)
    } else if suite {
        (suite_corpus(), 128)
    } else {
        (representative(), 128)
    };

    let mut report = LintReport::new(&device.name);
    println!("## tracelint — {} datasets, N={n}, device={}", datasets.len(), device.name);
    for dataset in &datasets {
        lint_dataset(dataset, n, &device, &mut report);
    }

    let json = report.to_json();
    std::fs::write("TRACELINT.json", &json).expect("write TRACELINT.json");
    println!(
        "{} cases: {} errors, {} warnings, {} infos — wrote TRACELINT.json",
        report.cases.len(),
        report.count(dtc_verify::Severity::Error),
        report.count(dtc_verify::Severity::Warning),
        report.count(dtc_verify::Severity::Info),
    );
    if report.has_errors() {
        eprintln!("tracelint: error-severity diagnostics found");
        std::process::exit(1);
    }
}
