//! Shared plumbing for the table/figure binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper;
//! this library holds the pieces they share: geometric means, markdown
//! table rendering, the scaled baseline limits, and the standard kernel
//! lineup runner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dtc_baselines::SpmmKernel;
use dtc_datasets::Dataset;
use dtc_sim::{Device, SimReport};

pub mod cli {
    //! Minimal shared argument parsing for the bench binaries.
    //!
    //! Every binary hand-rolled the same two patterns — `--flag` presence
    //! checks and positional operands with defaults — each slightly
    //! differently. This module is the one copy: `--`-prefixed tokens are
    //! flags, everything else is positional, order independent.

    /// Parsed command line: `--flags` and positional operands.
    #[derive(Debug, Clone, Default)]
    pub struct Args {
        flags: Vec<String>,
        positional: Vec<String>,
    }

    impl Args {
        /// Parses the process arguments (skipping the binary name).
        pub fn parse() -> Self {
            Self::from_tokens(std::env::args().skip(1))
        }

        /// Parses an explicit token stream (for tests).
        pub fn from_tokens(tokens: impl IntoIterator<Item = String>) -> Self {
            let mut args = Args::default();
            for tok in tokens {
                match tok.strip_prefix("--") {
                    Some(flag) => args.flags.push(flag.to_owned()),
                    None => args.positional.push(tok),
                }
            }
            args
        }

        /// Whether `--name` was passed (`name` given without the dashes).
        pub fn flag(&self, name: &str) -> bool {
            self.flags.iter().any(|f| f == name)
        }

        /// Whether `--smoke` was passed (the CI fast-path convention).
        pub fn smoke(&self) -> bool {
            self.flag("smoke")
        }

        /// The `i`-th positional operand.
        pub fn positional(&self, i: usize) -> Option<&str> {
            self.positional.get(i).map(String::as_str)
        }

        /// The `i`-th positional operand parsed as `T`, or `default` when
        /// absent or unparseable.
        pub fn parsed<T: std::str::FromStr>(&self, i: usize, default: T) -> T {
            self.positional(i).and_then(|s| s.parse().ok()).unwrap_or(default)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::Args;

        fn args(tokens: &[&str]) -> Args {
            Args::from_tokens(tokens.iter().map(|s| s.to_string()))
        }

        #[test]
        fn flags_and_positionals_separate() {
            let a = args(&["--smoke", "DD", "--verify", "128"]);
            assert!(a.smoke());
            assert!(a.flag("verify"));
            assert!(!a.flag("suite"));
            assert_eq!(a.positional(0), Some("DD"));
            assert_eq!(a.parsed::<usize>(1, 0), 128);
        }

        #[test]
        fn parsed_falls_back_on_missing_or_garbage() {
            let a = args(&["notanumber"]);
            assert_eq!(a.parsed::<usize>(0, 7), 7);
            assert_eq!(a.parsed::<usize>(3, 9), 9);
        }
    }
}

/// Geometric mean of a sequence of positive values; 0 on empty input.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-300).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Renders a markdown table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", headers.join(" | "));
    println!("|{}|", headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// The row-scale between a Table-1 dataset's original and our stand-in —
/// used to scale baseline shape limits (SparTA's 50 000-row cap) so that
/// "Not Supported" triggers on the same datasets as in the paper.
pub fn row_scale(dataset: &Dataset) -> f64 {
    match dataset.paper {
        Some(p) => p.rows as f64 / dataset.matrix().rows() as f64,
        None => 1.0,
    }
}

/// SparTA's shape limit, scaled to the dataset (paper: 50 000 rows/cols).
pub fn scaled_sparta_limit(scale: f64) -> usize {
    ((50_000.0 / scale.max(1.0)) as usize).max(1)
}

/// Flushes the telemetry registry to the `DTC_METRICS` sink (if set) when
/// dropped. Every binary takes one of these at the top of `main` so the
/// snapshot lands even on early returns; announces the written path.
#[derive(Debug)]
pub struct MetricsFlushGuard(());

impl Drop for MetricsFlushGuard {
    fn drop(&mut self) {
        if let Some(path) = dtc_telemetry::flush_env_sink() {
            eprintln!("metrics snapshot written to {}", path.display());
        }
    }
}

/// Arms the end-of-process metrics flush; see [`MetricsFlushGuard`].
#[must_use = "bind to a variable so the flush happens at end of main"]
pub fn metrics_flush_guard() -> MetricsFlushGuard {
    MetricsFlushGuard(())
}

/// Formats a simulated time in ms with sensible precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 1.0 {
        format!("{ms:.3}")
    } else {
        format!("{ms:.4}")
    }
}

/// Formats a speedup.
pub fn fmt_x(s: f64) -> String {
    format!("{s:.2}x")
}

/// Runs one kernel and returns its report plus achieved GFLOPS.
pub fn run(kernel: &dyn SpmmKernel, n: usize, device: &Device) -> (SimReport, f64) {
    let report = kernel.simulate(n, device);
    let gflops = report.gflops(kernel.flops(n));
    (report, gflops)
}

/// Simulated time (ms) of every method in the paper's Fig 11 lineup on one
/// matrix, or `None` where the method cannot run (OOM / Not Supported /
/// non-square), with the reason recorded.
pub fn fig11_lineup(
    a: &dtc_formats::CsrMatrix,
    n: usize,
    device: &Device,
    scale: f64,
) -> Vec<(String, Result<f64, String>)> {
    use dtc_baselines::*;
    let mut out: Vec<(String, Result<f64, String>)> = Vec::new();
    let time =
        |k: &dyn SpmmKernel, n: usize| -> Result<f64, String> { Ok(k.simulate(n, device).time_ms) };

    out.push(("cuSPARSE".into(), time(&CusparseSpmm::new(a), n)));
    out.push((
        "TCGNN".into(),
        TcgnnSpmm::new(a).map_err(|e| e.to_string()).and_then(|k| time(&k, n)),
    ));
    out.push((
        "Sputnik".into(),
        SputnikSpmm::new(a).map_err(|e| e.to_string()).and_then(|k| time(&k, n)),
    ));
    out.push(("SparseTIR".into(), time(&SparseTirSpmm::new(a), n)));
    out.push((
        "Block-SpMM".into(),
        BlockSpmm::new(a, 32, device.global_mem_bytes)
            .map_err(|e| e.to_string())
            .and_then(|k| time(&k, n)),
    ));
    out.push((
        "VectorSparse".into(),
        VectorSparseSpmm::new(a, 8).map_err(|e| e.to_string()).and_then(|k| time(&k, n)),
    ));
    out.push((
        "Flash-LLM".into(),
        FlashLlmSpmm::new(a, device.global_mem_bytes)
            .map_err(|e| e.to_string())
            .and_then(|k| time(&k, n)),
    ));
    out.push((
        "SparTA".into(),
        SpartaSpmm::new(a, scaled_sparta_limit(scale))
            .map_err(|e| e.to_string())
            .and_then(|k| time(&k, n)),
    ));
    let dtc = dtc_core::DtcSpmm::builder().device(device.clone()).build(a);
    out.push(("DTC-SpMM".into(), time(&dtc, n)));
    out
}

/// The extended lineup: additional methods the paper cites but does not
/// plot (HP-SpMM §6, hybrid dense/sparse splitting §2.2), next to DTC.
pub fn extended_lineup(
    a: &dtc_formats::CsrMatrix,
    n: usize,
    device: &Device,
) -> Vec<(String, f64)> {
    use dtc_baselines::*;
    let time = |k: &dyn SpmmKernel| k.simulate(n, device).time_ms;
    vec![
        ("cuSPARSE".into(), time(&CusparseSpmm::new(a))),
        ("HP-SpMM".into(), time(&HpSpmm::new(a))),
        ("HybridSplit".into(), time(&HybridSplitSpmm::new(a))),
        ("DTC-SpMM".into(), time(&dtc_core::DtcSpmm::builder().device(device.clone()).build(a))),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sparta_limit_scales() {
        assert_eq!(scaled_sparta_limit(1.0), 50_000);
        assert_eq!(scaled_sparta_limit(100.0), 500);
        // Scales below 1 clamp to the unscaled limit.
        assert_eq!(scaled_sparta_limit(0.5), 50_000);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ms(2.5), "2.500");
        assert_eq!(fmt_ms(0.1234), "0.1234");
        assert_eq!(fmt_x(1.5), "1.50x");
    }
}
