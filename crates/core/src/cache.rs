//! Keyed conversion cache: repeated pipeline builds over the same matrix
//! reuse the ME-TCF conversion instead of recomputing it.
//!
//! The paper's §6 point is that conversion overhead amortizes across the
//! thousands of SpMM calls an iterative workload makes; this cache makes
//! the host-side analogue concrete. Keys are a 64-bit FNV-1a hash over the
//! full matrix structure (shape, `row_ptr`, `col_idx`, value bits), so two
//! structurally identical matrices share one conversion; ME-TCF depends on
//! nothing else (device, kernel options and precision only affect traces,
//! which are cached per engine — see `DtcSpmm::trace`).
//!
//! Hit/miss counts live in the process-wide [`dtc_telemetry`] registry
//! (`core.cache.conversion.hits` / `.misses`) so they appear in every
//! metrics snapshot; [`conversion_cache_stats`] remains as a thin reader
//! over the registry so tests and benchmarks can observe that repeated
//! `build`/`execute` runs do not re-convert.

use crate::telemetry::{conversion_cache_hits, conversion_cache_misses};
use dtc_formats::{CsrMatrix, MeTcfMatrix};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// One cached conversion: the ME-TCF build plus the distinct-column count
/// the L2 model needs (both derived from the same CSR walk).
#[derive(Debug)]
pub struct CachedConversion {
    /// The converted matrix.
    pub metcf: MeTcfMatrix,
    /// Number of distinct columns of the source matrix.
    pub distinct_cols: usize,
}

/// Bound on resident entries; reaching it clears the map (the workloads we
/// serve cycle over small dataset suites, so wholesale eviction is fine and
/// keeps the bookkeeping trivial).
const CACHE_CAP: usize = 64;

static CACHE: OnceLock<Mutex<HashMap<u64, Arc<CachedConversion>>>> = OnceLock::new();

/// FNV-1a over the matrix's full structure and value bits.
pub fn matrix_key(a: &CsrMatrix) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    eat(a.rows() as u64);
    eat(a.cols() as u64);
    eat(a.nnz() as u64);
    for &p in a.row_ptr() {
        eat(p as u64);
    }
    for &c in a.col_idx() {
        eat(c as u64);
    }
    for &v in a.values() {
        eat(v.to_bits() as u64);
    }
    h
}

/// Returns the cached conversion for `a`, converting (and inserting) on miss.
pub fn metcf_for(a: &CsrMatrix) -> Arc<CachedConversion> {
    let key = matrix_key(a);
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().unwrap().get(&key) {
        conversion_cache_hits().incr();
        return Arc::clone(hit);
    }
    conversion_cache_misses().incr();
    // Convert outside the lock: conversion fans out over worker threads and
    // other engines' lookups should not wait on it.
    let built = Arc::new(CachedConversion {
        metcf: MeTcfMatrix::from_csr(a),
        distinct_cols: dtc_baselines::util::distinct_col_count(a),
    });
    let mut map = cache.lock().unwrap();
    if map.len() >= CACHE_CAP {
        map.clear();
    }
    map.insert(key, Arc::clone(&built));
    built
}

/// `(hits, misses)` of the process-wide conversion cache — a thin wrapper
/// over the `core.cache.conversion.*` registry counters.
pub fn conversion_cache_stats() -> (u64, u64) {
    (conversion_cache_hits().get(), conversion_cache_misses().get())
}

/// Empties the cache (counters are left running; tests diff them instead).
pub fn clear_conversion_cache() {
    if let Some(cache) = CACHE.get() {
        cache.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::uniform;

    #[test]
    fn same_matrix_hits_distinct_matrix_misses() {
        let a = uniform(128, 128, 900, 321);
        let first = metcf_for(&a);
        let (_, misses0) = conversion_cache_stats();
        let again = metcf_for(&a);
        assert!(Arc::ptr_eq(&first, &again), "expected the cached Arc back");
        let (_, misses1) = conversion_cache_stats();
        assert_eq!(misses1, misses0, "second lookup must not convert");

        let b = uniform(128, 128, 900, 322); // same shape, different structure
        let other = metcf_for(&b);
        assert!(!Arc::ptr_eq(&first, &other));
        let (_, misses2) = conversion_cache_stats();
        assert_eq!(misses2, misses1 + 1);
    }

    #[test]
    fn key_depends_on_values_not_just_shape() {
        let a = CsrMatrix::from_triplets(4, 4, &[(0, 1, 1.0), (2, 3, 2.0)]).unwrap();
        let b = CsrMatrix::from_triplets(4, 4, &[(0, 1, 1.0), (2, 3, 2.5)]).unwrap();
        assert_ne!(matrix_key(&a), matrix_key(&b));
        assert_eq!(matrix_key(&a), matrix_key(&a.clone()));
    }

    #[test]
    fn cached_conversion_matches_direct() {
        let a = uniform(200, 150, 1200, 323);
        let cached = metcf_for(&a);
        assert_eq!(cached.metcf, MeTcfMatrix::from_csr(&a));
        assert_eq!(cached.distinct_cols, dtc_baselines::util::distinct_col_count(&a));
    }
}
