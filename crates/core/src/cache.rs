//! Keyed conversion cache: repeated pipeline builds over the same matrix
//! reuse the ME-TCF conversion instead of recomputing it.
//!
//! The paper's §6 point is that conversion overhead amortizes across the
//! thousands of SpMM calls an iterative workload makes; this cache makes
//! the host-side analogue concrete. The primary key is a 64-bit FNV-1a
//! hash over the full matrix structure (shape, `row_ptr`, `col_idx`, value
//! bits) — but a bare 64-bit hash is not an identity: a collision would
//! silently return *another matrix's* conversion and corrupt every
//! downstream result. Each entry therefore stores independent key material
//! ([`KeyMaterial`]: dims, nnz, and second-hash checksums of the index and
//! value arrays) that is verified on every hit; mismatches are counted in
//! `core.cache.conversion.collisions` and fall through to a fresh
//! conversion stored alongside the colliding entry.
//!
//! Hit/miss counts live in the process-wide [`dtc_telemetry`] registry
//! (`core.cache.conversion.hits` / `.misses`) so they appear in every
//! metrics snapshot; [`conversion_cache_stats`] remains as a thin reader
//! over the registry so tests and benchmarks can observe that repeated
//! `build`/`execute` runs do not re-convert.

use crate::telemetry::{
    conversion_cache_collisions, conversion_cache_hits, conversion_cache_misses,
};
use dtc_formats::{CsrMatrix, MeTcfMatrix};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// One cached conversion: the ME-TCF build plus the distinct-column count
/// the L2 model needs (both derived from the same CSR walk).
#[derive(Debug)]
pub struct CachedConversion {
    /// The converted matrix.
    pub metcf: MeTcfMatrix,
    /// Number of distinct columns of the source matrix.
    pub distinct_cols: usize,
}

/// Matrix identity material, verified on every primary-key hit — and,
/// since the `SpmmEngine` redesign, the public identity every prepared
/// engine reports through [`crate::SpmmEngine::key`] so the serving layer
/// can key its engine pool on it.
///
/// Dims and nnz are stored outright; the three arrays are summarized by
/// FNV-1a checksums seeded differently from [`matrix_key`], so a
/// primary-key collision and a simultaneous three-checksum collision would
/// need independent 64-bit coincidences.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KeyMaterial {
    rows: usize,
    cols: usize,
    nnz: usize,
    row_ptr_sum: u64,
    col_idx_sum: u64,
    value_sum: u64,
}

/// FNV-1a over a `u64` stream, from a caller-chosen offset basis.
fn fnv1a(seed: u64, stream: impl Iterator<Item = u64>) -> u64 {
    let mut h = seed;
    for x in stream {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Chunked-parallel FNV-1a over a projected slice: fixed 64 Ki-element
/// chunks are hashed independently (fanned over the `dtc-par` workers) and
/// the per-chunk digests combined in chunk order. The chunk size is a
/// constant — never the thread count — so the digest is identical for any
/// `DTC_THREADS`. Keying a large matrix was two full serial passes before;
/// on big inputs those passes showed up in the build critical path.
fn fnv1a_slice<T: Sync>(seed: u64, data: &[T], proj: impl Fn(&T) -> u64 + Sync) -> u64 {
    const CHUNK: usize = 64 * 1024;
    if data.len() <= CHUNK {
        return fnv1a(seed, data.iter().map(&proj));
    }
    let digests = dtc_par::par_map_collect(data.len().div_ceil(CHUNK), |i| {
        let lo = i * CHUNK;
        let hi = (lo + CHUNK).min(data.len());
        fnv1a(seed, data[lo..hi].iter().map(&proj))
    });
    fnv1a(seed.rotate_left(17), digests.into_iter())
}

impl KeyMaterial {
    /// Computes the identity material of a matrix (three chunked-parallel
    /// checksum passes; digests are independent of `DTC_THREADS`).
    pub fn of(a: &CsrMatrix) -> Self {
        // Distinct offset bases decorrelate the checksums from the primary
        // key (all use the same FNV prime over the same streams).
        KeyMaterial {
            rows: a.rows(),
            cols: a.cols(),
            nnz: a.nnz(),
            row_ptr_sum: fnv1a_slice(0x6c62_272e_07bb_0142, a.row_ptr(), |&p| p as u64),
            col_idx_sum: fnv1a_slice(0xdead_beef_cafe_f00d, a.col_idx(), |&c| c as u64),
            value_sum: fnv1a_slice(0x0123_4567_89ab_cdef, a.values(), |v| v.to_bits() as u64),
        }
    }

    /// Rows of the identified matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the identified matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Structural non-zeros of the identified matrix.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// A single 64-bit digest of the full material (dims, nnz and all
    /// three checksums), for callers that bucket by one word and verify
    /// with the full `KeyMaterial` equality — the conversion cache's and
    /// the serve pool's discipline.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(
            0xa135_2969_7a6b_11c4,
            [
                self.rows as u64,
                self.cols as u64,
                self.nnz as u64,
                self.row_ptr_sum,
                self.col_idx_sum,
                self.value_sum,
            ]
            .into_iter(),
        )
    }
}

/// Bound on resident entries; reaching it clears the map (the workloads we
/// serve cycle over small dataset suites, so wholesale eviction is fine and
/// keeps the bookkeeping trivial).
const CACHE_CAP: usize = 64;

/// Each primary key holds a small bucket so verified non-matches
/// (collisions) can coexist instead of evicting each other.
type Bucket = Vec<(KeyMaterial, Arc<CachedConversion>)>;

static CACHE: OnceLock<Mutex<HashMap<u64, Bucket>>> = OnceLock::new();

/// FNV-1a over the matrix's full structure and value bits (each array
/// digested by the chunked-parallel pass, digests combined in order).
pub fn matrix_key(a: &CsrMatrix) -> u64 {
    let shape = fnv1a(
        0xcbf2_9ce4_8422_2325,
        [a.rows() as u64, a.cols() as u64, a.nnz() as u64].into_iter(),
    );
    let parts = [
        fnv1a_slice(0x84222325_cbf29ce4, a.row_ptr(), |&p| p as u64),
        fnv1a_slice(0x9ce48422_2325cbf2, a.col_idx(), |&c| c as u64),
        fnv1a_slice(0x2325cbf2_9ce48422, a.values(), |v| v.to_bits() as u64),
    ];
    fnv1a(shape, parts.into_iter())
}

/// Returns the cached conversion for `a`, converting (and inserting) on miss.
pub fn metcf_for(a: &CsrMatrix) -> Arc<CachedConversion> {
    lookup_or_convert(matrix_key(a), a)
}

/// The cache core, keyed explicitly so tests can force primary-key
/// collisions: a hit requires both the primary key *and* the stored
/// [`KeyMaterial`] to match; a key match with foreign material counts a
/// collision and converts fresh.
fn lookup_or_convert(key: u64, a: &CsrMatrix) -> Arc<CachedConversion> {
    let material = KeyMaterial::of(a);
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    {
        let map = cache.lock().unwrap();
        if let Some(bucket) = map.get(&key) {
            if let Some((_, hit)) = bucket.iter().find(|(m, _)| *m == material) {
                conversion_cache_hits().incr();
                return Arc::clone(hit);
            }
            conversion_cache_collisions().incr();
        }
    }
    conversion_cache_misses().incr();
    // Convert outside the lock: conversion fans out over worker threads and
    // other engines' lookups should not wait on it. The parallel converter
    // packs per-range sub-matrices inside the fan-out (bit-identical to
    // `MeTcfMatrix::from_csr`, pinned by the convert tests) — the plain
    // `from_csr` path condenses in parallel but packed serially, which
    // Amdahl-capped every cold engine build.
    let built = Arc::new(CachedConversion {
        metcf: crate::convert::convert_to_metcf_parallel(a, dtc_par::num_threads()),
        distinct_cols: dtc_baselines::util::distinct_col_count(a),
    });
    let mut map = cache.lock().unwrap();
    if map.len() >= CACHE_CAP {
        map.clear();
    }
    map.entry(key).or_default().push((material, Arc::clone(&built)));
    built
}

/// `(hits, misses)` of the process-wide conversion cache — a thin wrapper
/// over the `core.cache.conversion.*` registry counters.
pub fn conversion_cache_stats() -> (u64, u64) {
    (conversion_cache_hits().get(), conversion_cache_misses().get())
}

/// Empties the cache (counters are left running; tests diff them instead).
pub fn clear_conversion_cache() {
    if let Some(cache) = CACHE.get() {
        cache.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::uniform;

    #[test]
    fn same_matrix_hits_distinct_matrix_misses() {
        let a = uniform(128, 128, 900, 321);
        let first = metcf_for(&a);
        let (_, misses0) = conversion_cache_stats();
        let again = metcf_for(&a);
        assert!(Arc::ptr_eq(&first, &again), "expected the cached Arc back");
        let (_, misses1) = conversion_cache_stats();
        assert_eq!(misses1, misses0, "second lookup must not convert");

        let b = uniform(128, 128, 900, 322); // same shape, different structure
        let other = metcf_for(&b);
        assert!(!Arc::ptr_eq(&first, &other));
        let (_, misses2) = conversion_cache_stats();
        assert_eq!(misses2, misses1 + 1);
    }

    #[test]
    fn key_depends_on_values_not_just_shape() {
        let a = CsrMatrix::from_triplets(4, 4, &[(0, 1, 1.0), (2, 3, 2.0)]).unwrap();
        let b = CsrMatrix::from_triplets(4, 4, &[(0, 1, 1.0), (2, 3, 2.5)]).unwrap();
        assert_ne!(matrix_key(&a), matrix_key(&b));
        assert_eq!(matrix_key(&a), matrix_key(&a.clone()));
    }

    #[test]
    fn cached_conversion_matches_direct() {
        let a = uniform(200, 150, 1200, 323);
        let cached = metcf_for(&a);
        assert_eq!(cached.metcf, MeTcfMatrix::from_csr(&a));
        assert_eq!(cached.distinct_cols, dtc_baselines::util::distinct_col_count(&a));
    }

    #[test]
    fn crafted_collision_is_detected_not_served() {
        // Two different matrices forced onto the SAME primary key: before
        // hit verification, the second lookup silently returned the first
        // matrix's conversion. Now the material mismatch is detected,
        // counted, and both conversions coexist in the bucket.
        let a = uniform(96, 96, 500, 77);
        let b = uniform(64, 64, 300, 78);
        let forced_key = 0xC011_1DED_C011_1DED;
        let collisions_before = conversion_cache_collisions().get();
        let conv_a = lookup_or_convert(forced_key, &a);
        let conv_b = lookup_or_convert(forced_key, &b);
        assert_eq!(conv_a.metcf.rows(), 96);
        assert_eq!(conv_b.metcf.rows(), 64, "collision must not serve a's conversion");
        assert_eq!(conversion_cache_collisions().get(), collisions_before + 1);
        // Both entries now hit without further collisions or conversions.
        let (_, misses0) = conversion_cache_stats();
        assert!(Arc::ptr_eq(&conv_a, &lookup_or_convert(forced_key, &a)));
        assert!(Arc::ptr_eq(&conv_b, &lookup_or_convert(forced_key, &b)));
        let (_, misses1) = conversion_cache_stats();
        assert_eq!(misses1, misses0);
        assert_eq!(conversion_cache_collisions().get(), collisions_before + 1);
    }
}
