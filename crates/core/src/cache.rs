//! Keyed conversion cache: repeated pipeline builds over the same matrix
//! reuse the ME-TCF conversion instead of recomputing it.
//!
//! The paper's §6 point is that conversion overhead amortizes across the
//! thousands of SpMM calls an iterative workload makes; this cache makes
//! the host-side analogue concrete. Lookup is **two-tier**:
//!
//! 1. a lossy [`FrontTier`] keyed by [`KeyMaterial::fingerprint`] and
//!    verified by full [`KeyMaterial`] equality on every hit. A front hit
//!    skips [`matrix_key`] entirely — the three full-array passes the
//!    exact tier's primary key costs — so a steady-state repeated build
//!    pays only the material checksums plus one direct-mapped probe;
//! 2. the exact tier: the primary key is a 64-bit FNV-1a hash over the
//!    full matrix structure (shape, `row_ptr`, `col_idx`, value bits) —
//!    but a bare 64-bit hash is not an identity: a collision would
//!    silently return *another matrix's* conversion and corrupt every
//!    downstream result. Each entry therefore stores independent key
//!    material ([`KeyMaterial`]: dims, nnz, and second-hash checksums of
//!    the index and value arrays) that is verified on every hit;
//!    mismatches are counted in `core.cache.conversion.collisions` and
//!    fall through to a fresh conversion stored alongside the colliding
//!    entry.
//!
//! Both tiers resolve to the same `Arc`, so results are bitwise identical
//! with the front tier on, off (`dtc_par::set_front_tier_enabled`), or
//! thrashing. Front-tier traffic is counted under `cache.conversion.*`
//! (l1 hits/misses/evictions/verify rejects); total hit/miss counts live
//! in the process-wide [`dtc_telemetry`] registry
//! (`core.cache.conversion.hits` / `.misses`) and count each lookup once
//! regardless of which tier resolved it, so [`conversion_cache_stats`] —
//! the thin PR-2-era reader over the registry — needs no caller changes
//! and never double-counts.

use crate::error::DtcError;
use crate::telemetry::{
    conversion_cache_collisions, conversion_cache_hits, conversion_cache_invalidations,
    conversion_cache_misses,
};
use dtc_formats::{CsrMatrix, MeTcfMatrix, BLOCK_WIDTH, WINDOW_HEIGHT};
use dtc_par::hash::{fnv1a, fnv1a_slice, Fnv1a};
use dtc_par::FrontTier;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// One cached conversion: the ME-TCF build plus the distinct-column count
/// the L2 model needs (both derived from the same CSR walk).
#[derive(Debug)]
pub struct CachedConversion {
    /// The converted matrix.
    pub metcf: MeTcfMatrix,
    /// Number of distinct columns of the source matrix.
    pub distinct_cols: usize,
}

/// Matrix identity material, verified on every primary-key hit — and,
/// since the `SpmmEngine` redesign, the public identity every prepared
/// engine reports through [`crate::SpmmEngine::key`] so the serving layer
/// can key its engine pool on it.
///
/// Dims and nnz are stored outright; the three arrays are summarized by
/// FNV-1a checksums seeded differently from [`matrix_key`], so a
/// primary-key collision and a simultaneous three-checksum collision would
/// need independent 64-bit coincidences.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KeyMaterial {
    rows: usize,
    cols: usize,
    nnz: usize,
    row_ptr_sum: u64,
    col_idx_sum: u64,
    value_sum: u64,
}

impl KeyMaterial {
    /// Computes the identity material of a matrix (three chunked-parallel
    /// checksum passes; digests are independent of `DTC_THREADS`).
    pub fn of(a: &CsrMatrix) -> Self {
        // Distinct offset bases decorrelate the checksums from the primary
        // key (all use the same FNV prime over the same streams).
        KeyMaterial {
            rows: a.rows(),
            cols: a.cols(),
            nnz: a.nnz(),
            row_ptr_sum: fnv1a_slice(0x6c62_272e_07bb_0142, a.row_ptr(), |&p| p as u64),
            col_idx_sum: fnv1a_slice(0xdead_beef_cafe_f00d, a.col_idx(), |&c| c as u64),
            value_sum: fnv1a_slice(0x0123_4567_89ab_cdef, a.values(), |v| v.to_bits() as u64),
        }
    }

    /// Computes the identity material of an ME-TCF matrix, bit-identical
    /// to [`KeyMaterial::of`] over its reconstructed CSR form — but
    /// without the triplet sort a full [`MeTcfMatrix::to_csr`] rebuild
    /// would pay, so a matrix patched in place by `apply_delta` keys
    /// identically to a fresh conversion of the edited CSR at a fraction
    /// of the cost. Pinned by `of_metcf_matches_of_over_the_roundtripped_csr`.
    ///
    /// Small matrices (every array at or below `fnv1a_slice`'s 64 Ki
    /// chunk, where that function is a plain serial fold) hash the three
    /// CSR-order streams straight out of the per-window row buckets with
    /// nothing materialized. Larger ones materialize via
    /// [`MeTcfMatrix::csr_arrays`] and defer to [`fnv1a_slice`], whose
    /// chunked-parallel digest a streaming fold could not reproduce.
    pub fn of_metcf(m: &MeTcfMatrix) -> Self {
        const CHUNK: usize = 64 * 1024; // fnv1a_slice's serial/chunked split
        let (rows, cols, nnz) = (m.rows(), m.cols(), m.nnz());
        if rows + 1 > CHUNK || nnz > CHUNK {
            let (row_ptr, col_idx, values) = m.csr_arrays();
            return KeyMaterial {
                rows,
                cols,
                nnz,
                row_ptr_sum: fnv1a_slice(0x6c62_272e_07bb_0142, &row_ptr, |&p| p as u64),
                col_idx_sum: fnv1a_slice(0xdead_beef_cafe_f00d, &col_idx, |&c| c as u64),
                value_sum: fnv1a_slice(0x0123_4567_89ab_cdef, &values, |v| v.to_bits() as u64),
            };
        }
        let mut row_hash = Fnv1a::with_seed(0x6c62_272e_07bb_0142);
        let mut col_hash = Fnv1a::with_seed(0xdead_beef_cafe_f00d);
        let mut val_hash = Fnv1a::with_seed(0x0123_4567_89ab_cdef);
        row_hash.word(0); // row_ptr[0]
                          // Same per-window bucketing pass as `MeTcfMatrix::csr_arrays`,
                          // folded straight into the hashers instead of materialized.
        let mut buckets: [Vec<(u32, u32)>; WINDOW_HEIGHT] = Default::default();
        let mut prefix = 0u64;
        for w in 0..m.num_windows() {
            for bucket in &mut buckets {
                bucket.clear();
            }
            for t in m.window_blocks(w) {
                let bcols = m.block_cols(t);
                let (ids, vals) = m.block_entries(t);
                for (&id, &v) in ids.iter().zip(vals) {
                    let local_row = (id / BLOCK_WIDTH as u8) as usize;
                    let local_col = (id % BLOCK_WIDTH as u8) as usize;
                    buckets[local_row].push((bcols[local_col], v.to_bits()));
                }
            }
            let base = w * WINDOW_HEIGHT;
            for (local_row, bucket) in buckets.iter().enumerate() {
                if base + local_row >= rows {
                    break;
                }
                prefix += bucket.len() as u64;
                row_hash.word(prefix);
                for &(c, bits) in bucket {
                    col_hash.word(c as u64);
                    val_hash.word(bits as u64);
                }
            }
        }
        KeyMaterial {
            rows,
            cols,
            nnz,
            row_ptr_sum: row_hash.finish(),
            col_idx_sum: col_hash.finish(),
            value_sum: val_hash.finish(),
        }
    }

    /// Rows of the identified matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the identified matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Structural non-zeros of the identified matrix.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// A single 64-bit digest of the full material (dims, nnz and all
    /// three checksums), for callers that bucket by one word and verify
    /// with the full `KeyMaterial` equality — the conversion cache's and
    /// the serve pool's discipline.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(
            0xa135_2969_7a6b_11c4,
            [
                self.rows as u64,
                self.cols as u64,
                self.nnz as u64,
                self.row_ptr_sum,
                self.col_idx_sum,
                self.value_sum,
            ]
            .into_iter(),
        )
    }
}

/// Bound on resident exact-tier entries; reaching it clears both tiers
/// (the workloads we serve cycle over small dataset suites, so wholesale
/// eviction is fine and keeps the bookkeeping trivial).
const CACHE_CAP: usize = 64;

/// Front-tier slots: comfortably above [`CACHE_CAP`], so a working set the
/// exact tier retains can also be fully front-resident.
const FRONT_SLOTS: usize = 256;

/// Each primary key holds a small bucket so verified non-matches
/// (collisions) can coexist instead of evicting each other.
type Bucket = Vec<(KeyMaterial, Arc<CachedConversion>)>;

/// Both tiers under one lock: the front tier can never disagree with the
/// exact store about what is resident.
struct ConvCache {
    front: FrontTier<KeyMaterial, Arc<CachedConversion>>,
    exact: HashMap<u64, Bucket>,
}

static CACHE: OnceLock<Mutex<ConvCache>> = OnceLock::new();

fn cache() -> &'static Mutex<ConvCache> {
    CACHE.get_or_init(|| {
        Mutex::new(ConvCache {
            front: FrontTier::new("conversion", FRONT_SLOTS),
            exact: HashMap::new(),
        })
    })
}

/// FNV-1a over the matrix's full structure and value bits (each array
/// digested by the chunked-parallel pass, digests combined in order).
pub fn matrix_key(a: &CsrMatrix) -> u64 {
    let shape = fnv1a(
        0xcbf2_9ce4_8422_2325,
        [a.rows() as u64, a.cols() as u64, a.nnz() as u64].into_iter(),
    );
    let parts = [
        fnv1a_slice(0x84222325_cbf29ce4, a.row_ptr(), |&p| p as u64),
        fnv1a_slice(0x9ce48422_2325cbf2, a.col_idx(), |&c| c as u64),
        fnv1a_slice(0x2325cbf2_9ce48422, a.values(), |v| v.to_bits() as u64),
    ];
    fnv1a(shape, parts.into_iter())
}

/// Returns the cached conversion for `a`, converting (and inserting) on
/// miss. The front tier is probed first on the material fingerprint alone:
/// a verified front hit never computes [`matrix_key`] (three more full
/// passes over the matrix), which is where the steady-state 2x comes from.
///
/// # Errors
///
/// Propagates the converter's `u32` offset-overflow guard
/// ([`DtcError::Format`]); nothing is cached on error.
pub fn metcf_for(a: &CsrMatrix) -> Result<Arc<CachedConversion>, DtcError> {
    let material = KeyMaterial::of(a);
    let fp = material.fingerprint();
    if let Some(hit) = cache().lock().unwrap().front.get(fp, &material) {
        conversion_cache_hits().incr();
        return Ok(hit);
    }
    lookup_or_convert_inner(matrix_key(a), a, material, fp)
}

/// The exact-tier core, keyed explicitly so tests can force primary-key
/// collisions: a hit requires both the primary key *and* the stored
/// [`KeyMaterial`] to match; a key match with foreign material counts a
/// collision and converts fresh.
#[cfg(test)]
fn lookup_or_convert(key: u64, a: &CsrMatrix) -> Arc<CachedConversion> {
    let material = KeyMaterial::of(a);
    let fp = material.fingerprint();
    lookup_or_convert_inner(key, a, material, fp).expect("test matrices stay within u32 bounds")
}

fn lookup_or_convert_inner(
    key: u64,
    a: &CsrMatrix,
    material: KeyMaterial,
    fp: u64,
) -> Result<Arc<CachedConversion>, DtcError> {
    {
        let mut c = cache().lock().unwrap();
        if let Some(bucket) = c.exact.get(&key) {
            if let Some((_, hit)) = bucket.iter().find(|(m, _)| *m == material) {
                conversion_cache_hits().incr();
                let hit = Arc::clone(hit);
                // Refill the front slot so the next lookup is one probe.
                c.front.insert(fp, material, Arc::clone(&hit));
                return Ok(hit);
            }
            conversion_cache_collisions().incr();
        }
    }
    conversion_cache_misses().incr();
    // Convert outside the lock: conversion fans out over worker threads and
    // other engines' lookups should not wait on it. The parallel converter
    // packs per-range sub-matrices inside the fan-out (bit-identical to
    // `MeTcfMatrix::from_csr`, pinned by the convert tests) — the plain
    // `from_csr` path condenses in parallel but packed serially, which
    // Amdahl-capped every cold engine build.
    let built = Arc::new(CachedConversion {
        metcf: crate::convert::convert_to_metcf_parallel(a, dtc_par::num_threads())?,
        distinct_cols: dtc_baselines::util::distinct_col_count(a),
    });
    let mut c = cache().lock().unwrap();
    if c.exact.len() >= CACHE_CAP {
        c.exact.clear();
        c.front.clear();
    }
    c.exact.entry(key).or_default().push((material.clone(), Arc::clone(&built)));
    c.front.insert(fp, material, Arc::clone(&built));
    Ok(built)
}

/// Purges every cached conversion whose stored [`KeyMaterial`] equals
/// `material`, from both tiers, returning the number of exact-tier entries
/// removed. The front tier is purged **by key** ([`FrontTier::invalidate`]
/// drops the slot only if the resident entry verifies against `material`)
/// — purging by slot index would evict an innocent collision neighbor and,
/// worse, leave a stale entry behind if the slot had been overwritten.
///
/// This is the conversion-cache arm of the delta-update invalidation
/// contract: after [`crate::DtcSpmm::apply_delta`] mutates a matrix, a
/// lookup under the pre-edit identity must miss.
pub fn invalidate_conversion(material: &KeyMaterial) -> usize {
    let Some(cache) = CACHE.get() else {
        return 0;
    };
    let mut c = cache.lock().unwrap();
    let mut removed = 0;
    c.exact.retain(|_, bucket| {
        let before = bucket.len();
        bucket.retain(|(m, _)| m != material);
        removed += before - bucket.len();
        !bucket.is_empty()
    });
    c.front.invalidate(material.fingerprint(), material);
    if removed > 0 {
        conversion_cache_invalidations().add(removed as u64);
    }
    removed
}

/// Seeds the cache with an already-built conversion for `a` (both tiers),
/// e.g. the freshly patched ME-TCF a delta update produced. Sound because
/// ME-TCF packing is a pure function of the CSR content and the delta path
/// is bitwise-identical to a rebuild, so the seeded entry equals what a
/// cold conversion of `a` would compute.
pub fn admit_conversion(a: &CsrMatrix, conversion: Arc<CachedConversion>) {
    let material = KeyMaterial::of(a);
    let fp = material.fingerprint();
    let key = matrix_key(a);
    let mut c = cache().lock().unwrap();
    if c.exact.len() >= CACHE_CAP {
        c.exact.clear();
        c.front.clear();
    }
    let bucket = c.exact.entry(key).or_default();
    bucket.retain(|(m, _)| *m != material);
    bucket.push((material.clone(), Arc::clone(&conversion)));
    c.front.insert(fp, material, conversion);
}

/// `(hits, misses)` of the process-wide conversion cache — a thin wrapper
/// over the `core.cache.conversion.*` registry counters. Each lookup is
/// counted once whether the front or the exact tier resolved it, so this
/// legacy reader needs no tier awareness.
pub fn conversion_cache_stats() -> (u64, u64) {
    (conversion_cache_hits().get(), conversion_cache_misses().get())
}

/// Empties both tiers (counters are left running; tests diff them instead).
pub fn clear_conversion_cache() {
    if let Some(cache) = CACHE.get() {
        let mut c = cache.lock().unwrap();
        c.exact.clear();
        c.front.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::uniform;

    #[test]
    fn same_matrix_hits_distinct_matrix_misses() {
        let a = uniform(128, 128, 900, 321);
        let first = metcf_for(&a).unwrap();
        let (_, misses0) = conversion_cache_stats();
        let again = metcf_for(&a).unwrap();
        assert!(Arc::ptr_eq(&first, &again), "expected the cached Arc back");
        let (_, misses1) = conversion_cache_stats();
        assert_eq!(misses1, misses0, "second lookup must not convert");

        let b = uniform(128, 128, 900, 322); // same shape, different structure
        let other = metcf_for(&b).unwrap();
        assert!(!Arc::ptr_eq(&first, &other));
        let (_, misses2) = conversion_cache_stats();
        assert_eq!(misses2, misses1 + 1);
    }

    #[test]
    fn invalidate_purges_both_tiers_and_admit_reseeds() {
        let a = uniform(144, 144, 1000, 8181);
        let first = metcf_for(&a).unwrap();
        let material = KeyMaterial::of(&a);

        assert_eq!(invalidate_conversion(&material), 1);
        // Post-invalidation lookup must reconvert (a fresh Arc), not serve
        // the purged entry from either tier.
        let (_, misses0) = conversion_cache_stats();
        let again = metcf_for(&a).unwrap();
        assert!(!Arc::ptr_eq(&first, &again), "invalidated entry must not be served");
        let (_, misses1) = conversion_cache_stats();
        assert_eq!(misses1, misses0 + 1);

        // Invalidating a non-resident identity is a no-op.
        assert_eq!(invalidate_conversion(&KeyMaterial::of(&uniform(32, 32, 60, 9))), 0);

        // Seeding an externally built conversion makes the next lookup hit
        // without converting.
        invalidate_conversion(&material);
        let seeded = Arc::new(CachedConversion {
            metcf: MeTcfMatrix::from_csr(&a),
            distinct_cols: dtc_baselines::util::distinct_col_count(&a),
        });
        admit_conversion(&a, Arc::clone(&seeded));
        let (_, misses2) = conversion_cache_stats();
        let hit = metcf_for(&a).unwrap();
        assert!(Arc::ptr_eq(&hit, &seeded), "admitted conversion must be served");
        assert_eq!(conversion_cache_stats().1, misses2, "admitted entry must not reconvert");
    }

    #[test]
    fn of_metcf_matches_of_over_the_roundtripped_csr() {
        // The delta path keys a patched ME-TCF with `of_metcf` while every
        // other consumer keys the CSR with `of`; the two must agree bit
        // for bit or a post-edit lookup could serve a pre-edit artifact.
        // The last case crosses fnv1a_slice's 64 Ki chunk boundary, so it
        // exercises the materializing fallback, not the streaming fold.
        for (rows, cols, nnz, seed) in [
            (16, 16, 0, 1u64),
            (33, 40, 90, 2),
            (256, 256, 2000, 3),
            (100, 700, 4000, 4),
            (1200, 800, 70_000, 5),
        ] {
            let a = if nnz == 0 {
                CsrMatrix::from_triplets(rows, cols, &[]).unwrap()
            } else {
                uniform(rows, cols, nnz, seed)
            };
            let m = MeTcfMatrix::from_csr(&a);
            assert_eq!(KeyMaterial::of_metcf(&m), KeyMaterial::of(&a), "seed {seed}");
        }
    }

    #[test]
    fn key_depends_on_values_not_just_shape() {
        let a = CsrMatrix::from_triplets(4, 4, &[(0, 1, 1.0), (2, 3, 2.0)]).unwrap();
        let b = CsrMatrix::from_triplets(4, 4, &[(0, 1, 1.0), (2, 3, 2.5)]).unwrap();
        assert_ne!(matrix_key(&a), matrix_key(&b));
        assert_eq!(matrix_key(&a), matrix_key(&a.clone()));
    }

    #[test]
    fn cached_conversion_matches_direct() {
        let a = uniform(200, 150, 1200, 323);
        let cached = metcf_for(&a).unwrap();
        assert_eq!(cached.metcf, MeTcfMatrix::from_csr(&a));
        assert_eq!(cached.distinct_cols, dtc_baselines::util::distinct_col_count(&a));
    }

    #[test]
    fn crafted_collision_is_detected_not_served() {
        // Two different matrices forced onto the SAME primary key: before
        // hit verification, the second lookup silently returned the first
        // matrix's conversion. Now the material mismatch is detected,
        // counted, and both conversions coexist in the bucket.
        let a = uniform(96, 96, 500, 77);
        let b = uniform(64, 64, 300, 78);
        let forced_key = 0xC011_1DED_C011_1DED;
        let collisions_before = conversion_cache_collisions().get();
        let conv_a = lookup_or_convert(forced_key, &a);
        let conv_b = lookup_or_convert(forced_key, &b);
        assert_eq!(conv_a.metcf.rows(), 96);
        assert_eq!(conv_b.metcf.rows(), 64, "collision must not serve a's conversion");
        assert_eq!(conversion_cache_collisions().get(), collisions_before + 1);
        // Both entries now hit without further collisions or conversions.
        let (_, misses0) = conversion_cache_stats();
        assert!(Arc::ptr_eq(&conv_a, &lookup_or_convert(forced_key, &a)));
        assert!(Arc::ptr_eq(&conv_b, &lookup_or_convert(forced_key, &b)));
        let (_, misses1) = conversion_cache_stats();
        assert_eq!(misses1, misses0);
        assert_eq!(conversion_cache_collisions().get(), collisions_before + 1);
    }

    #[test]
    fn front_tier_resolves_repeats_to_the_same_arc() {
        // Second lookup must resolve in the front tier — observable via the
        // l1 hit counter — and hand back the exact tier's Arc (bitwise
        // identity is Arc identity here).
        let a = uniform(112, 112, 800, 4242);
        let first = metcf_for(&a).unwrap();
        let l1_hits = dtc_telemetry::counter("cache.conversion.l1_hits");
        let before = l1_hits.get();
        let again = metcf_for(&a).unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        assert!(l1_hits.get() > before, "repeat lookup must hit the front tier");
    }

    #[test]
    fn exact_only_mode_is_bitwise_identical() {
        // The same lookups with the front tier disabled must resolve to
        // the very same cached conversion (Arc identity), at 1 and 4
        // worker threads (checksums are DTC_THREADS-invariant).
        let a = uniform(104, 104, 700, 5150);
        for threads in [1usize, 4] {
            dtc_par::set_threads(Some(threads));
            let two_tier = metcf_for(&a).unwrap();
            dtc_par::set_front_tier_enabled(false);
            let exact_only = metcf_for(&a).unwrap();
            dtc_par::set_front_tier_enabled(true);
            assert!(
                Arc::ptr_eq(&two_tier, &exact_only),
                "exact-only and two-tier lookups must agree (threads={threads})"
            );
        }
        dtc_par::set_threads(None);
    }
}
