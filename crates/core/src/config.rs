//! The shared engine configuration both builders wrap.
//!
//! [`crate::DtcSpmmBuilder`] and [`crate::IterativeSpmmBuilder`] used to
//! carry duplicated `device`/`precision`/`reorder` fields (and the pipeline
//! builder additionally `opts`/`selector`/`force`). [`EngineConfig`] is the
//! single struct holding every *hashable* knob, so the serving layer can
//! fold a tenant's configuration into its pool key with
//! [`EngineConfig::fingerprint`]: two tenants asking for the same matrix
//! under different precisions or kernel options must get different pooled
//! engines. Non-hashable parts (the boxed reorder algorithm, the boxed
//! comparator baseline) stay on the individual builders.

use crate::kernel::KernelOpts;
use crate::selector::{KernelChoice, Selector};
use dtc_formats::Precision;
use dtc_par::hash::fnv1a;
use dtc_sim::Device;

/// Every hashable knob of an engine build, shared by the pipeline and
/// session builders and hashed into serving-layer pool keys.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Target device for the Selector's makespan model and simulation.
    pub device: Device,
    /// Tensor-Core input precision.
    pub precision: Precision,
    /// Whether the offline TCU-Cache-Aware reordering step runs.
    pub reorder: bool,
    /// Runtime-kernel optimization flags (SMB/IP/SDB/VFD).
    pub opts: KernelOpts,
    /// Selector configuration (AR threshold, modeled occupancy).
    pub selector: Selector,
    /// Fixed kernel choice bypassing the Selector, if any.
    pub force: Option<KernelChoice>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            device: Device::rtx4090(),
            precision: Precision::Tf32,
            reorder: false,
            opts: KernelOpts::all(),
            selector: Selector::default(),
            force: None,
        }
    }
}

impl EngineConfig {
    /// A structural 64-bit fingerprint over every field: any knob change
    /// moves the digest, so a pool keyed on it never serves one tenant an
    /// engine built under another tenant's configuration.
    pub fn fingerprint(&self) -> u64 {
        let precision = match self.precision {
            Precision::Tf32 => 1u64,
            Precision::Fp16 => 2,
            Precision::Bf16 => 3,
        };
        let opts = (self.opts.smb as u64)
            | (self.opts.ip as u64) << 1
            | (self.opts.sdb as u64) << 2
            | (self.opts.vfd as u64) << 3;
        let force = match self.force {
            None => 0u64,
            Some(KernelChoice::Base) => 1,
            Some(KernelChoice::Balanced) => 2,
        };
        fnv1a(
            0x9e37_79b9_7f4a_7c15,
            [
                self.device.fingerprint(),
                precision,
                self.reorder as u64,
                opts,
                self.selector.threshold.to_bits(),
                self.selector.occupancy as u64,
                force,
            ]
            .into_iter(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_moves_with_every_knob() {
        let base = EngineConfig::default();
        assert_eq!(base.fingerprint(), base.clone().fingerprint());

        let c = EngineConfig { precision: Precision::Fp16, ..EngineConfig::default() };
        assert_ne!(c.fingerprint(), base.fingerprint());

        let c = EngineConfig { reorder: true, ..EngineConfig::default() };
        assert_ne!(c.fingerprint(), base.fingerprint());

        let mut c = EngineConfig::default();
        c.opts.sdb = false;
        assert_ne!(c.fingerprint(), base.fingerprint());

        let mut c = EngineConfig::default();
        c.selector.threshold = 1.5;
        assert_ne!(c.fingerprint(), base.fingerprint());

        let c = EngineConfig { force: Some(KernelChoice::Balanced), ..EngineConfig::default() };
        assert_ne!(c.fingerprint(), base.fingerprint());

        let c = EngineConfig { device: Device::rtx3090(), ..EngineConfig::default() };
        assert_ne!(c.fingerprint(), base.fingerprint());
    }
}
