//! Format conversion: CSR → ME-TCF, parallelized across row windows, with
//! the overhead accounting of §6.
//!
//! The paper accelerates conversion with GPU kernels (101× / 72× faster
//! than TC-GNN's CPU converter); here the analogous parallelism comes from
//! scoped threads over independent row windows, and
//! [`simulated_gpu_conversion_ms`] models what the GPU kernels would cost
//! so that the §6 overhead ratios can be reproduced.

use crate::error::DtcError;
use dtc_formats::{Condensed, CsrMatrix, FormatError, MeTcfMatrix, WINDOW_HEIGHT};
use std::time::{Duration, Instant};

/// Result of a timed conversion.
#[derive(Debug, Clone)]
pub struct ConversionReport {
    /// The converted matrix.
    pub metcf: MeTcfMatrix,
    /// Wall-clock CPU time of this conversion.
    pub cpu_time: Duration,
    /// Modeled GPU-kernel conversion time on the given device, in ms.
    pub simulated_gpu_ms: f64,
}

/// Converts CSR to ME-TCF using `threads` worker threads over row windows.
///
/// Window condensing is embarrassingly parallel (each 16-row window is
/// independent), and array packing runs inside the same parallel map (per
/// contiguous nnz-weighted window range); only the final offset re-basing
/// concatenation is sequential.
///
/// # Example
///
/// ```
/// use dtc_core::convert::convert_to_metcf_parallel;
/// use dtc_formats::{gen, MeTcfMatrix};
///
/// let a = gen::uniform(512, 512, 4096, 9);
/// let parallel = convert_to_metcf_parallel(&a, 4).unwrap();
/// assert_eq!(parallel, MeTcfMatrix::from_csr(&a)); // identical result
/// ```
///
/// # Errors
///
/// Returns [`DtcError::Format`] ([`FormatError::IndexOverflow`]) when the
/// matrix's non-zero or TC-block count exceeds ME-TCF's `u32` offset range
/// — the packed arrays would silently wrap otherwise.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn convert_to_metcf_parallel(a: &CsrMatrix, threads: usize) -> Result<MeTcfMatrix, DtcError> {
    assert!(threads > 0, "need at least one thread");
    // Every TC block holds at least one non-zero, so blocks <= nnz and one
    // upfront bound on nnz also bounds the block count: past it the `u32`
    // offset arrays (and the merge re-basing below) would wrap.
    guard_metcf_bounds(a.nnz())?;
    let num_windows = a.rows().div_ceil(WINDOW_HEIGHT);
    if threads == 1 || num_windows < threads * 4 {
        return Ok(MeTcfMatrix::from_csr(a));
    }
    // Partition windows into contiguous row ranges at nnz-weighted cut
    // points (a window's condense+pack cost tracks its non-zeros, so a few
    // dense windows no longer pin the whole conversion on one worker), then
    // condense AND pack each range as an independent sub-matrix in the
    // parallel map — packing used to run serially in the merge, which
    // Amdahl-capped the conversion speedup. The merge below only re-bases
    // and concatenates the packed arrays.
    let row_ptr = a.row_ptr();
    let window_weights: Vec<u64> = (0..num_windows)
        .map(|w| {
            let lo = w * WINDOW_HEIGHT;
            let hi = ((w + 1) * WINDOW_HEIGHT).min(a.rows());
            (row_ptr[hi] - row_ptr[lo]) as u64
        })
        .collect();
    let window_plan = dtc_par::ShardPlan::weighted(threads, &window_weights);
    let chunks: Vec<(usize, usize)> = window_plan
        .chunk_ranges()
        .iter()
        .map(|&(ws, we)| (ws * WINDOW_HEIGHT, (we * WINDOW_HEIGHT).min(a.rows())))
        .collect();
    if chunks.len() <= 1 {
        return Ok(MeTcfMatrix::from_csr(a));
    }
    let chunk_weights: Vec<u64> =
        chunks.iter().map(|&(lo, hi)| (row_ptr[hi] - row_ptr[lo]) as u64).collect();
    let partials: Vec<MeTcfMatrix> = dtc_par::par_map_collect_weighted(&chunk_weights, |i| {
        let (lo, hi) = chunks[i];
        MeTcfMatrix::from_condensed(&Condensed::from_csr(&a.sub_rows(lo..hi)))
    });

    // Merge: re-base window/block offsets and concatenate the arrays.
    merge_packed(a, &chunks, partials)
}

/// Rejects counts the ME-TCF `u32` offset arrays cannot address. Checked
/// once per conversion (blocks <= nnz, so the non-zero count bounds both).
fn guard_metcf_bounds(nnz: usize) -> Result<(), DtcError> {
    if nnz > u32::MAX as usize {
        return Err(DtcError::Format(FormatError::IndexOverflow { what: "nnz", count: nnz }));
    }
    Ok(())
}

fn merge_packed(
    a: &CsrMatrix,
    chunks: &[(usize, usize)],
    partials: Vec<MeTcfMatrix>,
) -> Result<MeTcfMatrix, DtcError> {
    let total_windows: usize = partials.iter().map(MeTcfMatrix::num_windows).sum();
    let total_blocks: usize = partials.iter().map(MeTcfMatrix::num_tc_blocks).sum();
    let mut row_window_offset: Vec<u32> = Vec::with_capacity(total_windows + 1);
    let mut tc_offset: Vec<u32> = Vec::with_capacity(total_blocks + 1);
    let mut tc_local_id: Vec<u8> = Vec::with_capacity(a.nnz());
    let mut sparse_a_to_b: Vec<u32> = Vec::with_capacity(total_blocks * 8);
    let mut values: Vec<f32> = Vec::with_capacity(a.nnz());
    row_window_offset.push(0);
    tc_offset.push(0);
    for (m, &(lo, hi)) in partials.iter().zip(chunks) {
        debug_assert_eq!(m.rows(), hi - lo);
        // Checked re-basing: these used to be bare `as u32` casts that
        // silently wrapped past 2^32 accumulated non-zeros or blocks,
        // corrupting every offset of the remaining chunks.
        let nnz_base = u32::try_from(tc_local_id.len()).map_err(|_| {
            DtcError::Format(FormatError::IndexOverflow { what: "nnz", count: tc_local_id.len() })
        })?;
        let block_base = u32::try_from(tc_offset.len() - 1).map_err(|_| {
            DtcError::Format(FormatError::IndexOverflow {
                what: "tc blocks",
                count: tc_offset.len() - 1,
            })
        })?;
        for &o in &m.row_window_offset()[1..] {
            row_window_offset.push(o + block_base);
        }
        for &o in &m.tc_offset()[1..] {
            tc_offset.push(o + nnz_base);
        }
        tc_local_id.extend_from_slice(m.tc_local_id());
        sparse_a_to_b.extend_from_slice(m.sparse_a_to_b());
        values.extend_from_slice(m.values());
    }
    Ok(MeTcfMatrix::from_raw_parts(
        a.rows(),
        a.cols(),
        row_window_offset,
        tc_offset,
        tc_local_id,
        sparse_a_to_b,
        values,
    ))
}

/// Timed parallel conversion with the §6 overhead model attached.
///
/// # Errors
///
/// Propagates [`convert_to_metcf_parallel`]'s overflow guard.
pub fn convert_with_report(
    a: &CsrMatrix,
    threads: usize,
    device: &dtc_sim::Device,
) -> Result<ConversionReport, DtcError> {
    let start = Instant::now();
    let metcf = convert_to_metcf_parallel(a, threads)?;
    let cpu_time = start.elapsed();
    Ok(ConversionReport {
        simulated_gpu_ms: simulated_gpu_conversion_ms(a, device),
        cpu_time,
        metcf,
    })
}

/// Models the GPU-accelerated conversion kernels of §6.
///
/// Conversion segment-sorts and deduplicates each window's column indices
/// (multiple passes over the edge list with atomics), builds the
/// compressed column mapping, and packs four arrays — ~5200 warp-ALU
/// operations per non-zero plus a per-window constant, spread over all
/// SMs. Calibrated so the conversion/SpMM ratios land near the paper's §6
/// numbers (1.48x of one SpMM on YeastH, 14.5x on protein).
pub fn simulated_gpu_conversion_ms(a: &CsrMatrix, device: &dtc_sim::Device) -> f64 {
    simulated_gpu_conversion_ms_for(a.rows(), a.nnz(), device)
}

/// Shape-only variant of [`simulated_gpu_conversion_ms`] for callers that
/// no longer hold the CSR matrix.
pub fn simulated_gpu_conversion_ms_for(rows: usize, nnz: usize, device: &dtc_sim::Device) -> f64 {
    let windows = rows.div_ceil(WINDOW_HEIGHT) as f64;
    let warp_ops = nnz as f64 * 5200.0 / 32.0 + windows * 1200.0;
    let cycles = warp_ops / (device.alu_ops_per_cycle * device.num_sms as f64);
    // Plus re-reading the edge list per pass and writing the arrays out.
    let bytes = nnz as f64 * 220.0;
    let mem_cycles = bytes / device.dram_bytes_per_cycle();
    (cycles + mem_cycles) / (device.sm_clock_ghz * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::{power_law, uniform};

    #[test]
    fn parallel_matches_sequential() {
        let a = power_law(500, 500, 8.0, 2.1, 91);
        let seq = MeTcfMatrix::from_csr(&a);
        for threads in [2, 3, 7] {
            let par = convert_to_metcf_parallel(&a, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_handles_row_counts_not_divisible_by_window() {
        let a = uniform(497, 300, 3000, 92);
        let seq = MeTcfMatrix::from_csr(&a);
        let par = convert_to_metcf_parallel(&a, 4).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn report_contains_positive_times() {
        let a = uniform(200, 200, 1500, 93);
        let r = convert_with_report(&a, 2, &dtc_sim::Device::rtx4090()).unwrap();
        assert!(r.simulated_gpu_ms > 0.0);
        assert_eq!(r.metcf.nnz(), a.nnz());
    }

    #[test]
    fn offset_guard_rejects_counts_past_u32() {
        // A 2^32-non-zero matrix cannot be materialized in a test, so pin
        // the guard itself: the first unrepresentable count must error as
        // `DtcError::Format(FormatError::IndexOverflow)`, and the largest
        // representable one must pass.
        assert!(guard_metcf_bounds(u32::MAX as usize).is_ok());
        let err = guard_metcf_bounds(u32::MAX as usize + 1).unwrap_err();
        match err {
            DtcError::Format(FormatError::IndexOverflow { what, count }) => {
                assert_eq!(what, "nnz");
                assert_eq!(count, u32::MAX as usize + 1);
            }
            other => panic!("expected IndexOverflow, got {other:?}"),
        }
    }

    #[test]
    fn gpu_model_scales_with_nnz() {
        let d = dtc_sim::Device::rtx4090();
        let small = simulated_gpu_conversion_ms(&uniform(100, 100, 500, 94), &d);
        let large = simulated_gpu_conversion_ms(&uniform(100, 100, 5000, 94), &d);
        assert!(large > small * 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = convert_to_metcf_parallel(&uniform(10, 10, 10, 95), 0);
    }
}
