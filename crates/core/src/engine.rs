//! The unified, object-safe engine trait every SpMM front end shares.
//!
//! [`SpmmKernel`](dtc_baselines::SpmmKernel) is the *kernel*-level surface:
//! exact execution plus a lowering to a simulator trace, with format-level
//! errors. [`SpmmEngine`] is the *engine*-level surface the serving layer
//! (`dtc-serve`) pools behind one front door:
//!
//! - **prepare once** — all one-time costs (reordering, ME-TCF conversion,
//!   Selector simulation, baseline format builds) are paid in [`prepare`]
//!   (or the concrete builders); the trait itself only exposes the
//!   prepared, repeatable operations;
//! - [`SpmmEngine::execute`] — exact SpMM returning the unified
//!   [`DtcError`];
//! - [`SpmmEngine::key`] — the [`KeyMaterial`] identity of the *source*
//!   matrix, so pools can recognize "same matrix" across tenants without
//!   holding the matrix itself;
//! - [`SpmmEngine::simulate`] — the simulated-GPU performance estimate.
//!
//! The trait is object-safe: tenants hold `Box<dyn SpmmEngine>` /
//! `Arc<dyn SpmmEngine>` regardless of whether the engine is the DTC
//! pipeline ([`DtcSpmm`]), an iterative session ([`IterativeSpmm`]), or a
//! boxed baseline ([`BaselineEngine`]).

use crate::cache::KeyMaterial;
use crate::config::EngineConfig;
use crate::error::DtcError;
use crate::{DtcSpmm, IterativeSpmm};
use dtc_baselines::SpmmKernel;
use dtc_formats::{CsrMatrix, DenseMatrix};
use dtc_sim::{Device, KernelTrace, SimOptions, SimReport};

/// A prepared SpMM engine: repeatable execution, identity, and simulation.
///
/// Implementations are `Send + Sync` so a serving pool can share one
/// prepared engine across request threads.
pub trait SpmmEngine: Send + Sync {
    /// Display name (kernel family plus any variant suffix).
    fn name(&self) -> &str;

    /// Rows of the sparse operand (rows of every output).
    fn rows(&self) -> usize;

    /// Columns of the sparse operand (rows of every dense operand).
    fn cols(&self) -> usize;

    /// Structural non-zeros of the sparse operand.
    fn nnz(&self) -> usize;

    /// Identity of the *source* matrix this engine was prepared from
    /// (pre-reordering), so "same matrix" is recognizable across engines.
    fn key(&self) -> &KeyMaterial;

    /// Exact SpMM `C = A × B` with the prepared engine.
    ///
    /// # Errors
    ///
    /// [`DtcError::Format`] on dimension mismatches.
    fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, DtcError>;

    /// Lowers the prepared engine to a per-thread-block performance trace
    /// (the input to simulation and to the dtc-verify request gate).
    fn trace(&self, n: usize, device: &Device, record_b_addrs: bool) -> KernelTrace;

    /// Simulated performance for an `N`-column dense operand.
    fn simulate(&self, n: usize, device: &Device) -> SimReport {
        dtc_sim::simulate(device, &self.trace(n, device, false), &SimOptions::default())
    }
}

/// Which engine family [`prepare`] builds behind the trait.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The full DTC-SpMM pipeline ([`DtcSpmm`]).
    Dtc,
    /// An iterative session over the DTC pipeline ([`IterativeSpmm`]).
    Iterative,
    /// The conversion-free cuSPARSE baseline, boxed.
    Cusparse,
    /// The Sputnik CUDA-core baseline, boxed.
    Sputnik,
    /// The TCGNN tensor-core baseline, boxed.
    Tcgnn,
}

impl EngineKind {
    /// Stable label for reports and telemetry.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Dtc => "dtc",
            EngineKind::Iterative => "iterative",
            EngineKind::Cusparse => "cusparse",
            EngineKind::Sputnik => "sputnik",
            EngineKind::Tcgnn => "tcgnn",
        }
    }
}

/// Prepares an engine of the requested family: pays every one-time cost
/// (reorder, conversion, selection, baseline format build) now and returns
/// the boxed prepared engine. This is the single front door `dtc-serve`
/// builds pool entries through.
///
/// # Errors
///
/// Propagates baseline construction failures (e.g. TCGNN's square-matrix
/// restriction) as [`DtcError::Format`].
pub fn prepare(
    kind: EngineKind,
    config: &EngineConfig,
    a: &CsrMatrix,
) -> Result<Box<dyn SpmmEngine>, DtcError> {
    Ok(match kind {
        EngineKind::Dtc => Box::new(DtcSpmm::builder().config(config.clone()).try_build(a)?),
        EngineKind::Iterative => Box::new(IterativeSpmm::builder().config(config.clone()).build(a)),
        EngineKind::Cusparse => {
            Box::new(BaselineEngine::new(Box::new(dtc_baselines::CusparseSpmm::new(a)), a))
        }
        EngineKind::Sputnik => {
            Box::new(BaselineEngine::new(Box::new(dtc_baselines::SputnikSpmm::new(a)?), a))
        }
        EngineKind::Tcgnn => {
            Box::new(BaselineEngine::new(Box::new(dtc_baselines::TcgnnSpmm::new(a)?), a))
        }
    })
}

/// Adapter giving any boxed [`SpmmKernel`] the engine-level surface: it
/// carries the source matrix's [`KeyMaterial`] and maps errors into
/// [`DtcError`], so baselines go through the same pool front door as the
/// DTC pipeline.
pub struct BaselineEngine {
    kernel: Box<dyn SpmmKernel + Send + Sync>,
    key: KeyMaterial,
}

impl std::fmt::Debug for BaselineEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineEngine")
            .field("kernel", &self.kernel.name().to_string())
            .field("key", &self.key)
            .finish()
    }
}

impl BaselineEngine {
    /// Wraps a prepared kernel, recording the identity of `a` (the matrix
    /// the kernel was built from).
    pub fn new(kernel: Box<dyn SpmmKernel + Send + Sync>, a: &CsrMatrix) -> Self {
        BaselineEngine { kernel, key: KeyMaterial::of(a) }
    }
}

impl SpmmEngine for BaselineEngine {
    fn name(&self) -> &str {
        self.kernel.name()
    }

    fn rows(&self) -> usize {
        self.kernel.rows()
    }

    fn cols(&self) -> usize {
        self.kernel.cols()
    }

    fn nnz(&self) -> usize {
        self.kernel.nnz()
    }

    fn key(&self) -> &KeyMaterial {
        &self.key
    }

    fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, DtcError> {
        self.kernel.execute(b).map_err(DtcError::from)
    }

    fn trace(&self, n: usize, device: &Device, record_b_addrs: bool) -> KernelTrace {
        self.kernel.trace(n, device, record_b_addrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::{power_law, uniform};

    /// The trait must stay object-safe: this is the serving layer's whole
    /// premise.
    #[test]
    fn trait_is_object_safe_across_all_three_families() {
        let a = power_law(128, 128, 6.0, 2.2, 9);
        let config = EngineConfig::default();
        let engines: Vec<Box<dyn SpmmEngine>> = vec![
            prepare(EngineKind::Dtc, &config, &a).unwrap(),
            prepare(EngineKind::Iterative, &config, &a).unwrap(),
            prepare(EngineKind::Cusparse, &config, &a).unwrap(),
            prepare(EngineKind::Tcgnn, &config, &a).unwrap(),
        ];
        let b = DenseMatrix::ones(128, 8);
        let want_key = KeyMaterial::of(&a);
        for e in &engines {
            assert_eq!(e.rows(), 128, "{}", e.name());
            assert_eq!(*e.key(), want_key, "{}", e.name());
            let c = e.execute(&b).unwrap();
            assert_eq!(c.rows(), 128);
            let r = e.simulate(8, &config.device);
            assert!(r.time_ms > 0.0, "{}", e.name());
        }
    }

    #[test]
    fn key_is_of_the_source_matrix_even_under_reordering() {
        let a = power_law(256, 256, 8.0, 2.2, 10);
        let config = EngineConfig { reorder: true, ..EngineConfig::default() };
        let e = prepare(EngineKind::Dtc, &config, &a).unwrap();
        assert_eq!(*e.key(), KeyMaterial::of(&a));
    }

    #[test]
    fn prepare_propagates_baseline_restrictions() {
        // TCGNN refuses non-square matrices; the front door must surface
        // that as DtcError::Format, not panic.
        let a = uniform(64, 32, 128, 11);
        match prepare(EngineKind::Tcgnn, &EngineConfig::default(), &a) {
            Err(DtcError::Format(_)) => {}
            Err(other) => panic!("expected DtcError::Format, got {other:?}"),
            Ok(_) => panic!("non-square TCGNN prepare must fail"),
        }
    }

    #[test]
    fn engine_results_match_direct_kernel_bitwise() {
        let a = power_law(192, 192, 7.0, 2.1, 12);
        let b = DenseMatrix::from_fn(192, 16, |r, c| ((r * 13 + c * 5) % 23) as f32 * 0.125 - 1.0);
        let direct = DtcSpmm::new(&a);
        let via_trait = prepare(EngineKind::Dtc, &EngineConfig::default(), &a).unwrap();
        let want = SpmmKernel::execute(&direct, &b).unwrap();
        let got = via_trait.execute(&b).unwrap();
        assert_eq!(want, got, "trait path must be bitwise-identical");
    }
}
