//! The unified workspace error type.
//!
//! Before the serving-layer redesign every fallible engine surface returned
//! the formats crate's [`FormatError`] directly. That worked while the only
//! failures were shape/format problems, but a request-oriented front end
//! fails in ways no format can express: admission queues overflow, engine
//! pools run out of evictable slots, and per-request verification gates
//! reject traces. [`DtcError`] is the single error the engine-level API
//! ([`crate::SpmmEngine`], [`crate::IterativeSpmm`], `dtc-serve`) speaks;
//! format problems arrive via `From<FormatError>` so `?` keeps working.

use dtc_formats::FormatError;
use std::fmt;

/// Unified error for engine-level operations (pipeline, sessions, serving).
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard arm
/// so future serving-layer failure modes are not breaking changes.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum DtcError {
    /// A format/shape error from the underlying kernel or conversion.
    Format(FormatError),
    /// A request was rejected at admission (queue full, malformed request,
    /// or tenant over its limit).
    Admission {
        /// Human-readable rejection reason.
        reason: String,
    },
    /// The engine pool had no evictable slot for a new engine: every
    /// resident engine is still inside its warmup pin.
    PoolExhausted {
        /// Configured pool capacity.
        capacity: usize,
    },
    /// The per-request verification gate (dtc-verify lint replay) found an
    /// error-severity diagnostic in the engine's lowered trace.
    Verify {
        /// Kernel whose trace failed the gate.
        kernel: String,
        /// First error-severity diagnostic, pre-rendered.
        diagnostic: String,
        /// Total error-severity diagnostics found.
        errors: usize,
    },
}

impl fmt::Display for DtcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtcError::Format(e) => write!(f, "{e}"),
            DtcError::Admission { reason } => write!(f, "request rejected at admission: {reason}"),
            DtcError::PoolExhausted { capacity } => {
                write!(f, "engine pool exhausted: all {capacity} slots pinned by warmup")
            }
            DtcError::Verify { kernel, diagnostic, errors } => {
                write!(f, "verification gate rejected {kernel}: {diagnostic} ({errors} error(s))")
            }
        }
    }
}

impl std::error::Error for DtcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DtcError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FormatError> for DtcError {
    fn from(e: FormatError) -> Self {
        DtcError::Format(e)
    }
}

/// The error type `DtcSpmm::execute` and `IterativeSpmm::execute` returned
/// before the `SpmmEngine` redesign.
#[deprecated(
    since = "0.2.0",
    note = "pipeline and session APIs now return `DtcError`; \
            match on `DtcError::Format` for the old cases"
)]
pub type EngineError = FormatError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_errors_convert_and_chain() {
        let src = FormatError::DimensionMismatch { op: "spmm", lhs: (4, 4), rhs: (5, 8) };
        let e: DtcError = src.clone().into();
        assert_eq!(e, DtcError::Format(src.clone()));
        assert_eq!(e.to_string(), src.to_string());
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn display_names_the_failure_mode() {
        let a = DtcError::Admission { reason: "queue full".into() };
        assert!(a.to_string().contains("admission"));
        let p = DtcError::PoolExhausted { capacity: 4 };
        assert!(p.to_string().contains("4"));
        let v = DtcError::Verify {
            kernel: "DTC-SpMM".into(),
            diagnostic: "smem-overflow at tb 3".into(),
            errors: 2,
        };
        assert!(v.to_string().contains("DTC-SpMM"));
        assert!(v.to_string().contains("2 error(s)"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DtcError>();
    }
}
