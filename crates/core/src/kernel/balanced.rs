//! The strict-balance DTC-SpMM kernel (§4.5.1): thread blocks own
//! fixed-size groups of TC blocks drawn from *any* row window, trading
//! atomic-accumulation overhead for a perfectly even workload.

use super::base::{DtcKernel, DTC_OCCUPANCY, DTC_WARPS};
use super::{execute_metcf, KernelOpts};
use dtc_baselines::util::{
    check_spmm_dims, estimate_b_hit_rate, push_b_row_sectors, sectors_per_b_row,
};
use dtc_baselines::SpmmKernel;
use dtc_formats::{CsrMatrix, DenseMatrix, FormatError, MeTcfMatrix, Precision};
use dtc_sim::occupancy::KernelResources;
use dtc_sim::{Device, KernelTrace, TbWork};

/// TC blocks assigned to each thread block ("32 in our implementation").
pub const BLOCKS_PER_TB: usize = 32;

/// The balanced DTC-SpMM runtime kernel.
///
/// # Example
///
/// ```
/// use dtc_core::{BalancedDtcKernel, DtcKernel, SpmmKernel};
/// use dtc_formats::{gen, stats::gini};
/// use dtc_sim::Device;
///
/// let a = gen::long_row(2048, 2048, 150.0, 1.5, 2); // skewed windows
/// let device = Device::rtx4090();
/// let busy_gini = |r: &dtc_sim::SimReport| {
///     gini(&r.sm_busy_cycles().iter().map(|&c| c as usize).collect::<Vec<_>>())
/// };
/// let base = busy_gini(&DtcKernel::new(&a).simulate(64, &device));
/// let balanced = busy_gini(&BalancedDtcKernel::new(&a).simulate(64, &device));
/// // Strict balance evens out the per-SM busy times.
/// assert!(balanced < base);
/// ```
#[derive(Debug, Clone)]
pub struct BalancedDtcKernel {
    inner: DtcKernel,
    blocks_per_tb: usize,
}

impl BalancedDtcKernel {
    /// Converts the matrix to ME-TCF and prepares the balanced kernel.
    pub fn new(a: &CsrMatrix) -> Self {
        Self::with_opts(a, KernelOpts::all())
    }

    /// Prepares the balanced kernel with explicit optimizations.
    pub fn with_opts(a: &CsrMatrix, opts: KernelOpts) -> Self {
        BalancedDtcKernel { inner: DtcKernel::with_opts(a, opts), blocks_per_tb: BLOCKS_PER_TB }
    }

    /// Wraps an existing ME-TCF matrix (shared conversion).
    pub fn from_metcf(metcf: MeTcfMatrix, distinct_cols: usize, opts: KernelOpts) -> Self {
        BalancedDtcKernel {
            inner: DtcKernel::from_metcf(metcf, distinct_cols, opts),
            blocks_per_tb: BLOCKS_PER_TB,
        }
    }

    /// Overrides the TC-block group size per thread block (design-choice
    /// ablation; the paper fixes 32).
    ///
    /// # Panics
    ///
    /// Panics if `blocks_per_tb` is zero.
    pub fn with_blocks_per_tb(mut self, blocks_per_tb: usize) -> Self {
        assert!(blocks_per_tb > 0, "group size must be positive");
        self.blocks_per_tb = blocks_per_tb;
        self
    }

    /// The ME-TCF representation.
    pub fn metcf(&self) -> &MeTcfMatrix {
        self.inner.metcf()
    }

    /// Switches the Tensor-Core input precision (see
    /// [`DtcKernel::with_precision`]).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.inner = self.inner.with_precision(precision);
        self
    }
}

impl SpmmKernel for BalancedDtcKernel {
    fn name(&self) -> &str {
        "DTC-SpMM-balanced"
    }

    fn rows(&self) -> usize {
        self.inner.rows()
    }

    fn cols(&self) -> usize {
        self.inner.cols()
    }

    fn nnz(&self) -> usize {
        self.inner.nnz()
    }

    fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        check_spmm_dims(self.rows(), self.cols(), b)?;
        // Atomic accumulation is order-insensitive up to FP rounding; the
        // sequential walk is the same sum.
        Ok(execute_metcf(self.metcf(), b, self.inner.precision()))
    }

    #[allow(clippy::needless_range_loop)] // `t` indexes three parallel structures
    fn trace(&self, n: usize, device: &Device, record_b_addrs: bool) -> KernelTrace {
        let metcf = self.metcf();
        let n_f = n as f64;
        let opts = self.inner.opts();
        let mut trace = KernelTrace::new(DTC_OCCUPANCY, DTC_WARPS);
        trace.set_resources(KernelResources::dtc_spmm());
        let b_row_sectors = sectors_per_b_row(n);
        let mut total_b_sectors = 0.0;

        // Global block index -> owning window, for atomic accounting.
        let mut block_window: Vec<usize> = Vec::with_capacity(metcf.num_tc_blocks());
        for w in 0..metcf.num_windows() {
            for _ in metcf.window_blocks(w) {
                block_window.push(w);
            }
        }
        // Window -> set of TBs touching it (split windows need atomics).
        let num_tbs = metcf.num_tc_blocks().div_ceil(self.blocks_per_tb).max(1);
        let mut window_tb_count = vec![0u32; metcf.num_windows()];
        for tb_idx in 0..num_tbs {
            let lo = tb_idx * self.blocks_per_tb;
            let hi = (lo + self.blocks_per_tb).min(metcf.num_tc_blocks());
            let mut last = usize::MAX;
            for &w in &block_window[lo..hi] {
                if w != last {
                    window_tb_count[w] += 1;
                    last = w;
                }
            }
        }

        // Per-TB lowering fans out over threads; TBs only read the shared
        // block/window tables, and the reduction below keeps TB order. TBs
        // hold a fixed block count but not fixed nnz, so shards are cut at
        // nnz quantiles; the touched-window list leases arena scratch
        // instead of allocating per TB.
        let tc_offset = metcf.tc_offset();
        let weights: Vec<u64> = (0..num_tbs)
            .map(|tb_idx| {
                let lo = tb_idx * self.blocks_per_tb;
                let hi = (lo + self.blocks_per_tb).min(metcf.num_tc_blocks());
                (tc_offset[hi] - tc_offset[lo]) as u64
            })
            .collect();
        let plan = dtc_par::ShardPlan::weighted(dtc_par::num_threads(), &weights);
        let tbs = dtc_par::par_map_collect_plan(&plan, |tb_idx, scratch| {
            let lo = tb_idx * self.blocks_per_tb;
            let hi = (lo + self.blocks_per_tb).min(metcf.num_tc_blocks());
            let mut tb = TbWork { overlap_a_fetch: opts.sdb, ..TbWork::default() };
            tb.iters = (hi - lo) as f64;
            let mut windows_touched = scratch.usize_buf();
            let tc_mult = self.inner.precision().tc_throughput_multiplier();
            for t in lo..hi {
                let cost = DtcKernel::block_cost(metcf, opts, t, n_f, b_row_sectors);
                tb.alu_ops += cost.alu;
                tb.smem_ops += cost.smem;
                tb.hmma_ops += cost.hmma_ops / tc_mult;
                tb.hmma_count += cost.hmma_count;
                tb.lsu_a_sectors += cost.lsu_a;
                tb.lsu_b_sectors += cost.lsu_b;
                let w = block_window[t];
                if windows_touched.last() != Some(&w) {
                    windows_touched.push(w);
                }
                if record_b_addrs {
                    for &c in metcf.block_cols(t) {
                        push_b_row_sectors(&mut tb.b_stream, c as usize, n);
                    }
                }
            }
            // Epilogue: every touched window accumulates its 16xN strip.
            // Shared windows use atomic adds — those resolve at the L2 (an
            // issue/latency cost via atom_ops, not DRAM traffic); only the
            // final strip eviction reaches DRAM, so each TB carries its
            // share of that write-back (the §4.5.1 online overhead).
            for &w in &windows_touched {
                let splits = window_tb_count[w] as f64;
                tb.epilogue_sectors += 16.0 * b_row_sectors / splits;
                if window_tb_count[w] > 1 {
                    tb.atom_ops += 16.0 * n_f / 32.0; // warp atomics in L2
                }
            }
            scratch.recycle_usize(windows_touched);
            tb
        });
        for tb in tbs {
            tb.debug_validate();
            total_b_sectors += tb.lsu_b_sectors;
            trace.push(tb);
        }
        trace.assumed_l2_hit_rate =
            estimate_b_hit_rate(self.inner.distinct_cols(), total_b_sectors.max(1.0), n, device);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::{long_row, power_law, uniform};
    use dtc_formats::stats::gini;
    use dtc_formats::tf32::TF32_UNIT_ROUNDOFF;
    use dtc_sim::{simulate, SimOptions};

    #[test]
    fn matches_reference_within_tf32() {
        let a = power_law(96, 96, 5.0, 2.2, 71);
        let b = DenseMatrix::from_fn(96, 8, |r, c| ((r + 3 * c) % 6) as f32 * 0.4);
        let k = BalancedDtcKernel::new(&a);
        assert!(
            k.execute(&b).unwrap().max_abs_diff(&a.spmm_reference(&b).unwrap())
                < 40.0 * TF32_UNIT_ROUNDOFF
        );
    }

    #[test]
    fn balances_skewed_workloads() {
        // Fig 15: per-SM busy times even out under strict balance.
        let a = long_row(640, 640, 200.0, 1.5, 72);
        let device = Device::rtx4090();
        let base = DtcKernel::new(&a).simulate(128, &device);
        let bal = BalancedDtcKernel::new(&a).simulate(128, &device);
        let g_base = gini(&base.sm_busy_cycles().iter().map(|&c| c as usize).collect::<Vec<_>>());
        let g_bal = gini(&bal.sm_busy_cycles().iter().map(|&c| c as usize).collect::<Vec<_>>());
        assert!(g_bal < g_base, "gini base={g_base} balanced={g_bal}");
    }

    #[test]
    fn wins_on_imbalanced_loses_on_balanced() {
        let device = Device::rtx4090();
        // Heavily imbalanced Type II: balanced kernel should win.
        let skewed = long_row(640, 640, 200.0, 2.0, 73);
        let base_s = DtcKernel::new(&skewed).simulate(128, &device).time_ms;
        let bal_s = BalancedDtcKernel::new(&skewed).simulate(128, &device).time_ms;
        assert!(bal_s < base_s, "skewed: bal={bal_s} base={base_s}");
        // Uniform matrix: atomics make balanced no better (§4.5.2: 22.4%
        // degradation on uniformly distributed non-zeros).
        let flat = uniform(2048, 2048, 2048 * 6, 74);
        let base_f = DtcKernel::new(&flat).simulate(128, &device).time_ms;
        let bal_f = BalancedDtcKernel::new(&flat).simulate(128, &device).time_ms;
        assert!(bal_f > base_f * 0.95, "flat: bal={bal_f} base={base_f}");
    }

    #[test]
    fn tb_count_is_blocks_over_32() {
        let a = power_law(256, 256, 6.0, 2.2, 75);
        let k = BalancedDtcKernel::new(&a);
        let t = k.trace(64, &Device::rtx4090(), false);
        assert_eq!(t.num_tbs(), k.metcf().num_tc_blocks().div_ceil(BLOCKS_PER_TB));
    }

    #[test]
    fn atomics_present_only_with_split_windows() {
        // A matrix with one giant window (many blocks) must split and emit
        // atomics.
        let t: Vec<(usize, usize, f32)> =
            (0..16).flat_map(|r| (0..640).map(move |j| (r, j, 1.0))).collect();
        let a = CsrMatrix::from_triplets(16, 640, &t).unwrap();
        let k = BalancedDtcKernel::new(&a);
        let trace = k.trace(64, &Device::rtx4090(), false);
        let atoms: f64 = trace.iter_tbs().map(|tb| tb.atom_ops).sum();
        assert!(atoms > 0.0);
        let r = simulate(&Device::rtx4090(), &trace, &SimOptions::default());
        assert!(r.time_ms > 0.0);
    }
}
