//! The DTC-SpMM runtime kernel (Alg. 2): one thread block per row window
//! over ME-TCF, PTX-level `mma.m16n8k4`, with the §4.4 optimizations.

use super::{execute_metcf, KernelOpts};
use dtc_baselines::util::{
    check_spmm_dims, distinct_col_count, estimate_b_hit_rate, push_b_row_sectors, sectors_per_b_row,
};
use dtc_baselines::SpmmKernel;
use dtc_formats::{CsrMatrix, DenseMatrix, FormatError, MeTcfMatrix, Precision};
use dtc_sim::occupancy::KernelResources;
use dtc_sim::{Device, KernelTrace, TbWork};

/// The occupancy the paper measures for this kernel on RTX4090 (§4.5.2).
pub(crate) const DTC_OCCUPANCY: usize = 6;
/// Warps per thread block.
pub(crate) const DTC_WARPS: usize = 8;

/// The base (non-balanced) DTC-SpMM kernel.
///
/// # Example
///
/// ```
/// use dtc_core::{DtcKernel, SpmmKernel};
/// use dtc_formats::{gen, DenseMatrix};
/// use dtc_sim::Device;
///
/// # fn main() -> Result<(), dtc_formats::FormatError> {
/// let a = gen::web(256, 256, 8.0, 2.1, 0.7, 1);
/// let kernel = DtcKernel::new(&a);
/// let c = kernel.execute(&DenseMatrix::ones(256, 32))?;
/// assert_eq!(c.rows(), 256);
/// let report = kernel.simulate(32, &Device::rtx4090());
/// assert!(report.hmma_count > 0.0); // Tensor-Core path
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DtcKernel {
    metcf: MeTcfMatrix,
    opts: KernelOpts,
    precision: Precision,
    distinct_cols: usize,
}

impl DtcKernel {
    /// Converts the matrix to ME-TCF and prepares the kernel with all
    /// optimizations enabled.
    pub fn new(a: &CsrMatrix) -> Self {
        Self::with_opts(a, KernelOpts::all())
    }

    /// Prepares the kernel with an explicit optimization set (Fig 14
    /// ablation).
    pub fn with_opts(a: &CsrMatrix, opts: KernelOpts) -> Self {
        DtcKernel {
            metcf: MeTcfMatrix::from_csr(a),
            opts,
            precision: Precision::Tf32,
            distinct_cols: distinct_col_count(a),
        }
    }

    /// Wraps an existing ME-TCF matrix (used by the pipeline to share one
    /// conversion across kernels). `distinct_cols` is the number of
    /// distinct columns of the original matrix.
    pub fn from_metcf(metcf: MeTcfMatrix, distinct_cols: usize, opts: KernelOpts) -> Self {
        DtcKernel { metcf, opts, precision: Precision::Tf32, distinct_cols }
    }

    /// Switches the Tensor-Core input precision (§7: the paper's design
    /// "can be extended to support other precisions"). FP16/BF16 halve the
    /// TC-pipe time at reduced multiplicand precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// The optimization set in effect.
    pub fn opts(&self) -> KernelOpts {
        self.opts
    }

    /// The Tensor-Core input precision in effect.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The ME-TCF representation.
    pub fn metcf(&self) -> &MeTcfMatrix {
        &self.metcf
    }

    /// Number of distinct columns touched (shared with the balanced
    /// kernel).
    pub(crate) fn distinct_cols(&self) -> usize {
        self.distinct_cols
    }

    /// Per-block instruction mix shared by the base and balanced kernels.
    pub(crate) fn block_cost(
        metcf: &MeTcfMatrix,
        opts: KernelOpts,
        t: usize,
        n_f: f64,
        b_row_sectors: f64,
    ) -> BlockCost {
        let cols = metcf.block_cols(t);
        let (ids, _) = metcf.block_entries(t);
        let nnz_b = ids.len() as f64;
        // mma.m16n8k4: N/4 instructions per block, each half a k8-equiv.
        let hmma_count = n_f / 4.0;
        let hmma_ops = n_f / 8.0;
        // Dense-fetch address arithmetic (§4.4.1/§4.4.3): scalar LDG.32
        // needs one address per 32-bit element; LDG.128 (VFD) needs a
        // quarter of that; IP hoists most of the loop-invariant parts.
        let fetch_imad = if opts.vfd { 0.75 * n_f } else { 3.0 * n_f };
        let ip_factor = if opts.ip { 0.4 } else { 1.0 };
        // Sparse decode: TCLocalId/TCOffset lookups per non-zero.
        let decode_imad = nnz_b / 32.0 * if opts.ip { 2.0 } else { 6.0 };
        let alu = fetch_imad * ip_factor + decode_imad;
        // Shared memory: the sparse A tile is always staged (that is what
        // cp.async double-buffers); B staging only without SMB.
        let mut smem = nnz_b * 2.0 / 32.0;
        let mut extra_alu = 0.0;
        if !opts.smb {
            smem += 2.0 * (cols.len() as f64 * n_f / 32.0);
            extra_alu += 0.5 * n_f; // STS/LDS address math
        }
        BlockCost {
            alu: alu + extra_alu,
            smem,
            hmma_ops,
            hmma_count,
            lsu_a: (5.0 * nnz_b + 40.0) / 32.0,
            lsu_b: cols.len() as f64 * b_row_sectors,
        }
    }
}

/// Per-TC-block lowering cost.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BlockCost {
    pub alu: f64,
    pub smem: f64,
    pub hmma_ops: f64,
    pub hmma_count: f64,
    pub lsu_a: f64,
    pub lsu_b: f64,
}

impl SpmmKernel for DtcKernel {
    fn name(&self) -> &str {
        "DTC-SpMM"
    }

    fn rows(&self) -> usize {
        self.metcf.rows()
    }

    fn cols(&self) -> usize {
        self.metcf.cols()
    }

    fn nnz(&self) -> usize {
        self.metcf.nnz()
    }

    fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        check_spmm_dims(self.rows(), self.cols(), b)?;
        Ok(execute_metcf(&self.metcf, b, self.precision))
    }

    fn trace(&self, n: usize, device: &Device, record_b_addrs: bool) -> KernelTrace {
        let n_f = n as f64;
        let mut trace = KernelTrace::new(DTC_OCCUPANCY, DTC_WARPS);
        trace.set_resources(KernelResources::dtc_spmm());
        let b_row_sectors = sectors_per_b_row(n);
        // One TbWork per row window, built in parallel; windows are
        // independent and the reduction below walks them in window order, so
        // the trace (including the total-sector sum feeding the L2 estimate)
        // is identical to a serial build. Shards are cut at nnz-weighted
        // points so skewed matrices don't serialize on one worker.
        let weights = self.metcf.window_nnz_weights();
        let plan = dtc_par::ShardPlan::weighted(dtc_par::num_threads(), &weights);
        let tbs = dtc_par::par_map_collect_plan(&plan, |w, _scratch| {
            let mut tb = TbWork {
                overlap_a_fetch: self.opts.sdb,
                epilogue_sectors: 16.0 * b_row_sectors,
                ..TbWork::default()
            };
            let blocks = self.metcf.window_blocks(w);
            tb.iters = blocks.len() as f64;
            let tc_mult = self.precision.tc_throughput_multiplier();
            for t in blocks {
                let cost = Self::block_cost(&self.metcf, self.opts, t, n_f, b_row_sectors);
                tb.alu_ops += cost.alu;
                tb.smem_ops += cost.smem;
                tb.hmma_ops += cost.hmma_ops / tc_mult;
                tb.hmma_count += cost.hmma_count;
                tb.lsu_a_sectors += cost.lsu_a;
                tb.lsu_b_sectors += cost.lsu_b;
                if record_b_addrs {
                    for &c in self.metcf.block_cols(t) {
                        push_b_row_sectors(&mut tb.b_stream, c as usize, n);
                    }
                }
            }
            tb
        });
        let mut total_b_sectors = 0.0;
        for tb in tbs {
            tb.debug_validate();
            total_b_sectors += tb.lsu_b_sectors;
            trace.push(tb);
        }
        trace.assumed_l2_hit_rate =
            estimate_b_hit_rate(self.distinct_cols, total_b_sectors.max(1.0), n, device);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_baselines::{CusparseSpmm, TcgnnSpmm};
    use dtc_formats::gen::{long_row, power_law};
    use dtc_formats::tf32::TF32_UNIT_ROUNDOFF;

    #[test]
    fn matches_reference_within_tf32() {
        let a = power_law(128, 128, 6.0, 2.2, 61);
        let b = DenseMatrix::from_fn(128, 16, |r, c| ((r * 7 + c) % 9) as f32 * 0.3);
        let k = DtcKernel::new(&a);
        let c = k.execute(&b).unwrap();
        assert!(c.max_abs_diff(&a.spmm_reference(&b).unwrap()) < 60.0 * TF32_UNIT_ROUNDOFF);
    }

    #[test]
    fn each_optimization_helps_or_is_neutral() {
        let a = long_row(320, 320, 150.0, 0.6, 62);
        let device = Device::rtx4090();
        let mut prev = f64::INFINITY;
        for (label, opts) in KernelOpts::ablation_ladder() {
            let t = DtcKernel::with_opts(&a, opts).simulate(128, &device).time_ms;
            assert!(t <= prev * 1.02, "{label} regressed: {t} vs {prev}");
            prev = t;
        }
    }

    #[test]
    fn beats_tcgnn_everywhere() {
        // Table 3: DTC achieves speedups over TCGNN across ALL matrices.
        let device = Device::rtx4090();
        for (i, a) in [
            power_law(320, 320, 3.0, 2.2, 63),
            power_law(320, 320, 12.0, 2.0, 64),
            long_row(320, 320, 200.0, 0.6, 65),
        ]
        .iter()
        .enumerate()
        {
            let dtc = DtcKernel::new(a).simulate(128, &device).time_ms;
            let tcgnn = TcgnnSpmm::new(a).unwrap().simulate(128, &device).time_ms;
            assert!(dtc < tcgnn, "case {i}: dtc={dtc} tcgnn={tcgnn}");
        }
    }

    #[test]
    fn beats_cusparse_on_type_ii() {
        // Fig 11a: the relative speedup is highest (up to 3.29x) on Type II.
        let a = long_row(640, 640, 250.0, 0.6, 66);
        let device = Device::rtx4090();
        let dtc = DtcKernel::new(&a).simulate(128, &device).time_ms;
        let cus = CusparseSpmm::new(&a).simulate(128, &device).time_ms;
        assert!(dtc < cus, "dtc={dtc} cus={cus}");
    }

    #[test]
    fn higher_tc_utilization_than_tcgnn() {
        let a = long_row(320, 320, 150.0, 0.5, 67);
        let device = Device::rtx4090();
        let dtc = DtcKernel::new(&a).simulate(128, &device);
        let tcgnn = TcgnnSpmm::new(&a).unwrap().simulate(128, &device);
        assert!(
            dtc.tc_utilization > tcgnn.tc_utilization,
            "dtc={} tcgnn={}",
            dtc.tc_utilization,
            tcgnn.tc_utilization
        );
        assert!(dtc.imad_per_hmma < tcgnn.imad_per_hmma);
    }

    #[test]
    fn fp16_halves_tensor_core_time_on_tc_bound_inputs() {
        use dtc_formats::Precision;
        let a = long_row(640, 640, 200.0, 0.5, 69);
        let device = Device::rtx4090();
        let tf32 = DtcKernel::new(&a).simulate(128, &device);
        let fp16 = DtcKernel::new(&a).with_precision(Precision::Fp16).simulate(128, &device);
        // TC work halves; total time improves but not by a full 2x (the
        // memory pipes are unchanged).
        assert!(fp16.time_ms < tf32.time_ms, "{} vs {}", fp16.time_ms, tf32.time_ms);
        assert!(fp16.time_ms > tf32.time_ms * 0.4);
    }

    #[test]
    fn bf16_is_faster_but_coarser() {
        use dtc_formats::Precision;
        let a = power_law(96, 96, 5.0, 2.2, 70);
        let b = DenseMatrix::from_fn(96, 8, |r, c| ((r * 13 + c * 7) % 23) as f32 * 0.137);
        let reference = a.spmm_reference(&b).unwrap();
        let tf32_err = DtcKernel::new(&a).execute(&b).unwrap().max_abs_diff(&reference);
        let bf16_err = DtcKernel::new(&a)
            .with_precision(Precision::Bf16)
            .execute(&b)
            .unwrap()
            .max_abs_diff(&reference);
        assert!(bf16_err > tf32_err, "bf16 {} vs tf32 {}", bf16_err, tf32_err);
    }

    #[test]
    fn trace_has_one_tb_per_window() {
        let a = power_law(100, 100, 4.0, 2.2, 68);
        let k = DtcKernel::new(&a);
        let t = k.trace(64, &Device::rtx4090(), false);
        assert_eq!(t.num_tbs(), k.metcf().num_windows());
        assert_eq!(t.occupancy, DTC_OCCUPANCY);
    }
}
