//! The DTC-SpMM runtime kernels (§4.4, §4.5.1).

mod balanced;
mod base;
mod opts;

pub use balanced::BalancedDtcKernel;
pub use base::DtcKernel;
pub use opts::KernelOpts;

use dtc_formats::{DenseMatrix, MeTcfMatrix, Precision, BLOCK_WIDTH, WINDOW_HEIGHT};

/// Shared exact-execution body: walks ME-TCF blocks performing
/// precision-rounded multiply, FP32 accumulate — the numeric contract of
/// `mma.sync.aligned.m16n8k4.f32.<p>.<p>.f32`.
///
/// Mirrors the GPU decomposition on the host: one task per 16-row window,
/// fanned out over `dtc_par::num_threads()` scoped threads. Each window owns
/// a disjoint 16-row strip of C and runs the exact serial per-entry
/// accumulation order, so the result is bit-identical to a serial walk for
/// any thread count (see DESIGN.md, "Parallel host substrate").
pub(crate) fn execute_metcf(
    metcf: &MeTcfMatrix,
    b: &DenseMatrix,
    precision: Precision,
) -> DenseMatrix {
    let n = b.cols();
    let mut c = DenseMatrix::zeros(metcf.rows(), n);
    if n == 0 {
        return c;
    }
    // A window's strip costs ~(nnz + blocks) regardless of which worker
    // runs it; nnz-weighted shard cuts plus chunk stealing keep skewed
    // matrices from serializing on the heavy windows.
    let weights = metcf.window_nnz_weights();
    dtc_par::par_chunks_mut_weighted(c.as_mut_slice(), WINDOW_HEIGHT * n, &weights, |w, strip| {
        execute_window(metcf, b, precision, w, strip, n);
    });
    c
}

/// Executes one row window into its 16-row output strip (`strip` is shorter
/// for a final partial window).
fn execute_window(
    metcf: &MeTcfMatrix,
    b: &DenseMatrix,
    precision: Precision,
    w: usize,
    strip: &mut [f32],
    n: usize,
) {
    for t in metcf.window_blocks(w) {
        let cols = metcf.block_cols(t);
        let (ids, vals) = metcf.block_entries(t);
        for (&id, &v) in ids.iter().zip(vals) {
            let local_row = (id as usize) / BLOCK_WIDTH;
            let local_col = (id as usize) % BLOCK_WIDTH;
            let col = cols[local_col] as usize;
            let a_v = precision.round(v);
            let out = &mut strip[local_row * n..(local_row + 1) * n];
            for (o, &bv) in out.iter_mut().zip(b.row(col)) {
                *o += a_v * precision.round(bv);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::power_law;
    use dtc_formats::tf32::TF32_UNIT_ROUNDOFF;

    #[test]
    fn execute_metcf_matches_reference() {
        let a = power_law(100, 100, 6.0, 2.2, 51);
        let metcf = MeTcfMatrix::from_csr(&a);
        let b = DenseMatrix::from_fn(100, 16, |r, c| ((r + c) % 8) as f32 * 0.5);
        let got = execute_metcf(&metcf, &b, Precision::Tf32);
        let want = a.spmm_reference(&b).unwrap();
        assert!(got.max_abs_diff(&want) < 50.0 * TF32_UNIT_ROUNDOFF);
    }
}
