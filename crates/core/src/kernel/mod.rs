//! The DTC-SpMM runtime kernels (§4.4, §4.5.1).

mod balanced;
mod base;
mod opts;

pub use balanced::BalancedDtcKernel;
pub use base::DtcKernel;
pub use opts::KernelOpts;

use dtc_formats::{DenseMatrix, MeTcfMatrix, Precision, BLOCK_WIDTH, WINDOW_HEIGHT};

/// Shared exact-execution body: walks ME-TCF blocks performing
/// precision-rounded multiply, FP32 accumulate — the numeric contract of
/// `mma.sync.aligned.m16n8k4.f32.<p>.<p>.f32`.
pub(crate) fn execute_metcf(
    metcf: &MeTcfMatrix,
    b: &DenseMatrix,
    precision: Precision,
) -> DenseMatrix {
    let n = b.cols();
    let mut c = DenseMatrix::zeros(metcf.rows(), n);
    for w in 0..metcf.num_windows() {
        let base_row = w * WINDOW_HEIGHT;
        for t in metcf.window_blocks(w) {
            let cols = metcf.block_cols(t);
            let (ids, vals) = metcf.block_entries(t);
            for (&id, &v) in ids.iter().zip(vals) {
                let local_row = (id as usize) / BLOCK_WIDTH;
                let local_col = (id as usize) % BLOCK_WIDTH;
                let row = base_row + local_row;
                let col = cols[local_col] as usize;
                let a_v = precision.round(v);
                let out = c.row_mut(row);
                for (o, &bv) in out.iter_mut().zip(b.row(col)) {
                    *o += a_v * precision.round(bv);
                }
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::power_law;
    use dtc_formats::tf32::TF32_UNIT_ROUNDOFF;

    #[test]
    fn execute_metcf_matches_reference() {
        let a = power_law(100, 100, 6.0, 2.2, 51);
        let metcf = MeTcfMatrix::from_csr(&a);
        let b = DenseMatrix::from_fn(100, 16, |r, c| ((r + c) % 8) as f32 * 0.5);
        let got = execute_metcf(&metcf, &b, Precision::Tf32);
        let want = a.spmm_reference(&b).unwrap();
        assert!(got.max_abs_diff(&want) < 50.0 * TF32_UNIT_ROUNDOFF);
    }
}
