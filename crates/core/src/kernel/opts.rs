/// The four runtime-kernel optimizations of §4.4, individually toggleable
/// for the Fig 14 ablation.
///
/// # Example
///
/// ```
/// use dtc_core::KernelOpts;
///
/// let ladder = KernelOpts::ablation_ladder();
/// assert_eq!(ladder.first().unwrap().0, "Base");
/// assert_eq!(ladder.last().unwrap().1, KernelOpts::all());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelOpts {
    /// Shared-Memory Bypassing (§4.4.1): B tiles go straight from global
    /// memory to registers via PTX `mma`, skipping the `STS` /
    /// `wmma::load_matrix_sync` staging of the WMMA path.
    pub smb: bool,
    /// Index-Precomputing (§4.4.3): coordinate arithmetic is hoisted out of
    /// the `FetchSparse` / `VFetchDense` loops.
    pub ip: bool,
    /// Sparse Double Buffering (§4.4.2): the next sparse A tile is
    /// prefetched with `cp.async` into a second shared-memory buffer,
    /// overlapping Tensor-Core compute.
    pub sdb: bool,
    /// Vectorized Fetch Dense (§4.4.1): `LDG.128` (float4) loads of B with
    /// register remapping of the accumulator write-back.
    pub vfd: bool,
}

impl KernelOpts {
    /// All optimizations off — the "Base" bar of Fig 14 (ME-TCF format
    /// only).
    pub fn none() -> Self {
        KernelOpts { smb: false, ip: false, sdb: false, vfd: false }
    }

    /// All optimizations on — the shipping DTC-SpMM configuration.
    pub fn all() -> Self {
        KernelOpts { smb: true, ip: true, sdb: true, vfd: true }
    }

    /// The cumulative ablation ladder of Fig 14:
    /// `Base → +SMB → +IP → +SDB → +VFD`, with display labels.
    pub fn ablation_ladder() -> Vec<(&'static str, KernelOpts)> {
        vec![
            ("Base", KernelOpts::none()),
            ("+SMB", KernelOpts { smb: true, ..KernelOpts::none() }),
            ("+IP", KernelOpts { smb: true, ip: true, ..KernelOpts::none() }),
            ("+SDB", KernelOpts { smb: true, ip: true, sdb: true, vfd: false }),
            ("+VFD", KernelOpts::all()),
        ]
    }
}

impl Default for KernelOpts {
    fn default() -> Self {
        KernelOpts::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone() {
        let ladder = KernelOpts::ablation_ladder();
        assert_eq!(ladder.len(), 5);
        assert_eq!(ladder[0].1, KernelOpts::none());
        assert_eq!(ladder[4].1, KernelOpts::all());
        // Each rung only adds flags.
        let as_bits = |o: &KernelOpts| o.smb as u8 + o.ip as u8 + o.sdb as u8 + o.vfd as u8;
        for w in ladder.windows(2) {
            assert_eq!(as_bits(&w[1].1), as_bits(&w[0].1) + 1);
        }
    }

    #[test]
    fn default_is_all() {
        assert_eq!(KernelOpts::default(), KernelOpts::all());
    }
}
