//! DTC-SpMM: the paper's primary contribution.
//!
//! This crate assembles the full system of §4:
//!
//! - [`kernel::DtcKernel`] — the runtime kernel of Alg. 2 over the ME-TCF
//!   format, with the four §4.4 optimizations individually toggleable
//!   through [`kernel::KernelOpts`]: shared-memory bypassing (SMB),
//!   index-precomputing (IP), sparse double buffering (SDB) and vectorized
//!   dense fetch (VFD);
//! - [`kernel::BalancedDtcKernel`] — the strict-balance variant (§4.5.1):
//!   fixed-size groups of TC blocks per thread block, with atomic
//!   accumulation across split row windows;
//! - [`Selector`] — the simulation-based kernel selector (§4.5.2): computes
//!   the makespan under the thread-block scheduling policy model, derives
//!   the approximation ratio (AR), and picks the balanced kernel when
//!   `AR > 1.2`;
//! - [`convert`] — parallel CSR → ME-TCF conversion with overhead
//!   accounting (§6);
//! - [`DtcSpmm`] — the end-to-end pipeline a downstream user adopts:
//!   optional TCU-Cache-Aware reordering → format conversion → selection →
//!   execution.
//!
//! # Example
//!
//! ```
//! use dtc_core::{DtcSpmm, SpmmKernel};
//! use dtc_formats::{gen::power_law, DenseMatrix};
//! use dtc_sim::Device;
//!
//! # fn main() -> Result<(), dtc_core::DtcError> {
//! let a = power_law(256, 256, 8.0, 2.2, 3);
//! let engine = DtcSpmm::builder().reorder(true).build(&a);
//! let b = DenseMatrix::ones(256, 64);
//! let c = engine.execute(&b)?;
//! assert_eq!(c.rows(), 256);
//! let report = engine.simulate(64, &Device::rtx4090());
//! assert!(report.time_ms > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod config;
pub mod convert;
mod engine;
mod error;
pub mod kernel;
pub mod mma;
mod pipeline;
mod selector;
mod session;
mod telemetry;

pub use cache::{
    admit_conversion, clear_conversion_cache, conversion_cache_stats, invalidate_conversion,
    KeyMaterial,
};
pub use config::EngineConfig;
pub use engine::{prepare, BaselineEngine, EngineKind, SpmmEngine};
pub use error::DtcError;
#[allow(deprecated)]
pub use error::EngineError;
pub use kernel::{BalancedDtcKernel, DtcKernel, KernelOpts};
pub use pipeline::{DeltaOutcome, DeltaPolicy, DtcSpmm, DtcSpmmBuilder};
pub use selector::{KernelChoice, Selector, SelectorDecision};
pub use session::{AmortizationReport, EngineRecommendation, IterativeSpmm, IterativeSpmmBuilder};

// Re-exported so downstream users need only this crate for the common path.
pub use dtc_baselines::SpmmKernel;
pub use dtc_formats::{DeltaReport, MatrixDelta, Precision};

// The workspace's shared FNV-1a module and the lossy verified front-tier
// cache primitive (they live in `dtc-par` so `dtc-sim` and the serving
// layer can use them without a dependency cycle).
pub use dtc_par::hash;
pub use dtc_par::{front_tier_enabled, set_front_tier_enabled, FrontTier};
