//! Register-level layout of `mma.sync.aligned.m16n8k4.f32.tf32.tf32.f32` —
//! Figure 8 of the paper, made executable.
//!
//! Threads of a warp collectively hold the operand fragments; "their
//! distribution across the 32 threads must be managed explicitly before
//! using the `mma` instruction" (§4.4.1). This module encodes the PTX ISA
//! lane↔element mapping for the A (16×4), B (4×8) and C/D (16×8)
//! fragments, the two thread arrangements for fetching B
//! (strided vs sequential, Fig 8b), and the **register remapping** used by
//! vectorized `float4` loads (Fig 8c): the permuted B distribution is kept
//! as-is and undone once when writing `C_frag` back (§4.4.1: "we preserve
//! the distribution of B_frag and perform a one-time remapping when
//! writing C_frag back").

/// Warp lane (0..32) and register index a fragment element lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegSlot {
    /// Lane id within the warp.
    pub lane: u8,
    /// Register index within that lane's fragment registers.
    pub reg: u8,
}

/// Owner of A-fragment element `(row, k)` of the 16×4 tile.
/// Per the PTX ISA: `a0` holds rows 0–7, `a1` rows 8–15; within a group,
/// `lane = row * 4 + k`.
///
/// # Panics
///
/// Panics if `row >= 16` or `k >= 4`.
pub fn a_fragment_slot(row: usize, k: usize) -> RegSlot {
    assert!(row < 16 && k < 4, "A fragment is 16x4");
    RegSlot { lane: ((row % 8) * 4 + k) as u8, reg: (row / 8) as u8 }
}

/// Owner of B-fragment element `(k, col)` of the 4×8 tile (column-major
/// distribution): `lane = col * 4 + k`, one register.
///
/// This is the Fig 8(a) layout: for a fixed `k`, the 8 elements of a B row
/// live in lanes `k, k+4, k+8, …` — i.e. "thread 0, 4, 8, and 12 hold
/// these four consecutive values" along a column of B.
///
/// # Panics
///
/// Panics if `k >= 4` or `col >= 8`.
pub fn b_fragment_slot(k: usize, col: usize) -> RegSlot {
    assert!(k < 4 && col < 8, "B fragment is 4x8");
    RegSlot { lane: (col * 4 + k) as u8, reg: 0 }
}

/// Owner of C/D-fragment element `(row, col)` of the 16×8 accumulator:
/// 4 registers per lane; `c0,c1` cover rows 0–7 (even/odd column pairs),
/// `c2,c3` rows 8–15.
///
/// # Panics
///
/// Panics if `row >= 16` or `col >= 8`.
pub fn c_fragment_slot(row: usize, col: usize) -> RegSlot {
    assert!(row < 16 && col < 8, "C fragment is 16x8");
    RegSlot { lane: ((row % 8) * 4 + col / 2) as u8, reg: ((row / 8) * 2 + col % 2) as u8 }
}

/// The two §4.4.1 thread arrangements for scatter-fetching B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchArrangement {
    /// Threads read the element their fragment slot requires directly:
    /// neighbouring threads touch *scattered* addresses; no shuffle needed.
    /// (The paper's choice: `shfl_sync` costs 10.7 cycles per exchange.)
    Strided,
    /// Neighbouring threads read adjacent addresses within a row, then a
    /// warp transpose (`shfl_sync`) restores the column-major fragment.
    Sequential,
}

/// For a B tile stored row-major with `k` as the row index, the element
/// `(k, col)` that `lane` reads under each arrangement.
pub fn fetched_element(lane: u8, arrangement: FetchArrangement) -> (usize, usize) {
    let lane = lane as usize % 32;
    match arrangement {
        // Read exactly what the fragment slot wants: invert b_fragment_slot.
        FetchArrangement::Strided => (lane % 4, lane / 4),
        // Coalesced: lanes sweep each row left to right (8 lanes per row of
        // 8 columns), needing shuffles afterwards.
        FetchArrangement::Sequential => (lane / 8, lane % 8),
    }
}

/// The vectorized-load mapping (Fig 8c): with `float4` loads, lane `L`
/// receives the four consecutive elements `(k = L % 4, col = 4v .. 4v+4)`
/// where `v = L / 16`, i.e. 16 lanes cover the 4×8 tile with two float4
/// loads... In the 4×8 B tile, 8 lanes (L = 0..8) each load one float4:
/// lane `L` gets row `k = L % 4` and columns `4*(L/4) .. 4*(L/4)+4`.
/// Returns the `(k, col)` of register `reg` (0..4) of lane `lane` (0..8).
pub fn vectorized_b_slot(lane: u8, reg: u8) -> (usize, usize) {
    assert!(lane < 8 && reg < 4, "8 lanes x float4 cover the 4x8 tile");
    let k = (lane % 4) as usize;
    let col = (lane / 4) as usize * 4 + reg as usize;
    (k, col)
}

/// The one-time C-writeback remapping induced by the vectorized B layout.
///
/// Keeping B in the float4 layout instead of the canonical fragment layout
/// is equivalent to feeding the `mma` a *column-permuted* B: the product's
/// columns come out permuted the same way, so the epilogue writes column
/// `remap` of the canonical output when storing slot `col`. This function
/// returns that permutation; the `remapping_roundtrip` unit test proves it
/// undoes the vectorized layout exactly.
pub fn c_writeback_column_remap() -> [usize; 8] {
    // Column c of the canonical layout is held (for a given k) by lane
    // c*4+k; the vectorized layout instead gives lane l%4=k, reg r the
    // column (l/4)*4+r. Matching storage slots: the permutation sends the
    // canonical column index to the vectorized one with the same
    // (lane-group, position) coordinates.
    let mut remap = [0usize; 8];
    for (canonical, slot) in remap.iter_mut().enumerate() {
        // canonical col c sits at lane-group g = c / 2? Derive by position:
        // vectorized: col = (lane/4)*4 + reg with 2 lane-groups x 4 regs.
        // canonical: col = lane/4 with 8 lane-groups x 1 reg.
        let lane_group = canonical / 4; // 0 or 1 in the vectorized layout
        let reg = canonical % 4;
        *slot = lane_group * 4 + reg;
    }
    remap
}

/// Renders the Alg. 2 main-loop body as pseudo-PTX for the given
/// optimization set — the Fig 7 pipeline made inspectable. Useful for
/// documentation and for asserting which instructions each optimization
/// adds or removes.
pub fn emit_pseudo_ptx(opts: crate::KernelOpts) -> String {
    let mut out = String::new();
    let mut push = |s: &str| {
        out.push_str(s);
        out.push('\n');
    };
    push("// DTC-SpMM main loop (Alg. 2), one TC block per iteration");
    if opts.sdb {
        push("cp.async.ca.shared.global [ATile_next], [A_gmem], 16; // FetchSpAsync");
    } else {
        push("ld.global.u32 %a_idx, [A_gmem];        // FetchSparse (blocking)");
        push("st.shared.u32 [ATile], %a_idx;");
    }
    if opts.vfd {
        push("ld.global.v4.f32 {%b0,%b1,%b2,%b3}, [B_gmem]; // VFetchDense LDG.128");
    } else {
        push("ld.global.f32 %b0, [B_gmem];            // VFetchDense LDG.32 x4");
        push("ld.global.f32 %b1, [B_gmem+128];");
        push("ld.global.f32 %b2, [B_gmem+256];");
        push("ld.global.f32 %b3, [B_gmem+384];");
    }
    if !opts.smb {
        push("st.shared.f32 [BTile], %b0;             // staging (no SMB)");
        push("ld.shared.f32 %b0, [BTile];             // wmma::load_matrix_sync");
    }
    if !opts.ip {
        push("mad.lo.s32 %addr, %row, %ld, %col;      // coordinate IMADs");
        push("mad.lo.s32 %addr, %addr, 4, %base;");
    }
    push("ld.shared.f32 %a0, [ATile];              // ATileToAReg");
    push(
        "mma.sync.aligned.m16n8k4.row.col.f32.tf32.tf32.f32 \
         {%d0,%d1,%d2,%d3}, {%a0,%a1}, {%b0}, {%c0,%c1,%c2,%c3};",
    );
    if opts.sdb {
        push("cp.async.wait_group 0;                  // transaction barrier");
    }
    if opts.vfd {
        push("// epilogue: StoreCRemapping undoes the float4 permutation");
    }
    out
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::KernelOpts;

    #[test]
    fn fragment_maps_are_bijections() {
        // Every (lane, reg) pair is hit exactly once per fragment.
        let mut seen_a = [[false; 2]; 32];
        for row in 0..16 {
            for k in 0..4 {
                let s = a_fragment_slot(row, k);
                assert!(!seen_a[s.lane as usize][s.reg as usize], "A collision at {row},{k}");
                seen_a[s.lane as usize][s.reg as usize] = true;
            }
        }
        let mut seen_b = [false; 32];
        for k in 0..4 {
            for col in 0..8 {
                let s = b_fragment_slot(k, col);
                assert_eq!(s.reg, 0);
                assert!(!seen_b[s.lane as usize], "B collision at {k},{col}");
                seen_b[s.lane as usize] = true;
            }
        }
        let mut seen_c = [[false; 4]; 32];
        for row in 0..16 {
            for col in 0..8 {
                let s = c_fragment_slot(row, col);
                assert!(!seen_c[s.lane as usize][s.reg as usize], "C collision at {row},{col}");
                seen_c[s.lane as usize][s.reg as usize] = true;
            }
        }
        assert!(seen_a.iter().flatten().all(|&x| x));
        assert!(seen_b.iter().all(|&x| x));
        assert!(seen_c.iter().flatten().all(|&x| x));
    }

    #[test]
    fn fig8a_consecutive_b_values_live_in_lanes_0_4_8_12() {
        // §4.4.1: "thread 0, 4, 8, and 12 hold these four consecutive
        // values" — the four k-values of B column 0.
        for k in 0..4 {
            assert_eq!(b_fragment_slot(k, 0).lane as usize, k);
        }
        // And column 1's values live in lanes 4..8, etc.
        for k in 0..4 {
            assert_eq!(b_fragment_slot(k, 1).lane as usize, 4 + k);
        }
    }

    #[test]
    fn strided_fetch_matches_fragment_wants() {
        // Strided arrangement: what each lane reads is exactly its
        // fragment slot -> no shuffle needed.
        for lane in 0..32u8 {
            let (k, col) = fetched_element(lane, FetchArrangement::Strided);
            assert_eq!(b_fragment_slot(k, col).lane, lane);
        }
    }

    #[test]
    fn sequential_fetch_needs_shuffles() {
        // Sequential arrangement: at least some lanes read elements whose
        // fragment owner is a different lane (hence the warp transpose).
        let mismatches = (0..32u8)
            .filter(|&lane| {
                let (k, col) = fetched_element(lane, FetchArrangement::Sequential);
                b_fragment_slot(k, col).lane != lane
            })
            .count();
        assert!(mismatches > 16, "only {mismatches} mismatches");
    }

    #[test]
    fn vectorized_loads_cover_the_tile_once() {
        let mut seen = [[false; 8]; 4];
        for lane in 0..8u8 {
            for reg in 0..4u8 {
                let (k, col) = vectorized_b_slot(lane, reg);
                assert!(!seen[k][col], "duplicate at {k},{col}");
                seen[k][col] = true;
            }
        }
        assert!(seen.iter().flatten().all(|&x| x));
        // Each lane's four registers are consecutive columns: one float4.
        for lane in 0..8u8 {
            let cols: Vec<usize> = (0..4).map(|r| vectorized_b_slot(lane, r).1).collect();
            assert_eq!(cols, vec![cols[0], cols[0] + 1, cols[0] + 2, cols[0] + 3]);
        }
    }

    #[test]
    fn remapping_roundtrip() {
        // Feeding the mma a column-permuted B produces a column-permuted C;
        // writing output column `remap[c]` into slot `c` restores the
        // canonical order. Verify the permutation is its own consistent
        // inverse composition: applying remap to the vectorized layout
        // yields the canonical columns 0..8 exactly once each.
        let remap = c_writeback_column_remap();
        let mut seen = [false; 8];
        for &m in &remap {
            assert!(!seen[m], "remap not a permutation");
            seen[m] = true;
        }
        // The permutation regroups 8 columns from (8 groups x 1) to
        // (2 groups x 4): check the concrete expected order.
        assert_eq!(remap, [0, 1, 2, 3, 4, 5, 6, 7].map(|c: usize| (c / 4) * 4 + c % 4));
    }

    #[test]
    fn pseudo_ptx_tracks_optimizations() {
        let all = emit_pseudo_ptx(KernelOpts::all());
        assert!(all.contains("cp.async"), "SDB emits cp.async");
        assert!(all.contains("ld.global.v4.f32"), "VFD emits LDG.128");
        assert!(!all.contains("st.shared.f32 [BTile]"), "SMB removes B staging");
        assert!(!all.contains("mad.lo.s32"), "IP removes runtime IMADs");
        assert!(all.contains("mma.sync.aligned.m16n8k4"));

        let none = emit_pseudo_ptx(KernelOpts::none());
        assert!(!none.contains("cp.async"));
        assert!(none.contains("ld.global.f32"), "scalar LDG.32 without VFD");
        assert!(none.contains("st.shared.f32 [BTile]"), "B staged without SMB");
        assert!(none.contains("mad.lo.s32"), "coordinate IMADs without IP");
    }
}
