//! The end-to-end DTC-SpMM pipeline (Fig 4): offline TCU-Cache-Aware
//! reordering → ME-TCF conversion → simulation-based selection → runtime
//! kernel.

use crate::cache::KeyMaterial;
use crate::config::EngineConfig;
use crate::engine::SpmmEngine;
use crate::error::DtcError;
use crate::kernel::{BalancedDtcKernel, DtcKernel, KernelOpts};
use crate::selector::{KernelChoice, Selector, SelectorDecision};
use dtc_baselines::SpmmKernel;
use dtc_formats::{
    CsrMatrix, DeltaReport, DenseMatrix, FormatError, MatrixDelta, MeTcfMatrix, Precision,
};
use dtc_par::hash::fnv1a;
use dtc_par::FrontTier;
use dtc_reorder::{Reorderer, TcaReorderer};
use dtc_sim::{Device, KernelTrace};
use std::collections::HashMap;
use std::sync::Mutex;

/// Trace-cache key: (N, device fingerprint, record_b_addrs).
type TraceKey = (usize, u64, bool);

/// Per-engine two-tier trace cache: a lossy [`FrontTier`] (verified by the
/// full [`TraceKey`]) in front of the exact map. Both under the engine's
/// existing `Mutex`.
#[derive(Debug)]
struct TraceCache {
    front: FrontTier<TraceKey, KernelTrace>,
    exact: HashMap<TraceKey, KernelTrace>,
}

impl TraceCache {
    fn new() -> Self {
        // Engines see a handful of (N, device) pairs; 64 slots is plenty.
        TraceCache { front: FrontTier::new("trace", 64), exact: HashMap::new() }
    }
}

/// Word-wise FNV over the trace key for the front-tier slot.
fn trace_front_hash(key: &TraceKey) -> u64 {
    fnv1a(dtc_par::hash::FNV_OFFSET, [key.0 as u64, key.1, key.2 as u64].into_iter())
}

/// Builder for a [`DtcSpmm`] engine: a shared [`EngineConfig`] (every
/// hashable knob) plus the boxed reordering algorithm.
pub struct DtcSpmmBuilder {
    config: EngineConfig,
    reorderer: Box<dyn Reorderer>,
}

impl std::fmt::Debug for DtcSpmmBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DtcSpmmBuilder")
            .field("config", &self.config)
            .field("reorderer", &self.reorderer.name())
            .finish()
    }
}

impl Default for DtcSpmmBuilder {
    fn default() -> Self {
        DtcSpmmBuilder {
            config: EngineConfig::default(),
            reorderer: Box::new(TcaReorderer::default()),
        }
    }
}

impl DtcSpmmBuilder {
    /// Replaces the whole shared configuration at once (the serving layer
    /// builds pool engines from a tenant's [`EngineConfig`] directly).
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// The current shared configuration.
    pub fn engine_config(&self) -> &EngineConfig {
        &self.config
    }

    /// Enables the (optional, offline) TCU-Cache-Aware reordering step.
    pub fn reorder(mut self, enabled: bool) -> Self {
        self.config.reorder = enabled;
        self
    }

    /// Replaces the reordering algorithm (implies `reorder(true)`).
    pub fn reorderer(mut self, r: Box<dyn Reorderer>) -> Self {
        self.reorderer = r;
        self.config.reorder = true;
        self
    }

    /// Sets the runtime-kernel optimization flags.
    pub fn opts(mut self, opts: KernelOpts) -> Self {
        self.config.opts = opts;
        self
    }

    /// Sets the Tensor-Core input precision (default TF32; §7 extension).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.config.precision = precision;
        self
    }

    /// Sets the Selector configuration.
    pub fn selector(mut self, selector: Selector) -> Self {
        self.config.selector = selector;
        self
    }

    /// Sets the target device for the Selector's makespan model.
    pub fn device(mut self, device: Device) -> Self {
        self.config.device = device;
        self
    }

    /// Bypasses the Selector with a fixed kernel choice.
    pub fn force_kernel(mut self, choice: KernelChoice) -> Self {
        self.config.force = Some(choice);
        self
    }

    /// Runs the offline pipeline for a matrix and returns the engine.
    ///
    /// Infallible wrapper over [`DtcSpmmBuilder::try_build`] for the common
    /// case; prefer `try_build` where errors should propagate.
    ///
    /// # Panics
    ///
    /// Panics if the matrix exceeds ME-TCF's `u32` offset range (more than
    /// `u32::MAX` non-zeros).
    pub fn build(self, a: &CsrMatrix) -> DtcSpmm {
        self.try_build(a).expect("pipeline build failed")
    }

    /// Fallible pipeline build.
    ///
    /// ME-TCF conversion goes through the process-wide [`crate::cache`]:
    /// rebuilding an engine over a structurally identical matrix reuses the
    /// previous conversion (observable via
    /// [`crate::conversion_cache_stats`]).
    ///
    /// # Errors
    ///
    /// Returns [`DtcError::Format`] when the matrix cannot be packed into
    /// ME-TCF (e.g. [`dtc_formats::FormatError::IndexOverflow`] past the
    /// `u32` offset range).
    pub fn try_build(self, a: &CsrMatrix) -> Result<DtcSpmm, DtcError> {
        let _build = dtc_telemetry::span("pipeline.build");
        crate::telemetry::pipeline_builds().incr();
        let key = KeyMaterial::of(a);
        let (perm, working) = {
            let _phase = dtc_telemetry::span("reorder");
            if self.config.reorder {
                let perm = self.reorderer.reorder(a);
                let m = a.permute_rows(&perm);
                (Some(perm), m)
            } else {
                (None, a.clone())
            }
        };
        let working_key = if perm.is_some() { KeyMaterial::of(&working) } else { key.clone() };
        let converted = {
            let _phase = dtc_telemetry::span("convert");
            crate::cache::metcf_for(&working)?
        };
        let metcf = converted.metcf.clone();
        let distinct = converted.distinct_cols;
        let decision = {
            let _phase = dtc_telemetry::span("select");
            self.config.selector.decide(&metcf, &self.config.device)
        };
        let choice = self.config.force.unwrap_or(decision.choice);
        let _phase = dtc_telemetry::span("lower");
        let kernel = build_kernel(choice, metcf, distinct, &self.config);
        Ok(DtcSpmm {
            perm,
            kernel,
            decision,
            choice,
            key,
            working_key,
            config: self.config,
            trace_cache: Mutex::new(TraceCache::new()),
        })
    }
}

/// Lowers the chosen runtime kernel over an ME-TCF build (shared by the
/// cold pipeline and the delta-update path).
fn build_kernel(
    choice: KernelChoice,
    metcf: MeTcfMatrix,
    distinct: usize,
    config: &EngineConfig,
) -> DtcAnyKernel {
    match choice {
        KernelChoice::Base => DtcAnyKernel::Base(
            DtcKernel::from_metcf(metcf, distinct, config.opts).with_precision(config.precision),
        ),
        KernelChoice::Balanced => DtcAnyKernel::Balanced(
            BalancedDtcKernel::from_metcf(metcf, distinct, config.opts)
                .with_precision(config.precision),
        ),
    }
}

/// Knobs governing how [`DtcSpmm::apply_delta`] reacts to an edit batch.
///
/// Kept outside [`EngineConfig`] on purpose: the policy only shapes *when*
/// re-selection runs, never the numerical result, so it must not move the
/// config fingerprint serving pools key on.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaPolicy {
    /// Re-run the simulation-based Selector when the edit's relative
    /// row-length-stat drift ([`DeltaReport::drift`]) exceeds this.
    /// Value-only updates drift `0.0` and never re-select; the default
    /// re-selects once ~5% of the non-zero/block mass has moved.
    pub reselect_drift: f64,
}

impl Default for DeltaPolicy {
    fn default() -> Self {
        DeltaPolicy { reselect_drift: 0.05 }
    }
}

/// What one [`DtcSpmm::apply_delta`] call did.
#[derive(Debug, Clone)]
pub struct DeltaOutcome {
    /// Per-window before/after stats from the format-level patch.
    pub report: DeltaReport,
    /// The relative stat drift that was compared against the policy.
    pub drift: f64,
    /// Whether the Selector re-ran (drift above the policy threshold).
    pub reselected: bool,
    /// The kernel in use after the update (unchanged unless `reselected`).
    pub choice: KernelChoice,
}

#[derive(Debug, Clone)]
enum DtcAnyKernel {
    Base(DtcKernel),
    Balanced(BalancedDtcKernel),
}

impl DtcAnyKernel {
    fn as_kernel(&self) -> &dyn SpmmKernel {
        match self {
            DtcAnyKernel::Base(k) => k,
            DtcAnyKernel::Balanced(k) => k,
        }
    }
}

/// The assembled DTC-SpMM engine: holds the (possibly reordered) ME-TCF
/// matrix, the Selector decision, and the chosen runtime kernel.
///
/// `execute` returns the output in the *original* row order — reordering is
/// internal, exactly like the real library.
#[derive(Debug)]
pub struct DtcSpmm {
    perm: Option<Vec<usize>>,
    kernel: DtcAnyKernel,
    decision: SelectorDecision,
    choice: KernelChoice,
    /// Identity of the source matrix (pre-reordering), reported through
    /// [`SpmmEngine::key`] so serving pools recognize the matrix.
    key: KeyMaterial,
    /// Identity of the *working* (post-reordering) matrix — the one the
    /// conversion cache is keyed on. Equals `key` when reordering is off.
    working_key: KeyMaterial,
    /// The configuration this engine was built under, retained so delta
    /// updates can re-select and re-lower without the builder.
    config: EngineConfig,
    /// Memoized kernel traces, keyed by (N, device fingerprint,
    /// record_b_addrs): repeated `simulate` calls on one engine re-lower
    /// the kernel zero times. Two-tier: a lossy verified front slot in
    /// front of the exact map.
    trace_cache: Mutex<TraceCache>,
}

impl DtcSpmm {
    /// Starts building an engine.
    pub fn builder() -> DtcSpmmBuilder {
        DtcSpmmBuilder::default()
    }

    /// Convenience: default pipeline (no reordering, Selector on,
    /// all kernel optimizations).
    pub fn new(a: &CsrMatrix) -> Self {
        Self::builder().build(a)
    }

    /// The Selector's decision record.
    pub fn decision(&self) -> &SelectorDecision {
        &self.decision
    }

    /// The kernel the Selector (or `force_kernel`) chose.
    pub fn choice(&self) -> KernelChoice {
        self.choice
    }

    /// The row permutation applied by reordering, if any.
    pub fn permutation(&self) -> Option<&[usize]> {
        self.perm.as_deref()
    }

    /// The ME-TCF representation in use.
    pub fn metcf(&self) -> &MeTcfMatrix {
        match &self.kernel {
            DtcAnyKernel::Base(k) => k.metcf(),
            DtcAnyKernel::Balanced(k) => k.metcf(),
        }
    }

    /// Identity of the source matrix this engine was built from.
    pub fn key(&self) -> &KeyMaterial {
        &self.key
    }

    // Inherent mirrors of the shared surface. `DtcSpmm` implements both
    // `SpmmKernel` (kernel-level, `FormatError`) and `SpmmEngine`
    // (engine-level, `DtcError`); inherent methods win method resolution,
    // so call sites with both traits in scope stay unambiguous.

    /// Display name of the chosen kernel.
    pub fn name(&self) -> &str {
        SpmmKernel::name(self)
    }

    /// Rows of the sparse operand.
    pub fn rows(&self) -> usize {
        self.kernel.as_kernel().rows()
    }

    /// Columns of the sparse operand.
    pub fn cols(&self) -> usize {
        self.kernel.as_kernel().cols()
    }

    /// Structural non-zeros of the sparse operand.
    pub fn nnz(&self) -> usize {
        self.kernel.as_kernel().nnz()
    }

    /// Simulated performance for an `N`-column dense operand.
    pub fn simulate(&self, n: usize, device: &Device) -> dtc_sim::SimReport {
        SpmmKernel::simulate(self, n, device)
    }

    /// Lowered per-thread-block trace for an `N`-column dense operand.
    pub fn trace(&self, n: usize, device: &Device, record_b_addrs: bool) -> KernelTrace {
        SpmmKernel::trace(self, n, device, record_b_addrs)
    }

    /// Exact SpMM `C = A × B`, returning the unified [`DtcError`].
    ///
    /// This inherent method is the engine-level entry point (it shadows
    /// the [`SpmmKernel`] trait method of the same name, which keeps the
    /// kernel-level [`FormatError`] signature for `dyn SpmmKernel` users).
    ///
    /// # Errors
    ///
    /// [`DtcError::Format`] on dimension mismatches.
    pub fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, DtcError> {
        self.execute_inner(b).map_err(DtcError::from)
    }

    /// The engine configuration this engine was built under.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Applies a batch of COO edits to the engine **in place**: the
    /// resident ME-TCF is patched window-locally (bitwise identical to a
    /// full rebuild over the edited matrix), the kernel is re-lowered over
    /// the patched format, and the simulation-based Selector re-runs only
    /// when the edit's row-length-stat drift exceeds
    /// [`DeltaPolicy::reselect_drift`] — the Acc-SpMM/FlashSparse insight
    /// that kernel choice keys on row-length statistics, so small edits
    /// need not pay the makespan replay.
    ///
    /// Edits are expressed in **original** row coordinates; engines built
    /// with reordering remap them through the frozen permutation (the
    /// permutation itself is never recomputed by a delta).
    ///
    /// Invalidation contract: before the engine mutates, every process-wide
    /// cache entry derived from the pre-edit matrix is retired —
    /// conversion-cache entries (front tier purged **by key**, exact tier
    /// by stored material) under both the original and working identities,
    /// and this engine's whole trace cache (its keys carry no matrix
    /// identity, so every memoized trace and the duration classes interned
    /// inside them are stale). The cache is purged, **not** re-seeded: a
    /// post-edit lookup either misses (and reconverts) or was admitted
    /// after the edit — it can never serve a pre-edit artifact.
    ///
    /// # Errors
    ///
    /// [`DtcError::Format`] when an edit is out of bounds or the edited
    /// matrix would overflow ME-TCF's `u32` offsets; the engine (and every
    /// cache) is unchanged on error.
    pub fn apply_delta(
        &mut self,
        delta: &MatrixDelta,
        policy: &DeltaPolicy,
    ) -> Result<DeltaOutcome, DtcError> {
        let _span = dtc_telemetry::span("pipeline.delta");
        // Remap edit rows into the engine's internal (reordered) row space.
        let remapped;
        let effective: &MatrixDelta = match &self.perm {
            None => delta,
            Some(perm) => {
                let mut inv = vec![0usize; perm.len()];
                for (new_row, &orig_row) in perm.iter().enumerate() {
                    inv[orig_row] = new_row;
                }
                let mut d = MatrixDelta::new();
                for (row, col, op) in delta.iter() {
                    let Some(&new_row) = inv.get(row) else {
                        return Err(DtcError::Format(FormatError::IndexOutOfBounds {
                            row,
                            col,
                            rows: perm.len(),
                            cols: self.cols(),
                        }));
                    };
                    match op {
                        Some(v) => d.insert(new_row, col, v),
                        None => d.delete(new_row, col),
                    }
                }
                remapped = d;
                &remapped
            }
        };

        // Patch a copy of the resident format; `self` is untouched until
        // every fallible step has succeeded.
        let mut patched = self.metcf().clone();
        let report = patched.apply_delta(effective)?;

        // New identities and per-matrix statistics, straight from the
        // patched format. The common (unreordered) path never materializes
        // a CSR: `of_metcf` hashes the reconstructed CSR streams directly
        // and `distinct_cols` reads the per-window column maps, which is
        // what keeps a single-window delta an order of magnitude cheaper
        // than a rebuild. Reordered engines still pay one `to_csr` to key
        // the original-order matrix.
        let new_working_key = KeyMaterial::of_metcf(&patched);
        let new_key = match &self.perm {
            None => new_working_key.clone(),
            Some(perm) => {
                let working = patched.to_csr()?;
                let mut inv = vec![0usize; perm.len()];
                for (new_row, &orig_row) in perm.iter().enumerate() {
                    inv[orig_row] = new_row;
                }
                KeyMaterial::of(&working.permute_rows(&inv))
            }
        };
        let distinct = patched.distinct_cols();

        // Invalidate every layer keyed on the pre-edit identity. Purge
        // only — no re-seeding — so the next cold build over the edited
        // matrix is a miss, never a stale hit.
        crate::cache::invalidate_conversion(&self.working_key);
        if self.key != self.working_key {
            crate::cache::invalidate_conversion(&self.key);
        }
        {
            let mut cache = self.trace_cache.lock().unwrap();
            *cache = TraceCache::new();
            crate::telemetry::trace_cache_invalidations().incr();
        }

        // Drift-gated re-selection: below the threshold the previous
        // decision (and its makespan model) is reused as-is.
        let drift = report.drift();
        let reselected = drift > policy.reselect_drift;
        if reselected {
            self.decision = self.config.selector.decide(&patched, &self.config.device);
            self.choice = self.config.force.unwrap_or(self.decision.choice);
            crate::telemetry::delta_reselects().incr();
        }
        self.kernel = build_kernel(self.choice, patched, distinct, &self.config);
        self.key = new_key;
        self.working_key = new_working_key;
        crate::telemetry::delta_applies().incr();
        Ok(DeltaOutcome { report, drift, reselected, choice: self.choice })
    }

    /// The shared execution path: run the chosen kernel, then undo the row
    /// permutation so callers see original row order.
    fn execute_inner(&self, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        let c = self.kernel.as_kernel().execute(b)?;
        Ok(match &self.perm {
            None => c,
            Some(perm) => {
                let mut out = DenseMatrix::zeros(c.rows(), c.cols());
                for (new_row, &orig_row) in perm.iter().enumerate() {
                    out.row_mut(orig_row).copy_from_slice(c.row(new_row));
                }
                out
            }
        })
    }
}

impl SpmmKernel for DtcSpmm {
    fn name(&self) -> &str {
        match self.choice {
            KernelChoice::Base => "DTC-SpMM",
            KernelChoice::Balanced => "DTC-SpMM-balanced",
        }
    }

    fn rows(&self) -> usize {
        self.kernel.as_kernel().rows()
    }

    fn cols(&self) -> usize {
        self.kernel.as_kernel().cols()
    }

    fn nnz(&self) -> usize {
        self.kernel.as_kernel().nnz()
    }

    fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        self.execute_inner(b)
    }

    fn trace(&self, n: usize, device: &Device, record_b_addrs: bool) -> KernelTrace {
        // Structural fingerprint (not a Debug-string hash): stable under
        // field reordering and allocation-free, so a modified clone of a
        // preset never aliases the preset's cached traces.
        let key = (n, device.fingerprint(), record_b_addrs);
        let fh = trace_front_hash(&key);
        {
            let mut cache = self.trace_cache.lock().unwrap();
            if let Some(hit) = cache.front.get(fh, &key) {
                crate::telemetry::trace_cache_hits().incr();
                return hit;
            }
            if let Some(hit) = cache.exact.get(&key).cloned() {
                crate::telemetry::trace_cache_hits().incr();
                // The refill clone is real work (a trace deep-copy), so pay
                // it only when the front tier can actually store it.
                if dtc_par::front_tier_enabled() {
                    cache.front.insert(fh, key, hit.clone());
                }
                return hit;
            }
        }
        crate::telemetry::trace_cache_misses().incr();
        let _lower = dtc_telemetry::span("pipeline.trace");
        let trace = self.kernel.as_kernel().trace(n, device, record_b_addrs);
        let mut cache = self.trace_cache.lock().unwrap();
        if dtc_par::front_tier_enabled() {
            cache.front.insert(fh, key, trace.clone());
        }
        cache.exact.insert(key, trace.clone());
        trace
    }
}

impl SpmmEngine for DtcSpmm {
    fn name(&self) -> &str {
        SpmmKernel::name(self)
    }

    fn rows(&self) -> usize {
        SpmmKernel::rows(self)
    }

    fn cols(&self) -> usize {
        SpmmKernel::cols(self)
    }

    fn nnz(&self) -> usize {
        SpmmKernel::nnz(self)
    }

    fn key(&self) -> &KeyMaterial {
        &self.key
    }

    fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, DtcError> {
        DtcSpmm::execute(self, b)
    }

    fn trace(&self, n: usize, device: &Device, record_b_addrs: bool) -> KernelTrace {
        SpmmKernel::trace(self, n, device, record_b_addrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::{community, long_row, uniform};
    use dtc_formats::tf32::TF32_UNIT_ROUNDOFF;

    #[test]
    fn pipeline_output_in_original_row_order() {
        let a = community(200, 200, 10, 8.0, 0.9, 101);
        let b = DenseMatrix::from_fn(200, 8, |r, c| ((r * 3 + c) % 7) as f32 * 0.5);
        let reference = a.spmm_reference(&b).unwrap();
        let engine = DtcSpmm::builder().reorder(true).build(&a);
        assert!(engine.permutation().is_some());
        let c = engine.execute(&b).unwrap();
        assert!(c.max_abs_diff(&reference) < 40.0 * TF32_UNIT_ROUNDOFF);
    }

    #[test]
    fn selector_picks_balanced_for_skew() {
        let a = long_row(640, 4096, 200.0, 2.0, 102);
        let engine = DtcSpmm::new(&a);
        assert_eq!(engine.choice(), KernelChoice::Balanced);
        assert!(engine.decision().approximation_ratio > 1.2);
    }

    #[test]
    fn force_kernel_overrides_selector() {
        let a = uniform(256, 256, 1024, 103);
        let engine = DtcSpmm::builder().force_kernel(KernelChoice::Balanced).build(&a);
        assert_eq!(engine.choice(), KernelChoice::Balanced);
        assert_eq!(engine.name(), "DTC-SpMM-balanced");
    }

    #[test]
    fn reordering_does_not_change_numerics() {
        let a = community(320, 320, 16, 10.0, 0.9, 104);
        let b = DenseMatrix::from_fn(320, 4, |r, _| (r % 11) as f32 * 0.1);
        let plain = DtcSpmm::builder().reorder(false).build(&a).execute(&b).unwrap();
        let reordered = DtcSpmm::builder().reorder(true).build(&a).execute(&b).unwrap();
        assert!(plain.max_abs_diff(&reordered) < 1e-4);
    }

    #[test]
    fn modified_device_clone_never_aliases_trace_cache_key() {
        // Regression guard for the old Debug-string fingerprint: a preset
        // clone with one field nudged must miss the preset's cached trace
        // and produce a genuinely different simulation.
        let a = uniform(256, 256, 2048, 106);
        let engine = DtcSpmm::new(&a);
        let preset = Device::rtx4090();
        let mut tweaked = preset.clone();
        tweaked.sm_clock_ghz /= 2.0;
        assert_ne!(preset.fingerprint(), tweaked.fingerprint());
        let _preset_trace = engine.trace(64, &preset, false);
        let _tweaked_trace = engine.trace(64, &tweaked, false);
        // Each device fingerprint must own its own cache slot (the global
        // hit/miss counters are shared across tests, so inspect the
        // engine's private cache directly).
        assert_eq!(engine.trace_cache.lock().unwrap().exact.len(), 2);
        // And the cached entries really are distinct simulations.
        let t_preset = engine.simulate(64, &preset).time_ms;
        let t_tweaked = engine.simulate(64, &tweaked).time_ms;
        assert!(t_tweaked > t_preset, "halving the clock must slow the sim");
    }

    #[test]
    fn apply_delta_matches_fresh_build_bitwise() {
        // Engine-level equivalence: patching in place must give the same
        // ME-TCF (and the same execute output, bitwise) as building a fresh
        // engine over the edited matrix.
        let a = uniform(320, 320, 2600, 210);
        let mut delta = MatrixDelta::new();
        for i in 0..40 {
            let (r, c) = ((i * 17) % 320, (i * 31) % 320);
            if i % 4 == 0 {
                delta.delete(r, c);
            } else {
                delta.insert(r, c, i as f32 * 0.25 - 3.0);
            }
        }
        let mut engine = DtcSpmm::new(&a);
        let outcome = engine.apply_delta(&delta, &DeltaPolicy::default()).unwrap();
        let edited = delta.apply_to_csr(&a).unwrap();
        let fresh = DtcSpmm::new(&edited);
        assert_eq!(engine.metcf(), fresh.metcf(), "patched format must equal rebuild");
        assert_eq!(engine.key(), fresh.key(), "post-edit identity must equal rebuild");
        assert_eq!(outcome.report.nnz_after, edited.nnz());
        let b = DenseMatrix::from_fn(320, 8, |r, c| ((r * 7 + c) % 13) as f32 - 6.0);
        let via_delta = engine.execute(&b).unwrap();
        let via_fresh = fresh.execute(&b).unwrap();
        assert_eq!(via_delta.as_slice(), via_fresh.as_slice(), "execution must be bitwise equal");
    }

    #[test]
    fn apply_delta_remaps_rows_through_frozen_permutation() {
        let a = community(320, 320, 16, 10.0, 0.9, 211);
        let mut engine = DtcSpmm::builder().reorder(true).build(&a);
        let perm_before = engine.permutation().unwrap().to_vec();
        let mut delta = MatrixDelta::new();
        delta.insert(5, 7, 2.5);
        delta.delete(100, 100);
        delta.insert(200, 3, -1.0);
        engine.apply_delta(&delta, &DeltaPolicy::default()).unwrap();
        assert_eq!(engine.permutation().unwrap(), perm_before, "permutation is frozen");
        // Against the reference: edits were expressed in original rows.
        let edited = delta.apply_to_csr(&a).unwrap();
        let b = DenseMatrix::from_fn(320, 4, |r, _| (r % 9) as f32 * 0.5);
        let got = engine.execute(&b).unwrap();
        let want = edited.spmm_reference(&b).unwrap();
        assert!(got.max_abs_diff(&want) < 40.0 * TF32_UNIT_ROUNDOFF);
        // And the engine's key is the edited matrix's original-order identity.
        assert_eq!(*engine.key(), KeyMaterial::of(&edited));
    }

    #[test]
    fn apply_delta_reselects_only_past_drift_threshold() {
        let a = uniform(640, 640, 5000, 212);
        let mut engine = DtcSpmm::new(&a);

        // A value-only update: zero drift, never reselects.
        let mut tiny = MatrixDelta::new();
        let (r0, c0, _) = a.iter().next().unwrap();
        tiny.update(r0, c0, 42.0);
        let out = engine.apply_delta(&tiny, &DeltaPolicy::default()).unwrap();
        assert_eq!(out.drift, 0.0);
        assert!(!out.reselected);

        // A heavy reshape under a zero threshold must reselect.
        let mut heavy = MatrixDelta::new();
        for r in 0..640 {
            for c in 0..4 {
                heavy.insert(r, (r + c * 160) % 640, 1.0);
            }
        }
        let out = engine.apply_delta(&heavy, &DeltaPolicy { reselect_drift: 0.0 }).unwrap();
        assert!(out.drift > 0.0);
        assert!(out.reselected);

        // The same edit under an infinite threshold keeps the old decision.
        let mut engine2 = DtcSpmm::new(&a);
        let out2 = engine2.apply_delta(&heavy, &DeltaPolicy { reselect_drift: f64::MAX }).unwrap();
        assert!(!out2.reselected);
    }

    #[test]
    fn apply_delta_out_of_bounds_leaves_engine_unchanged() {
        let a = uniform(160, 160, 900, 213);
        let mut engine = DtcSpmm::new(&a);
        let key_before = engine.key().clone();
        let metcf_before = engine.metcf().clone();
        let mut delta = MatrixDelta::new();
        delta.insert(0, 1, 1.0);
        delta.insert(0, 500, 1.0); // col out of bounds
        let err = engine.apply_delta(&delta, &DeltaPolicy::default()).unwrap_err();
        assert!(matches!(err, DtcError::Format(FormatError::IndexOutOfBounds { .. })));
        assert_eq!(*engine.key(), key_before);
        assert_eq!(*engine.metcf(), metcf_before);
    }

    #[test]
    fn apply_delta_purges_the_pre_edit_conversion() {
        let a = uniform(288, 288, 2000, 214);
        let mut engine = DtcSpmm::new(&a);
        let pre_key = engine.key().clone();
        let mut delta = MatrixDelta::new();
        delta.insert(17, 200, 3.5);
        engine.apply_delta(&delta, &DeltaPolicy::default()).unwrap();
        // The pre-edit conversion is gone: invalidating it again finds
        // nothing, and the engine's key advanced to the edited identity.
        assert_eq!(crate::cache::invalidate_conversion(&pre_key), 0);
        let edited = delta.apply_to_csr(&a).unwrap();
        assert_eq!(engine.key(), &KeyMaterial::of(&edited));
        // Purge-only contract: nothing was re-admitted under the new key;
        // a cold build over the edited matrix reconverts and agrees.
        assert_eq!(crate::cache::invalidate_conversion(&KeyMaterial::of(&edited)), 0);
        let fresh = DtcSpmm::new(&edited);
        assert_eq!(fresh.metcf(), engine.metcf());
    }

    #[test]
    fn apply_delta_drops_stale_traces() {
        // The trace-cache key carries no matrix identity, so an in-place
        // edit makes every memoized trace stale; post-edit traces must be
        // re-lowered from the patched kernel.
        let a = uniform(256, 256, 2048, 215);
        let device = Device::rtx4090();
        let mut engine = DtcSpmm::new(&a);
        let _warm = engine.trace(32, &device, false);
        assert_eq!(engine.trace_cache.lock().unwrap().exact.len(), 1);
        let mut delta = MatrixDelta::new();
        for c in 0..64 {
            delta.insert(3, c * 4, 1.0);
        }
        engine.apply_delta(&delta, &DeltaPolicy::default()).unwrap();
        assert_eq!(
            engine.trace_cache.lock().unwrap().exact.len(),
            0,
            "pre-edit traces must not survive the delta"
        );
        let post = engine.trace(32, &device, false);
        let fresh = DtcSpmm::new(&delta.apply_to_csr(&a).unwrap());
        let fresh_trace = fresh.trace(32, &device, false);
        assert_eq!(post.iter_tbs().count(), fresh_trace.iter_tbs().count());
    }

    #[test]
    fn reordering_reduces_tc_blocks_on_community_matrices() {
        let a = community(640, 640, 32, 12.0, 0.92, 105);
        let plain = DtcSpmm::builder().reorder(false).build(&a);
        let reordered = DtcSpmm::builder().reorder(true).build(&a);
        assert!(
            reordered.metcf().num_tc_blocks() < plain.metcf().num_tc_blocks(),
            "reordered={} plain={}",
            reordered.metcf().num_tc_blocks(),
            plain.metcf().num_tc_blocks()
        );
    }
}
