//! The end-to-end DTC-SpMM pipeline (Fig 4): offline TCU-Cache-Aware
//! reordering → ME-TCF conversion → simulation-based selection → runtime
//! kernel.

use crate::cache::KeyMaterial;
use crate::config::EngineConfig;
use crate::engine::SpmmEngine;
use crate::error::DtcError;
use crate::kernel::{BalancedDtcKernel, DtcKernel, KernelOpts};
use crate::selector::{KernelChoice, Selector, SelectorDecision};
use dtc_baselines::SpmmKernel;
use dtc_formats::{CsrMatrix, DenseMatrix, FormatError, MeTcfMatrix, Precision};
use dtc_par::hash::fnv1a;
use dtc_par::FrontTier;
use dtc_reorder::{Reorderer, TcaReorderer};
use dtc_sim::{Device, KernelTrace};
use std::collections::HashMap;
use std::sync::Mutex;

/// Trace-cache key: (N, device fingerprint, record_b_addrs).
type TraceKey = (usize, u64, bool);

/// Per-engine two-tier trace cache: a lossy [`FrontTier`] (verified by the
/// full [`TraceKey`]) in front of the exact map. Both under the engine's
/// existing `Mutex`.
#[derive(Debug)]
struct TraceCache {
    front: FrontTier<TraceKey, KernelTrace>,
    exact: HashMap<TraceKey, KernelTrace>,
}

impl TraceCache {
    fn new() -> Self {
        // Engines see a handful of (N, device) pairs; 64 slots is plenty.
        TraceCache { front: FrontTier::new("trace", 64), exact: HashMap::new() }
    }
}

/// Word-wise FNV over the trace key for the front-tier slot.
fn trace_front_hash(key: &TraceKey) -> u64 {
    fnv1a(dtc_par::hash::FNV_OFFSET, [key.0 as u64, key.1, key.2 as u64].into_iter())
}

/// Builder for a [`DtcSpmm`] engine: a shared [`EngineConfig`] (every
/// hashable knob) plus the boxed reordering algorithm.
pub struct DtcSpmmBuilder {
    config: EngineConfig,
    reorderer: Box<dyn Reorderer>,
}

impl std::fmt::Debug for DtcSpmmBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DtcSpmmBuilder")
            .field("config", &self.config)
            .field("reorderer", &self.reorderer.name())
            .finish()
    }
}

impl Default for DtcSpmmBuilder {
    fn default() -> Self {
        DtcSpmmBuilder {
            config: EngineConfig::default(),
            reorderer: Box::new(TcaReorderer::default()),
        }
    }
}

impl DtcSpmmBuilder {
    /// Replaces the whole shared configuration at once (the serving layer
    /// builds pool engines from a tenant's [`EngineConfig`] directly).
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// The current shared configuration.
    pub fn engine_config(&self) -> &EngineConfig {
        &self.config
    }

    /// Enables the (optional, offline) TCU-Cache-Aware reordering step.
    pub fn reorder(mut self, enabled: bool) -> Self {
        self.config.reorder = enabled;
        self
    }

    /// Replaces the reordering algorithm (implies `reorder(true)`).
    pub fn reorderer(mut self, r: Box<dyn Reorderer>) -> Self {
        self.reorderer = r;
        self.config.reorder = true;
        self
    }

    /// Sets the runtime-kernel optimization flags.
    pub fn opts(mut self, opts: KernelOpts) -> Self {
        self.config.opts = opts;
        self
    }

    /// Sets the Tensor-Core input precision (default TF32; §7 extension).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.config.precision = precision;
        self
    }

    /// Sets the Selector configuration.
    pub fn selector(mut self, selector: Selector) -> Self {
        self.config.selector = selector;
        self
    }

    /// Sets the target device for the Selector's makespan model.
    pub fn device(mut self, device: Device) -> Self {
        self.config.device = device;
        self
    }

    /// Bypasses the Selector with a fixed kernel choice.
    pub fn force_kernel(mut self, choice: KernelChoice) -> Self {
        self.config.force = Some(choice);
        self
    }

    /// Runs the offline pipeline for a matrix and returns the engine.
    ///
    /// ME-TCF conversion goes through the process-wide [`crate::cache`]:
    /// rebuilding an engine over a structurally identical matrix reuses the
    /// previous conversion (observable via
    /// [`crate::conversion_cache_stats`]).
    pub fn build(self, a: &CsrMatrix) -> DtcSpmm {
        let _build = dtc_telemetry::span("pipeline.build");
        crate::telemetry::pipeline_builds().incr();
        let key = KeyMaterial::of(a);
        let (perm, working) = {
            let _phase = dtc_telemetry::span("reorder");
            if self.config.reorder {
                let perm = self.reorderer.reorder(a);
                let m = a.permute_rows(&perm);
                (Some(perm), m)
            } else {
                (None, a.clone())
            }
        };
        let converted = {
            let _phase = dtc_telemetry::span("convert");
            crate::cache::metcf_for(&working)
        };
        let metcf = converted.metcf.clone();
        let distinct = converted.distinct_cols;
        let decision = {
            let _phase = dtc_telemetry::span("select");
            self.config.selector.decide(&metcf, &self.config.device)
        };
        let choice = self.config.force.unwrap_or(decision.choice);
        let _phase = dtc_telemetry::span("lower");
        let kernel: DtcAnyKernel = match choice {
            KernelChoice::Base => DtcAnyKernel::Base(
                DtcKernel::from_metcf(metcf, distinct, self.config.opts)
                    .with_precision(self.config.precision),
            ),
            KernelChoice::Balanced => DtcAnyKernel::Balanced(
                BalancedDtcKernel::from_metcf(metcf, distinct, self.config.opts)
                    .with_precision(self.config.precision),
            ),
        };
        DtcSpmm { perm, kernel, decision, choice, key, trace_cache: Mutex::new(TraceCache::new()) }
    }
}

#[derive(Debug, Clone)]
enum DtcAnyKernel {
    Base(DtcKernel),
    Balanced(BalancedDtcKernel),
}

impl DtcAnyKernel {
    fn as_kernel(&self) -> &dyn SpmmKernel {
        match self {
            DtcAnyKernel::Base(k) => k,
            DtcAnyKernel::Balanced(k) => k,
        }
    }
}

/// The assembled DTC-SpMM engine: holds the (possibly reordered) ME-TCF
/// matrix, the Selector decision, and the chosen runtime kernel.
///
/// `execute` returns the output in the *original* row order — reordering is
/// internal, exactly like the real library.
#[derive(Debug)]
pub struct DtcSpmm {
    perm: Option<Vec<usize>>,
    kernel: DtcAnyKernel,
    decision: SelectorDecision,
    choice: KernelChoice,
    /// Identity of the source matrix (pre-reordering), reported through
    /// [`SpmmEngine::key`] so serving pools recognize the matrix.
    key: KeyMaterial,
    /// Memoized kernel traces, keyed by (N, device fingerprint,
    /// record_b_addrs): repeated `simulate` calls on one engine re-lower
    /// the kernel zero times. Two-tier: a lossy verified front slot in
    /// front of the exact map.
    trace_cache: Mutex<TraceCache>,
}

impl DtcSpmm {
    /// Starts building an engine.
    pub fn builder() -> DtcSpmmBuilder {
        DtcSpmmBuilder::default()
    }

    /// Convenience: default pipeline (no reordering, Selector on,
    /// all kernel optimizations).
    pub fn new(a: &CsrMatrix) -> Self {
        Self::builder().build(a)
    }

    /// The Selector's decision record.
    pub fn decision(&self) -> &SelectorDecision {
        &self.decision
    }

    /// The kernel the Selector (or `force_kernel`) chose.
    pub fn choice(&self) -> KernelChoice {
        self.choice
    }

    /// The row permutation applied by reordering, if any.
    pub fn permutation(&self) -> Option<&[usize]> {
        self.perm.as_deref()
    }

    /// The ME-TCF representation in use.
    pub fn metcf(&self) -> &MeTcfMatrix {
        match &self.kernel {
            DtcAnyKernel::Base(k) => k.metcf(),
            DtcAnyKernel::Balanced(k) => k.metcf(),
        }
    }

    /// Identity of the source matrix this engine was built from.
    pub fn key(&self) -> &KeyMaterial {
        &self.key
    }

    // Inherent mirrors of the shared surface. `DtcSpmm` implements both
    // `SpmmKernel` (kernel-level, `FormatError`) and `SpmmEngine`
    // (engine-level, `DtcError`); inherent methods win method resolution,
    // so call sites with both traits in scope stay unambiguous.

    /// Display name of the chosen kernel.
    pub fn name(&self) -> &str {
        SpmmKernel::name(self)
    }

    /// Rows of the sparse operand.
    pub fn rows(&self) -> usize {
        self.kernel.as_kernel().rows()
    }

    /// Columns of the sparse operand.
    pub fn cols(&self) -> usize {
        self.kernel.as_kernel().cols()
    }

    /// Structural non-zeros of the sparse operand.
    pub fn nnz(&self) -> usize {
        self.kernel.as_kernel().nnz()
    }

    /// Simulated performance for an `N`-column dense operand.
    pub fn simulate(&self, n: usize, device: &Device) -> dtc_sim::SimReport {
        SpmmKernel::simulate(self, n, device)
    }

    /// Lowered per-thread-block trace for an `N`-column dense operand.
    pub fn trace(&self, n: usize, device: &Device, record_b_addrs: bool) -> KernelTrace {
        SpmmKernel::trace(self, n, device, record_b_addrs)
    }

    /// Exact SpMM `C = A × B`, returning the unified [`DtcError`].
    ///
    /// This inherent method is the engine-level entry point (it shadows
    /// the [`SpmmKernel`] trait method of the same name, which keeps the
    /// kernel-level [`FormatError`] signature for `dyn SpmmKernel` users).
    ///
    /// # Errors
    ///
    /// [`DtcError::Format`] on dimension mismatches.
    pub fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, DtcError> {
        self.execute_inner(b).map_err(DtcError::from)
    }

    /// The shared execution path: run the chosen kernel, then undo the row
    /// permutation so callers see original row order.
    fn execute_inner(&self, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        let c = self.kernel.as_kernel().execute(b)?;
        Ok(match &self.perm {
            None => c,
            Some(perm) => {
                let mut out = DenseMatrix::zeros(c.rows(), c.cols());
                for (new_row, &orig_row) in perm.iter().enumerate() {
                    out.row_mut(orig_row).copy_from_slice(c.row(new_row));
                }
                out
            }
        })
    }
}

impl SpmmKernel for DtcSpmm {
    fn name(&self) -> &str {
        match self.choice {
            KernelChoice::Base => "DTC-SpMM",
            KernelChoice::Balanced => "DTC-SpMM-balanced",
        }
    }

    fn rows(&self) -> usize {
        self.kernel.as_kernel().rows()
    }

    fn cols(&self) -> usize {
        self.kernel.as_kernel().cols()
    }

    fn nnz(&self) -> usize {
        self.kernel.as_kernel().nnz()
    }

    fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        self.execute_inner(b)
    }

    fn trace(&self, n: usize, device: &Device, record_b_addrs: bool) -> KernelTrace {
        // Structural fingerprint (not a Debug-string hash): stable under
        // field reordering and allocation-free, so a modified clone of a
        // preset never aliases the preset's cached traces.
        let key = (n, device.fingerprint(), record_b_addrs);
        let fh = trace_front_hash(&key);
        {
            let mut cache = self.trace_cache.lock().unwrap();
            if let Some(hit) = cache.front.get(fh, &key) {
                crate::telemetry::trace_cache_hits().incr();
                return hit;
            }
            if let Some(hit) = cache.exact.get(&key).cloned() {
                crate::telemetry::trace_cache_hits().incr();
                // The refill clone is real work (a trace deep-copy), so pay
                // it only when the front tier can actually store it.
                if dtc_par::front_tier_enabled() {
                    cache.front.insert(fh, key, hit.clone());
                }
                return hit;
            }
        }
        crate::telemetry::trace_cache_misses().incr();
        let _lower = dtc_telemetry::span("pipeline.trace");
        let trace = self.kernel.as_kernel().trace(n, device, record_b_addrs);
        let mut cache = self.trace_cache.lock().unwrap();
        if dtc_par::front_tier_enabled() {
            cache.front.insert(fh, key, trace.clone());
        }
        cache.exact.insert(key, trace.clone());
        trace
    }
}

impl SpmmEngine for DtcSpmm {
    fn name(&self) -> &str {
        SpmmKernel::name(self)
    }

    fn rows(&self) -> usize {
        SpmmKernel::rows(self)
    }

    fn cols(&self) -> usize {
        SpmmKernel::cols(self)
    }

    fn nnz(&self) -> usize {
        SpmmKernel::nnz(self)
    }

    fn key(&self) -> &KeyMaterial {
        &self.key
    }

    fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, DtcError> {
        DtcSpmm::execute(self, b)
    }

    fn trace(&self, n: usize, device: &Device, record_b_addrs: bool) -> KernelTrace {
        SpmmKernel::trace(self, n, device, record_b_addrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::{community, long_row, uniform};
    use dtc_formats::tf32::TF32_UNIT_ROUNDOFF;

    #[test]
    fn pipeline_output_in_original_row_order() {
        let a = community(200, 200, 10, 8.0, 0.9, 101);
        let b = DenseMatrix::from_fn(200, 8, |r, c| ((r * 3 + c) % 7) as f32 * 0.5);
        let reference = a.spmm_reference(&b).unwrap();
        let engine = DtcSpmm::builder().reorder(true).build(&a);
        assert!(engine.permutation().is_some());
        let c = engine.execute(&b).unwrap();
        assert!(c.max_abs_diff(&reference) < 40.0 * TF32_UNIT_ROUNDOFF);
    }

    #[test]
    fn selector_picks_balanced_for_skew() {
        let a = long_row(640, 4096, 200.0, 2.0, 102);
        let engine = DtcSpmm::new(&a);
        assert_eq!(engine.choice(), KernelChoice::Balanced);
        assert!(engine.decision().approximation_ratio > 1.2);
    }

    #[test]
    fn force_kernel_overrides_selector() {
        let a = uniform(256, 256, 1024, 103);
        let engine = DtcSpmm::builder().force_kernel(KernelChoice::Balanced).build(&a);
        assert_eq!(engine.choice(), KernelChoice::Balanced);
        assert_eq!(engine.name(), "DTC-SpMM-balanced");
    }

    #[test]
    fn reordering_does_not_change_numerics() {
        let a = community(320, 320, 16, 10.0, 0.9, 104);
        let b = DenseMatrix::from_fn(320, 4, |r, _| (r % 11) as f32 * 0.1);
        let plain = DtcSpmm::builder().reorder(false).build(&a).execute(&b).unwrap();
        let reordered = DtcSpmm::builder().reorder(true).build(&a).execute(&b).unwrap();
        assert!(plain.max_abs_diff(&reordered) < 1e-4);
    }

    #[test]
    fn modified_device_clone_never_aliases_trace_cache_key() {
        // Regression guard for the old Debug-string fingerprint: a preset
        // clone with one field nudged must miss the preset's cached trace
        // and produce a genuinely different simulation.
        let a = uniform(256, 256, 2048, 106);
        let engine = DtcSpmm::new(&a);
        let preset = Device::rtx4090();
        let mut tweaked = preset.clone();
        tweaked.sm_clock_ghz /= 2.0;
        assert_ne!(preset.fingerprint(), tweaked.fingerprint());
        let _preset_trace = engine.trace(64, &preset, false);
        let _tweaked_trace = engine.trace(64, &tweaked, false);
        // Each device fingerprint must own its own cache slot (the global
        // hit/miss counters are shared across tests, so inspect the
        // engine's private cache directly).
        assert_eq!(engine.trace_cache.lock().unwrap().exact.len(), 2);
        // And the cached entries really are distinct simulations.
        let t_preset = engine.simulate(64, &preset).time_ms;
        let t_tweaked = engine.simulate(64, &tweaked).time_ms;
        assert!(t_tweaked > t_preset, "halving the clock must slow the sim");
    }

    #[test]
    fn reordering_reduces_tc_blocks_on_community_matrices() {
        let a = community(640, 640, 32, 12.0, 0.92, 105);
        let plain = DtcSpmm::builder().reorder(false).build(&a);
        let reordered = DtcSpmm::builder().reorder(true).build(&a);
        assert!(
            reordered.metcf().num_tc_blocks() < plain.metcf().num_tc_blocks(),
            "reordered={} plain={}",
            reordered.metcf().num_tc_blocks(),
            plain.metcf().num_tc_blocks()
        );
    }
}
