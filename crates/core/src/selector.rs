//! The simulation-based Selector (§4.5.2).
//!
//! Load imbalance is input-adaptive (Observation 4): the strict-balance
//! kernel fixes skewed inputs but costs ~22 % on naturally balanced ones.
//! The Selector estimates both makespans *without running the kernel*: it
//! replays the per-window TC-block counts through the thread-block
//! scheduling policy model of eq. (1) with the kernel's occupancy (6), and
//! compares against the ideal balanced makespan
//! `NumTCBlocks / (num_sms × occupancy)`. When the approximation ratio
//! exceeds the threshold (1.2, calibrated offline on 1000 uniform
//! matrices), the balanced kernel is selected.

use dtc_formats::MeTcfMatrix;
use dtc_sim::{schedule, Device};

/// Which runtime kernel to launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelChoice {
    /// `DTC-SpMM-base`: one thread block per row window.
    Base,
    /// `DTC-SpMM-balanced`: strict-balance TC-block groups.
    Balanced,
}

/// The Selector's full decision record.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectorDecision {
    /// Estimated makespan (in TC-block units) without strict balance.
    pub makespan_base: f64,
    /// Ideal makespan with strict balance: `NumTCBlocks / (SMs × occupancy)`.
    pub makespan_balanced: f64,
    /// Approximation ratio `makespan_base / makespan_balanced`.
    pub approximation_ratio: f64,
    /// The chosen kernel.
    pub choice: KernelChoice,
}

/// The simulation-based Selector.
///
/// # Example
///
/// ```
/// use dtc_core::{KernelChoice, Selector};
/// use dtc_sim::Device;
///
/// let selector = Selector::default();
/// // One monster window among trivial ones: huge AR, balanced kernel.
/// let mut counts = vec![1usize; 767];
/// counts.push(50_000);
/// let decision = selector.decide_from_counts(&counts, &Device::rtx4090());
/// assert_eq!(decision.choice, KernelChoice::Balanced);
/// assert!(decision.approximation_ratio > 1.2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Selector {
    /// AR threshold above which the balanced kernel is picked (paper: 1.2).
    pub threshold: f64,
    /// Thread blocks resident per SM (paper: 6 on RTX4090).
    pub occupancy: usize,
}

impl Default for Selector {
    fn default() -> Self {
        Selector { threshold: 1.2, occupancy: 6 }
    }
}

impl Selector {
    /// Estimates the base kernel's makespan, in TC-block service units, by
    /// scheduling one thread block per row window (duration = its TC-block
    /// count) under the eq. (1) policy model.
    pub fn makespan_base(&self, window_block_counts: &[usize], device: &Device) -> f64 {
        // Candidate lowering fans out over threads (slot-indexed results, so
        // the duration sequence — and therefore the decision — is independent
        // of the thread count and of the steal schedule); the eq. (1) policy
        // replay itself is inherently sequential, as each placement depends
        // on all earlier finishes.
        let durations: Vec<f64> =
            dtc_par::par_map_collect(window_block_counts.len(), |i| window_block_counts[i] as f64);
        schedule(device, self.occupancy, &durations).makespan_cycles
    }

    /// The ideal strict-balance makespan: total blocks spread over every
    /// slot of every SM.
    pub fn makespan_balanced(&self, total_blocks: usize, device: &Device) -> f64 {
        total_blocks as f64 / (device.num_sms as f64 * self.occupancy as f64)
    }

    /// Computes the full decision for a condensed matrix.
    pub fn decide(&self, metcf: &MeTcfMatrix, device: &Device) -> SelectorDecision {
        self.decide_from_counts(&metcf.window_block_counts(), device)
    }

    /// Computes the decision from raw per-window block counts.
    pub fn decide_from_counts(&self, counts: &[usize], device: &Device) -> SelectorDecision {
        let total: usize = counts.iter().sum();
        let makespan_base = self.makespan_base(counts, device);
        let makespan_balanced = self.makespan_balanced(total, device).max(1e-12);
        let ar = if total == 0 { 1.0 } else { makespan_base / makespan_balanced };
        SelectorDecision {
            makespan_base,
            makespan_balanced,
            approximation_ratio: ar,
            choice: if ar > self.threshold { KernelChoice::Balanced } else { KernelChoice::Base },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::{long_row, uniform};

    #[test]
    fn uniform_matrices_choose_base() {
        // §4.5.2: uniformly distributed non-zeros are naturally balanced.
        let a = uniform(128 * 6 * 16 * 2, 4096, 128 * 6 * 16 * 2 * 8, 81);
        let metcf = MeTcfMatrix::from_csr(&a);
        let d = Selector::default().decide(&metcf, &Device::rtx4090());
        assert_eq!(d.choice, KernelChoice::Base, "AR={}", d.approximation_ratio);
    }

    #[test]
    fn skewed_matrices_choose_balanced() {
        let a = long_row(640, 4096, 200.0, 2.0, 82);
        let metcf = MeTcfMatrix::from_csr(&a);
        let d = Selector::default().decide(&metcf, &Device::rtx4090());
        assert!(d.approximation_ratio > 1.2, "AR={}", d.approximation_ratio);
        assert_eq!(d.choice, KernelChoice::Balanced);
    }

    #[test]
    fn ar_is_at_least_one_for_large_inputs() {
        // The balanced makespan is a lower bound whenever every SM slot
        // can be kept busy.
        let counts: Vec<usize> = (0..5000).map(|i| 1 + (i * 7) % 23).collect();
        let s = Selector::default();
        let d = s.decide_from_counts(&counts, &Device::rtx4090());
        assert!(d.approximation_ratio >= 0.99, "AR={}", d.approximation_ratio);
    }

    #[test]
    fn empty_matrix_defaults_to_base() {
        let d = Selector::default().decide_from_counts(&[], &Device::rtx4090());
        assert_eq!(d.choice, KernelChoice::Base);
    }

    #[test]
    fn single_giant_window_maximal_ar() {
        // One window with all the blocks: base makespan = all blocks on one
        // SM slot, balanced spreads them out; AR ~ SMs * occupancy.
        let mut counts = vec![1usize; 767];
        counts.push(100_000);
        let d = Selector::default().decide_from_counts(&counts, &Device::rtx4090());
        assert!(d.approximation_ratio > 100.0, "AR={}", d.approximation_ratio);
    }

    #[test]
    fn threshold_is_respected() {
        let counts = vec![10usize; 768 * 4];
        let strict = Selector { threshold: 0.0, ..Selector::default() };
        let lax = Selector { threshold: 1e9, ..Selector::default() };
        let device = Device::rtx4090();
        assert_eq!(strict.decide_from_counts(&counts, &device).choice, KernelChoice::Balanced);
        assert_eq!(lax.decide_from_counts(&counts, &device).choice, KernelChoice::Base);
    }
}
