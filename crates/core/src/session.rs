//! Iterative-SpMM sessions and the §6 amortization analysis.
//!
//! "Many real-world applications require iterative SpMM execution, where
//! the sparse matrix A remains unchanged for thousands of SpMM operations.
//! When applied to these scenarios, both the format conversion and
//! Selector overhead of DTC-SpMM are negligible. ... However, due to
//! format conversion, DTC-SpMM may not be suitable for a small number of
//! scenarios with varying input sparse matrices in each SpMM execution.
//! Systems with lighter overhead, like cuSPARSE, are more suitable for
//! such cases." — §6.
//!
//! [`IterativeSpmm`] packages that reasoning: it pays DTC-SpMM's one-time
//! costs once, exposes per-iteration execution, and computes the
//! break-even iteration count against the conversion-free cuSPARSE
//! baseline, recommending an engine for a given workload length.

use crate::cache::KeyMaterial;
use crate::config::EngineConfig;
use crate::convert::simulated_gpu_conversion_ms_for;
use crate::engine::SpmmEngine;
use crate::error::DtcError;
use crate::{DtcSpmm, SpmmKernel};
use dtc_baselines::CusparseSpmm;
use dtc_formats::{CsrMatrix, DenseMatrix, Precision};
use dtc_sim::{Device, KernelTrace};
use std::sync::atomic::{AtomicU64, Ordering};

/// Which engine the amortization analysis recommends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineRecommendation {
    /// The workload is long enough for DTC-SpMM's setup to amortize.
    Dtc,
    /// Too few iterations: the conversion-free CUDA-core path wins.
    Cusparse,
}

/// The amortization summary for one (matrix, N, device) workload.
#[derive(Debug, Clone)]
pub struct AmortizationReport {
    /// One-time DTC setup: format conversion + Selector, ms.
    pub setup_ms: f64,
    /// Simulated per-iteration DTC-SpMM time, ms.
    pub dtc_iter_ms: f64,
    /// Simulated per-iteration cuSPARSE time, ms.
    pub cusparse_iter_ms: f64,
    /// Iterations after which cumulative DTC time undercuts cuSPARSE
    /// (`None` when DTC is not faster per iteration, so it never pays).
    pub break_even_iterations: Option<u64>,
}

impl AmortizationReport {
    /// Total simulated time of `iterations` runs on DTC-SpMM, ms.
    pub fn dtc_total_ms(&self, iterations: u64) -> f64 {
        self.setup_ms + self.dtc_iter_ms * iterations as f64
    }

    /// Total simulated time of `iterations` runs on cuSPARSE, ms.
    pub fn cusparse_total_ms(&self, iterations: u64) -> f64 {
        self.cusparse_iter_ms * iterations as f64
    }

    /// Recommends an engine for a workload of `iterations` runs.
    pub fn recommend(&self, iterations: u64) -> EngineRecommendation {
        if self.dtc_total_ms(iterations) < self.cusparse_total_ms(iterations) {
            EngineRecommendation::Dtc
        } else {
            EngineRecommendation::Cusparse
        }
    }
}

/// Builder for an [`IterativeSpmm`] session: since the `EngineConfig`
/// consolidation it wraps the same shared [`EngineConfig`] as
/// [`crate::DtcSpmmBuilder`] (device, precision, reordering, kernel opts,
/// Selector, forced choice all flow into the underlying engine), plus the
/// one non-hashable knob: the comparator baseline the amortization
/// analysis races against (the conversion-free [`CusparseSpmm`] by
/// default, per §6's framing).
#[derive(Default)]
pub struct IterativeSpmmBuilder {
    config: EngineConfig,
    baseline: Option<Box<dyn SpmmKernel + Send + Sync>>,
}

impl std::fmt::Debug for IterativeSpmmBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IterativeSpmmBuilder")
            .field("config", &self.config)
            .field("baseline", &self.baseline.as_ref().map(|b| b.name().to_string()))
            .finish()
    }
}

impl IterativeSpmmBuilder {
    /// Replaces the whole shared configuration at once.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// The current shared configuration.
    pub fn engine_config(&self) -> &EngineConfig {
        &self.config
    }

    /// Sets the device both engines are simulated on.
    pub fn device(mut self, device: Device) -> Self {
        self.config.device = device;
        self
    }

    /// Sets the DTC engine's Tensor-Core input precision.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.config.precision = precision;
        self
    }

    /// Enables TCU-Cache-Aware reordering in the underlying engine.
    pub fn reorder(mut self, enabled: bool) -> Self {
        self.config.reorder = enabled;
        self
    }

    /// Replaces the comparator baseline the amortization analysis races
    /// against (default: [`CusparseSpmm`] over the same matrix).
    pub fn baseline(mut self, baseline: Box<dyn SpmmKernel + Send + Sync>) -> Self {
        self.baseline = Some(baseline);
        self
    }

    /// Builds the session (pays the one-time conversion + selection now).
    pub fn build(self, a: &CsrMatrix) -> IterativeSpmm {
        let device = self.config.device.clone();
        let engine = DtcSpmm::builder().config(self.config).build(a);
        let baseline = self.baseline.unwrap_or_else(|| Box::new(CusparseSpmm::new(a)));
        IterativeSpmm { engine, baseline, device, runs: AtomicU64::new(0) }
    }
}

/// A fixed-matrix SpMM session: conversion happens once, every
/// [`IterativeSpmm::execute`] reuses it.
///
/// The run counter is atomic so `execute` takes `&self` — a pooled session
/// can serve concurrent requests through the [`SpmmEngine`] trait.
pub struct IterativeSpmm {
    engine: DtcSpmm,
    baseline: Box<dyn SpmmKernel + Send + Sync>,
    device: Device,
    runs: AtomicU64,
}

impl std::fmt::Debug for IterativeSpmm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IterativeSpmm")
            .field("engine", &self.engine)
            .field("baseline", &self.baseline.name())
            .field("device", &self.device.name)
            .field("runs", &self.runs)
            .finish()
    }
}

impl IterativeSpmm {
    /// Starts building a session with a non-default configuration.
    pub fn builder() -> IterativeSpmmBuilder {
        IterativeSpmmBuilder::default()
    }

    /// Convenience: default session (cuSPARSE comparator, TF32, no
    /// reordering) on `device`.
    pub fn new(a: &CsrMatrix, device: Device) -> Self {
        Self::builder().device(device).build(a)
    }

    /// The underlying DTC engine.
    pub fn engine(&self) -> &DtcSpmm {
        &self.engine
    }

    /// The comparator baseline the amortization analysis races against.
    pub fn baseline(&self) -> &dyn SpmmKernel {
        self.baseline.as_ref()
    }

    /// Number of SpMMs executed so far.
    pub fn runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    /// Executes one SpMM iteration.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches as [`DtcError::Format`].
    pub fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, DtcError> {
        self.runs.fetch_add(1, Ordering::Relaxed);
        self.engine.execute(b)
    }

    /// Computes the §6 amortization analysis for `n` dense columns.
    pub fn amortization(&self, n: usize) -> AmortizationReport {
        let dtc_iter_ms = self.engine.simulate(n, &self.device).time_ms;
        let cusparse_iter_ms = self.baseline.simulate(n, &self.device).time_ms;
        // Setup: GPU-kernel format conversion + the Selector's makespan
        // simulation (§6 prices the latter at a fraction of one SpMM).
        let setup_ms =
            simulated_gpu_conversion_ms_for(self.engine.rows(), self.engine.nnz(), &self.device)
                + 0.4 * dtc_iter_ms;
        let break_even_iterations = if dtc_iter_ms < cusparse_iter_ms {
            Some((setup_ms / (cusparse_iter_ms - dtc_iter_ms)).ceil() as u64)
        } else {
            None
        };
        AmortizationReport { setup_ms, dtc_iter_ms, cusparse_iter_ms, break_even_iterations }
    }

    /// Cumulative simulated GPU time of the session so far (setup + runs).
    pub fn simulated_total_ms(&self, n: usize) -> f64 {
        self.amortization(n).dtc_total_ms(self.runs())
    }
}

impl SpmmEngine for IterativeSpmm {
    fn name(&self) -> &str {
        SpmmKernel::name(&self.engine)
    }

    fn rows(&self) -> usize {
        SpmmKernel::rows(&self.engine)
    }

    fn cols(&self) -> usize {
        SpmmKernel::cols(&self.engine)
    }

    fn nnz(&self) -> usize {
        SpmmKernel::nnz(&self.engine)
    }

    fn key(&self) -> &KeyMaterial {
        self.engine.key()
    }

    fn execute(&self, b: &DenseMatrix) -> Result<DenseMatrix, DtcError> {
        IterativeSpmm::execute(self, b)
    }

    fn trace(&self, n: usize, device: &Device, record_b_addrs: bool) -> KernelTrace {
        SpmmKernel::trace(&self.engine, n, device, record_b_addrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::{long_row, web};

    #[test]
    fn session_counts_runs_and_preserves_results() {
        let a = web(512, 512, 8.0, 2.1, 0.7, 41);
        let session = IterativeSpmm::new(&a, Device::rtx4090());
        let b = DenseMatrix::ones(512, 16);
        let reference = a.spmm_reference(&b).unwrap();
        for _ in 0..3 {
            let c = session.execute(&b).unwrap();
            assert!(c.max_abs_diff(&reference) < 0.05);
        }
        assert_eq!(session.runs(), 3);
        assert!(session.simulated_total_ms(16) > 0.0);
    }

    #[test]
    fn long_workloads_amortize_to_dtc() {
        // GNN training = thousands of iterations: DTC must win.
        let a = long_row(1024, 1024, 200.0, 1.0, 42);
        let session = IterativeSpmm::new(&a, Device::rtx4090());
        let report = session.amortization(128);
        let be = report.break_even_iterations.expect("DTC is faster per iteration here");
        assert_eq!(report.recommend(be + 10), EngineRecommendation::Dtc);
        assert!(report.dtc_total_ms(2000) < report.cusparse_total_ms(2000));
    }

    #[test]
    fn single_shot_workloads_prefer_cusparse() {
        // §6: "scenarios with varying input sparse matrices in each SpMM
        // execution" — one iteration cannot amortize the conversion.
        let a = long_row(1024, 1024, 200.0, 1.0, 43);
        let session = IterativeSpmm::new(&a, Device::rtx4090());
        let report = session.amortization(128);
        assert_eq!(report.recommend(1), EngineRecommendation::Cusparse);
    }

    #[test]
    fn builder_accepts_custom_baseline() {
        use dtc_baselines::TcgnnSpmm;
        let a = web(256, 256, 8.0, 2.1, 0.7, 45);
        let session = IterativeSpmm::builder()
            .device(Device::rtx4090())
            .reorder(true)
            .baseline(Box::new(TcgnnSpmm::new(&a).unwrap()))
            .build(&a);
        assert_eq!(session.baseline().name(), "TCGNN-SpMM");
        assert!(session.engine().permutation().is_some());
        let report = session.amortization(32);
        // The comparator column must come from the chosen baseline, not
        // from a hardwired cuSPARSE.
        let direct = TcgnnSpmm::new(&a).unwrap().simulate(32, &Device::rtx4090()).time_ms;
        assert!((report.cusparse_iter_ms - direct).abs() < 1e-12);
    }

    #[test]
    fn totals_are_linear_in_iterations() {
        let a = web(512, 512, 8.0, 2.1, 0.7, 44);
        let report = IterativeSpmm::new(&a, Device::rtx4090()).amortization(64);
        let d = report.dtc_total_ms(100) - report.dtc_total_ms(99);
        assert!((d - report.dtc_iter_ms).abs() < 1e-9);
    }
}
