//! Cached handles to dtc-core's entries in the process-wide
//! [`dtc_telemetry`] registry.
//!
//! Counter names are part of the crate's observable surface (tests and the
//! `DTC_METRICS` JSON snapshot key on them), so they are defined once here:
//!
//! | name | meaning |
//! |---|---|
//! | `core.pipeline.builds` | engines assembled via [`crate::DtcSpmmBuilder::build`] |
//! | `core.cache.conversion.hits` / `.misses` | process-wide ME-TCF conversion cache |
//! | `core.cache.conversion.collisions` | primary-key collisions caught by hit verification |
//! | `core.cache.conversion.invalidations` | conversion entries purged by key after a delta update |
//! | `core.cache.trace.hits` / `.misses` | per-engine memoized kernel traces |
//! | `core.cache.trace.invalidations` | per-engine trace caches dropped wholesale by a delta update |
//! | `core.delta.applies` | in-place [`crate::DtcSpmm::apply_delta`] patches |
//! | `core.delta.reselects` | delta applies whose stat drift re-ran the Selector |

use dtc_telemetry::Counter;
use std::sync::OnceLock;

macro_rules! cached_counter {
    ($(#[$doc:meta])* $fn_name:ident, $metric:literal) => {
        $(#[$doc])*
        pub(crate) fn $fn_name() -> &'static Counter {
            static HANDLE: OnceLock<&'static Counter> = OnceLock::new();
            HANDLE.get_or_init(|| dtc_telemetry::counter($metric))
        }
    };
}

cached_counter!(
    /// Engines assembled through the builder.
    pipeline_builds,
    "core.pipeline.builds"
);
cached_counter!(
    /// ME-TCF conversion cache hits.
    conversion_cache_hits,
    "core.cache.conversion.hits"
);
cached_counter!(
    /// ME-TCF conversion cache misses (each one paid a conversion).
    conversion_cache_misses,
    "core.cache.conversion.misses"
);
cached_counter!(
    /// Primary-key collisions detected (and survived) by the ME-TCF
    /// conversion cache: a 64-bit hash matched but the key material did not.
    conversion_cache_collisions,
    "core.cache.conversion.collisions"
);
cached_counter!(
    /// Per-engine trace-cache hits (a `simulate` that re-lowered nothing).
    trace_cache_hits,
    "core.cache.trace.hits"
);
cached_counter!(
    /// Per-engine trace-cache misses (kernel lowered once per key).
    trace_cache_misses,
    "core.cache.trace.misses"
);
cached_counter!(
    /// Conversion-cache entries purged by key ([`crate::cache::invalidate_conversion`]).
    conversion_cache_invalidations,
    "core.cache.conversion.invalidations"
);
cached_counter!(
    /// Per-engine trace caches dropped wholesale after an in-place delta
    /// (the trace key carries no matrix identity, so every entry is stale).
    trace_cache_invalidations,
    "core.cache.trace.invalidations"
);
cached_counter!(
    /// In-place delta patches applied through [`crate::DtcSpmm::apply_delta`].
    delta_applies,
    "core.delta.applies"
);
cached_counter!(
    /// Delta applies whose row-length-stat drift crossed the policy
    /// threshold and re-ran the simulation-based Selector.
    delta_reselects,
    "core.delta.reselects"
);
