//! Pins the persisted-key digests: the shared FNV-1a dedup must keep every
//! digest byte-identical to the original per-crate implementations, or
//! cached conversions / pooled engines keyed before an upgrade would all
//! miss after it.

use dtc_core::cache::matrix_key;
use dtc_core::{EngineConfig, KeyMaterial};
use dtc_formats::CsrMatrix;
use dtc_sim::Device;

fn fixed_matrix() -> CsrMatrix {
    CsrMatrix::from_triplets(
        4,
        5,
        &[(0, 1, 1.0), (0, 4, -2.5), (1, 0, 0.5), (2, 2, 3.25), (3, 3, -0.125)],
    )
    .expect("valid triplets")
}

#[test]
fn persisted_key_digests_are_pinned() {
    // Golden values captured from the pre-dedup per-crate implementations.
    let a = fixed_matrix();
    assert_eq!(matrix_key(&a), 0x5ae3_05a8_b3bb_16cb);
    assert_eq!(KeyMaterial::of(&a).fingerprint(), 0xeec5_16a6_bed0_2edc);
    assert_eq!(EngineConfig::default().fingerprint(), 0xbda8_4a7a_db2d_840a);
    assert_eq!(Device::rtx4090().fingerprint(), 0x9d11_9efe_98a4_e684);
    assert_eq!(Device::rtx3090().fingerprint(), 0xe06d_047d_3add_6827);
}

#[test]
fn fingerprints_separate_nearby_inputs() {
    let a = fixed_matrix();
    // Same structure, one value bit-pattern changed.
    let bumped = CsrMatrix::from_triplets(
        4,
        5,
        &[(0, 1, 1.0), (0, 4, -2.5), (1, 0, 0.5), (2, 2, 3.25), (3, 3, -0.25)],
    )
    .expect("valid triplets");
    assert_ne!(matrix_key(&a), matrix_key(&bumped));
    assert_ne!(KeyMaterial::of(&a).fingerprint(), KeyMaterial::of(&bumped).fingerprint());
    assert_ne!(Device::rtx4090().fingerprint(), Device::rtx3090().fingerprint());
}
