//! IGB (Illinois Graph Benchmark) stand-ins for the Fig 16 GNN case study.
//!
//! IGB-tiny has 100 k nodes / ~500 k edges and IGB-small 1 M nodes / ~12 M
//! edges (homogeneous citation-style graphs). The stand-ins keep the
//! citation-graph character (community structure, moderate degree) at
//! reduced scale.

use crate::{Dataset, DatasetKind, MatrixSpec};

/// Builds the IGB-tiny and IGB-small stand-ins.
pub fn igb_datasets() -> Vec<Dataset> {
    vec![
        Dataset {
            name: "IGB-tiny".into(),
            abbr: "IGB-tiny".into(),
            kind: DatasetKind::GnnGraph,
            paper: None,
            spec: MatrixSpec::Community {
                rows: 4_096,
                cols: 4_096,
                communities: 128,
                avg_deg: 5.0,
                p_in: 0.8,
                seed: 0xC001,
            },
        },
        Dataset {
            name: "IGB-small".into(),
            abbr: "IGB-small".into(),
            kind: DatasetKind::GnnGraph,
            paper: None,
            spec: MatrixSpec::Community {
                rows: 12_288,
                cols: 12_288,
                communities: 384,
                avg_deg: 12.0,
                p_in: 0.8,
                seed: 0xC002,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_smaller_than_small() {
        let ds = igb_datasets();
        let t = ds[0].stats();
        let s = ds[1].stats();
        assert!(t.rows < s.rows);
        assert!(t.nnz < s.nnz);
    }
}
