//! Synthetic dataset registry matched to the paper's benchmark statistics.
//!
//! The paper evaluates on real graph datasets (Table 1), 414 SuiteSparse
//! matrices, and IGB graphs. None can be shipped here, and at full scale
//! (NNZ up to 114.8 M) a CPU-hosted simulation would be impractically slow,
//! so every dataset is replaced by a *seeded synthetic stand-in* whose
//! structure type, average row length and degree skew match the original,
//! scaled down in rows/NNZ.
//!
//! Because capacity effects matter (whether B fits in L2 drives the
//! cuSPARSE-vs-DTC balance), the harness pairs the scaled datasets with
//! [`scaled_device`], which shrinks the L2 and global-memory *capacities*
//! by [`MEMORY_SCALE`] while leaving all *rates* (per-SM throughputs, DRAM
//! bandwidth) untouched: work and traffic both scale with NNZ, so the
//! compute/bandwidth balance is preserved automatically, and the capacity
//! ratio `B-footprint / L2` is restored by scaling the capacity.
//!
//! # Example
//!
//! ```
//! use dtc_datasets::{representative, scaled_device};
//! use dtc_sim::Device;
//!
//! let datasets = representative();
//! assert_eq!(datasets.len(), 8);
//! let reddit = datasets.iter().find(|d| d.abbr == "reddit").unwrap();
//! let m = reddit.matrix();
//! assert!(m.nnz() > 500_000);
//! let device = scaled_device(Device::rtx4090());
//! assert!(device.l2_bytes < Device::rtx4090().l2_bytes);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod igb;
mod representative;
mod spec;
mod suite;

pub use igb::igb_datasets;
pub use representative::representative;
pub use spec::MatrixSpec;
pub use suite::suite_corpus;

use dtc_formats::stats::MatrixStats;
use dtc_formats::CsrMatrix;
use dtc_sim::Device;
use std::collections::HashMap;
use std::sync::Mutex;
use std::sync::{Arc, OnceLock};

/// Capacity scale between the paper's datasets and our stand-ins (see the
/// crate docs). Applied to L2 and global-memory capacity only.
pub const MEMORY_SCALE: u64 = 112;

/// Shrinks a device's capacity parameters to match the scaled datasets.
pub fn scaled_device(mut device: Device) -> Device {
    device.l2_bytes = (device.l2_bytes / MEMORY_SCALE).max(64 * 1024);
    device.global_mem_bytes = (device.global_mem_bytes / MEMORY_SCALE).max(1024 * 1024);
    device
}

/// Structure class from §3: Type I (small `AvgRowL`) vs Type II (large).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Small average row length (2–12 in the paper).
    TypeI,
    /// Large average row length (~500–600 in the paper).
    TypeII,
    /// Graph used only in the end-to-end GNN case study.
    GnnGraph,
}

/// Statistics the paper reports for the original dataset (Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperStats {
    /// Rows (= columns; all Table-1 matrices are square).
    pub rows: usize,
    /// Non-zeros.
    pub nnz: usize,
    /// Average row length.
    pub avg_row_len: f64,
}

/// One benchmark dataset: the paper's statistics plus our scaled stand-in.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Full name as in Table 1 (or a corpus identifier).
    pub name: String,
    /// Abbreviation used in figures (`YH`, `reddit`, ...).
    pub abbr: String,
    /// Structure class.
    pub kind: DatasetKind,
    /// The original dataset's statistics, when reproducing a Table-1 entry.
    pub paper: Option<PaperStats>,
    /// The generator specification of the stand-in.
    pub spec: MatrixSpec,
}

static MATRIX_CACHE: OnceLock<Mutex<HashMap<String, Arc<CsrMatrix>>>> = OnceLock::new();

impl Dataset {
    /// Generates the stand-in matrix (deterministic per dataset).
    pub fn matrix(&self) -> CsrMatrix {
        self.spec.build()
    }

    /// Like [`Dataset::matrix`], but memoized process-wide — benchmark
    /// harnesses that revisit the same dataset across figures skip the
    /// regeneration cost.
    pub fn matrix_cached(&self) -> Arc<CsrMatrix> {
        let cache = MATRIX_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        // Generate outside the lock when missing to keep the critical
        // section short; a racing duplicate insert is harmless (identical
        // deterministic matrices).
        if let Some(hit) = cache.lock().unwrap().get(&self.name) {
            return Arc::clone(hit);
        }
        let built = Arc::new(self.spec.build());
        cache.lock().unwrap().insert(self.name.clone(), Arc::clone(&built));
        built
    }

    /// Statistics of the stand-in.
    pub fn stats(&self) -> MatrixStats {
        MatrixStats::of(&self.matrix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_has_table1_lineup() {
        let names: Vec<String> = representative().iter().map(|d| d.abbr.clone()).collect();
        assert_eq!(names, vec!["YH", "OH", "Yt", "DD", "WB", "reddit", "ddi", "protein"]);
    }

    #[test]
    fn stand_ins_match_paper_row_length_class() {
        for d in representative() {
            let s = d.stats();
            let paper = d.paper.expect("table 1 datasets carry paper stats");
            let within = (s.avg_row_len / paper.avg_row_len - 1.0).abs() < 0.4;
            match d.kind {
                DatasetKind::TypeI => {
                    assert!(!s.is_type_ii(), "{} should be Type I", d.name);
                    assert!(
                        within,
                        "{}: ours {} vs paper {}",
                        d.name, s.avg_row_len, paper.avg_row_len
                    );
                }
                DatasetKind::TypeII => {
                    assert!(s.is_type_ii(), "{} should be Type II", d.name);
                    assert!(
                        within,
                        "{}: ours {} vs paper {}",
                        d.name, s.avg_row_len, paper.avg_row_len
                    );
                }
                DatasetKind::GnnGraph => {}
            }
        }
    }

    #[test]
    fn datasets_are_square_like_table1() {
        for d in representative() {
            let m = d.matrix();
            assert_eq!(m.rows(), m.cols(), "{}", d.name);
        }
    }

    #[test]
    fn datasets_are_deterministic() {
        let d = &representative()[3]; // DD, small enough to build twice
        assert_eq!(d.matrix(), d.matrix());
    }

    #[test]
    fn cached_matrix_matches_and_is_shared() {
        let d = &representative()[3];
        let a = d.matrix_cached();
        let b = d.matrix_cached();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        assert_eq!(*a, d.matrix());
    }

    #[test]
    fn scaled_device_shrinks_capacities_only() {
        let base = Device::rtx4090();
        let s = scaled_device(base.clone());
        assert!(s.l2_bytes < base.l2_bytes);
        assert!(s.global_mem_bytes < base.global_mem_bytes);
        assert_eq!(s.dram_bw_gbps, base.dram_bw_gbps);
        assert_eq!(s.num_sms, base.num_sms);
        assert_eq!(s.tc_hmma_per_cycle, base.tc_hmma_per_cycle);
    }

    #[test]
    fn suite_corpus_is_diverse() {
        let corpus = suite_corpus();
        assert!(corpus.len() >= 120, "corpus has {}", corpus.len());
        let type1 = corpus.iter().filter(|d| d.kind == DatasetKind::TypeI).count();
        let type2 = corpus.iter().filter(|d| d.kind == DatasetKind::TypeII).count();
        assert!(type1 >= 20 && type2 >= 20, "type1={type1} type2={type2}");
    }

    #[test]
    fn igb_graphs_present() {
        let igb = igb_datasets();
        assert_eq!(igb.len(), 2);
        assert!(igb[0].matrix().rows() < igb[1].matrix().rows());
    }
}
