//! The eight representative matrices of Table 1, as scaled stand-ins.
//!
//! | Abbr | Paper M(&K) | Paper NNZ | AvgRowL | Ours M | Ours AvgRowL target |
//! |---|---|---|---|---|---|
//! | YH | 3,138,114 | 6,487,230 | 2.07 | 49,152 | 2.07 |
//! | OH | 1,889,542 | 3,946,402 | 2.09 | 30,720 | 2.09 |
//! | Yt | 1,710,902 | 3,636,546 | 2.13 | 27,648 | 2.13 |
//! | DD | 334,925 | 1,686,092 | 5.03 | 16,384 | 5.03 |
//! | WB | 685,230 | 7,600,595 | 11.09 | 16,384 | 11.09 |
//! | reddit | 232,965 | 114,848,857 | 492.99 | 2,048 | 493 |
//! | ddi | 4,267 | 2,140,089 | 501.54 | 1,536 | 501 |
//! | protein | 132,534 | 79,255,038 | 598.00 | 2,048 | 598 |
//!
//! Type I entries (YH…WB) are molecule/protein-interaction graphs with
//! community structure and short rows — modeled as planted-partition
//! graphs (YH/OH/Yt/DD) and a scale-free web graph (WB). Type II entries
//! are dense interaction graphs with long, skewed rows — modeled with the
//! log-normal long-row generator.

use crate::{Dataset, DatasetKind, MatrixSpec, PaperStats};

/// Builds the eight Table-1 stand-ins.
pub fn representative() -> Vec<Dataset> {
    vec![
        Dataset {
            name: "YeastH".into(),
            abbr: "YH".into(),
            kind: DatasetKind::TypeI,
            paper: Some(PaperStats { rows: 3_138_114, nnz: 6_487_230, avg_row_len: 2.07 }),
            spec: MatrixSpec::CommunityPartial {
                rows: 49_152,
                cols: 49_152,
                communities: 768,
                avg_deg: 2.07,
                p_in: 0.85,
                shuffle_frac: 0.3,
                seed: 0xA001,
            },
        },
        Dataset {
            name: "OVCAR-8H".into(),
            abbr: "OH".into(),
            kind: DatasetKind::TypeI,
            paper: Some(PaperStats { rows: 1_889_542, nnz: 3_946_402, avg_row_len: 2.09 }),
            spec: MatrixSpec::CommunityPartial {
                rows: 30_720,
                cols: 30_720,
                communities: 480,
                avg_deg: 2.09,
                p_in: 0.85,
                shuffle_frac: 0.3,
                seed: 0xA002,
            },
        },
        Dataset {
            name: "Yeast".into(),
            abbr: "Yt".into(),
            kind: DatasetKind::TypeI,
            paper: Some(PaperStats { rows: 1_710_902, nnz: 3_636_546, avg_row_len: 2.13 }),
            spec: MatrixSpec::CommunityPartial {
                rows: 27_648,
                cols: 27_648,
                communities: 432,
                avg_deg: 2.13,
                p_in: 0.85,
                shuffle_frac: 0.3,
                seed: 0xA003,
            },
        },
        Dataset {
            name: "DD".into(),
            abbr: "DD".into(),
            kind: DatasetKind::TypeI,
            paper: Some(PaperStats { rows: 334_925, nnz: 1_686_092, avg_row_len: 5.03 }),
            spec: MatrixSpec::CommunityPartial {
                rows: 16_384,
                cols: 16_384,
                communities: 512,
                avg_deg: 5.03,
                p_in: 0.8,
                shuffle_frac: 0.3,
                seed: 0xA004,
            },
        },
        Dataset {
            name: "web-BerkStan".into(),
            abbr: "WB".into(),
            kind: DatasetKind::TypeI,
            paper: Some(PaperStats { rows: 685_230, nnz: 7_600_595, avg_row_len: 11.09 }),
            spec: MatrixSpec::Web {
                rows: 16_384,
                cols: 16_384,
                avg_deg: 11.09,
                alpha: 2.1,
                locality: 0.75,
                seed: 0xA005,
            },
        },
        Dataset {
            name: "reddit".into(),
            abbr: "reddit".into(),
            kind: DatasetKind::TypeII,
            paper: Some(PaperStats { rows: 232_965, nnz: 114_848_857, avg_row_len: 492.99 }),
            spec: MatrixSpec::LongRow {
                rows: 2_048,
                cols: 2_048,
                avg_deg: 493.0,
                cv: 1.6,
                seed: 0xA006,
            },
        },
        Dataset {
            name: "ddi".into(),
            abbr: "ddi".into(),
            kind: DatasetKind::TypeII,
            paper: Some(PaperStats { rows: 4_267, nnz: 2_140_089, avg_row_len: 501.54 }),
            spec: MatrixSpec::LongRow {
                rows: 1_536,
                cols: 1_536,
                avg_deg: 501.0,
                cv: 1.0,
                seed: 0xA007,
            },
        },
        Dataset {
            name: "protein".into(),
            abbr: "protein".into(),
            kind: DatasetKind::TypeII,
            paper: Some(PaperStats { rows: 132_534, nnz: 79_255_038, avg_row_len: 598.0 }),
            spec: MatrixSpec::LongRow {
                rows: 2_048,
                cols: 2_048,
                avg_deg: 598.0,
                cv: 0.7,
                seed: 0xA008,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_split_matches_paper() {
        let ds = representative();
        for d in &ds[..5] {
            assert_eq!(d.kind, DatasetKind::TypeI, "{}", d.name);
        }
        for d in &ds[5..] {
            assert_eq!(d.kind, DatasetKind::TypeII, "{}", d.name);
        }
    }

    #[test]
    fn ddi_stats_close_to_paper() {
        let ds = representative();
        let ddi = ds.iter().find(|d| d.abbr == "ddi").unwrap();
        let s = ddi.stats();
        assert!((s.avg_row_len - 501.0).abs() < 120.0, "{}", s.avg_row_len);
        // ddi is unusually dense — paper density 501/4267 ≈ 12%; the scaled
        // stand-in runs ~28% dense, far above every other dataset's <2%.
        assert!(s.sparsity < 0.75, "{}", s.sparsity);
    }
}
