use dtc_formats::gen;
use dtc_formats::CsrMatrix;

/// A serializable generator specification for a synthetic stand-in matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixSpec {
    /// Uniform scatter (`gen::uniform`).
    Uniform {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
        /// Target non-zero count.
        nnz: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Scale-free graph (`gen::power_law`).
    PowerLaw {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
        /// Average row length.
        avg_deg: f64,
        /// Power-law exponent.
        alpha: f64,
        /// RNG seed.
        seed: u64,
    },
    /// R-MAT graph (`gen::rmat`).
    Rmat {
        /// log2 of the node count.
        scale: u32,
        /// Edges per node.
        edge_factor: f64,
        /// Recursion probabilities.
        probs: (f64, f64, f64, f64),
        /// RNG seed.
        seed: u64,
    },
    /// Planted-partition community graph with shuffled rows
    /// (`gen::community`).
    Community {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
        /// Planted communities.
        communities: usize,
        /// Average row length.
        avg_deg: f64,
        /// Intra-community column probability.
        p_in: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Type-II dense-row graph (`gen::long_row`).
    LongRow {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
        /// Average row length.
        avg_deg: f64,
        /// Row-length coefficient of variation.
        cv: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Banded / mesh matrix (`gen::banded`).
    Banded {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
        /// Half-bandwidth.
        bandwidth: usize,
        /// Average row length.
        avg_deg: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Partially shuffled community graph (`gen::community_with_shuffle`)
    /// — the Table-1 Type-I stand-ins, which keep most of their native
    /// locality.
    CommunityPartial {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
        /// Planted communities.
        communities: usize,
        /// Average row length.
        avg_deg: f64,
        /// Intra-community column probability.
        p_in: f64,
        /// Fraction of rows displaced from community order.
        shuffle_frac: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Web-crawl graph with window-local neighbourhoods (`gen::web`).
    Web {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
        /// Average row length.
        avg_deg: f64,
        /// Power-law exponent.
        alpha: f64,
        /// Probability a link stays in the window's neighbourhood.
        locality: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Pruned DL weight matrix (`gen::dl_pruned`).
    DlPruned {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
        /// Sparsity in `[0, 1)`.
        sparsity: f64,
        /// RNG seed.
        seed: u64,
    },
}

impl MatrixSpec {
    /// Generates the matrix.
    pub fn build(&self) -> CsrMatrix {
        match *self {
            MatrixSpec::Uniform { rows, cols, nnz, seed } => gen::uniform(rows, cols, nnz, seed),
            MatrixSpec::PowerLaw { rows, cols, avg_deg, alpha, seed } => {
                gen::power_law(rows, cols, avg_deg, alpha, seed)
            }
            MatrixSpec::Rmat { scale, edge_factor, probs, seed } => {
                gen::rmat(scale, edge_factor, probs, seed)
            }
            MatrixSpec::Community { rows, cols, communities, avg_deg, p_in, seed } => {
                gen::community(rows, cols, communities, avg_deg, p_in, seed)
            }
            MatrixSpec::LongRow { rows, cols, avg_deg, cv, seed } => {
                gen::long_row(rows, cols, avg_deg, cv, seed)
            }
            MatrixSpec::Banded { rows, cols, bandwidth, avg_deg, seed } => {
                gen::banded(rows, cols, bandwidth, avg_deg, seed)
            }
            MatrixSpec::CommunityPartial {
                rows,
                cols,
                communities,
                avg_deg,
                p_in,
                shuffle_frac,
                seed,
            } => gen::community_with_shuffle(
                rows,
                cols,
                communities,
                avg_deg,
                p_in,
                shuffle_frac,
                seed,
            ),
            MatrixSpec::Web { rows, cols, avg_deg, alpha, locality, seed } => {
                gen::web(rows, cols, avg_deg, alpha, locality, seed)
            }
            MatrixSpec::DlPruned { rows, cols, sparsity, seed } => {
                gen::dl_pruned(rows, cols, sparsity, seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_builds() {
        let specs = vec![
            MatrixSpec::Uniform { rows: 64, cols: 64, nnz: 256, seed: 1 },
            MatrixSpec::PowerLaw { rows: 64, cols: 64, avg_deg: 4.0, alpha: 2.2, seed: 2 },
            MatrixSpec::Rmat {
                scale: 6,
                edge_factor: 4.0,
                probs: (0.57, 0.19, 0.19, 0.05),
                seed: 3,
            },
            MatrixSpec::Community {
                rows: 64,
                cols: 64,
                communities: 4,
                avg_deg: 4.0,
                p_in: 0.9,
                seed: 4,
            },
            MatrixSpec::LongRow { rows: 32, cols: 128, avg_deg: 40.0, cv: 0.5, seed: 5 },
            MatrixSpec::DlPruned { rows: 32, cols: 32, sparsity: 0.8, seed: 6 },
        ];
        for s in specs {
            let m = s.build();
            assert!(m.nnz() > 0, "{s:?}");
        }
    }

    #[test]
    fn specs_are_deterministic() {
        let s = MatrixSpec::PowerLaw { rows: 64, cols: 64, avg_deg: 2.0, alpha: 2.0, seed: 9 };
        assert_eq!(s.build(), s.build());
        let t = MatrixSpec::PowerLaw { rows: 64, cols: 64, avg_deg: 2.0, alpha: 2.0, seed: 10 };
        assert_ne!(s.build(), t.build());
    }
}
