//! The SuiteSparse stand-in corpus.
//!
//! The paper sweeps 414 SuiteSparse matrices with ≥ 1 M non-zeros
//! (excluding ones Sputnik or TCGNN cannot run). SuiteSparse is a *mixture*
//! of application domains — circuit/mesh matrices (banded-ish, regular),
//! web/social graphs (power law), optimization matrices (block/community
//! structure), and a tail of dense-row problems. This corpus mirrors that
//! mixture with 120 seeded synthetic matrices spanning the same AvgRowL
//! range (2 – 600) at ~100× reduced NNZ.

use crate::{Dataset, DatasetKind, MatrixSpec};

/// Builds the 120-matrix corpus (deterministic).
pub fn suite_corpus() -> Vec<Dataset> {
    let mut corpus = Vec::new();
    let mut push = |name: String, kind: DatasetKind, spec: MatrixSpec| {
        corpus.push(Dataset { abbr: name.clone(), name, kind, paper: None, spec });
    };

    // 28 web/crawl graphs: power-law degrees with window locality.
    let mut idx = 0;
    for &rows in &[4096usize, 8192] {
        for &avg in &[3.0, 6.0, 12.0, 24.0] {
            for &alpha in &[1.9, 2.2, 2.6] {
                idx += 1;
                push(
                    format!("web_{rows}_{avg}_{alpha}"),
                    DatasetKind::TypeI,
                    MatrixSpec::Web {
                        rows,
                        cols: rows,
                        avg_deg: avg,
                        alpha,
                        locality: 0.65,
                        seed: 0xB000 + idx,
                    },
                );
            }
        }
    }
    for &avg in &[3.0, 6.0] {
        for &alpha in &[2.2, 2.6] {
            idx += 1;
            push(
                format!("web_16384_{avg}_{alpha}"),
                DatasetKind::TypeI,
                MatrixSpec::Web {
                    rows: 16_384,
                    cols: 16_384,
                    avg_deg: avg,
                    alpha,
                    locality: 0.65,
                    seed: 0xB000 + idx,
                },
            );
        }
    }

    // 24 banded / mesh matrices (FEM, circuits) — strong native locality.
    for &rows in &[4096usize, 8192, 16384] {
        for &(bw, avg) in &[(8usize, 4.0), (16, 8.0), (32, 12.0), (64, 24.0)] {
            idx += 1;
            push(
                format!("mesh_{rows}_{bw}_{avg}"),
                DatasetKind::TypeI,
                MatrixSpec::Banded {
                    rows,
                    cols: rows,
                    bandwidth: bw,
                    avg_deg: avg,
                    seed: 0xB000 + idx,
                },
            );
        }
    }
    for &rows in &[6144usize, 12288] {
        for &(bw, avg) in
            &[(12usize, 5.0), (24, 9.0), (48, 18.0), (96, 36.0), (128, 48.0), (192, 72.0)]
        {
            idx += 1;
            push(
                format!("mesh_{rows}_{bw}_{avg}"),
                if avg >= 64.0 { DatasetKind::TypeII } else { DatasetKind::TypeI },
                MatrixSpec::Banded {
                    rows,
                    cols: rows,
                    bandwidth: bw,
                    avg_deg: avg,
                    seed: 0xB000 + idx,
                },
            );
        }
    }

    // 32 community/optimization matrices, mostly locality-ordered.
    for &rows in &[4096usize, 8192] {
        for &coms in &[16usize, 64, 256] {
            for &avg in &[4.0, 8.0, 16.0, 32.0] {
                idx += 1;
                push(
                    format!("com_{rows}_{coms}_{avg}"),
                    DatasetKind::TypeI,
                    MatrixSpec::CommunityPartial {
                        rows,
                        cols: rows,
                        communities: coms,
                        avg_deg: avg,
                        p_in: 0.85,
                        shuffle_frac: 0.25,
                        seed: 0xB000 + idx,
                    },
                );
            }
        }
    }
    for &coms in &[64usize, 256] {
        for &avg in &[4.0, 8.0, 16.0, 32.0] {
            idx += 1;
            push(
                format!("com_16384_{coms}_{avg}"),
                DatasetKind::TypeI,
                MatrixSpec::CommunityPartial {
                    rows: 16_384,
                    cols: 16_384,
                    communities: coms,
                    avg_deg: avg,
                    p_in: 0.85,
                    shuffle_frac: 0.25,
                    seed: 0xB000 + idx,
                },
            );
        }
    }

    // 12 R-MAT graphs: fully scattered social structure — the hard tail
    // where TC condensing gains the least (the paper's few slowdowns).
    for &scale in &[12u32, 13] {
        for &ef in &[4.0, 8.0] {
            for probs in
                [(0.57, 0.19, 0.19, 0.05), (0.45, 0.22, 0.22, 0.11), (0.3, 0.25, 0.25, 0.2)]
            {
                idx += 1;
                push(
                    format!("rmat_{scale}_{ef}_{:.2}", probs.0),
                    DatasetKind::TypeI,
                    MatrixSpec::Rmat { scale, edge_factor: ef, probs, seed: 0xB000 + idx },
                );
            }
        }
    }

    // 18 long-row (Type II) matrices.
    for &rows in &[1024usize, 2048] {
        for &avg in &[96.0, 192.0, 384.0] {
            for &cv in &[0.5, 1.0, 1.5] {
                idx += 1;
                push(
                    format!("lr_{rows}_{avg}_{cv}"),
                    DatasetKind::TypeII,
                    MatrixSpec::LongRow { rows, cols: rows, avg_deg: avg, cv, seed: 0xB000 + idx },
                );
            }
        }
    }

    // 6 uniform scatter matrices (worst case for condensing).
    for &rows in &[4096usize, 8192, 16384] {
        for &avg in &[4usize, 16] {
            idx += 1;
            push(
                format!("uni_{rows}_{avg}"),
                DatasetKind::TypeI,
                MatrixSpec::Uniform { rows, cols: rows, nnz: rows * avg, seed: 0xB000 + idx },
            );
        }
    }

    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_size() {
        assert_eq!(suite_corpus().len(), 120);
    }

    #[test]
    fn names_are_unique() {
        let corpus = suite_corpus();
        let mut names: Vec<&str> = corpus.iter().map(|d| d.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus.len());
    }

    #[test]
    fn avg_row_len_spans_paper_range() {
        // Check a cheap subset: one small Type I and one Type II.
        let corpus = suite_corpus();
        let t1 = corpus.iter().find(|d| d.name.starts_with("uni_4096_4")).unwrap();
        let t2 = corpus.iter().find(|d| d.name.starts_with("lr_1024_384")).unwrap();
        assert!(t1.stats().avg_row_len < 6.0);
        assert!(t2.stats().avg_row_len > 150.0);
    }
}
