use crate::{CsrMatrix, FormatError};

/// Blocked-Ellpack (BELL) — the format behind cuSPARSE's Block-SpMM.
///
/// The matrix is tiled into `block_size × block_size` dense blocks. Every
/// block-row stores the same number of blocks (the maximum over all
/// block-rows), padded with explicit zero blocks — the classic ELL padding
/// that the paper notes "can lead to out-of-memory (OOM) issues when applied
/// to large-scale matrices" (§5.2).
///
/// # Example
///
/// ```
/// use dtc_formats::{BellMatrix, CsrMatrix};
///
/// # fn main() -> Result<(), dtc_formats::FormatError> {
/// let a = CsrMatrix::from_triplets(64, 64, &[(0, 0, 1.0), (40, 63, 2.0)])?;
/// let bell = BellMatrix::from_csr(&a, 32, u64::MAX)?;
/// assert_eq!(bell.block_size(), 32);
/// assert_eq!(bell.blocks_per_row(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BellMatrix {
    rows: usize,
    cols: usize,
    nnz: usize,
    block_size: usize,
    /// Max non-empty block columns over all block rows (ELL width).
    blocks_per_row: usize,
    /// `num_block_rows * blocks_per_row` block-column indices;
    /// `u32::MAX` marks padding.
    block_cols: Vec<u32>,
    /// Dense storage: one `block_size^2` slab per slot, row-major within the
    /// block, aligned with `block_cols`.
    block_values: Vec<f32>,
    /// Structural occupancy aligned with `block_values`: `true` where the
    /// original matrix stored an entry. Distinguishes explicit stored
    /// zeros (which must participate in the multiply — `0 x Inf = NaN`)
    /// from ELL padding (which must not).
    block_mask: Vec<bool>,
}

impl BellMatrix {
    /// Converts CSR to BELL with the given block size, failing if the padded
    /// representation would not fit in `device_bytes` of memory.
    ///
    /// # Errors
    ///
    /// - [`FormatError::NotSupported`] if `block_size` is zero.
    /// - [`FormatError::OutOfMemory`] if the padded value storage exceeds
    ///   `device_bytes` (Block-SpMM's practical failure mode on large
    ///   unstructured matrices).
    pub fn from_csr(
        a: &CsrMatrix,
        block_size: usize,
        device_bytes: u64,
    ) -> Result<Self, FormatError> {
        if block_size == 0 {
            return Err(FormatError::NotSupported("block size must be positive".into()));
        }
        let num_block_rows = a.rows().div_ceil(block_size);
        let num_block_cols_total = a.cols().div_ceil(block_size);
        // Pass 1: find non-empty block columns per block row.
        let mut per_row_blocks: Vec<Vec<u32>> = vec![Vec::new(); num_block_rows];
        for (r, c, _) in a.iter() {
            let br = r / block_size;
            let bc = (c / block_size) as u32;
            debug_assert!((bc as usize) < num_block_cols_total);
            let list = &mut per_row_blocks[br];
            if list.last() != Some(&bc) {
                match list.binary_search(&bc) {
                    Ok(_) => {}
                    Err(pos) => list.insert(pos, bc),
                }
            }
        }
        let blocks_per_row = per_row_blocks.iter().map(Vec::len).max().unwrap_or(0);
        // OOM check before allocating.
        let total_blocks = num_block_rows as u64 * blocks_per_row as u64;
        let required_bytes = total_blocks
            * (block_size as u64 * block_size as u64 * 4 /* f32 values */ + 4/* col index */);
        if required_bytes > device_bytes {
            return Err(FormatError::OutOfMemory { required_bytes, available_bytes: device_bytes });
        }
        // Pass 2: fill.
        let slot_len = block_size * block_size;
        let mut block_cols = vec![u32::MAX; num_block_rows * blocks_per_row];
        let mut block_values = vec![0f32; num_block_rows * blocks_per_row * slot_len];
        let mut block_mask = vec![false; num_block_rows * blocks_per_row * slot_len];
        for (br, blocks) in per_row_blocks.iter().enumerate() {
            for (slot, &bc) in blocks.iter().enumerate() {
                block_cols[br * blocks_per_row + slot] = bc;
            }
        }
        for (r, c, v) in a.iter() {
            let br = r / block_size;
            let bc = (c / block_size) as u32;
            let slot = per_row_blocks[br].binary_search(&bc).expect("block recorded in pass 1");
            let base = (br * blocks_per_row + slot) * slot_len;
            let local = (r % block_size) * block_size + (c % block_size);
            block_values[base + local] = v;
            block_mask[base + local] = true;
        }
        Ok(BellMatrix {
            rows: a.rows(),
            cols: a.cols(),
            nnz: a.nnz(),
            block_size,
            blocks_per_row,
            block_cols,
            block_values,
            block_mask,
        })
    }

    /// Number of rows of the original matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the original matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Structural non-zeros of the original matrix.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Edge length of the square blocks.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// ELL width: padded number of block slots per block row.
    pub fn blocks_per_row(&self) -> usize {
        self.blocks_per_row
    }

    /// Number of block rows.
    pub fn num_block_rows(&self) -> usize {
        self.rows.div_ceil(self.block_size)
    }

    /// Number of *stored* (non-padding) blocks.
    pub fn num_stored_blocks(&self) -> usize {
        self.block_cols.iter().filter(|&&c| c != u32::MAX).count()
    }

    /// Total padded slots (stored + padding).
    pub fn num_slots(&self) -> usize {
        self.block_cols.len()
    }

    /// Block-column index of a slot, or `None` for padding.
    pub fn slot_block_col(&self, block_row: usize, slot: usize) -> Option<u32> {
        let c = self.block_cols[block_row * self.blocks_per_row + slot];
        (c != u32::MAX).then_some(c)
    }

    /// The dense values of a slot (row-major `block_size × block_size`).
    pub fn slot_values(&self, block_row: usize, slot: usize) -> &[f32] {
        let slot_len = self.block_size * self.block_size;
        let base = (block_row * self.blocks_per_row + slot) * slot_len;
        &self.block_values[base..base + slot_len]
    }

    /// Structural occupancy of a slot, aligned with
    /// [`slot_values`](Self::slot_values): `true` where the original
    /// matrix stored an entry (even an explicit zero), `false` for padding.
    pub fn slot_mask(&self, block_row: usize, slot: usize) -> &[bool] {
        let slot_len = self.block_size * self.block_size;
        let base = (block_row * self.blocks_per_row + slot) * slot_len;
        &self.block_mask[base..base + slot_len]
    }

    /// Bytes of padded value + index storage.
    pub fn padded_bytes(&self) -> u64 {
        self.block_values.len() as u64 * 4 + self.block_cols.len() as u64 * 4
    }

    /// Fraction of stored value slots that are actually non-zero — the
    /// padding-induced density loss of BELL on unstructured matrices.
    pub fn fill_ratio(&self) -> f64 {
        if self.block_values.is_empty() {
            return 0.0;
        }
        self.nnz as f64 / self.block_values.len() as f64
    }

    /// Reconstructs the original matrix (for verification). The occupancy
    /// mask keeps explicit zero entries distinct from padding, so the
    /// round-trip is exact.
    ///
    /// # Errors
    ///
    /// Never fails for values built by [`BellMatrix::from_csr`].
    pub fn to_csr(&self) -> Result<CsrMatrix, FormatError> {
        let mut triplets = Vec::with_capacity(self.nnz);
        for br in 0..self.num_block_rows() {
            for slot in 0..self.blocks_per_row {
                let Some(bc) = self.slot_block_col(br, slot) else { continue };
                let vals = self.slot_values(br, slot);
                let mask = self.slot_mask(br, slot);
                for lr in 0..self.block_size {
                    for lc in 0..self.block_size {
                        if mask[lr * self.block_size + lc] {
                            let r = br * self.block_size + lr;
                            let c = bc as usize * self.block_size + lc;
                            triplets.push((r, c, vals[lr * self.block_size + lc]));
                        }
                    }
                }
            }
        }
        CsrMatrix::from_triplets(self.rows, self.cols, &triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let a = CsrMatrix::from_triplets(
            70,
            70,
            &[(0, 0, 1.0), (0, 69, 2.0), (35, 35, 3.0), (69, 1, 4.0)],
        )
        .unwrap();
        let bell = BellMatrix::from_csr(&a, 32, u64::MAX).unwrap();
        assert_eq!(bell.to_csr().unwrap(), a);
    }

    #[test]
    fn ell_padding_width() {
        // Row block 0 touches 3 block columns, row block 1 touches 1.
        let a =
            CsrMatrix::from_triplets(8, 16, &[(0, 0, 1.0), (0, 5, 1.0), (0, 10, 1.0), (4, 0, 1.0)])
                .unwrap();
        let bell = BellMatrix::from_csr(&a, 4, u64::MAX).unwrap();
        assert_eq!(bell.blocks_per_row(), 3);
        assert_eq!(bell.num_stored_blocks(), 4);
        assert_eq!(bell.num_slots(), 6); // 2 block rows x width 3
    }

    #[test]
    fn oom_detection() {
        // A diagonal-ish scatter forces every block row to its own column
        // and a very wide ELL once a single row is dense.
        let t: Vec<(usize, usize, f32)> = (0..64).map(|c| (0, c * 32, 1.0)).collect();
        let a = CsrMatrix::from_triplets(32, 64 * 32, &t).unwrap();
        let err = BellMatrix::from_csr(&a, 32, 1024).unwrap_err();
        assert!(matches!(err, FormatError::OutOfMemory { .. }));
    }

    #[test]
    fn fill_ratio_reflects_padding() {
        let a = CsrMatrix::from_triplets(4, 4, &[(0, 0, 1.0)]).unwrap();
        let bell = BellMatrix::from_csr(&a, 4, u64::MAX).unwrap();
        assert!((bell.fill_ratio() - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn zero_block_size_rejected() {
        let a = CsrMatrix::from_triplets(4, 4, &[(0, 0, 1.0)]).unwrap();
        assert!(BellMatrix::from_csr(&a, 0, u64::MAX).is_err());
    }

    #[test]
    fn empty_matrix() {
        let a = CsrMatrix::from_triplets(8, 8, &[]).unwrap();
        let bell = BellMatrix::from_csr(&a, 4, u64::MAX).unwrap();
        assert_eq!(bell.blocks_per_row(), 0);
        assert_eq!(bell.to_csr().unwrap().nnz(), 0);
    }
}
