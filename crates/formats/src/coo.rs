use crate::{CsrMatrix, DenseMatrix, FormatError};

/// A sparse matrix in Coordinate (COO) format.
///
/// Entries are kept sorted by `(row, col)` with duplicates summed, so a
/// `CooMatrix` is a canonical representation: two COO matrices with the same
/// entries compare equal.
///
/// # Example
///
/// ```
/// use dtc_formats::CooMatrix;
///
/// # fn main() -> Result<(), dtc_formats::FormatError> {
/// let m = CooMatrix::from_triplets(3, 3, &[(2, 1, 4.0), (0, 0, 1.0)])?;
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.triplets()[0], (0, 0, 1.0)); // sorted
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f32)>,
}

impl CooMatrix {
    /// Builds a COO matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate coordinates are summed; explicit zeros are kept (they are
    /// structural non-zeros, as in SuiteSparse).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::IndexOutOfBounds`] if any triplet lies outside
    /// the declared shape.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f32)],
    ) -> Result<Self, FormatError> {
        let mut entries: Vec<(u32, u32, f32)> = Vec::with_capacity(triplets.len());
        for &(r, c, v) in triplets {
            if r >= rows || c >= cols {
                return Err(FormatError::IndexOutOfBounds { row: r, col: c, rows, cols });
            }
            entries.push((r as u32, c as u32, v));
        }
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // Sum duplicates.
        let mut dedup: Vec<(u32, u32, f32)> = Vec::with_capacity(entries.len());
        for (r, c, v) in entries {
            match dedup.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => dedup.push((r, c, v)),
            }
        }
        Ok(CooMatrix { rows, cols, entries: dedup })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structural) non-zeros.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The sorted `(row, col, value)` triplets.
    pub fn triplets(&self) -> Vec<(usize, usize, f32)> {
        self.entries.iter().map(|&(r, c, v)| (r as usize, c as usize, v)).collect()
    }

    /// Iterator over the sorted entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        self.entries.iter().map(|&(r, c, v)| (r as usize, c as usize, v))
    }

    /// Converts to CSR.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.rows + 1];
        for &(r, _, _) in &self.entries {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx: Vec<u32> = self.entries.iter().map(|e| e.1).collect();
        let values: Vec<f32> = self.entries.iter().map(|e| e.2).collect();
        CsrMatrix::from_parts(self.rows, self.cols, row_ptr, col_idx, values)
            .expect("COO invariants guarantee a valid CSR")
    }

    /// Materializes the matrix densely. Intended for small test matrices.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for &(r, c, v) in &self.entries {
            out.set(r as usize, c as usize, v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_are_sorted_and_summed() {
        let m = CooMatrix::from_triplets(4, 4, &[(1, 1, 2.0), (0, 3, 1.0), (1, 1, 3.0)]).unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.triplets(), vec![(0, 3, 1.0), (1, 1, 5.0)]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let err = CooMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).unwrap_err();
        assert!(matches!(err, FormatError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn to_csr_roundtrip_via_dense() {
        let m = CooMatrix::from_triplets(3, 5, &[(0, 4, 1.0), (2, 0, -2.0), (2, 3, 9.0)]).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.to_dense(), m.to_dense());
    }

    #[test]
    fn empty_matrix() {
        let m = CooMatrix::from_triplets(10, 10, &[]).unwrap();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.to_csr().nnz(), 0);
    }

    #[test]
    fn canonical_equality() {
        let a = CooMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]).unwrap();
        let b = CooMatrix::from_triplets(2, 2, &[(1, 1, 2.0), (0, 0, 1.0)]).unwrap();
        assert_eq!(a, b);
    }
}
