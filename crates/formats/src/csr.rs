use crate::{CooMatrix, DenseMatrix, FormatError};

/// A sparse matrix in Compressed Sparse Row (CSR) format.
///
/// CSR is the reference format of the workspace: cuSPARSE's SpMM consumes
/// it directly, every other format converts from it, and
/// [`CsrMatrix::spmm_reference`] is the ground-truth SpMM every kernel is
/// checked against.
///
/// Memory complexity (in 32-bit elements, values excluded, as the paper
/// counts in Observation 1): `M + 1 + NNZ`.
///
/// # Example
///
/// ```
/// use dtc_formats::{CsrMatrix, DenseMatrix};
///
/// # fn main() -> Result<(), dtc_formats::FormatError> {
/// let a = CsrMatrix::from_triplets(2, 3, &[(0, 1, 2.0), (1, 0, 1.0), (1, 2, 4.0)])?;
/// let b = DenseMatrix::ones(3, 2);
/// let c = a.spmm_reference(&b)?;
/// assert_eq!(c.get(0, 0), 2.0);
/// assert_eq!(c.get(1, 1), 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw arrays.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::MalformedRowPtr`] when `row_ptr` has the wrong
    /// length, is not monotone, or disagrees with `col_idx.len()`;
    /// [`FormatError::IndexOutOfBounds`] when a column index exceeds `cols`;
    /// and [`FormatError::DimensionMismatch`] when `values` and `col_idx`
    /// lengths differ. Column indices within each row must be strictly
    /// increasing (canonical CSR).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self, FormatError> {
        if row_ptr.len() != rows + 1 {
            return Err(FormatError::MalformedRowPtr(format!(
                "row_ptr length {} != rows + 1 = {}",
                row_ptr.len(),
                rows + 1
            )));
        }
        if row_ptr[0] != 0 {
            return Err(FormatError::MalformedRowPtr("row_ptr[0] != 0".into()));
        }
        if *row_ptr.last().unwrap() != col_idx.len() {
            return Err(FormatError::MalformedRowPtr(format!(
                "row_ptr[last] {} != nnz {}",
                row_ptr.last().unwrap(),
                col_idx.len()
            )));
        }
        if col_idx.len() != values.len() {
            return Err(FormatError::DimensionMismatch {
                op: "CsrMatrix::from_parts",
                lhs: (col_idx.len(), 1),
                rhs: (values.len(), 1),
            });
        }
        for w in row_ptr.windows(2) {
            if w[1] < w[0] {
                return Err(FormatError::MalformedRowPtr("row_ptr not monotone".into()));
            }
        }
        for r in 0..rows {
            let range = row_ptr[r]..row_ptr[r + 1];
            let mut prev: Option<u32> = None;
            for &c in &col_idx[range] {
                if c as usize >= cols {
                    return Err(FormatError::IndexOutOfBounds {
                        row: r,
                        col: c as usize,
                        rows,
                        cols,
                    });
                }
                if let Some(p) = prev {
                    if c <= p {
                        return Err(FormatError::MalformedRowPtr(format!(
                            "columns not strictly increasing in row {r}"
                        )));
                    }
                }
                prev = Some(c);
            }
        }
        Ok(CsrMatrix { rows, cols, row_ptr, col_idx, values })
    }

    /// Builds a CSR matrix from `(row, col, value)` triplets (via COO).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::IndexOutOfBounds`] for entries outside the shape.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f32)],
    ) -> Result<Self, FormatError> {
        Ok(CooMatrix::from_triplets(rows, cols, triplets)?.to_csr())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The row-pointer array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column-index array (`nnz` entries).
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The value array (`nnz` entries).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Length (number of stored entries) of row `r`.
    #[inline]
    pub fn row_len(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// The `(columns, values)` of row `r`.
    #[inline]
    pub fn row_entries(&self, r: usize) -> (&[u32], &[f32]) {
        let range = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[range.clone()], &self.values[range])
    }

    /// Iterator over `(row, col, value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row_entries(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// Converts back to COO.
    pub fn to_coo(&self) -> CooMatrix {
        CooMatrix::from_triplets(self.rows, self.cols, &self.iter().collect::<Vec<_>>())
            .expect("CSR invariants guarantee valid COO")
    }

    /// Materializes densely. Intended for small test matrices.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.set(r, c, v);
        }
        out
    }

    /// Transposed copy (CSC of the original, expressed as CSR).
    pub fn transposed(&self) -> CsrMatrix {
        let triplets: Vec<(usize, usize, f32)> = self.iter().map(|(r, c, v)| (c, r, v)).collect();
        CsrMatrix::from_triplets(self.cols, self.rows, &triplets)
            .expect("transposed entries stay in bounds")
    }

    /// Extracts the contiguous row range `range` as its own CSR matrix
    /// (column count unchanged) — zero-copy-in-spirit: one pass over the
    /// range's entries.
    ///
    /// # Panics
    ///
    /// Panics if the range end exceeds the row count.
    pub fn sub_rows(&self, range: std::ops::Range<usize>) -> CsrMatrix {
        assert!(range.end <= self.rows, "row range out of bounds");
        let base = self.row_ptr[range.start];
        let row_ptr: Vec<usize> =
            self.row_ptr[range.start..=range.end].iter().map(|&p| p - base).collect();
        let col_idx = self.col_idx[base..self.row_ptr[range.end]].to_vec();
        let values = self.values[base..self.row_ptr[range.end]].to_vec();
        CsrMatrix { rows: range.end - range.start, cols: self.cols, row_ptr, col_idx, values }
    }

    /// Applies a row permutation: row `r` of the result is row `perm[r]` of
    /// `self`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..rows`.
    pub fn permute_rows(&self, perm: &[usize]) -> CsrMatrix {
        assert_eq!(perm.len(), self.rows, "permutation length mismatch");
        let mut seen = vec![false; self.rows];
        for &p in perm {
            assert!(p < self.rows && !seen[p], "not a permutation");
            seen[p] = true;
        }
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        row_ptr.push(0);
        for &src in perm {
            let (cols, vals) = self.row_entries(src);
            col_idx.extend_from_slice(cols);
            values.extend_from_slice(vals);
            row_ptr.push(col_idx.len());
        }
        CsrMatrix { rows: self.rows, cols: self.cols, row_ptr, col_idx, values }
    }

    /// Ground-truth SpMM in full FP32: `C = A * B`.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::DimensionMismatch`] when `self.cols != b.rows`.
    pub fn spmm_reference(&self, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        if self.cols != b.rows() {
            return Err(FormatError::DimensionMismatch {
                op: "spmm",
                lhs: (self.rows, self.cols),
                rhs: (b.rows(), b.cols()),
            });
        }
        let n = b.cols();
        let mut c = DenseMatrix::zeros(self.rows, n);
        if n == 0 {
            return Ok(c);
        }
        // Row-parallel: each output row is owned by exactly one chunk and
        // accumulated in the serial entry order, so any thread count yields
        // bit-identical results (this is also the cuSPARSE/Sputnik row-split
        // decomposition the baselines model). Shard cut points follow the
        // per-row nnz so power-law rows don't pile onto one worker.
        let weights: Vec<u64> = (0..self.rows).map(|r| self.row_len(r) as u64).collect();
        dtc_par::par_chunks_mut_weighted(c.as_mut_slice(), n, &weights, |r, out| {
            let (cols, vals) = self.row_entries(r);
            for (&col, &val) in cols.iter().zip(vals) {
                let brow = b.row(col as usize);
                for (o, &bv) in out.iter_mut().zip(brow) {
                    *o += val * bv;
                }
            }
        });
        Ok(c)
    }

    /// Total floating point operations of one SpMM against an `N`-column
    /// dense matrix: `2 * N * NNZ` (the paper's definition, §3).
    pub fn spmm_flops(&self, n: usize) -> u64 {
        2 * n as u64 * self.nnz() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            4,
            4,
            &[(0, 0, 1.0), (0, 3, 2.0), (1, 1, 3.0), (3, 0, 4.0), (3, 2, 5.0)],
        )
        .unwrap()
    }

    #[test]
    fn shape_and_nnz() {
        let m = sample();
        assert_eq!((m.rows(), m.cols(), m.nnz()), (4, 4, 5));
        assert_eq!(m.row_len(0), 2);
        assert_eq!(m.row_len(2), 0);
    }

    #[test]
    fn from_parts_validation() {
        // wrong row_ptr length
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // non-monotone
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        // col out of bounds
        assert!(CsrMatrix::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // duplicate column in row
        assert!(CsrMatrix::from_parts(1, 4, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).is_err());
        // decreasing columns
        assert!(CsrMatrix::from_parts(1, 4, vec![0, 2], vec![2, 1], vec![1.0, 1.0]).is_err());
        // valid
        assert!(CsrMatrix::from_parts(1, 4, vec![0, 2], vec![1, 2], vec![1.0, 1.0]).is_ok());
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let m = sample();
        let b = DenseMatrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.5);
        let sparse = m.spmm_reference(&b).unwrap();
        let dense = m.to_dense().matmul(&b).unwrap();
        assert!(sparse.max_abs_diff(&dense) < 1e-6);
    }

    #[test]
    fn spmm_dim_mismatch() {
        let m = sample();
        assert!(m.spmm_reference(&DenseMatrix::zeros(5, 2)).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn permute_rows_identity_and_reverse() {
        let m = sample();
        let id: Vec<usize> = (0..4).collect();
        assert_eq!(m.permute_rows(&id), m);
        let rev: Vec<usize> = (0..4).rev().collect();
        let p = m.permute_rows(&rev);
        assert_eq!(p.row_entries(0), m.row_entries(3));
        assert_eq!(p.nnz(), m.nnz());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permute_rows_rejects_duplicates() {
        sample().permute_rows(&[0, 0, 1, 2]);
    }

    #[test]
    fn sub_rows_extracts_correctly() {
        let m = sample();
        let sub = m.sub_rows(1..4);
        assert_eq!(sub.rows(), 3);
        assert_eq!(sub.cols(), m.cols());
        assert_eq!(sub.row_entries(0), m.row_entries(1));
        assert_eq!(sub.row_entries(2), m.row_entries(3));
        // Degenerate: empty range.
        assert_eq!(m.sub_rows(2..2).rows(), 0);
        // Whole matrix.
        assert_eq!(m.sub_rows(0..4), m);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn sub_rows_rejects_overrun() {
        sample().sub_rows(2..5);
    }

    #[test]
    fn coo_roundtrip() {
        let m = sample();
        assert_eq!(m.to_coo().to_csr(), m);
    }

    #[test]
    fn flops_formula() {
        assert_eq!(sample().spmm_flops(128), 2 * 128 * 5);
    }
}
