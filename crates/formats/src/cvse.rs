use crate::{CsrMatrix, FormatError};

/// Column-Vector Sparse Encoding (CVSE) — VectorSparse's format.
///
/// Rows are grouped into vectors of `vector_len` consecutive rows. For every
/// column where *any* row of the group has a non-zero, a dense
/// `vector_len × 1` column vector is stored (zero-padded). This is
/// finer-grained than BELL blocks but still pays padding for unstructured
/// sparsity — each stored vector with a single real non-zero wastes
/// `vector_len - 1` slots.
///
/// # Example
///
/// ```
/// use dtc_formats::{CsrMatrix, CvseMatrix};
///
/// # fn main() -> Result<(), dtc_formats::FormatError> {
/// let a = CsrMatrix::from_triplets(8, 8, &[(0, 3, 1.0), (1, 3, 2.0), (5, 0, 3.0)])?;
/// let v = CvseMatrix::from_csr(&a, 4)?;
/// assert_eq!(v.num_vectors(), 2); // col 3 of group 0, col 0 of group 1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CvseMatrix {
    rows: usize,
    cols: usize,
    nnz: usize,
    vector_len: usize,
    /// Offsets into `vector_cols` per row group (`num_groups + 1`).
    group_ptr: Vec<usize>,
    /// Column index of each stored vector.
    vector_cols: Vec<u32>,
    /// Dense vector values, `vector_len` per stored vector.
    vector_values: Vec<f32>,
    /// Structural occupancy aligned with `vector_values`: `true` where the
    /// original matrix stored an entry. Distinguishes explicit stored
    /// zeros (which must participate in the multiply — `0 x Inf = NaN`)
    /// from vector padding (which must not).
    vector_mask: Vec<bool>,
}

impl CvseMatrix {
    /// Converts CSR to CVSE with the given vector length (the paper
    /// evaluates 4 and 8).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::NotSupported`] if `vector_len` is zero.
    pub fn from_csr(a: &CsrMatrix, vector_len: usize) -> Result<Self, FormatError> {
        if vector_len == 0 {
            return Err(FormatError::NotSupported("vector length must be positive".into()));
        }
        let num_groups = a.rows().div_ceil(vector_len);
        let mut group_ptr = Vec::with_capacity(num_groups + 1);
        let mut vector_cols: Vec<u32> = Vec::new();
        let mut vector_values: Vec<f32> = Vec::new();
        let mut vector_mask: Vec<bool> = Vec::new();
        group_ptr.push(0);
        for g in 0..num_groups {
            let row_lo = g * vector_len;
            let row_hi = (row_lo + vector_len).min(a.rows());
            let mut cols: Vec<u32> = Vec::new();
            for r in row_lo..row_hi {
                cols.extend_from_slice(a.row_entries(r).0);
            }
            cols.sort_unstable();
            cols.dedup();
            let base = vector_values.len();
            vector_values.resize(base + cols.len() * vector_len, 0.0);
            vector_mask.resize(base + cols.len() * vector_len, false);
            for r in row_lo..row_hi {
                let (rcols, rvals) = a.row_entries(r);
                for (&c, &v) in rcols.iter().zip(rvals) {
                    let slot = cols.binary_search(&c).expect("col present");
                    vector_values[base + slot * vector_len + (r - row_lo)] = v;
                    vector_mask[base + slot * vector_len + (r - row_lo)] = true;
                }
            }
            vector_cols.extend_from_slice(&cols);
            group_ptr.push(vector_cols.len());
        }
        Ok(CvseMatrix {
            rows: a.rows(),
            cols: a.cols(),
            nnz: a.nnz(),
            vector_len,
            group_ptr,
            vector_cols,
            vector_values,
            vector_mask,
        })
    }

    /// Number of rows of the original matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the original matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Structural non-zeros of the original matrix.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Length of each stored column vector.
    pub fn vector_len(&self) -> usize {
        self.vector_len
    }

    /// Number of row groups.
    pub fn num_groups(&self) -> usize {
        self.group_ptr.len() - 1
    }

    /// Total stored column vectors.
    pub fn num_vectors(&self) -> usize {
        self.vector_cols.len()
    }

    /// `(columns, values)` of the vectors in group `g`; `values` holds
    /// `vector_len` floats per column.
    pub fn group(&self, g: usize) -> (&[u32], &[f32]) {
        let range = self.group_ptr[g]..self.group_ptr[g + 1];
        (
            &self.vector_cols[range.clone()],
            &self.vector_values[range.start * self.vector_len..range.end * self.vector_len],
        )
    }

    /// Structural occupancy of the vectors in group `g`, aligned with the
    /// values of [`group`](Self::group): `true` where the original matrix
    /// stored an entry (even an explicit zero), `false` for padding.
    pub fn group_mask(&self, g: usize) -> &[bool] {
        let range = self.group_ptr[g]..self.group_ptr[g + 1];
        &self.vector_mask[range.start * self.vector_len..range.end * self.vector_len]
    }

    /// Fraction of stored value slots that are real non-zeros.
    pub fn fill_ratio(&self) -> f64 {
        if self.vector_values.is_empty() {
            return 0.0;
        }
        self.nnz as f64 / self.vector_values.len() as f64
    }

    /// Bytes of stored vectors + indices.
    pub fn stored_bytes(&self) -> u64 {
        self.vector_values.len() as u64 * 4 + self.vector_cols.len() as u64 * 4
    }

    /// Reconstructs the original matrix (for verification). The occupancy
    /// mask keeps explicit zero entries distinct from padding, so the
    /// round-trip is exact.
    ///
    /// # Errors
    ///
    /// Never fails for values built by [`CvseMatrix::from_csr`].
    pub fn to_csr(&self) -> Result<CsrMatrix, FormatError> {
        let mut triplets = Vec::with_capacity(self.nnz);
        for g in 0..self.num_groups() {
            let (cols, vals) = self.group(g);
            let mask = self.group_mask(g);
            for (i, &c) in cols.iter().enumerate() {
                for lr in 0..self.vector_len {
                    if mask[i * self.vector_len + lr] {
                        let v = vals[i * self.vector_len + lr];
                        triplets.push((g * self.vector_len + lr, c as usize, v));
                    }
                }
            }
        }
        CsrMatrix::from_triplets(self.rows, self.cols, &triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let a = CsrMatrix::from_triplets(
            10,
            12,
            &[(0, 0, 1.0), (3, 0, 2.0), (4, 11, 3.0), (9, 6, 4.0)],
        )
        .unwrap();
        let v = CvseMatrix::from_csr(&a, 4).unwrap();
        assert_eq!(v.to_csr().unwrap(), a);
    }

    #[test]
    fn vector_sharing() {
        // Rows 0..4 all hit column 7: one vector, fully dense.
        let t: Vec<(usize, usize, f32)> = (0..4).map(|r| (r, 7, (r + 1) as f32)).collect();
        let a = CsrMatrix::from_triplets(4, 8, &t).unwrap();
        let v = CvseMatrix::from_csr(&a, 4).unwrap();
        assert_eq!(v.num_vectors(), 1);
        assert_eq!(v.fill_ratio(), 1.0);
    }

    #[test]
    fn lonely_nonzeros_pad() {
        // One nnz per group: fill ratio = 1/vector_len.
        let a = CsrMatrix::from_triplets(8, 8, &[(0, 0, 1.0), (4, 4, 1.0)]).unwrap();
        let v = CvseMatrix::from_csr(&a, 4).unwrap();
        assert!((v.fill_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_len_rejected() {
        let a = CsrMatrix::from_triplets(4, 4, &[]).unwrap();
        assert!(CvseMatrix::from_csr(&a, 0).is_err());
    }

    #[test]
    fn group_accessor_shapes() {
        let a = CsrMatrix::from_triplets(8, 8, &[(0, 1, 1.0), (1, 2, 2.0), (6, 3, 3.0)]).unwrap();
        let v = CvseMatrix::from_csr(&a, 4).unwrap();
        let (cols, vals) = v.group(0);
        assert_eq!(cols, &[1, 2]);
        assert_eq!(vals.len(), 8);
    }
}
