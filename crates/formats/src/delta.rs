//! Incremental edits against an existing [`MeTcfMatrix`].
//!
//! A [`MatrixDelta`] is a batch of COO-level edits (insert / update /
//! delete of single entries). Applying it to an ME-TCF matrix re-condenses
//! **only the 16-row windows that contain an edited row** and splices the
//! freshly packed windows into the existing arrays, re-basing the offset
//! arrays locally. Because SGT condenses each window independently of
//! every other window, the patched matrix is bitwise identical to a full
//! rebuild from the edited CSR (`MeTcfMatrix::from_csr(&delta.apply_to_csr(a)?)`)
//! — the fuzz harness pins this for random edit scripts.
//!
//! The returned [`DeltaReport`] carries before/after non-zero and TC-block
//! counts per touched window; its [`DeltaReport::drift`] is the signal
//! `dtc-core` uses to decide whether kernel re-selection is worth running.

use crate::{CsrMatrix, FormatError, MeTcfMatrix, WINDOW_HEIGHT};
use std::collections::BTreeMap;

/// One pending edit: set the entry to a value, or remove it.
#[derive(Debug, Clone, Copy, PartialEq)]
enum DeltaOp {
    /// Insert the entry, or overwrite it if already present.
    Upsert(f32),
    /// Remove the entry (a no-op if it is absent).
    Delete,
}

/// A batch of COO-level edits to apply to a sparse matrix.
///
/// Edits are keyed by coordinate with **last-op-wins** semantics: queueing
/// a delete after an insert at the same `(row, col)` leaves a delete.
/// Iteration order (and therefore application) is deterministic.
///
/// # Example
///
/// ```
/// use dtc_formats::{CsrMatrix, MatrixDelta, MeTcfMatrix};
///
/// # fn main() -> Result<(), dtc_formats::FormatError> {
/// let a = CsrMatrix::from_triplets(32, 32, &[(0, 1, 1.0), (20, 3, 2.0)])?;
/// let mut m = MeTcfMatrix::from_csr(&a);
/// let mut delta = MatrixDelta::new();
/// delta.insert(0, 5, 9.0);
/// delta.delete(20, 3);
/// let report = m.apply_delta(&delta)?;
/// assert_eq!(report.touched_windows(), 2);
/// assert_eq!(m, MeTcfMatrix::from_csr(&delta.apply_to_csr(&a)?));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MatrixDelta {
    ops: BTreeMap<(usize, usize), DeltaOp>,
}

impl MatrixDelta {
    /// An empty edit batch.
    pub fn new() -> Self {
        MatrixDelta::default()
    }

    /// True when no edits are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of distinct coordinates edited (after last-op-wins folding).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Queues an insert of `value` at `(row, col)`; overwrites the entry if
    /// it already exists (sparse matrices store no explicit zeros, so
    /// insert and update are the same upsert).
    pub fn insert(&mut self, row: usize, col: usize, value: f32) {
        self.ops.insert((row, col), DeltaOp::Upsert(value));
    }

    /// Queues an update of the entry at `(row, col)` to `value`. Alias of
    /// [`MatrixDelta::insert`]: updating an absent coordinate inserts it.
    pub fn update(&mut self, row: usize, col: usize, value: f32) {
        self.insert(row, col, value);
    }

    /// Queues a delete of the entry at `(row, col)`; a no-op at apply time
    /// if the entry is absent.
    pub fn delete(&mut self, row: usize, col: usize) {
        self.ops.insert((row, col), DeltaOp::Delete);
    }

    /// Iterates the folded edits in coordinate order as `(row, col, op)`,
    /// where `Some(value)` is an upsert and `None` a delete. Callers that
    /// need to re-express a delta in another row space (e.g. through a
    /// reordering permutation) rebuild one from this.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Option<f32>)> + '_ {
        self.ops.iter().map(|(&(r, c), &op)| match op {
            DeltaOp::Upsert(v) => (r, c, Some(v)),
            DeltaOp::Delete => (r, c, None),
        })
    }

    /// The sorted, deduplicated indices of the 16-row windows containing at
    /// least one edited coordinate.
    pub fn touched_windows(&self) -> Vec<usize> {
        let mut ws: Vec<usize> = self.ops.keys().map(|&(r, _)| r / WINDOW_HEIGHT).collect();
        ws.dedup(); // BTreeMap keys are row-sorted, so duplicates are adjacent
        ws
    }

    /// Edits grouped by window index, in coordinate order within each
    /// window. Keys are absolute `(row, col)`.
    fn ops_by_window(&self) -> BTreeMap<usize, Vec<(usize, usize, DeltaOp)>> {
        let mut by_window: BTreeMap<usize, Vec<(usize, usize, DeltaOp)>> = BTreeMap::new();
        for (&(r, c), &op) in &self.ops {
            by_window.entry(r / WINDOW_HEIGHT).or_default().push((r, c, op));
        }
        by_window
    }

    /// Returns the first out-of-bounds coordinate as an error.
    fn check_bounds(&self, rows: usize, cols: usize) -> Result<(), FormatError> {
        for &(r, c) in self.ops.keys() {
            if r >= rows || c >= cols {
                return Err(FormatError::IndexOutOfBounds { row: r, col: c, rows, cols });
            }
        }
        Ok(())
    }

    /// Applies the batch to a CSR matrix, producing the edited matrix by a
    /// full rebuild (per-row sorted merge). This is the reference semantics
    /// that [`MeTcfMatrix::apply_delta`] must match bitwise, and the
    /// "rebuild from scratch" arm of the streaming benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::IndexOutOfBounds`] when an edit lies outside
    /// `a`'s shape.
    pub fn apply_to_csr(&self, a: &CsrMatrix) -> Result<CsrMatrix, FormatError> {
        self.check_bounds(a.rows(), a.cols())?;
        let mut by_row: BTreeMap<usize, Vec<(usize, DeltaOp)>> = BTreeMap::new();
        for (&(r, c), &op) in &self.ops {
            by_row.entry(r).or_default().push((c, op));
        }
        let mut row_ptr = Vec::with_capacity(a.rows() + 1);
        let mut col_idx = Vec::with_capacity(a.nnz() + self.len());
        let mut values = Vec::with_capacity(a.nnz() + self.len());
        row_ptr.push(0usize);
        for r in 0..a.rows() {
            let (cols, vals) = a.row_entries(r);
            match by_row.get(&r) {
                None => {
                    col_idx.extend_from_slice(cols);
                    values.extend_from_slice(vals);
                }
                Some(edits) => {
                    // Sorted two-pointer merge of the existing row with its
                    // (column-sorted) edits; an edit at an existing column
                    // replaces or deletes it.
                    let mut e = edits.iter().peekable();
                    for (&c, &v) in cols.iter().zip(vals) {
                        while let Some(&&(ec, eop)) = e.peek() {
                            if ec >= c as usize {
                                break;
                            }
                            e.next();
                            if let DeltaOp::Upsert(ev) = eop {
                                col_idx.push(ec as u32);
                                values.push(ev);
                            }
                        }
                        match e.peek() {
                            Some(&&(ec, eop)) if ec == c as usize => {
                                e.next();
                                if let DeltaOp::Upsert(ev) = eop {
                                    col_idx.push(c);
                                    values.push(ev);
                                }
                            }
                            _ => {
                                col_idx.push(c);
                                values.push(v);
                            }
                        }
                    }
                    for &(ec, eop) in e {
                        if let DeltaOp::Upsert(ev) = eop {
                            col_idx.push(ec as u32);
                            values.push(ev);
                        }
                    }
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_parts(a.rows(), a.cols(), row_ptr, col_idx, values)
    }
}

/// Before/after shape of one window touched by a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowDeltaStat {
    /// Index of the 16-row window.
    pub window: usize,
    /// Stored non-zeros in the window before the edit.
    pub nnz_before: usize,
    /// Stored non-zeros in the window after the edit.
    pub nnz_after: usize,
    /// TC blocks in the window before the edit.
    pub blocks_before: usize,
    /// TC blocks in the window after the edit.
    pub blocks_after: usize,
}

/// What an [`MeTcfMatrix::apply_delta`] call changed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeltaReport {
    /// Per-window before/after stats, one entry per touched window, in
    /// window order.
    pub windows: Vec<WindowDeltaStat>,
    /// Whole-matrix non-zero count before the edit.
    pub nnz_before: usize,
    /// Whole-matrix non-zero count after the edit.
    pub nnz_after: usize,
    /// Whole-matrix TC-block count before the edit.
    pub blocks_before: usize,
    /// Whole-matrix TC-block count after the edit.
    pub blocks_after: usize,
}

impl DeltaReport {
    /// Number of windows the delta re-condensed.
    pub fn touched_windows(&self) -> usize {
        self.windows.len()
    }

    /// Relative drift of the row-length statistics the kernel selector
    /// keys on: the summed absolute per-window change in non-zeros and TC
    /// blocks, normalized by the pre-edit totals. `0.0` for an empty delta;
    /// grows toward (and past) `1.0` as edits reshape the matrix.
    pub fn drift(&self) -> f64 {
        let moved: usize = self
            .windows
            .iter()
            .map(|w| w.nnz_after.abs_diff(w.nnz_before) + w.blocks_after.abs_diff(w.blocks_before))
            .sum();
        moved as f64 / (self.nnz_before + self.blocks_before).max(1) as f64
    }
}

impl MeTcfMatrix {
    /// The `(row, col, value)` triplets of window `w`, with rows local to
    /// the window.
    fn window_triplets(&self, w: usize) -> Vec<(usize, usize, f32)> {
        let blocks = self.window_blocks(w);
        let window_nnz = (self.tc_offset()[blocks.end] - self.tc_offset()[blocks.start]) as usize;
        let mut triplets = Vec::with_capacity(window_nnz);
        for t in blocks {
            let cols = self.block_cols(t);
            let (ids, vals) = self.block_entries(t);
            for (&id, &v) in ids.iter().zip(vals) {
                let local_row = (id / crate::BLOCK_WIDTH as u8) as usize;
                let local_col = (id % crate::BLOCK_WIDTH as u8) as usize;
                triplets.push((local_row, cols[local_col] as usize, v));
            }
        }
        triplets
    }

    /// Applies a batch of edits in place, re-condensing only the touched
    /// 16-row windows and splicing them into the packed arrays (offsets
    /// re-based locally). Untouched windows are copied verbatim, so the
    /// result is **bitwise identical** to rebuilding from the edited CSR.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::IndexOutOfBounds`] when an edit lies outside
    /// the matrix shape, and [`FormatError::IndexOverflow`] if the edited
    /// matrix would exceed the format's `u32` offset range. The matrix is
    /// unchanged on error.
    pub fn apply_delta(&mut self, delta: &MatrixDelta) -> Result<DeltaReport, FormatError> {
        delta.check_bounds(self.rows(), self.cols())?;
        let mut report = DeltaReport {
            windows: Vec::new(),
            nnz_before: self.nnz(),
            nnz_after: self.nnz(),
            blocks_before: self.num_tc_blocks(),
            blocks_after: self.num_tc_blocks(),
        };
        if delta.is_empty() {
            return Ok(report);
        }

        // Re-condense each touched window through the same per-window SGT
        // path a full conversion uses: condensing is a pure function of a
        // window's triplets, so the sub-result is that window's exact slice
        // of a full rebuild.
        let mut patched: BTreeMap<usize, MeTcfMatrix> = BTreeMap::new();
        for (w, ops) in delta.ops_by_window() {
            let base_row = w * WINDOW_HEIGHT;
            let window_rows = WINDOW_HEIGHT.min(self.rows() - base_row);
            let mut entries: BTreeMap<(usize, usize), f32> =
                self.window_triplets(w).into_iter().map(|(r, c, v)| ((r, c), v)).collect();
            for (row, col, op) in ops {
                match op {
                    DeltaOp::Upsert(v) => {
                        entries.insert((row - base_row, col), v);
                    }
                    DeltaOp::Delete => {
                        entries.remove(&(row - base_row, col));
                    }
                }
            }
            let triplets: Vec<(usize, usize, f32)> =
                entries.into_iter().map(|((r, c), v)| (r, c, v)).collect();
            let sub = CsrMatrix::from_triplets(window_rows, self.cols(), &triplets)
                .expect("window triplets stay in bounds");
            patched.insert(w, MeTcfMatrix::from_csr(&sub));
        }

        // One splice pass over the windows: untouched windows copy their
        // array slices with offsets re-based; touched windows take the
        // freshly packed single-window arrays.
        let nnz_bound = |count: usize| {
            u32::try_from(count).map_err(|_| FormatError::IndexOverflow { what: "nnz", count })
        };
        let block_bound = |count: usize| {
            u32::try_from(count)
                .map_err(|_| FormatError::IndexOverflow { what: "tc blocks", count })
        };
        let new_nnz = self.nnz() as i64
            + patched
                .iter()
                .map(|(&w, sub)| {
                    let blocks = self.window_blocks(w);
                    let before =
                        self.tc_offset()[blocks.end] as i64 - self.tc_offset()[blocks.start] as i64;
                    sub.nnz() as i64 - before
                })
                .sum::<i64>();
        nnz_bound(new_nnz as usize)?;

        let mut row_window_offset: Vec<u32> = Vec::with_capacity(self.num_windows() + 1);
        let mut tc_offset: Vec<u32> = Vec::new();
        let mut tc_local_id: Vec<u8> = Vec::with_capacity(new_nnz as usize);
        let mut sparse_a_to_b: Vec<u32> = Vec::new();
        let mut values: Vec<f32> = Vec::with_capacity(new_nnz as usize);
        row_window_offset.push(0);
        tc_offset.push(0);
        for w in 0..self.num_windows() {
            let blocks = self.window_blocks(w);
            match patched.get(&w) {
                Some(sub) => {
                    report.windows.push(WindowDeltaStat {
                        window: w,
                        nnz_before: (self.tc_offset()[blocks.end] - self.tc_offset()[blocks.start])
                            as usize,
                        nnz_after: sub.nnz(),
                        blocks_before: blocks.len(),
                        blocks_after: sub.num_tc_blocks(),
                    });
                    let base = tc_local_id.len();
                    tc_local_id.extend_from_slice(sub.tc_local_id());
                    values.extend_from_slice(sub.values());
                    sparse_a_to_b.extend_from_slice(sub.sparse_a_to_b());
                    for t in 0..sub.num_tc_blocks() {
                        tc_offset.push(nnz_bound(base + sub.tc_offset()[t + 1] as usize)?);
                    }
                }
                None => {
                    let old = self.tc_offset()[blocks.start] as usize
                        ..self.tc_offset()[blocks.end] as usize;
                    tc_local_id.extend_from_slice(&self.tc_local_id()[old.clone()]);
                    values.extend_from_slice(&self.values()[old]);
                    sparse_a_to_b.extend_from_slice(
                        &self.sparse_a_to_b()
                            [blocks.start * crate::BLOCK_WIDTH..blocks.end * crate::BLOCK_WIDTH],
                    );
                    for t in blocks.clone() {
                        let in_block = (self.tc_offset()[t + 1] - self.tc_offset()[t]) as usize;
                        let prev = *tc_offset.last().unwrap() as usize;
                        tc_offset.push(nnz_bound(prev + in_block)?);
                    }
                    debug_assert_eq!(*tc_offset.last().unwrap() as usize, tc_local_id.len());
                }
            }
            row_window_offset.push(block_bound(tc_offset.len() - 1)?);
        }
        report.nnz_after = tc_local_id.len();
        report.blocks_after = tc_offset.len() - 1;
        *self = MeTcfMatrix::from_raw_parts(
            self.rows(),
            self.cols(),
            row_window_offset,
            tc_offset,
            tc_local_id,
            sparse_a_to_b,
            values,
        );
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // 3 windows, entries spread unevenly, one empty window in front of
        // the last.
        CsrMatrix::from_triplets(
            40,
            64,
            &[
                (0, 1, 1.0),
                (0, 20, 2.0),
                (3, 1, 3.0),
                (7, 9, -1.5),
                (15, 63, 4.0),
                (33, 0, 7.0),
                (39, 12, -8.0),
            ],
        )
        .unwrap()
    }

    fn assert_matches_rebuild(a: &CsrMatrix, delta: &MatrixDelta) -> DeltaReport {
        let mut m = MeTcfMatrix::from_csr(a);
        let report = m.apply_delta(delta).unwrap();
        let rebuilt = MeTcfMatrix::from_csr(&delta.apply_to_csr(a).unwrap());
        assert_eq!(m, rebuilt, "patched ME-TCF must equal rebuild-from-scratch");
        assert_eq!(report.nnz_after, rebuilt.nnz());
        assert_eq!(report.blocks_after, rebuilt.num_tc_blocks());
        report
    }

    #[test]
    fn empty_delta_is_identity() {
        let a = sample();
        let mut m = MeTcfMatrix::from_csr(&a);
        let before = m.clone();
        let report = m.apply_delta(&MatrixDelta::new()).unwrap();
        assert_eq!(m, before);
        assert_eq!(report.touched_windows(), 0);
        assert_eq!(report.drift(), 0.0);
    }

    #[test]
    fn single_window_insert_update_delete() {
        let a = sample();
        let mut delta = MatrixDelta::new();
        delta.insert(1, 5, 10.0); // new entry
        delta.update(0, 20, -2.0); // overwrite existing
        delta.delete(3, 1); // remove existing
        delta.delete(2, 2); // absent: no-op
        let report = assert_matches_rebuild(&a, &delta);
        assert_eq!(report.touched_windows(), 1);
        assert_eq!(report.windows[0].window, 0);
        assert_eq!(report.nnz_after, report.nnz_before); // +1 insert, -1 delete
    }

    #[test]
    fn multi_window_script_matches_rebuild() {
        let a = sample();
        let mut delta = MatrixDelta::new();
        for i in 0..30 {
            let (r, c) = ((i * 13) % 40, (i * 29) % 64);
            if i % 3 == 0 {
                delta.delete(r, c);
            } else {
                delta.insert(r, c, i as f32 - 7.5);
            }
        }
        let report = assert_matches_rebuild(&a, &delta);
        assert!(report.touched_windows() >= 2);
    }

    #[test]
    fn insert_into_empty_window_and_empty_matrix() {
        // The empty third window (rows 32..40 hold rows 33/39 — so use a
        // truly empty one: delete everything first, then insert).
        let a = CsrMatrix::from_triplets(48, 16, &[(1, 1, 1.0)]).unwrap();
        let mut delta = MatrixDelta::new();
        delta.insert(40, 3, 5.0); // window 2 was empty
        assert_matches_rebuild(&a, &delta);

        let empty = CsrMatrix::from_triplets(20, 20, &[]).unwrap();
        let mut delta = MatrixDelta::new();
        delta.insert(17, 2, 1.0);
        assert_matches_rebuild(&empty, &delta);
    }

    #[test]
    fn delete_everything_in_a_window() {
        let a = sample();
        let mut delta = MatrixDelta::new();
        for (r, c, _) in a.iter().filter(|&(r, _, _)| r < WINDOW_HEIGHT) {
            delta.delete(r, c);
        }
        let report = assert_matches_rebuild(&a, &delta);
        assert_eq!(report.windows[0].nnz_after, 0);
        assert_eq!(report.windows[0].blocks_after, 0);
    }

    #[test]
    fn ragged_last_window() {
        // 40 rows: the last window has only 8 rows; edits there must use
        // the short window height.
        let a = sample();
        let mut delta = MatrixDelta::new();
        delta.insert(39, 63, 1.25);
        delta.delete(33, 0);
        let report = assert_matches_rebuild(&a, &delta);
        assert_eq!(report.windows[0].window, 2);
    }

    #[test]
    fn last_op_wins_per_coordinate() {
        let mut delta = MatrixDelta::new();
        delta.insert(0, 0, 1.0);
        delta.delete(0, 0);
        assert_eq!(delta.len(), 1);
        let a = CsrMatrix::from_triplets(16, 16, &[(0, 0, 9.0)]).unwrap();
        let edited = delta.apply_to_csr(&a).unwrap();
        assert_eq!(edited.nnz(), 0);
        assert_matches_rebuild(&a, &delta);

        delta.insert(0, 0, 2.0); // re-queue after the delete: upsert wins
        let edited = delta.apply_to_csr(&a).unwrap();
        assert_eq!(edited.nnz(), 1);
        assert_eq!(edited.values()[0], 2.0);
    }

    #[test]
    fn out_of_bounds_edit_is_rejected_and_matrix_unchanged() {
        let a = sample();
        let mut m = MeTcfMatrix::from_csr(&a);
        let before = m.clone();
        let mut delta = MatrixDelta::new();
        delta.insert(0, 0, 1.0);
        delta.insert(40, 0, 1.0); // row out of bounds
        let err = m.apply_delta(&delta).unwrap_err();
        assert!(matches!(err, FormatError::IndexOutOfBounds { row: 40, .. }));
        assert_eq!(m, before);
        assert!(delta.apply_to_csr(&a).is_err());
    }

    #[test]
    fn touched_windows_sorted_dedup() {
        let mut delta = MatrixDelta::new();
        delta.insert(35, 0, 1.0);
        delta.insert(0, 3, 1.0);
        delta.insert(2, 9, 1.0);
        delta.insert(34, 1, 1.0);
        assert_eq!(delta.touched_windows(), vec![0, 2]);
    }

    #[test]
    fn drift_scales_with_reshaping() {
        let a = sample();
        let mut small = MatrixDelta::new();
        small.update(0, 1, 5.0); // value-only change: no shape drift
        let r = assert_matches_rebuild(&a, &small);
        assert_eq!(r.drift(), 0.0);

        let mut big = MatrixDelta::new();
        for c in 0..40 {
            big.insert(4, c, 1.0); // one dense row: many new blocks
        }
        let r = assert_matches_rebuild(&a, &big);
        assert!(r.drift() > 0.5, "dense-row insert should drift heavily, got {}", r.drift());
    }
}
