use crate::FormatError;

/// A dense, row-major `f32` matrix.
///
/// This is the `B` (input feature) and `C` (output) operand type for every
/// SpMM implementation in the workspace.
///
/// # Example
///
/// ```
/// use dtc_formats::DenseMatrix;
///
/// let mut m = DenseMatrix::zeros(2, 3);
/// m.set(1, 2, 5.0);
/// assert_eq!(m.get(1, 2), 5.0);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix of the given shape filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        DenseMatrix { rows, cols, data: vec![1.0; rows * cols] }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, FormatError> {
        if data.len() != rows * cols {
            return Err(FormatError::DimensionMismatch {
                op: "DenseMatrix::from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index ({row},{col}) out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index ({row},{col}) out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrow of one row as a slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable borrow of one row.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The backing row-major data slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Transposed copy of the matrix.
    pub fn transposed(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Dense GEMM: `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::DimensionMismatch`] when inner dimensions differ.
    pub fn matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        if self.cols != rhs.rows {
            return Err(FormatError::DimensionMismatch {
                op: "matmul",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Maximum absolute element-wise difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
    }

    /// Maximum relative element-wise difference, with `eps` guarding
    /// division by near-zero reference values.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_rel_diff(&self, other: &DenseMatrix, eps: f32) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs() / b.abs().max(eps))
            .fold(0.0f32, f32::max)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = DenseMatrix::zeros(3, 4);
        assert_eq!(z.as_slice().iter().sum::<f32>(), 0.0);
        let o = DenseMatrix::ones(3, 4);
        assert_eq!(o.as_slice().iter().sum::<f32>(), 12.0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = DenseMatrix::zeros(4, 4);
        m.set(2, 3, 7.5);
        assert_eq!(m.get(2, 3), 7.5);
        assert_eq!(m.get(3, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        DenseMatrix::zeros(2, 2).get(2, 0);
    }

    #[test]
    fn transpose_involution() {
        let m = DenseMatrix::from_fn(3, 5, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed().get(4, 2), m.get(2, 4));
    }

    #[test]
    fn matmul_identity() {
        let m = DenseMatrix::from_fn(3, 3, |r, c| (r + c) as f32);
        let id = DenseMatrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(m.matmul(&id).unwrap(), m);
    }

    #[test]
    fn matmul_known_values() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DenseMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_dim_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn diff_metrics() {
        let a = DenseMatrix::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        let b = DenseMatrix::from_vec(1, 2, vec![1.0, 2.5]).unwrap();
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!((a.max_rel_diff(&b, 1e-12) - 0.2).abs() < 1e-6);
    }

    #[test]
    fn row_accessors() {
        let m = DenseMatrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
    }
}
