use std::fmt;

/// Error type for format construction and conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// A coordinate was outside the declared matrix shape.
    IndexOutOfBounds {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// Declared number of rows.
        rows: usize,
        /// Declared number of columns.
        cols: usize,
    },
    /// Matrix dimensions of two operands do not agree.
    DimensionMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Left-hand shape.
        lhs: (usize, usize),
        /// Right-hand shape.
        rhs: (usize, usize),
    },
    /// A CSR row-pointer array was malformed (wrong length or not monotone).
    MalformedRowPtr(String),
    /// The format cannot represent this matrix on the given device
    /// (e.g. Blocked-Ellpack padding exceeding device memory).
    OutOfMemory {
        /// Bytes the conversion would need.
        required_bytes: u64,
        /// Bytes available on the simulated device.
        available_bytes: u64,
    },
    /// The implementation does not support matrices of this shape
    /// (e.g. SparTA's 50 000 row/column limit, TCGNN's square-only limit).
    NotSupported(String),
    /// A count exceeds the format's index range (e.g. ME-TCF stores
    /// non-zero and TC-block offsets as `u32`, so a matrix past 2^32 - 1
    /// non-zeros cannot be packed).
    IndexOverflow {
        /// What overflowed ("nnz", "tc blocks", ...).
        what: &'static str,
        /// The offending count.
        count: usize,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::IndexOutOfBounds { row, col, rows, cols } => write!(
                f,
                "entry ({row}, {col}) out of bounds for a {rows}x{cols} matrix"
            ),
            FormatError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            FormatError::MalformedRowPtr(msg) => write!(f, "malformed row pointer: {msg}"),
            FormatError::OutOfMemory { required_bytes, available_bytes } => write!(
                f,
                "out of memory: conversion needs {required_bytes} bytes, device has {available_bytes}"
            ),
            FormatError::NotSupported(msg) => write!(f, "not supported: {msg}"),
            FormatError::IndexOverflow { what, count } => write!(
                f,
                "index overflow: {count} {what} exceeds the format's u32 offset range"
            ),
        }
    }
}

impl std::error::Error for FormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<FormatError> = vec![
            FormatError::IndexOutOfBounds { row: 5, col: 6, rows: 4, cols: 4 },
            FormatError::DimensionMismatch { op: "spmm", lhs: (4, 4), rhs: (5, 8) },
            FormatError::MalformedRowPtr("len 0".into()),
            FormatError::OutOfMemory { required_bytes: 10, available_bytes: 1 },
            FormatError::NotSupported("rows > 50000".into()),
            FormatError::IndexOverflow { what: "nnz", count: usize::MAX },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("out"));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FormatError>();
    }
}
