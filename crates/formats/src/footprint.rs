//! Memory-footprint accounting for the storage formats, replicating
//! Observation 1 and the §5.3 "Effectiveness of ME-TCF" breakdown.
//!
//! All counts are in 32-bit elements and cover *index* arrays only — every
//! format stores the same `NNZ` values, so the paper compares index
//! overhead. `TCLocalId`'s `u8` entries count as `NNZ / 4` elements.

use crate::{CsrMatrix, MeTcfMatrix, TcfMatrix, WINDOW_HEIGHT};

/// Index memory of the three general formats for one matrix, in 32-bit
/// elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FormatFootprint {
    /// CSR: `M + 1 + NNZ`.
    pub csr: u64,
    /// TCF: `⌈M/16⌉ + M + 1 + 3·NNZ`.
    pub tcf: u64,
    /// ME-TCF: `⌈M/16⌉ + 9·NumTCBlock + NNZ/4 + 2`.
    pub metcf: u64,
}

impl FormatFootprint {
    /// TCF overhead relative to CSR, in percent (Observation 1 reports an
    /// average of +168.41 %).
    pub fn tcf_vs_csr_pct(&self) -> f64 {
        (self.tcf as f64 / self.csr as f64 - 1.0) * 100.0
    }

    /// ME-TCF saving relative to CSR, in percent (positive = smaller than
    /// CSR; §5.3 reports 6.42 % before reordering, 30.10 % after).
    pub fn metcf_saving_vs_csr_pct(&self) -> f64 {
        (1.0 - self.metcf as f64 / self.csr as f64) * 100.0
    }
}

/// CSR index element count: `M + 1 + NNZ`.
pub fn csr_elements(a: &CsrMatrix) -> u64 {
    a.rows() as u64 + 1 + a.nnz() as u64
}

/// TCF index element count from shape alone: `⌈M/16⌉ + M + 1 + 3·NNZ`.
pub fn tcf_elements_for(rows: usize, nnz: usize) -> u64 {
    rows.div_ceil(WINDOW_HEIGHT) as u64 + rows as u64 + 1 + 3 * nnz as u64
}

/// ME-TCF index element count from shape + block count:
/// `⌈M/16⌉ + 9·NumTCBlock + NNZ/4 + 2`.
pub fn metcf_elements_for(rows: usize, nnz: usize, num_tc_blocks: usize) -> u64 {
    rows.div_ceil(WINDOW_HEIGHT) as u64 + 9 * num_tc_blocks as u64 + nnz as u64 / 4 + 2
}

/// Computes the footprint of all three formats for one matrix.
///
/// The ME-TCF count needs the TC block count, so this performs an SGT
/// condensing internally (via [`MeTcfMatrix::from_csr`]).
pub fn footprint_of(a: &CsrMatrix) -> FormatFootprint {
    let metcf = MeTcfMatrix::from_csr(a);
    FormatFootprint {
        csr: csr_elements(a),
        tcf: tcf_elements_for(a.rows(), a.nnz()),
        metcf: metcf.index_elements(),
    }
}

/// Computes the footprint when the ME-TCF form is already available
/// (avoids re-condensing).
pub fn footprint_with_metcf(a: &CsrMatrix, metcf: &MeTcfMatrix) -> FormatFootprint {
    FormatFootprint {
        csr: csr_elements(a),
        tcf: tcf_elements_for(a.rows(), a.nnz()),
        metcf: metcf.index_elements(),
    }
}

/// Consistency helper: the formula-based TCF count matches a constructed
/// [`TcfMatrix`].
pub fn tcf_elements(t: &TcfMatrix) -> u64 {
    t.index_elements()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_square(n: usize, nnz_target: usize) -> CsrMatrix {
        let t: Vec<(usize, usize, f32)> =
            (0..nnz_target).map(|i| ((i * 31) % n, (i * 17 + i / n) % n, 1.0)).collect();
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn csr_formula() {
        let a = random_square(100, 500);
        assert_eq!(csr_elements(&a), 100 + 1 + a.nnz() as u64);
    }

    #[test]
    fn tcf_formula_matches_struct() {
        let a = random_square(64, 300);
        let t = TcfMatrix::from_csr(&a).unwrap();
        assert_eq!(tcf_elements_for(64, a.nnz()), t.index_elements());
    }

    #[test]
    fn tcf_is_much_larger_than_csr() {
        let a = random_square(256, 2000);
        let fp = footprint_of(&a);
        // 3x NNZ dominates: overhead must exceed 100 % for nnz >> M.
        assert!(fp.tcf_vs_csr_pct() > 100.0, "{}", fp.tcf_vs_csr_pct());
    }

    #[test]
    fn metcf_beats_tcf_always() {
        for n in [32, 100, 256] {
            let a = random_square(n, n * 6);
            let fp = footprint_of(&a);
            assert!(fp.metcf < fp.tcf);
        }
    }

    #[test]
    fn metcf_saving_improves_with_density() {
        // Condensed blocks: when rows share columns, NumTCBlock shrinks and
        // ME-TCF beats CSR.
        let t: Vec<(usize, usize, f32)> =
            (0..16).flat_map(|r| (0..32).map(move |j| (r, j * 4, 1.0))).collect();
        let a = CsrMatrix::from_triplets(16, 128, &t).unwrap();
        let fp = footprint_of(&a);
        assert!(fp.metcf_saving_vs_csr_pct() > 0.0, "metcf={} csr={}", fp.metcf, fp.csr);
    }
}
