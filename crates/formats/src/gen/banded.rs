use super::{from_row_degrees, rng_for};
use crate::CsrMatrix;
use rand::RngExt;

/// Generates a banded matrix: each row draws `avg_deg` columns from the
/// band `[r - bandwidth, r + bandwidth]` (clamped to the matrix edge) —
/// the structure of finite-element meshes, circuit matrices and other
/// discretized operators that dominate SuiteSparse. Rows of the same
/// 16-row window overlap heavily in columns, so these condense well under
/// SGT without any reordering.
///
/// # Example
///
/// ```
/// use dtc_formats::gen::banded;
/// use dtc_formats::Condensed;
///
/// let m = banded(512, 512, 24, 6.0, 9);
/// assert!(Condensed::from_csr(&m).mean_nnz_tc() > 4.0);
/// ```
///
/// # Panics
///
/// Panics if `bandwidth` is zero.
pub fn banded(rows: usize, cols: usize, bandwidth: usize, avg_deg: f64, seed: u64) -> CsrMatrix {
    assert!(bandwidth > 0, "bandwidth must be positive");
    let mut rng = rng_for(seed);
    let degrees: Vec<usize> = (0..rows)
        .map(|_| {
            let jitter: f64 = rng.random_range(0.6..1.4);
            ((avg_deg * jitter).round().max(1.0) as usize).min(2 * bandwidth + 1).min(cols)
        })
        .collect();
    from_row_degrees(rows, cols, &degrees, &mut rng, move |rng, r| {
        let lo = r.saturating_sub(bandwidth);
        let hi = (r + bandwidth + 1).min(cols);
        rng.random_range(lo.min(cols - 1)..hi.max(lo.min(cols - 1) + 1))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Condensed;

    #[test]
    fn stays_within_band() {
        let m = banded(200, 200, 10, 4.0, 1);
        for (r, c, _) in m.iter() {
            assert!(c + 10 >= r && c <= r + 10, "({r},{c}) outside band");
        }
    }

    #[test]
    fn condenses_natively() {
        let m = banded(512, 512, 16, 8.0, 2);
        assert!(Condensed::from_csr(&m).mean_nnz_tc() > 5.0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(banded(64, 64, 4, 2.0, 3), banded(64, 64, 4, 2.0, 3));
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        banded(10, 10, 0, 1.0, 4);
    }
}
