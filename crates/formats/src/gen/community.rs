use super::{from_row_degrees, rng_for};
use crate::CsrMatrix;
use rand::seq::SliceRandom;
use rand::RngExt;

/// Generates a planted-partition ("community") matrix and *shuffles its
/// rows*: rows belonging to the same community draw most of their columns
/// (`p_in`) from the community's column range, so rows of one community
/// have high pairwise Jaccard similarity — exactly the structure
/// TCU-Cache-Aware reordering (and Louvain/METIS) is designed to recover.
///
/// The returned matrix has its rows randomly permuted, so a reordering
/// algorithm must *find* the communities; condensing the raw matrix gives
/// poor `MeanNnzTC`, condensing the ideally-reordered one gives high
/// `MeanNnzTC`.
///
/// # Example
///
/// ```
/// use dtc_formats::gen::community;
///
/// let m = community(256, 256, 16, 12.0, 0.9, 21);
/// assert_eq!(m.rows(), 256);
/// ```
///
/// # Panics
///
/// Panics if `n_communities` is zero or exceeds `rows`/`cols`.
pub fn community(
    rows: usize,
    cols: usize,
    n_communities: usize,
    avg_deg: f64,
    p_in: f64,
    seed: u64,
) -> CsrMatrix {
    community_with_shuffle(rows, cols, n_communities, avg_deg, p_in, 1.0, seed)
}

/// Like [`community`], but only a fraction `shuffle_frac` of the rows are
/// displaced from their community-contiguous positions. Real benchmark
/// graphs (YeastH, DD, …) arrive *mostly* locality-ordered — Table 2 shows
/// SGT alone reaching `MeanNnzTC` ≈ 10–13 on them — so their stand-ins use
/// a partial shuffle, leaving headroom that reordering can still recover.
///
/// # Panics
///
/// Panics if `n_communities` is zero or exceeds `rows`/`cols`, or
/// `shuffle_frac` is outside `[0, 1]`.
pub fn community_with_shuffle(
    rows: usize,
    cols: usize,
    n_communities: usize,
    avg_deg: f64,
    p_in: f64,
    shuffle_frac: f64,
    seed: u64,
) -> CsrMatrix {
    assert!(n_communities > 0 && n_communities <= rows.max(1) && n_communities <= cols.max(1));
    assert!((0.0..=1.0).contains(&shuffle_frac), "shuffle_frac must be in [0, 1]");
    let mut rng = rng_for(seed);
    let com_cols = cols / n_communities;
    // Assign rows to communities contiguously, generate, then shuffle rows.
    let degrees: Vec<usize> = (0..rows)
        .map(|_| {
            let jitter: f64 = rng.random_range(0.5..1.5);
            ((avg_deg * jitter).round().max(1.0) as usize).min(cols)
        })
        .collect();
    let rows_per_com = rows.div_ceil(n_communities);
    let m = from_row_degrees(rows, cols, &degrees, &mut rng, move |rng, r| {
        let com = (r / rows_per_com).min(n_communities - 1);
        let inside: bool = rng.random_range(0.0..1.0) < p_in;
        if inside && com_cols > 0 {
            com * com_cols + rng.random_range(0..com_cols)
        } else {
            rng.random_range(0..cols)
        }
    });
    let mut perm: Vec<usize> = (0..rows).collect();
    if shuffle_frac >= 1.0 {
        perm.shuffle(&mut rng);
    } else if shuffle_frac > 0.0 {
        // Displace only a subset: pick the victim positions, then shuffle
        // the victims among themselves.
        let mut victims: Vec<usize> =
            (0..rows).filter(|_| rng.random_range(0.0..1.0) < shuffle_frac).collect();
        let mut targets = victims.clone();
        targets.shuffle(&mut rng);
        for (v, t) in victims.drain(..).zip(targets) {
            perm[v] = t;
        }
    }
    m.permute_rows(&perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Condensed;

    #[test]
    fn community_structure_is_recoverable() {
        // Generate WITHOUT shuffle by re-deriving the contiguous version:
        // sorting rows by their dominant column block should concentrate
        // columns and raise MeanNnzTC versus the shuffled matrix.
        let m = community(256, 256, 8, 16.0, 0.95, 3);
        let shuffled_density = Condensed::from_csr(&m).mean_nnz_tc();

        // Sort rows by mean column as a crude community recovery.
        let mut keyed: Vec<(usize, usize)> = (0..m.rows())
            .map(|r| {
                let (cols, _) = m.row_entries(r);
                let mean = if cols.is_empty() {
                    0
                } else {
                    cols.iter().map(|&c| c as usize).sum::<usize>() / cols.len()
                };
                (mean, r)
            })
            .collect();
        keyed.sort_unstable();
        let perm: Vec<usize> = keyed.into_iter().map(|(_, r)| r).collect();
        let sorted_density = Condensed::from_csr(&m.permute_rows(&perm)).mean_nnz_tc();
        assert!(
            sorted_density > shuffled_density * 1.2,
            "sorted={sorted_density} shuffled={shuffled_density}"
        );
    }

    #[test]
    fn respects_shape() {
        let m = community(100, 64, 4, 6.0, 0.8, 4);
        assert_eq!((m.rows(), m.cols()), (100, 64));
        assert!(m.nnz() > 300);
    }

    #[test]
    #[should_panic]
    fn zero_communities_rejected() {
        community(10, 10, 0, 2.0, 0.9, 5);
    }
}
