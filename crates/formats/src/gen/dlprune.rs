use super::rng_for;
use crate::CsrMatrix;
use rand::RngExt;

/// Generates a magnitude-pruned DL weight matrix: uniform scatter at the
/// given `sparsity` (0.6–0.9 in the Flash-LLM/SparTA regime), Gaussian-ish
/// values. Shapes here are the "thousands to tens of thousands of rows"
/// the paper attributes to DL weights (§2.2).
///
/// # Example
///
/// ```
/// use dtc_formats::gen::dl_pruned;
///
/// let w = dl_pruned(1024, 1024, 0.8, 13);
/// let density = w.nnz() as f64 / (1024.0 * 1024.0);
/// assert!((density - 0.2).abs() < 0.02);
/// ```
///
/// # Panics
///
/// Panics unless `0.0 <= sparsity < 1.0`.
pub fn dl_pruned(rows: usize, cols: usize, sparsity: f64, seed: u64) -> CsrMatrix {
    assert!((0.0..1.0).contains(&sparsity), "sparsity must be in [0, 1)");
    let mut rng = rng_for(seed);
    let keep = 1.0 - sparsity;
    let mut triplets: Vec<(usize, usize, f32)> = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if rng.random_range(0.0..1.0) < keep {
                // Sum of 3 uniforms approximates a Gaussian weight.
                let v: f32 = (0..3).map(|_| rng.random_range(-0.5f32..0.5)).sum();
                triplets.push((r, c, v));
            }
        }
    }
    CsrMatrix::from_triplets(rows, cols, &triplets).expect("coordinates in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_matches() {
        let w = dl_pruned(200, 200, 0.7, 1);
        let d = w.nnz() as f64 / 40_000.0;
        assert!((d - 0.3).abs() < 0.03, "d={d}");
    }

    #[test]
    fn rows_fairly_even() {
        let w = dl_pruned(100, 400, 0.75, 2);
        let stats = crate::stats::MatrixStats::of(&w);
        assert!(stats.row_len_cv < 0.3);
    }

    #[test]
    #[should_panic(expected = "sparsity")]
    fn sparsity_one_rejected() {
        dl_pruned(10, 10, 1.0, 3);
    }
}
