use super::{from_row_degrees, lognormal_degrees, rng_for};
use crate::CsrMatrix;
use rand::RngExt;

/// Generates a Type-II matrix (large `AvgRowL`) like `reddit`, `ddi` and
/// `protein`: log-normal row degrees around `avg_deg` with coefficient of
/// variation `cv`, and clustered columns — rows of the same 16-row window
/// share a contiguous anchor neighbourhood for half their columns (the
/// rest uniform). The shared neighbourhoods give the moderate native
/// condensability these graphs show in Table 2 (`MeanNnzTC` 14–26 after
/// SGT alone).
///
/// # Example
///
/// ```
/// use dtc_formats::gen::long_row;
/// use dtc_formats::stats::MatrixStats;
///
/// let m = long_row(256, 256, 100.0, 0.6, 17);
/// let s = MatrixStats::of(&m);
/// assert!(s.avg_row_len > 60.0);
/// assert!(s.is_type_ii());
/// ```
pub fn long_row(rows: usize, cols: usize, avg_deg: f64, cv: f64, seed: u64) -> CsrMatrix {
    let m = long_row_ordered(rows, cols, avg_deg, cv, seed);
    // Displace ~30% of the rows by *local* swaps (within +/-64 rows): real
    // interaction graphs arrive only partially locality-ordered (Table 2:
    // MeanNnzTC 14.8-25.9 after SGT alone), leaving headroom for TCA
    // reordering (Fig 13a) — while the coarse window-load skew that drives
    // the strict-balance gains (Fig 15) survives, because rows only move
    // within their heavy/light region.
    let mut rng = rng_for(seed ^ 0x5111);
    let mut perm: Vec<usize> = (0..rows).collect();
    for v in 0..rows {
        if rng.random_range(0.0f64..1.0) < 0.3 {
            let lo = v.saturating_sub(64);
            let hi = (v + 64).min(rows.saturating_sub(1));
            let partner = rng.random_range(lo..=hi);
            perm.swap(v, partner);
        }
    }
    m.permute_rows(&perm)
}

/// [`long_row`] without the final partial row shuffle — fully
/// locality-ordered (what TCA reordering would ideally recover).
pub fn long_row_ordered(rows: usize, cols: usize, avg_deg: f64, cv: f64, seed: u64) -> CsrMatrix {
    let mut rng = rng_for(seed);
    // Split the requested dispersion between a per-row jitter and a
    // per-window factor: dense interaction graphs (reddit's hub
    // communities) have entire *regions* of heavy rows, so window loads
    // stay skewed instead of averaging out over 16 rows.
    let row_degrees = lognormal_degrees(rows, cols, avg_deg, cv * 0.5, 1, &mut rng);
    let num_wins = rows.div_ceil(16).max(1);
    let win_factors = lognormal_degrees(num_wins, usize::MAX, 1000.0, cv * 0.9, 1, &mut rng);
    let degrees: Vec<usize> = row_degrees
        .iter()
        .enumerate()
        .map(|(r, &d)| {
            let f = win_factors[(r / 16).min(num_wins - 1)] as f64 / 1000.0;
            ((d as f64 * f).round().max(1.0) as usize).min(cols)
        })
        .collect();
    // One neighbourhood anchor per 16-row window (native locality).
    let num_groups = rows.div_ceil(16).max(1);
    let anchors: Vec<usize> = (0..num_groups).map(|_| rng.random_range(0..cols.max(1))).collect();
    let radius = ((avg_deg * 2.0) as usize).clamp(8, cols.max(1));
    from_row_degrees(rows, cols, &degrees, &mut rng, move |rng, r| {
        if rng.random_range(0.0..1.0) < 0.5 {
            let anchor = anchors[(r / 16).min(num_groups - 1)];
            let lo = anchor.saturating_sub(radius / 2);
            let hi = (lo + radius).min(cols);
            rng.random_range(lo..hi.max(lo + 1))
        } else {
            rng.random_range(0..cols)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MatrixStats;

    #[test]
    fn long_rows_produced() {
        let m = long_row(128, 512, 200.0, 0.5, 1);
        let s = MatrixStats::of(&m);
        assert!(s.avg_row_len > 120.0, "avg={}", s.avg_row_len);
    }

    #[test]
    fn cv_controls_spread() {
        let tight = MatrixStats::of(&long_row(1000, 4000, 50.0, 0.2, 2)).row_len_cv;
        let wide = MatrixStats::of(&long_row(1000, 4000, 50.0, 1.5, 2)).row_len_cv;
        assert!(wide > tight, "wide={wide} tight={tight}");
    }

    #[test]
    fn respects_col_bound() {
        let m = long_row(50, 64, 100.0, 0.5, 3);
        for (_, c, _) in m.iter() {
            assert!(c < 64);
        }
    }
}
