//! Seeded synthetic sparse-matrix generators.
//!
//! The paper evaluates on real datasets (Table 1, SuiteSparse, IGB) that we
//! cannot ship; these generators produce matrices with the *statistics that
//! drive SpMM behaviour* — shape, NNZ, average row length, degree skew, and
//! column locality — under deterministic seeds. See `DESIGN.md` §1 for the
//! substitution rationale.

mod banded;
mod community;
mod dlprune;
mod longrow;
mod powerlaw;
mod rmat;
mod uniform;
mod web;

pub use banded::banded;
pub use community::{community, community_with_shuffle};
pub use dlprune::dl_pruned;
pub use longrow::{long_row, long_row_ordered};
pub use powerlaw::power_law;
pub use rmat::rmat;
pub use uniform::uniform;
pub use web::web;

use crate::CsrMatrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Creates the deterministic RNG used by all generators.
pub(crate) fn rng_for(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Builds a CSR matrix from per-row degrees and a column sampler.
///
/// For each row `r`, draws `degrees[r]` *distinct* columns using
/// `sample_col(rng, r)` (retrying duplicates, capped at `cols`), assigns
/// values uniform in `[-1, 1)`, and assembles the CSR matrix.
pub(crate) fn from_row_degrees(
    rows: usize,
    cols: usize,
    degrees: &[usize],
    rng: &mut StdRng,
    mut sample_col: impl FnMut(&mut StdRng, usize) -> usize,
) -> CsrMatrix {
    assert_eq!(degrees.len(), rows);
    let mut triplets: Vec<(usize, usize, f32)> = Vec::new();
    let mut row_cols: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut sorted_cols: Vec<usize> = Vec::new();
    for (r, &deg) in degrees.iter().enumerate() {
        let deg = deg.min(cols);
        row_cols.clear();
        let mut attempts = 0usize;
        while row_cols.len() < deg && attempts < deg * 30 + 64 {
            let c = sample_col(rng, r).min(cols - 1);
            row_cols.insert(c);
            attempts += 1;
        }
        // Fallback for pathological samplers: fill sequentially.
        let mut next = 0usize;
        while row_cols.len() < deg {
            row_cols.insert(next);
            next += 1;
        }
        // Sort before assigning values so output is independent of the
        // HashSet's (randomized) iteration order.
        sorted_cols.clear();
        sorted_cols.extend(row_cols.iter().copied());
        sorted_cols.sort_unstable();
        for &c in &sorted_cols {
            triplets.push((r, c, rng.random_range(-1.0f32..1.0)));
        }
    }
    CsrMatrix::from_triplets(rows, cols, &triplets).expect("generator produces valid triplets")
}

/// Draws row degrees from a discretized log-normal with the given mean and
/// coefficient of variation, clamped to `[min_deg, cols]`.
pub(crate) fn lognormal_degrees(
    rows: usize,
    cols: usize,
    mean_deg: f64,
    cv: f64,
    min_deg: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    // For lognormal: cv^2 = exp(sigma^2) - 1.
    let sigma2 = (1.0 + cv * cv).ln();
    let sigma = sigma2.sqrt();
    let mu = mean_deg.max(1e-9).ln() - sigma2 / 2.0;
    (0..rows)
        .map(|_| {
            // Box-Muller normal from two uniforms.
            let u1: f64 = rng.random_range(1e-12f64..1.0);
            let u2: f64 = rng.random_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let d = (mu + sigma * z).exp().round();
            (d.max(min_deg as f64) as usize).min(cols)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_row_degrees_respects_degrees() {
        let mut rng = rng_for(7);
        let degrees = vec![3, 0, 5, 1];
        let m = from_row_degrees(4, 100, &degrees, &mut rng, |rng, _| rng.random_range(0..100));
        for (r, &d) in degrees.iter().enumerate() {
            assert_eq!(m.row_len(r), d);
        }
    }

    #[test]
    fn from_row_degrees_caps_at_cols() {
        let mut rng = rng_for(7);
        let m = from_row_degrees(1, 4, &[10], &mut rng, |rng, _| rng.random_range(0..4));
        assert_eq!(m.row_len(0), 4);
    }

    #[test]
    fn lognormal_mean_approximate() {
        let mut rng = rng_for(99);
        let deg = lognormal_degrees(20_000, 100_000, 50.0, 1.0, 1, &mut rng);
        let mean = deg.iter().sum::<usize>() as f64 / deg.len() as f64;
        assert!((mean - 50.0).abs() < 5.0, "mean={mean}");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = uniform(100, 100, 500, 42);
        let b = uniform(100, 100, 500, 42);
        assert_eq!(a, b);
        let c = uniform(100, 100, 500, 43);
        assert_ne!(a, c);
    }
}
