use super::{from_row_degrees, rng_for};
use crate::CsrMatrix;
use rand::RngExt;

/// Generates a scale-free graph adjacency matrix: row degrees follow a
/// truncated power law with exponent `alpha`, and columns are drawn with
/// power-law popularity (preferential attachment flavour) so that hub
/// columns are shared across many rows — the structure of web graphs like
/// `web-BerkStan` and social graphs like `reddit`.
///
/// `avg_deg` controls the expected row length (`AvgRowL`).
///
/// # Example
///
/// ```
/// use dtc_formats::gen::power_law;
/// use dtc_formats::stats::MatrixStats;
///
/// let m = power_law(512, 512, 8.0, 2.1, 7);
/// let s = MatrixStats::of(&m);
/// assert!(s.avg_row_len > 4.0 && s.avg_row_len < 16.0);
/// assert!(s.row_len_cv > 0.5); // skewed degrees
/// ```
pub fn power_law(rows: usize, cols: usize, avg_deg: f64, alpha: f64, seed: u64) -> CsrMatrix {
    let mut rng = rng_for(seed);
    // Draw degrees from a Pareto-like distribution with minimum 1,
    // then rescale to the requested mean.
    let raw: Vec<f64> = (0..rows)
        .map(|_| {
            let u: f64 = rng.random_range(1e-9..1.0);
            // Inverse-CDF of a Pareto with exponent alpha, x_min = 1.
            u.powf(-1.0 / (alpha - 1.0))
        })
        .collect();
    let raw_mean = raw.iter().sum::<f64>() / rows.max(1) as f64;
    let scale = if raw_mean > 0.0 { avg_deg / raw_mean } else { 0.0 };
    let degrees: Vec<usize> =
        raw.iter().map(|&d| ((d * scale).round().max(1.0) as usize).min(cols)).collect();
    // Column popularity ~ power law: u^alpha concentrates mass on
    // low-rank (hub) columns; larger alpha means stronger hubs.
    from_row_degrees(rows, cols, &degrees, &mut rng, move |rng, _| {
        let u: f64 = rng.random_range(1e-9..1.0);
        let rank = (u.powf(alpha) * cols as f64) as usize;
        rank.min(cols - 1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MatrixStats;

    #[test]
    fn mean_degree_close() {
        let m = power_law(2000, 2000, 10.0, 2.2, 5);
        let s = MatrixStats::of(&m);
        assert!((s.avg_row_len - 10.0).abs() < 3.0, "avg={}", s.avg_row_len);
    }

    #[test]
    fn degrees_are_skewed() {
        let m = power_law(2000, 2000, 10.0, 2.0, 6);
        let s = MatrixStats::of(&m);
        assert!(s.max_row_len > 3 * s.avg_row_len as usize, "max={}", s.max_row_len);
    }

    #[test]
    fn hub_columns_exist() {
        // Column popularity skew: the most popular column should appear in
        // far more rows than the median column.
        let m = power_law(1000, 1000, 8.0, 2.0, 8);
        let mut col_counts = vec![0usize; 1000];
        for (_, c, _) in m.iter() {
            col_counts[c] += 1;
        }
        col_counts.sort_unstable();
        let max = *col_counts.last().unwrap();
        let median = col_counts[500];
        assert!(max > 4 * median.max(1), "max={max} median={median}");
    }
}
