use super::rng_for;
use crate::CsrMatrix;
use rand::RngExt;

/// Generates an R-MAT graph adjacency matrix of `2^scale` nodes with
/// `edge_factor * 2^scale` edges and recursion probabilities
/// `(a, b, c, d)` (Graph500 defaults: 0.57, 0.19, 0.19, 0.05).
///
/// R-MAT produces the recursive community structure + heavy-tailed degrees
/// characteristic of social and citation networks, and is the standard
/// stand-in for SuiteSparse graph matrices.
///
/// # Example
///
/// ```
/// use dtc_formats::gen::rmat;
///
/// let m = rmat(8, 8.0, (0.57, 0.19, 0.19, 0.05), 11);
/// assert_eq!(m.rows(), 256);
/// assert!(m.nnz() > 1000);
/// ```
///
/// # Panics
///
/// Panics if the probabilities do not sum to ~1 or `scale > 30`.
pub fn rmat(scale: u32, edge_factor: f64, probs: (f64, f64, f64, f64), seed: u64) -> CsrMatrix {
    let (a, b, c, d) = probs;
    assert!((a + b + c + d - 1.0).abs() < 1e-6, "probabilities must sum to 1");
    assert!(scale <= 30, "scale too large for this simulator");
    let n = 1usize << scale;
    let num_edges = (edge_factor * n as f64) as usize;
    let mut rng = rng_for(seed);
    let mut triplets: Vec<(usize, usize, f32)> = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let (mut r, mut co) = (0usize, 0usize);
        for level in (0..scale).rev() {
            let bit = 1usize << level;
            let u: f64 = rng.random_range(0.0..1.0);
            if u < a {
                // top-left quadrant
            } else if u < a + b {
                co |= bit;
            } else if u < a + b + c {
                r |= bit;
            } else {
                r |= bit;
                co |= bit;
            }
        }
        triplets.push((r, co, rng.random_range(-1.0f32..1.0)));
    }
    // CooMatrix sums duplicate coordinates; for adjacency semantics we want
    // them collapsed, which from_triplets does (values just sum).
    CsrMatrix::from_triplets(n, n, &triplets).expect("rmat coordinates in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MatrixStats;

    #[test]
    fn shape_is_power_of_two() {
        let m = rmat(6, 4.0, (0.57, 0.19, 0.19, 0.05), 1);
        assert_eq!(m.rows(), 64);
        assert_eq!(m.cols(), 64);
    }

    #[test]
    fn skewed_probs_give_skewed_degrees() {
        let skew = rmat(10, 8.0, (0.7, 0.15, 0.1, 0.05), 2);
        let flat = rmat(10, 8.0, (0.25, 0.25, 0.25, 0.25), 2);
        let s1 = MatrixStats::of(&skew);
        let s2 = MatrixStats::of(&flat);
        assert!(s1.row_len_cv > s2.row_len_cv, "{} vs {}", s1.row_len_cv, s2.row_len_cv);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_probs_rejected() {
        rmat(4, 2.0, (0.5, 0.5, 0.5, 0.5), 3);
    }

    #[test]
    fn deterministic() {
        let a = rmat(7, 6.0, (0.57, 0.19, 0.19, 0.05), 9);
        let b = rmat(7, 6.0, (0.57, 0.19, 0.19, 0.05), 9);
        assert_eq!(a, b);
    }
}
