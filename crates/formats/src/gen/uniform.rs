use super::{from_row_degrees, rng_for};
use crate::CsrMatrix;
use rand::RngExt;

/// Generates a matrix with `nnz` non-zeros scattered uniformly at random —
/// the "naturally balanced workload" the paper uses to calibrate the
/// Selector threshold (§4.5.2: 1000 generated matrices with uniformly
/// distributed non-zeros).
///
/// The realized NNZ may differ from `nnz` by a small amount when collisions
/// exhaust the retry budget on dense rows.
///
/// # Example
///
/// ```
/// use dtc_formats::gen::uniform;
///
/// let m = uniform(64, 64, 512, 42);
/// assert_eq!(m.rows(), 64);
/// assert!(m.nnz() >= 500 && m.nnz() <= 512);
/// ```
///
/// # Panics
///
/// Panics if `rows` or `cols` is zero while `nnz > 0`.
pub fn uniform(rows: usize, cols: usize, nnz: usize, seed: u64) -> CsrMatrix {
    assert!(nnz == 0 || (rows > 0 && cols > 0), "cannot place nnz in an empty matrix");
    let mut rng = rng_for(seed);
    // Spread nnz across rows via a multinomial-ish draw: base + remainder.
    let base = nnz.checked_div(rows).unwrap_or(0);
    let mut degrees = vec![base; rows];
    let mut rem = nnz - base * rows;
    while rem > 0 {
        let r = rng.random_range(0..rows);
        degrees[r] += 1;
        rem -= 1;
    }
    from_row_degrees(rows, cols, &degrees, &mut rng, |rng, _| rng.random_range(0..cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MatrixStats;

    #[test]
    fn nnz_close_to_target() {
        let m = uniform(100, 100, 1000, 1);
        assert!(m.nnz() as i64 - 1000 >= -20 && m.nnz() <= 1000);
    }

    #[test]
    fn rows_are_balanced() {
        let m = uniform(200, 200, 2000, 2);
        let s = MatrixStats::of(&m);
        // Uniform scatter: row-length CV must be small.
        assert!(s.row_len_cv < 0.5, "cv={}", s.row_len_cv);
    }

    #[test]
    fn zero_nnz() {
        let m = uniform(10, 10, 0, 3);
        assert_eq!(m.nnz(), 0);
    }
}
