use super::{from_row_degrees, rng_for};
use crate::CsrMatrix;
use rand::RngExt;

/// Generates a web-graph-like matrix: power-law row degrees, hub columns,
/// and *window-local neighbourhoods* — rows within the same 16-row group
/// share an anchor region of columns, reflecting how crawled web graphs
/// (e.g. `web-BerkStan`) list pages of one site consecutively. This native
/// row locality is what gives such matrices their high `MeanNnzTC` after
/// SGT (Table 2 reports 26.9 for WB) *without* any reordering.
///
/// # Example
///
/// ```
/// use dtc_formats::gen::web;
/// use dtc_formats::Condensed;
///
/// let m = web(1024, 1024, 10.0, 2.1, 0.7, 3);
/// // Native locality: SGT alone condenses reasonably well.
/// assert!(Condensed::from_csr(&m).mean_nnz_tc() > 3.0);
/// ```
pub fn web(
    rows: usize,
    cols: usize,
    avg_deg: f64,
    alpha: f64,
    locality: f64,
    seed: u64,
) -> CsrMatrix {
    let mut rng = rng_for(seed);
    // Power-law degrees as in `power_law`.
    let raw: Vec<f64> = (0..rows)
        .map(|_| {
            let u: f64 = rng.random_range(1e-9..1.0);
            u.powf(-1.0 / (alpha - 1.0))
        })
        .collect();
    let raw_mean = raw.iter().sum::<f64>() / rows.max(1) as f64;
    let scale = if raw_mean > 0.0 { avg_deg / raw_mean } else { 0.0 };
    // Real crawls truncate hub out-degrees (web-BerkStan: max 249 at
    // average 11); clamp at 25x the mean, then rescale once so the clamp
    // does not depress the realized average.
    let max_deg = ((avg_deg * 25.0) as usize).clamp(1, cols);
    let clamp_once = |scale: f64| -> Vec<usize> {
        raw.iter().map(|&d| ((d * scale).round().max(1.0) as usize).min(max_deg)).collect()
    };
    let first = clamp_once(scale);
    let realized = first.iter().sum::<usize>() as f64 / rows.max(1) as f64;
    let degrees = if realized > 0.0 { clamp_once(scale * avg_deg / realized) } else { first };
    // One *template link set* per 16-row window: pages of one site share
    // the same navigation/footer links, so window-mates overlap in
    // concrete columns (high pairwise Jaccard), not just in a range.
    let num_groups = rows.div_ceil(16).max(1);
    let template_len = (avg_deg.ceil() as usize).clamp(3, 64);
    let radius = ((avg_deg * 4.0) as usize).clamp(16, cols.max(1));
    let templates: Vec<Vec<usize>> = (0..num_groups)
        .map(|_| {
            let anchor = rng.random_range(0..cols.max(1));
            let lo = anchor.saturating_sub(radius / 2);
            let hi = (lo + radius).min(cols);
            (0..template_len).map(|_| rng.random_range(lo..hi.max(lo + 1))).collect()
        })
        .collect();
    from_row_degrees(rows, cols, &degrees, &mut rng, move |rng, r| {
        if rng.random_range(0.0..1.0) < locality {
            let template = &templates[(r / 16).min(num_groups - 1)];
            template[rng.random_range(0..template.len())]
        } else {
            // Hub-biased global link.
            let u: f64 = rng.random_range(1e-9..1.0);
            ((u.powf(alpha) * cols as f64) as usize).min(cols - 1)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MatrixStats;
    use crate::Condensed;

    #[test]
    fn degrees_are_power_law() {
        let m = web(2048, 2048, 10.0, 2.1, 0.6, 1);
        let s = MatrixStats::of(&m);
        assert!((s.avg_row_len - 10.0).abs() < 3.0, "avg={}", s.avg_row_len);
        assert!(s.max_row_len > 3 * s.avg_row_len as usize);
    }

    #[test]
    fn locality_raises_mean_nnz_tc() {
        let local = web(1024, 1024, 10.0, 2.1, 0.8, 2);
        let scattered = web(1024, 1024, 10.0, 2.1, 0.0, 2);
        let d_local = Condensed::from_csr(&local).mean_nnz_tc();
        let d_scattered = Condensed::from_csr(&scattered).mean_nnz_tc();
        assert!(d_local > d_scattered * 1.15, "local={d_local} scattered={d_scattered}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(web(256, 256, 8.0, 2.0, 0.5, 7), web(256, 256, 8.0, 2.0, 0.5, 7));
    }
}
