//! Sparse matrix formats and synthetic workload generators for the DTC-SpMM
//! reproduction.
//!
//! This crate provides every storage format the paper discusses:
//!
//! - [`CooMatrix`] / [`CsrMatrix`] — the classic general-purpose formats
//!   (cuSPARSE's native formats).
//! - [`Condensed`] — the result of Sparse Graph Translation (SGT, §2.3 of the
//!   paper): non-zeros of each 16-row window compressed "towards the left"
//!   into dense 16×8 *TC blocks*.
//! - [`TcfMatrix`] — TC-GNN's five-array TCF format (the paper's Observation 1
//!   shows it costs ~168 % more memory than CSR).
//! - [`MeTcfMatrix`] — the paper's memory-efficient ME-TCF format (§4.2):
//!   four arrays, with per-non-zero local indices stored as `u8`.
//! - [`MatrixDelta`] — batched COO edits applied incrementally to an
//!   existing [`MeTcfMatrix`], re-condensing only the touched 16-row windows.
//! - [`BellMatrix`] — Blocked-Ellpack, the format behind cuSPARSE Block-SpMM.
//! - [`CvseMatrix`] — Column-Vector Sparse Encoding, used by VectorSparse.
//!
//! plus TF32 numerics emulation ([`tf32`]), matrix statistics used throughout
//! the evaluation ([`stats`]), format memory accounting ([`footprint`]) and
//! seeded synthetic matrix generators ([`gen`]).
//!
//! # Example
//!
//! ```
//! use dtc_formats::{CsrMatrix, DenseMatrix, Condensed};
//!
//! # fn main() -> Result<(), dtc_formats::FormatError> {
//! // A tiny 4x4 sparse matrix in CSR form.
//! let a = CsrMatrix::from_triplets(4, 4, &[(0, 0, 1.0), (1, 2, 2.0), (3, 3, 3.0)])?;
//! let b = DenseMatrix::ones(4, 8);
//! let c = a.spmm_reference(&b)?;
//! assert_eq!(c.get(1, 0), 2.0);
//!
//! // Condense with SGT into 16x8 TC blocks.
//! let condensed = Condensed::from_csr(&a);
//! assert_eq!(condensed.num_tc_blocks(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bell;
mod coo;
mod csr;
mod cvse;
mod delta;
mod dense;
mod error;
pub mod footprint;
pub mod gen;
mod metcf;
pub mod mtx;
pub mod precision;
mod sgt;
pub mod stats;
mod tcf;
pub mod tf32;

pub use bell::BellMatrix;
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use cvse::CvseMatrix;
pub use delta::{DeltaReport, MatrixDelta, WindowDeltaStat};
pub use dense::DenseMatrix;
pub use error::FormatError;
pub use metcf::{MeTcfMatrix, PAD_COL};
pub use precision::Precision;
pub use sgt::{Condensed, RowWindow, TcBlock, BLOCK_WIDTH, WINDOW_HEIGHT};
pub use tcf::TcfMatrix;
