use crate::{Condensed, CsrMatrix, FormatError, TcBlock, BLOCK_WIDTH, WINDOW_HEIGHT};

/// Sentinel marking a padded (absent) column slot in `SparseAtoB`.
pub const PAD_COL: u32 = u32::MAX;

/// The paper's Memory-Efficient TCF format (ME-TCF, §4.2).
///
/// Four index arrays represent an SGT-condensed matrix:
///
/// - `row_window_offset[w]` — index of window `w`'s first TC block in
///   `tc_offset` (`⌈M/16⌉ + 1` elements);
/// - `tc_offset[t]` — index of TC block `t`'s first non-zero in
///   `tc_local_id` (`NumTCBlock + 1` elements);
/// - `tc_local_id[i]` — 8-bit local position (`local_row * 8 + local_col`,
///   0..=127) of non-zero `i` inside its TC block (`NNZ` bytes — `NNZ/4`
///   32-bit elements);
/// - `sparse_a_to_b[t*8 + j]` — original column of block `t`'s column `j`
///   (`NumTCBlock × 8` elements, padded with [`PAD_COL`]).
///
/// Total: `⌈M/16⌉ + 9·NumTCBlock + NNZ/4 + 2` 32-bit elements, versus
/// `M + 1 + NNZ` for CSR and `⌈M/16⌉ + M + 1 + 3·NNZ` for TCF.
///
/// # Example
///
/// ```
/// use dtc_formats::{CsrMatrix, MeTcfMatrix};
///
/// # fn main() -> Result<(), dtc_formats::FormatError> {
/// let a = CsrMatrix::from_triplets(16, 64, &[(0, 3, 1.0), (5, 3, 2.0), (9, 60, 3.0)])?;
/// let m = MeTcfMatrix::from_csr(&a);
/// assert_eq!(m.num_tc_blocks(), 1);
/// assert_eq!(m.to_csr()?, a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MeTcfMatrix {
    rows: usize,
    cols: usize,
    row_window_offset: Vec<u32>,
    tc_offset: Vec<u32>,
    tc_local_id: Vec<u8>,
    sparse_a_to_b: Vec<u32>,
    values: Vec<f32>,
}

impl MeTcfMatrix {
    /// Converts a CSR matrix to ME-TCF (SGT condensing + array packing).
    pub fn from_csr(a: &CsrMatrix) -> Self {
        Self::from_condensed(&Condensed::from_csr(a))
    }

    /// Packs an already-condensed matrix into ME-TCF arrays.
    pub fn from_condensed(condensed: &Condensed) -> Self {
        let num_blocks = condensed.num_tc_blocks();
        let mut row_window_offset = Vec::with_capacity(condensed.num_windows() + 1);
        let mut tc_offset = Vec::with_capacity(num_blocks + 1);
        let mut tc_local_id = Vec::with_capacity(condensed.nnz());
        let mut sparse_a_to_b = Vec::with_capacity(num_blocks * BLOCK_WIDTH);
        let mut values = Vec::with_capacity(condensed.nnz());
        row_window_offset.push(0);
        tc_offset.push(0);
        for w in condensed.windows() {
            for block in w.blocks() {
                for e in block.entries {
                    tc_local_id.push(TcBlock::local_id(e));
                    values.push(e.value);
                }
                tc_offset.push(tc_local_id.len() as u32);
                sparse_a_to_b.extend_from_slice(block.cols);
                sparse_a_to_b.extend(std::iter::repeat_n(PAD_COL, BLOCK_WIDTH - block.cols.len()));
            }
            row_window_offset.push(tc_offset.len() as u32 - 1);
        }
        MeTcfMatrix {
            rows: condensed.rows(),
            cols: condensed.cols(),
            row_window_offset,
            tc_offset,
            tc_local_id,
            sparse_a_to_b,
            values,
        }
    }

    /// Assembles an ME-TCF matrix from raw arrays (used by the parallel
    /// converter in `dtc-core`).
    ///
    /// # Panics
    ///
    /// Panics when the array lengths are mutually inconsistent:
    /// `row_window_offset` must cover `⌈rows/16⌉` windows and end at the
    /// block count, `tc_offset` must end at the non-zero count, and
    /// `sparse_a_to_b` must hold 8 slots per block. Empty offset arrays are
    /// accepted as the zero-window / zero-block degenerate encodings and
    /// normalized to the canonical `[0]` form (a zero-nnz matrix would
    /// otherwise underflow the block count below).
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        row_window_offset: Vec<u32>,
        tc_offset: Vec<u32>,
        tc_local_id: Vec<u8>,
        sparse_a_to_b: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        let mut row_window_offset = row_window_offset;
        let mut tc_offset = tc_offset;
        if row_window_offset.is_empty() {
            row_window_offset.push(0);
        }
        if tc_offset.is_empty() {
            tc_offset.push(0);
        }
        assert_eq!(row_window_offset.len(), rows.div_ceil(WINDOW_HEIGHT) + 1);
        assert_eq!(row_window_offset[0], 0);
        let num_blocks = tc_offset.len() - 1;
        assert_eq!(*row_window_offset.last().unwrap() as usize, num_blocks);
        assert_eq!(*tc_offset.last().unwrap() as usize, tc_local_id.len());
        assert_eq!(sparse_a_to_b.len(), num_blocks * BLOCK_WIDTH);
        assert_eq!(values.len(), tc_local_id.len());
        MeTcfMatrix { rows, cols, row_window_offset, tc_offset, tc_local_id, sparse_a_to_b, values }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of non-zeros.
    pub fn nnz(&self) -> usize {
        self.tc_local_id.len()
    }

    /// Number of 16-row windows.
    pub fn num_windows(&self) -> usize {
        self.row_window_offset.len() - 1
    }

    /// Total number of TC blocks.
    pub fn num_tc_blocks(&self) -> usize {
        self.tc_offset.len() - 1
    }

    /// *RowWindowOffset* array.
    pub fn row_window_offset(&self) -> &[u32] {
        &self.row_window_offset
    }

    /// *TCOffset* array.
    pub fn tc_offset(&self) -> &[u32] {
        &self.tc_offset
    }

    /// *TCLocalId* array (8-bit local indices).
    pub fn tc_local_id(&self) -> &[u8] {
        &self.tc_local_id
    }

    /// *SparseAtoB* array (original column per block column slot).
    pub fn sparse_a_to_b(&self) -> &[u32] {
        &self.sparse_a_to_b
    }

    /// Non-zero values aligned with `tc_local_id`.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The range of global TC-block indices belonging to window `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w >= self.num_windows()`.
    pub fn window_blocks(&self, w: usize) -> std::ops::Range<usize> {
        self.row_window_offset[w] as usize..self.row_window_offset[w + 1] as usize
    }

    /// Number of TC blocks in window `w`.
    pub fn window_block_count(&self, w: usize) -> usize {
        self.window_blocks(w).len()
    }

    /// Per-window TC block counts.
    pub fn window_block_counts(&self) -> Vec<usize> {
        (0..self.num_windows()).map(|w| self.window_block_count(w)).collect()
    }

    /// Per-window cost estimates for `dtc_par::ShardPlan::weighted`: the
    /// non-zeros plus TC blocks of each window (+1 floor so empty windows
    /// still carry the loop-iteration cost). Both trace lowering and host
    /// SpMM execution scale with this sum, so it is the shared shard weight
    /// for every per-window parallel loop.
    pub fn window_nnz_weights(&self) -> Vec<u64> {
        (0..self.num_windows())
            .map(|w| {
                let blocks = self.window_blocks(w);
                let nnz = self.tc_offset[blocks.end] - self.tc_offset[blocks.start];
                nnz as u64 + blocks.len() as u64 + 1
            })
            .collect()
    }

    /// `MeanNnzTC` for this matrix.
    pub fn mean_nnz_tc(&self) -> f64 {
        let blocks = self.num_tc_blocks();
        if blocks == 0 {
            0.0
        } else {
            self.nnz() as f64 / blocks as f64
        }
    }

    /// The (up to 8) original column indices of global TC block `t`,
    /// excluding padding.
    pub fn block_cols(&self, t: usize) -> &[u32] {
        let slots = &self.sparse_a_to_b[t * BLOCK_WIDTH..(t + 1) * BLOCK_WIDTH];
        let valid = slots.iter().position(|&c| c == PAD_COL).unwrap_or(BLOCK_WIDTH);
        &slots[..valid]
    }

    /// The `(local_ids, values)` of global TC block `t`.
    pub fn block_entries(&self, t: usize) -> (&[u8], &[f32]) {
        let range = self.tc_offset[t] as usize..self.tc_offset[t + 1] as usize;
        (&self.tc_local_id[range.clone()], &self.values[range])
    }

    /// Number of distinct column indices among stored entries, read
    /// straight from the per-window column maps (every column in
    /// `sparse_a_to_b` backs at least one stored entry, so a bitmap over
    /// the non-padding slots counts exactly what a CSR scan would).
    pub fn distinct_cols(&self) -> usize {
        let mut seen = vec![0u64; self.cols.div_ceil(64)];
        let mut count = 0;
        for &c in &self.sparse_a_to_b {
            if c == PAD_COL {
                continue;
            }
            let (word, bit) = (c as usize / 64, c as usize % 64);
            if seen[word] & (1 << bit) == 0 {
                seen[word] |= 1 << bit;
                count += 1;
            }
        }
        count
    }

    /// Index-array element count in 32-bit units (§4.2):
    /// `⌈M/16⌉ + 9·NumTCBlock + NNZ/4 + 2`.
    pub fn index_elements(&self) -> u64 {
        self.rows.div_ceil(WINDOW_HEIGHT) as u64
            + 9 * self.num_tc_blocks() as u64
            + self.nnz() as u64 / 4
            + 2
    }

    /// Reconstructs the canonical CSR arrays — `(row_ptr, col_idx,
    /// values)` in row-major, column-ascending order — **without
    /// sorting**. SGT condensing stores each window's distinct columns
    /// sorted, emits TC blocks in ascending column-range order and orders
    /// entries within a block by `(local_row, local_col)`, so one
    /// bucketing pass per window (one bucket per local row) recovers
    /// exact CSR order: a row's entries arrive block by block with
    /// strictly increasing columns.
    ///
    /// This is the cheap identity path for incremental updates: hashing
    /// or rebuilding a CSR view of a patched ME-TCF costs `O(nnz)` here
    /// versus the `O(nnz log nnz)` triplet sort of a generic rebuild.
    pub fn csr_arrays(&self) -> (Vec<usize>, Vec<u32>, Vec<f32>) {
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        let mut buckets: [Vec<(u32, f32)>; WINDOW_HEIGHT] = Default::default();
        for w in 0..self.num_windows() {
            for bucket in &mut buckets {
                bucket.clear();
            }
            for t in self.window_blocks(w) {
                let cols = self.block_cols(t);
                let (ids, vals) = self.block_entries(t);
                for (&id, &v) in ids.iter().zip(vals) {
                    let local_row = (id / BLOCK_WIDTH as u8) as usize;
                    let local_col = (id % BLOCK_WIDTH as u8) as usize;
                    buckets[local_row].push((cols[local_col], v));
                }
            }
            let base = w * WINDOW_HEIGHT;
            for (local_row, bucket) in buckets.iter().enumerate() {
                let r = base + local_row;
                if r >= self.rows {
                    break;
                }
                row_ptr[r + 1] = row_ptr[r] + bucket.len();
                for &(c, v) in bucket {
                    col_idx.push(c);
                    values.push(v);
                }
            }
        }
        (row_ptr, col_idx, values)
    }

    /// Reconstructs the original CSR matrix.
    ///
    /// # Errors
    ///
    /// Never fails for a value built by [`MeTcfMatrix::from_csr`].
    pub fn to_csr(&self) -> Result<CsrMatrix, FormatError> {
        let (row_ptr, col_idx, values) = self.csr_arrays();
        CsrMatrix::from_parts(self.rows, self.cols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            33,
            40,
            &[
                (0, 1, 1.0),
                (0, 20, 2.0),
                (3, 1, 3.0),
                (15, 39, 4.0),
                (16, 0, 5.0),
                (31, 0, 6.0),
                (32, 32, 7.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn array_lengths() {
        let m = MeTcfMatrix::from_csr(&sample());
        assert_eq!(m.row_window_offset().len(), m.num_windows() + 1);
        assert_eq!(m.tc_offset().len(), m.num_tc_blocks() + 1);
        assert_eq!(m.tc_local_id().len(), m.nnz());
        assert_eq!(m.sparse_a_to_b().len(), m.num_tc_blocks() * BLOCK_WIDTH);
    }

    #[test]
    fn roundtrip() {
        let a = sample();
        let m = MeTcfMatrix::from_csr(&a);
        assert_eq!(m.to_csr().unwrap(), a);
    }

    #[test]
    fn distinct_cols_counts_what_a_csr_scan_would() {
        for (rows, cols, nnz, seed) in [(33, 40, 7, 0u64), (100, 64, 900, 3), (50, 300, 1200, 9)] {
            let a = crate::gen::uniform(rows, cols, nnz, seed);
            let m = MeTcfMatrix::from_csr(&a);
            let scan: std::collections::HashSet<u32> = a.col_idx().iter().copied().collect();
            assert_eq!(m.distinct_cols(), scan.len(), "seed {seed}");
        }
        assert_eq!(MeTcfMatrix::from_csr(&sample()).distinct_cols(), 5);
    }

    #[test]
    fn csr_arrays_match_the_source_arrays_without_sorting() {
        for (rows, cols, nnz, seed) in
            [(33, 40, 7, 0u64), (100, 64, 900, 3), (16, 16, 0, 4), (50, 300, 1200, 9)]
        {
            let a = if nnz == 0 {
                CsrMatrix::from_triplets(rows, cols, &[]).unwrap()
            } else {
                crate::gen::uniform(rows, cols, nnz, seed)
            };
            let m = MeTcfMatrix::from_csr(&a);
            let (row_ptr, col_idx, values) = m.csr_arrays();
            assert_eq!(row_ptr, a.row_ptr());
            assert_eq!(col_idx, a.col_idx());
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&values), bits(a.values()));
        }
    }

    #[test]
    fn zero_nnz_roundtrip() {
        // No stored entries at all: every window is empty, tc arrays are
        // empty, and the round-trip must reproduce the shape.
        for (rows, cols) in [(1, 1), (16, 8), (33, 7), (161, 129)] {
            let a = CsrMatrix::from_triplets(rows, cols, &[]).unwrap();
            let m = MeTcfMatrix::from_csr(&a);
            assert_eq!(m.num_tc_blocks(), 0);
            assert_eq!(m.nnz(), 0);
            assert_eq!(m.num_windows(), rows.div_ceil(WINDOW_HEIGHT));
            assert_eq!(m.to_csr().unwrap(), a);
        }
    }

    #[test]
    fn from_raw_parts_accepts_empty_offset_arrays() {
        // The zero-block degenerate encodings: empty offset vectors stand
        // in for the canonical `[0]` and previously underflowed the block
        // count. A 0-row matrix has zero windows, so `row_window_offset`
        // may itself be empty.
        let m = MeTcfMatrix::from_raw_parts(0, 5, vec![], vec![], vec![], vec![], vec![]);
        assert_eq!(m.num_windows(), 0);
        assert_eq!(m.num_tc_blocks(), 0);
        let m = MeTcfMatrix::from_raw_parts(12, 5, vec![0, 0], vec![], vec![], vec![], vec![]);
        assert_eq!(m.num_windows(), 1);
        assert_eq!(m.num_tc_blocks(), 0);
        assert_eq!(m.to_csr().unwrap(), CsrMatrix::from_triplets(12, 5, &[]).unwrap());
    }

    #[test]
    fn all_empty_windows_except_one_roundtrip() {
        // Entries confined to one interior window; the empty windows before
        // and after must carry zero blocks through conversion and back.
        let a = CsrMatrix::from_triplets(80, 20, &[(35, 3, 1.5), (38, 19, -2.0)]).unwrap();
        let m = MeTcfMatrix::from_csr(&a);
        assert_eq!(m.num_windows(), 5);
        assert_eq!(m.window_block_counts(), vec![0, 0, 1, 0, 0]);
        assert_eq!(m.to_csr().unwrap(), a);
    }

    #[test]
    fn matches_condensed_block_count() {
        let a = sample();
        let c = Condensed::from_csr(&a);
        let m = MeTcfMatrix::from_condensed(&c);
        assert_eq!(m.num_tc_blocks(), c.num_tc_blocks());
        assert_eq!(m.mean_nnz_tc(), c.mean_nnz_tc());
        assert_eq!(m.window_block_counts(), c.window_block_counts());
    }

    #[test]
    fn index_elements_formula() {
        let m = MeTcfMatrix::from_csr(&sample());
        let expect = 33u64.div_ceil(16) + 9 * m.num_tc_blocks() as u64 + 7 / 4 + 2;
        assert_eq!(m.index_elements(), expect);
    }

    #[test]
    fn metcf_cheaper_than_tcf() {
        use crate::TcfMatrix;
        // A larger random-ish matrix: ME-TCF must beat TCF on index memory.
        let t: Vec<(usize, usize, f32)> =
            (0..2000).map(|i| ((i * 7) % 300, (i * 13) % 300, 1.0)).collect();
        let a = CsrMatrix::from_triplets(300, 300, &t).unwrap();
        let me = MeTcfMatrix::from_csr(&a);
        let tcf = TcfMatrix::from_csr(&a).unwrap();
        assert!(me.index_elements() < tcf.index_elements());
    }

    #[test]
    fn block_cols_strip_padding() {
        let a = CsrMatrix::from_triplets(16, 100, &[(0, 10, 1.0), (2, 50, 2.0)]).unwrap();
        let m = MeTcfMatrix::from_csr(&a);
        assert_eq!(m.block_cols(0), &[10, 50]);
    }

    #[test]
    fn local_ids_are_within_block_bounds() {
        let m = MeTcfMatrix::from_csr(&sample());
        for &id in m.tc_local_id() {
            assert!(id < 128);
        }
    }
}
