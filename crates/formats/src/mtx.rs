//! Matrix Market (`.mtx`) I/O — so the library can load real SuiteSparse
//! matrices (the paper's corpus is distributed in this format) and export
//! generated stand-ins.
//!
//! Supports the `matrix coordinate` variants: `real` / `integer` /
//! `pattern` values with `general` / `symmetric` / `skew-symmetric`
//! symmetry. `pattern` entries read as 1.0; symmetric entries are mirrored.

use crate::{CsrMatrix, FormatError};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Value field of an MTX header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MtxField {
    Real,
    Integer,
    Pattern,
}

/// Symmetry of an MTX header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MtxSymmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Parses a Matrix Market stream into CSR.
///
/// Pass any reader — a mutable reference works for readers you want to keep.
///
/// # Errors
///
/// Returns [`FormatError::NotSupported`] for malformed headers, unsupported
/// variants (`array`, `complex`, `hermitian`), or syntax errors, and
/// [`FormatError::IndexOutOfBounds`] for entries outside the declared shape.
///
/// # Example
///
/// ```
/// use dtc_formats::mtx::read_mtx;
///
/// let text = "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 2.5\n3 2 -1\n";
/// let m = read_mtx(text.as_bytes())?;
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.to_dense().get(2, 1), -1.0);
/// # Ok::<(), dtc_formats::FormatError>(())
/// ```
pub fn read_mtx<R: Read>(reader: R) -> Result<CsrMatrix, FormatError> {
    let mut lines = BufReader::new(reader).lines();

    // Header line.
    let header = lines
        .next()
        .ok_or_else(|| FormatError::NotSupported("empty mtx stream".into()))?
        .map_err(|e| FormatError::NotSupported(format!("io error reading mtx: {e}")))?;
    let head: Vec<String> = header.split_whitespace().map(str::to_lowercase).collect();
    if head.len() != 5 || head[0] != "%%matrixmarket" || head[1] != "matrix" {
        return Err(FormatError::NotSupported(format!("bad mtx header: {header}")));
    }
    if head[2] != "coordinate" {
        return Err(FormatError::NotSupported(format!(
            "only coordinate mtx supported, got {}",
            head[2]
        )));
    }
    let field = match head[3].as_str() {
        "real" => MtxField::Real,
        "integer" => MtxField::Integer,
        "pattern" => MtxField::Pattern,
        other => return Err(FormatError::NotSupported(format!("unsupported mtx field {other}"))),
    };
    let symmetry = match head[4].as_str() {
        "general" => MtxSymmetry::General,
        "symmetric" => MtxSymmetry::Symmetric,
        "skew-symmetric" => MtxSymmetry::SkewSymmetric,
        other => {
            return Err(FormatError::NotSupported(format!("unsupported mtx symmetry {other}")))
        }
    };

    // Size line (first non-comment line).
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(|e| FormatError::NotSupported(format!("io error: {e}")))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(trimmed.to_owned());
        break;
    }
    let size_line =
        size_line.ok_or_else(|| FormatError::NotSupported("mtx stream has no size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse().map_err(|_| FormatError::NotSupported(format!("bad size line: {size_line}")))
        })
        .collect::<Result<_, _>>()?;
    let [rows, cols, nnz] = dims[..] else {
        return Err(FormatError::NotSupported(format!("bad size line: {size_line}")));
    };

    let mut triplets: Vec<(usize, usize, f32)> = Vec::with_capacity(nnz);
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(|e| FormatError::NotSupported(format!("io error: {e}")))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut tok = trimmed.split_whitespace();
        let parse_idx = |t: Option<&str>| -> Result<usize, FormatError> {
            t.and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| FormatError::NotSupported(format!("bad entry line: {trimmed}")))
        };
        let r = parse_idx(tok.next())?;
        let c = parse_idx(tok.next())?;
        if r == 0 || c == 0 {
            return Err(FormatError::NotSupported("mtx indices are 1-based".into()));
        }
        let v = match field {
            MtxField::Pattern => 1.0f32,
            MtxField::Real | MtxField::Integer => tok
                .next()
                .and_then(|s| s.parse::<f32>().ok())
                .ok_or_else(|| FormatError::NotSupported(format!("bad value in: {trimmed}")))?,
        };
        let (r, c) = (r - 1, c - 1);
        if r >= rows || c >= cols {
            return Err(FormatError::IndexOutOfBounds { row: r, col: c, rows, cols });
        }
        triplets.push((r, c, v));
        match symmetry {
            MtxSymmetry::General => {}
            MtxSymmetry::Symmetric if r != c => triplets.push((c, r, v)),
            MtxSymmetry::SkewSymmetric if r != c => triplets.push((c, r, -v)),
            _ => {}
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(FormatError::NotSupported(format!(
            "mtx declared {nnz} entries but contained {seen}"
        )));
    }
    CsrMatrix::from_triplets(rows, cols, &triplets)
}

/// Reads an `.mtx` file from disk.
///
/// # Errors
///
/// Propagates I/O failures as [`FormatError::NotSupported`] plus all
/// [`read_mtx`] errors.
pub fn read_mtx_file<P: AsRef<Path>>(path: P) -> Result<CsrMatrix, FormatError> {
    let file = std::fs::File::open(path.as_ref())
        .map_err(|e| FormatError::NotSupported(format!("cannot open mtx file: {e}")))?;
    read_mtx(file)
}

/// Writes a matrix as `matrix coordinate real general`.
///
/// # Errors
///
/// Propagates I/O failures as [`FormatError::NotSupported`].
pub fn write_mtx<W: Write>(mut writer: W, a: &CsrMatrix) -> Result<(), FormatError> {
    let io_err = |e: std::io::Error| FormatError::NotSupported(format!("mtx write failed: {e}"));
    writeln!(writer, "%%MatrixMarket matrix coordinate real general").map_err(io_err)?;
    writeln!(writer, "% written by dtc-spmm").map_err(io_err)?;
    writeln!(writer, "{} {} {}", a.rows(), a.cols(), a.nnz()).map_err(io_err)?;
    for (r, c, v) in a.iter() {
        writeln!(writer, "{} {} {v}", r + 1, c + 1).map_err(io_err)?;
    }
    Ok(())
}

/// Writes an `.mtx` file to disk.
///
/// # Errors
///
/// Propagates I/O failures as [`FormatError::NotSupported`].
pub fn write_mtx_file<P: AsRef<Path>>(path: P, a: &CsrMatrix) -> Result<(), FormatError> {
    let file = std::fs::File::create(path.as_ref())
        .map_err(|e| FormatError::NotSupported(format!("cannot create mtx file: {e}")))?;
    write_mtx(std::io::BufWriter::new(file), a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn parse_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n% comment\n2 3 3\n1 1 1.5\n2 3 -2\n1 2 4e-1\n";
        let m = read_mtx(text.as_bytes()).unwrap();
        assert_eq!((m.rows(), m.cols(), m.nnz()), (2, 3, 3));
        assert_eq!(m.to_dense().get(0, 1), 0.4);
    }

    #[test]
    fn parse_symmetric_mirrors() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5\n3 3 1\n";
        let m = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.to_dense().get(0, 1), 5.0);
        assert_eq!(m.to_dense().get(1, 0), 5.0);
    }

    #[test]
    fn parse_skew_symmetric_negates() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 3\n";
        let m = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(m.to_dense().get(0, 1), -3.0);
    }

    #[test]
    fn parse_pattern_as_ones() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n";
        let m = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(m.values(), &[1.0, 1.0]);
    }

    #[test]
    fn rejects_malformed() {
        assert!(read_mtx("not a header\n1 1 0\n".as_bytes()).is_err());
        assert!(read_mtx("%%MatrixMarket matrix array real general\n".as_bytes()).is_err());
        assert!(read_mtx(
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n".as_bytes()
        )
        .is_err());
        // Entry count mismatch.
        assert!(read_mtx(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n".as_bytes()
        )
        .is_err());
        // Out-of-range entry.
        assert!(read_mtx(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n".as_bytes()
        )
        .is_err());
        // Zero (0-based) index.
        assert!(read_mtx(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let a = gen::power_law(64, 64, 4.0, 2.2, 17);
        let mut buf = Vec::new();
        write_mtx(&mut buf, &a).unwrap();
        let back = read_mtx(buf.as_slice()).unwrap();
        assert_eq!(back.rows(), a.rows());
        assert_eq!(back.nnz(), a.nnz());
        assert!(back.to_dense().max_abs_diff(&a.to_dense()) < 1e-5);
    }

    #[test]
    fn file_roundtrip() {
        let a = gen::uniform(32, 32, 100, 18);
        let path = std::env::temp_dir().join("dtc_spmm_mtx_test.mtx");
        write_mtx_file(&path, &a).unwrap();
        let back = read_mtx_file(&path).unwrap();
        assert_eq!(back.nnz(), a.nnz());
        let _ = std::fs::remove_file(&path);
    }
}
