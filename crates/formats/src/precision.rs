//! Tensor-Core input precisions.
//!
//! The paper targets TF32 ("a more favorable alternative to FP32") but
//! closes by noting its "insights and optimizations can be extended to
//! support other precisions". This module provides the three TC input
//! precisions relevant to SpMM — TF32, FP16 and BF16 — as rounding
//! functions plus their Tensor-Core throughput multipliers.

use crate::tf32::round_to_tf32;

/// A Tensor-Core multiplicand precision. Accumulation is FP32 in all cases
/// (the `*.f32.<in>.<in>.f32` `mma` variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// 8-bit exponent, 10-bit mantissa (FP32 range, reduced precision) —
    /// the paper's choice for GNN and scientific workloads.
    #[default]
    Tf32,
    /// IEEE half: 5-bit exponent, 10-bit mantissa. Twice the TC throughput
    /// of TF32, but overflows beyond ±65504.
    Fp16,
    /// bfloat16: 8-bit exponent, 7-bit mantissa. Twice the TC throughput,
    /// FP32 range, coarser mantissa.
    Bf16,
}

impl Precision {
    /// Rounds an `f32` to this precision's representable set (returned as
    /// `f32`, the way TC inputs are materialized before conversion).
    #[inline]
    pub fn round(self, x: f32) -> f32 {
        match self {
            Precision::Tf32 => round_to_tf32(x),
            Precision::Fp16 => round_to_fp16(x),
            Precision::Bf16 => round_to_bf16(x),
        }
    }

    /// Worst-case relative rounding error (half a ULP of the mantissa).
    pub fn unit_roundoff(self) -> f32 {
        match self {
            Precision::Tf32 | Precision::Fp16 => 1.0 / 2048.0, // 10-bit mantissa
            Precision::Bf16 => 1.0 / 256.0,                    // 7-bit mantissa
        }
    }

    /// Tensor-Core throughput relative to TF32 (Ampere/Ada: FP16/BF16 run
    /// at twice the TF32 rate).
    pub fn tc_throughput_multiplier(self) -> f64 {
        match self {
            Precision::Tf32 => 1.0,
            Precision::Fp16 | Precision::Bf16 => 2.0,
        }
    }

    /// Display name matching the PTX modifier.
    pub fn name(self) -> &'static str {
        match self {
            Precision::Tf32 => "tf32",
            Precision::Fp16 => "f16",
            Precision::Bf16 => "bf16",
        }
    }
}

/// Rounds through IEEE binary16 (round-to-nearest-even), returning the
/// value as `f32`. Overflow saturates to ±inf; subnormals flush to zero
/// (the Tensor-Core behaviour).
#[inline]
pub fn round_to_fp16(x: f32) -> f32 {
    if !x.is_finite() {
        return x;
    }
    let bits = x.to_bits();
    let sign = bits & 0x8000_0000;
    let abs = f32::from_bits(bits & 0x7FFF_FFFF);
    if abs == 0.0 {
        return f32::from_bits(sign); // preserve signed zero
    }
    // Magnitude beyond f16 max rounds to infinity.
    if abs >= 65520.0 {
        return f32::from_bits(sign | 0x7F80_0000);
    }
    // Subnormal range of f16: flush to zero (TC behaviour).
    if abs < 6.103_515_6e-5 {
        return f32::from_bits(sign);
    }
    // Normal range: RNE on the 13 dropped mantissa bits — identical
    // machinery to TF32 (both keep 10 mantissa bits).
    round_to_tf32(x)
}

/// Rounds to bfloat16 (round-to-nearest-even on the low 16 bits).
#[inline]
pub fn round_to_bf16(x: f32) -> f32 {
    if !x.is_finite() {
        return x;
    }
    let bits = x.to_bits();
    let halfway = 1u32 << 15;
    let truncated = bits & 0xFFFF_0000;
    let rem = bits & 0xFFFF;
    let round_up = rem > halfway || (rem == halfway && (bits >> 16) & 1 == 1);
    let rounded = if round_up { truncated.wrapping_add(1 << 16) } else { truncated };
    f32::from_bits(rounded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_survive_everywhere() {
        for p in [Precision::Tf32, Precision::Fp16, Precision::Bf16] {
            for v in [0.0f32, 1.0, -2.0, 0.5, 64.0] {
                assert_eq!(p.round(v), v, "{p:?} {v}");
            }
        }
    }

    #[test]
    fn fp16_overflows_to_infinity() {
        assert_eq!(round_to_fp16(1e6), f32::INFINITY);
        assert_eq!(round_to_fp16(-1e6), f32::NEG_INFINITY);
        // TF32 and BF16 keep FP32 range.
        assert!(Precision::Tf32.round(1e6).is_finite());
        assert!(Precision::Bf16.round(1e6).is_finite());
    }

    #[test]
    fn fp16_flushes_subnormals() {
        assert_eq!(round_to_fp16(1e-6), 0.0);
        assert_eq!(round_to_fp16(-1e-6), -0.0);
        assert!(round_to_fp16(-1e-6).is_sign_negative());
    }

    #[test]
    fn bf16_keeps_7_mantissa_bits() {
        for i in 1..500 {
            let x = (i as f32).ln() + 1.0;
            let r = round_to_bf16(x);
            assert_eq!(r.to_bits() & 0xFFFF, 0, "x={x}");
            let rel = ((x - r) / x).abs();
            assert!(rel <= Precision::Bf16.unit_roundoff(), "x={x} rel={rel}");
        }
    }

    #[test]
    fn bf16_coarser_than_tf32() {
        let mut bf_worse = 0;
        for i in 1..1000 {
            let x = (i as f32).sqrt() * 1.37;
            let e_tf = (Precision::Tf32.round(x) - x).abs();
            let e_bf = (Precision::Bf16.round(x) - x).abs();
            if e_bf > e_tf {
                bf_worse += 1;
            }
            assert!(e_bf + 1e-12 >= e_tf, "bf16 cannot beat tf32 at {x}");
        }
        assert!(bf_worse > 500, "bf16 should usually be coarser ({bf_worse})");
    }

    #[test]
    fn throughput_multipliers() {
        assert_eq!(Precision::Tf32.tc_throughput_multiplier(), 1.0);
        assert_eq!(Precision::Fp16.tc_throughput_multiplier(), 2.0);
        assert_eq!(Precision::Bf16.tc_throughput_multiplier(), 2.0);
    }

    #[test]
    fn non_finite_passthrough() {
        for p in [Precision::Tf32, Precision::Fp16, Precision::Bf16] {
            assert!(p.round(f32::NAN).is_nan());
            assert_eq!(p.round(f32::INFINITY), f32::INFINITY);
        }
    }
}
