use crate::{CsrMatrix, FormatError};

/// Height of a row window / TC block (§2.3: TC blocks are 16×8).
pub const WINDOW_HEIGHT: usize = 16;
/// Width of a TC block.
pub const BLOCK_WIDTH: usize = 8;

/// One non-zero after Sparse Graph Translation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CondensedEntry {
    /// Row within the 16-row window (0..16).
    pub local_row: u8,
    /// Compressed column index within the window (position of the original
    /// column in the window's sorted unique-column list).
    pub comp_col: u32,
    /// Original column index in the uncondensed matrix.
    pub orig_col: u32,
    /// The non-zero value.
    pub value: f32,
}

/// One 16-row window of a condensed matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct RowWindow {
    /// First (global) row covered by this window.
    pub start_row: usize,
    /// Sorted, deduplicated original column indices appearing in the window.
    /// `unique_cols[j]` is the original column of compressed column `j`.
    pub unique_cols: Vec<u32>,
    /// Entries sorted by `(comp_col / BLOCK_WIDTH, local_row, comp_col)` —
    /// i.e. grouped by TC block.
    pub entries: Vec<CondensedEntry>,
    /// `block_entry_offsets[b]..block_entry_offsets[b+1]` indexes the entries
    /// of TC block `b`. Length `num_blocks + 1`.
    pub block_entry_offsets: Vec<usize>,
}

impl RowWindow {
    /// Number of TC blocks in this window: `ceil(unique_cols / 8)`.
    pub fn num_blocks(&self) -> usize {
        self.unique_cols.len().div_ceil(BLOCK_WIDTH)
    }

    /// Number of non-zeros in this window.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Borrowed view of TC block `b` of this window.
    ///
    /// # Panics
    ///
    /// Panics if `b >= self.num_blocks()`.
    pub fn block(&self, b: usize) -> TcBlock<'_> {
        assert!(b < self.num_blocks(), "block index out of range");
        let col_lo = b * BLOCK_WIDTH;
        let col_hi = ((b + 1) * BLOCK_WIDTH).min(self.unique_cols.len());
        TcBlock {
            block_in_window: b,
            cols: &self.unique_cols[col_lo..col_hi],
            entries: &self.entries[self.block_entry_offsets[b]..self.block_entry_offsets[b + 1]],
        }
    }

    /// Iterator over the TC blocks of this window.
    pub fn blocks(&self) -> impl Iterator<Item = TcBlock<'_>> + '_ {
        (0..self.num_blocks()).map(move |b| self.block(b))
    }
}

/// A borrowed view of one 16×8 TC block.
#[derive(Debug, Clone, Copy)]
pub struct TcBlock<'a> {
    /// Index of this block within its window.
    pub block_in_window: usize,
    /// The original column indices of this block's (up to 8) columns.
    pub cols: &'a [u32],
    /// The non-zero entries falling in this block.
    pub entries: &'a [CondensedEntry],
}

impl TcBlock<'_> {
    /// Density of the block: `nnz / (16 * 8)`.
    pub fn density(&self) -> f64 {
        self.entries.len() as f64 / (WINDOW_HEIGHT * BLOCK_WIDTH) as f64
    }

    /// The 0..127 local id of an entry within this block, as stored by
    /// ME-TCF's `TCLocalId` array: `local_row * 8 + (comp_col % 8)`.
    pub fn local_id(entry: &CondensedEntry) -> u8 {
        entry.local_row * BLOCK_WIDTH as u8 + (entry.comp_col as usize % BLOCK_WIDTH) as u8
    }
}

/// A sparse matrix condensed by Sparse Graph Translation (SGT, §2.3).
///
/// The matrix is split into [`WINDOW_HEIGHT`]-row windows; within each
/// window the non-zeros are compressed "towards the left" by renumbering
/// columns with the window's sorted unique original columns. Groups of
/// [`BLOCK_WIDTH`] compressed columns form the 16×8 *TC blocks* processed
/// by one Tensor Core `mma` sequence.
///
/// # Example
///
/// ```
/// use dtc_formats::{Condensed, CsrMatrix};
///
/// # fn main() -> Result<(), dtc_formats::FormatError> {
/// // Two rows sharing column 100 condense into a single TC block.
/// let a = CsrMatrix::from_triplets(16, 200, &[(0, 100, 1.0), (1, 100, 2.0), (2, 7, 3.0)])?;
/// let c = Condensed::from_csr(&a);
/// assert_eq!(c.num_windows(), 1);
/// assert_eq!(c.num_tc_blocks(), 1);
/// assert_eq!(c.window(0).unique_cols, vec![7, 100]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Condensed {
    rows: usize,
    cols: usize,
    nnz: usize,
    windows: Vec<RowWindow>,
}

impl Condensed {
    /// Condenses a CSR matrix with SGT.
    pub fn from_csr(a: &CsrMatrix) -> Self {
        let rows = a.rows();
        let num_windows = rows.div_ceil(WINDOW_HEIGHT);
        // SGT condensing is embarrassingly parallel: each 16-row window
        // reads only its own rows, and results land in per-window slots,
        // so the condensed form is identical for any thread count or steal
        // schedule. Shards are cut at nnz quantiles (a window's cost tracks
        // its non-zeros), column dedup stages through the worker's arena,
        // and the output vectors are sized exactly before filling.
        let row_ptr = a.row_ptr();
        let window_nnz =
            |w: usize| row_ptr[((w + 1) * WINDOW_HEIGHT).min(rows)] - row_ptr[w * WINDOW_HEIGHT];
        let weights: Vec<u64> = (0..num_windows).map(|w| window_nnz(w) as u64).collect();
        let plan = dtc_par::ShardPlan::weighted(dtc_par::num_threads(), &weights);
        let windows = dtc_par::par_map_collect_plan(&plan, |w, scratch| {
            let start_row = w * WINDOW_HEIGHT;
            let end_row = (start_row + WINDOW_HEIGHT).min(rows);
            // Gather and dedup columns in reused scratch, then copy out
            // exactly sized (extend/sort over a fresh Vec would overshoot).
            let mut col_stage = scratch.u32_buf();
            for r in start_row..end_row {
                col_stage.extend_from_slice(a.row_entries(r).0);
            }
            col_stage.sort_unstable();
            col_stage.dedup();
            let unique_cols: Vec<u32> = col_stage.as_slice().to_vec();
            scratch.recycle_u32(col_stage);
            // Build entries with compressed columns.
            let mut entries: Vec<CondensedEntry> = Vec::with_capacity(window_nnz(w));
            for r in start_row..end_row {
                let (cols, vals) = a.row_entries(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    let comp = unique_cols.binary_search(&c).expect("col present") as u32;
                    entries.push(CondensedEntry {
                        local_row: (r - start_row) as u8,
                        comp_col: comp,
                        orig_col: c,
                        value: v,
                    });
                }
            }
            // Group by TC block, then by local row within the block.
            entries.sort_unstable_by_key(|e| {
                (e.comp_col as usize / BLOCK_WIDTH, e.local_row, e.comp_col)
            });
            let num_blocks = unique_cols.len().div_ceil(BLOCK_WIDTH);
            let mut block_entry_offsets = vec![0usize; num_blocks + 1];
            for e in &entries {
                block_entry_offsets[e.comp_col as usize / BLOCK_WIDTH + 1] += 1;
            }
            for b in 0..num_blocks {
                block_entry_offsets[b + 1] += block_entry_offsets[b];
            }
            RowWindow { start_row, unique_cols, entries, block_entry_offsets }
        });
        Condensed { rows, cols: a.cols(), nnz: a.nnz(), windows }
    }

    /// Number of rows of the original matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the original matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of non-zeros.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of 16-row windows.
    pub fn num_windows(&self) -> usize {
        self.windows.len()
    }

    /// Borrow of window `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn window(&self, w: usize) -> &RowWindow {
        &self.windows[w]
    }

    /// Iterator over all windows.
    pub fn windows(&self) -> impl Iterator<Item = &RowWindow> + '_ {
        self.windows.iter()
    }

    /// Total number of TC blocks (the TC workload unit, Observation 2).
    pub fn num_tc_blocks(&self) -> usize {
        self.windows.iter().map(RowWindow::num_blocks).sum()
    }

    /// `MeanNnzTC`: average non-zeros per TC block (Observation 2). Zero for
    /// an empty matrix.
    pub fn mean_nnz_tc(&self) -> f64 {
        let blocks = self.num_tc_blocks();
        if blocks == 0 {
            0.0
        } else {
            self.nnz as f64 / blocks as f64
        }
    }

    /// Per-window TC block counts — the *blockpartition* array of TCF, and
    /// the workload vector the Selector's makespan model consumes.
    pub fn window_block_counts(&self) -> Vec<usize> {
        self.windows.iter().map(RowWindow::num_blocks).collect()
    }

    /// Reconstructs the original CSR matrix (inverse of SGT).
    ///
    /// # Errors
    ///
    /// Never fails for a `Condensed` built by [`Condensed::from_csr`]; the
    /// `Result` guards hand-constructed values.
    pub fn to_csr(&self) -> Result<CsrMatrix, FormatError> {
        let mut triplets = Vec::with_capacity(self.nnz);
        for w in &self.windows {
            for e in &w.entries {
                triplets.push((w.start_row + e.local_row as usize, e.orig_col as usize, e.value));
            }
        }
        CsrMatrix::from_triplets(self.rows, self.cols, &triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(n: usize) -> CsrMatrix {
        let t: Vec<(usize, usize, f32)> = (0..n).map(|i| (i, i, 1.0)).collect();
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn windows_cover_all_rows() {
        let c = Condensed::from_csr(&diag(40));
        assert_eq!(c.num_windows(), 3); // ceil(40/16)
        assert_eq!(c.window(2).start_row, 32);
    }

    #[test]
    fn diagonal_condenses_to_dense_windows() {
        // A 16x16 diagonal window has 16 unique cols => 2 TC blocks.
        let c = Condensed::from_csr(&diag(16));
        assert_eq!(c.num_tc_blocks(), 2);
        assert_eq!(c.window(0).unique_cols.len(), 16);
        assert!((c.mean_nnz_tc() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn shared_columns_condense() {
        // All 16 rows hit the same column: one compressed column, one block,
        // MeanNnzTC = 16.
        let t: Vec<(usize, usize, f32)> = (0..16).map(|r| (r, 999, 1.0)).collect();
        let a = CsrMatrix::from_triplets(16, 1000, &t).unwrap();
        let c = Condensed::from_csr(&a);
        assert_eq!(c.num_tc_blocks(), 1);
        assert_eq!(c.mean_nnz_tc(), 16.0);
    }

    #[test]
    fn roundtrip_to_csr() {
        let a = CsrMatrix::from_triplets(
            35,
            50,
            &[(0, 10, 1.0), (0, 40, 2.0), (15, 10, 3.0), (16, 0, 4.0), (34, 49, 5.0)],
        )
        .unwrap();
        let c = Condensed::from_csr(&a);
        assert_eq!(c.to_csr().unwrap(), a);
    }

    #[test]
    fn block_views_partition_entries() {
        let t: Vec<(usize, usize, f32)> =
            (0..20).map(|i| (i % 16, i * 3, (i + 1) as f32)).collect();
        let a = CsrMatrix::from_triplets(16, 100, &t).unwrap();
        let c = Condensed::from_csr(&a);
        let w = c.window(0);
        let total: usize = w.blocks().map(|b| b.entries.len()).sum();
        assert_eq!(total, w.nnz());
        // Every entry's comp_col falls in its block's column range.
        for (bi, b) in w.blocks().enumerate() {
            for e in b.entries {
                assert_eq!(e.comp_col as usize / BLOCK_WIDTH, bi);
                // orig col is recoverable from the block's column list.
                assert_eq!(b.cols[e.comp_col as usize % BLOCK_WIDTH], e.orig_col);
            }
        }
    }

    #[test]
    fn local_id_fits_in_u8() {
        let t: Vec<(usize, usize, f32)> =
            (0..16).flat_map(|r| (0..8).map(move |c| (r, c, 1.0))).collect();
        let a = CsrMatrix::from_triplets(16, 8, &t).unwrap();
        let c = Condensed::from_csr(&a);
        let w = c.window(0);
        let mut ids: Vec<u8> = w.block(0).entries.iter().map(TcBlock::local_id).collect();
        ids.sort_unstable();
        let expect: Vec<u8> = (0..128).collect();
        assert_eq!(ids, expect); // a full block uses exactly ids 0..=127
    }

    #[test]
    fn empty_matrix() {
        let a = CsrMatrix::from_triplets(0, 0, &[]).unwrap();
        let c = Condensed::from_csr(&a);
        assert_eq!(c.num_windows(), 0);
        assert_eq!(c.num_tc_blocks(), 0);
        assert_eq!(c.mean_nnz_tc(), 0.0);
    }
}
