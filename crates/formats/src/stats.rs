//! Matrix statistics used throughout the paper's analysis: average row
//! length (`AvgRowL`), `MeanNnzTC`, row-length dispersion, and window-load
//! imbalance measures.

use crate::{Condensed, CsrMatrix};

/// Summary statistics of a sparse matrix, in the vocabulary of the paper.
///
/// # Example
///
/// ```
/// use dtc_formats::stats::MatrixStats;
/// use dtc_formats::gen;
///
/// let s = MatrixStats::of(&gen::long_row(128, 512, 100.0, 0.5, 3));
/// assert!(s.is_type_ii());
/// assert!(s.sparsity > 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Number of rows (`M`).
    pub rows: usize,
    /// Number of columns (`K`).
    pub cols: usize,
    /// Number of non-zeros (`NNZ`).
    pub nnz: usize,
    /// Average row length `NNZ / M` (`AvgRowL`, §3).
    pub avg_row_len: f64,
    /// Maximum row length.
    pub max_row_len: usize,
    /// Coefficient of variation of row lengths (σ/μ) — degree skew.
    pub row_len_cv: f64,
    /// Density `NNZ / (M*K)`.
    pub density: f64,
    /// Sparsity `1 - density`, the measure quoted for DL weights (60–90 %)
    /// vs GNN matrices (>95 %).
    pub sparsity: f64,
}

impl MatrixStats {
    /// Computes statistics for a CSR matrix.
    pub fn of(a: &CsrMatrix) -> Self {
        let rows = a.rows();
        let nnz = a.nnz();
        let lens: Vec<usize> = (0..rows).map(|r| a.row_len(r)).collect();
        let avg = if rows == 0 { 0.0 } else { nnz as f64 / rows as f64 };
        let var = if rows == 0 {
            0.0
        } else {
            lens.iter().map(|&l| (l as f64 - avg).powi(2)).sum::<f64>() / rows as f64
        };
        let cv = if avg > 0.0 { var.sqrt() / avg } else { 0.0 };
        let cells = rows as f64 * a.cols() as f64;
        let density = if cells > 0.0 { nnz as f64 / cells } else { 0.0 };
        MatrixStats {
            rows,
            cols: a.cols(),
            nnz,
            avg_row_len: avg,
            max_row_len: lens.iter().copied().max().unwrap_or(0),
            row_len_cv: cv,
            density,
            sparsity: 1.0 - density,
        }
    }

    /// The paper's Type I / Type II split: Type II matrices have large
    /// average row length (the paper's Type II examples range 493–598;
    /// Type I, 2–12). We use 64 as the dividing line.
    pub fn is_type_ii(&self) -> bool {
        self.avg_row_len >= 64.0
    }
}

/// Statistics of the condensed (SGT) form of a matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CondensedStats {
    /// Total TC blocks (`NumTCBlocks`).
    pub num_tc_blocks: usize,
    /// Average non-zeros per TC block (`MeanNnzTC`, Observation 2).
    pub mean_nnz_tc: f64,
    /// Number of 16-row windows.
    pub num_windows: usize,
    /// Mean TC blocks per window.
    pub mean_blocks_per_window: f64,
    /// Max TC blocks in any window.
    pub max_blocks_per_window: usize,
    /// Gini coefficient of the per-window TC block counts — the workload
    /// imbalance measure behind Observation 4.
    pub window_load_gini: f64,
}

impl CondensedStats {
    /// Computes condensed-form statistics.
    pub fn of(c: &Condensed) -> Self {
        let loads = c.window_block_counts();
        let num_windows = loads.len();
        let total: usize = loads.iter().sum();
        let mean = if num_windows == 0 { 0.0 } else { total as f64 / num_windows as f64 };
        CondensedStats {
            num_tc_blocks: total,
            mean_nnz_tc: c.mean_nnz_tc(),
            num_windows,
            mean_blocks_per_window: mean,
            max_blocks_per_window: loads.iter().copied().max().unwrap_or(0),
            window_load_gini: gini(&loads),
        }
    }
}

/// Gini coefficient of a non-negative load vector (0 = perfectly even,
/// → 1 = maximally skewed). Returns 0 for empty or all-zero input.
pub fn gini(loads: &[usize]) -> f64 {
    let n = loads.len();
    if n == 0 {
        return 0.0;
    }
    let total: u64 = loads.iter().map(|&l| l as u64).sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = loads.iter().map(|&l| l as u64).collect();
    sorted.sort_unstable();
    let mut cum = 0u128;
    let mut weighted = 0u128;
    for (i, &l) in sorted.iter().enumerate() {
        cum += l as u128;
        weighted += (i as u128 + 1) * l as u128;
        let _ = cum;
    }
    let n_f = n as f64;
    let total_f = total as f64;
    (2.0 * weighted as f64 / (n_f * total_f)) - (n_f + 1.0) / n_f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let a = CsrMatrix::from_triplets(4, 8, &[(0, 0, 1.0), (0, 1, 1.0), (2, 5, 1.0)]).unwrap();
        let s = MatrixStats::of(&a);
        assert_eq!(s.nnz, 3);
        assert!((s.avg_row_len - 0.75).abs() < 1e-12);
        assert_eq!(s.max_row_len, 2);
        assert!((s.density - 3.0 / 32.0).abs() < 1e-12);
        assert!(!s.is_type_ii());
    }

    #[test]
    fn type_ii_threshold() {
        // A single row with 100 nnz in a 1-row matrix: AvgRowL = 100.
        let t: Vec<(usize, usize, f32)> = (0..100).map(|c| (0, c, 1.0)).collect();
        let a = CsrMatrix::from_triplets(1, 128, &t).unwrap();
        assert!(MatrixStats::of(&a).is_type_ii());
    }

    #[test]
    fn gini_uniform_is_zero() {
        assert!(gini(&[5, 5, 5, 5]) < 1e-12);
    }

    #[test]
    fn gini_skewed_is_large() {
        let g = gini(&[0, 0, 0, 100]);
        assert!(g > 0.7, "gini={g}");
    }

    #[test]
    fn gini_edge_cases() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
        assert_eq!(gini(&[7]), 0.0);
    }

    #[test]
    fn condensed_stats_consistency() {
        let t: Vec<(usize, usize, f32)> =
            (0..200).map(|i| ((i * 3) % 48, (i * 7) % 64, 1.0)).collect();
        let a = CsrMatrix::from_triplets(48, 64, &t).unwrap();
        let c = Condensed::from_csr(&a);
        let s = CondensedStats::of(&c);
        assert_eq!(s.num_tc_blocks, c.num_tc_blocks());
        assert_eq!(s.num_windows, 3);
        assert!(s.max_blocks_per_window >= s.mean_blocks_per_window as usize);
    }

    #[test]
    fn cv_zero_for_regular_rows() {
        let t: Vec<(usize, usize, f32)> = (0..8).map(|r| (r, r, 1.0)).collect();
        let a = CsrMatrix::from_triplets(8, 8, &t).unwrap();
        assert!(MatrixStats::of(&a).row_len_cv < 1e-12);
    }
}
