use crate::{Condensed, CsrMatrix, FormatError, WINDOW_HEIGHT};

/// TC-GNN's <u>T</u>C-GNN-<u>C</u>ompressed-<u>F</u>ormat (TCF, §2.3).
///
/// Five arrays describe an SGT-condensed matrix:
///
/// - `block_partition[w]` — number of TC blocks in row window `w`;
/// - `node_pointer[r]` — start of row `r`'s entries (CSR-like row offsets);
/// - `edge_list[i]` — original column index of non-zero `i`;
/// - `edge_to_column[i]` — compressed column index of non-zero `i`;
/// - `edge_to_row[i]` — row index of non-zero `i`.
///
/// Observation 1 of the paper: this costs `⌈M/16⌉ + M + 1 + 3·NNZ` 32-bit
/// elements (values excluded) — on average 168 % more than CSR.
#[derive(Debug, Clone, PartialEq)]
pub struct TcfMatrix {
    rows: usize,
    cols: usize,
    block_partition: Vec<u32>,
    node_pointer: Vec<usize>,
    edge_list: Vec<u32>,
    edge_to_column: Vec<u32>,
    edge_to_row: Vec<u32>,
    values: Vec<f32>,
}

impl TcfMatrix {
    /// Builds TCF from a CSR matrix (TC-GNN requires square matrices).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::NotSupported`] for non-square inputs, matching
    /// TC-GNN's documented limitation (§5, *Datasets*).
    pub fn from_csr(a: &CsrMatrix) -> Result<Self, FormatError> {
        if a.rows() != a.cols() {
            return Err(FormatError::NotSupported(format!(
                "TCGNN requires square matrices, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let condensed = Condensed::from_csr(a);
        Ok(Self::from_condensed(a, &condensed))
    }

    /// Builds TCF from a CSR matrix and its precomputed condensed form.
    pub(crate) fn from_condensed(a: &CsrMatrix, condensed: &Condensed) -> Self {
        let rows = a.rows();
        let block_partition: Vec<u32> =
            condensed.window_block_counts().iter().map(|&b| b as u32).collect();
        // Per-nnz arrays in row-major (CSR) order.
        let mut edge_list = Vec::with_capacity(a.nnz());
        let mut edge_to_column = vec![0u32; a.nnz()];
        let mut edge_to_row = Vec::with_capacity(a.nnz());
        let mut values = Vec::with_capacity(a.nnz());
        for (r, c, v) in a.iter() {
            edge_list.push(c as u32);
            edge_to_row.push(r as u32);
            values.push(v);
        }
        // Fill compressed columns by looking up each entry's window.
        let mut idx = 0usize;
        for r in 0..rows {
            let w = condensed.window(r / WINDOW_HEIGHT);
            let (cols, _) = a.row_entries(r);
            for &c in cols {
                let comp = w.unique_cols.binary_search(&c).expect("column present in window");
                edge_to_column[idx] = comp as u32;
                idx += 1;
            }
        }
        TcfMatrix {
            rows,
            cols: a.cols(),
            block_partition,
            node_pointer: a.row_ptr().to_vec(),
            edge_list,
            edge_to_column,
            edge_to_row,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of non-zeros.
    pub fn nnz(&self) -> usize {
        self.edge_list.len()
    }

    /// Per-window TC-block counts (*blockpartition*).
    pub fn block_partition(&self) -> &[u32] {
        &self.block_partition
    }

    /// Row offsets (*nodePointer*).
    pub fn node_pointer(&self) -> &[usize] {
        &self.node_pointer
    }

    /// Original column per non-zero (*edgeList*).
    pub fn edge_list(&self) -> &[u32] {
        &self.edge_list
    }

    /// Compressed column per non-zero (*edgeToColumn*).
    pub fn edge_to_column(&self) -> &[u32] {
        &self.edge_to_column
    }

    /// Row index per non-zero (*edgeToRow*).
    pub fn edge_to_row(&self) -> &[u32] {
        &self.edge_to_row
    }

    /// Non-zero values, aligned with `edge_list`.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Total TC blocks.
    pub fn num_tc_blocks(&self) -> usize {
        self.block_partition.iter().map(|&b| b as usize).sum()
    }

    /// Index-array element count in 32-bit units (Observation 1):
    /// `⌈M/16⌉ + M + 1 + 3·NNZ`.
    pub fn index_elements(&self) -> u64 {
        self.rows.div_ceil(WINDOW_HEIGHT) as u64 + self.rows as u64 + 1 + 3 * self.nnz() as u64
    }

    /// Reconstructs the original CSR matrix.
    ///
    /// # Errors
    ///
    /// Never fails for a value produced by [`TcfMatrix::from_csr`].
    pub fn to_csr(&self) -> Result<CsrMatrix, FormatError> {
        let triplets: Vec<(usize, usize, f32)> = self
            .edge_to_row
            .iter()
            .zip(&self.edge_list)
            .zip(&self.values)
            .map(|((&r, &c), &v)| (r as usize, c as usize, v))
            .collect();
        CsrMatrix::from_triplets(self.rows, self.cols, &triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            20,
            20,
            &[(0, 5, 1.0), (1, 5, 2.0), (2, 11, 3.0), (17, 0, 4.0), (19, 19, 5.0)],
        )
        .unwrap()
    }

    #[test]
    fn rejects_non_square() {
        let a = CsrMatrix::from_triplets(4, 5, &[(0, 0, 1.0)]).unwrap();
        assert!(matches!(TcfMatrix::from_csr(&a), Err(FormatError::NotSupported(_))));
    }

    #[test]
    fn arrays_have_documented_lengths() {
        let a = sample();
        let t = TcfMatrix::from_csr(&a).unwrap();
        assert_eq!(t.block_partition().len(), 20usize.div_ceil(16));
        assert_eq!(t.node_pointer().len(), 21);
        assert_eq!(t.edge_list().len(), 5);
        assert_eq!(t.edge_to_column().len(), 5);
        assert_eq!(t.edge_to_row().len(), 5);
    }

    #[test]
    fn index_elements_formula() {
        let t = TcfMatrix::from_csr(&sample()).unwrap();
        assert_eq!(t.index_elements(), 2 + 20 + 1 + 3 * 5);
    }

    #[test]
    fn roundtrip() {
        let a = sample();
        let t = TcfMatrix::from_csr(&a).unwrap();
        assert_eq!(t.to_csr().unwrap(), a);
    }

    #[test]
    fn compressed_columns_match_condensed() {
        let a = sample();
        let t = TcfMatrix::from_csr(&a).unwrap();
        // Rows 0 and 1 share column 5 -> same compressed column.
        assert_eq!(t.edge_to_column()[0], t.edge_to_column()[1]);
        // Window 0 has unique cols {5, 11}: col 5 -> 0, col 11 -> 1.
        assert_eq!(t.edge_to_column()[0], 0);
        assert_eq!(t.edge_to_column()[2], 1);
    }
}
