//! TF32 numerics emulation.
//!
//! NVIDIA's TF32 format keeps the 8-bit exponent of FP32 but truncates the
//! mantissa to 10 bits. Tensor Core `mma` instructions round their *inputs*
//! to TF32 and accumulate in FP32. Every kernel in this workspace that
//! models a Tensor Core path rounds its multiplicands through
//! [`round_to_tf32`] so that the numerical behaviour of the reproduction
//! matches what an RTX4090 would produce.

/// Rounds an `f32` to TF32 precision (10-bit mantissa, round-to-nearest-even,
/// subnormal inputs flushed to same-signed zero).
///
/// # Example
///
/// ```
/// use dtc_formats::tf32::round_to_tf32;
///
/// // 1.0 is exactly representable.
/// assert_eq!(round_to_tf32(1.0), 1.0);
/// // A value needing more than 10 mantissa bits is perturbed.
/// let x = 1.0 + f32::EPSILON;
/// assert_eq!(round_to_tf32(x), 1.0);
/// // Subnormals flush to zero, keeping the sign.
/// assert_eq!(round_to_tf32(-1.0e-39).to_bits(), (-0.0f32).to_bits());
/// ```
#[inline]
pub fn round_to_tf32(x: f32) -> f32 {
    if !x.is_finite() {
        return x; // NaN and ±Inf pass through, as `mma` inputs do.
    }
    let bits = x.to_bits();
    // Tensor Cores flush subnormal inputs to same-signed zero. This must
    // precede the RNE bit-twiddle, which would otherwise round the largest
    // subnormals *up* into the min-normal (0x007FFFFF -> 0x00800000).
    if bits & 0x7F80_0000 == 0 {
        return f32::from_bits(bits & 0x8000_0000);
    }
    // FP32 has 23 mantissa bits; TF32 keeps 10, so 13 bits are dropped.
    const DROP: u32 = 13;
    let halfway = 1u32 << (DROP - 1);
    let truncated = bits & !((1u32 << DROP) - 1);
    let rem = bits & ((1u32 << DROP) - 1);
    let round_up = rem > halfway || (rem == halfway && (bits >> DROP) & 1 == 1);
    let rounded = if round_up { truncated.wrapping_add(1 << DROP) } else { truncated };
    f32::from_bits(rounded)
}

/// Rounds a slice in place to TF32 precision.
pub fn round_slice_to_tf32(xs: &mut [f32]) {
    for x in xs {
        *x = round_to_tf32(*x);
    }
}

/// A TF32 multiply-accumulate: inputs rounded to TF32, product and
/// accumulation in FP32 — the contract of `mma.sync.*.tf32`.
#[inline]
pub fn tf32_fma(a: f32, b: f32, acc: f32) -> f32 {
    round_to_tf32(a) * round_to_tf32(b) + acc
}

/// The worst-case relative error introduced by a single TF32 rounding:
/// half a unit in the last (10th) mantissa place.
pub const TF32_UNIT_ROUNDOFF: f32 = 1.0 / 2048.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_unchanged() {
        for v in [0.0f32, 1.0, -1.0, 2.0, 0.5, 1024.0, -0.25, 1.5] {
            assert_eq!(round_to_tf32(v), v);
        }
    }

    #[test]
    fn non_finite_passthrough() {
        assert!(round_to_tf32(f32::NAN).is_nan());
        assert_eq!(round_to_tf32(f32::INFINITY), f32::INFINITY);
        assert_eq!(round_to_tf32(f32::NEG_INFINITY), f32::NEG_INFINITY);
    }

    #[test]
    fn subnormals_flush_to_signed_zero() {
        // Includes the largest subnormal, which the RNE step alone would
        // round UP into the min-normal instead of flushing.
        for s in [f32::from_bits(1), 1.0e-39, f32::from_bits(0x007F_FFFF)] {
            assert_eq!(round_to_tf32(s).to_bits(), 0, "{s:e}");
            assert_eq!(round_to_tf32(-s).to_bits(), 0x8000_0000, "-{s:e}");
        }
        // The smallest normal is exactly representable and must survive.
        assert_eq!(round_to_tf32(f32::MIN_POSITIVE), f32::MIN_POSITIVE);
        assert_eq!(round_to_tf32(-f32::MIN_POSITIVE), -f32::MIN_POSITIVE);
    }

    #[test]
    fn signed_zero_is_preserved() {
        assert_eq!(round_to_tf32(0.0).to_bits(), 0.0f32.to_bits());
        assert_eq!(round_to_tf32(-0.0).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn mantissa_has_at_most_10_bits() {
        // After rounding, the low 13 mantissa bits must be zero.
        for i in 0..1000 {
            let x = (i as f32).sin() * 1000.0;
            let r = round_to_tf32(x);
            assert_eq!(r.to_bits() & 0x1FFF, 0, "x={x} r={r}");
        }
    }

    #[test]
    fn rounding_error_is_bounded() {
        for i in 1..1000 {
            let x = (i as f32).sqrt() * 3.7;
            let r = round_to_tf32(x);
            let rel = ((x - r) / x).abs();
            assert!(rel <= TF32_UNIT_ROUNDOFF, "x={x} r={r} rel={rel}");
        }
    }

    #[test]
    fn rounding_is_monotone_nondecreasing() {
        let mut prev = round_to_tf32(0.0);
        for i in 1..10_000 {
            let x = i as f32 * 0.001;
            let r = round_to_tf32(x);
            assert!(r >= prev, "monotonicity violated at {x}");
            prev = r;
        }
    }

    #[test]
    fn fma_matches_manual() {
        let a = 1.234_567_9_f32;
        let b = 9.876_543_f32;
        let expect = round_to_tf32(a) * round_to_tf32(b) + 10.0;
        assert_eq!(tf32_fma(a, b, 10.0), expect);
    }

    #[test]
    fn slice_rounding() {
        let mut v = vec![1.0 + f32::EPSILON; 4];
        round_slice_to_tf32(&mut v);
        assert!(v.iter().all(|&x| x == 1.0));
    }
}
