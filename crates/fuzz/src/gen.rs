//! Seed-driven adversarial case generators.
//!
//! Each family targets an edge-case class the tiled TF32 pipeline is prone
//! to get wrong: degenerate shapes, tile-boundary straddles, duplicate
//! triplet canonicalization, power-law skew, IEEE special values. Every
//! case is a pure function of `(master_seed, index)`.

use dtc_formats::{CsrMatrix, DenseMatrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One generated differential-testing case.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Generator family that produced the case.
    pub family: &'static str,
    /// The per-case seed (derived from the master seed and index).
    pub seed: u64,
    /// The sparse operand.
    pub a: CsrMatrix,
    /// The dense operand (`a.cols()` x `n`).
    pub b: DenseMatrix,
}

/// Dense operand widths, biased towards values that are *not* multiples of
/// the 16x8 tile or the 32 B sector (4 and 20 give fractional sectors).
const N_CHOICES: [usize; 12] = [1, 3, 4, 7, 8, 12, 16, 17, 20, 31, 33, 64];

/// Dimensions that straddle the WINDOW_HEIGHT=16 / BLOCK_WIDTH=8 tiling.
/// 129 and 161 give ≥ 8 row windows, enough for the parallel ME-TCF
/// conversion to take the real merge path instead of its serial fallback.
const DIM_CHOICES: [usize; 16] = [1, 2, 3, 5, 7, 9, 15, 16, 17, 23, 31, 33, 47, 100, 129, 161];

/// The IEEE-754 special-value lattice: NaN, ±Inf, ±0, subnormals
/// (min-positive and max-subnormal), min-normal, and plain magnitudes.
const SPECIALS: [f32; 14] = [
    f32::NAN,
    f32::INFINITY,
    f32::NEG_INFINITY,
    -0.0,
    0.0,
    1.0e-39,           // mid subnormal
    -1.0e-39,          // negative subnormal
    1.1754942e-38,     // largest subnormal
    f32::MIN_POSITIVE, // smallest normal
    f32::EPSILON,
    1.0,
    -1.0,
    2.5,
    1.0e30,
];

/// Names of every generator family, in round-robin order.
pub fn family_names() -> &'static [&'static str] {
    &[
        "zero-nnz",
        "empty-rows",
        "single-col",
        "ragged-dims",
        "dup-unsorted",
        "power-law",
        "dense-blocks",
        "special-values",
        "near-dup-cache",
        "edit-script",
    ]
}

/// SplitMix64 step: derives the per-case seed from `(master, index)`.
fn case_seed(master: u64, index: usize) -> u64 {
    let mut z = master ^ (index as u64).wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Generates case `index` of the sweep seeded by `master_seed`.
///
/// Families are assigned round-robin so every prefix of a sweep covers
/// every family. The same `(master_seed, index)` always yields the same
/// case, independent of thread count or platform.
pub fn generate_case(master_seed: u64, index: usize) -> FuzzCase {
    let families = family_names();
    let family = families[index % families.len()];
    let seed = case_seed(master_seed, index);
    let mut rng = StdRng::seed_from_u64(seed);
    let a = match family {
        "zero-nnz" => gen_zero_nnz(&mut rng),
        "empty-rows" => gen_empty_rows(&mut rng),
        "single-col" => gen_single_col(&mut rng),
        "ragged-dims" => gen_ragged_dims(&mut rng),
        "dup-unsorted" => gen_dup_unsorted(&mut rng),
        "power-law" => gen_power_law(&mut rng, seed),
        "dense-blocks" => gen_dense_blocks(&mut rng),
        "special-values" => gen_special_values(&mut rng),
        "near-dup-cache" => gen_near_dup_cache(&mut rng, master_seed),
        "edit-script" => gen_edit_script(&mut rng),
        other => unreachable!("unknown family {other}"),
    };
    let n = N_CHOICES[rng.random_range(0..N_CHOICES.len())];
    let b = gen_dense(&mut rng, a.cols(), n, family == "special-values");
    FuzzCase { family, seed, a, b }
}

/// A plain finite value in `[-2, 2)`.
fn val(rng: &mut StdRng) -> f32 {
    rng.random_range(-2.0f32..2.0)
}

/// The dense operand; the special-value family mixes the lattice in.
fn gen_dense(rng: &mut StdRng, k: usize, n: usize, specials: bool) -> DenseMatrix {
    DenseMatrix::from_fn(k, n, |_, _| {
        if specials && rng.random_range(0..4) == 0 {
            SPECIALS[rng.random_range(0..SPECIALS.len())]
        } else {
            val(rng)
        }
    })
}

/// A matrix with no stored entries at all.
fn gen_zero_nnz(rng: &mut StdRng) -> CsrMatrix {
    let rows = DIM_CHOICES[rng.random_range(0..DIM_CHOICES.len())];
    let cols = DIM_CHOICES[rng.random_range(0..DIM_CHOICES.len())];
    CsrMatrix::from_triplets(rows, cols, &[]).expect("empty triplets")
}

/// Several fully-empty 16-row windows; only a few rows inside one window
/// carry entries.
fn gen_empty_rows(rng: &mut StdRng) -> CsrMatrix {
    let rows = rng.random_range(33usize..170);
    let cols = DIM_CHOICES[rng.random_range(0..DIM_CHOICES.len())];
    let window = rng.random_range(0..rows.div_ceil(16));
    let populated = rng.random_range(1..4);
    let mut triplets = Vec::new();
    for _ in 0..populated {
        let r = (window * 16 + rng.random_range(0usize..16)).min(rows - 1);
        let deg = rng.random_range(1..=cols.min(6));
        for _ in 0..deg {
            triplets.push((r, rng.random_range(0..cols), val(rng)));
        }
    }
    CsrMatrix::from_triplets(rows, cols, &triplets).expect("in-bounds triplets")
}

/// K = 1: a single B row feeds every product.
fn gen_single_col(rng: &mut StdRng) -> CsrMatrix {
    let rows = DIM_CHOICES[rng.random_range(0..DIM_CHOICES.len())];
    let mut triplets = Vec::new();
    for r in 0..rows {
        if rng.random_range(0..3) > 0 {
            triplets.push((r, 0, val(rng)));
        }
    }
    CsrMatrix::from_triplets(rows, 1, &triplets).expect("in-bounds triplets")
}

/// M and K drawn from the tile-straddling dimension set, moderate fill.
fn gen_ragged_dims(rng: &mut StdRng) -> CsrMatrix {
    let rows = DIM_CHOICES[rng.random_range(0..DIM_CHOICES.len())];
    let cols = DIM_CHOICES[rng.random_range(0..DIM_CHOICES.len())];
    let nnz = rng.random_range(0..=(rows * cols).div_ceil(3));
    let mut triplets = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        triplets.push((rng.random_range(0..rows), rng.random_range(0..cols), val(rng)));
    }
    CsrMatrix::from_triplets(rows, cols, &triplets).expect("in-bounds triplets")
}

/// Duplicate and unsorted triplets, including `v`/`-v` pairs that sum to
/// an explicit stored zero after canonicalization.
fn gen_dup_unsorted(rng: &mut StdRng) -> CsrMatrix {
    let rows = rng.random_range(1usize..40);
    let cols = rng.random_range(1usize..40);
    let base = rng.random_range(1..60);
    let mut triplets = Vec::new();
    for _ in 0..base {
        let t = (rng.random_range(0..rows), rng.random_range(0..cols), val(rng));
        triplets.push(t);
        match rng.random_range(0..4) {
            0 => triplets.push(t),                    // exact duplicate
            1 => triplets.push((t.0, t.1, -t.2)),     // cancels to explicit zero
            2 => triplets.push((t.0, t.1, val(rng))), // summed duplicate
            _ => {}
        }
    }
    // Deterministic "unsorting": reverse, then interleave halves.
    triplets.reverse();
    let mid = triplets.len() / 2;
    let (lo, hi) = triplets.split_at(mid);
    let shuffled: Vec<_> = hi.iter().chain(lo.iter()).copied().collect();
    CsrMatrix::from_triplets(rows, cols, &shuffled).expect("in-bounds triplets")
}

/// Power-law degree extremes: near-flat and ultra-skewed exponents over
/// odd dimensions, with one dense mega-row appended.
fn gen_power_law(rng: &mut StdRng, seed: u64) -> CsrMatrix {
    let rows = 17 + 2 * rng.random_range(0usize..80);
    let cols = 17 + 2 * rng.random_range(0usize..80);
    let alpha = if rng.random_range(0..2) == 0 { 1.05 } else { 3.5 };
    let base = dtc_formats::gen::power_law(rows, cols, 4.0, alpha, seed ^ 0xA5);
    let mut triplets: Vec<(usize, usize, f32)> = base.iter().collect();
    let mega = rng.random_range(0..rows);
    for c in 0..cols {
        triplets.push((mega, c, val(rng)));
    }
    CsrMatrix::from_triplets(rows, cols, &triplets).expect("in-bounds triplets")
}

/// Dense 8x16 rectangles straddling the 16-row window boundary and the
/// 8-column block boundary.
fn gen_dense_blocks(rng: &mut StdRng) -> CsrMatrix {
    let rows = rng.random_range(24usize..48);
    let cols = rng.random_range(18usize..40);
    let mut triplets = Vec::new();
    // Block one: rows 12..20 straddle the window boundary at 16.
    let c0 = rng.random_range(1..cols - 16);
    for r in 12..20 {
        for c in c0..c0 + 16 {
            triplets.push((r, c, val(rng)));
        }
    }
    // Block two (optional): straddles the 8-column boundary.
    if rng.random_range(0..2) == 0 {
        let r0 = rng.random_range(0..rows - 8);
        for r in r0..r0 + 8 {
            for c in 4..12 {
                triplets.push((r, c, val(rng)));
            }
        }
    }
    CsrMatrix::from_triplets(rows, cols, &triplets).expect("in-bounds triplets")
}

/// Small shapes with lattice values in A (and in B, chosen by the caller).
fn gen_special_values(rng: &mut StdRng) -> CsrMatrix {
    let rows = rng.random_range(1usize..24);
    let cols = rng.random_range(1usize..24);
    let nnz = rng.random_range(1..=(rows * cols).min(48));
    let mut triplets = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        let v = if rng.random_range(0..2) == 0 {
            SPECIALS[rng.random_range(0..SPECIALS.len())]
        } else {
            val(rng)
        };
        triplets.push((rng.random_range(0..rows), rng.random_range(0..cols), v));
    }
    CsrMatrix::from_triplets(rows, cols, &triplets).expect("in-bounds triplets")
}

/// Near-duplicates of one sweep-wide base matrix: same shape and sparsity
/// structure, with at most one stored value changed by a single bit or a
/// sign flip. Every case of the family shares its conversion-cache front
/// slot with the others, so a front tier that verified anything less than
/// the full key material would cross-serve stale conversions. The base is
/// derived from the *master* seed (not the case seed) so consecutive cases
/// of the family really do collide.
fn gen_near_dup_cache(rng: &mut StdRng, master_seed: u64) -> CsrMatrix {
    let base = dtc_formats::gen::uniform(80, 80, 640, master_seed ^ 0x5EED_CACE);
    let mut triplets: Vec<(usize, usize, f32)> = base.iter().collect();
    match rng.random_range(0..3) {
        // Exact duplicate of the base: must hit the cache, not reconvert.
        0 => {}
        // One value nudged by its lowest mantissa bit: identical structure,
        // distinct identity.
        1 => {
            let i = rng.random_range(0..triplets.len());
            let (r, c, v) = triplets[i];
            triplets[i] = (r, c, f32::from_bits(v.to_bits() ^ 1));
        }
        // One sign flip.
        _ => {
            let i = rng.random_range(0..triplets.len());
            let (r, c, v) = triplets[i];
            triplets[i] = (r, c, -v);
        }
    }
    CsrMatrix::from_triplets(80, 80, &triplets).expect("in-bounds triplets")
}

/// Matrices shaped to stress the delta-update splice: entries piled onto
/// the rows flanking every 16-row window boundary (15/16, 31/32, …), a
/// deliberately empty window in the middle, and a ragged final window.
/// The runner's delta axis then derives an edit script from the case seed,
/// so patches hit exactly the windows whose re-based offsets are easiest
/// to get wrong.
fn gen_edit_script(rng: &mut StdRng) -> CsrMatrix {
    // 3..9 windows, last one ragged more often than not.
    let rows = rng.random_range(40usize..140);
    let cols = DIM_CHOICES[rng.random_range(0..DIM_CHOICES.len())].max(4);
    let empty_window = rng.random_range(0..rows.div_ceil(16));
    let mut triplets = Vec::new();
    for w in 0..rows.div_ceil(16) {
        if w == empty_window {
            continue;
        }
        // Boundary rows of this window (first and last), plus a couple of
        // interior rows.
        let base = w * 16;
        let last = (base + 15).min(rows - 1);
        for r in [base, last, base + rng.random_range(0usize..16).min(rows - 1 - base)] {
            let deg = rng.random_range(1..=cols.min(10));
            for _ in 0..deg {
                triplets.push((r, rng.random_range(0..cols), val(rng)));
            }
        }
    }
    CsrMatrix::from_triplets(rows, cols, &triplets).expect("in-bounds triplets")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit views for comparison: generated matrices carry NaN, under which
    /// `PartialEq` would report spurious divergence.
    fn csr_bits(a: &CsrMatrix) -> (Vec<usize>, Vec<u32>, Vec<u32>) {
        (
            a.row_ptr().to_vec(),
            a.col_idx().to_vec(),
            a.values().iter().map(|v| v.to_bits()).collect(),
        )
    }

    #[test]
    fn generation_is_deterministic() {
        for index in 0..16 {
            let a = generate_case(42, index);
            let b = generate_case(42, index);
            assert_eq!(a.family, b.family);
            assert_eq!(csr_bits(&a.a), csr_bits(&b.a));
            let a_bits: Vec<u32> = a.b.as_slice().iter().map(|v| v.to_bits()).collect();
            let b_bits: Vec<u32> = b.b.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(a_bits, b_bits);
        }
    }

    #[test]
    fn families_round_robin() {
        let families = family_names();
        for (index, &family) in families.iter().enumerate() {
            assert_eq!(generate_case(1, index).family, family);
        }
    }

    #[test]
    fn b_matches_a_shape() {
        for index in 0..32 {
            let case = generate_case(3, index);
            assert_eq!(case.b.rows(), case.a.cols(), "family {}", case.family);
            assert!(case.b.cols() > 0);
        }
    }

    #[test]
    fn zero_nnz_family_is_empty() {
        let case = generate_case(5, 0);
        assert_eq!(case.family, "zero-nnz");
        assert_eq!(case.a.nnz(), 0);
    }
}
