//! `dtc-fuzz`: a deterministic, seed-driven differential testing harness
//! for the whole SpMM kernel lineup.
//!
//! The static `tracelint` gate (PR 4) checks invariants of traces that
//! *were constructed*; it says nothing about whether the twelve kernel
//! models compute the right numbers on adversarial inputs. This crate is
//! the dynamic counterpart:
//!
//! - [`gen`] produces adversarial `CsrMatrix`/`DenseMatrix` cases —
//!   zero-nnz, all-empty row windows, single column, M/N/K not multiples
//!   of the 16/8/4 tile, duplicate and unsorted triplets, power-law
//!   extremes, dense 8x16 blocks straddling window boundaries, and value
//!   sets with NaN, ±Inf, −0.0 and subnormals;
//! - [`oracle`] adjudicates each case with an exact `f64` reference SpMM
//!   plus a TF32 round-to-nearest-even error envelope derived from the
//!   mantissa emulation in `dtc-formats`;
//! - [`runner`] executes every case differentially across all 12
//!   [`SpmmKernel`](dtc_baselines::SpmmKernel) models, both ME-TCF
//!   conversion paths (serial SGT condensing and the parallel merge), and
//!   the TCA-reordered pipeline, replaying the `dtc-verify` lints over
//!   each lowered trace;
//! - [`shrink`] greedily minimizes failing cases into reproducers small
//!   enough to pin as regression fixtures;
//! - [`report`] aggregates a sweep into the `FUZZ.json` artifact the
//!   `fuzz` bench bin writes and CI gates on.
//!
//! Everything is a pure function of the master seed: the same seed
//! produces a byte-identical report at any `DTC_THREADS`.
//!
//! # Example
//!
//! ```
//! use dtc_fuzz::{run_sweep, SweepConfig};
//! use dtc_sim::Device;
//!
//! let report = run_sweep(&SweepConfig {
//!     master_seed: 0xD7C5,
//!     num_cases: 16,
//!     device: Device::rtx4090(),
//!     shrink: true,
//! });
//! assert_eq!(report.cases_run, 16);
//! assert!(!report.has_failures(), "{}", report.to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod oracle;
pub mod report;
pub mod runner;
pub mod shrink;

pub use gen::{family_names, generate_case, FuzzCase};
pub use oracle::{check_against, Mismatch, Reference};
pub use report::{FailureRecord, FuzzReport};
pub use runner::{run_case, CaseOutcome, Failure, FailureKind};
pub use shrink::{fixture_code, shrink_case};

use dtc_sim::Device;
use std::sync::OnceLock;

/// Bumps the process-wide fuzz telemetry counters.
fn fuzz_telemetry(run: u64, failed: u64, shrunk: u64) {
    static RUN: OnceLock<&'static dtc_telemetry::Counter> = OnceLock::new();
    static FAILED: OnceLock<&'static dtc_telemetry::Counter> = OnceLock::new();
    static SHRUNK: OnceLock<&'static dtc_telemetry::Counter> = OnceLock::new();
    RUN.get_or_init(|| dtc_telemetry::counter("fuzz.cases.run")).add(run);
    FAILED.get_or_init(|| dtc_telemetry::counter("fuzz.cases.failed")).add(failed);
    SHRUNK.get_or_init(|| dtc_telemetry::counter("fuzz.cases.shrunk")).add(shrunk);
}

/// Configuration of one differential sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Master seed; every case seed derives from it deterministically.
    pub master_seed: u64,
    /// Number of generated cases (round-robin over the generator families).
    pub num_cases: usize,
    /// Device the traces are lowered for and linted against.
    pub device: Device,
    /// Whether to shrink failing cases to minimal reproducers.
    pub shrink: bool,
}

/// Runs a full differential sweep: generate, run, shrink, aggregate.
///
/// Cases execute sequentially in index order, so the report is a pure
/// function of the config — byte-identical at any thread count.
pub fn run_sweep(config: &SweepConfig) -> FuzzReport {
    let mut report = FuzzReport::new(config.master_seed, &config.device.name);
    for index in 0..config.num_cases {
        let case = generate_case(config.master_seed, index);
        let outcome = run_case(&case, &config.device);
        report.record_case(&case, &outcome);
        let failed = !outcome.failures.is_empty();
        let mut shrunk = 0;
        if failed && config.shrink {
            for failure in &outcome.failures {
                let minimized = shrink_case(&case, failure, &config.device);
                report.record_failure(&case, index, failure, &minimized);
                shrunk += 1;
            }
        } else if failed {
            for failure in &outcome.failures {
                report.record_failure(&case, index, failure, &case.clone());
            }
        }
        fuzz_telemetry(1, failed as u64, shrunk);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic() {
        let config =
            SweepConfig { master_seed: 7, num_cases: 12, device: Device::rtx4090(), shrink: true };
        let a = run_sweep(&config).to_json();
        let b = run_sweep(&config).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn telemetry_counters_accumulate() {
        let before = dtc_telemetry::snapshot();
        let config =
            SweepConfig { master_seed: 11, num_cases: 2, device: Device::rtx4090(), shrink: false };
        run_sweep(&config);
        let after = dtc_telemetry::snapshot();
        let runs = |s: &dtc_telemetry::MetricsSnapshot| s.counter("fuzz.cases.run").unwrap_or(0);
        assert_eq!(runs(&after), runs(&before) + 2);
    }
}
