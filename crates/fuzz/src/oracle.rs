//! The exact-reference and error-envelope oracles.
//!
//! Every kernel in the lineup computes `C = A x B` with TF32-rounded
//! multiplicands (2^-11 unit roundoff, emulated bit-exactly in
//! `dtc_formats::tf32`) accumulated in f32, except the pure-CUDA-core
//! baselines which skip the multiplicand rounding. The reference is
//! computed once per case in f64 with *unrounded* multiplicands; the
//! envelope then covers both legal divergences:
//!
//! - multiplicand rounding: `2 * u_tf32 * sum |a_ik * b_kj|` (one rounding
//!   per operand, first order);
//! - accumulation order and f32 arithmetic: `gamma_k = (k + 4) * eps_f32`
//!   relative to the same absolute sum;
//! - subnormal flush-to-zero at the TF32 input: an absolute term bounded
//!   by `min_normal * (|a| + |b| + 1)` per product.
//!
//! Special values are adjudicated structurally: a NaN product forces NaN
//! in every accumulation order; an infinite product (without NaN) forces a
//! non-finite result; near-f32-overflow magnitudes are skipped because
//! partial-sum overflow is legitimately order-dependent.

use dtc_formats::tf32::TF32_UNIT_ROUNDOFF;
use dtc_formats::{CsrMatrix, DenseMatrix};

/// Absolute sums above this are in the f32-overflow gray zone: partial
/// sums may legitimately overflow in one accumulation order and not
/// another, so magnitude checks are skipped.
const OVERFLOW_GRAY_ZONE: f64 = 1.0e37;

/// Per-element classification of the exact result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    /// All products finite, absolute sum comfortably inside f32 range.
    Finite,
    /// At least one NaN product (NaN input or `0 * inf`): result must be NaN.
    Nan,
    /// At least one infinite product, no NaN product: result must be non-finite.
    Infinite,
    /// Finite products but the absolute sum is near f32 overflow: skip.
    GrayZone,
}

/// The exact f64 reference result and its per-element error envelope.
#[derive(Debug, Clone)]
pub struct Reference {
    rows: usize,
    n: usize,
    /// Row-major exact values.
    c: Vec<f64>,
    /// Row-major envelope half-widths.
    env: Vec<f64>,
    /// Row-major element classes.
    class: Vec<Class>,
}

/// One adjudicated disagreement between a kernel and the reference.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Element row.
    pub row: usize,
    /// Element column.
    pub col: usize,
    /// The kernel's value.
    pub got: f32,
    /// The exact reference value.
    pub want: f64,
    /// The envelope half-width the difference exceeded.
    pub envelope: f64,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "C[{},{}] = {:e} but reference is {:e} (envelope {:e})",
            self.row, self.col, self.got, self.want, self.envelope
        )
    }
}

impl Reference {
    /// Computes the exact reference and envelope for `a x b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != a.cols()`.
    pub fn compute(a: &CsrMatrix, b: &DenseMatrix) -> Self {
        assert_eq!(b.rows(), a.cols(), "operand shapes must agree");
        let rows = a.rows();
        let n = b.cols();
        let mut c = vec![0.0f64; rows * n];
        let mut env = vec![0.0f64; rows * n];
        let mut class = vec![Class::Finite; rows * n];
        let min_normal = f32::MIN_POSITIVE as f64;
        for r in 0..rows {
            let (cols, vals) = a.row_entries(r);
            let k_terms = cols.len() as f64;
            let rel = 2.0 * TF32_UNIT_ROUNDOFF as f64 + (k_terms + 4.0) * f32::EPSILON as f64;
            for j in 0..n {
                let mut sum = 0.0f64;
                let mut abs_sum = 0.0f64;
                let mut flush = 0.0f64;
                let mut has_nan = false;
                let mut has_inf = false;
                for (idx, &col) in cols.iter().enumerate() {
                    let av = vals[idx] as f64;
                    let bv = b.get(col as usize, j) as f64;
                    let prod = av * bv;
                    if prod.is_nan() {
                        has_nan = true;
                    } else if prod.is_infinite() {
                        has_inf = true;
                    } else {
                        sum += prod;
                        abs_sum += prod.abs();
                        flush += min_normal * (av.abs() + bv.abs() + 1.0);
                    }
                }
                let e = r * n + j;
                c[e] = sum;
                env[e] = abs_sum * rel + flush;
                class[e] = if has_nan {
                    Class::Nan
                } else if has_inf {
                    Class::Infinite
                } else if abs_sum > OVERFLOW_GRAY_ZONE {
                    Class::GrayZone
                } else {
                    Class::Finite
                };
            }
        }
        Reference { rows, n, c, env, class }
    }

    /// Output rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Output columns.
    pub fn cols(&self) -> usize {
        self.n
    }

    /// The exact value at `(row, col)`.
    pub fn value(&self, row: usize, col: usize) -> f64 {
        self.c[row * self.n + col]
    }

    /// The envelope half-width at `(row, col)`.
    pub fn envelope(&self, row: usize, col: usize) -> f64 {
        self.env[row * self.n + col]
    }
}

/// Checks a kernel result against the reference; returns the first
/// mismatch in row-major order, or `None` when every element is inside
/// its envelope (and special values have the mandated structure).
pub fn check_against(reference: &Reference, got: &DenseMatrix) -> Option<Mismatch> {
    if got.rows() != reference.rows || got.cols() != reference.n {
        return Some(Mismatch {
            row: got.rows(),
            col: got.cols(),
            got: f32::NAN,
            want: reference.rows as f64,
            envelope: reference.n as f64,
        });
    }
    for r in 0..reference.rows {
        for j in 0..reference.n {
            let e = r * reference.n + j;
            let g = got.get(r, j);
            let ok = match reference.class[e] {
                Class::Nan => g.is_nan(),
                Class::Infinite => !g.is_finite(),
                Class::GrayZone => true,
                Class::Finite => {
                    g.is_finite() && (g as f64 - reference.c[e]).abs() <= reference.env[e]
                }
            };
            if !ok {
                return Some(Mismatch {
                    row: r,
                    col: j,
                    got: g,
                    want: reference.c[e],
                    envelope: reference.env[e],
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (CsrMatrix, DenseMatrix) {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, -2.0), (1, 1, 0.5)])
            .expect("valid");
        let b = DenseMatrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        (a, b)
    }

    #[test]
    fn reference_matches_hand_computation() {
        let (a, b) = small();
        let r = Reference::compute(&a, &b);
        // Row 0: 1*b[0][..] + (-2)*b[2][..] = [0,1] - 2*[4,5] = [-8,-9].
        assert_eq!(r.value(0, 0), -8.0);
        assert_eq!(r.value(0, 1), -9.0);
        // Row 1: 0.5*b[1][..] = [1,1.5].
        assert_eq!(r.value(1, 0), 1.0);
        assert_eq!(r.value(1, 1), 1.5);
    }

    #[test]
    fn exact_result_is_inside_envelope() {
        let (a, b) = small();
        let r = Reference::compute(&a, &b);
        let c = a.spmm_reference(&b).expect("shapes agree");
        assert!(check_against(&r, &c).is_none());
    }

    #[test]
    fn corrupted_result_is_flagged() {
        let (a, b) = small();
        let r = Reference::compute(&a, &b);
        let mut c = a.spmm_reference(&b).expect("shapes agree");
        c.set(1, 1, 2.5);
        let m = check_against(&r, &c).expect("must flag");
        assert_eq!((m.row, m.col), (1, 1));
    }

    #[test]
    fn nan_products_require_nan() {
        let a = CsrMatrix::from_triplets(1, 1, &[(0, 0, f32::INFINITY)]).expect("valid");
        let b = DenseMatrix::zeros(1, 1); // inf * 0 = NaN
        let r = Reference::compute(&a, &b);
        let mut c = DenseMatrix::zeros(1, 1);
        assert!(check_against(&r, &c).is_some(), "0.0 is not NaN");
        c.set(0, 0, f32::NAN);
        assert!(check_against(&r, &c).is_none());
    }

    #[test]
    fn infinite_products_require_non_finite() {
        let a = CsrMatrix::from_triplets(1, 1, &[(0, 0, f32::INFINITY)]).expect("valid");
        let b = DenseMatrix::ones(1, 1);
        let r = Reference::compute(&a, &b);
        let mut c = DenseMatrix::zeros(1, 1);
        assert!(check_against(&r, &c).is_some());
        c.set(0, 0, f32::INFINITY);
        assert!(check_against(&r, &c).is_none());
    }

    #[test]
    fn subnormal_flush_is_inside_envelope() {
        // A subnormal times a large-ish value: FTZ at the TF32 input makes
        // the product exactly zero; the envelope's absolute term must
        // absorb that.
        let a = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0e-39)]).expect("valid");
        let b = DenseMatrix::ones(1, 1);
        let r = Reference::compute(&a, &b);
        let c = DenseMatrix::zeros(1, 1); // flushed result
        assert!(check_against(&r, &c).is_none());
    }
}
