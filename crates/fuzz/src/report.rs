//! Sweep aggregation and the `FUZZ.json` artifact.
//!
//! Hand-rolled JSON (the workspace is offline — no serde), deterministic
//! field order, so the same sweep config always serializes to the same
//! bytes.

use crate::gen::{family_names, FuzzCase};
use crate::runner::{CaseOutcome, Failure};
use crate::shrink::fixture_code;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One recorded failure with its minimized reproducer.
#[derive(Debug, Clone)]
pub struct FailureRecord {
    /// Sweep index of the originating case.
    pub index: usize,
    /// Generator family.
    pub family: &'static str,
    /// Per-case seed.
    pub seed: u64,
    /// Failing kernel or pseudo-step.
    pub kernel: String,
    /// Failure class (stable kebab-case id).
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
    /// Minimized reproducer (fixture string).
    pub fixture: String,
}

/// A full sweep report.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The master seed of the sweep.
    pub master_seed: u64,
    /// Device name the traces were lowered for.
    pub device: String,
    /// Total cases run.
    pub cases_run: usize,
    /// Total kernel executions across all cases.
    pub kernels_run: usize,
    /// Per-family case tallies: `(run, failed)`.
    pub families: BTreeMap<&'static str, (usize, usize)>,
    /// Every failure, in sweep order, with minimized fixtures.
    pub failures: Vec<FailureRecord>,
}

impl FuzzReport {
    /// An empty report for one sweep.
    pub fn new(master_seed: u64, device: impl Into<String>) -> Self {
        let mut families = BTreeMap::new();
        for &f in family_names() {
            families.insert(f, (0, 0));
        }
        FuzzReport {
            master_seed,
            device: device.into(),
            cases_run: 0,
            kernels_run: 0,
            families,
            failures: Vec::new(),
        }
    }

    /// Tallies one executed case.
    pub fn record_case(&mut self, case: &FuzzCase, outcome: &CaseOutcome) {
        self.cases_run += 1;
        self.kernels_run += outcome.kernels_run;
        let entry = self.families.entry(case.family).or_insert((0, 0));
        entry.0 += 1;
        if !outcome.failures.is_empty() {
            entry.1 += 1;
        }
    }

    /// Records one failure with its minimized reproducer.
    pub fn record_failure(
        &mut self,
        case: &FuzzCase,
        index: usize,
        failure: &Failure,
        minimized: &FuzzCase,
    ) {
        self.failures.push(FailureRecord {
            index,
            family: case.family,
            seed: case.seed,
            kernel: failure.kernel.clone(),
            kind: failure.kind.as_str(),
            detail: failure.detail.clone(),
            fixture: fixture_code(minimized),
        });
    }

    /// Whether any failure was recorded (the CI gate).
    pub fn has_failures(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"master_seed\": {},", self.master_seed);
        let _ = writeln!(out, "  \"device\": \"{}\",", escape(&self.device));
        let _ = writeln!(out, "  \"cases_run\": {},", self.cases_run);
        let _ = writeln!(out, "  \"kernels_run\": {},", self.kernels_run);
        let _ = writeln!(out, "  \"num_failures\": {},", self.failures.len());
        out.push_str("  \"families\": {\n");
        let last = self.families.len();
        for (i, (family, (run, failed))) in self.families.iter().enumerate() {
            let _ = write!(out, "    \"{family}\": {{\"run\": {run}, \"failed\": {failed}}}");
            out.push_str(if i + 1 < last { ",\n" } else { "\n" });
        }
        out.push_str("  },\n");
        out.push_str("  \"failures\": [\n");
        for (i, f) in self.failures.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"index\": {},", f.index);
            let _ = writeln!(out, "      \"family\": \"{}\",", escape(f.family));
            let _ = writeln!(out, "      \"seed\": {},", f.seed);
            let _ = writeln!(out, "      \"kernel\": \"{}\",", escape(&f.kernel));
            let _ = writeln!(out, "      \"kind\": \"{}\",", f.kind);
            let _ = writeln!(out, "      \"detail\": \"{}\",", escape(&f.detail));
            let _ = writeln!(out, "      \"fixture\": \"{}\"", escape(&f.fixture));
            out.push_str(if i + 1 < self.failures.len() { "    },\n" } else { "    }\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::FailureKind;
    use dtc_formats::{CsrMatrix, DenseMatrix};

    fn tiny_case() -> FuzzCase {
        let a = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0)]).expect("valid");
        FuzzCase { family: "zero-nnz", seed: 9, a, b: DenseMatrix::ones(1, 1) }
    }

    #[test]
    fn json_shape_and_gate() {
        let mut report = FuzzReport::new(3, "RTX4090");
        let case = tiny_case();
        report.record_case(&case, &CaseOutcome { failures: vec![], kernels_run: 12 });
        assert!(!report.has_failures());
        let failure = Failure {
            kernel: "DTC-SpMM".into(),
            kind: FailureKind::ValueMismatch,
            detail: "C[0,0] off".into(),
        };
        report.record_failure(&case, 0, &failure, &case);
        assert!(report.has_failures());
        let json = report.to_json();
        assert!(json.contains("\"kind\": \"value-mismatch\""), "{json}");
        assert!(json.contains("\"zero-nnz\": {\"run\": 1, \"failed\": 0}"), "{json}");
        assert!(json.contains("M1 K1 N1"), "{json}");
    }
}
