//! Sweep aggregation and the `FUZZ.json` artifact.
//!
//! Hand-rolled JSON (the workspace is offline — no serde), deterministic
//! field order, so the same sweep config always serializes to the same
//! bytes.

use crate::gen::{family_names, FuzzCase};
use crate::runner::{CaseOutcome, Failure};
use crate::shrink::fixture_code;
use dtc_telemetry::json::Json;
use std::collections::BTreeMap;

/// One recorded failure with its minimized reproducer.
#[derive(Debug, Clone)]
pub struct FailureRecord {
    /// Sweep index of the originating case.
    pub index: usize,
    /// Generator family.
    pub family: &'static str,
    /// Per-case seed.
    pub seed: u64,
    /// Failing kernel or pseudo-step.
    pub kernel: String,
    /// Failure class (stable kebab-case id).
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
    /// Minimized reproducer (fixture string).
    pub fixture: String,
}

/// A full sweep report.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The master seed of the sweep.
    pub master_seed: u64,
    /// Device name the traces were lowered for.
    pub device: String,
    /// Total cases run.
    pub cases_run: usize,
    /// Total kernel executions across all cases.
    pub kernels_run: usize,
    /// Per-family case tallies: `(run, failed)`.
    pub families: BTreeMap<&'static str, (usize, usize)>,
    /// Every failure, in sweep order, with minimized fixtures.
    pub failures: Vec<FailureRecord>,
}

impl FuzzReport {
    /// An empty report for one sweep.
    pub fn new(master_seed: u64, device: impl Into<String>) -> Self {
        let mut families = BTreeMap::new();
        for &f in family_names() {
            families.insert(f, (0, 0));
        }
        FuzzReport {
            master_seed,
            device: device.into(),
            cases_run: 0,
            kernels_run: 0,
            families,
            failures: Vec::new(),
        }
    }

    /// Tallies one executed case.
    pub fn record_case(&mut self, case: &FuzzCase, outcome: &CaseOutcome) {
        self.cases_run += 1;
        self.kernels_run += outcome.kernels_run;
        let entry = self.families.entry(case.family).or_insert((0, 0));
        entry.0 += 1;
        if !outcome.failures.is_empty() {
            entry.1 += 1;
        }
    }

    /// Records one failure with its minimized reproducer.
    pub fn record_failure(
        &mut self,
        case: &FuzzCase,
        index: usize,
        failure: &Failure,
        minimized: &FuzzCase,
    ) {
        self.failures.push(FailureRecord {
            index,
            family: case.family,
            seed: case.seed,
            kernel: failure.kernel.clone(),
            kind: failure.kind.as_str(),
            detail: failure.detail.clone(),
            fixture: fixture_code(minimized),
        });
    }

    /// Whether any failure was recorded (the CI gate).
    pub fn has_failures(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Serializes the report as pretty-printed JSON (byte-stable: same
    /// sweep, same bytes), via the shared [`dtc_telemetry::json`] module.
    pub fn to_json(&self) -> String {
        let families = self
            .families
            .iter()
            .map(|(family, &(run, failed))| {
                (
                    family.to_string(),
                    Json::obj_inline(vec![
                        ("run", Json::usize(run)),
                        ("failed", Json::usize(failed)),
                    ]),
                )
            })
            .collect();
        let failures = self
            .failures
            .iter()
            .map(|f| {
                Json::obj(vec![
                    ("index", Json::usize(f.index)),
                    ("family", Json::str(f.family)),
                    ("seed", Json::u64(f.seed)),
                    ("kernel", Json::str(&f.kernel)),
                    ("kind", Json::str(f.kind)),
                    ("detail", Json::str(&f.detail)),
                    ("fixture", Json::str(&f.fixture)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("master_seed", Json::u64(self.master_seed)),
            ("device", Json::str(&self.device)),
            ("cases_run", Json::usize(self.cases_run)),
            ("kernels_run", Json::usize(self.kernels_run)),
            ("num_failures", Json::usize(self.failures.len())),
            ("families", Json::Obj(families)),
            ("failures", Json::arr(failures)),
        ])
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::FailureKind;
    use dtc_formats::{CsrMatrix, DenseMatrix};

    fn tiny_case() -> FuzzCase {
        let a = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0)]).expect("valid");
        FuzzCase { family: "zero-nnz", seed: 9, a, b: DenseMatrix::ones(1, 1) }
    }

    #[test]
    fn json_shape_and_gate() {
        let mut report = FuzzReport::new(3, "RTX4090");
        let case = tiny_case();
        report.record_case(&case, &CaseOutcome { failures: vec![], kernels_run: 12 });
        assert!(!report.has_failures());
        let failure = Failure {
            kernel: "DTC-SpMM".into(),
            kind: FailureKind::ValueMismatch,
            detail: "C[0,0] off".into(),
        };
        report.record_failure(&case, 0, &failure, &case);
        assert!(report.has_failures());
        let json = report.to_json();
        assert!(json.contains("\"kind\": \"value-mismatch\""), "{json}");
        assert!(json.contains("\"zero-nnz\": {\"run\": 1, \"failed\": 0}"), "{json}");
        assert!(json.contains("M1 K1 N1"), "{json}");
    }

    /// Pins the exact serialized prefix, so the shared-serializer port (and
    /// any future change to it) cannot silently reshape FUZZ.json.
    #[test]
    fn json_bytes_pinned() {
        let report = FuzzReport::new(3, "RTX4090");
        let json = report.to_json();
        let head = "{\n\
                    \x20\x20\"master_seed\": 3,\n\
                    \x20\x20\"device\": \"RTX4090\",\n\
                    \x20\x20\"cases_run\": 0,\n\
                    \x20\x20\"kernels_run\": 0,\n\
                    \x20\x20\"num_failures\": 0,\n\
                    \x20\x20\"families\": {\n";
        assert!(json.starts_with(head), "{json}");
        // Each family is one inline-object line, then an empty failures array.
        for &f in family_names() {
            assert!(
                json.contains(&format!("    \"{f}\": {{\"run\": 0, \"failed\": 0}}")),
                "{json}"
            );
        }
        assert!(json.ends_with("  \"failures\": [\n  ]\n}\n"), "{json}");
    }
}
