//! The differential runner: one case against the whole lineup.
//!
//! Each case runs through three differential axes:
//!
//! 1. **Kernels** — all 12 `SpmmKernel` models execute the case and are
//!    checked against the [`Reference`](crate::oracle::Reference) oracle;
//!    each kernel's lowered trace is replayed through the full `dtc-verify`
//!    lint battery (structural, resources, conservation, coverage,
//!    speed-of-light over a simulated report).
//! 2. **Conversion paths** — serial SGT condensing
//!    (`MeTcfMatrix::from_csr`) versus the parallel merge
//!    (`convert_to_metcf_parallel`), plus the `to_csr` round-trip, must
//!    agree bit-for-bit.
//! 3. **Pipeline** — the end-to-end `DtcSpmm` engine with TCA reordering
//!    on and off (exercising the conversion cache and the permutation
//!    undo) must also land inside the envelope.
//! 4. **Cache modes** — the two-tier conversion cache (lossy verified
//!    front + exact backing store) against exact-only mode, at 1 and 4
//!    worker threads, interleaving a near-duplicate variant between
//!    lookups so front-slot collisions are exercised, not just possible.
//! 5. **Delta updates** — a seed-derived edit script (inserts, updates,
//!    deletes, deletes of absent coordinates) is applied in place via
//!    `MeTcfMatrix::apply_delta` and checked bitwise against a full
//!    rebuild over the edited CSR, plus the `to_csr` round-trip of the
//!    patched format.
//!
//! Every step is wrapped in `catch_unwind`: a panic anywhere is a
//! reportable failure, not a sweep abort.

use crate::gen::FuzzCase;
use crate::oracle::{check_against, Reference};
use dtc_baselines::util::distinct_col_count;
use dtc_baselines::{
    BlockSpmm, CusparseSpmm, FlashLlmSpmm, HpSpmm, HybridSplitSpmm, SparseTirSpmm, SpartaSpmm,
    SpmmKernel, SputnikSpmm, TcgnnSpmm, SPARTA_DEFAULT_LIMIT,
};
use dtc_core::cache::{clear_conversion_cache, metcf_for, CachedConversion};
use dtc_core::convert::convert_to_metcf_parallel;
use dtc_core::{BalancedDtcKernel, DtcKernel, DtcSpmm};
use dtc_formats::{CsrMatrix, DenseMatrix, MatrixDelta, MeTcfMatrix};
use dtc_sim::{simulate, Device, SimOptions};
use dtc_verify::{verify_report, verify_trace, ProblemSpec, Severity, TraceCase};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What went wrong in one differential step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The step panicked.
    Panic,
    /// `execute` returned a `FormatError` on a well-formed case.
    ExecError,
    /// An output element left the oracle envelope (or broke the special-
    /// value structure).
    ValueMismatch,
    /// The lowered trace produced error-severity `dtc-verify` diagnostics.
    LintError,
    /// Serial and parallel ME-TCF conversion disagree.
    ConversionDiverged,
    /// `MeTcfMatrix::to_csr` does not reproduce the operand.
    RoundTripBroken,
    /// The two-tier conversion cache returned something other than the
    /// exact-only conversion.
    CacheDiverged,
    /// In-place delta patching diverged from a full rebuild over the
    /// edited matrix.
    DeltaDiverged,
}

impl FailureKind {
    /// Stable kebab-case id for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::ExecError => "exec-error",
            FailureKind::ValueMismatch => "value-mismatch",
            FailureKind::LintError => "lint-error",
            FailureKind::ConversionDiverged => "conversion-diverged",
            FailureKind::RoundTripBroken => "round-trip-broken",
            FailureKind::CacheDiverged => "cache-diverged",
            FailureKind::DeltaDiverged => "delta-diverged",
        }
    }
}

/// One failure of one differential step.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The kernel (or pseudo-step, e.g. `convert/serial`) that failed.
    pub kernel: String,
    /// The failure class.
    pub kind: FailureKind,
    /// Human-readable detail (panic message, first mismatch, lints).
    pub detail: String,
}

/// The outcome of running one case through every differential axis.
#[derive(Debug, Clone, Default)]
pub struct CaseOutcome {
    /// Every failure, in deterministic step order.
    pub failures: Vec<Failure>,
    /// Kernels that actually ran (fallible constructors may opt out).
    pub kernels_run: usize,
}

/// Runs `f`, converting a panic into an `Err` with its message.
fn guarded<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|e| {
        e.downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| e.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into())
    })
}

/// One lineup entry: name, fallible constructor result, SDB flag.
type LineupEntry = (&'static str, Result<Box<dyn SpmmKernel>, String>, bool);

/// The 12-kernel lineup on one matrix (mirrors the `tracelint` sweep).
fn lineup(a: &CsrMatrix, device: &Device) -> Vec<LineupEntry> {
    let ok = |k: Box<dyn SpmmKernel>| -> Result<Box<dyn SpmmKernel>, String> { Ok(k) };
    vec![
        ("cuSPARSE", ok(Box::new(CusparseSpmm::new(a))), false),
        ("TCGNN", TcgnnSpmm::new(a).map(|k| Box::new(k) as _).map_err(|e| e.to_string()), false),
        (
            "Sputnik",
            SputnikSpmm::new(a).map(|k| Box::new(k) as _).map_err(|e| e.to_string()),
            false,
        ),
        ("SparseTIR", ok(Box::new(SparseTirSpmm::new(a))), false),
        ("HP-SpMM", ok(Box::new(HpSpmm::new(a))), false),
        (
            "Block-SpMM",
            BlockSpmm::new(a, 32, device.global_mem_bytes)
                .map(|k| Box::new(k) as _)
                .map_err(|e| e.to_string()),
            true,
        ),
        (
            "VectorSparse",
            dtc_baselines::VectorSparseSpmm::new(a, 8)
                .map(|k| Box::new(k) as _)
                .map_err(|e| e.to_string()),
            true,
        ),
        (
            "Flash-LLM",
            FlashLlmSpmm::new(a, device.global_mem_bytes)
                .map(|k| Box::new(k) as _)
                .map_err(|e| e.to_string()),
            true,
        ),
        (
            "SparTA",
            SpartaSpmm::new(a, SPARTA_DEFAULT_LIMIT)
                .map(|k| Box::new(k) as _)
                .map_err(|e| e.to_string()),
            true,
        ),
        ("HybridSplit", ok(Box::new(HybridSplitSpmm::new(a))), true),
        ("DTC-SpMM", ok(Box::new(DtcKernel::new(a))), true),
        ("DTC-SpMM-balanced", ok(Box::new(BalancedDtcKernel::new(a))), true),
    ]
}

/// Bitwise ME-TCF equality: `PartialEq` on the value array says
/// `NaN != NaN`, which would flag every NaN-carrying matrix as a
/// conversion divergence. The differential bar is bit-identity.
fn metcf_bitwise_eq(a: &MeTcfMatrix, b: &MeTcfMatrix) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.nnz() == b.nnz()
        && a.row_window_offset() == b.row_window_offset()
        && a.tc_offset() == b.tc_offset()
        && a.tc_local_id() == b.tc_local_id()
        && a.sparse_a_to_b() == b.sparse_a_to_b()
        && a.values().len() == b.values().len()
        && a.values().iter().zip(b.values()).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// `a == b` up to NaN-equals-NaN and sign-of-zero (the bar the kernels are
/// held to; sign-of-zero is below TF32 interchangeability).
fn dense_equiv(a: &DenseMatrix, b: &DenseMatrix) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(&x, &y)| x == y || (x.is_nan() && y.is_nan()))
}

/// Runs one case through every differential axis.
pub fn run_case(case: &FuzzCase, device: &Device) -> CaseOutcome {
    let mut out = CaseOutcome::default();
    let a = &case.a;
    let b = &case.b;
    let n = b.cols();
    let reference = Reference::compute(a, b);

    // Axis 2: conversion paths (serial SGT vs parallel merge + round-trip).
    check_conversion(a, &mut out);

    // Axis 1: the 12-kernel lineup.
    let b_rows_touched = distinct_col_count(a);
    for (name, kernel, sdb) in lineup(a, device) {
        let kernel = match kernel {
            Ok(k) => k,
            Err(_) => continue, // documented opt-out, not a failure
        };
        out.kernels_run += 1;
        match guarded(|| kernel.execute(b)) {
            Err(msg) => out.push(name, FailureKind::Panic, format!("execute panicked: {msg}")),
            Ok(Err(e)) => out.push(name, FailureKind::ExecError, e.to_string()),
            Ok(Ok(c)) => {
                if let Some(m) = check_against(&reference, &c) {
                    out.push(name, FailureKind::ValueMismatch, m.to_string());
                }
            }
        }
        match guarded(|| kernel.trace(n, device, true)) {
            Err(msg) => out.push(name, FailureKind::Panic, format!("trace panicked: {msg}")),
            Ok(trace) => {
                let problem =
                    ProblemSpec { rows: a.rows(), cols: a.cols(), nnz: a.nnz(), n, b_rows_touched };
                let tc = TraceCase::new(name, device, &trace).with_problem(problem).with_sdb(sdb);
                let lints = guarded(|| {
                    let mut diags = verify_trace(&tc);
                    let opts = SimOptions { simulate_l2: true, ..SimOptions::default() };
                    let sim = simulate(device, &trace, &opts);
                    diags.extend(verify_report(&tc, &sim));
                    diags
                });
                match lints {
                    Err(msg) => {
                        out.push(name, FailureKind::Panic, format!("verify panicked: {msg}"))
                    }
                    Ok(diags) => {
                        let errors: Vec<String> = diags
                            .iter()
                            .filter(|d| d.severity == Severity::Error)
                            .map(|d| d.to_string())
                            .collect();
                        if !errors.is_empty() {
                            out.push(name, FailureKind::LintError, errors.join("; "));
                        }
                    }
                }
            }
        }
    }

    // Axis 3: the end-to-end pipeline, TCA reordering off and on.
    for (label, reorder) in [("pipeline/reorder-off", false), ("pipeline/reorder-on", true)] {
        match guarded(|| DtcSpmm::builder().reorder(reorder).build(a).execute(b)) {
            Err(msg) => out.push(label, FailureKind::Panic, msg),
            Ok(Err(e)) => out.push(label, FailureKind::ExecError, e.to_string()),
            Ok(Ok(c)) => {
                if let Some(m) = check_against(&reference, &c) {
                    out.push(label, FailureKind::ValueMismatch, m.to_string());
                }
            }
        }
    }

    // Axis 4: two-tier conversion cache vs exact-only mode.
    check_cache_modes(a, &mut out);

    // Axis 5: in-place delta patching vs full rebuild.
    check_delta(case, &mut out);
    out
}

/// The delta-update differential: a seed-derived edit script, applied in
/// place to the case matrix's ME-TCF, must be bitwise identical to
/// condensing the edited CSR from scratch — and the patched format must
/// still round-trip through `to_csr`.
fn check_delta(case: &FuzzCase, out: &mut CaseOutcome) {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    let a = &case.a;
    let mut rng = StdRng::seed_from_u64(case.seed ^ 0x00DE_17A5);
    let existing: Vec<(usize, usize, f32)> = a.iter().collect();
    let mut delta = MatrixDelta::new();
    for _ in 0..rng.random_range(1usize..24) {
        let at_existing = !existing.is_empty() && rng.random_range(0..2) == 0;
        let (r, c) = if at_existing {
            let (r, c, _) = existing[rng.random_range(0..existing.len())];
            (r, c)
        } else {
            (rng.random_range(0..a.rows()), rng.random_range(0..a.cols()))
        };
        match rng.random_range(0..4) {
            // Deletes of absent coordinates are legal no-ops.
            0 => delta.delete(r, c),
            1 => delta.update(r, c, rng.random_range(-2.0f32..2.0)),
            2 => delta.insert(r, c, 0.0), // explicit stored zero
            _ => delta.insert(r, c, rng.random_range(-2.0f32..2.0)),
        }
    }

    let result = guarded(|| {
        let mut patched = MeTcfMatrix::from_csr(a);
        let report = patched.apply_delta(&delta)?;
        let edited = delta.apply_to_csr(a)?;
        Ok::<_, dtc_formats::FormatError>((patched, report, edited))
    });
    match result {
        Err(msg) => out.push("delta/apply", FailureKind::Panic, msg),
        Ok(Err(e)) => out.push("delta/apply", FailureKind::ExecError, e.to_string()),
        Ok(Ok((patched, report, edited))) => {
            let rebuilt = MeTcfMatrix::from_csr(&edited);
            if !metcf_bitwise_eq(&patched, &rebuilt) {
                out.push(
                    "delta/apply",
                    FailureKind::DeltaDiverged,
                    format!(
                        "in-place patch: {} blocks / {} nnz vs rebuild {} blocks / {} nnz",
                        patched.num_tc_blocks(),
                        patched.nnz(),
                        rebuilt.num_tc_blocks(),
                        rebuilt.nnz()
                    ),
                );
            }
            if report.nnz_after != edited.nnz() {
                out.push(
                    "delta/report",
                    FailureKind::DeltaDiverged,
                    format!(
                        "report says {} nnz, edited CSR has {}",
                        report.nnz_after,
                        edited.nnz()
                    ),
                );
            }
            match guarded(|| patched.to_csr()) {
                Err(msg) => out.push("delta/round-trip", FailureKind::Panic, msg),
                Ok(Err(e)) => {
                    out.push("delta/round-trip", FailureKind::RoundTripBroken, e.to_string())
                }
                Ok(Ok(back)) => {
                    let same = dense_equiv(&back.to_dense(), &edited.to_dense());
                    if !same {
                        out.push(
                            "delta/round-trip",
                            FailureKind::RoundTripBroken,
                            format!(
                                "patched to_csr diverges from edited CSR ({} nnz vs {} nnz)",
                                back.nnz(),
                                edited.nnz()
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// The cache-mode differential: the lossy front tier must be a pure
/// accelerator. For each thread count, the case matrix is converted in
/// exact-only mode and then through the two-tier cache — cold, again after
/// a near-duplicate (one value bit flipped) has been pushed through the
/// same front slot, and the near-duplicate itself — and every result must
/// be bitwise identical to its exact-only conversion.
fn check_cache_modes(a: &CsrMatrix, out: &mut CaseOutcome) {
    // A one-bit variant shares shape and structure with `a`, so its key
    // material collides with `a`'s everywhere except the value digest.
    let variant = (a.nnz() > 0).then(|| {
        let mut triplets: Vec<(usize, usize, f32)> = a.iter().collect();
        let (r, c, v) = triplets[0];
        triplets[0] = (r, c, f32::from_bits(v.to_bits() ^ 1));
        CsrMatrix::from_triplets(a.rows(), a.cols(), &triplets).expect("in-bounds triplets")
    });
    for threads in [1usize, 4] {
        let label = format!("cache/two-tier-t{threads}");
        let result = guarded(|| {
            // Fuzz cases are far inside the u32 offset bounds, so a
            // conversion error here is a panic-worthy harness bug (and is
            // caught by `guarded` as a reportable failure either way).
            let conv = |m: &CsrMatrix| metcf_for(m).expect("fuzz case within u32 bounds");
            dtc_par::set_threads(Some(threads));
            dtc_par::set_front_tier_enabled(false);
            clear_conversion_cache();
            let exact_a = conv(a);
            let exact_v = variant.as_ref().map(&conv);
            dtc_par::set_front_tier_enabled(true);
            clear_conversion_cache();
            let cold_a = conv(a);
            let tier_v = variant.as_ref().map(&conv);
            let warm_a = conv(a);
            (exact_a, exact_v, cold_a, tier_v, warm_a)
        });
        dtc_par::set_front_tier_enabled(true);
        dtc_par::set_threads(None);
        match result {
            Err(msg) => out.push(&label, FailureKind::Panic, msg),
            Ok((exact_a, exact_v, cold_a, tier_v, warm_a)) => {
                let same = |x: &CachedConversion, y: &CachedConversion| {
                    x.distinct_cols == y.distinct_cols && metcf_bitwise_eq(&x.metcf, &y.metcf)
                };
                if !same(&cold_a, &exact_a) {
                    out.push(&label, FailureKind::CacheDiverged, "cold lookup diverges".into());
                }
                if !same(&warm_a, &exact_a) {
                    out.push(&label, FailureKind::CacheDiverged, "warm lookup diverges".into());
                }
                if let (Some(ev), Some(tv)) = (&exact_v, &tier_v) {
                    if !same(tv, ev) {
                        out.push(
                            &label,
                            FailureKind::CacheDiverged,
                            "near-duplicate cross-served a stale conversion".into(),
                        );
                    }
                }
            }
        }
    }
}

/// The conversion-path differential: serial vs parallel, plus round-trip.
fn check_conversion(a: &CsrMatrix, out: &mut CaseOutcome) {
    let serial = match guarded(|| MeTcfMatrix::from_csr(a)) {
        Err(msg) => {
            out.push("convert/serial", FailureKind::Panic, msg);
            return;
        }
        Ok(m) => m,
    };
    match guarded(|| convert_to_metcf_parallel(a, 2)) {
        Err(msg) => out.push("convert/parallel", FailureKind::Panic, msg),
        Ok(Err(e)) => out.push("convert/parallel", FailureKind::ExecError, e.to_string()),
        Ok(Ok(parallel)) => {
            if !metcf_bitwise_eq(&parallel, &serial) {
                out.push(
                    "convert/parallel",
                    FailureKind::ConversionDiverged,
                    format!(
                        "parallel merge: {} blocks vs serial {} blocks",
                        parallel.num_tc_blocks(),
                        serial.num_tc_blocks()
                    ),
                );
            }
        }
    }
    match guarded(|| serial.to_csr()) {
        Err(msg) => out.push("convert/round-trip", FailureKind::Panic, msg),
        Ok(Err(e)) => out.push("convert/round-trip", FailureKind::RoundTripBroken, e.to_string()),
        Ok(Ok(back)) => {
            let same = guarded(|| dense_equiv(&back.to_dense(), &a.to_dense()));
            match same {
                Err(msg) => out.push("convert/round-trip", FailureKind::Panic, msg),
                Ok(true) => {}
                Ok(false) => out.push(
                    "convert/round-trip",
                    FailureKind::RoundTripBroken,
                    format!("to_csr round-trip diverges ({} nnz vs {} nnz)", back.nnz(), a.nnz()),
                ),
            }
        }
    }
}

impl CaseOutcome {
    fn push(&mut self, kernel: &str, kind: FailureKind, detail: String) {
        self.failures.push(Failure { kernel: kernel.into(), kind, detail });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen;

    #[test]
    fn well_behaved_case_is_clean() {
        let a = gen::uniform(64, 64, 512, 42);
        let b = DenseMatrix::from_fn(64, 32, |r, c| ((r + c) % 7) as f32 * 0.25 - 0.5);
        let case = FuzzCase { family: "unit", seed: 0, a, b };
        let out = run_case(&case, &Device::rtx4090());
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(out.kernels_run >= 10);
    }

    #[test]
    fn skipped_constructors_are_not_failures() {
        // 1x1: several baselines decline tiny/irregular shapes — that must
        // not count as a failure.
        let a = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0)]).expect("valid");
        let b = DenseMatrix::ones(1, 4);
        let case = FuzzCase { family: "unit", seed: 0, a, b };
        let out = run_case(&case, &Device::rtx4090());
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }
}
