//! Greedy case minimization.
//!
//! A failing case shrinks through a fixed, deterministic transformation
//! order — halve rows (either half), halve columns, halve the dense
//! width, halve the non-zeros, then collapse every value to `1.0` — each
//! step kept only if the *same* failure (kind + step name) still
//! reproduces. The result is the small reproducer that gets pinned as a
//! regression fixture.

use crate::gen::FuzzCase;
use crate::runner::{run_case, Failure};
use dtc_formats::{CsrMatrix, DenseMatrix};
use dtc_sim::Device;

/// Upper bound on accepted shrink steps (a safety valve; real cases
/// converge in far fewer).
const MAX_STEPS: usize = 64;

/// Does `candidate` still exhibit `target`'s failure?
fn reproduces(candidate: &FuzzCase, target: &Failure, device: &Device) -> bool {
    run_case(candidate, device)
        .failures
        .iter()
        .any(|f| f.kind == target.kind && f.kernel == target.kernel)
}

/// Rebuilds a case from triplets and a dense operand.
fn rebuild(
    base: &FuzzCase,
    rows: usize,
    cols: usize,
    triplets: &[(usize, usize, f32)],
    b: DenseMatrix,
) -> Option<FuzzCase> {
    let a = CsrMatrix::from_triplets(rows, cols, triplets).ok()?;
    Some(FuzzCase { family: base.family, seed: base.seed, a, b })
}

/// Keeps dense rows `lo..hi`.
fn b_rows(b: &DenseMatrix, lo: usize, hi: usize) -> DenseMatrix {
    DenseMatrix::from_fn(hi - lo, b.cols(), |r, c| b.get(lo + r, c))
}

/// Keeps dense columns `0..w`.
fn b_cols(b: &DenseMatrix, w: usize) -> DenseMatrix {
    DenseMatrix::from_fn(b.rows(), w, |r, c| b.get(r, c))
}

/// The candidate transformations for one step, in priority order.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let a = &case.a;
    let b = &case.b;
    let triplets: Vec<(usize, usize, f32)> = a.iter().collect();
    let mut out = Vec::new();

    // Halve the row count: keep either half.
    if a.rows() > 1 {
        let h = a.rows() / 2;
        out.push(FuzzCase {
            family: case.family,
            seed: case.seed,
            a: a.sub_rows(0..h),
            b: b.clone(),
        });
        let top: Vec<_> =
            triplets.iter().filter(|t| t.0 >= h).map(|&(r, c, v)| (r - h, c, v)).collect();
        if let Some(c) = rebuild(case, a.rows() - h, a.cols(), &top, b.clone()) {
            out.push(c);
        }
    }

    // Halve the column count: keep either half (rebasing the upper half).
    if a.cols() > 1 {
        let h = a.cols() / 2;
        let lo: Vec<_> = triplets.iter().filter(|t| t.1 < h).copied().collect();
        if let Some(c) = rebuild(case, a.rows(), h, &lo, b_rows(b, 0, h)) {
            out.push(c);
        }
        let hi: Vec<_> =
            triplets.iter().filter(|t| t.1 >= h).map(|&(r, c, v)| (r, c - h, v)).collect();
        if let Some(c) = rebuild(case, a.rows(), a.cols() - h, &hi, b_rows(b, h, a.cols())) {
            out.push(c);
        }
    }

    // Halve the dense width.
    if b.cols() > 1 {
        out.push(FuzzCase {
            family: case.family,
            seed: case.seed,
            a: a.clone(),
            b: b_cols(b, b.cols().div_ceil(2)),
        });
    }

    // Halve the non-zeros: keep either half of the triplet list.
    if triplets.len() > 1 {
        let h = triplets.len() / 2;
        for keep in [&triplets[..h], &triplets[h..]] {
            if let Some(c) = rebuild(case, a.rows(), a.cols(), keep, b.clone()) {
                out.push(c);
            }
        }
    }

    // Collapse all values to 1.0 (A and B together, then separately).
    let ones: Vec<_> = triplets.iter().map(|&(r, c, _)| (r, c, 1.0)).collect();
    let flat_b = DenseMatrix::ones(b.rows(), b.cols());
    if triplets.iter().any(|t| t.2 != 1.0) || b.as_slice().iter().any(|&v| v != 1.0) {
        if let Some(c) = rebuild(case, a.rows(), a.cols(), &ones, flat_b.clone()) {
            out.push(c);
        }
    }
    if triplets.iter().any(|t| t.2 != 1.0) {
        if let Some(c) = rebuild(case, a.rows(), a.cols(), &ones, b.clone()) {
            out.push(c);
        }
    }
    if b.as_slice().iter().any(|&v| v != 1.0) {
        out.push(FuzzCase { family: case.family, seed: case.seed, a: a.clone(), b: flat_b });
    }
    out
}

/// Greedily minimizes `case` while `target` still reproduces.
///
/// Deterministic: fixed transformation order, first reproducing candidate
/// wins each step. Returns the original case unchanged when nothing
/// smaller reproduces (including when the failure itself is flaky).
pub fn shrink_case(case: &FuzzCase, target: &Failure, device: &Device) -> FuzzCase {
    let mut current = case.clone();
    for _ in 0..MAX_STEPS {
        let mut advanced = false;
        for candidate in candidates(&current) {
            if reproduces(&candidate, target, device) {
                current = candidate;
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    current
}

/// Renders a case as a compact single-line fixture string — exact to the
/// bit (values printed with `{:?}`, which round-trips f32).
pub fn fixture_code(case: &FuzzCase) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(s, "M{} K{} N{} | A", case.a.rows(), case.a.cols(), case.b.cols());
    for (r, c, v) in case.a.iter() {
        let _ = write!(s, " ({r},{c},{v:?})");
    }
    let _ = write!(s, " | B");
    for &v in case.b.as_slice() {
        let _ = write!(s, " {v:?}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::FailureKind;

    #[test]
    fn fixture_code_is_exact() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, -0.0), (1, 0, f32::NAN)]).expect("valid");
        let b = DenseMatrix::ones(2, 1);
        let case = FuzzCase { family: "unit", seed: 0, a, b };
        let code = fixture_code(&case);
        assert!(code.contains("(0,1,-0.0)"), "{code}");
        assert!(code.contains("NaN"), "{code}");
    }

    #[test]
    fn shrink_keeps_non_reproducing_case_unchanged() {
        // A clean case with a fabricated target failure: shrinking must
        // return it untouched.
        let a = CsrMatrix::from_triplets(4, 4, &[(0, 0, 1.0), (3, 3, 2.0)]).expect("valid");
        let b = DenseMatrix::ones(4, 2);
        let case = FuzzCase { family: "unit", seed: 0, a: a.clone(), b };
        let target = Failure {
            kernel: "no-such-step".into(),
            kind: FailureKind::Panic,
            detail: String::new(),
        };
        let out = shrink_case(&case, &target, &Device::rtx4090());
        assert_eq!(out.a, a);
    }
}
