//! Pluggable SpMM backends for GNN training — the frameworks compared in
//! Fig 16.

use dtc_baselines::{CusparseSpmm, SpmmKernel, TcgnnSpmm};
use dtc_core::DtcSpmm;
use dtc_formats::{CsrMatrix, DenseMatrix, FormatError};
use dtc_sim::Device;

/// An SpMM provider for GCN training: forward uses `A`, backward uses
/// `Aᵀ`; each backend also reports its simulated kernel time, one-time
/// setup cost, and per-epoch framework overhead.
pub trait GnnBackend {
    /// Framework display name.
    fn name(&self) -> &str;

    /// Computes `A × B` (or `Aᵀ × B` when `transpose`).
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches from the kernel.
    fn spmm(&self, transpose: bool, b: &DenseMatrix) -> Result<DenseMatrix, FormatError>;

    /// Simulated GPU time of one SpMM with `n` dense columns, in ms.
    fn spmm_ms(&self, transpose: bool, n: usize, device: &Device) -> f64;

    /// One-time setup cost (format conversion etc.), in ms.
    fn one_time_ms(&self, device: &Device) -> f64;

    /// Per-epoch framework overhead (kernel dispatch, autograd graph,
    /// Python glue), in ms.
    fn per_epoch_overhead_ms(&self) -> f64;
}

/// DTC-GCN: the paper's PyTorch CUDA-extension over DTC-SpMM.
pub struct DtcGnnBackend {
    fwd: DtcSpmm,
    bwd: DtcSpmm,
    conversion_ms_factor: f64,
}

impl DtcGnnBackend {
    /// Builds forward and backward engines (the adjacency and its
    /// transpose each get their own ME-TCF conversion, as in the real
    /// extension).
    pub fn new(a: &CsrMatrix) -> Self {
        DtcGnnBackend {
            fwd: DtcSpmm::new(a),
            bwd: DtcSpmm::new(&a.transposed()),
            conversion_ms_factor: 1.0,
        }
    }

    /// The forward engine (for inspection).
    pub fn forward_engine(&self) -> &DtcSpmm {
        &self.fwd
    }
}

impl GnnBackend for DtcGnnBackend {
    fn name(&self) -> &str {
        "DTC-GCN"
    }

    fn spmm(&self, transpose: bool, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        // Kernel-level path on purpose: the backend trait speaks
        // FormatError (the engine-level DtcError belongs to dtc-serve).
        let engine = if transpose { &self.bwd } else { &self.fwd };
        SpmmKernel::execute(engine, b)
    }

    fn spmm_ms(&self, transpose: bool, n: usize, device: &Device) -> f64 {
        let engine = if transpose { &self.bwd } else { &self.fwd };
        engine.simulate(n, device).time_ms
    }

    fn one_time_ms(&self, device: &Device) -> f64 {
        // GPU-accelerated ME-TCF conversion for A and Aᵀ (§6) plus the
        // Selector's makespan simulation (fractions of one SpMM).
        let nnz = self.fwd.nnz().max(1);
        2.0 * dtc_core::convert::simulated_gpu_conversion_ms_for(self.fwd.rows(), nnz, device)
            * self.conversion_ms_factor
            + 0.05
    }

    fn per_epoch_overhead_ms(&self) -> f64 {
        0.08 // thin CUDA-extension dispatch
    }
}

/// TC-GNN's framework (their PyTorch integration over TCGNN-SpMM).
pub struct TcgnnGnnBackend {
    fwd: TcgnnSpmm,
    bwd: TcgnnSpmm,
}

impl TcgnnGnnBackend {
    /// Builds forward/backward TCGNN kernels.
    ///
    /// # Errors
    ///
    /// Propagates TCGNN's square-matrix restriction.
    pub fn new(a: &CsrMatrix) -> Result<Self, FormatError> {
        Ok(TcgnnGnnBackend { fwd: TcgnnSpmm::new(a)?, bwd: TcgnnSpmm::new(&a.transposed())? })
    }
}

impl GnnBackend for TcgnnGnnBackend {
    fn name(&self) -> &str {
        "TC-GNN"
    }

    fn spmm(&self, transpose: bool, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        if transpose {
            self.bwd.execute(b)
        } else {
            self.fwd.execute(b)
        }
    }

    fn spmm_ms(&self, transpose: bool, n: usize, device: &Device) -> f64 {
        let k = if transpose { &self.bwd } else { &self.fwd };
        k.simulate(n, device).time_ms
    }

    fn one_time_ms(&self, _device: &Device) -> f64 {
        // Fig 16 note: the paper excludes TC-GNN's (CPU-only, very slow)
        // format conversion from its training times; we follow suit.
        0.0
    }

    fn per_epoch_overhead_ms(&self) -> f64 {
        0.1
    }
}

/// DGL-style backend: cuSPARSE SpMM under a heavier framework runtime.
pub struct DglGnnBackend {
    fwd: CusparseSpmm,
    bwd: CusparseSpmm,
}

impl DglGnnBackend {
    /// Builds the backend.
    pub fn new(a: &CsrMatrix) -> Self {
        DglGnnBackend { fwd: CusparseSpmm::new(a), bwd: CusparseSpmm::new(&a.transposed()) }
    }
}

impl GnnBackend for DglGnnBackend {
    fn name(&self) -> &str {
        "DGL"
    }

    fn spmm(&self, transpose: bool, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        if transpose {
            self.bwd.execute(b)
        } else {
            self.fwd.execute(b)
        }
    }

    fn spmm_ms(&self, transpose: bool, n: usize, device: &Device) -> f64 {
        let k = if transpose { &self.bwd } else { &self.fwd };
        k.simulate(n, device).time_ms
    }

    fn one_time_ms(&self, _device: &Device) -> f64 {
        0.5 // graph object construction
    }

    fn per_epoch_overhead_ms(&self) -> f64 {
        0.35 // message-passing runtime dispatch
    }
}

/// PyG in "Gather-Scatter" mode: edge-wise gather + `scatter_add`, roughly
/// 1.8× the cuSPARSE kernel time with twice the intermediate traffic.
pub struct PygGatherScatterBackend {
    inner: DglGnnBackend,
}

impl PygGatherScatterBackend {
    /// Builds the backend.
    pub fn new(a: &CsrMatrix) -> Self {
        PygGatherScatterBackend { inner: DglGnnBackend::new(a) }
    }
}

impl GnnBackend for PygGatherScatterBackend {
    fn name(&self) -> &str {
        "PyG(Gather-Scatter)"
    }

    fn spmm(&self, transpose: bool, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        self.inner.spmm(transpose, b)
    }

    fn spmm_ms(&self, transpose: bool, n: usize, device: &Device) -> f64 {
        self.inner.spmm_ms(transpose, n, device) * 1.8
    }

    fn one_time_ms(&self, _device: &Device) -> f64 {
        0.2
    }

    fn per_epoch_overhead_ms(&self) -> f64 {
        0.5
    }
}

/// PyG in "SparseTensor" mode: torch-sparse SpMM kernels, close to
/// cuSPARSE with a modest constant factor.
pub struct PygSparseTensorBackend {
    inner: DglGnnBackend,
}

impl PygSparseTensorBackend {
    /// Builds the backend.
    pub fn new(a: &CsrMatrix) -> Self {
        PygSparseTensorBackend { inner: DglGnnBackend::new(a) }
    }
}

impl GnnBackend for PygSparseTensorBackend {
    fn name(&self) -> &str {
        "PyG(SparseTensor)"
    }

    fn spmm(&self, transpose: bool, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        self.inner.spmm(transpose, b)
    }

    fn spmm_ms(&self, transpose: bool, n: usize, device: &Device) -> f64 {
        self.inner.spmm_ms(transpose, n, device) * 1.15
    }

    fn one_time_ms(&self, _device: &Device) -> f64 {
        0.3
    }

    fn per_epoch_overhead_ms(&self) -> f64 {
        0.45
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::community;

    #[test]
    fn backends_agree_numerically() {
        let a = community(128, 128, 8, 6.0, 0.85, 3);
        let b = DenseMatrix::from_fn(128, 8, |r, c| ((r + c) % 5) as f32 * 0.3);
        let reference = a.spmm_reference(&b).unwrap();
        let backends: Vec<Box<dyn GnnBackend>> = vec![
            Box::new(DtcGnnBackend::new(&a)),
            Box::new(TcgnnGnnBackend::new(&a).unwrap()),
            Box::new(DglGnnBackend::new(&a)),
            Box::new(PygGatherScatterBackend::new(&a)),
            Box::new(PygSparseTensorBackend::new(&a)),
        ];
        for bk in backends {
            let c = bk.spmm(false, &b).unwrap();
            assert!(c.max_abs_diff(&reference) < 0.01, "{} diverges", bk.name());
        }
    }

    #[test]
    fn transpose_spmm_is_transposed() {
        let a = community(64, 64, 4, 4.0, 0.8, 4);
        let b = DenseMatrix::from_fn(64, 4, |r, _| r as f32 * 0.1);
        let want = a.transposed().spmm_reference(&b).unwrap();
        let bk = DtcGnnBackend::new(&a);
        assert!(bk.spmm(true, &b).unwrap().max_abs_diff(&want) < 0.01);
    }

    #[test]
    fn dtc_spmm_faster_than_gather_scatter() {
        // Real GNN graphs arrive mostly locality-ordered (see dtc-datasets);
        // a fully shuffled community graph is the worst case for SGT.
        let a = dtc_formats::gen::community_with_shuffle(2048, 2048, 64, 12.0, 0.85, 0.2, 5);
        let device = Device::rtx4090();
        let dtc = DtcGnnBackend::new(&a);
        let pyg = PygGatherScatterBackend::new(&a);
        assert!(dtc.spmm_ms(false, 128, &device) < pyg.spmm_ms(false, 128, &device));
    }
}
