//! Arbitrary-depth GCN — an extension over the paper's two-layer case
//! study. Each layer computes `H_{l+1} = σ[(A × H_l) × W_l + b_l]`
//! (eq. (2)); the final layer omits the activation and feeds the
//! cross-entropy head. Per epoch this costs `L` forward SpMMs and `L-1`
//! transposed backward SpMMs, so deeper models amplify exactly the kernel
//! DTC-SpMM accelerates.

use crate::backend::GnnBackend;
use crate::ops::{log_softmax, nll_loss, relu, relu_grad, softmax_minus_onehot};
use dtc_formats::{DenseMatrix, FormatError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A GCN of arbitrary depth.
#[derive(Debug, Clone)]
pub struct DeepGcn {
    /// Per-layer weights; layer `l` maps `dims[l] -> dims[l+1]`.
    pub weights: Vec<DenseMatrix>,
    /// Per-layer biases.
    pub biases: Vec<Vec<f32>>,
}

/// Gradients matching [`DeepGcn`].
#[derive(Debug, Clone)]
pub struct DeepGcnGradients {
    /// Per-layer weight gradients.
    pub weights: Vec<DenseMatrix>,
    /// Per-layer bias gradients.
    pub biases: Vec<Vec<f32>>,
}

impl DeepGcn {
    /// Builds a GCN with the given layer dimensions
    /// (`[features, hidden..., classes]`, at least two entries).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for w in dims.windows(2) {
            let (rows, cols) = (w[0], w[1]);
            let scale = (2.0 / (rows + cols) as f32).sqrt();
            weights.push(DenseMatrix::from_fn(rows, cols, |_, _| rng.random_range(-scale..scale)));
            biases.push(vec![0.0; cols]);
        }
        DeepGcn { weights, biases }
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.weights.len()
    }

    /// Forward + backward; returns `(loss, gradients)`.
    ///
    /// # Errors
    ///
    /// Propagates backend dimension mismatches.
    pub fn loss_and_grads(
        &self,
        backend: &dyn GnnBackend,
        x: &DenseMatrix,
        labels: &[usize],
    ) -> Result<(f32, DeepGcnGradients), FormatError> {
        let depth = self.depth();
        // Forward, caching AH_l (post-SpMM) and Z_l (pre-activation).
        let mut ah = Vec::with_capacity(depth); // A × H_l
        let mut z = Vec::with_capacity(depth); // AH_l × W_l + b_l
        let mut h = x.clone();
        for l in 0..depth {
            let ahl = backend.spmm(false, &h)?;
            let mut zl = ahl.matmul(&self.weights[l])?;
            add_bias_inplace(&mut zl, &self.biases[l]);
            h = if l + 1 < depth { relu(&zl) } else { zl.clone() };
            ah.push(ahl);
            z.push(zl);
        }
        let logits = &z[depth - 1];
        let loss = nll_loss(&log_softmax(logits), labels);

        // Backward.
        let mut w_grads = vec![DenseMatrix::zeros(0, 0); depth];
        let mut b_grads = vec![Vec::new(); depth];
        let mut dz = softmax_minus_onehot(logits, labels);
        for l in (0..depth).rev() {
            w_grads[l] = ah[l].transposed().matmul(&dz)?;
            b_grads[l] = col_sums(&dz);
            if l == 0 {
                break;
            }
            let dah = dz.matmul(&self.weights[l].transposed())?;
            let dh = backend.spmm(true, &dah)?; // Aᵀ × dAH
            dz = relu_grad(&z[l - 1], &dh);
        }
        Ok((loss, DeepGcnGradients { weights: w_grads, biases: b_grads }))
    }

    /// SGD step.
    pub fn apply(&mut self, grads: &DeepGcnGradients, lr: f32) {
        for (w, g) in self.weights.iter_mut().zip(&grads.weights) {
            for (wv, gv) in w.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *wv -= lr * gv;
            }
        }
        for (b, g) in self.biases.iter_mut().zip(&grads.biases) {
            for (bv, gv) in b.iter_mut().zip(g) {
                *bv -= lr * gv;
            }
        }
    }

    /// Simulated SpMM time of one training epoch: `depth` forward SpMMs at
    /// the layer input widths plus `depth - 1` transposed SpMMs.
    pub fn epoch_spmm_ms(
        &self,
        backend: &dyn GnnBackend,
        features: usize,
        device: &dtc_sim::Device,
    ) -> f64 {
        let mut total = 0.0;
        let mut width = features;
        for (l, w) in self.weights.iter().enumerate() {
            total += backend.spmm_ms(false, width, device);
            width = w.cols();
            if l + 1 < self.depth() {
                total += backend.spmm_ms(true, width, device);
            }
        }
        total
    }
}

fn add_bias_inplace(x: &mut DenseMatrix, bias: &[f32]) {
    for r in 0..x.rows() {
        for (v, b) in x.row_mut(r).iter_mut().zip(bias) {
            *v += b;
        }
    }
}

fn col_sums(x: &DenseMatrix) -> Vec<f32> {
    let mut out = vec![0.0; x.cols()];
    for r in 0..x.rows() {
        for (o, &v) in out.iter_mut().zip(x.row(r)) {
            *o += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{DglGnnBackend, DtcGnnBackend};
    use dtc_formats::gen::community;

    #[test]
    fn deep_gradients_match_finite_differences() {
        let a = community(20, 20, 2, 3.0, 0.8, 61);
        let backend = DglGnnBackend::new(&a);
        let x = DenseMatrix::from_fn(20, 3, |r, c| ((r * 7 + c * 3) % 5) as f32 * 0.25 - 0.5);
        let labels: Vec<usize> = (0..20).map(|r| r % 3).collect();
        let gcn = DeepGcn::new(&[3, 5, 4, 3], 9);
        let (_, grads) = gcn.loss_and_grads(&backend, &x, &labels).unwrap();
        let eps = 1e-2f32;
        // Check one entry in each layer.
        for l in 0..3 {
            let (r, c) = (0usize, l.min(2));
            let mut gp = gcn.clone();
            gp.weights[l].set(r, c, gcn.weights[l].get(r, c) + eps);
            let (lp, _) = gp.loss_and_grads(&backend, &x, &labels).unwrap();
            let mut gm = gcn.clone();
            gm.weights[l].set(r, c, gcn.weights[l].get(r, c) - eps);
            let (lm, _) = gm.loss_and_grads(&backend, &x, &labels).unwrap();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grads.weights[l].get(r, c)).abs() < 0.02,
                "layer {l}: fd={fd} analytic={}",
                grads.weights[l].get(r, c)
            );
        }
    }

    #[test]
    fn two_layer_depth_matches_dims() {
        let g = DeepGcn::new(&[8, 16, 4], 1);
        assert_eq!(g.depth(), 2);
        assert_eq!(g.weights[0].rows(), 8);
        assert_eq!(g.weights[1].cols(), 4);
    }

    #[test]
    fn training_converges_at_depth_three() {
        let a = community(64, 64, 4, 4.0, 0.85, 62);
        let backend = DglGnnBackend::new(&a);
        let labels: Vec<usize> = (0..64).map(|r| (r / 16) % 4).collect();
        // Features carry a noisy copy of the label signal so a deep model
        // has something to fit within a short test budget.
        let x = DenseMatrix::from_fn(64, 6, |r, c| {
            let signal = if c == labels[r] { 1.0 } else { 0.0 };
            signal + ((r * 7 + c * 3) % 5) as f32 * 0.1
        });
        let mut gcn = DeepGcn::new(&[6, 10, 8, 4], 3);
        let (first, _) = gcn.loss_and_grads(&backend, &x, &labels).unwrap();
        for _ in 0..80 {
            let (_, grads) = gcn.loss_and_grads(&backend, &x, &labels).unwrap();
            gcn.apply(&grads, 0.3);
        }
        let (last, _) = gcn.loss_and_grads(&backend, &x, &labels).unwrap();
        assert!(last < first * 0.9, "loss went {first} -> {last}");
    }

    #[test]
    fn epoch_spmm_time_grows_with_depth() {
        let a = community(256, 256, 8, 8.0, 0.85, 63);
        let backend = DtcGnnBackend::new(&a);
        let device = dtc_sim::Device::rtx4090();
        let shallow = DeepGcn::new(&[32, 16, 4], 1).epoch_spmm_ms(&backend, 32, &device);
        let deep = DeepGcn::new(&[32, 16, 16, 16, 4], 1).epoch_spmm_ms(&backend, 32, &device);
        assert!(deep > shallow * 1.5, "deep={deep} shallow={shallow}");
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn single_dim_rejected() {
        DeepGcn::new(&[4], 1);
    }
}
