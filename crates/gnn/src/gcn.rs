//! A two-layer GCN with explicit forward/backward passes (eq. (2)):
//! `H1 = ReLU((A × X) × W1 + b1)`, `logits = (A × H1) × W2 + b2`.

use crate::backend::GnnBackend;
use crate::ops::{log_softmax, nll_loss, relu, relu_grad, softmax_minus_onehot};
use dtc_formats::{DenseMatrix, FormatError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The model parameters.
#[derive(Debug, Clone)]
pub struct Gcn {
    /// Layer-1 weight (`features × hidden`).
    pub w1: DenseMatrix,
    /// Layer-1 bias (`hidden`).
    pub b1: Vec<f32>,
    /// Layer-2 weight (`hidden × classes`).
    pub w2: DenseMatrix,
    /// Layer-2 bias (`classes`).
    pub b2: Vec<f32>,
}

/// Gradients matching [`Gcn`]'s parameters.
#[derive(Debug, Clone)]
pub struct GcnGradients {
    /// Gradient of `w1`.
    pub w1: DenseMatrix,
    /// Gradient of `b1`.
    pub b1: Vec<f32>,
    /// Gradient of `w2`.
    pub w2: DenseMatrix,
    /// Gradient of `b2`.
    pub b2: Vec<f32>,
}

impl Gcn {
    /// Xavier-ish random initialization.
    pub fn new(features: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let init = |rows: usize, cols: usize, rng: &mut StdRng| {
            let scale = (2.0 / (rows + cols) as f32).sqrt();
            DenseMatrix::from_fn(rows, cols, |_, _| rng.random_range(-scale..scale))
        };
        let w1 = init(features, hidden, &mut rng);
        let w2 = init(hidden, classes, &mut rng);
        Gcn { w1, b1: vec![0.0; hidden], w2, b2: vec![0.0; classes] }
    }

    /// Forward + backward pass through the given SpMM backend; returns the
    /// loss and parameter gradients. Performs 2 forward SpMMs and 1
    /// transposed backward SpMM — the per-epoch sparse workload the time
    /// accounting charges.
    ///
    /// # Errors
    ///
    /// Propagates backend dimension mismatches.
    pub fn loss_and_grads(
        &self,
        backend: &dyn GnnBackend,
        x: &DenseMatrix,
        labels: &[usize],
    ) -> Result<(f32, GcnGradients), FormatError> {
        // Forward.
        let ah0 = backend.spmm(false, x)?; // SpMM 1 (N = features)
        let z1 = add_bias(&ah0.matmul(&self.w1)?, &self.b1);
        let h1 = relu(&z1);
        let ah1 = backend.spmm(false, &h1)?; // SpMM 2 (N = hidden)
        let logits = add_bias(&ah1.matmul(&self.w2)?, &self.b2);
        let loss = nll_loss(&log_softmax(&logits), labels);

        // Backward.
        let dlogits = softmax_minus_onehot(&logits, labels);
        let dw2 = ah1.transposed().matmul(&dlogits)?;
        let db2 = col_sums(&dlogits);
        let dah1 = dlogits.matmul(&self.w2.transposed())?;
        let dh1 = backend.spmm(true, &dah1)?; // SpMM 3 (transposed, N = hidden)
        let dz1 = relu_grad(&z1, &dh1);
        let dw1 = ah0.transposed().matmul(&dz1)?;
        let db1 = col_sums(&dz1);

        Ok((loss, GcnGradients { w1: dw1, b1: db1, w2: dw2, b2: db2 }))
    }

    /// SGD step.
    pub fn apply(&mut self, grads: &GcnGradients, lr: f32) {
        sgd(&mut self.w1, &grads.w1, lr);
        sgd(&mut self.w2, &grads.w2, lr);
        for (b, g) in self.b1.iter_mut().zip(&grads.b1) {
            *b -= lr * g;
        }
        for (b, g) in self.b2.iter_mut().zip(&grads.b2) {
            *b -= lr * g;
        }
    }

    /// Inference: predicted class per node.
    ///
    /// # Errors
    ///
    /// Propagates backend dimension mismatches.
    pub fn predict(
        &self,
        backend: &dyn GnnBackend,
        x: &DenseMatrix,
    ) -> Result<Vec<usize>, FormatError> {
        let ah0 = backend.spmm(false, x)?;
        let h1 = relu(&add_bias(&ah0.matmul(&self.w1)?, &self.b1));
        let ah1 = backend.spmm(false, &h1)?;
        let logits = add_bias(&ah1.matmul(&self.w2)?, &self.b2);
        Ok((0..logits.rows())
            .map(|r| {
                logits
                    .row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect())
    }
}

fn add_bias(x: &DenseMatrix, bias: &[f32]) -> DenseMatrix {
    let mut out = x.clone();
    for r in 0..out.rows() {
        for (v, b) in out.row_mut(r).iter_mut().zip(bias) {
            *v += b;
        }
    }
    out
}

fn col_sums(x: &DenseMatrix) -> Vec<f32> {
    let mut out = vec![0.0; x.cols()];
    for r in 0..x.rows() {
        for (o, &v) in out.iter_mut().zip(x.row(r)) {
            *o += v;
        }
    }
    out
}

fn sgd(w: &mut DenseMatrix, g: &DenseMatrix, lr: f32) {
    for (wv, gv) in w.as_mut_slice().iter_mut().zip(g.as_slice()) {
        *wv -= lr * gv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DglGnnBackend;
    use dtc_formats::gen::community;

    #[test]
    fn gradients_match_finite_differences() {
        let a = community(24, 24, 2, 3.0, 0.8, 9);
        let backend = DglGnnBackend::new(&a);
        let x = DenseMatrix::from_fn(24, 4, |r, c| ((r * 5 + c * 3) % 7) as f32 * 0.2 - 0.5);
        let labels: Vec<usize> = (0..24).map(|r| r % 3).collect();
        let gcn = Gcn::new(4, 6, 3, 7);
        let (_, grads) = gcn.loss_and_grads(&backend, &x, &labels).unwrap();
        // Check a few w1 and w2 entries against central differences.
        let eps = 1e-2f32;
        for &(r, c) in &[(0usize, 0usize), (2, 3), (3, 5)] {
            let mut gp = gcn.clone();
            gp.w1.set(r, c, gcn.w1.get(r, c) + eps);
            let (lp, _) = gp.loss_and_grads(&backend, &x, &labels).unwrap();
            let mut gm = gcn.clone();
            gm.w1.set(r, c, gcn.w1.get(r, c) - eps);
            let (lm, _) = gm.loss_and_grads(&backend, &x, &labels).unwrap();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grads.w1.get(r, c)).abs() < 0.02,
                "w1[{r},{c}]: fd={fd} analytic={}",
                grads.w1.get(r, c)
            );
        }
        for &(r, c) in &[(0usize, 0usize), (4, 2)] {
            let mut gp = gcn.clone();
            gp.w2.set(r, c, gcn.w2.get(r, c) + eps);
            let (lp, _) = gp.loss_and_grads(&backend, &x, &labels).unwrap();
            let mut gm = gcn.clone();
            gm.w2.set(r, c, gcn.w2.get(r, c) - eps);
            let (lm, _) = gm.loss_and_grads(&backend, &x, &labels).unwrap();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grads.w2.get(r, c)).abs() < 0.02,
                "w2[{r},{c}]: fd={fd} analytic={}",
                grads.w2.get(r, c)
            );
        }
    }

    #[test]
    fn sgd_reduces_loss() {
        let a = community(48, 48, 4, 4.0, 0.85, 10);
        let backend = DglGnnBackend::new(&a);
        let x = DenseMatrix::from_fn(48, 6, |r, c| ((r + c) % 4) as f32 * 0.3);
        let labels: Vec<usize> = (0..48).map(|r| (r / 12) % 4).collect();
        let mut gcn = Gcn::new(6, 8, 4, 3);
        let (first, _) = gcn.loss_and_grads(&backend, &x, &labels).unwrap();
        for _ in 0..30 {
            let (_, grads) = gcn.loss_and_grads(&backend, &x, &labels).unwrap();
            gcn.apply(&grads, 0.2);
        }
        let (last, _) = gcn.loss_and_grads(&backend, &x, &labels).unwrap();
        assert!(last < first, "loss went {first} -> {last}");
    }

    #[test]
    fn predict_shapes() {
        let a = community(32, 32, 2, 3.0, 0.8, 11);
        let backend = DglGnnBackend::new(&a);
        let x = DenseMatrix::ones(32, 5);
        let gcn = Gcn::new(5, 4, 3, 1);
        let preds = gcn.predict(&backend, &x).unwrap();
        assert_eq!(preds.len(), 32);
        assert!(preds.iter().all(|&p| p < 3));
    }
}
