//! End-to-end GNN training case study (§5.4, Fig 16).
//!
//! A two-layer Graph Convolutional Network,
//! `H_{l+1} = σ[(A × H_l) × W_l + b_l]`, trained with real gradient descent
//! on the CPU while *simulated* GPU time is accounted per epoch: the
//! `A × H` SpMMs go through a pluggable [`GnnBackend`] (DTC-SpMM, the
//! TCGNN model, a DGL-style cuSPARSE backend, or PyG's two execution
//! modes), while the dense GEMM/activation work — identical across
//! frameworks — uses a shared roofline model. Exactly like the paper, the
//! only differentiator is the sparse kernel plus per-framework overheads.
//!
//! # Example
//!
//! ```
//! use dtc_gnn::{train_gcn, DtcGnnBackend, TrainConfig};
//! use dtc_formats::gen::community;
//! use dtc_sim::Device;
//!
//! let graph = community(256, 256, 16, 6.0, 0.8, 7);
//! let backend = DtcGnnBackend::new(&graph);
//! let report = train_gcn(&graph, &backend, &TrainConfig {
//!     epochs: 5, hidden: 16, features: 8, classes: 4, lr: 0.05, seed: 1,
//! }, &Device::rtx4090());
//! assert!(report.losses.first().unwrap() > report.losses.last().unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod deep;
mod gcn;
mod ops;
mod train;

pub use backend::{
    DglGnnBackend, DtcGnnBackend, GnnBackend, PygGatherScatterBackend, PygSparseTensorBackend,
    TcgnnGnnBackend,
};
pub use deep::{DeepGcn, DeepGcnGradients};
pub use gcn::{Gcn, GcnGradients};
pub use ops::{
    gemm_roofline_ms, log_softmax, nll_loss, normalize_adjacency, relu, relu_grad,
    softmax_minus_onehot,
};
pub use train::{train_gcn, TrainConfig, TrainingReport};
