//! Dense neural-network operations with explicit gradients, plus the
//! shared dense-GEMM roofline time model.

use dtc_formats::{CsrMatrix, DenseMatrix};
use dtc_sim::Device;

/// Symmetric GCN normalization: `Â = D^{-1/2} (A + I) D^{-1/2}` with `D`
/// the degree matrix of `A + I` (Kipf & Welling) — the adjacency every
/// framework in Fig 16 actually multiplies with. Structural zeros in `A`
/// are preserved; self-loops are added.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn normalize_adjacency(a: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.rows(), a.cols(), "adjacency must be square");
    let n = a.rows();
    let mut triplets: Vec<(usize, usize, f32)> = a.iter().map(|(r, c, _)| (r, c, 1.0)).collect();
    for i in 0..n {
        triplets.push((i, i, 1.0));
    }
    // from_triplets sums duplicates: an existing self-loop becomes 2.0;
    // clamp back to 1.0 afterwards via degree computation on the summed
    // structure (binary adjacency semantics).
    let with_loops = CsrMatrix::from_triplets(n, n, &triplets).expect("square, in range");
    let deg: Vec<f32> = (0..n).map(|r| with_loops.row_len(r) as f32).collect();
    let normalized: Vec<(usize, usize, f32)> =
        with_loops.iter().map(|(r, c, _)| (r, c, 1.0 / (deg[r] * deg[c]).sqrt())).collect();
    CsrMatrix::from_triplets(n, n, &normalized).expect("same structure")
}

/// Element-wise ReLU.
pub fn relu(x: &DenseMatrix) -> DenseMatrix {
    let mut out = x.clone();
    for v in out.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    out
}

/// Gradient mask of ReLU at pre-activation `z`: `grad ⊙ (z > 0)`.
pub fn relu_grad(z: &DenseMatrix, grad: &DenseMatrix) -> DenseMatrix {
    assert_eq!(z.rows(), grad.rows());
    assert_eq!(z.cols(), grad.cols());
    let mut out = grad.clone();
    for (o, &zv) in out.as_mut_slice().iter_mut().zip(z.as_slice()) {
        if zv <= 0.0 {
            *o = 0.0;
        }
    }
    out
}

/// Row-wise log-softmax.
pub fn log_softmax(x: &DenseMatrix) -> DenseMatrix {
    let mut out = DenseMatrix::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        let row = x.row(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let lse = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
        for (o, &v) in out.row_mut(r).iter_mut().zip(row) {
            *o = v - lse;
        }
    }
    out
}

/// Mean negative log-likelihood of `log_probs` at the given labels.
///
/// # Panics
///
/// Panics if a label is out of class range or the label count mismatches.
pub fn nll_loss(log_probs: &DenseMatrix, labels: &[usize]) -> f32 {
    assert_eq!(log_probs.rows(), labels.len());
    let mut sum = 0.0;
    for (r, &y) in labels.iter().enumerate() {
        assert!(y < log_probs.cols(), "label {y} out of range");
        sum -= log_probs.get(r, y);
    }
    sum / labels.len().max(1) as f32
}

/// Gradient of mean cross-entropy w.r.t. logits: `(softmax(z) - onehot(y)) / n`.
pub fn softmax_minus_onehot(logits: &DenseMatrix, labels: &[usize]) -> DenseMatrix {
    assert_eq!(logits.rows(), labels.len());
    let n = logits.rows().max(1) as f32;
    let mut out = DenseMatrix::zeros(logits.rows(), logits.cols());
    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let denom: f32 = row.iter().map(|v| (v - max).exp()).sum();
        let dst = out.row_mut(r);
        for (c, (&v, o)) in row.iter().zip(dst.iter_mut()).enumerate() {
            let p = (v - max).exp() / denom;
            *o = (p - if c == label { 1.0 } else { 0.0 }) / n;
        }
    }
    out
}

/// Roofline time model for a dense `m×k×n` FP32 GEMM on the device — the
/// cuBLAS work every framework shares identically, charged equally to all
/// backends in the case study.
pub fn gemm_roofline_ms(m: usize, k: usize, n: usize, device: &Device) -> f64 {
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    // cuBLAS achieves ~70% of FP32 peak on these shapes.
    let compute_ms = flops / (device.peak_fp32_gflops() * 0.7) / 1e6;
    let bytes = 4.0 * (m as f64 * k as f64 + k as f64 * n as f64 + m as f64 * n as f64);
    let mem_ms = bytes / (device.dram_bw_gbps * 1e9) * 1e3;
    compute_ms.max(mem_ms) + 0.004 // launch overhead
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = DenseMatrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]).unwrap();
        assert_eq!(relu(&x).as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_grad_masks() {
        let z = DenseMatrix::from_vec(1, 3, vec![-1.0, 1.0, 0.0]).unwrap();
        let g = DenseMatrix::from_vec(1, 3, vec![5.0, 5.0, 5.0]).unwrap();
        assert_eq!(relu_grad(&z, &g).as_slice(), &[0.0, 5.0, 0.0]);
    }

    #[test]
    fn log_softmax_rows_normalize() {
        let x = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let ls = log_softmax(&x);
        for r in 0..2 {
            let sum: f32 = ls.row(r).iter().map(|v| v.exp()).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn nll_of_perfect_prediction_is_small() {
        let mut x = DenseMatrix::zeros(2, 3);
        x.set(0, 1, 20.0);
        x.set(1, 2, 20.0);
        let loss = nll_loss(&log_softmax(&x), &[1, 2]);
        assert!(loss < 1e-3, "loss={loss}");
    }

    #[test]
    fn softmax_gradient_matches_finite_difference() {
        let logits = DenseMatrix::from_vec(2, 3, vec![0.3, -0.2, 0.5, 1.0, 0.0, -1.0]).unwrap();
        let labels = vec![2usize, 0];
        let grad = softmax_minus_onehot(&logits, &labels);
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut plus = logits.clone();
                plus.set(r, c, logits.get(r, c) + eps);
                let mut minus = logits.clone();
                minus.set(r, c, logits.get(r, c) - eps);
                let fd = (nll_loss(&log_softmax(&plus), &labels)
                    - nll_loss(&log_softmax(&minus), &labels))
                    / (2.0 * eps);
                assert!(
                    (fd - grad.get(r, c)).abs() < 2e-3,
                    "({r},{c}): fd={fd} grad={}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn normalized_adjacency_rows_behave() {
        use dtc_formats::gen::community;
        let a = community(64, 64, 4, 4.0, 0.85, 77);
        let norm = normalize_adjacency(&a);
        // Self-loops present, all values in (0, 1].
        for i in 0..64 {
            let (cols, vals) = norm.row_entries(i);
            assert!(cols.contains(&(i as u32)), "row {i} missing self-loop");
            for &v in vals {
                assert!(v > 0.0 && v <= 1.0);
            }
        }
        // Symmetric normalization of a symmetric structure keeps spectral
        // radius <= 1: repeated multiplication by Â must not blow up.
        let x = DenseMatrix::ones(64, 1);
        let mut h = x;
        for _ in 0..20 {
            h = norm.spmm_reference(&h).unwrap();
        }
        let max = h.as_slice().iter().cloned().fold(0.0f32, f32::max);
        assert!(max.is_finite() && max <= 1.5, "diverged: {max}");
    }

    #[test]
    #[should_panic(expected = "square")]
    fn normalize_rejects_rectangular() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        normalize_adjacency(&a);
    }

    #[test]
    fn gemm_roofline_monotone() {
        let d = Device::rtx4090();
        assert!(gemm_roofline_ms(1024, 1024, 1024, &d) > gemm_roofline_ms(256, 256, 256, &d));
    }
}
