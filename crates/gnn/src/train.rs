//! Training loop with simulated-GPU time accounting (Fig 16).

use crate::backend::GnnBackend;
use crate::gcn::Gcn;
use crate::ops::gemm_roofline_ms;
use dtc_formats::{CsrMatrix, DenseMatrix};
use dtc_sim::Device;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Training configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Training epochs (Fig 16 uses 200).
    pub epochs: usize,
    /// Hidden dimension (Fig 16 uses 128 and 256).
    pub hidden: usize,
    /// Input feature dimension.
    pub features: usize,
    /// Number of classes.
    pub classes: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Seed for features/labels/weights.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 200, hidden: 128, features: 64, classes: 8, lr: 0.1, seed: 42 }
    }
}

/// Result of a training run: real learning curve + simulated GPU time.
#[derive(Debug, Clone)]
pub struct TrainingReport {
    /// Backend name.
    pub backend: String,
    /// Loss per recorded epoch (actual CPU training).
    pub losses: Vec<f32>,
    /// Final training accuracy.
    pub accuracy: f64,
    /// Simulated one-time setup cost (format conversion etc.), ms.
    pub setup_ms: f64,
    /// Simulated time of one epoch, ms.
    pub epoch_ms: f64,
    /// Simulated total (setup + epochs × epoch), ms — the Fig 16 quantity.
    pub total_ms: f64,
}

/// Trains the GCN with real gradient descent while accounting simulated
/// GPU time per epoch through the backend.
///
/// The per-epoch sparse workload is 2 forward SpMMs (`N = features`,
/// `N = hidden`) and 1 transposed SpMM (`N = hidden`); the dense work (4
/// GEMMs + activations) is identical across backends and charged by the
/// shared roofline model.
///
/// # Panics
///
/// Panics if the graph is empty.
pub fn train_gcn(
    graph: &CsrMatrix,
    backend: &dyn GnnBackend,
    config: &TrainConfig,
    device: &Device,
) -> TrainingReport {
    assert!(graph.rows() > 0, "graph must be non-empty");
    let n = graph.rows();
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Synthetic node features and community-correlated labels.
    let x = DenseMatrix::from_fn(n, config.features, |_, _| rng.random_range(-0.5f32..0.5));
    let labels: Vec<usize> = (0..n)
        .map(|r| (r * config.classes) / n.max(1))
        .map(|c| c.min(config.classes - 1))
        .collect();

    // Simulated per-epoch time.
    let spmm_ms = backend.spmm_ms(false, config.features, device)
        + backend.spmm_ms(false, config.hidden, device)
        + backend.spmm_ms(true, config.hidden, device);
    let dense_ms = gemm_roofline_ms(n, config.features, config.hidden, device)
        + gemm_roofline_ms(n, config.hidden, config.classes, device)
        // backward GEMMs: dW1, dW2, dAH1
        + gemm_roofline_ms(config.features, n, config.hidden, device)
        + gemm_roofline_ms(config.hidden, n, config.classes, device)
        + gemm_roofline_ms(n, config.classes, config.hidden, device);
    let epoch_ms = spmm_ms + dense_ms + backend.per_epoch_overhead_ms();
    let setup_ms = backend.one_time_ms(device);

    // Real training (few dozen epochs are enough for the learning-curve
    // check; the time accounting above already covers `config.epochs`).
    let real_epochs = config.epochs.min(40);
    let mut gcn = Gcn::new(config.features, config.hidden.min(32), config.classes, config.seed);
    let mut losses = Vec::with_capacity(real_epochs);
    for _ in 0..real_epochs {
        let (loss, grads) =
            gcn.loss_and_grads(backend, &x, &labels).expect("shapes are consistent");
        gcn.apply(&grads, config.lr);
        losses.push(loss);
    }
    let preds = gcn.predict(backend, &x).expect("shapes are consistent");
    let correct = preds.iter().zip(&labels).filter(|(p, y)| p == y).count();

    TrainingReport {
        backend: backend.name().to_owned(),
        losses,
        accuracy: correct as f64 / n as f64,
        setup_ms,
        epoch_ms,
        total_ms: setup_ms + config.epochs as f64 * epoch_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{DglGnnBackend, DtcGnnBackend, PygGatherScatterBackend};
    use dtc_formats::gen::community;

    fn small_config() -> TrainConfig {
        TrainConfig { epochs: 10, hidden: 16, features: 8, classes: 4, lr: 0.1, seed: 5 }
    }

    #[test]
    fn training_reduces_loss() {
        let g = community(96, 96, 4, 5.0, 0.85, 21);
        let backend = DglGnnBackend::new(&g);
        let r = train_gcn(&g, &backend, &small_config(), &Device::rtx4090());
        assert!(r.losses.last().unwrap() < r.losses.first().unwrap());
        assert!(r.accuracy > 0.2);
    }

    #[test]
    fn dtc_total_time_beats_pyg() {
        let g = community(768, 768, 24, 10.0, 0.85, 22);
        let device = Device::rtx4090();
        let cfg = TrainConfig { epochs: 200, ..small_config() };
        let dtc = train_gcn(&g, &DtcGnnBackend::new(&g), &cfg, &device);
        let pyg = train_gcn(&g, &PygGatherScatterBackend::new(&g), &cfg, &device);
        assert!(dtc.total_ms < pyg.total_ms, "dtc={} pyg={}", dtc.total_ms, pyg.total_ms);
    }

    #[test]
    fn report_time_composition() {
        let g = community(96, 96, 4, 5.0, 0.85, 23);
        let backend = DtcGnnBackend::new(&g);
        let cfg = small_config();
        let r = train_gcn(&g, &backend, &cfg, &Device::rtx4090());
        assert!((r.total_ms - (r.setup_ms + cfg.epochs as f64 * r.epoch_ms)).abs() < 1e-9);
        assert!(r.epoch_ms > 0.0);
    }
}
