//! Per-worker scratch memory: reset-not-free buffer pools.
//!
//! Every sharded hot loop in the workspace used to allocate per work item
//! (a `Vec` of touched windows per thread block, a set-indexed tag table
//! per L2 replay shard, a column-dedup buffer per row window). A
//! [`ScratchArena`] turns those into leases: `take` hands back a cleared
//! buffer whose capacity survives from earlier items, `recycle` returns it
//! to the pool. Steady-state shard execution therefore performs **zero**
//! heap allocations — the property is pinned by a counting-allocator test
//! (`tests/steady_state_alloc.rs`), not by inspection.
//!
//! Arenas live in a process-wide pool keyed by worker index, so capacity
//! built up by one `par_map_collect` invocation is reused by the next.
//! Workers acquire a slot with `try_lock` and scan forward on contention;
//! if the whole pool is busy (deep nesting, external threads) they fall
//! back to a fresh local arena rather than block — correctness never
//! depends on which arena a worker gets, only steady-state allocation
//! behaviour does.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Typed pools of reusable scratch buffers. See the module docs.
///
/// All `take`-style methods return a **cleared** buffer (length 0, or the
/// requested shape for [`ScratchArena::u64_table`]) that retains whatever
/// capacity it accumulated in earlier leases. Callers return buffers with
/// the matching `recycle_*` method; dropping one instead is safe but
/// forfeits its capacity.
#[derive(Debug, Default)]
pub struct ScratchArena {
    usize_bufs: Vec<Vec<usize>>,
    u32_bufs: Vec<Vec<u32>>,
    u64_bufs: Vec<Vec<u64>>,
    f64_bufs: Vec<Vec<f64>>,
    pair_bufs: Vec<Vec<(usize, u64)>>,
    u64_tables: Vec<Vec<Vec<u64>>>,
    /// Bytes currently retained by this arena's pools (capacity, not len).
    retained_bytes: usize,
}

/// Total bytes retained across every pooled arena, and the peak of that
/// total — exported as the `par.arena.bytes_peak` gauge.
static TOTAL_RETAINED: AtomicU64 = AtomicU64::new(0);
static PEAK_RETAINED: AtomicU64 = AtomicU64::new(0);

fn telemetry_handles() -> (&'static dtc_telemetry::Counter, &'static dtc_telemetry::Gauge) {
    static HANDLES: OnceLock<(&'static dtc_telemetry::Counter, &'static dtc_telemetry::Gauge)> =
        OnceLock::new();
    *HANDLES.get_or_init(|| {
        (dtc_telemetry::counter("par.arena.resets"), dtc_telemetry::gauge("par.arena.bytes_peak"))
    })
}

macro_rules! scalar_pool {
    ($take:ident, $recycle:ident, $field:ident, $ty:ty) => {
        /// Leases a cleared buffer from the pool (capacity retained).
        pub fn $take(&mut self) -> Vec<$ty> {
            match self.$field.pop() {
                Some(mut v) => {
                    self.note_released(v.capacity() * std::mem::size_of::<$ty>());
                    v.clear();
                    v
                }
                None => Vec::new(),
            }
        }

        /// Returns a leased buffer to the pool for the next work item.
        pub fn $recycle(&mut self, v: Vec<$ty>) {
            self.note_retained(v.capacity() * std::mem::size_of::<$ty>());
            self.$field.push(v);
        }
    };
}

impl ScratchArena {
    /// An empty arena holding no buffers.
    pub fn new() -> Self {
        Self::default()
    }

    scalar_pool!(usize_buf, recycle_usize, usize_bufs, usize);
    scalar_pool!(u32_buf, recycle_u32, u32_bufs, u32);
    scalar_pool!(u64_buf, recycle_u64, u64_bufs, u64);
    scalar_pool!(f64_buf, recycle_f64, f64_bufs, f64);
    scalar_pool!(pair_buf, recycle_pair, pair_bufs, (usize, u64));

    /// Leases a table of `len` cleared `Vec<u64>` rows (an L2 replay shard's
    /// per-set tag lists). Row capacities are retained across leases when
    /// the requested `len` matches; a longer request extends with empty
    /// (allocation-free) rows.
    pub fn u64_table(&mut self, len: usize) -> Vec<Vec<u64>> {
        let mut t = match self.u64_tables.pop() {
            Some(t) => {
                self.note_released(table_bytes(&t));
                t
            }
            None => Vec::new(),
        };
        t.truncate(len);
        for row in &mut t {
            row.clear();
        }
        t.resize_with(len, Vec::new);
        t
    }

    /// Returns a table leased with [`ScratchArena::u64_table`].
    pub fn recycle_u64_table(&mut self, t: Vec<Vec<u64>>) {
        self.note_retained(table_bytes(&t));
        self.u64_tables.push(t);
    }

    /// Bytes of buffer capacity currently parked in this arena.
    pub fn retained_bytes(&self) -> usize {
        self.retained_bytes
    }

    fn note_retained(&mut self, bytes: usize) {
        self.retained_bytes += bytes;
        let total = TOTAL_RETAINED.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
        let peak = PEAK_RETAINED.fetch_max(total, Ordering::Relaxed).max(total);
        telemetry_handles().1.set(peak as f64);
    }

    fn note_released(&mut self, bytes: usize) {
        self.retained_bytes -= bytes;
        TOTAL_RETAINED.fetch_sub(bytes as u64, Ordering::Relaxed);
    }
}

// `&Vec` on purpose: the *outer* capacity is part of the retained bytes.
#[allow(clippy::ptr_arg)]
fn table_bytes(t: &Vec<Vec<u64>>) -> usize {
    t.capacity() * std::mem::size_of::<Vec<u64>>()
        + t.iter().map(|row| row.capacity() * 8).sum::<usize>()
}

impl Drop for ScratchArena {
    fn drop(&mut self) {
        // A dropped arena's capacity leaves the process-wide total (pooled
        // arenas are never dropped; this covers contention fallbacks).
        TOTAL_RETAINED.fetch_sub(self.retained_bytes as u64, Ordering::Relaxed);
    }
}

/// Pool slots. Far above any realistic worker count; workers hash in by
/// index so steady-state runs re-acquire "their" arena every invocation.
const POOL_SLOTS: usize = 64;

fn pool() -> &'static [Mutex<ScratchArena>; POOL_SLOTS] {
    static POOL: OnceLock<[Mutex<ScratchArena>; POOL_SLOTS]> = OnceLock::new();
    POOL.get_or_init(|| std::array::from_fn(|_| Mutex::new(ScratchArena::new())))
}

/// Runs `f` with the pooled arena preferred by `worker`, scanning forward
/// under contention and falling back to a local arena if every slot is
/// busy (never blocks, so nested parallel sections cannot deadlock).
pub(crate) fn with_worker_arena<R>(worker: usize, f: impl FnOnce(&mut ScratchArena) -> R) -> R {
    let (resets, _) = telemetry_handles();
    resets.incr();
    let pool = pool();
    let start = worker % POOL_SLOTS;
    for k in 0..POOL_SLOTS {
        if let Ok(mut arena) = pool[(start + k) % POOL_SLOTS].try_lock() {
            return f(&mut arena);
        }
    }
    f(&mut ScratchArena::new())
}

/// Runs `f` with a pooled [`ScratchArena`] on the calling thread.
///
/// For serial code paths that share a lowering routine with sharded
/// execution (e.g. `l2_shard_counts` replaying shards one by one): the same
/// lease discipline applies, so the serial path is as allocation-free as
/// the parallel one.
pub fn with_arena<R>(f: impl FnOnce(&mut ScratchArena) -> R) -> R {
    with_worker_arena(0, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_keep_capacity_across_leases() {
        let mut arena = ScratchArena::new();
        let mut v = arena.usize_buf();
        v.extend(0..1000);
        let cap = v.capacity();
        arena.recycle_usize(v);
        let v2 = arena.usize_buf();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap, "recycled capacity must survive");
        arena.recycle_usize(v2);
    }

    #[test]
    fn table_reshapes_without_losing_rows() {
        let mut arena = ScratchArena::new();
        let mut t = arena.u64_table(8);
        for row in &mut t {
            row.extend(0..64);
        }
        let caps: Vec<usize> = t.iter().map(Vec::capacity).collect();
        arena.recycle_u64_table(t);
        let t2 = arena.u64_table(8);
        assert!(t2.iter().all(Vec::is_empty));
        for (row, cap) in t2.iter().zip(&caps) {
            assert_eq!(row.capacity(), *cap);
        }
        arena.recycle_u64_table(t2);
        // Shrinking and re-growing stays consistent.
        let t3 = arena.u64_table(3);
        assert_eq!(t3.len(), 3);
        arena.recycle_u64_table(t3);
        let t4 = arena.u64_table(10);
        assert_eq!(t4.len(), 10);
        assert!(t4.iter().all(Vec::is_empty));
    }

    #[test]
    fn retained_bytes_balance() {
        let mut arena = ScratchArena::new();
        let mut v = arena.u64_buf();
        v.extend(0..100u64);
        let bytes = v.capacity() * 8;
        arena.recycle_u64(v);
        assert_eq!(arena.retained_bytes(), bytes);
        let _ = arena.u64_buf();
        assert_eq!(arena.retained_bytes(), 0);
    }

    #[test]
    fn with_arena_reuses_pool_slot() {
        with_arena(|arena| {
            let mut v = arena.f64_buf();
            v.resize(4096, 0.0);
            arena.recycle_f64(v);
        });
        let cap = with_arena(|arena| {
            let v = arena.f64_buf();
            let cap = v.capacity();
            arena.recycle_f64(v);
            cap
        });
        assert!(cap >= 4096, "pool slot 0 must hand back the grown buffer");
    }
}
