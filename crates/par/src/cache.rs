//! The lossy locality-preferential front tier shared by every hot lookup
//! path in the workspace.
//!
//! Every hot keyed lookup in the stack — the ME-TCF conversion cache, the
//! per-engine trace cache, the duration-class interning table, the serving
//! layer's engine pool — is an exact bucketed map: hash, probe, walk an
//! equality chain. Correct, but branchy, and at the 99%+ hit rates the
//! serving layer measures, almost every lookup pays the full chain for a
//! key it saw moments ago. [`FrontTier`] is the fix: a fixed-capacity,
//! power-of-two, direct-mapped, overwrite-on-collision table — no probing,
//! no buckets, no growth — sitting in front of the exact store.
//!
//! The invariant that makes lossy safe: **every front-tier hit is verified
//! against the stored full key material** (`K: PartialEq`, where `K` is the
//! complete identity — `KeyMaterial`, a full `PoolKey`, the bitwise work
//! fields of a duration class — never just a hash). A slot holding a
//! different key is a miss, counted as a `verify_reject`, and the lookup
//! falls through to the exact tier, which refills the slot. Losing an entry
//! to an overwrite therefore costs one exact-tier walk, never a wrong
//! answer: the front tier is a pure accelerator, and results are bitwise
//! identical with it on, off, or thrashing.
//!
//! Both tiers are instrumented in the process-wide `dtc-telemetry`
//! registry under `cache.<name>.{l1_hits,l1_misses,l1_evictions,
//! verify_rejects}`, plus a sampled `cache.<name>.ns_per_lookup` gauge
//! (every 512th probe is timed). [`set_front_tier_enabled`] is the
//! process-wide kill switch benchmarks and differential tests use to
//! compare against the exact-only path.

use dtc_telemetry::{Counter, Gauge};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Process-wide front-tier switch (`true` at startup). With the switch off
/// every [`FrontTier::get`] misses without touching counters and every
/// [`FrontTier::insert`] is a no-op, so the exact tier serves alone —
/// the reference side of the bitwise-equivalence tests and benches.
static FRONT_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables every front tier in the process.
pub fn set_front_tier_enabled(on: bool) {
    FRONT_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether front tiers are currently enabled.
#[inline]
pub fn front_tier_enabled() -> bool {
    FRONT_ENABLED.load(Ordering::Relaxed)
}

/// Slot budget used by [`FrontTier::l3_sized`]: tables are sized to sit
/// comfortably inside one slice of a desktop L3 (a few MiB) — large enough
/// for every steady-state working set we serve, small enough that a probe
/// stays cache-resident under churn.
pub const DEFAULT_BUDGET_BYTES: usize = 1 << 20;

/// Largest power-of-two slot count whose table fits `budget_bytes`
/// (at least 1).
pub fn capacity_for_budget<K, V>(budget_bytes: usize) -> usize {
    let slot = std::mem::size_of::<Option<(K, V)>>().max(1);
    let n = (budget_bytes / slot).max(1);
    if n.is_power_of_two() {
        n
    } else {
        (n.next_power_of_two()) >> 1
    }
}

/// The per-tier telemetry handles, registered once per cache name (all
/// instances with the same name share the same counters, so per-engine
/// tiers aggregate naturally).
#[derive(Clone, Copy)]
struct TierStats {
    l1_hits: &'static Counter,
    l1_misses: &'static Counter,
    l1_evictions: &'static Counter,
    verify_rejects: &'static Counter,
    ns_per_lookup: &'static Gauge,
}

impl TierStats {
    fn for_name(name: &str) -> Self {
        TierStats {
            l1_hits: dtc_telemetry::counter(&format!("cache.{name}.l1_hits")),
            l1_misses: dtc_telemetry::counter(&format!("cache.{name}.l1_misses")),
            l1_evictions: dtc_telemetry::counter(&format!("cache.{name}.l1_evictions")),
            verify_rejects: dtc_telemetry::counter(&format!("cache.{name}.verify_rejects")),
            ns_per_lookup: dtc_telemetry::gauge(&format!("cache.{name}.ns_per_lookup")),
        }
    }
}

/// Every 512th probe is wall-clock timed into the `ns_per_lookup` gauge.
const SAMPLE_MASK: u64 = 511;

/// The lossy front tier: direct-mapped, overwrite-on-collision, verified.
///
/// Callers wrap it in whatever synchronization the exact tier already has
/// (a `Mutex` for the shared caches, `&mut self` for the interning table);
/// the tier itself is plain data, so the lock that protects the exact
/// store protects the front slots too and the two can never disagree.
pub struct FrontTier<K, V> {
    slots: Box<[Option<(K, V)>]>,
    mask: u64,
    stats: TierStats,
    lookups: u64,
}

impl<K, V> std::fmt::Debug for FrontTier<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontTier")
            .field("capacity", &self.slots.len())
            .field("lookups", &self.lookups)
            .finish()
    }
}

impl<K: Clone, V: Clone> Clone for FrontTier<K, V> {
    fn clone(&self) -> Self {
        FrontTier {
            slots: self.slots.clone(),
            mask: self.mask,
            stats: self.stats,
            lookups: self.lookups,
        }
    }
}

impl<K: PartialEq, V: Clone> FrontTier<K, V> {
    /// Creates a tier with `capacity` slots (rounded up to a power of two,
    /// at least 1), registering its counters under `cache.<name>.*`.
    pub fn new(name: &str, capacity: usize) -> Self {
        let capacity = capacity.max(1).next_power_of_two();
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        FrontTier {
            slots: slots.into_boxed_slice(),
            mask: (capacity - 1) as u64,
            stats: TierStats::for_name(name),
            lookups: 0,
        }
    }

    /// Creates a tier sized by [`DEFAULT_BUDGET_BYTES`] for this `(K, V)`.
    pub fn l3_sized(name: &str) -> Self {
        Self::new(name, capacity_for_budget::<K, V>(DEFAULT_BUDGET_BYTES))
    }

    /// Slot count (a power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Slot index for a hash. The high half is folded down first: FNV-1a's
    /// multiply only carries entropy upward, so a caller hashing words with
    /// all-zero low bits (e.g. `f64` bit patterns of small counts) would
    /// otherwise map every key to the same low-bits slot.
    #[inline]
    fn slot_of(&self, hash: u64) -> usize {
        ((hash ^ (hash >> 32)) & self.mask) as usize
    }

    /// One branchless probe: the slot is `hash & mask`, and a hit requires
    /// the stored **full key** to equal `key`. An occupied slot holding a
    /// different key counts a `verify_reject` (the crafted-collision /
    /// overwrite case); an empty slot is a plain miss. Either way the
    /// caller falls through to the exact tier.
    pub fn get(&mut self, hash: u64, key: &K) -> Option<V> {
        if !front_tier_enabled() {
            return None;
        }
        self.lookups += 1;
        let sampled = self.lookups & SAMPLE_MASK == 0;
        let t0 = if sampled { Some(Instant::now()) } else { None };
        let out = match &self.slots[self.slot_of(hash)] {
            Some((k, v)) if k == key => {
                self.stats.l1_hits.incr();
                Some(v.clone())
            }
            Some(_) => {
                self.stats.verify_rejects.incr();
                self.stats.l1_misses.incr();
                None
            }
            None => {
                self.stats.l1_misses.incr();
                None
            }
        };
        if let Some(t0) = t0 {
            self.stats.ns_per_lookup.set(t0.elapsed().as_nanos() as f64);
        }
        out
    }

    /// Refills the slot for `hash`, overwriting whatever was there (the
    /// lossy discipline: no probing, no chains). Overwriting a *different*
    /// resident key counts an `l1_eviction`; rewriting the same key does
    /// not.
    pub fn insert(&mut self, hash: u64, key: K, value: V) {
        if !front_tier_enabled() {
            return;
        }
        let slot = &mut self.slots[self.slot_of(hash)];
        if let Some((k, _)) = slot {
            if *k != key {
                self.stats.l1_evictions.incr();
            }
        }
        *slot = Some((key, value));
    }

    /// Drops the entry for `key` if it is the one resident in `hash`'s
    /// slot. Exact-tier evictions call this so the front tier never serves
    /// an entry the backing store has dropped (correct either way, but the
    /// backing store's eviction policy would be toothless otherwise).
    pub fn invalidate(&mut self, hash: u64, key: &K) {
        let slot = &mut self.slots[self.slot_of(hash)];
        if matches!(slot, Some((k, _)) if k == key) {
            *slot = None;
        }
    }

    /// Empties every slot (counters keep running).
    pub fn clear(&mut self) {
        for slot in self.slots.iter_mut() {
            *slot = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests here either toggle the process-wide switch or assert on hit
    /// counters, so they serialize on one lock (cargo runs tests of one
    /// binary concurrently).
    static SWITCH: Mutex<()> = Mutex::new(());

    fn counters(name: &str) -> [u64; 4] {
        [
            dtc_telemetry::counter(&format!("cache.{name}.l1_hits")).get(),
            dtc_telemetry::counter(&format!("cache.{name}.l1_misses")).get(),
            dtc_telemetry::counter(&format!("cache.{name}.l1_evictions")).get(),
            dtc_telemetry::counter(&format!("cache.{name}.verify_rejects")).get(),
        ]
    }

    #[test]
    fn hit_requires_full_key_equality() {
        let _g = SWITCH.lock().unwrap();
        let mut t: FrontTier<(u64, u64), u32> = FrontTier::new("test-basic", 8);
        t.insert(3, (10, 11), 42);
        assert_eq!(t.get(3, &(10, 11)), Some(42));
        assert_eq!(t.get(3, &(10, 12)), None, "same slot, different key: must reject");
        // The reject did not disturb the resident entry.
        assert_eq!(t.get(3, &(10, 11)), Some(42));
    }

    #[test]
    fn crafted_same_slot_collision_never_cross_serves() {
        let _g = SWITCH.lock().unwrap();
        // Two keys engineered onto the same slot: hashes differ only above
        // the mask. The tier must never serve one for the other, and each
        // mismatch must be counted as a verify reject.
        let mut t: FrontTier<u64, &'static str> = FrontTier::new("test-collide", 16);
        let (ha, hb) = (0x5, 0x5 + 16); // same slot under mask 15
        let [h0, m0, e0, r0] = counters("test-collide");
        t.insert(ha, 0xaaaa, "a");
        assert_eq!(t.get(hb, &0xbbbb), None, "colliding probe must verify-reject");
        t.insert(hb, 0xbbbb, "b"); // overwrites a (lossy eviction)
        assert_eq!(t.get(ha, &0xaaaa), None, "evicted key must miss, not serve b");
        assert_eq!(t.get(hb, &0xbbbb), Some("b"));
        let [h1, m1, e1, r1] = counters("test-collide");
        assert_eq!(h1 - h0, 1);
        assert_eq!(m1 - m0, 2);
        assert_eq!(e1 - e0, 1, "overwriting a foreign key is an eviction");
        assert_eq!(r1 - r0, 2, "both cross-key probes are verify rejects");
    }

    #[test]
    fn thrash_degrades_to_misses_not_wrong_answers() {
        let _g = SWITCH.lock().unwrap();
        // Working set 4x the capacity: almost everything is overwritten
        // before it is re-probed. Every probe must be a miss or a correct
        // hit — never a foreign value.
        let mut t: FrontTier<u64, u64> = FrontTier::new("test-thrash", 16);
        let [_, m0, e0, _] = counters("test-thrash");
        let mut hits = 0u32;
        for round in 0..4u64 {
            for k in 0..64u64 {
                match t.get(k, &k) {
                    Some(v) => {
                        assert_eq!(v, k * 2, "front tier served a foreign value");
                        hits += 1;
                    }
                    None => t.insert(k, k, k * 2),
                }
            }
            let _ = round;
        }
        let [_, m1, e1, _] = counters("test-thrash");
        assert!(m1 - m0 > 64, "thrash must show up as misses (fallback engaged)");
        assert!(e1 - e0 > 0, "overwrite-on-collision must be evicting");
        assert!(hits < 4 * 64, "a 4x-oversubscribed tier cannot hit everything");
    }

    #[test]
    fn steady_state_repeated_key_always_hits() {
        let _g = SWITCH.lock().unwrap();
        let mut t: FrontTier<u64, u64> = FrontTier::new("test-steady", 64);
        t.insert(7, 7, 70);
        for _ in 0..1000 {
            assert_eq!(t.get(7, &7), Some(70));
        }
    }

    #[test]
    fn disabled_tier_is_inert() {
        let _g = SWITCH.lock().unwrap();
        let mut t: FrontTier<u64, u64> = FrontTier::new("test-disabled", 8);
        t.insert(1, 1, 10);
        set_front_tier_enabled(false);
        let [h0, m0, ..] = counters("test-disabled");
        assert_eq!(t.get(1, &1), None, "disabled tier must miss");
        t.insert(2, 2, 20);
        set_front_tier_enabled(true);
        let [h1, m1, ..] = counters("test-disabled");
        assert_eq!([h1, m1], [h0, m0], "disabled probes must not count");
        assert_eq!(t.get(1, &1), Some(10), "pre-disable entry survives");
        assert_eq!(t.get(2, &2), None, "disabled insert must not land");
    }

    #[test]
    fn invalidate_only_drops_the_matching_key() {
        let _g = SWITCH.lock().unwrap();
        let mut t: FrontTier<u64, u64> = FrontTier::new("test-invalidate", 8);
        t.insert(5, 50, 500);
        t.invalidate(5, &51); // wrong key: no-op
        assert_eq!(t.get(5, &50), Some(500));
        t.invalidate(5, &50);
        assert_eq!(t.get(5, &50), None);
    }

    #[test]
    fn capacity_rounds_to_power_of_two_and_budget_fits() {
        let t: FrontTier<u64, u64> = FrontTier::new("test-cap", 100);
        assert_eq!(t.capacity(), 128);
        let cap = capacity_for_budget::<u64, u64>(1 << 12);
        assert!(cap.is_power_of_two());
        assert!(cap * std::mem::size_of::<Option<(u64, u64)>>() <= 1 << 12);
        assert_eq!(capacity_for_budget::<[u64; 1024], u64>(8), 1, "never zero slots");
    }
}
