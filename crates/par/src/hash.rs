//! The workspace's one FNV-1a implementation.
//!
//! Every keyed structure in the stack — the ME-TCF conversion cache, the
//! engine-pool primary hash, `EngineConfig`/`Device` fingerprints, the
//! duration-class interning key, the LSH band buckets — hashes with FNV-1a
//! over 64-bit words (or single bytes widened to words). Before this module
//! each crate carried its own copy of the same two constants and fold loop;
//! now they all share one, and the digests they persist as cache keys are
//! pinned byte-identical by the `hash_pins` test in `dtc-core`.
//!
//! Three entry points:
//!
//! - [`fnv1a`] — fold a `u64` stream from a caller-chosen seed (the offset
//!   basis is just the default seed);
//! - [`Fnv1a`] — the incremental form for call sites that interleave field
//!   kinds (e.g. name bytes then numeric fields in `Device::fingerprint`);
//! - [`fnv1a_slice`] — the chunked-parallel form for long arrays: fixed
//!   64 Ki-element chunks hashed independently on the worker pool and the
//!   per-chunk digests combined in chunk order, so the digest is identical
//!   for any `DTC_THREADS`.

/// The FNV-1a 64-bit offset basis (the default seed).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// Incremental FNV-1a over 64-bit words.
///
/// `word` is one xor-multiply fold step; `word_bytes` folds the eight
/// little-endian bytes of a word individually (the byte-granular mixing
/// the interning key uses — better diffusion for streams of small-magnitude
/// float bit patterns).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Starts from the standard offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Starts from a caller-chosen seed (decorrelated digest streams).
    pub fn with_seed(seed: u64) -> Self {
        Fnv1a(seed)
    }

    /// Folds one 64-bit word.
    #[inline]
    pub fn word(&mut self, x: u64) {
        self.0 ^= x;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Folds the eight little-endian bytes of `x`, one fold step per byte.
    #[inline]
    pub fn word_bytes(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.word(b as u64);
        }
    }

    /// The digest so far.
    #[inline]
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// FNV-1a over a `u64` stream, from a caller-chosen seed.
#[inline]
pub fn fnv1a(seed: u64, stream: impl Iterator<Item = u64>) -> u64 {
    let mut h = Fnv1a::with_seed(seed);
    for x in stream {
        h.word(x);
    }
    h.finish()
}

/// Chunked-parallel FNV-1a over a projected slice: fixed 64 Ki-element
/// chunks are hashed independently (fanned over the `dtc-par` workers) and
/// the per-chunk digests combined in chunk order. The chunk size is a
/// constant — never the thread count — so the digest is identical for any
/// `DTC_THREADS`. Keying a large matrix was two full serial passes before;
/// on big inputs those passes showed up in the build critical path.
pub fn fnv1a_slice<T: Sync>(seed: u64, data: &[T], proj: impl Fn(&T) -> u64 + Sync) -> u64 {
    const CHUNK: usize = 64 * 1024;
    if data.len() <= CHUNK {
        return fnv1a(seed, data.iter().map(&proj));
    }
    let digests = crate::par_map_collect(data.len().div_ceil(CHUNK), |i| {
        let lo = i * CHUNK;
        let hi = (lo + CHUNK).min(data.len());
        fnv1a(seed, data[lo..hi].iter().map(&proj))
    });
    fnv1a(seed.rotate_left(17), digests.into_iter())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference fold loop every migrated call site used to inline.
    fn reference(seed: u64, xs: &[u64]) -> u64 {
        let mut h = seed;
        for &x in xs {
            h ^= x;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    #[test]
    fn word_stream_matches_reference_and_goldens() {
        assert_eq!(fnv1a(FNV_OFFSET, [].into_iter()), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(FNV_OFFSET, [1, 2, 3].into_iter()), 0xb1ce_bb18_672c_f5ab);
        assert_eq!(fnv1a(0x9e37_79b9_7f4a_7c15, [42].into_iter()), 0x8007_c633_4b91_1f0d);
        for seed in [FNV_OFFSET, 0, u64::MAX, 0x1234] {
            let xs = [0u64, 1, u64::MAX, 0xdead_beef, 7];
            assert_eq!(fnv1a(seed, xs.iter().copied()), reference(seed, &xs));
        }
    }

    #[test]
    fn byte_granular_fold_matches_golden() {
        let mut h = Fnv1a::new();
        h.word_bytes(0x0123_4567_89ab_cdef);
        assert_eq!(h.finish(), 0xf0dc_8333_4776_1c55);
    }

    #[test]
    fn incremental_equals_batch() {
        let xs = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let mut h = Fnv1a::with_seed(0xabcd);
        for &x in &xs {
            h.word(x);
        }
        assert_eq!(h.finish(), fnv1a(0xabcd, xs.iter().copied()));
    }

    #[test]
    fn slice_digest_is_thread_count_invariant() {
        // Long enough to take the chunked-parallel path (> 64 Ki elements).
        let data: Vec<u32> = (0..200_000u32).map(|i| i.wrapping_mul(2_654_435_761)).collect();
        let serial = {
            // The chunk combine must be reproducible by hand: per-chunk
            // digests in order under the rotated seed.
            let chunks: Vec<u64> = data
                .chunks(64 * 1024)
                .map(|c| fnv1a(0x5eed, c.iter().map(|&x| x as u64)))
                .collect();
            fnv1a(0x5eed_u64.rotate_left(17), chunks.into_iter())
        };
        for threads in [1, 2, 4] {
            crate::set_threads(Some(threads));
            assert_eq!(fnv1a_slice(0x5eed, &data, |&x| x as u64), serial, "T={threads}");
        }
        crate::set_threads(None);
    }

    #[test]
    fn short_slice_takes_the_serial_path() {
        let data = [7u64, 8, 9];
        assert_eq!(fnv1a_slice(0x11, &data, |&x| x), fnv1a(0x11, data.iter().copied()));
    }
}
