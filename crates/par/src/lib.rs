//! Deterministic scoped parallelism for the DTC-SpMM workspace.
//!
//! DTC-SpMM's GPU kernels decompose work into independent row windows (one
//! thread block per 16-row window); this crate mirrors that decomposition on
//! the host so exact execution, trace lowering, conversion, and simulation
//! fan out across CPU cores **without changing any result bit**. The rules
//! that make that hold:
//!
//! - **Slot-indexed results.** [`par_map_collect`] (and the planned variant
//!   [`par_map_collect_plan`]) write each result `f(i)` into slot `i` of one
//!   pre-sized output buffer. Every index is evaluated exactly once by the
//!   same per-unit code path as the serial loop, so the collected `Vec` is
//!   bit-identical to `(0..n).map(f).collect()` **regardless of which worker
//!   computed which index or in what order** — the steal schedule cannot
//!   influence results, only timing.
//! - **Disjoint outputs.** [`par_chunks_mut`] hands each work unit a
//!   disjoint `&mut` chunk of one output buffer (e.g. 16 output rows of C
//!   per window), so there is no accumulation across threads at all.
//! - **Weighted shards + work stealing.** A [`ShardPlan`] splits the index
//!   space into ~4 chunks per worker at nnz-weighted cut points, groups the
//!   chunks into equal-weight contiguous bands (one deque per worker), and
//!   lets idle workers steal whole chunks from the back of other bands.
//!   Skew that the planner's static weights miss is absorbed dynamically;
//!   determinism is unaffected (see above).
//! - **Allocation-free hot loops.** Workers lease a pooled [`ScratchArena`]
//!   for per-item scratch, and results land in pre-sized slots, so
//!   steady-state shard execution performs zero heap allocations (pinned by
//!   a counting-allocator test via [`hot_loop_active`]).
//!
//! Thread count resolution order: [`set_threads`] override (used by bench
//! sweeps), then the `DTC_THREADS` environment variable, then
//! `std::thread::available_parallelism()`. `threads == 1` runs the exact
//! serial loop on the calling thread — no spawn, no overhead. Parallel
//! sections never nest OS threads: an engine entered from inside a worker
//! runs its indices serially on that worker (results are identical either
//! way, and nested spawning only ever added overhead).
//!
//! # Measuring on small hosts
//!
//! Wall-clock speedups are invisible on CI boxes with fewer cores than
//! workers, so the engine also accounts the **critical path**: per
//! invocation, `crit = wall - (busy_sum - busy_max)` — the time that could
//! not have been shortened by more cores. In the default threaded mode,
//! per-worker busy times are wall-clock and thus only meaningful when
//! cores ≥ workers; [`set_virtual_time`] switches to a single-threaded
//! replay of the work-stealing schedule under per-chunk service times
//! (virtual-time simulation), which measures the true critical path of the
//! schedule on any host. Accumulated numbers are read with [`par_stats`].

#![forbid(unsafe_code)]

mod arena;
pub mod cache;
pub mod hash;
pub mod replay;

pub use arena::{with_arena, ScratchArena};
pub use cache::{front_tier_enabled, set_front_tier_enabled, FrontTier};
pub use replay::{replay_assignments, Replay};

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// `0` means "no override"; anything else wins over `DTC_THREADS`.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker-thread count process-wide (`None` clears it).
///
/// Meant for tools that sweep thread counts in one process (see
/// `bench/src/bin/parallel_scaling.rs`); normal callers rely on
/// `DTC_THREADS` or the detected core count.
pub fn set_threads(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// Resolves the number of worker threads to use right now.
///
/// Order: [`set_threads`] override, then `DTC_THREADS` (positive integer;
/// unparsable or zero values are ignored), then the detected parallelism.
/// Always at least 1.
pub fn num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("DTC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Splits `n` work units into at most `threads` contiguous bands.
///
/// Returns `(start, end)` half-open bands covering `0..n` in order. Earlier
/// bands are never smaller than later ones (remainder spread one-per-band
/// from the front), and empty bands are omitted.
pub fn bands(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.max(1).min(n.max(1));
    let base = n / threads;
    let extra = n % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < extra);
        if len == 0 {
            break;
        }
        out.push((start, start + len));
        start += len;
    }
    out
}

// ---------------------------------------------------------------------------
// Shard planning
// ---------------------------------------------------------------------------

/// Chunks handed to each worker's deque. More chunks = finer stealing
/// granularity; 4 keeps per-chunk overhead negligible while leaving three
/// steal opportunities per band.
const CHUNKS_PER_WORKER: usize = 4;

/// A two-level decomposition of `0..n`: contiguous *chunks* (the steal
/// granule) grouped into contiguous *bands* (one deque per worker).
///
/// Build one with [`ShardPlan::even`] (uniform item cost) or
/// [`ShardPlan::weighted`] (size-estimated items, e.g. nnz per row window
/// computed from CSR row offsets). The plan only shapes the schedule; any
/// plan yields bit-identical results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    n: usize,
    /// Half-open item ranges, contiguous and in order, covering `0..n`.
    chunks: Vec<(usize, usize)>,
    /// Half-open ranges of chunk indices, one band per worker deque.
    bands: Vec<(usize, usize)>,
}

impl ShardPlan {
    /// Plans `n` uniform-cost items across `threads` workers.
    pub fn even(n: usize, threads: usize) -> Self {
        let threads = threads.max(1);
        let chunks = bands(n, threads.saturating_mul(CHUNKS_PER_WORKER));
        let band_ranges = bands(chunks.len(), threads);
        ShardPlan { n, chunks, bands: band_ranges }
    }

    /// Plans `weights.len()` items across `threads` workers, cutting chunk
    /// and band boundaries at equal-weight quantiles of the running weight
    /// sum (weights are per-item cost estimates such as nnz; an implicit
    /// `+1` per item keeps zero-weight runs splittable).
    pub fn weighted(threads: usize, weights: &[u64]) -> Self {
        let n = weights.len();
        let threads = threads.max(1);
        if threads == 1 || n <= 1 {
            return Self::even(n, threads);
        }
        let item_w = |i: usize| weights[i] as u128 + 1;
        let chunks = weighted_cuts(n, threads.saturating_mul(CHUNKS_PER_WORKER), item_w);
        let chunk_w: Vec<u128> = chunks.iter().map(|&(s, e)| (s..e).map(item_w).sum()).collect();
        let band_ranges = weighted_cuts(chunks.len(), threads, |c| chunk_w[c]);
        ShardPlan { n, chunks, bands: band_ranges }
    }

    /// Number of items planned.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan covers zero items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The contiguous item ranges at chunk (steal-granule) level, in order.
    /// Callers that shard derived structures (e.g. conversion sub-matrices)
    /// reuse these cut points.
    pub fn chunk_ranges(&self) -> &[(usize, usize)] {
        &self.chunks
    }

    /// Number of worker bands (deques) the plan will run with.
    pub fn num_bands(&self) -> usize {
        self.bands.len()
    }

    /// The half-open *chunk-index* ranges grouped into each worker band, in
    /// order. `band_ranges()[w]` is the initial content of worker `w`'s
    /// deque; the sched lints audit these against [`ShardPlan::chunk_ranges`]
    /// for coverage, disjointness and weight conservation.
    pub fn band_ranges(&self) -> &[(usize, usize)] {
        &self.bands
    }

    /// Builds a plan directly from its parts, **without validation**.
    ///
    /// For the schedule checker and for mutation tests that need to seed a
    /// deliberately illegal plan (overlapping chunks, gapped bands) and
    /// prove the sched lints catch it. An invalid plan fails those lints —
    /// it is never undefined behavior — but feeding one to the execution
    /// engines is a caller bug.
    pub fn from_raw_parts(
        n: usize,
        chunks: Vec<(usize, usize)>,
        bands: Vec<(usize, usize)>,
    ) -> Self {
        ShardPlan { n, chunks, bands }
    }
}

/// Cuts `0..n` into at most `parts` contiguous ranges of approximately
/// equal total weight: a cut lands wherever the running sum crosses the
/// next `total/parts` quantile.
fn weighted_cuts(n: usize, parts: usize, weight: impl Fn(usize) -> u128) -> Vec<(usize, usize)> {
    let parts = parts.max(1).min(n.max(1));
    if n == 0 {
        return Vec::new();
    }
    let total: u128 = (0..n).map(&weight).sum();
    if total == 0 {
        return bands(n, parts);
    }
    let mut out: Vec<(usize, usize)> = Vec::with_capacity(parts);
    let mut acc: u128 = 0;
    let mut start = 0usize;
    for i in 0..n {
        acc += weight(i);
        if acc * parts as u128 >= total * (out.len() as u128 + 1) {
            out.push((start, i + 1));
            start = i + 1;
        }
    }
    // acc == total at i = n-1 always crosses the final quantile.
    debug_assert_eq!(start, n);
    out
}

// ---------------------------------------------------------------------------
// Execution-state flags (per thread) and global knobs
// ---------------------------------------------------------------------------

thread_local! {
    /// True while this thread is inside a shard-execution hot loop.
    static HOT_LOOP: Cell<bool> = const { Cell::new(false) };
    /// True while this thread is a dtc-par worker (suppresses nested spawns).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the calling thread is currently inside a shard-execution hot
/// loop. The counting-allocator test keys on this to pin the zero
/// steady-state allocation guarantee; engine orchestration (slot buffers,
/// deques, thread spawns) deliberately runs with the flag off.
pub fn hot_loop_active() -> bool {
    HOT_LOOP.with(Cell::get)
}

fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Saves a thread-local flag, sets it, and restores it on drop.
struct FlagGuard {
    key: &'static std::thread::LocalKey<Cell<bool>>,
    prev: bool,
}

impl FlagGuard {
    fn set(key: &'static std::thread::LocalKey<Cell<bool>>, value: bool) -> Self {
        let prev = key.with(|c| c.replace(value));
        FlagGuard { key, prev }
    }
}

impl Drop for FlagGuard {
    fn drop(&mut self) {
        self.key.with(|c| c.set(self.prev));
    }
}

/// `0` = unseeded (fixed ring order); odd values carry a user seed.
static STEAL_SEED: AtomicU64 = AtomicU64::new(0);

/// Seeds the victim-scan order used when a worker's own deque runs dry
/// (`None` restores the default fixed ring order). Any seed produces the
/// same results — stealing only moves *where* a chunk executes — so tests
/// sweep seeds to exercise schedule diversity, not to pin outputs.
pub fn set_steal_seed(seed: Option<u64>) {
    STEAL_SEED.store(seed.map_or(0, |s| splitmix64(s) | 1), Ordering::Relaxed);
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

static VIRTUAL_TIME: AtomicBool = AtomicBool::new(false);

/// Switches the engine into virtual-time measurement mode (see the module
/// docs): chunks execute one at a time on the calling thread while the
/// work-stealing schedule is replayed against per-chunk service times, so
/// [`par_stats`] reports the schedule's true critical path even on hosts
/// with fewer cores than workers. Results are bit-identical to both the
/// serial and the threaded mode.
pub fn set_virtual_time(on: bool) {
    VIRTUAL_TIME.store(on, Ordering::Relaxed);
}

/// Whether virtual-time measurement mode is active.
pub fn virtual_time_enabled() -> bool {
    VIRTUAL_TIME.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Execution log (for the sched lints)
// ---------------------------------------------------------------------------

/// One engine invocation as observed by the execution log: enough to audit
/// the nested-parallelism rule (`in_worker` ⇒ exactly one band) and steal
/// activity after the fact. See [`set_exec_log`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecRecord {
    /// Items the invocation covered.
    pub n: usize,
    /// Worker bands the invocation actually ran with (1 = serial path).
    pub bands_used: usize,
    /// Whether the calling thread was already a dtc-par worker.
    pub in_worker_at_entry: bool,
    /// Chunks obtained by stealing rather than from the own deque.
    pub steals: u64,
    /// Whether the invocation ran in virtual-time replay mode.
    pub virtual_mode: bool,
}

static EXEC_LOG_ON: AtomicBool = AtomicBool::new(false);

fn exec_log() -> &'static Mutex<Vec<ExecRecord>> {
    static LOG: OnceLock<Mutex<Vec<ExecRecord>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

/// Turns the execution log on or off (off by default: logging takes a
/// process-wide lock per invocation, so it is a diagnostic mode, not a
/// production one). Enabling does not clear records already held.
pub fn set_exec_log(on: bool) {
    EXEC_LOG_ON.store(on, Ordering::Relaxed);
}

/// Takes every record logged since the last drain.
pub fn drain_exec_log() -> Vec<ExecRecord> {
    std::mem::take(&mut *exec_log().lock().unwrap_or_else(PoisonError::into_inner))
}

fn log_exec(record: ExecRecord) {
    if EXEC_LOG_ON.load(Ordering::Relaxed) {
        exec_log().lock().unwrap_or_else(PoisonError::into_inner).push(record);
    }
}

// ---------------------------------------------------------------------------
// Critical-path accounting
// ---------------------------------------------------------------------------

static PAR_WALL_NS: AtomicU64 = AtomicU64::new(0);
static PAR_BUSY_NS: AtomicU64 = AtomicU64::new(0);
static PAR_CRIT_NS: AtomicU64 = AtomicU64::new(0);
static PAR_INVOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Accumulated timing of every engine invocation since the last
/// [`reset_par_stats`]. Benches difference two snapshots around a phase to
/// attribute that phase's parallel wall/critical-path time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParStats {
    /// Total wall time spent inside engine invocations.
    pub wall_ns: u64,
    /// Total per-worker busy time (the work itself).
    pub busy_ns: u64,
    /// Total critical path: `wall - (busy_sum - busy_max)` per invocation —
    /// what an infinitely-wide host would still have to wait for.
    pub crit_ns: u64,
    /// Number of engine invocations (serial fast paths included).
    pub invocations: u64,
}

/// Reads the accumulated engine timing counters.
pub fn par_stats() -> ParStats {
    ParStats {
        wall_ns: PAR_WALL_NS.load(Ordering::Relaxed),
        busy_ns: PAR_BUSY_NS.load(Ordering::Relaxed),
        crit_ns: PAR_CRIT_NS.load(Ordering::Relaxed),
        invocations: PAR_INVOCATIONS.load(Ordering::Relaxed),
    }
}

/// Zeroes the accumulated engine timing counters.
pub fn reset_par_stats() {
    PAR_WALL_NS.store(0, Ordering::Relaxed);
    PAR_BUSY_NS.store(0, Ordering::Relaxed);
    PAR_CRIT_NS.store(0, Ordering::Relaxed);
    PAR_INVOCATIONS.store(0, Ordering::Relaxed);
}

fn shard_telemetry(
) -> (&'static dtc_telemetry::Counter, &'static dtc_telemetry::Counter, &'static dtc_telemetry::Gauge)
{
    static HANDLES: OnceLock<(
        &'static dtc_telemetry::Counter,
        &'static dtc_telemetry::Counter,
        &'static dtc_telemetry::Gauge,
    )> = OnceLock::new();
    *HANDLES.get_or_init(|| {
        (
            dtc_telemetry::counter("par.shard.tasks"),
            dtc_telemetry::counter("par.shard.steals"),
            dtc_telemetry::gauge("par.shard.max_imbalance"),
        )
    })
}

fn record_invocation(
    wall_ns: u64,
    busy_sum: u64,
    busy_max: u64,
    steals: u64,
    tasks: u64,
    workers: usize,
) {
    PAR_WALL_NS.fetch_add(wall_ns, Ordering::Relaxed);
    PAR_BUSY_NS.fetch_add(busy_sum, Ordering::Relaxed);
    PAR_CRIT_NS
        .fetch_add(wall_ns.saturating_sub(busy_sum.saturating_sub(busy_max)), Ordering::Relaxed);
    PAR_INVOCATIONS.fetch_add(1, Ordering::Relaxed);
    let (tasks_c, steals_c, imbalance_g) = shard_telemetry();
    tasks_c.add(tasks);
    if steals > 0 {
        steals_c.add(steals);
    }
    if workers > 1 && busy_sum > 0 {
        // busiest worker relative to the mean: 1.0 = perfectly balanced.
        imbalance_g.set(busy_max as f64 * workers as f64 / busy_sum as f64);
    }
}

// ---------------------------------------------------------------------------
// The work-stealing engine
// ---------------------------------------------------------------------------

/// Scans victims in a ring starting at a (possibly seeded) offset from `w`,
/// stealing a whole chunk from the *back* of another band's deque — the
/// opposite end from the owner, minimizing contention and keeping stolen
/// chunks far from the victim's current locality window.
fn steal_from<J>(queues: &[Mutex<VecDeque<J>>], w: usize, seed: u64) -> Option<J> {
    let nbands = queues.len();
    let start = victim_start(seed, w, nbands)?;
    for k in 0..nbands {
        let v = (w + start + k) % nbands;
        if v == w {
            continue;
        }
        if let Some(job) = queues[v].lock().unwrap_or_else(PoisonError::into_inner).pop_back() {
            return Some(job);
        }
    }
    None
}

/// Single-threaded twin of [`steal_from`] for virtual-time replay.
fn steal_from_local<J>(queues: &mut [VecDeque<J>], w: usize, seed: u64) -> Option<J> {
    let nbands = queues.len();
    let start = victim_start(seed, w, nbands)?;
    for k in 0..nbands {
        let v = (w + start + k) % nbands;
        if v != w {
            if let Some(job) = queues[v].pop_back() {
                return Some(job);
            }
        }
    }
    None
}

fn victim_start(seed: u64, w: usize, nbands: usize) -> Option<usize> {
    if nbands <= 1 {
        return None;
    }
    Some(if seed == 0 {
        1
    } else {
        1 + (splitmix64(seed ^ ((w as u64) << 32 | nbands as u64)) % (nbands as u64 - 1)) as usize
    })
}

/// Runs one deque of jobs per worker thread with work stealing. Returns
/// `(busy_sum, busy_max, steals)` in nanoseconds/events.
///
/// Per-worker busy time is wall-clock over the worker's lifetime, which
/// overstates busy time when the host has fewer cores than workers — use
/// virtual-time mode for honest critical paths on such hosts.
fn run_threads<J, F>(queues: Vec<VecDeque<J>>, exec: &F) -> (u64, u64, u64)
where
    J: Send,
    F: Fn(J, &mut ScratchArena) + Sync,
{
    let nbands = queues.len();
    let seed = STEAL_SEED.load(Ordering::Relaxed);
    let queues: Vec<Mutex<VecDeque<J>>> = queues.into_iter().map(Mutex::new).collect();
    let mut outcomes: Vec<(u64, u64)> = Vec::new();
    std::thread::scope(|scope| {
        let queues = &queues;
        let handles: Vec<_> = (0..nbands)
            .map(|w| {
                scope.spawn(move || {
                    // Shard timing: aggregated across worker threads by the
                    // telemetry registry (no-op unless a sink is enabled).
                    let _shard = dtc_telemetry::span("par.shard");
                    let _worker = FlagGuard::set(&IN_WORKER, true);
                    let started = Instant::now();
                    let mut steals = 0u64;
                    arena::with_worker_arena(w, |scratch| loop {
                        let own =
                            queues[w].lock().unwrap_or_else(PoisonError::into_inner).pop_front();
                        let job = match own {
                            Some(job) => job,
                            None => match steal_from(queues, w, seed) {
                                Some(job) => {
                                    steals += 1;
                                    job
                                }
                                None => break,
                            },
                        };
                        let _hot = FlagGuard::set(&HOT_LOOP, true);
                        exec(job, scratch);
                    });
                    (started.elapsed().as_nanos() as u64, steals)
                })
            })
            .collect();
        outcomes =
            handles.into_iter().map(|h| h.join().expect("dtc-par worker panicked")).collect();
    });
    let busy_sum = outcomes.iter().map(|o| o.0).sum();
    let busy_max = outcomes.iter().map(|o| o.0).max().unwrap_or(0);
    let steals = outcomes.iter().map(|o| o.1).sum();
    (busy_sum, busy_max, steals)
}

/// Virtual-time twin of [`run_threads`]: replays the stealing schedule on
/// the calling thread, always advancing the virtual worker with the least
/// accumulated service time. Chunk service times are measured without any
/// core contention, so `busy_max` is the schedule's honest critical path.
fn run_virtual<J, F>(mut queues: Vec<VecDeque<J>>, exec: &F) -> (u64, u64, u64)
where
    F: Fn(J, &mut ScratchArena),
{
    let nbands = queues.len();
    let seed = STEAL_SEED.load(Ordering::Relaxed);
    let mut vtime = vec![0u64; nbands];
    let mut busy = vec![0u64; nbands];
    let mut live = vec![true; nbands];
    let mut steals = 0u64;
    arena::with_worker_arena(0, |scratch| {
        let _worker = FlagGuard::set(&IN_WORKER, true);
        while let Some(w) = (0..nbands).filter(|&w| live[w]).min_by_key(|&w| vtime[w]) {
            let job = match queues[w].pop_front() {
                Some(job) => Some(job),
                None => {
                    let stolen = steal_from_local(&mut queues, w, seed);
                    if stolen.is_some() {
                        steals += 1;
                    }
                    stolen
                }
            };
            match job {
                Some(job) => {
                    let started = Instant::now();
                    {
                        let _hot = FlagGuard::set(&HOT_LOOP, true);
                        exec(job, scratch);
                    }
                    let ns = started.elapsed().as_nanos() as u64;
                    vtime[w] += ns;
                    busy[w] += ns;
                }
                None => live[w] = false,
            }
        }
    });
    let busy_sum = busy.iter().sum();
    let busy_max = busy.iter().copied().max().unwrap_or(0);
    (busy_sum, busy_max, steals)
}

// ---------------------------------------------------------------------------
// Public mapping APIs
// ---------------------------------------------------------------------------

/// A contiguous run of result slots: `out[k]` receives `f(first + k)`.
struct SlotJob<'a, R> {
    first: usize,
    out: &'a mut [Option<R>],
}

/// Maps `f` over the plan's index space in parallel with work stealing,
/// collecting results in index order. `f` receives the worker's
/// [`ScratchArena`] for per-item scratch buffers.
///
/// Bit-identical to a serial `(0..plan.len()).map(|i| f(i, arena)).collect()`
/// for any thread count, plan, or steal schedule: each index is evaluated
/// exactly once into its own pre-sized slot.
pub fn par_map_collect_plan<R, F>(plan: &ShardPlan, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, &mut ScratchArena) -> R + Sync,
{
    let _cold = FlagGuard::set(&HOT_LOOP, false);
    let n = plan.n;
    let entered_in_worker = in_worker();
    let started = Instant::now();
    if plan.bands.len() <= 1 || entered_in_worker {
        let mut out = Vec::with_capacity(n);
        arena::with_worker_arena(0, |scratch| {
            let _worker = FlagGuard::set(&IN_WORKER, true);
            let _hot = FlagGuard::set(&HOT_LOOP, true);
            for i in 0..n {
                out.push(f(i, scratch));
            }
        });
        let wall = started.elapsed().as_nanos() as u64;
        record_invocation(wall, wall, wall, 0, n as u64, 1);
        log_exec(ExecRecord {
            n,
            bands_used: 1,
            in_worker_at_entry: entered_in_worker,
            steals: 0,
            virtual_mode: virtual_time_enabled(),
        });
        return out;
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let queues = slot_queues(plan, &mut slots);
    let f = &f;
    let exec = |job: SlotJob<'_, R>, scratch: &mut ScratchArena| {
        let SlotJob { first, out } = job;
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = Some(f(first + k, scratch));
        }
    };
    let (busy_sum, busy_max, steals) = if virtual_time_enabled() {
        run_virtual(queues, &exec)
    } else {
        run_threads(queues, &exec)
    };
    let wall = started.elapsed().as_nanos() as u64;
    record_invocation(wall, busy_sum, busy_max, steals, n as u64, plan.bands.len());
    log_exec(ExecRecord {
        n,
        bands_used: plan.bands.len(),
        in_worker_at_entry: entered_in_worker,
        steals,
        virtual_mode: virtual_time_enabled(),
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("engine invariant: every index computed exactly once"))
        .collect()
}

/// Splits the slot buffer along the plan's chunk boundaries into per-band
/// deques of [`SlotJob`]s.
fn slot_queues<'a, R>(
    plan: &ShardPlan,
    slots: &'a mut [Option<R>],
) -> Vec<VecDeque<SlotJob<'a, R>>> {
    let mut queues = Vec::with_capacity(plan.bands.len());
    let mut rest = slots;
    let mut chunk_iter = plan.chunks.iter();
    for &(cb, ce) in &plan.bands {
        let mut deque = VecDeque::with_capacity(ce - cb);
        for _ in cb..ce {
            let &(s, e) = chunk_iter.next().expect("plan bands cover all chunks");
            let (head, tail) = rest.split_at_mut(e - s);
            rest = tail;
            deque.push_back(SlotJob { first: s, out: head });
        }
        queues.push(deque);
    }
    queues
}

/// Maps `f` over `0..n` in parallel, collecting results in index order.
///
/// Bit-identical to `(0..n).map(f).collect()` for any thread count: each
/// index is evaluated exactly once into slot `i` of the pre-sized result
/// buffer, so a later fold over the returned `Vec` sees serial order.
pub fn par_map_collect<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_collect_with(num_threads(), n, f)
}

/// [`par_map_collect`] with an explicit thread count (callers that sweep or
/// pin thread counts, e.g. `convert_to_metcf_parallel`).
pub fn par_map_collect_with<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let _cold = FlagGuard::set(&HOT_LOOP, false);
    let plan = ShardPlan::even(n, threads);
    par_map_collect_plan(&plan, |i, _| f(i))
}

/// [`par_map_collect`] over a weight-estimated index space: shard cut
/// points follow the per-item weights (e.g. nnz per row window), so skewed
/// inputs start out balanced and stealing only has to absorb the residue.
pub fn par_map_collect_weighted<R, F>(weights: &[u64], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let _cold = FlagGuard::set(&HOT_LOOP, false);
    let plan = ShardPlan::weighted(num_threads(), weights);
    par_map_collect_plan(&plan, |i, _| f(i))
}

/// A contiguous run of data chunks: `f(first + k, chunk_k)`.
struct ChunkJob<'a, T> {
    first: usize,
    data: &'a mut [T],
}

/// Runs `f(chunk_index, chunk)` over `chunk_size`-sized chunks of `data` in
/// parallel (last chunk may be short), each chunk visited exactly once.
///
/// Every chunk sees the same `f` invocation it would in a serial
/// `data.chunks_mut(chunk_size)` loop; outputs are disjoint `&mut` slices,
/// making the parallel run bit-identical under any steal schedule.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let _cold = FlagGuard::set(&HOT_LOOP, false);
    let n_chunks = data.len().div_ceil(chunk_size);
    let plan = ShardPlan::even(n_chunks, num_threads());
    par_chunks_mut_plan(data, chunk_size, &plan, f);
}

/// [`par_chunks_mut`] with one cost weight per chunk (e.g. nnz per row
/// window for the SpMM output strips).
pub fn par_chunks_mut_weighted<T, F>(data: &mut [T], chunk_size: usize, weights: &[u64], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let n_chunks = data.len().div_ceil(chunk_size);
    assert_eq!(weights.len(), n_chunks, "one weight per chunk");
    let _cold = FlagGuard::set(&HOT_LOOP, false);
    let plan = ShardPlan::weighted(num_threads(), weights);
    par_chunks_mut_plan(data, chunk_size, &plan, f);
}

fn par_chunks_mut_plan<T, F>(data: &mut [T], chunk_size: usize, plan: &ShardPlan, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let entered_in_worker = in_worker();
    let started = Instant::now();
    if plan.bands.len() <= 1 || entered_in_worker {
        let n_chunks = plan.n as u64;
        {
            let _worker = FlagGuard::set(&IN_WORKER, true);
            let _hot = FlagGuard::set(&HOT_LOOP, true);
            for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
                f(i, chunk);
            }
        }
        let wall = started.elapsed().as_nanos() as u64;
        record_invocation(wall, wall, wall, 0, n_chunks, 1);
        log_exec(ExecRecord {
            n: plan.n,
            bands_used: 1,
            in_worker_at_entry: entered_in_worker,
            steals: 0,
            virtual_mode: virtual_time_enabled(),
        });
        return;
    }
    let len = data.len();
    let mut queues = Vec::with_capacity(plan.bands.len());
    {
        let mut rest = data;
        let mut chunk_iter = plan.chunks.iter();
        for &(cb, ce) in &plan.bands {
            let mut deque = VecDeque::with_capacity(ce - cb);
            for _ in cb..ce {
                let &(s, e) = chunk_iter.next().expect("plan bands cover all chunks");
                let elems = (e * chunk_size).min(len) - s * chunk_size;
                let (head, tail) = rest.split_at_mut(elems);
                rest = tail;
                deque.push_back(ChunkJob { first: s, data: head });
            }
            queues.push(deque);
        }
    }
    let f = &f;
    let exec = |job: ChunkJob<'_, T>, _scratch: &mut ScratchArena| {
        let ChunkJob { first, data } = job;
        for (k, chunk) in data.chunks_mut(chunk_size).enumerate() {
            f(first + k, chunk);
        }
    };
    let (busy_sum, busy_max, steals) = if virtual_time_enabled() {
        run_virtual(queues, &exec)
    } else {
        run_threads(queues, &exec)
    };
    let wall = started.elapsed().as_nanos() as u64;
    record_invocation(wall, busy_sum, busy_max, steals, plan.n as u64, plan.bands.len());
    log_exec(ExecRecord {
        n: plan.n,
        bands_used: plan.bands.len(),
        in_worker_at_entry: entered_in_worker,
        steals,
        virtual_mode: virtual_time_enabled(),
    });
}

/// Runs two independent closures, in parallel when more than one thread is
/// available, returning both results.
pub fn join<RA, RB, FA, FB>(fa: FA, fb: FB) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    FA: FnOnce() -> RA + Send,
    FB: FnOnce() -> RB + Send,
{
    if num_threads() <= 1 || in_worker() || virtual_time_enabled() {
        return (fa(), fb());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(fb);
        let ra = fa();
        (ra, hb.join().expect("dtc-par worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the process-wide override/seed/mode.
    static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        OVERRIDE_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn bands_cover_range_in_order() {
        for n in [0usize, 1, 2, 7, 16, 33, 1000] {
            for threads in [1usize, 2, 3, 7, 16, 64] {
                let bands = bands(n, threads);
                let mut expect = 0;
                for &(s, e) in &bands {
                    assert_eq!(s, expect);
                    assert!(e > s);
                    expect = e;
                }
                assert_eq!(expect, n);
                assert_eq!(bands.iter().map(|&(s, e)| e - s).sum::<usize>(), n);
                assert!(bands.len() <= threads.max(1));
            }
        }
    }

    fn assert_plan_covers(plan: &ShardPlan, n: usize, threads: usize) {
        let mut expect = 0;
        for &(s, e) in &plan.chunks {
            assert_eq!(s, expect);
            assert!(e > s);
            expect = e;
        }
        assert_eq!(expect, n, "chunks must cover 0..n in order");
        let mut cexpect = 0;
        for &(cb, ce) in &plan.bands {
            assert_eq!(cb, cexpect);
            assert!(ce > cb);
            cexpect = ce;
        }
        assert_eq!(cexpect, plan.chunks.len(), "bands must cover all chunks");
        assert!(plan.bands.len() <= threads.max(1));
    }

    #[test]
    fn even_plans_cover_everything() {
        for n in [0usize, 1, 5, 16, 100, 1031] {
            for threads in [1usize, 2, 7, 16] {
                assert_plan_covers(&ShardPlan::even(n, threads), n, threads);
            }
        }
    }

    #[test]
    fn weighted_plans_cover_everything() {
        for n in [0usize, 1, 5, 100, 513] {
            for threads in [1usize, 2, 7, 16] {
                let uniform = vec![3u64; n];
                assert_plan_covers(&ShardPlan::weighted(threads, &uniform), n, threads);
                let zeros = vec![0u64; n];
                assert_plan_covers(&ShardPlan::weighted(threads, &zeros), n, threads);
                let skew: Vec<u64> =
                    (0..n as u64).map(|i| if i == 0 { 1_000_000 } else { i % 7 }).collect();
                assert_plan_covers(&ShardPlan::weighted(threads, &skew), n, threads);
            }
        }
    }

    #[test]
    fn weighted_plan_isolates_heavy_items() {
        // One item carries ~all the weight: the planner must not lump many
        // light items into its chunk, so stealing can rebalance the rest.
        let mut weights = vec![1u64; 256];
        weights[0] = 1 << 40;
        let plan = ShardPlan::weighted(4, &weights);
        let (s, e) = plan.chunks[0];
        assert_eq!((s, e), (0, 1), "the heavy item must sit alone in its chunk");
        // And the heavy band holds a minority of the remaining items.
        let (cb, ce) = plan.bands[0];
        let heavy_band_items: usize = plan.chunks[cb..ce].iter().map(|&(s, e)| e - s).sum();
        assert!(heavy_band_items < 64, "heavy band took {heavy_band_items} items");
    }

    #[test]
    fn map_collect_matches_serial_for_every_thread_count() {
        let _guard = lock();
        let serial: Vec<usize> = (0..1000).map(|i| i * i).collect();
        for threads in [1usize, 2, 7, 16] {
            set_threads(Some(threads));
            assert_eq!(par_map_collect(1000, |i| i * i), serial, "threads={threads}");
        }
        set_threads(None);
    }

    #[test]
    fn weighted_map_and_plan_match_serial_under_steal_seeds() {
        let _guard = lock();
        let weights: Vec<u64> = (0..777u64).map(|i| (i * i) % 97).collect();
        let serial: Vec<u64> = (0..777u64).collect();
        for threads in [2usize, 5, 16] {
            set_threads(Some(threads));
            for seed in [None, Some(0), Some(1), Some(0xdead_beef)] {
                set_steal_seed(seed);
                let out = par_map_collect_weighted(&weights, |i| i as u64);
                assert_eq!(out, serial, "threads={threads} seed={seed:?}");
            }
        }
        set_steal_seed(None);
        set_threads(None);
    }

    #[test]
    fn virtual_time_mode_is_bit_identical_and_accounts_critical_path() {
        let _guard = lock();
        set_threads(Some(4));
        set_virtual_time(true);
        reset_par_stats();
        let serial: Vec<usize> = (0..500).map(|i| i * 3).collect();
        assert_eq!(par_map_collect(500, |i| i * 3), serial);
        let stats = par_stats();
        assert_eq!(stats.invocations, 1);
        assert!(stats.crit_ns <= stats.wall_ns);
        assert!(stats.busy_ns <= stats.wall_ns, "virtual mode serializes chunks");
        set_virtual_time(false);
        set_threads(None);
    }

    #[test]
    fn plan_variant_threads_arena_through() {
        let _guard = lock();
        set_threads(Some(3));
        let plan = ShardPlan::even(64, 3);
        let out = par_map_collect_plan(&plan, |i, scratch| {
            let mut buf = scratch.usize_buf();
            buf.extend(0..=i);
            let sum: usize = buf.iter().sum();
            scratch.recycle_usize(buf);
            sum
        });
        let expect: Vec<usize> = (0..64).map(|i| i * (i + 1) / 2).collect();
        assert_eq!(out, expect);
        set_threads(None);
    }

    #[test]
    fn nested_parallel_sections_run_serial_not_spawned() {
        let _guard = lock();
        set_threads(Some(4));
        // Outer parallel map; each item runs another map. The inner maps
        // must take the serial path (no nested spawn) and still be exact.
        let out = par_map_collect(8, |i| par_map_collect(10, move |j| i * 10 + j));
        for (i, inner) in out.iter().enumerate() {
            let expect: Vec<usize> = (0..10).map(|j| i * 10 + j).collect();
            assert_eq!(inner, &expect);
        }
        set_threads(None);
    }

    #[test]
    fn chunks_mut_visits_every_chunk_once() {
        let _guard = lock();
        for threads in [1usize, 2, 7, 16] {
            set_threads(Some(threads));
            for len in [0usize, 1, 15, 16, 17, 160, 163] {
                let mut data = vec![0u32; len];
                par_chunks_mut(&mut data, 16, |ci, chunk| {
                    for (j, x) in chunk.iter_mut().enumerate() {
                        *x += (ci * 16 + j) as u32 + 1;
                    }
                });
                let expect: Vec<u32> = (0..len as u32).map(|i| i + 1).collect();
                assert_eq!(data, expect, "threads={threads} len={len}");
            }
        }
        set_threads(None);
    }

    #[test]
    fn weighted_chunks_mut_matches_serial() {
        let _guard = lock();
        set_threads(Some(5));
        for len in [0usize, 1, 33, 256, 300] {
            let n_chunks = len.div_ceil(8);
            let weights: Vec<u64> = (0..n_chunks as u64).map(|i| i * i % 13).collect();
            let mut data = vec![0u64; len];
            par_chunks_mut_weighted(&mut data, 8, &weights, |ci, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = (ci * 8 + j) as u64 * 2 + 1;
                }
            });
            let expect: Vec<u64> = (0..len as u64).map(|i| i * 2 + 1).collect();
            assert_eq!(data, expect, "len={len}");
        }
        set_threads(None);
    }

    #[test]
    fn join_returns_both() {
        let _guard = lock();
        for threads in [1usize, 4] {
            set_threads(Some(threads));
            let (a, b) = join(|| 2 + 2, || "ok".to_string());
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        }
        set_threads(None);
    }

    #[test]
    fn override_beats_env() {
        let _guard = lock();
        set_threads(Some(3));
        assert_eq!(num_threads(), 3);
        set_threads(None);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let _guard = lock();
        set_threads(Some(2));
        reset_par_stats();
        let _ = par_map_collect(256, |i| i + 1);
        let stats = par_stats();
        assert_eq!(stats.invocations, 1);
        assert!(stats.wall_ns > 0);
        reset_par_stats();
        assert_eq!(par_stats(), ParStats::default());
        set_threads(None);
    }

    #[test]
    fn hot_loop_flag_is_scoped_to_execution() {
        let _guard = lock();
        assert!(!hot_loop_active());
        set_threads(Some(1));
        let flags = par_map_collect(4, |_| hot_loop_active());
        assert_eq!(flags, vec![true; 4], "items run under the hot-loop flag");
        assert!(!hot_loop_active(), "flag restored after the engine returns");
        set_threads(None);
    }
}
