//! Deterministic scoped parallelism for the DTC-SpMM workspace.
//!
//! DTC-SpMM's GPU kernels decompose work into independent row windows (one
//! thread block per 16-row window); this crate mirrors that decomposition on
//! the host so exact execution, trace lowering, conversion, and simulation
//! fan out across CPU cores **without changing any result bit**. The rules
//! that make that hold:
//!
//! - **Contiguous sharding.** Work is split into contiguous index bands, one
//!   band per thread. Each unit of work (a row window, a thread block, a row)
//!   is processed by exactly one thread using the same per-unit code path and
//!   the same intra-unit iteration order as the serial loop.
//! - **Ordered reduction.** [`par_map_collect`] returns results indexed
//!   exactly as a serial `(0..n).map(f).collect()`, so any subsequent fold
//!   (e.g. summing sector counts) visits values in serial order.
//! - **Disjoint outputs.** [`par_chunks_mut`] hands each thread disjoint
//!   `&mut` chunks of one output buffer (e.g. 16 output rows of C per
//!   window), so there is no accumulation across threads at all.
//!
//! Thread count resolution order: [`set_threads`] override (used by bench
//! sweeps), then the `DTC_THREADS` environment variable, then
//! `std::thread::available_parallelism()`. `threads == 1` runs the exact
//! serial loop on the calling thread — no spawn, no overhead.

#![forbid(unsafe_code)]
use std::sync::atomic::{AtomicUsize, Ordering};

/// `0` means "no override"; anything else wins over `DTC_THREADS`.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker-thread count process-wide (`None` clears it).
///
/// Meant for tools that sweep thread counts in one process (see
/// `bench/src/bin/parallel_scaling.rs`); normal callers rely on
/// `DTC_THREADS` or the detected core count.
pub fn set_threads(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// Resolves the number of worker threads to use right now.
///
/// Order: [`set_threads`] override, then `DTC_THREADS` (positive integer;
/// unparsable or zero values are ignored), then the detected parallelism.
/// Always at least 1.
pub fn num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("DTC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Splits `n` work units into at most `threads` contiguous bands.
///
/// Returns `(start, end)` half-open bands covering `0..n` in order. Earlier
/// bands are never smaller than later ones (remainder spread one-per-band
/// from the front), and empty bands are omitted.
pub fn bands(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.max(1).min(n.max(1));
    let base = n / threads;
    let extra = n % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < extra);
        if len == 0 {
            break;
        }
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Maps `f` over `0..n` in parallel, collecting results in index order.
///
/// Bit-identical to `(0..n).map(f).collect()` for any thread count: each
/// index is evaluated exactly once and results are concatenated band by
/// band, so a later fold over the returned `Vec` sees serial order.
pub fn par_map_collect<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_collect_with(num_threads(), n, f)
}

/// [`par_map_collect`] with an explicit thread count (callers that sweep or
/// pin thread counts, e.g. `convert_to_metcf_parallel`).
pub fn par_map_collect_with<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let bands = bands(n, threads);
    if bands.len() <= 1 {
        return (0..n).map(f).collect();
    }
    let mut per_band: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = bands
            .iter()
            .map(|&(start, end)| {
                scope.spawn(move || {
                    // Shard timing: aggregated across worker threads by the
                    // telemetry registry (no-op unless a sink is enabled).
                    let _shard = dtc_telemetry::span("par.shard");
                    (start..end).map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        per_band =
            handles.into_iter().map(|h| h.join().expect("dtc-par worker panicked")).collect();
    });
    let mut out = Vec::with_capacity(n);
    for band in per_band {
        out.extend(band);
    }
    out
}

/// Runs `f(chunk_index, chunk)` over `chunk_size`-sized chunks of `data` in
/// parallel (last chunk may be short), each chunk visited exactly once.
///
/// Chunks are distributed as contiguous bands, so every chunk sees the same
/// `f` invocation it would in a serial `data.chunks_mut(chunk_size)` loop;
/// outputs are disjoint `&mut` slices, making the parallel run bit-identical.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let n_chunks = data.len().div_ceil(chunk_size);
    let threads = num_threads();
    if threads <= 1 || n_chunks <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let bands = bands(n_chunks, threads);
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut handles = Vec::with_capacity(bands.len());
        for &(start, end) in &bands {
            let band_elems = ((end - start) * chunk_size).min(rest.len());
            let (band, tail) = rest.split_at_mut(band_elems);
            rest = tail;
            let f = &f;
            handles.push(scope.spawn(move || {
                let _shard = dtc_telemetry::span("par.shard");
                for (i, chunk) in band.chunks_mut(chunk_size).enumerate() {
                    f(start + i, chunk);
                }
            }));
        }
        for h in handles {
            h.join().expect("dtc-par worker panicked");
        }
    });
}

/// Runs two independent closures, in parallel when more than one thread is
/// available, returning both results.
pub fn join<RA, RB, FA, FB>(fa: FA, fb: FB) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    FA: FnOnce() -> RA + Send,
    FB: FnOnce() -> RB + Send,
{
    if num_threads() <= 1 {
        return (fa(), fb());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(fb);
        let ra = fa();
        (ra, hb.join().expect("dtc-par worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the process-wide override.
    static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn bands_cover_range_in_order() {
        for n in [0usize, 1, 2, 7, 16, 33, 1000] {
            for threads in [1usize, 2, 3, 7, 16, 64] {
                let bands = bands(n, threads);
                let mut expect = 0;
                for &(s, e) in &bands {
                    assert_eq!(s, expect);
                    assert!(e > s);
                    expect = e;
                }
                assert_eq!(expect, n);
                assert_eq!(bands.iter().map(|&(s, e)| e - s).sum::<usize>(), n);
                assert!(bands.len() <= threads.max(1));
            }
        }
    }

    #[test]
    fn map_collect_matches_serial_for_every_thread_count() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let serial: Vec<usize> = (0..1000).map(|i| i * i).collect();
        for threads in [1usize, 2, 7, 16] {
            set_threads(Some(threads));
            assert_eq!(par_map_collect(1000, |i| i * i), serial, "threads={threads}");
        }
        set_threads(None);
    }

    #[test]
    fn chunks_mut_visits_every_chunk_once() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        for threads in [1usize, 2, 7, 16] {
            set_threads(Some(threads));
            for len in [0usize, 1, 15, 16, 17, 160, 163] {
                let mut data = vec![0u32; len];
                par_chunks_mut(&mut data, 16, |ci, chunk| {
                    for (j, x) in chunk.iter_mut().enumerate() {
                        *x += (ci * 16 + j) as u32 + 1;
                    }
                });
                let expect: Vec<u32> = (0..len as u32).map(|i| i + 1).collect();
                assert_eq!(data, expect, "threads={threads} len={len}");
            }
        }
        set_threads(None);
    }

    #[test]
    fn join_returns_both() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        for threads in [1usize, 4] {
            set_threads(Some(threads));
            let (a, b) = join(|| 2 + 2, || "ok".to_string());
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        }
        set_threads(None);
    }

    #[test]
    fn override_beats_env() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_threads(Some(3));
        assert_eq!(num_threads(), 3);
        set_threads(None);
        assert!(num_threads() >= 1);
    }
}
