//! Deterministic single-threaded replay of an explicit steal schedule.
//!
//! The model checker in `dtc-sched` enumerates steal schedules of a
//! [`ShardPlan`] as an ordered list of `(worker, chunk)` assignments; this
//! module executes one such list against the real engine substrate — the
//! same pooled [`ScratchArena`]s, the same hot-loop / in-worker thread
//! flags the threaded engine sets — and *reports* what happened instead of
//! asserting, so the sched lints can turn violations (a slot written
//! twice, a chunk never run) into diagnostics rather than panics.

use crate::arena::{self, ScratchArena};
use crate::{FlagGuard, ShardPlan, HOT_LOOP, IN_WORKER};

/// What one replayed schedule did to the result slots.
///
/// A well-formed schedule (every chunk exactly once) yields
/// `slot_writes == [1; n]` and all-`Some` results; the checker compares
/// results across schedules for bit-identity.
#[derive(Debug)]
pub struct Replay<R> {
    /// One entry per item index; `None` if the schedule never computed it.
    pub results: Vec<Option<R>>,
    /// Times each item slot was written across the whole replay.
    pub slot_writes: Vec<u32>,
    /// Assignments that named a valid chunk and were executed.
    pub chunks_run: usize,
    /// Assignments that named a chunk index outside the plan (skipped).
    pub bad_assignments: usize,
}

impl<R> Replay<R> {
    /// The results in index order, or `None` if any slot was never written.
    pub fn into_results(self) -> Option<Vec<R>> {
        self.results.into_iter().collect()
    }
}

/// Replays an explicit ordered assignment of chunks to workers.
///
/// Each `(worker, chunk)` entry executes the plan's chunk `chunk` on
/// behalf of worker `worker`: the body runs with that worker's pooled
/// arena and under the same `IN_WORKER`/`HOT_LOOP` flags as threaded
/// execution, one assignment at a time on the calling thread. `f` is
/// called as `f(item_index, worker, scratch)` so checkers can observe
/// which simulated worker computed each item.
///
/// Nothing is asserted: duplicate or missing chunks surface in the
/// returned [`Replay`], out-of-range chunk indices are counted and
/// skipped.
pub fn replay_assignments<R, F>(plan: &ShardPlan, order: &[(usize, usize)], mut f: F) -> Replay<R>
where
    F: FnMut(usize, usize, &mut ScratchArena) -> R,
{
    let n = plan.len();
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let mut slot_writes = vec![0u32; n];
    let chunks = plan.chunk_ranges();
    let mut chunks_run = 0usize;
    let mut bad_assignments = 0usize;
    for &(worker, chunk) in order {
        let Some(&(s, e)) = chunks.get(chunk) else {
            bad_assignments += 1;
            continue;
        };
        chunks_run += 1;
        arena::with_worker_arena(worker, |scratch| {
            let _worker = FlagGuard::set(&IN_WORKER, true);
            let _hot = FlagGuard::set(&HOT_LOOP, true);
            for i in s..e {
                slot_writes[i] = slot_writes[i].saturating_add(1);
                results[i] = Some(f(i, worker, scratch));
            }
        });
    }
    Replay { results, slot_writes, chunks_run, bad_assignments }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hot_loop_active;

    /// The owner-order schedule: every band's chunks in front-to-back
    /// order, bands round-robined — one legal schedule among many.
    fn owner_order(plan: &ShardPlan) -> Vec<(usize, usize)> {
        let mut order = Vec::new();
        for (w, &(cb, ce)) in plan.band_ranges().iter().enumerate() {
            for c in cb..ce {
                order.push((w, c));
            }
        }
        order
    }

    #[test]
    fn full_schedule_matches_serial() {
        let plan = ShardPlan::even(37, 3);
        let replay = replay_assignments(&plan, &owner_order(&plan), |i, _, _| i * i);
        assert_eq!(replay.bad_assignments, 0);
        assert!(replay.slot_writes.iter().all(|&w| w == 1));
        let expect: Vec<usize> = (0..37).map(|i| i * i).collect();
        assert_eq!(replay.into_results(), Some(expect));
    }

    #[test]
    fn duplicate_and_missing_chunks_are_reported_not_asserted() {
        let plan = ShardPlan::even(16, 2);
        let nchunks = plan.chunk_ranges().len();
        // Chunk 0 twice, chunk 1 never, one out-of-range assignment.
        let mut order = vec![(0, 0), (1, 0), (0, nchunks + 5)];
        order.extend((2..nchunks).map(|c| (1, c)));
        let replay = replay_assignments(&plan, &order, |i, _, _| i);
        assert_eq!(replay.bad_assignments, 1);
        let (s0, e0) = plan.chunk_ranges()[0];
        assert!(replay.slot_writes[s0..e0].iter().all(|&w| w == 2));
        let (s1, e1) = plan.chunk_ranges()[1];
        assert!(replay.slot_writes[s1..e1].iter().all(|&w| w == 0));
        assert!(replay.into_results().is_none());
    }

    #[test]
    fn replay_runs_under_engine_flags() {
        let plan = ShardPlan::even(8, 2);
        let replay = replay_assignments(&plan, &owner_order(&plan), |_, _, _| hot_loop_active());
        assert_eq!(replay.into_results(), Some(vec![true; 8]));
        assert!(!hot_loop_active());
    }
}
