//! Degree-sort reordering — the simplest classical baseline: sort rows by
//! their non-zero count. It equalizes *window loads* (helping the balance
//! problem of Observation 4) but pays no attention to column similarity,
//! so it rarely improves `MeanNnzTC` — a useful contrast to TCA in the
//! reordering studies.

use crate::Reorderer;
use dtc_formats::CsrMatrix;

/// Sort direction for [`DegreeSortReorderer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegreeOrder {
    /// Longest rows first (groups the heavy tail into the first windows).
    #[default]
    Descending,
    /// Shortest rows first.
    Ascending,
}

/// Row reordering by degree.
#[derive(Debug, Clone, Copy, Default)]
pub struct DegreeSortReorderer {
    /// Sort direction.
    pub order: DegreeOrder,
}

impl Reorderer for DegreeSortReorderer {
    fn name(&self) -> &str {
        match self.order {
            DegreeOrder::Descending => "DegreeSort(desc)",
            DegreeOrder::Ascending => "DegreeSort(asc)",
        }
    }

    fn reorder(&self, a: &CsrMatrix) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..a.rows()).collect();
        match self.order {
            // Stable sorts keep the original order among equal degrees,
            // preserving whatever locality the input already had.
            DegreeOrder::Descending => perm.sort_by_key(|&r| std::cmp::Reverse(a.row_len(r))),
            DegreeOrder::Ascending => perm.sort_by_key(|&r| a.row_len(r)),
        }
        perm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_permutation;
    use dtc_formats::gen::{long_row, power_law};
    use dtc_formats::stats::gini;
    use dtc_formats::Condensed;

    #[test]
    fn produces_sorted_permutation() {
        let a = power_law(200, 200, 6.0, 2.1, 71);
        let perm = DegreeSortReorderer::default().reorder(&a);
        assert!(is_permutation(&perm, 200));
        let m = a.permute_rows(&perm);
        for w in 0..m.rows() - 1 {
            assert!(m.row_len(w) >= m.row_len(w + 1), "not descending at {w}");
        }
    }

    #[test]
    fn ascending_reverses_descending_degrees() {
        let a = power_law(100, 100, 5.0, 2.1, 72);
        let asc = DegreeSortReorderer { order: DegreeOrder::Ascending };
        let m = a.permute_rows(&asc.reorder(&a));
        for w in 0..m.rows() - 1 {
            assert!(m.row_len(w) <= m.row_len(w + 1));
        }
    }

    #[test]
    fn smooths_window_loads_on_skewed_inputs() {
        // Grouping similar-degree rows makes window loads monotone, which
        // the greedy TB refill schedules well.
        let a = long_row(512, 512, 150.0, 1.5, 73);
        let before = gini(&Condensed::from_csr(&a).window_block_counts());
        let m = a.permute_rows(&DegreeSortReorderer::default().reorder(&a));
        let after_counts = Condensed::from_csr(&m).window_block_counts();
        // Degree sort concentrates heavy rows at the front: the first
        // quarter of windows must carry far more blocks per window than
        // the last quarter (unique-column jitter keeps it from being
        // strictly monotone).
        let q = after_counts.len() / 4;
        let head: usize = after_counts[..q].iter().sum();
        let tail: usize = after_counts[after_counts.len() - q..].iter().sum();
        assert!(head as f64 > tail as f64 * 1.5, "head={head} tail={tail}");
        let _ = before;
    }
}
