//! Jaccard similarity between rows (by their column-index sets).

/// Exact Jaccard index `|A ∩ B| / |A ∪ B|` of two *sorted* index slices.
///
/// Returns 0 when both sets are empty (two empty rows gain nothing from
/// being clustered together, so treating them as dissimilar is harmless).
///
/// # Example
///
/// ```
/// use dtc_reorder::jaccard_sorted;
///
/// assert_eq!(jaccard_sorted(&[1, 2, 3], &[2, 3, 4]), 0.5);
/// assert_eq!(jaccard_sorted(&[1, 2], &[1, 2]), 1.0);
/// assert_eq!(jaccard_sorted(&[1], &[2]), 0.0);
/// ```
pub fn jaccard_sorted(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// MinHash estimate of the Jaccard index from two equal-length signatures:
/// the fraction of matching components. Signature slots equal to
/// `u64::MAX` (empty-set sentinel) never match.
///
/// # Panics
///
/// Panics if the signatures have different lengths.
pub fn jaccard_estimate(sig_a: &[u64], sig_b: &[u64]) -> f64 {
    assert_eq!(sig_a.len(), sig_b.len(), "signature length mismatch");
    if sig_a.is_empty() {
        return 0.0;
    }
    let matches = sig_a.iter().zip(sig_b).filter(|(&x, &y)| x == y && x != u64::MAX).count();
    matches as f64 / sig_a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_cases() {
        assert_eq!(jaccard_sorted(&[], &[]), 0.0);
        assert_eq!(jaccard_sorted(&[1], &[]), 0.0);
        assert_eq!(jaccard_sorted(&[0, 5, 9], &[0, 5, 9]), 1.0);
        assert!((jaccard_sorted(&[0, 1, 2, 3], &[2, 3, 4, 5]) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn estimate_of_identical_sets_is_one() {
        let sig = vec![3u64, 7, 11, 15];
        assert_eq!(jaccard_estimate(&sig, &sig), 1.0);
    }

    #[test]
    fn estimate_sentinels_never_match() {
        let a = vec![u64::MAX; 4];
        assert_eq!(jaccard_estimate(&a, &a), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn estimate_length_mismatch() {
        jaccard_estimate(&[1], &[1, 2]);
    }
}
