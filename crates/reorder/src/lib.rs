//! Row-reordering algorithms for TC-based SpMM.
//!
//! The paper's §4.3 proposes **TCU-Cache-Aware (TCA) reordering** — a
//! two-level hierarchy that first groups Jaccard-similar rows into clusters
//! of at most 16 rows (one TC row window), then regroups those clusters
//! into clusters-of-clusters of at most `SM_NUM` to improve L2 locality —
//! and compares it against METIS, Louvain and a single-level LSH with
//! cluster cap 64 (§5.3, Fig 13). All five are implemented here behind the
//! [`Reorderer`] trait.
//!
//! # Example
//!
//! ```
//! use dtc_formats::gen::community;
//! use dtc_formats::Condensed;
//! use dtc_reorder::{Reorderer, TcaReorderer};
//!
//! let a = community(256, 256, 16, 12.0, 0.9, 1);
//! let perm = TcaReorderer::default().reorder(&a);
//! let reordered = a.permute_rows(&perm);
//! // TCA raises the density of TC blocks.
//! let before = Condensed::from_csr(&a).mean_nnz_tc();
//! let after = Condensed::from_csr(&reordered).mean_nnz_tc();
//! assert!(after >= before);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod degree;
mod jaccard;
mod louvain;
mod lsh;
mod metis_like;
mod minhash;
mod tca;

pub use degree::{DegreeOrder, DegreeSortReorderer};
pub use jaccard::{jaccard_estimate, jaccard_sorted};
pub use louvain::LouvainReorderer;
pub use lsh::{lsh_candidate_pairs, LshParams};
pub use metis_like::MetisLikeReorderer;
pub use minhash::MinHasher;
pub use tca::{Lsh64Reorderer, TcaReorderer, TcuOnlyReorderer};

use dtc_formats::CsrMatrix;

/// A row-reordering algorithm: produces a permutation `perm` such that row
/// `r` of the reordered matrix is row `perm[r]` of the original
/// (the argument convention of [`CsrMatrix::permute_rows`]).
pub trait Reorderer {
    /// Short display name for tables and figures.
    fn name(&self) -> &str;

    /// Computes the row permutation for the given matrix.
    ///
    /// Implementations must return a valid permutation of `0..a.rows()`.
    fn reorder(&self, a: &CsrMatrix) -> Vec<usize>;
}

/// The identity (no-op) reordering — the "SGT only" baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityReorderer;

impl Reorderer for IdentityReorderer {
    fn name(&self) -> &str {
        "identity"
    }

    fn reorder(&self, a: &CsrMatrix) -> Vec<usize> {
        (0..a.rows()).collect()
    }
}

/// Checks that `perm` is a permutation of `0..n` (used by tests and
/// defensive call sites).
pub fn is_permutation(perm: &[usize], n: usize) -> bool {
    if perm.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::{community, power_law, uniform};

    #[test]
    fn identity_is_permutation() {
        let a = uniform(100, 100, 400, 1);
        let perm = IdentityReorderer.reorder(&a);
        assert!(is_permutation(&perm, 100));
        assert_eq!(a.permute_rows(&perm), a);
    }

    #[test]
    fn is_permutation_detects_errors() {
        assert!(is_permutation(&[2, 0, 1], 3));
        assert!(!is_permutation(&[0, 0, 1], 3));
        assert!(!is_permutation(&[0, 1], 3));
        assert!(!is_permutation(&[0, 1, 3], 3));
    }

    #[test]
    fn all_reorderers_produce_permutations() {
        let matrices = vec![
            uniform(130, 130, 600, 2),
            power_law(130, 130, 6.0, 2.2, 3),
            community(130, 130, 8, 8.0, 0.9, 4),
        ];
        let reorderers: Vec<Box<dyn Reorderer>> = vec![
            Box::new(IdentityReorderer),
            Box::new(DegreeSortReorderer::default()),
            Box::new(TcaReorderer::default()),
            Box::new(TcuOnlyReorderer::default()),
            Box::new(Lsh64Reorderer::default()),
            Box::new(MetisLikeReorderer::default()),
            Box::new(LouvainReorderer::default()),
        ];
        for m in &matrices {
            for r in &reorderers {
                let perm = r.reorder(m);
                assert!(is_permutation(&perm, m.rows()), "{} broke permutation", r.name());
            }
        }
    }

    #[test]
    fn reorderers_handle_empty_matrix() {
        let a = CsrMatrix::from_triplets(0, 0, &[]).unwrap();
        let reorderers: Vec<Box<dyn Reorderer>> = vec![
            Box::new(TcaReorderer::default()),
            Box::new(Lsh64Reorderer::default()),
            Box::new(MetisLikeReorderer::default()),
            Box::new(LouvainReorderer::default()),
        ];
        for r in &reorderers {
            assert!(r.reorder(&a).is_empty());
        }
    }
}
