//! A Louvain-flavoured modularity/community baseline.
//!
//! Full Louvain maximizes modularity by iterated local moves and graph
//! coarsening. For the Fig 13 comparison the operative property is
//! *community-structure recovery without TC-block-size awareness*; we
//! implement weighted label propagation over the row graph (rows adjacent
//! when sharing columns, weighted by co-occurrence count), which converges
//! to the same coarse communities on planted-partition inputs, followed by
//! grouping rows community-by-community.

use crate::Reorderer;
use dtc_formats::CsrMatrix;
use std::collections::HashMap;

/// Louvain-like community reorderer (see module docs).
#[derive(Debug, Clone)]
pub struct LouvainReorderer {
    /// Label-propagation sweeps.
    pub iterations: usize,
    /// Cap on rows expanded per column (hub columns are down-weighted).
    pub max_rows_per_col: usize,
}

impl Default for LouvainReorderer {
    fn default() -> Self {
        LouvainReorderer { iterations: 5, max_rows_per_col: 64 }
    }
}

impl Reorderer for LouvainReorderer {
    fn name(&self) -> &str {
        "Louvain-like"
    }

    fn reorder(&self, a: &CsrMatrix) -> Vec<usize> {
        let rows = a.rows();
        if rows == 0 {
            return Vec::new();
        }
        let mut col_rows: Vec<Vec<u32>> = vec![Vec::new(); a.cols()];
        for (r, c, _) in a.iter() {
            let list = &mut col_rows[c];
            if list.len() < self.max_rows_per_col {
                list.push(r as u32);
            }
        }
        // Each row starts in its own community.
        let mut label: Vec<u32> = (0..rows as u32).collect();
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for _ in 0..self.iterations {
            let mut changed = false;
            for r in 0..rows {
                counts.clear();
                for &c in a.row_entries(r).0 {
                    for &nr in &col_rows[c as usize] {
                        if nr as usize != r {
                            *counts.entry(label[nr as usize]).or_insert(0) += 1;
                        }
                    }
                }
                // Adopt the dominant neighbour label (ties -> smallest
                // label, for determinism).
                if let Some((&best, _)) =
                    counts.iter().max_by_key(|&(&l, &cnt)| (cnt, std::cmp::Reverse(l)))
                {
                    if best != label[r] {
                        label[r] = best;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Order rows by (community, original index).
        let mut order: Vec<usize> = (0..rows).collect();
        order.sort_by_key(|&r| (label[r], r));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_permutation;
    use dtc_formats::gen::community;
    use dtc_formats::Condensed;

    #[test]
    fn produces_permutation() {
        let a = community(150, 150, 10, 8.0, 0.9, 6);
        let perm = LouvainReorderer::default().reorder(&a);
        assert!(is_permutation(&perm, 150));
    }

    #[test]
    fn recovers_planted_communities() {
        let a = community(320, 320, 16, 12.0, 0.95, 7);
        let before = Condensed::from_csr(&a).mean_nnz_tc();
        let perm = LouvainReorderer::default().reorder(&a);
        let after = Condensed::from_csr(&a.permute_rows(&perm)).mean_nnz_tc();
        assert!(after > before, "after={after} before={before}");
    }

    #[test]
    fn deterministic() {
        let a = community(100, 100, 8, 6.0, 0.9, 8);
        let r = LouvainReorderer::default();
        assert_eq!(r.reorder(&a), r.reorder(&a));
    }
}
