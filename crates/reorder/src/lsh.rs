//! Banded Locality-Sensitive Hashing over MinHash signatures: candidate
//! row-pair generation for the priority-queue merging of Algorithm 1.

use crate::MinHasher;
use dtc_par::hash::fnv1a;
use std::collections::HashMap;

/// LSH banding parameters.
#[derive(Debug, Clone, Copy)]
pub struct LshParams {
    /// Number of bands the signature is cut into.
    pub bands: usize,
    /// Signature components per band (`bands * rows_per_band <= k`).
    pub rows_per_band: usize,
    /// Cap on the number of items paired within one bucket (large buckets
    /// pair consecutively instead of quadratically).
    pub max_bucket_pairs: usize,
}

impl Default for LshParams {
    fn default() -> Self {
        // 2-row bands: a pair with Jaccard J collides in a band with
        // probability J^2, so even the weakly similar rows of 2-nnz
        // molecule graphs (J ~ 1/3) surface as candidates.
        LshParams { bands: 16, rows_per_band: 2, max_bucket_pairs: 48 }
    }
}

/// Generates candidate similar pairs among `items` (each item is an index
/// set, e.g. a row's columns) via banded LSH over MinHash signatures.
///
/// Returns deduplicated `(i, j)` pairs with `i < j`. Items whose sets are
/// empty never enter any bucket.
pub fn lsh_candidate_pairs(
    hasher: &MinHasher,
    signatures: &[Vec<u64>],
    params: &LshParams,
) -> Vec<(usize, usize)> {
    let k = hasher.k();
    assert!(
        params.bands * params.rows_per_band <= k,
        "banding needs bands*rows_per_band <= k ({} * {} > {k})",
        params.bands,
        params.rows_per_band,
    );
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for band in 0..params.bands {
        let lo = band * params.rows_per_band;
        let hi = lo + params.rows_per_band;
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for (idx, sig) in signatures.iter().enumerate() {
            let slice = &sig[lo..hi];
            if slice.iter().all(|&s| s == u64::MAX) {
                continue; // empty set
            }
            // Shared word-wise FNV over the band slice (the slice length is
            // fixed per call, so no length prefix is needed). Collisions
            // only add candidate pairs — the merge phase re-verifies
            // similarity — so a 64-bit bucket hash needs no key material.
            let h = fnv1a(dtc_par::hash::FNV_OFFSET, slice.iter().copied());
            buckets.entry(h).or_default().push(idx);
        }
        for members in buckets.values() {
            if members.len() < 2 {
                continue;
            }
            if members.len() * (members.len() - 1) / 2 <= params.max_bucket_pairs {
                for (a_pos, &a) in members.iter().enumerate() {
                    for &b in &members[a_pos + 1..] {
                        pairs.push((a.min(b), a.max(b)));
                    }
                }
            } else {
                // Large bucket: chain consecutive members (linear work).
                for w in members.windows(2) {
                    pairs.push((w[0].min(w[1]), w[0].max(w[1])));
                }
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signatures_for(hasher: &MinHasher, sets: &[Vec<u32>]) -> Vec<Vec<u64>> {
        sets.iter().map(|s| hasher.signature(s)).collect()
    }

    #[test]
    fn identical_sets_are_candidates() {
        let h = MinHasher::new(32, 1);
        let sets = vec![vec![1, 2, 3], vec![100, 200], vec![1, 2, 3]];
        let sigs = signatures_for(&h, &sets);
        let pairs = lsh_candidate_pairs(&h, &sigs, &LshParams::default());
        assert!(pairs.contains(&(0, 2)), "pairs={pairs:?}");
    }

    #[test]
    fn disjoint_sets_rarely_pair() {
        let h = MinHasher::new(32, 2);
        let sets: Vec<Vec<u32>> = (0..20).map(|i| vec![i * 100, i * 100 + 1]).collect();
        let sigs = signatures_for(&h, &sets);
        let pairs = lsh_candidate_pairs(&h, &sigs, &LshParams::default());
        // With 4-row bands the chance of a spurious collision is tiny.
        assert!(pairs.len() <= 2, "pairs={pairs:?}");
    }

    #[test]
    fn empty_sets_never_pair() {
        let h = MinHasher::new(32, 3);
        let sets = vec![vec![], vec![], vec![1u32]];
        let sigs = signatures_for(&h, &sets);
        let pairs = lsh_candidate_pairs(&h, &sigs, &LshParams::default());
        assert!(pairs.is_empty());
    }

    #[test]
    fn pairs_are_canonical_and_deduped() {
        let h = MinHasher::new(32, 4);
        let sets = vec![vec![5, 6, 7]; 4];
        let sigs = signatures_for(&h, &sets);
        let pairs = lsh_candidate_pairs(&h, &sigs, &LshParams::default());
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(pairs, sorted);
        assert!(pairs.iter().all(|&(i, j)| i < j));
    }

    #[test]
    #[should_panic(expected = "banding needs")]
    fn oversized_banding_panics() {
        let h = MinHasher::new(8, 5);
        let sigs: Vec<Vec<u64>> = vec![];
        lsh_candidate_pairs(
            &h,
            &sigs,
            &LshParams { bands: 4, rows_per_band: 4, max_bucket_pairs: 8 },
        );
    }
}
