//! A METIS-flavoured graph-partitioning baseline.
//!
//! Real METIS performs multi-level k-way partitioning; the behaviour that
//! matters for the Fig 13 comparison is *locality-oriented grouping that is
//! not TC-block-size aware*. We implement breadth-first traversal ordering
//! over the row-connectivity graph (rows are adjacent when they share a
//! column) — the classic Cuthill-McKee-style bandwidth reduction that graph
//! partitioners approximate for cache behaviour.

use crate::Reorderer;
use dtc_formats::CsrMatrix;
use std::collections::VecDeque;

/// METIS-like BFS/partition ordering (see module docs).
#[derive(Debug, Clone)]
pub struct MetisLikeReorderer {
    /// Cap on how many rows are expanded through a single column (hub
    /// columns connect everything and would make the row graph dense).
    pub max_rows_per_col: usize,
}

impl Default for MetisLikeReorderer {
    fn default() -> Self {
        MetisLikeReorderer { max_rows_per_col: 64 }
    }
}

impl Reorderer for MetisLikeReorderer {
    fn name(&self) -> &str {
        "METIS-like"
    }

    fn reorder(&self, a: &CsrMatrix) -> Vec<usize> {
        let rows = a.rows();
        if rows == 0 {
            return Vec::new();
        }
        // col -> rows inverted index (capped per column).
        let mut col_rows: Vec<Vec<u32>> = vec![Vec::new(); a.cols()];
        for (r, c, _) in a.iter() {
            let list = &mut col_rows[c];
            if list.len() < self.max_rows_per_col {
                list.push(r as u32);
            }
        }
        let mut visited = vec![false; rows];
        let mut order = Vec::with_capacity(rows);
        let mut queue = VecDeque::new();
        // Start each component from the unvisited row of minimum degree
        // (approximating a peripheral vertex).
        let mut by_degree: Vec<usize> = (0..rows).collect();
        by_degree.sort_unstable_by_key(|&r| a.row_len(r));
        for seed in by_degree {
            if visited[seed] {
                continue;
            }
            visited[seed] = true;
            queue.push_back(seed);
            while let Some(r) = queue.pop_front() {
                order.push(r);
                // Neighbours: rows sharing any of r's columns, in
                // ascending-degree order for the CM flavour.
                let mut neigh: Vec<usize> = Vec::new();
                for &c in a.row_entries(r).0 {
                    for &nr in &col_rows[c as usize] {
                        let nr = nr as usize;
                        if !visited[nr] {
                            visited[nr] = true;
                            neigh.push(nr);
                        }
                    }
                }
                neigh.sort_unstable_by_key(|&n| a.row_len(n));
                for n in neigh {
                    queue.push_back(n);
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_permutation;
    use dtc_formats::gen::{community, uniform};
    use dtc_formats::Condensed;

    #[test]
    fn produces_permutation() {
        let a = uniform(200, 200, 800, 1);
        let perm = MetisLikeReorderer::default().reorder(&a);
        assert!(is_permutation(&perm, 200));
    }

    #[test]
    fn groups_connected_rows() {
        // Two disjoint components interleaved by row index: BFS ordering
        // must separate them.
        let mut t = Vec::new();
        for i in 0..20usize {
            // Even rows chain through cols 0..11; odd rows through 100..111.
            let r = i * 2;
            t.push((r, i % 10, 1.0));
            t.push((r, (i % 10) + 1, 1.0));
            let r = i * 2 + 1;
            t.push((r, 100 + i % 10, 1.0));
            t.push((r, 100 + (i % 10) + 1, 1.0));
        }
        let a = CsrMatrix::from_triplets(40, 128, &t).unwrap();
        let perm = MetisLikeReorderer::default().reorder(&a);
        // After reordering, the first 20 rows must be one parity class.
        let first: Vec<usize> = perm[..20].iter().map(|&r| r % 2).collect();
        assert!(first.iter().all(|&p| p == first[0]), "components mixed: {perm:?}");
    }

    #[test]
    fn improves_density_on_community_matrix() {
        let a = community(320, 320, 20, 10.0, 0.9, 5);
        let before = Condensed::from_csr(&a).mean_nnz_tc();
        let perm = MetisLikeReorderer::default().reorder(&a);
        let after = Condensed::from_csr(&a.permute_rows(&perm)).mean_nnz_tc();
        assert!(after > before * 0.95, "after={after} before={before}");
    }

    #[test]
    fn handles_empty_rows() {
        let a = CsrMatrix::from_triplets(10, 10, &[(0, 0, 1.0)]).unwrap();
        let perm = MetisLikeReorderer::default().reorder(&a);
        assert!(is_permutation(&perm, 10));
    }
}
