//! MinHash signatures over row column-sets.
//!
//! The paper accelerates these on GPU with MinHashCuda (§6); here they run
//! on the CPU with the same algorithmic role: a `k`-component signature per
//! row whose component-wise match probability equals the Jaccard
//! similarity.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const MERSENNE_PRIME: u64 = (1 << 61) - 1;

/// A family of `k` universal hash functions producing MinHash signatures.
#[derive(Debug, Clone)]
pub struct MinHasher {
    coeff_a: Vec<u64>,
    coeff_b: Vec<u64>,
}

impl MinHasher {
    /// Creates a hasher with `k` signature components from a seed.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "need at least one hash function");
        let mut rng = StdRng::seed_from_u64(seed);
        let coeff_a = (0..k).map(|_| rng.random_range(1..MERSENNE_PRIME)).collect();
        let coeff_b = (0..k).map(|_| rng.random_range(0..MERSENNE_PRIME)).collect();
        MinHasher { coeff_a, coeff_b }
    }

    /// Number of signature components.
    pub fn k(&self) -> usize {
        self.coeff_a.len()
    }

    /// Signature of an index set. Empty sets produce all-`u64::MAX`
    /// signatures (the sentinel [`crate::jaccard_estimate`] never matches).
    pub fn signature(&self, set: &[u32]) -> Vec<u64> {
        let mut sig = vec![u64::MAX; self.k()];
        for &x in set {
            for (i, slot) in sig.iter_mut().enumerate() {
                let h = (self.coeff_a[i].wrapping_mul(x as u64 + 1).wrapping_add(self.coeff_b[i]))
                    % MERSENNE_PRIME;
                if h < *slot {
                    *slot = h;
                }
            }
        }
        sig
    }

    /// Combines two signatures into the signature of the *union* of the
    /// underlying sets (component-wise min) — used by Hierarchy II to get
    /// cluster signatures without re-hashing.
    pub fn union_signature(a: &[u64], b: &[u64]) -> Vec<u64> {
        assert_eq!(a.len(), b.len(), "signature length mismatch");
        a.iter().zip(b).map(|(&x, &y)| x.min(y)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard_estimate;

    #[test]
    fn identical_sets_identical_signatures() {
        let h = MinHasher::new(32, 1);
        let s1 = h.signature(&[1, 5, 9, 200]);
        let s2 = h.signature(&[1, 5, 9, 200]);
        assert_eq!(s1, s2);
        assert_eq!(jaccard_estimate(&s1, &s2), 1.0);
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        let h = MinHasher::new(256, 7);
        // Sets with true Jaccard 1/3: {0..20} vs {10..30}.
        let a: Vec<u32> = (0..20).collect();
        let b: Vec<u32> = (10..30).collect();
        let est = jaccard_estimate(&h.signature(&a), &h.signature(&b));
        assert!((est - 1.0 / 3.0).abs() < 0.12, "est={est}");
    }

    #[test]
    fn empty_set_sentinel() {
        let h = MinHasher::new(8, 2);
        assert!(h.signature(&[]).iter().all(|&s| s == u64::MAX));
    }

    #[test]
    fn union_signature_matches_direct_hash() {
        let h = MinHasher::new(64, 3);
        let a: Vec<u32> = vec![1, 2, 3];
        let b: Vec<u32> = vec![3, 4, 5];
        let u: Vec<u32> = vec![1, 2, 3, 4, 5];
        assert_eq!(MinHasher::union_signature(&h.signature(&a), &h.signature(&b)), h.signature(&u));
    }

    #[test]
    fn different_seeds_differ() {
        let s1 = MinHasher::new(8, 1).signature(&[1, 2, 3]);
        let s2 = MinHasher::new(8, 2).signature(&[1, 2, 3]);
        assert_ne!(s1, s2);
    }
}
