//! TCU-Cache-Aware (TCA) reordering — Algorithm 1 of the paper — plus its
//! single-hierarchy ablations (`TCU-only`) and the LSH64 baseline from
//! Huang et al. \[23\].

use crate::{jaccard_sorted, lsh_candidate_pairs, LshParams, MinHasher, Reorderer};
use dtc_formats::CsrMatrix;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A candidate pair with its similarity, ordered for a max-heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ScoredPair {
    score: f64,
    i: usize,
    j: usize,
}

impl Eq for ScoredPair {}

impl Ord for ScoredPair {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.i.cmp(&self.i))
            .then_with(|| other.j.cmp(&self.j))
    }
}

impl PartialOrd for ScoredPair {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Greedy similarity-driven agglomeration (the body of both hierarchies of
/// Algorithm 1): dequeue the most similar pair, merge their clusters, and
/// retire clusters reaching `size_cap` from further merging. Returns the
/// clusters as member lists (members keep their relative input order).
fn agglomerate(
    num_items: usize,
    item_weight: impl Fn(usize) -> usize,
    scored_pairs: Vec<ScoredPair>,
    size_cap: usize,
) -> Vec<Vec<usize>> {
    // Union-find with member lists and retirement flags.
    let mut parent: Vec<usize> = (0..num_items).collect();
    let mut members: Vec<Vec<usize>> = (0..num_items).map(|i| vec![i]).collect();
    let mut weight: Vec<usize> = (0..num_items).map(&item_weight).collect();
    let mut retired: Vec<bool> = (0..num_items).map(|i| weight[i] >= size_cap).collect();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    let mut queue: BinaryHeap<ScoredPair> = scored_pairs.into_iter().collect();
    while let Some(ScoredPair { i, j, .. }) = queue.pop() {
        let ri = find(&mut parent, i);
        let rj = find(&mut parent, j);
        if ri == rj || retired[ri] || retired[rj] {
            continue;
        }
        // Merge the smaller member list into the larger.
        let (dst, src) = if members[ri].len() >= members[rj].len() { (ri, rj) } else { (rj, ri) };
        let moved = std::mem::take(&mut members[src]);
        members[dst].extend(moved);
        weight[dst] += weight[src];
        parent[src] = dst;
        if weight[dst] >= size_cap {
            retired[dst] = true; // Algorithm 1 lines 9-13: cap reached.
        }
    }

    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for i in 0..num_items {
        if parent[i] == i && !members[i].is_empty() {
            let mut m = std::mem::take(&mut members[i]);
            m.sort_unstable(); // keep input order within a cluster
            clusters.push(m);
        }
    }
    // Deterministic cluster order: by smallest member.
    clusters.sort_unstable_by_key(|c| c[0]);
    clusters
}

/// The paper's TCU-Cache-Aware reorderer (Algorithm 1).
///
/// Hierarchy I groups Jaccard-similar rows into clusters capped at
/// `block_height` (= 16, one TC row window). Hierarchy II regroups those
/// clusters — compared by the deduplicated column sets of their member rows
/// — into clusters-of-clusters capped at `sm_num`, so that concurrently
/// scheduled row windows touch overlapping B rows and hit in L2.
#[derive(Debug, Clone)]
pub struct TcaReorderer {
    /// Hierarchy-I cluster cap (`BLOCK_HEIGHT`, default 16).
    pub block_height: usize,
    /// Hierarchy-II cluster cap (`SM_NUM`, default 128 = RTX4090).
    pub sm_num: usize,
    /// MinHash signature length.
    pub minhash_k: usize,
    /// LSH banding parameters.
    pub lsh: LshParams,
    /// Minimum exact Jaccard similarity for a candidate pair to enter the
    /// merge queue — merging weakly similar rows pulls them out of
    /// already-good windows and *lowers* density.
    pub min_similarity: f64,
    /// No-regression guard (an extension over the paper, which reorders
    /// unconditionally): if the reordering does not reduce the TC block
    /// count, keep the original order. Costs one extra SGT condensing.
    pub keep_if_no_gain: bool,
    /// Seed for the hash family.
    pub seed: u64,
}

impl Default for TcaReorderer {
    fn default() -> Self {
        TcaReorderer {
            block_height: 16,
            sm_num: 128,
            minhash_k: 32,
            lsh: LshParams::default(),
            min_similarity: 0.15,
            keep_if_no_gain: true,
            seed: 0x7c5a,
        }
    }
}

impl TcaReorderer {
    /// Runs only Hierarchy I and returns the row clusters (used by the
    /// ablation and by Hierarchy II).
    pub fn hierarchy_one(&self, a: &CsrMatrix) -> Vec<Vec<usize>> {
        let hasher = MinHasher::new(self.minhash_k, self.seed);
        // Per-row MinHash signatures and per-candidate exact Jaccard scores
        // are pure functions of their row(s); both passes fan out over
        // threads with slot-indexed collection, so the scored-pair list
        // (and hence the merge heap) is identical to a serial pass at any
        // thread count and under any steal schedule. Shards are cut at nnz
        // quantiles: hashing/scoring cost tracks row length, and power-law
        // inputs are exactly where reordering matters.
        let row_weights: Vec<u64> =
            (0..a.rows()).map(|r| a.row_entries(r).0.len() as u64).collect();
        let signatures: Vec<Vec<u64>> = dtc_par::par_map_collect_weighted(&row_weights, |r| {
            hasher.signature(a.row_entries(r).0)
        });
        let candidates = lsh_candidate_pairs(&hasher, &signatures, &self.lsh);
        let pair_weights: Vec<u64> = candidates
            .iter()
            .map(|&(i, j)| (a.row_entries(i).0.len() + a.row_entries(j).0.len()) as u64)
            .collect();
        let scored: Vec<ScoredPair> = dtc_par::par_map_collect_weighted(&pair_weights, |k| {
            let (i, j) = candidates[k];
            ScoredPair { score: jaccard_sorted(a.row_entries(i).0, a.row_entries(j).0), i, j }
        })
        .into_iter()
        .filter(|p| p.score >= self.min_similarity)
        .collect();
        agglomerate(a.rows(), |_| 1, scored, self.block_height)
    }

    /// Runs Hierarchy II over given row clusters and returns the clusters
    /// grouped into clusters-of-clusters.
    /// Per §4.3: "we deduplicate the column indices of all nonzero
    /// elements within a row cluster and calculate the Jaccard similarity
    /// between row clusters with these indices" — candidates come from LSH
    /// over union MinHash signatures, scores are *exact* Jaccard on the
    /// deduplicated column sets.
    pub fn hierarchy_two(&self, a: &CsrMatrix, clusters: &[Vec<usize>]) -> Vec<Vec<usize>> {
        let hasher = MinHasher::new(self.minhash_k, self.seed.wrapping_add(1));
        // Deduplicated column set per cluster (sorted) + its signature,
        // built per-cluster in parallel (each task reads only its own
        // cluster's rows). Clusters are weighted by their member nnz, and
        // the dedup staging buffer is leased from the worker's arena — the
        // only allocation a task keeps is the exact-size column set it
        // returns.
        let cluster_weights: Vec<u64> = clusters
            .iter()
            .map(|c| c.iter().map(|&r| a.row_entries(r).0.len() as u64).sum())
            .collect();
        let plan = dtc_par::ShardPlan::weighted(dtc_par::num_threads(), &cluster_weights);
        let per_cluster: Vec<(Vec<u32>, Vec<u64>)> =
            dtc_par::par_map_collect_plan(&plan, |ci, scratch| {
                let mut stage = scratch.u32_buf();
                for &r in &clusters[ci] {
                    stage.extend_from_slice(a.row_entries(r).0);
                }
                stage.sort_unstable();
                stage.dedup();
                let cols: Vec<u32> = stage.as_slice().to_vec();
                scratch.recycle_u32(stage);
                let sig = hasher.signature(&cols);
                (cols, sig)
            });
        let mut cluster_cols: Vec<Vec<u32>> = Vec::with_capacity(clusters.len());
        let mut cluster_sigs: Vec<Vec<u64>> = Vec::with_capacity(clusters.len());
        for (cols, sig) in per_cluster {
            cluster_cols.push(cols);
            cluster_sigs.push(sig);
        }
        // Single-component bands: cluster column sets overlap weakly with
        // the small straggler clusters of their community, so candidate
        // recall matters more than precision here (exact Jaccard scoring
        // filters the noise).
        let h2_lsh = LshParams {
            bands: self.minhash_k,
            rows_per_band: 1,
            max_bucket_pairs: self.lsh.max_bucket_pairs,
        };
        let candidates = lsh_candidate_pairs(&hasher, &cluster_sigs, &h2_lsh);
        let pair_weights: Vec<u64> = candidates
            .iter()
            .map(|&(i, j)| (cluster_cols[i].len() + cluster_cols[j].len()) as u64)
            .collect();
        let scored: Vec<ScoredPair> = dtc_par::par_map_collect_weighted(&pair_weights, |k| {
            let (i, j) = candidates[k];
            ScoredPair { score: jaccard_sorted(&cluster_cols[i], &cluster_cols[j]), i, j }
        })
        .into_iter()
        .filter(|p| p.score > 0.02)
        .collect();
        // Weight = number of row clusters per CC, capped at sm_num.
        agglomerate(clusters.len(), |_| 1, scored, self.sm_num)
    }
}

/// Packs a sequence of clusters into 16-row windows without straddling
/// where possible: row windows are carved every [`window`] rows of the
/// final permutation regardless of cluster boundaries, so a cluster that
/// straddles a boundary pollutes two windows. Greedy first-fit with a
/// bounded lookahead keeps clusters whole.
fn pack_into_windows(clusters: &[Vec<usize>], window: usize, total_rows: usize) -> Vec<usize> {
    const LOOKAHEAD: usize = 96;
    let mut used = vec![false; clusters.len()];
    let mut perm = Vec::with_capacity(total_rows);
    let mut cursor = 0usize;
    let mut remaining = clusters.len();
    while remaining > 0 {
        while cursor < clusters.len() && used[cursor] {
            cursor += 1;
        }
        let space = window - (perm.len() % window);
        // Find the first unused cluster within the lookahead that fits the
        // remaining window space.
        let mut chosen = None;
        let mut scanned = 0;
        for ci in cursor..clusters.len() {
            if used[ci] {
                continue;
            }
            scanned += 1;
            if clusters[ci].len() <= space {
                chosen = Some(ci);
                break;
            }
            if scanned >= LOOKAHEAD {
                break;
            }
        }
        // Nothing fits: take the next cluster in order (straddle).
        let ci = chosen.unwrap_or(cursor);
        used[ci] = true;
        remaining -= 1;
        perm.extend_from_slice(&clusters[ci]);
    }
    perm
}

impl Reorderer for TcaReorderer {
    fn name(&self) -> &str {
        "TCA"
    }

    fn reorder(&self, a: &CsrMatrix) -> Vec<usize> {
        let clusters = self.hierarchy_one(a);
        let ccs = self.hierarchy_two(a, &clusters);
        let ordered: Vec<Vec<usize>> =
            ccs.iter().flat_map(|cc| cc.iter().map(|&ci| clusters[ci].clone())).collect();
        let perm = pack_into_windows(&ordered, 16, a.rows());
        if self.keep_if_no_gain && !improves(a, &perm) {
            return (0..a.rows()).collect();
        }
        perm
    }
}

/// True when the permutation reduces the TC block count.
fn improves(a: &CsrMatrix, perm: &[usize]) -> bool {
    use dtc_formats::Condensed;
    let before = Condensed::from_csr(a).num_tc_blocks();
    let after = Condensed::from_csr(&a.permute_rows(perm)).num_tc_blocks();
    after < before
}

/// Hierarchy I only — the `TCU-Aware`-only ablation of Fig 13(c).
#[derive(Debug, Clone, Default)]
pub struct TcuOnlyReorderer {
    /// The underlying TCA configuration (Hierarchy II is simply skipped).
    pub tca: TcaReorderer,
}

impl Reorderer for TcuOnlyReorderer {
    fn name(&self) -> &str {
        "TCU-only"
    }

    fn reorder(&self, a: &CsrMatrix) -> Vec<usize> {
        let clusters = self.tca.hierarchy_one(a);
        let perm = pack_into_windows(&clusters, 16, a.rows());
        if self.tca.keep_if_no_gain && !improves(a, &perm) {
            return (0..a.rows()).collect();
        }
        perm
    }
}

/// The LSH64 baseline \[23\]: a single-level similarity clustering with a
/// cluster cap of 64 rows — the paper argues this cap groups low-similarity
/// rows and hence condenses worse than TCA's cap of 16 (§4.3).
#[derive(Debug, Clone)]
pub struct Lsh64Reorderer {
    inner: TcaReorderer,
}

impl Default for Lsh64Reorderer {
    fn default() -> Self {
        Lsh64Reorderer { inner: TcaReorderer { block_height: 64, ..TcaReorderer::default() } }
    }
}

impl Reorderer for Lsh64Reorderer {
    fn name(&self) -> &str {
        "LSH64"
    }

    fn reorder(&self, a: &CsrMatrix) -> Vec<usize> {
        let clusters = self.inner.hierarchy_one(a);
        clusters.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_permutation;
    use dtc_formats::gen::community;
    use dtc_formats::Condensed;

    #[test]
    fn agglomerate_respects_cap() {
        // 8 identical items, cap 4: no cluster may exceed ~2x cap after a
        // merge (paper merges then retires; with unit weights merging two
        // size-3 clusters gives 6 >= 4 which retires it).
        let pairs: Vec<ScoredPair> = (0..8)
            .flat_map(|i| ((i + 1)..8).map(move |j| ScoredPair { score: 1.0, i, j }))
            .collect();
        let clusters = agglomerate(8, |_| 1, pairs, 4);
        let total: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 8);
        for c in &clusters {
            assert!(c.len() < 8, "cap was never applied: {c:?}");
        }
    }

    #[test]
    fn agglomerate_merges_best_first() {
        let pairs =
            vec![ScoredPair { score: 0.9, i: 0, j: 1 }, ScoredPair { score: 0.1, i: 2, j: 3 }];
        let clusters = agglomerate(4, |_| 1, pairs, 16);
        assert_eq!(clusters.len(), 2);
        assert!(clusters.contains(&vec![0, 1]));
        assert!(clusters.contains(&vec![2, 3]));
    }

    #[test]
    fn tca_improves_mean_nnz_tc_on_community_matrix() {
        let a = community(320, 320, 20, 12.0, 0.92, 11);
        let before = Condensed::from_csr(&a).mean_nnz_tc();
        let perm = TcaReorderer::default().reorder(&a);
        assert!(is_permutation(&perm, a.rows()));
        let after = Condensed::from_csr(&a.permute_rows(&perm)).mean_nnz_tc();
        assert!(after > before * 1.1, "after={after} before={before}");
    }

    #[test]
    fn tcu_only_also_improves_density() {
        let a = community(320, 320, 20, 12.0, 0.92, 12);
        let before = Condensed::from_csr(&a).mean_nnz_tc();
        let perm = TcuOnlyReorderer::default().reorder(&a);
        let after = Condensed::from_csr(&a.permute_rows(&perm)).mean_nnz_tc();
        assert!(after > before, "after={after} before={before}");
    }

    #[test]
    fn tca_beats_lsh64_on_density() {
        // The paper's argument for the 16-row cap (§4.3): LSH64's larger
        // clusters mix lower-similarity rows into the same windows.
        let a = community(640, 640, 40, 12.0, 0.9, 13);
        let tca = TcaReorderer::default().reorder(&a);
        let lsh64 = Lsh64Reorderer::default().reorder(&a);
        let d_tca = Condensed::from_csr(&a.permute_rows(&tca)).mean_nnz_tc();
        let d_lsh = Condensed::from_csr(&a.permute_rows(&lsh64)).mean_nnz_tc();
        assert!(d_tca >= d_lsh * 0.95, "tca={d_tca} lsh64={d_lsh}");
    }

    #[test]
    fn scored_pair_ordering() {
        let mut heap = BinaryHeap::new();
        heap.push(ScoredPair { score: 0.2, i: 0, j: 1 });
        heap.push(ScoredPair { score: 0.8, i: 2, j: 3 });
        assert_eq!(heap.pop().unwrap().score, 0.8);
    }
}
