//! Exhaustive enumeration of steal schedules with sleep-set partial-order
//! reduction.
//!
//! # The schedule model
//!
//! A [`ShardPlan`](dtc_par::ShardPlan) gives every worker `w` a band of
//! chunk indices; at runtime the owner pops its band's *front* while idle
//! thieves pop a victim's *back*, and a stolen chunk executes immediately
//! on the thief (it is never re-enqueued). The reachable deque states are
//! therefore exactly the per-band half-open windows `lo..hi`, and a
//! complete execution is a sequence of actions
//!
//! - `Pop(w)` — worker `w` takes chunk `lo_w` from its own band
//!   (enabled iff band `w` is non-empty), or
//! - `Steal(w, v)` — idle worker `w` takes chunk `hi_v - 1` from band `v`
//!   (enabled iff band `w` is empty and band `v` is not),
//!
//! repeated until every band is empty. [`enumerate_schedules`] walks this
//! space depth-first and hands each *complete* schedule — as the ordered
//! `(worker, chunk)` assignment list the replay engine consumes — to a
//! visitor.
//!
//! # Partial-order reduction (sleep sets)
//!
//! Two actions are **independent** when they have different actors *and*
//! touch different bands (`bands(Pop(w)) = {w}`,
//! `bands(Steal(w, v)) = {v}`). Independent actions commute — they
//! remove different chunks from different deques — and neither enables
//! nor disables the other: an action only changes the emptiness of the
//! bands it touches and the idleness of its own actor. Dependent pairs
//! (same actor: program order; same band: they race on one deque end or
//! on its emptiness) are always explored in both orders.
//!
//! The exploration carries a *sleep set*: after fully exploring action
//! `a` from a state, `a` is added to the sleep set of the exploration of
//! every later sibling `b` independent of it, and pruned from sleep sets
//! whenever a dependent action executes. A schedule that begins `b` then
//! `a` with `a` sleeping is exactly a commutation of an already-explored
//! `a`-first schedule, so the subtree is skipped. Sleep sets are a
//! *sound* reduction: every terminal state (and, here, every equivalence
//! class of schedules up to commutation of independent actions) is still
//! reached — the checker loses no behaviors, only duplicates.
//!
//! # Bounding
//!
//! The walk stops after `max_schedules` complete schedules and reports
//! [`ExploreStats::exhaustive`] `false`; small plans (the checker's
//! bread and butter) finish exhaustively well under the default cap.

use dtc_par::ShardPlan;

/// One scheduler action: an owner pop or a cross-band steal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Worker `worker` pops the front of its own band.
    Pop {
        /// The acting worker (and the band popped).
        worker: usize,
    },
    /// Idle worker `worker` steals the back of band `victim`.
    Steal {
        /// The acting (idle) worker.
        worker: usize,
        /// The band stolen from.
        victim: usize,
    },
}

impl Action {
    /// The worker performing the action.
    pub fn actor(self) -> usize {
        match self {
            Action::Pop { worker } | Action::Steal { worker, .. } => worker,
        }
    }

    /// The band the action removes a chunk from.
    pub fn band(self) -> usize {
        match self {
            Action::Pop { worker } => worker,
            Action::Steal { victim, .. } => victim,
        }
    }

    /// Whether two actions are dependent (must be explored in both
    /// orders): same actor or same touched band.
    pub fn dependent(self, other: Action) -> bool {
        self.actor() == other.actor() || self.band() == other.band()
    }
}

/// What one exploration did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreStats {
    /// Complete schedules handed to the visitor.
    pub schedules: u64,
    /// Individual actions executed across the whole walk.
    pub transitions: u64,
    /// Whether the space was exhausted (`false` when `max_schedules`
    /// stopped the walk early).
    pub exhaustive: bool,
}

struct Explorer<'a, F> {
    /// Remaining chunk window per band.
    state: Vec<(usize, usize)>,
    prefix: Vec<(usize, usize)>,
    visit: &'a mut F,
    max_schedules: u64,
    stats: ExploreStats,
}

impl<F: FnMut(&[(usize, usize)])> Explorer<'_, F> {
    fn enabled(&self) -> Vec<Action> {
        let mut out = Vec::new();
        for (w, &(lo, hi)) in self.state.iter().enumerate() {
            if lo < hi {
                out.push(Action::Pop { worker: w });
            } else {
                for (v, &(vlo, vhi)) in self.state.iter().enumerate() {
                    if v != w && vlo < vhi {
                        out.push(Action::Steal { worker: w, victim: v });
                    }
                }
            }
        }
        out
    }

    /// Returns `false` when the schedule cap stopped the walk.
    fn dfs(&mut self, sleep: &[Action]) -> bool {
        let enabled = self.enabled();
        if enabled.is_empty() {
            self.stats.schedules += 1;
            (self.visit)(&self.prefix);
            return self.stats.schedules < self.max_schedules;
        }
        let mut done: Vec<Action> = Vec::new();
        for &action in &enabled {
            if sleep.contains(&action) {
                continue;
            }
            let band = action.band();
            let (lo, hi) = self.state[band];
            let chunk = match action {
                Action::Pop { .. } => {
                    self.state[band] = (lo + 1, hi);
                    lo
                }
                Action::Steal { .. } => {
                    self.state[band] = (lo, hi - 1);
                    hi - 1
                }
            };
            self.prefix.push((action.actor(), chunk));
            self.stats.transitions += 1;
            // The child sleeps on every already-explored or inherited
            // action that commutes with this one.
            let child_sleep: Vec<Action> = sleep
                .iter()
                .chain(done.iter())
                .copied()
                .filter(|&s| !s.dependent(action))
                .collect();
            let keep_going = self.dfs(&child_sleep);
            self.prefix.pop();
            self.state[band] = (lo, hi);
            if !keep_going {
                self.stats.exhaustive = false;
                return false;
            }
            done.push(action);
        }
        true
    }
}

/// Enumerates every steal schedule of `plan` up to commutation of
/// independent actions, calling `visit` with each complete ordered
/// `(worker, chunk)` assignment list (ready for
/// [`dtc_par::replay_assignments`]). Stops after `max_schedules`
/// complete schedules.
pub fn enumerate_schedules<F>(plan: &ShardPlan, max_schedules: u64, visit: &mut F) -> ExploreStats
where
    F: FnMut(&[(usize, usize)]),
{
    let total_chunks = plan.chunk_ranges().len();
    let mut explorer = Explorer {
        state: plan.band_ranges().to_vec(),
        prefix: Vec::with_capacity(total_chunks),
        visit,
        max_schedules: max_schedules.max(1),
        stats: ExploreStats { schedules: 0, transitions: 0, exhaustive: true },
    };
    explorer.dfs(&[]);
    explorer.stats
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force enumeration without any reduction, for cross-checking.
    fn brute_force(plan: &ShardPlan, out: &mut Vec<Vec<(usize, usize)>>) {
        fn rec(
            state: &mut Vec<(usize, usize)>,
            prefix: &mut Vec<(usize, usize)>,
            out: &mut Vec<Vec<(usize, usize)>>,
        ) {
            let mut any = false;
            for w in 0..state.len() {
                let (lo, hi) = state[w];
                if lo < hi {
                    any = true;
                    state[w] = (lo + 1, hi);
                    prefix.push((w, lo));
                    rec(state, prefix, out);
                    prefix.pop();
                    state[w] = (lo, hi);
                } else {
                    for v in 0..state.len() {
                        let (vlo, vhi) = state[v];
                        if v != w && vlo < vhi {
                            any = true;
                            state[v] = (vlo, vhi - 1);
                            prefix.push((w, vhi - 1));
                            rec(state, prefix, out);
                            prefix.pop();
                            state[v] = (vlo, vhi);
                        }
                    }
                }
            }
            if !any {
                out.push(prefix.clone());
            }
        }
        let mut state = plan.band_ranges().to_vec();
        rec(&mut state, &mut Vec::new(), out);
    }

    /// Equivalence key: each worker's chunk-execution sequence. Commuting
    /// independent actions never reorders one actor's actions, so this is
    /// invariant under commutation; Mazurkiewicz trace classes refine it
    /// (same-band order is also fixed within a trace), so a reduction that
    /// covers every trace class covers every key. It is also exactly what
    /// the replay checker can observe — which worker ran each chunk, in
    /// what per-worker order.
    fn canon(plan: &ShardPlan, sched: &[(usize, usize)]) -> Vec<Vec<usize>> {
        let nbands = plan.band_ranges().len();
        let mut per_worker: Vec<Vec<usize>> = vec![Vec::new(); nbands];
        for &(w, c) in sched {
            per_worker[w].push(c);
        }
        per_worker
    }

    #[test]
    fn por_preserves_equivalence_classes() {
        // Small plans: POR must visit exactly one representative of every
        // commutation class the brute-force walk finds.
        for (n, threads) in [(6usize, 2usize), (8, 2), (6, 3)] {
            let plan = ShardPlan::even(n, threads);
            let mut brute = Vec::new();
            brute_force(&plan, &mut brute);
            let brute_classes: std::collections::BTreeSet<Vec<Vec<usize>>> =
                brute.iter().map(|s| canon(&plan, s)).collect();

            let mut reduced = Vec::new();
            let stats = enumerate_schedules(&plan, u64::MAX, &mut |s: &[(usize, usize)]| {
                reduced.push(s.to_vec())
            });
            assert!(stats.exhaustive);
            let reduced_classes: std::collections::BTreeSet<Vec<Vec<usize>>> =
                reduced.iter().map(|s| canon(&plan, s)).collect();

            assert_eq!(
                brute_classes, reduced_classes,
                "n={n} t={threads}: POR lost or invented a class"
            );
            assert!(reduced.len() <= brute.len(), "n={n} t={threads}: reduction did not reduce");
        }
    }

    #[test]
    fn single_band_has_exactly_one_schedule() {
        let plan = ShardPlan::even(16, 1);
        let mut seen = Vec::new();
        let stats =
            enumerate_schedules(&plan, u64::MAX, &mut |s: &[(usize, usize)]| seen.push(s.to_vec()));
        assert_eq!(stats.schedules, 1);
        assert!(stats.exhaustive);
        let nchunks = plan.chunk_ranges().len();
        assert_eq!(seen[0], (0..nchunks).map(|c| (0usize, c)).collect::<Vec<_>>());
    }

    #[test]
    fn every_schedule_covers_every_chunk_once() {
        let plan = ShardPlan::even(12, 3);
        let nchunks = plan.chunk_ranges().len();
        let mut checked = 0u64;
        let stats = enumerate_schedules(&plan, 10_000, &mut |s: &[(usize, usize)]| {
            let mut seen = vec![false; nchunks];
            for &(_, c) in s {
                assert!(!seen[c], "chunk {c} scheduled twice");
                seen[c] = true;
            }
            assert!(seen.iter().all(|&b| b), "some chunk never scheduled");
            checked += 1;
        });
        assert_eq!(stats.schedules, checked);
        assert!(stats.schedules > 1);
    }

    #[test]
    fn cap_stops_early_and_reports_nonexhaustive() {
        let plan = ShardPlan::even(64, 4);
        let mut count = 0u64;
        let stats = enumerate_schedules(&plan, 50, &mut |_: &[(usize, usize)]| count += 1);
        assert_eq!(count, 50);
        assert_eq!(stats.schedules, 50);
        assert!(!stats.exhaustive);
    }
}
