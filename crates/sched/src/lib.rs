//! `dtc-sched`: a bounded model checker for the work-stealing substrate.
//!
//! The determinism story of `dtc-par` — any thread count, any steal
//! schedule, bit-identical results — is the foundation every numeric
//! claim in this workspace stands on. This crate checks it the strong
//! way: instead of sampling a few steal seeds, it *exhaustively
//! enumerates* the steal schedules of small [`ShardPlan`]s (with
//! sleep-set partial-order reduction, see [`explore`]), replays each one
//! against the real engine substrate via
//! [`dtc_par::replay_assignments`], and asserts on every explored
//! schedule that
//!
//! - every result slot is written exactly once
//!   (`sched-slot-exclusivity`),
//! - every chunk executes exactly once (`sched-chunk-coverage`),
//! - outputs are bitwise identical to the serial reference
//!   (`sched-output-divergence`),
//! - leased arena buffers carry no state across chunks
//!   (`sched-arena-aliasing`), and
//! - after one warm-up replay, steady-state replays allocate nothing
//!   (`sched-alloc-steady-state`, when the caller wires an allocation
//!   probe — the `schedcheck` bin installs a counting allocator keyed on
//!   [`dtc_par::hot_loop_active`]).
//!
//! Violations surface as [`SchedDiagnostic`]s from the shared
//! concurrency-lint registry in [`dtc_verify::sched`]; the plan itself is
//! additionally run through the structural plan lints, and
//! [`locks::workspace_lock_graph`] carries the workspace's lock-order
//! audit. [`SchedReport::to_json`] renders the `SCHEDCHECK.json` artifact
//! CI gates on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod locks;

pub use explore::{enumerate_schedules, Action, ExploreStats};
pub use locks::workspace_lock_graph;

use dtc_par::{replay_assignments, ScratchArena, ShardPlan};
use dtc_telemetry::json::Json;
use dtc_verify::sched::SchedLocation;
use dtc_verify::{verify_plan, SchedCase, SchedDiagnostic, SchedLintId, Severity};
use std::sync::OnceLock;

/// Options for one [`check_plan`] run.
pub struct CheckOptions<'a> {
    /// Stop after this many complete schedules (the walk reports
    /// non-exhaustive when hit).
    pub max_schedules: u64,
    /// Reads the cumulative hot-loop allocation count, when the host
    /// process runs a counting allocator; enables the
    /// `sched-alloc-steady-state` assertion.
    pub alloc_probe: Option<&'a dyn Fn() -> u64>,
}

impl Default for CheckOptions<'_> {
    fn default() -> Self {
        CheckOptions { max_schedules: 20_000, alloc_probe: None }
    }
}

/// The verdict for one plan shape.
#[derive(Debug)]
pub struct PlanCheck {
    /// Case name (plan shape).
    pub name: String,
    /// Items in the plan.
    pub items: usize,
    /// Chunks in the plan.
    pub chunks: usize,
    /// Worker bands in the plan.
    pub bands: usize,
    /// Complete schedules replayed.
    pub schedules: u64,
    /// Scheduler actions executed across the walk.
    pub transitions: u64,
    /// Whether the schedule space was exhausted under the cap.
    pub exhaustive: bool,
    /// Every diagnostic: structural plan lints plus explored-schedule
    /// assertions.
    pub diagnostics: Vec<SchedDiagnostic>,
}

impl PlanCheck {
    /// Whether any error-severity diagnostic was found.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }
}

fn sched_telemetry(schedules: u64, violations: usize) {
    static SCHEDULES: OnceLock<&'static dtc_telemetry::Counter> = OnceLock::new();
    static VIOLATIONS: OnceLock<&'static dtc_telemetry::Counter> = OnceLock::new();
    SCHEDULES.get_or_init(|| dtc_telemetry::counter("sched.schedules.explored")).add(schedules);
    VIOLATIONS.get_or_init(|| dtc_telemetry::counter("sched.violations")).add(violations as u64);
}

/// What the checker observed about one replayed schedule, before
/// judgment. Extracted from the replay loop so the violation
/// classification is a pure, unit-testable function.
#[derive(Debug, Clone, Copy, Default)]
struct Observation {
    /// Some result slot was written more than once.
    multi_write: bool,
    /// Some chunk or slot was never executed (or an assignment was
    /// out of range).
    uncovered: bool,
    /// Arena leases observed non-empty during the replay.
    dirty_leases: u64,
    /// Heap allocations counted during the replay (hot-loop probe).
    steady_state_allocs: u64,
    /// Whether the outputs matched the serial reference bit-for-bit
    /// (`None` when no reference or no complete output exists).
    matches_reference: Option<bool>,
}

/// Pure judgment: which model-checker lints one observation violates.
fn violations(obs: &Observation) -> Vec<SchedLintId> {
    let mut out = Vec::new();
    if obs.multi_write {
        out.push(SchedLintId::SchedSlotExclusivity);
    }
    if obs.uncovered {
        out.push(SchedLintId::SchedChunkCoverage);
    }
    if obs.matches_reference == Some(false) {
        out.push(SchedLintId::SchedOutputDivergence);
    }
    if obs.dirty_leases > 0 {
        out.push(SchedLintId::SchedArenaAliasing);
    }
    if obs.steady_state_allocs > 0 {
        out.push(SchedLintId::SchedAllocSteadyState);
    }
    out
}

/// The default item function: a pure, schedule-independent value per
/// index that also exercises the arena lease/recycle protocol.
fn default_item(i: usize, _worker: usize, scratch: &mut ScratchArena) -> u64 {
    let mut buf = scratch.u64_buf();
    let x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    buf.push(x);
    buf.push(x.rotate_left(17));
    let v = buf.iter().fold(0u64, |acc, &b| acc.rotate_left(7) ^ b);
    scratch.recycle_u64(buf);
    v
}

/// Model-checks one plan with the default (pure) item function.
///
/// This is the checker's standard entry: the item function is
/// schedule-independent by construction, so on a correct substrate every
/// explored schedule must reproduce the serial reference bit-for-bit and
/// the report comes back clean. A violation therefore always indicts the
/// plan or the substrate, never the workload.
pub fn check_plan(
    name: &str,
    plan: &ShardPlan,
    weights: Option<&[u64]>,
    opts: &CheckOptions,
) -> PlanCheck {
    check_plan_with(name, plan, weights, opts, default_item)
}

/// Model-checks one plan with a caller-supplied item function
/// `f(item, worker, scratch) -> u64`.
///
/// The checker treats `f` as the workload under test: if its value
/// depends on which worker ran it (or on leftover arena state), the
/// output-divergence and aliasing assertions will catch that across
/// schedules — which is exactly how the mutation tests prove the
/// assertions have teeth.
pub fn check_plan_with<F>(
    name: &str,
    plan: &ShardPlan,
    weights: Option<&[u64]>,
    opts: &CheckOptions,
    mut f: F,
) -> PlanCheck
where
    F: FnMut(usize, usize, &mut ScratchArena) -> u64,
{
    let mut case = SchedCase::new(name, plan);
    if let Some(w) = weights {
        case = case.with_weights(w);
    }
    let mut diagnostics = verify_plan(&case);
    let structurally_sound = !diagnostics.iter().any(|d| d.severity == Severity::Error);

    // Serial reference (worker 0 everywhere): the oracle every schedule
    // must reproduce. Skipped when the plan is structurally broken — a
    // gapped or overlapping plan has no well-defined reference.
    let owner_order: Vec<(usize, usize)> = plan
        .band_ranges()
        .iter()
        .enumerate()
        .flat_map(|(w, &(cb, ce))| (cb..ce).map(move |c| (w, c)))
        .collect();
    let reference: Option<Vec<u64>> = if structurally_sound {
        replay_assignments(plan, &owner_order, &mut f).into_results()
    } else {
        None
    };

    // Warm-up replay: fills the per-worker arena pools so steady-state
    // replays have a hot path to be allocation-free on. Must lease the
    // same probe buffer the measured closure leases, or the first measured
    // schedule would pay that one allocation and trip the alloc lint.
    let _ = replay_assignments(plan, &owner_order, |i, w, scratch: &mut ScratchArena| {
        let probe_buf = scratch.u64_buf();
        scratch.recycle_u64(probe_buf);
        f(i, w, scratch)
    });

    // Aggregated violation tallies — one diagnostic per family at the
    // end, not one per schedule, so a systemic bug does not explode the
    // report.
    let mut bad_slots: u64 = 0; // schedules with a multi-written slot
    let mut bad_coverage: u64 = 0; // schedules missing a chunk/slot
    let mut divergent: u64 = 0; // schedules whose output != reference
    let mut aliased: u64 = 0; // schedules observing a dirty arena lease
    let mut allocating: u64 = 0; // schedules that allocated in steady state
    let mut first_bad: Option<Vec<(usize, usize)>> = None;

    let probe = opts.alloc_probe;
    let stats = enumerate_schedules(plan, opts.max_schedules, &mut |sched: &[(usize, usize)]| {
        let allocs_before = probe.map(|p| p());
        let mut dirty_leases = 0u64;
        let replay = replay_assignments(plan, sched, |i, w, scratch: &mut ScratchArena| {
            let probe_buf = scratch.u64_buf();
            if !probe_buf.is_empty() {
                dirty_leases += 1;
            }
            scratch.recycle_u64(probe_buf);
            f(i, w, scratch)
        });
        let mut obs = Observation {
            multi_write: replay.slot_writes.iter().any(|&w| w > 1),
            uncovered: replay.bad_assignments > 0 || replay.slot_writes.contains(&0),
            dirty_leases,
            steady_state_allocs: match (allocs_before, probe.map(|p| p())) {
                (Some(before), Some(after)) => after.saturating_sub(before),
                _ => 0,
            },
            matches_reference: None,
        };
        if let (Some(reference), Some(got)) = (&reference, replay.into_results()) {
            obs.matches_reference = Some(&got == reference);
        }
        let broken = violations(&obs);
        for lint in &broken {
            match lint {
                SchedLintId::SchedSlotExclusivity => bad_slots += 1,
                SchedLintId::SchedChunkCoverage => bad_coverage += 1,
                SchedLintId::SchedOutputDivergence => divergent += 1,
                SchedLintId::SchedArenaAliasing => aliased += 1,
                SchedLintId::SchedAllocSteadyState => allocating += 1,
                _ => {}
            }
        }
        if !broken.is_empty() && first_bad.is_none() {
            first_bad = Some(sched.to_vec());
        }
    });

    let mut emit = |lint: SchedLintId, count: u64, what: &str| {
        if count > 0 {
            diagnostics.push(SchedDiagnostic::new(
                lint,
                SchedLocation::CASE,
                format!(
                    "{count} of {} explored schedules {what}{}",
                    stats.schedules,
                    match &first_bad {
                        Some(s) => format!("; first offending schedule: {s:?}"),
                        None => String::new(),
                    }
                ),
            ));
        }
    };
    emit(SchedLintId::SchedSlotExclusivity, bad_slots, "wrote a result slot more than once");
    emit(SchedLintId::SchedChunkCoverage, bad_coverage, "left a chunk or slot unexecuted");
    emit(
        SchedLintId::SchedOutputDivergence,
        divergent,
        "diverged bitwise from the serial reference",
    );
    emit(SchedLintId::SchedArenaAliasing, aliased, "observed a non-empty arena lease");
    emit(SchedLintId::SchedAllocSteadyState, allocating, "allocated during steady-state replay");

    sched_telemetry(stats.schedules, diagnostics.len());
    PlanCheck {
        name: name.to_string(),
        items: plan.len(),
        chunks: plan.chunk_ranges().len(),
        bands: plan.band_ranges().len(),
        schedules: stats.schedules,
        transitions: stats.transitions,
        exhaustive: stats.exhaustive,
        diagnostics,
    }
}

/// A full `schedcheck` run: every plan shape's verdict plus the lock
/// graph audit, rendered to `SCHEDCHECK.json`.
#[derive(Debug, Default)]
pub struct SchedReport {
    /// Per-plan verdicts, in run order.
    pub plans: Vec<PlanCheck>,
    /// Lock-order diagnostics from the workspace graph audit.
    pub lock_diagnostics: Vec<SchedDiagnostic>,
}

impl SchedReport {
    /// An empty report.
    pub fn new() -> Self {
        SchedReport::default()
    }

    /// Total schedules explored across every plan.
    pub fn schedules_total(&self) -> u64 {
        self.plans.iter().map(|p| p.schedules).sum()
    }

    /// Total error-severity diagnostics across plans and the lock audit.
    pub fn errors(&self) -> usize {
        self.plans
            .iter()
            .flat_map(|p| &p.diagnostics)
            .chain(&self.lock_diagnostics)
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Serializes the report (deterministic field order, byte-stable) via
    /// the shared [`dtc_telemetry::json`] module.
    pub fn to_json(&self) -> String {
        let diag_json = |d: &SchedDiagnostic| {
            Json::obj_inline(vec![
                ("lint", Json::str(d.lint.as_str())),
                ("severity", Json::str(d.severity.as_str())),
                ("location", Json::str(d.location.to_string())),
                ("message", Json::str(&d.message)),
            ])
        };
        let plans = self
            .plans
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("name", Json::str(&p.name)),
                    ("items", Json::usize(p.items)),
                    ("chunks", Json::usize(p.chunks)),
                    ("bands", Json::usize(p.bands)),
                    ("schedules", Json::u64(p.schedules)),
                    ("transitions", Json::u64(p.transitions)),
                    ("exhaustive", Json::bool(p.exhaustive)),
                    ("diagnostics", Json::arr(p.diagnostics.iter().map(diag_json).collect())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("plans_checked", Json::usize(self.plans.len())),
            ("schedules_total", Json::u64(self.schedules_total())),
            ("errors", Json::usize(self.errors())),
            ("plans", Json::arr(plans)),
            (
                "lock_graph",
                Json::obj(vec![
                    ("classes", Json::usize(workspace_lock_graph().classes.len())),
                    ("edges", Json::usize(workspace_lock_graph().edges.len())),
                    (
                        "diagnostics",
                        Json::arr(self.lock_diagnostics.iter().map(diag_json).collect()),
                    ),
                ]),
            ),
        ])
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn has(check: &PlanCheck, lint: SchedLintId) -> bool {
        check.diagnostics.iter().any(|d| d.lint == lint)
    }

    #[test]
    fn real_even_plans_check_clean() {
        for (n, threads) in [(7usize, 2usize), (16, 2), (24, 3)] {
            let plan = ShardPlan::even(n, threads);
            let check = check_plan("even", &plan, None, &CheckOptions::default());
            assert!(!check.has_errors(), "n={n} t={threads}: {:?}", check.diagnostics);
            assert!(check.exhaustive, "n={n} t={threads} hit the cap");
            assert!(check.schedules >= 1);
        }
    }

    #[test]
    fn real_weighted_plans_check_clean() {
        let weights: Vec<u64> = (0..20u64).map(|i| i * i % 13).collect();
        let plan = ShardPlan::weighted(2, &weights);
        let check = check_plan("weighted", &plan, Some(&weights), &CheckOptions::default());
        assert!(!check.has_errors(), "{:?}", check.diagnostics);
        assert!(check.exhaustive);
    }

    #[test]
    fn mutation_overlapping_chunks_trip_slot_exclusivity() {
        // Two chunks share items 4..6: every schedule writes those slots
        // twice, and the structural disjointness lint fires too.
        let plan = ShardPlan::from_raw_parts(10, vec![(0, 6), (4, 10)], vec![(0, 1), (1, 2)]);
        let check = check_plan("mutant", &plan, None, &CheckOptions::default());
        assert!(has(&check, SchedLintId::SchedSlotExclusivity), "{:?}", check.diagnostics);
        assert!(has(&check, SchedLintId::PlanChunkDisjoint), "{:?}", check.diagnostics);
    }

    #[test]
    fn mutation_gapped_chunks_trip_coverage() {
        let plan = ShardPlan::from_raw_parts(10, vec![(0, 4), (6, 10)], vec![(0, 1), (1, 2)]);
        let check = check_plan("mutant", &plan, None, &CheckOptions::default());
        assert!(has(&check, SchedLintId::SchedChunkCoverage), "{:?}", check.diagnostics);
        assert!(has(&check, SchedLintId::PlanChunkCoverage), "{:?}", check.diagnostics);
    }

    #[test]
    fn mutation_worker_dependent_item_trips_divergence() {
        // The seeded bug: an item function whose value depends on which
        // worker computed it — the checker must see schedules disagree.
        let plan = ShardPlan::even(8, 2);
        let check = check_plan_with("mutant", &plan, None, &CheckOptions::default(), |i, w, _| {
            (i as u64) | ((w as u64) << 32)
        });
        assert!(has(&check, SchedLintId::SchedOutputDivergence), "{:?}", check.diagnostics);
    }

    #[test]
    fn arena_leases_stay_clean_across_all_schedules() {
        // End-to-end: on every explored schedule the checker's probe lease
        // (taken before each item, after arbitrary recycle traffic from
        // earlier chunks on any worker) comes back empty — the aliasing
        // lint never fires on the real substrate, even for a workload that
        // recycles filled buffers as hard as it can.
        let plan = ShardPlan::even(12, 2);
        let check = check_plan_with(
            "recycle-heavy",
            &plan,
            None,
            &CheckOptions::default(),
            |i, _, scratch| {
                let mut buf = scratch.u64_buf();
                buf.extend((0..8).map(|k| i as u64 + k));
                scratch.recycle_u64(buf); // returned full: next take must clear
                i as u64
            },
        );
        assert!(!check.has_errors(), "{:?}", check.diagnostics);
        assert!(!has(&check, SchedLintId::SchedArenaAliasing));
    }

    #[test]
    fn mutation_seeded_observations_trip_aliasing_and_alloc_lints() {
        // The clearing arena makes real aliasing unreachable from safe
        // code (that is the theorem the end-to-end test above pins), so
        // the mutation is seeded at the judgment layer: an observation
        // carrying a dirty lease or a steady-state allocation must be
        // classified as exactly those violations.
        let clean = Observation::default();
        assert!(violations(&clean).is_empty());
        let dirty = Observation { dirty_leases: 1, ..Observation::default() };
        assert_eq!(violations(&dirty), vec![SchedLintId::SchedArenaAliasing]);
        let leaky = Observation { steady_state_allocs: 7, ..Observation::default() };
        assert_eq!(violations(&leaky), vec![SchedLintId::SchedAllocSteadyState]);
        let chaos = Observation {
            multi_write: true,
            uncovered: true,
            dirty_leases: 2,
            steady_state_allocs: 1,
            matches_reference: Some(false),
        };
        assert_eq!(violations(&chaos).len(), 5);
    }

    #[test]
    fn report_json_is_canonical() {
        let plan = ShardPlan::even(6, 2);
        let mut report = SchedReport::new();
        report.plans.push(check_plan("even-6x2", &plan, None, &CheckOptions::default()));
        report.lock_diagnostics =
            dtc_verify::verify_lock_graph("workspace", &workspace_lock_graph());
        assert_eq!(report.errors(), 0);
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"plans_checked\": 1,\n"), "{json}");
        assert!(json.contains("\"name\": \"even-6x2\""), "{json}");
        assert!(json.contains("\"exhaustive\": true"), "{json}");
        assert!(json.ends_with("}\n"), "{json}");
    }
}
