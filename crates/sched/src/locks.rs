//! The workspace's extracted lock graph.
//!
//! Every blocking synchronization point in the workspace is registered
//! here as a [`LockGraph`] node, and every *acquired-while-holding* site
//! as an edge, with the source location it was extracted from. The
//! `lock-order-cycle` lint over this graph (run by `schedcheck` and in
//! this crate's tests) proves the whole relation acyclic — the classical
//! sufficient condition for lock-order deadlock freedom.
//!
//! Keeping the graph honest is a review obligation: a change that nests
//! a new lock acquisition must add the edge here (the mutation test shows
//! the lint catches an edge that closes a cycle, so an added edge that
//! breaks the ordering fails CI rather than deadlocking in production).

use dtc_verify::LockGraph;

/// Builds the lock graph of the dtc workspace as currently extracted
/// from source.
///
/// Nodes (one per lock *class* — a family acquired under one
/// discipline):
///
/// | class | site | discipline |
/// |---|---|---|
/// | `serve.queue` | `serve/src/server.rs` `SpmmServer::queue` | admission queue |
/// | `serve.seq` | `serve/src/server.rs` `SpmmServer::next_seq` | ticket counter, leaf |
/// | `serve.pool.inner` | `serve/src/pool.rs` `EnginePool::inner` | bucket map, held only for map ops |
/// | `serve.prepare` | `serve/src/pool.rs` `EngineCell` | `OnceLock` engine build (blocks same-key waiters) |
/// | `core.conversion_cache` | `core/src/cache.rs` `CACHE` | released before parallel conversion |
/// | `core.trace_cache` | `core/src/pipeline.rs` `DtcSpmm::trace_cache` | per-kernel memo, leaf |
/// | `par.band_deque` | `par/src/lib.rs` worker deques | one at a time, never nested |
/// | `par.arena_slot` | `par/src/arena.rs` pooled arenas | `try_lock` only — can never block |
/// | `telemetry.registry` | `telemetry/src/lib.rs` metric maps | global leaf, registration only |
///
/// Edges (acquired-while-holding):
///
/// - `serve.queue -> serve.seq`: `SpmmServer::admit` takes the ticket
///   under the queue lock so admission order and sequence numbers agree.
/// - `serve.prepare -> core.conversion_cache`: the engine build inside
///   `OnceLock::get_or_init` probes/fills the conversion cache.
/// - `serve.prepare -> par.band_deque`: the build's parallel conversion
///   runs the work-stealing engine while same-key waiters block on the
///   cell.
/// - `serve.prepare -> telemetry.registry`: first-use metric registration
///   during a build.
/// - `par.band_deque -> par.arena_slot`: a worker leases its arena while
///   its deque mutex scan is live (`try_lock`, so it cannot block — the
///   edge is recorded for completeness and stays safely ordered).
/// - `par.arena_slot -> telemetry.registry`: arena retained-bytes
///   accounting registers its gauge on first use.
/// - `core.conversion_cache -> telemetry.registry`: cache hit/miss
///   counters register on first use.
pub fn workspace_lock_graph() -> LockGraph {
    let mut g = LockGraph::new();
    let queue = g.class("serve.queue", "admission queue (SpmmServer::queue)");
    let seq = g.class("serve.seq", "request ticket counter (SpmmServer::next_seq)");
    let pool = g.class("serve.pool.inner", "engine pool bucket map (EnginePool::inner)");
    let prepare = g.class("serve.prepare", "OnceLock engine build (EngineCell)");
    let conv = g.class("core.conversion_cache", "METCF conversion cache (cache.rs CACHE)");
    let trace = g.class("core.trace_cache", "per-kernel trace memo (DtcSpmm::trace_cache)");
    let deque = g.class("par.band_deque", "worker band deques (run_threads queues)");
    let arena = g.class("par.arena_slot", "pooled scratch arenas (try_lock only)");
    let registry = g.class("telemetry.registry", "metric registry BTreeMaps");
    // serve.pool.inner and core.trace_cache are leaves: the pool drops its
    // lock before the engine build starts (coalescing via the OnceLock),
    // and the trace memo wraps a pure lowering.
    let _ = (pool, trace);
    g.edge(queue, seq, "serve/src/server.rs::admit");
    g.edge(prepare, conv, "serve/src/pool.rs::get_or_prepare (engine build)");
    g.edge(prepare, deque, "core/src/cache.rs::convert_to_metcf_parallel (under build)");
    g.edge(prepare, registry, "serve/src/telemetry.rs (first-use registration)");
    g.edge(deque, arena, "par/src/lib.rs::run_threads (worker loop)");
    g.edge(arena, registry, "par/src/arena.rs::note_retained (gauge registration)");
    g.edge(conv, registry, "core/src/cache.rs (hit/miss counters)");
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_verify::{verify_lock_graph, SchedLintId};

    #[test]
    fn workspace_lock_graph_is_acyclic() {
        let diags = verify_lock_graph("workspace", &workspace_lock_graph());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn mutation_added_inverting_edge_is_caught() {
        // The seeded bug: a refactor makes the conversion cache re-enter
        // the engine pool's prepare path (cache -> prepare closes a cycle
        // with prepare -> conv).
        let mut g = workspace_lock_graph();
        let conv = g.classes.iter().position(|c| c.name == "core.conversion_cache").unwrap();
        let prepare = g.classes.iter().position(|c| c.name == "serve.prepare").unwrap();
        g.edge(conv, prepare, "mutant.rs::reentrant_prepare");
        let diags = verify_lock_graph("workspace", &g);
        assert!(diags.iter().any(|d| d.lint == SchedLintId::LockOrderCycle), "{diags:?}");
    }
}
