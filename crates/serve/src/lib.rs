//! `dtc-serve` — a multi-tenant SpMM serving layer over the unified
//! [`SpmmEngine`](dtc_core::SpmmEngine) trait.
//!
//! DTC-SpMM's preprocessing (ME-TCF conversion, optional reordering,
//! kernel selection) is worth paying **once per matrix**, not once per
//! request. This crate turns the workspace's engines into a service:
//!
//! - [`EnginePool`] — prepared engines keyed by engine family +
//!   [`EngineConfig`](dtc_core::EngineConfig)/device fingerprints + the
//!   matrix's full [`KeyMaterial`](dtc_core::KeyMaterial) (every hit is
//!   verified against the full key, so crafted fingerprint collisions
//!   are served correctly, just slower). Concurrent requests for the same
//!   key coalesce onto a single prepare; eviction is LRU with a warmup
//!   pin (an engine is never evicted before it has repaid its
//!   preparation with [`PoolConfig::warmup_uses`] uses).
//! - [`SpmmServer`] — bounded admission in front of the pool. Queued
//!   requests that share a pool key are coalesced into one N-column
//!   SpMM (column concatenation is bitwise-exact for every kernel in the
//!   workspace). With [`ServeConfig::verify`] set, each batch replays
//!   the dtc-verify lints over the engine's lowered trace first.
//! - [`loadgen`] — a deterministic virtual-clock closed-loop load
//!   generator; `serve_bench` drives it to produce `BENCH_serve.json`.
//!
//! Telemetry: `serve.requests.{admitted,coalesced,rejected}`,
//! `serve.pool.{hits,misses,evictions}` counters plus `serve.batch` /
//! `serve.prepare` spans, all in the process-wide `dtc-telemetry`
//! registry.
//!
//! # Example
//!
//! ```
//! use dtc_core::{EngineConfig, EngineKind};
//! use dtc_formats::DenseMatrix;
//! use dtc_serve::{Request, ServeConfig, SpmmServer};
//! use std::sync::Arc;
//!
//! let a = Arc::new(dtc_formats::gen::uniform(64, 64, 400, 7));
//! let server = SpmmServer::new(ServeConfig::default());
//! let c = server
//!     .serve_one(Request {
//!         tenant: 0,
//!         kind: EngineKind::Dtc,
//!         config: EngineConfig::default(),
//!         matrix: Arc::clone(&a),
//!         b: DenseMatrix::from_fn(64, 16, |r, c| (r + c) as f32),
//!     })
//!     .unwrap();
//! assert_eq!(c.rows(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;
mod pool;
mod server;
mod telemetry;

pub use pool::{drain_pool_events, set_pool_event_log, EnginePool, Fetched, PoolConfig, PoolKey};
pub use server::{admission_check, BatchOutcome, Request, Response, SpmmServer};

/// Server-wide configuration: queue bound, batch cap, pool sizing and the
/// optional per-batch verification gate.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Engine-pool sizing and eviction policy.
    pub pool: PoolConfig,
    /// Admission-queue bound; requests beyond it are rejected.
    pub max_queue: usize,
    /// Most requests one batch may coalesce.
    pub max_batch: usize,
    /// Replay the dtc-verify lints over each batch's trace before
    /// executing, failing the batch on any error-severity diagnostic.
    pub verify: bool,
    /// Statically verify every freshly prepared engine at admission time
    /// ([`admission_check`]): trace lints at a probe width plus shard-plan
    /// lints, run once inside the prepare (so the cost is amortized like
    /// the conversion itself), rejecting an illegal engine with
    /// [`DtcError::Verify`](dtc_core::DtcError::Verify) before it can
    /// fail mid-request. On by default.
    pub admission_verify: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            pool: PoolConfig::default(),
            max_queue: 256,
            max_batch: 16,
            verify: false,
            admission_verify: true,
        }
    }
}
