//! Closed-loop load generator over a virtual clock.
//!
//! Each load point replays a Poisson arrival stream (exponential
//! inter-arrivals at the offered rate, drawn from the deterministic rand
//! shim) against a fresh [`SpmmServer`] modelled as a single-server queue:
//! requests arriving while the server is busy accumulate in the admission
//! queue (where they coalesce), and each drained batch advances the
//! virtual clock by its *measured wall-clock* execution time. Latency is
//! virtual completion minus virtual arrival, so percentiles are exact,
//! runs are deterministic per seed, and no real time is spent sleeping.
//!
//! This is the engine behind `serve_bench` (writes `BENCH_serve.json`):
//! sweeping offered load across the service rate shows the coalescing
//! payoff — past saturation, batches widen and achieved throughput keeps
//! climbing instead of flatlining at the single-request service rate.

use crate::server::{Request, SpmmServer};
use crate::ServeConfig;
use dtc_core::{DtcError, EngineConfig, EngineKind};
use dtc_formats::{CsrMatrix, DenseMatrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// One tenant in a workload: a matrix plus how it is to be multiplied.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Engine family serving this tenant.
    pub kind: EngineKind,
    /// Engine configuration (part of the pool key).
    pub config: EngineConfig,
    /// The tenant's sparse matrix.
    pub matrix: Arc<CsrMatrix>,
    /// Dense columns per request.
    pub n_cols: usize,
}

/// Measured results for one offered-load point.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Offered arrival rate, requests/second.
    pub offered_qps: f64,
    /// Achieved completion rate, requests/second of virtual time.
    pub achieved_qps: f64,
    /// Median request latency, virtual milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, virtual milliseconds.
    pub p99_ms: f64,
    /// Requests admitted (and completed).
    pub completed: usize,
    /// Requests rejected at admission (queue full).
    pub rejected: usize,
    /// Batches executed successfully.
    pub batches: usize,
    /// Batches that failed (prepare, verify-gate or execution error). The
    /// requests they consumed count as neither completed nor rejected:
    /// `completed + rejected + failed = requests offered`.
    pub failed_batches: usize,
    /// Requests consumed by failed batches.
    pub failed: usize,
    /// Mean requests per batch.
    pub mean_batch: f64,
    /// Histogram of batch sizes: `hist[s]` = batches that coalesced
    /// exactly `s + 1` requests.
    pub batch_hist: Vec<u64>,
    /// Fraction of completed requests served by an already-resident
    /// engine (1 − pool misses ÷ completed): a coalesced batch is one
    /// pool lookup serving every request in it.
    pub hit_rate: f64,
}

/// Load-generator knobs shared by every point of a sweep.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Server under test (queue bound, batch cap, pool sizing, verify).
    pub serve: ServeConfig,
    /// Requests offered per load point.
    pub requests: usize,
    /// RNG seed for arrivals and tenant selection.
    pub seed: u64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig { serve: ServeConfig::default(), requests: 400, seed: 0x5e17e }
    }
}

/// Measures the mean wall-clock service time of one request per tenant,
/// in milliseconds, against a throwaway server. Used to calibrate offered
/// load as a multiple of the service rate.
///
/// # Errors
///
/// Propagates the first request failure (prepare, verify-gate or
/// execution error) so a sweep driver can degrade or skip the workload
/// instead of aborting the whole run.
///
/// # Panics
///
/// Panics if `tenants` is empty (a configuration bug, not a runtime
/// condition).
pub fn calibrate_service_ms(tenants: &[TenantSpec], cfg: &LoadGenConfig) -> Result<f64, DtcError> {
    assert!(!tenants.is_empty(), "no tenants");
    let server = SpmmServer::new(cfg.serve.clone());
    let mut total = 0.0;
    let mut runs = 0usize;
    for rep in 0..3 {
        for (t, spec) in tenants.iter().enumerate() {
            let req = request_for(spec, t, cfg.seed);
            let start = Instant::now();
            server.serve_one(req)?;
            // Skip the cold pass: it pays conversion, not steady-state cost.
            if rep > 0 {
                total += start.elapsed().as_secs_f64() * 1e3;
                runs += 1;
            }
        }
    }
    Ok(total / runs as f64)
}

fn request_for(spec: &TenantSpec, tenant: usize, seed: u64) -> Request {
    let rows = spec.matrix.cols();
    // Deterministic per-tenant operand; content is irrelevant to queueing.
    let mix = seed ^ (tenant as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let b = DenseMatrix::from_fn(rows, spec.n_cols, |r, c| {
        let h = (r as u64 ^ (c as u64) << 20 ^ mix).wrapping_mul(0x2545_f491_4f6c_dd1d);
        ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    });
    Request {
        tenant,
        kind: spec.kind,
        config: spec.config.clone(),
        matrix: Arc::clone(&spec.matrix),
        b,
    }
}

/// Runs one closed-loop load point at `offered_qps` and measures it.
///
/// A failed batch (prepare, verify-gate or execution error) degrades the
/// point instead of aborting it: the batch's requests are counted in
/// [`LoadPoint::failed`], the wall-clock time it burned still advances
/// the virtual clock, and the sweep continues — one misconfigured tenant
/// must not take down every other tenant's measurements.
///
/// # Panics
///
/// Panics if `tenants` is empty or the rate is not positive (both are
/// configuration bugs in the caller).
pub fn run_point(tenants: &[TenantSpec], cfg: &LoadGenConfig, offered_qps: f64) -> LoadPoint {
    assert!(!tenants.is_empty(), "no tenants");
    assert!(offered_qps > 0.0, "offered load must be positive");
    let server = SpmmServer::new(cfg.serve.clone());
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ offered_qps.to_bits());

    // Poisson arrivals: exponential inter-arrival gaps at the offered rate.
    let mut arrivals = Vec::with_capacity(cfg.requests);
    let mut t = 0.0f64;
    for _ in 0..cfg.requests {
        let u: f64 = rng.random_range(1e-12..1.0);
        t += -u.ln() / offered_qps * 1e3; // ms of virtual time
        let tenant = rng.random_range(0..tenants.len());
        arrivals.push((t, tenant));
    }

    let misses0 = crate::telemetry::pool_misses().get();

    let mut arrival_ms = vec![0.0f64; cfg.requests + 2]; // indexed by seq
    let mut latencies = Vec::with_capacity(cfg.requests);
    let mut batch_hist = vec![0u64; cfg.serve.max_batch];
    let mut rejected = 0usize;
    let mut admitted = 0usize;
    let mut batches = 0usize;
    let mut failed_batches = 0usize;
    let mut next = 0usize; // next unoffered arrival
    let mut clock = 0.0f64; // virtual now = when the server is next free
    let mut last_completion = 0.0f64;

    loop {
        // Offer every arrival that lands while the server is busy (≤ clock);
        // if the queue is empty, idle forward to the next arrival.
        if server.queued() == 0 {
            if next >= arrivals.len() {
                break;
            }
            clock = clock.max(arrivals[next].0);
        }
        while next < arrivals.len() && arrivals[next].0 <= clock {
            let (at, tenant) = arrivals[next];
            next += 1;
            match server.admit(request_for(&tenants[tenant], tenant, cfg.seed)) {
                Ok(seq) => {
                    arrival_ms[seq as usize] = at;
                    admitted += 1;
                }
                Err(_) => rejected += 1,
            }
        }

        let start = Instant::now();
        let outcome = match server.serve_next_batch() {
            Some(Ok(outcome)) => outcome,
            Some(Err(_)) => {
                // The batch's requests are consumed; charge the time the
                // failed attempt burned and keep serving other tenants.
                clock += start.elapsed().as_secs_f64() * 1e3;
                failed_batches += 1;
                continue;
            }
            None => continue, // everything since the last batch was rejected
        };
        let service_ms = start.elapsed().as_secs_f64() * 1e3;
        clock += service_ms;
        batches += 1;
        batch_hist[outcome.batch_size - 1] += 1;
        last_completion = clock;
        for resp in &outcome.responses {
            latencies.push(clock - arrival_ms[resp.seq as usize]);
        }
    }

    let misses = crate::telemetry::pool_misses().get() - misses0;
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let completed = latencies.len();
    LoadPoint {
        offered_qps,
        achieved_qps: if last_completion > 0.0 {
            completed as f64 / last_completion * 1e3
        } else {
            0.0
        },
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        completed,
        rejected,
        batches,
        failed_batches,
        failed: admitted - completed,
        mean_batch: if batches > 0 { completed as f64 / batches as f64 } else { 0.0 },
        batch_hist,
        hit_rate: if completed > 0 {
            1.0 - (misses as f64 / completed as f64).min(1.0)
        } else {
            0.0
        },
    }
}

/// Runs [`run_point`] for each offered rate, in order.
pub fn sweep(tenants: &[TenantSpec], cfg: &LoadGenConfig, rates: &[f64]) -> Vec<LoadPoint> {
    rates.iter().map(|&qps| run_point(tenants, cfg, qps)).collect()
}

/// Linear-interpolated percentile of an ascending-sorted sample.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (rank - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenants() -> Vec<TenantSpec> {
        (0..2usize)
            .map(|i| {
                let n = 48 + i * 16;
                TenantSpec {
                    kind: EngineKind::Dtc,
                    config: EngineConfig::default(),
                    matrix: Arc::new(dtc_formats::gen::uniform(n, n, n * 6, 11 + i as u64)),
                    n_cols: 8,
                }
            })
            .collect()
    }

    #[test]
    fn load_point_accounts_for_every_request() {
        let tenants = tenants();
        let cfg = LoadGenConfig { requests: 60, ..LoadGenConfig::default() };
        let point = run_point(&tenants, &cfg, 500.0);
        assert_eq!(point.completed + point.rejected + point.failed, cfg.requests);
        assert_eq!(point.failed, 0, "well-formed tenants must not fail");
        assert_eq!(point.failed_batches, 0);
        assert!(point.p50_ms.is_finite());
        assert!(point.p99_ms >= point.p50_ms);
        assert_eq!(point.batch_hist.iter().sum::<u64>(), point.batches as u64);
        assert!(point.mean_batch >= 1.0);
    }

    #[test]
    fn overload_coalesces_more_than_trickle() {
        let tenants = tenants();
        let cfg = LoadGenConfig { requests: 120, ..LoadGenConfig::default() };
        let ms = calibrate_service_ms(&tenants, &cfg).unwrap();
        let mu = 1e3 / ms; // single-request service rate, QPS
        let trickle = run_point(&tenants, &cfg, mu * 0.05);
        let overload = run_point(&tenants, &cfg, mu * 20.0);
        assert!(
            overload.mean_batch >= trickle.mean_batch,
            "overload {} < trickle {}",
            overload.mean_batch,
            trickle.mean_batch
        );
    }

    #[test]
    fn failing_tenant_degrades_the_point_instead_of_aborting() {
        // TCGNN refuses non-square matrices, so every batch for tenant 1
        // fails at prepare time. The point must still complete, account
        // for every request, and keep measuring tenant 0.
        let mut tenants = tenants();
        tenants.push(TenantSpec {
            kind: EngineKind::Tcgnn,
            config: EngineConfig::default(),
            matrix: Arc::new(dtc_formats::gen::uniform(64, 32, 200, 77)),
            n_cols: 8,
        });
        let cfg = LoadGenConfig { requests: 60, ..LoadGenConfig::default() };
        assert!(
            calibrate_service_ms(&tenants, &cfg).is_err(),
            "calibration must surface the tenant's failure, not panic"
        );
        let point = run_point(&tenants, &cfg, 500.0);
        assert_eq!(point.completed + point.rejected + point.failed, cfg.requests);
        assert!(point.failed > 0, "the broken tenant's requests must be accounted as failed");
        assert!(point.failed_batches > 0);
        assert!(point.completed > 0, "healthy tenants must still be served");
        assert!(point.p50_ms.is_finite());
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 50.0), 2.5);
    }
}
