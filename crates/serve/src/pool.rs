//! The keyed engine pool: prepared [`SpmmEngine`]s cached across requests.
//!
//! Pool identity is the triple the paper's amortization argument needs:
//! *which matrix* ([`KeyMaterial`], the verified conversion-cache identity
//! from `dtc-core`), *which configuration*
//! ([`EngineConfig::fingerprint`] — two tenants asking for the same matrix
//! under different precisions must not share an engine), and *which
//! device/engine family*. Entries are bucketed by a single 64-bit primary
//! hash and **verified by full key equality on every hit** — the same
//! discipline as the conversion cache, so a crafted primary-hash collision
//! is detected and both engines coexist instead of one tenant silently
//! receiving another tenant's engine.
//!
//! Concurrency: one prepare per key. Each slot holds an
//! [`OnceLock`]; concurrent same-key requests all land on the same slot
//! and `get_or_init` blocks the laggards while the first caller pays the
//! (reorder → convert → select) build, so a thundering herd of identical
//! requests costs exactly one conversion-cache miss.
//!
//! Eviction is LRU **with warmup pins**: an entry that has served fewer
//! than [`PoolConfig::warmup_uses`] requests is still amortizing its
//! conversion cost and cannot be evicted. If every resident entry is
//! pinned and the pool is full, a new key is refused with
//! [`DtcError::PoolExhausted`] rather than thrashing a cold engine.

use dtc_core::{DtcError, EngineConfig, EngineKind, KeyMaterial, SpmmEngine};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Full pool identity of a prepared engine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PoolKey {
    /// Engine family requested by the tenant.
    pub kind: EngineKind,
    /// [`dtc_sim::Device::fingerprint`] of the target device.
    pub device: u64,
    /// [`EngineConfig::fingerprint`] of the tenant's configuration.
    pub config: u64,
    /// Identity of the sparse matrix.
    pub material: KeyMaterial,
}

impl PoolKey {
    /// Builds the key for a tenant request.
    pub fn new(kind: EngineKind, config: &EngineConfig, material: KeyMaterial) -> Self {
        PoolKey {
            kind,
            device: config.device.fingerprint(),
            config: config.fingerprint(),
            material,
        }
    }

    /// The 64-bit primary bucket hash (FNV-1a over all components). A
    /// primary collision is survivable: buckets verify full key equality.
    pub fn primary(&self) -> u64 {
        let kind = match self.kind {
            EngineKind::Dtc => 1u64,
            EngineKind::Iterative => 2,
            EngineKind::Cusparse => 3,
            EngineKind::Sputnik => 4,
            EngineKind::Tcgnn => 5,
            _ => 0,
        };
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for x in [kind, self.device, self.config, self.material.fingerprint()] {
            h ^= x;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// Pool sizing and eviction policy.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Maximum resident engines.
    pub capacity: usize,
    /// Requests an entry must serve before it becomes evictable (the
    /// warmup pin): evicting an engine that has not yet amortized its
    /// conversion cost only converts it again on the next request.
    pub warmup_uses: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig { capacity: 8, warmup_uses: 2 }
    }
}

type EngineCell = Arc<OnceLock<Result<Arc<dyn SpmmEngine>, DtcError>>>;

/// One resident entry.
struct Slot {
    key: PoolKey,
    cell: EngineCell,
    /// Requests served (including the preparing one).
    uses: u64,
    /// Recency tick of the last request.
    last_use: u64,
}

struct Inner {
    buckets: HashMap<u64, Vec<Slot>>,
    len: usize,
    tick: u64,
}

/// A successful pool fetch: the prepared engine plus whether it was
/// already resident.
pub struct Fetched {
    /// The prepared engine (shared: the pool keeps its own reference).
    pub engine: Arc<dyn SpmmEngine>,
    /// `true` when the engine was already resident (no prepare paid).
    pub hit: bool,
}

impl std::fmt::Debug for Fetched {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fetched")
            .field("engine", &self.engine.name())
            .field("hit", &self.hit)
            .finish()
    }
}

/// The engine pool. Cheap to share behind an `Arc`; all methods take
/// `&self`.
pub struct EnginePool {
    config: PoolConfig,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for EnginePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnginePool")
            .field("config", &self.config)
            .field("len", &self.len())
            .finish()
    }
}

impl EnginePool {
    /// Creates an empty pool.
    pub fn new(config: PoolConfig) -> Self {
        EnginePool { config, inner: Mutex::new(Inner { buckets: HashMap::new(), len: 0, tick: 0 }) }
    }

    /// Resident engine count (including ones still preparing).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the engine for `key`, preparing (and inserting) on miss via
    /// `build`. Concurrent calls with the same key coalesce into a single
    /// `build`.
    ///
    /// # Errors
    ///
    /// [`DtcError::PoolExhausted`] when the pool is full of warmup-pinned
    /// entries; whatever `build` returns when preparation fails (a failed
    /// prepare is not cached — the next request retries).
    pub fn get_or_prepare(
        &self,
        key: PoolKey,
        build: impl FnOnce() -> Result<Box<dyn SpmmEngine>, DtcError>,
    ) -> Result<Fetched, DtcError> {
        self.fetch(key.primary(), key, build)
    }

    /// The pool core, keyed explicitly so tests can force primary-hash
    /// collisions.
    fn fetch(
        &self,
        primary: u64,
        key: PoolKey,
        build: impl FnOnce() -> Result<Box<dyn SpmmEngine>, DtcError>,
    ) -> Result<Fetched, DtcError> {
        let (cell, hit) = {
            let mut inner = self.inner.lock().unwrap();
            inner.tick += 1;
            let tick = inner.tick;
            let bucket = inner.buckets.entry(primary).or_default();
            if let Some(slot) = bucket.iter_mut().find(|s| s.key == key) {
                slot.uses += 1;
                slot.last_use = tick;
                crate::telemetry::pool_hits().incr();
                (Arc::clone(&slot.cell), true)
            } else {
                if inner.len >= self.config.capacity {
                    self.evict_lru(&mut inner)?;
                }
                let cell: EngineCell = Arc::new(OnceLock::new());
                inner.buckets.entry(primary).or_default().push(Slot {
                    key: key.clone(),
                    cell: Arc::clone(&cell),
                    uses: 1,
                    last_use: tick,
                });
                inner.len += 1;
                crate::telemetry::pool_misses().incr();
                (cell, false)
            }
        };
        // Prepare outside the pool lock: other keys must not wait on this
        // build, and same-key callers block on the OnceLock instead.
        let result = cell
            .get_or_init(|| {
                let _span = dtc_telemetry::span("serve.prepare");
                build().map(Arc::from)
            })
            .clone();
        match result {
            Ok(engine) => Ok(Fetched { engine, hit }),
            Err(e) => {
                // Drop the failed slot so the next request can retry.
                let mut inner = self.inner.lock().unwrap();
                if let Some(bucket) = inner.buckets.get_mut(&primary) {
                    let before = bucket.len();
                    bucket.retain(|s| !(s.key == key && Arc::ptr_eq(&s.cell, &cell)));
                    inner.len -= before - bucket.len();
                }
                Err(e)
            }
        }
    }

    /// Evicts the least-recently-used entry whose warmup pin has expired.
    fn evict_lru(&self, inner: &mut Inner) -> Result<(), DtcError> {
        let mut victim: Option<(u64, u64, usize)> = None; // (last_use, bucket, idx)
        for (&b, bucket) in inner.buckets.iter() {
            for (i, slot) in bucket.iter().enumerate() {
                if slot.uses < self.config.warmup_uses {
                    continue; // still pinned by warmup
                }
                if victim.is_none_or(|(lu, _, _)| slot.last_use < lu) {
                    victim = Some((slot.last_use, b, i));
                }
            }
        }
        match victim {
            None => Err(DtcError::PoolExhausted { capacity: self.config.capacity }),
            Some((_, b, i)) => {
                let bucket = inner.buckets.get_mut(&b).expect("victim bucket exists");
                bucket.remove(i);
                if bucket.is_empty() {
                    inner.buckets.remove(&b);
                }
                inner.len -= 1;
                crate::telemetry::pool_evictions().incr();
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::uniform;
    use dtc_formats::CsrMatrix;

    fn key_of(a: &CsrMatrix, config: &EngineConfig) -> PoolKey {
        PoolKey::new(EngineKind::Dtc, config, KeyMaterial::of(a))
    }

    fn prepare_dtc<'a>(
        a: &'a CsrMatrix,
        config: &EngineConfig,
    ) -> impl FnOnce() -> Result<Box<dyn SpmmEngine>, DtcError> + 'a {
        let config = config.clone();
        move || dtc_core::prepare(EngineKind::Dtc, &config, a)
    }

    #[test]
    fn same_key_hits_and_shares_the_engine() {
        let pool = EnginePool::new(PoolConfig::default());
        let config = EngineConfig::default();
        let a = uniform(96, 96, 700, 9001);
        let first = pool.get_or_prepare(key_of(&a, &config), prepare_dtc(&a, &config)).unwrap();
        assert!(!first.hit);
        let again = pool.get_or_prepare(key_of(&a, &config), prepare_dtc(&a, &config)).unwrap();
        assert!(again.hit);
        assert!(Arc::ptr_eq(&first.engine, &again.engine));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn distinct_configs_get_distinct_engines() {
        let pool = EnginePool::new(PoolConfig::default());
        let a = uniform(96, 96, 700, 9002);
        let tf32 = EngineConfig::default();
        let fp16 = EngineConfig { precision: dtc_core::Precision::Fp16, ..EngineConfig::default() };
        let e1 = pool.get_or_prepare(key_of(&a, &tf32), prepare_dtc(&a, &tf32)).unwrap();
        let e2 = pool.get_or_prepare(key_of(&a, &fp16), prepare_dtc(&a, &fp16)).unwrap();
        assert!(!e2.hit, "different config fingerprint must be a different entry");
        assert!(!Arc::ptr_eq(&e1.engine, &e2.engine));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn crafted_primary_collision_is_served_correctly() {
        // Two different matrices forced onto the SAME primary bucket: full
        // key verification must keep them apart — tenant B must never
        // receive tenant A's engine.
        let pool = EnginePool::new(PoolConfig::default());
        let config = EngineConfig::default();
        let a = uniform(96, 96, 500, 9003);
        let b = uniform(64, 64, 300, 9004);
        let forced = 0xC011_1DED_C011_1DEDu64;
        let ea = pool.fetch(forced, key_of(&a, &config), prepare_dtc(&a, &config)).unwrap();
        let eb = pool.fetch(forced, key_of(&b, &config), prepare_dtc(&b, &config)).unwrap();
        assert!(!eb.hit, "collision must be detected, not served");
        assert_eq!(ea.engine.rows(), 96);
        assert_eq!(eb.engine.rows(), 64, "B must get its own engine");
        // Both now hit in the shared bucket.
        assert!(pool.fetch(forced, key_of(&a, &config), prepare_dtc(&a, &config)).unwrap().hit);
        assert!(pool.fetch(forced, key_of(&b, &config), prepare_dtc(&b, &config)).unwrap().hit);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn eviction_respects_warmup_pins() {
        // capacity 2, warmup 2: entries become evictable after 2 uses.
        let pool = EnginePool::new(PoolConfig { capacity: 2, warmup_uses: 2 });
        let config = EngineConfig::default();
        let a = uniform(64, 64, 300, 9005);
        let b = uniform(64, 64, 300, 9006);
        let c = uniform(64, 64, 300, 9007);
        pool.get_or_prepare(key_of(&a, &config), prepare_dtc(&a, &config)).unwrap();
        pool.get_or_prepare(key_of(&b, &config), prepare_dtc(&b, &config)).unwrap();
        // Both cold (1 use each < warmup 2): a third key must be refused.
        let err = pool.get_or_prepare(key_of(&c, &config), prepare_dtc(&c, &config)).unwrap_err();
        assert!(matches!(err, DtcError::PoolExhausted { capacity: 2 }));
        assert_eq!(pool.len(), 2);
        // Warm A past its pin; B stays cold. Inserting C must now evict A
        // (the only evictable entry), never the pinned B.
        pool.get_or_prepare(key_of(&a, &config), prepare_dtc(&a, &config)).unwrap();
        let fc = pool.get_or_prepare(key_of(&c, &config), prepare_dtc(&c, &config)).unwrap();
        assert!(!fc.hit);
        assert_eq!(pool.len(), 2);
        // B survived the eviction (still resident = hit).
        assert!(pool.get_or_prepare(key_of(&b, &config), prepare_dtc(&b, &config)).unwrap().hit);
        // A was evicted (miss again). B's slot got warmed by the hit above,
        // so the pool evicts it now rather than refusing.
        assert!(!pool.get_or_prepare(key_of(&a, &config), prepare_dtc(&a, &config)).unwrap().hit);
    }

    #[test]
    fn failed_prepare_is_not_cached() {
        let pool = EnginePool::new(PoolConfig::default());
        let config = EngineConfig::default();
        // Non-square matrix: TCGNN preparation fails.
        let a = uniform(64, 32, 128, 9008);
        let key = PoolKey::new(EngineKind::Tcgnn, &config, KeyMaterial::of(&a));
        let err = pool
            .get_or_prepare(key.clone(), || dtc_core::prepare(EngineKind::Tcgnn, &config, &a))
            .unwrap_err();
        assert!(matches!(err, DtcError::Format(_)));
        assert_eq!(pool.len(), 0, "failed prepare must not occupy a slot");
        // A later request with a working builder succeeds under the same key.
        let ok = pool
            .get_or_prepare(key, || dtc_core::prepare(EngineKind::Cusparse, &config, &a))
            .unwrap();
        assert!(!ok.hit);
        assert_eq!(ok.engine.rows(), 64);
    }
}
