//! The keyed engine pool: prepared [`SpmmEngine`]s cached across requests.
//!
//! Pool identity is the triple the paper's amortization argument needs:
//! *which matrix* ([`KeyMaterial`], the verified conversion-cache identity
//! from `dtc-core`), *which configuration*
//! ([`EngineConfig::fingerprint`] — two tenants asking for the same matrix
//! under different precisions must not share an engine), and *which
//! device/engine family*. Entries are bucketed by a single 64-bit primary
//! hash and **verified by full key equality on every hit** — the same
//! discipline as the conversion cache, so a crafted primary-hash collision
//! is detected and both engines coexist instead of one tenant silently
//! receiving another tenant's engine.
//!
//! Concurrency: one prepare per key. Each slot holds an
//! [`OnceLock`]; concurrent same-key requests all land on the same slot
//! and `get_or_init` blocks the laggards while the first caller pays the
//! (reorder → convert → select) build, so a thundering herd of identical
//! requests costs exactly one conversion-cache miss.
//!
//! Eviction is LRU **with warmup pins**: an entry that has served fewer
//! than [`PoolConfig::warmup_uses`] requests is still amortizing its
//! conversion cost and cannot be evicted. If every resident entry is
//! pinned and the pool is full, a new key is refused with
//! [`DtcError::PoolExhausted`] rather than thrashing a cold engine.

use dtc_core::{DtcError, EngineConfig, EngineKind, KeyMaterial, SpmmEngine};
use dtc_par::hash::fnv1a;
use dtc_par::FrontTier;
use dtc_verify::PoolEvent;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Pool event log (for the sched protocol lints)
// ---------------------------------------------------------------------------

static POOL_EVENT_LOG_ON: AtomicBool = AtomicBool::new(false);

fn pool_event_log() -> &'static Mutex<Vec<PoolEvent>> {
    static LOG: OnceLock<Mutex<Vec<PoolEvent>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

/// Switches pool-event capture on or off (off by default; enabling does
/// not clear previously captured events). While on, every pool emits
/// [`PoolEvent`]s at its protocol points — slot insert, engine publish,
/// slot removal and front-tier invalidation — for
/// [`dtc_verify::verify_pool_events`] to audit. Used by `schedcheck` and
/// the protocol tests; the log is process-wide.
pub fn set_pool_event_log(on: bool) {
    POOL_EVENT_LOG_ON.store(on, Ordering::Relaxed);
}

/// Drains and returns every captured pool event, in emission order.
pub fn drain_pool_events() -> Vec<PoolEvent> {
    std::mem::take(&mut *pool_event_log().lock().unwrap_or_else(std::sync::PoisonError::into_inner))
}

/// Appends events under ONE log-lock acquisition, so protocol pairs that
/// the lints require to be adjacent (remove + front-invalidate, emitted
/// from the same pool critical section) cannot be split by a concurrent
/// pool's events.
fn log_pool_events(events: &[PoolEvent]) {
    if POOL_EVENT_LOG_ON.load(Ordering::Relaxed) {
        pool_event_log()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .extend_from_slice(events);
    }
}

/// Full pool identity of a prepared engine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PoolKey {
    /// Engine family requested by the tenant.
    pub kind: EngineKind,
    /// [`dtc_sim::Device::fingerprint`] of the target device.
    pub device: u64,
    /// [`EngineConfig::fingerprint`] of the tenant's configuration.
    pub config: u64,
    /// Identity of the sparse matrix.
    pub material: KeyMaterial,
}

impl PoolKey {
    /// Builds the key for a tenant request.
    pub fn new(kind: EngineKind, config: &EngineConfig, material: KeyMaterial) -> Self {
        PoolKey {
            kind,
            device: config.device.fingerprint(),
            config: config.fingerprint(),
            material,
        }
    }

    /// The 64-bit primary bucket hash (FNV-1a over all components). A
    /// primary collision is survivable: buckets verify full key equality.
    pub fn primary(&self) -> u64 {
        let kind = match self.kind {
            EngineKind::Dtc => 1u64,
            EngineKind::Iterative => 2,
            EngineKind::Cusparse => 3,
            EngineKind::Sputnik => 4,
            EngineKind::Tcgnn => 5,
            _ => 0,
        };
        fnv1a(
            dtc_par::hash::FNV_OFFSET,
            [kind, self.device, self.config, self.material.fingerprint()].into_iter(),
        )
    }
}

/// Pool sizing and eviction policy.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Maximum resident engines.
    pub capacity: usize,
    /// Requests an entry must serve before it becomes evictable (the
    /// warmup pin): evicting an engine that has not yet amortized its
    /// conversion cost only converts it again on the next request.
    pub warmup_uses: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig { capacity: 8, warmup_uses: 2 }
    }
}

type EngineCell = Arc<OnceLock<Result<Arc<dyn SpmmEngine>, DtcError>>>;

/// One resident entry.
struct Slot {
    key: PoolKey,
    /// The primary bucket hash this slot is filed under (also its front-
    /// tier slot hash), kept so removal can unfile it without rehashing.
    primary: u64,
    cell: EngineCell,
    /// Requests served (including the preparing one).
    uses: u64,
    /// Recency tick of the last request.
    last_use: u64,
}

/// Pool state: a slot arena indexed by stable `usize` handles, the exact
/// bucket map (primary hash → slot indices, verified by full `PoolKey`
/// equality), and the lossy front tier (primary hash → slot index, also
/// verified by full key equality). Everything lives under one `Mutex`, so
/// the front tier can never disagree with the arena about residency —
/// every removal invalidates the front slot in the same critical section.
struct Inner {
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    buckets: HashMap<u64, Vec<usize>>,
    front: FrontTier<PoolKey, usize>,
    len: usize,
    tick: u64,
}

/// A successful pool fetch: the prepared engine plus whether it was
/// already resident.
pub struct Fetched {
    /// The prepared engine (shared: the pool keeps its own reference).
    pub engine: Arc<dyn SpmmEngine>,
    /// `true` when the engine was already resident (no prepare paid).
    pub hit: bool,
}

impl std::fmt::Debug for Fetched {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fetched")
            .field("engine", &self.engine.name())
            .field("hit", &self.hit)
            .finish()
    }
}

/// The engine pool. Cheap to share behind an `Arc`; all methods take
/// `&self`.
pub struct EnginePool {
    config: PoolConfig,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for EnginePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnginePool")
            .field("config", &self.config)
            .field("len", &self.len())
            .finish()
    }
}

impl EnginePool {
    /// Creates an empty pool.
    pub fn new(config: PoolConfig) -> Self {
        EnginePool {
            config,
            inner: Mutex::new(Inner {
                slots: Vec::new(),
                free: Vec::new(),
                buckets: HashMap::new(),
                // At least 64 slots so the front tier is never the
                // capacity bottleneck for a default-sized pool.
                front: FrontTier::new("pool", config.capacity.max(64)),
                len: 0,
                tick: 0,
            }),
        }
    }

    /// Resident engine count (including ones still preparing).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the engine for `key`, preparing (and inserting) on miss via
    /// `build`. Concurrent calls with the same key coalesce into a single
    /// `build`.
    ///
    /// # Errors
    ///
    /// [`DtcError::PoolExhausted`] when the pool is full of warmup-pinned
    /// entries; whatever `build` returns when preparation fails (a failed
    /// prepare is not cached — the next request retries).
    pub fn get_or_prepare(
        &self,
        key: PoolKey,
        build: impl FnOnce() -> Result<Box<dyn SpmmEngine>, DtcError>,
    ) -> Result<Fetched, DtcError> {
        self.fetch(key.primary(), key, build)
    }

    /// The pool core, keyed explicitly so tests can force primary-hash
    /// collisions.
    fn fetch(
        &self,
        primary: u64,
        key: PoolKey,
        build: impl FnOnce() -> Result<Box<dyn SpmmEngine>, DtcError>,
    ) -> Result<Fetched, DtcError> {
        let (cell, hit) = {
            let mut inner = self.inner.lock().unwrap();
            let inner = &mut *inner;
            inner.tick += 1;
            let tick = inner.tick;
            match Self::resident_idx(inner, primary, &key) {
                Some(idx) => {
                    let slot = inner.slots[idx].as_mut().expect("resident slot");
                    slot.uses += 1;
                    slot.last_use = tick;
                    crate::telemetry::pool_hits().incr();
                    (Arc::clone(&slot.cell), true)
                }
                None => {
                    if inner.len >= self.config.capacity {
                        self.evict_lru(inner)?;
                    }
                    let cell: EngineCell = Arc::new(OnceLock::new());
                    let slot = Slot {
                        key: key.clone(),
                        primary,
                        cell: Arc::clone(&cell),
                        uses: 1,
                        last_use: tick,
                    };
                    let idx = match inner.free.pop() {
                        Some(i) => {
                            inner.slots[i] = Some(slot);
                            i
                        }
                        None => {
                            inner.slots.push(Some(slot));
                            inner.slots.len() - 1
                        }
                    };
                    inner.buckets.entry(primary).or_default().push(idx);
                    inner.front.insert(primary, key.clone(), idx);
                    inner.len += 1;
                    // The protocol invariant the sched lints audit: the slot
                    // is filed (here, under the pool lock) BEFORE the engine
                    // build runs, so same-key callers coalesce onto the cell.
                    log_pool_events(&[PoolEvent::Insert { primary }]);
                    crate::telemetry::pool_misses().incr();
                    (cell, false)
                }
            }
        };
        // Prepare outside the pool lock: other keys must not wait on this
        // build, and same-key callers block on the OnceLock instead.
        let result = cell
            .get_or_init(|| {
                let _span = dtc_telemetry::span("serve.prepare");
                let built = build().map(Arc::from);
                if built.is_ok() {
                    log_pool_events(&[PoolEvent::Publish { primary }]);
                }
                built
            })
            .clone();
        match result {
            Ok(engine) => Ok(Fetched { engine, hit }),
            Err(e) => {
                // Drop the failed slot so the next request can retry.
                let mut inner = self.inner.lock().unwrap();
                let inner = &mut *inner;
                if let Some(idx) = (0..inner.slots.len()).find(|&i| {
                    inner.slots[i]
                        .as_ref()
                        .is_some_and(|s| s.key == key && Arc::ptr_eq(&s.cell, &cell))
                }) {
                    Self::remove_slot(inner, idx);
                }
                Err(e)
            }
        }
    }

    /// Two-tier resident lookup: a lossy front probe on the primary hash
    /// (verified by full [`PoolKey`] equality), falling through to the
    /// exact bucket walk, which refills the front slot on a hit.
    fn resident_idx(inner: &mut Inner, primary: u64, key: &PoolKey) -> Option<usize> {
        if let Some(idx) = inner.front.get(primary, key) {
            // Arena indices are reused, so re-verify against the slot
            // itself. Removal invalidates the front entry in the same
            // critical section, so this only fires if the global switch
            // was off at removal time — correctness must not depend on
            // the switch's history either way.
            if inner.slots.get(idx).and_then(Option::as_ref).is_some_and(|s| s.key == *key) {
                return Some(idx);
            }
            inner.front.invalidate(primary, key);
        }
        let idx = inner
            .buckets
            .get(&primary)?
            .iter()
            .copied()
            .find(|&i| inner.slots[i].as_ref().is_some_and(|s| s.key == *key))?;
        inner.front.insert(primary, key.clone(), idx);
        Some(idx)
    }

    /// Drops every resident engine prepared from the matrix identified by
    /// `material`, across all engine families, devices, and configurations.
    /// Returns how many slots were removed.
    ///
    /// This is the pool's half of the delta-update invalidation contract:
    /// after a tenant edits a matrix in place, every pooled engine keyed by
    /// the pre-edit [`KeyMaterial`] is stale, and the front tier is purged
    /// **by key** (inside [`remove_slot`](Self::remove_slot)'s critical
    /// section) rather than by slot index, so a colliding resident entry
    /// for a different key is left untouched. Entries still inside their
    /// warmup pin are removed too — staleness overrides amortization.
    pub fn invalidate_material(&self, material: &KeyMaterial) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        let stale: Vec<usize> = (0..inner.slots.len())
            .filter(|&i| inner.slots[i].as_ref().is_some_and(|s| s.key.material == *material))
            .collect();
        for &idx in &stale {
            Self::remove_slot(inner, idx);
        }
        if !stale.is_empty() {
            crate::telemetry::pool_invalidations().add(stale.len() as u64);
        }
        stale.len()
    }

    /// Unfiles a slot from the arena, its bucket, and the front tier.
    fn remove_slot(inner: &mut Inner, idx: usize) {
        let slot = inner.slots[idx].take().expect("removing a resident slot");
        if let Some(bucket) = inner.buckets.get_mut(&slot.primary) {
            bucket.retain(|&i| i != idx);
            if bucket.is_empty() {
                inner.buckets.remove(&slot.primary);
            }
        }
        inner.front.invalidate(slot.primary, &slot.key);
        // One append: removal and front invalidation happen in this same
        // pool critical section, and the lint checks they stay adjacent.
        log_pool_events(&[
            PoolEvent::Remove { primary: slot.primary },
            PoolEvent::FrontInvalidate { primary: slot.primary },
        ]);
        inner.free.push(idx);
        inner.len -= 1;
    }

    /// Evicts the least-recently-used entry whose warmup pin has expired.
    fn evict_lru(&self, inner: &mut Inner) -> Result<(), DtcError> {
        let mut victim: Option<(u64, usize)> = None; // (last_use, idx)
        for (i, slot) in inner.slots.iter().enumerate() {
            let Some(slot) = slot else { continue };
            if slot.uses < self.config.warmup_uses {
                continue; // still pinned by warmup
            }
            if victim.is_none_or(|(lu, _)| slot.last_use < lu) {
                victim = Some((slot.last_use, i));
            }
        }
        match victim {
            None => Err(DtcError::PoolExhausted { capacity: self.config.capacity }),
            Some((_, i)) => {
                Self::remove_slot(inner, i);
                crate::telemetry::pool_evictions().incr();
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtc_formats::gen::uniform;
    use dtc_formats::CsrMatrix;

    fn key_of(a: &CsrMatrix, config: &EngineConfig) -> PoolKey {
        PoolKey::new(EngineKind::Dtc, config, KeyMaterial::of(a))
    }

    fn prepare_dtc<'a>(
        a: &'a CsrMatrix,
        config: &EngineConfig,
    ) -> impl FnOnce() -> Result<Box<dyn SpmmEngine>, DtcError> + 'a {
        let config = config.clone();
        move || dtc_core::prepare(EngineKind::Dtc, &config, a)
    }

    #[test]
    fn same_key_hits_and_shares_the_engine() {
        let pool = EnginePool::new(PoolConfig::default());
        let config = EngineConfig::default();
        let a = uniform(96, 96, 700, 9001);
        let first = pool.get_or_prepare(key_of(&a, &config), prepare_dtc(&a, &config)).unwrap();
        assert!(!first.hit);
        let again = pool.get_or_prepare(key_of(&a, &config), prepare_dtc(&a, &config)).unwrap();
        assert!(again.hit);
        assert!(Arc::ptr_eq(&first.engine, &again.engine));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn distinct_configs_get_distinct_engines() {
        let pool = EnginePool::new(PoolConfig::default());
        let a = uniform(96, 96, 700, 9002);
        let tf32 = EngineConfig::default();
        let fp16 = EngineConfig { precision: dtc_core::Precision::Fp16, ..EngineConfig::default() };
        let e1 = pool.get_or_prepare(key_of(&a, &tf32), prepare_dtc(&a, &tf32)).unwrap();
        let e2 = pool.get_or_prepare(key_of(&a, &fp16), prepare_dtc(&a, &fp16)).unwrap();
        assert!(!e2.hit, "different config fingerprint must be a different entry");
        assert!(!Arc::ptr_eq(&e1.engine, &e2.engine));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn crafted_primary_collision_is_served_correctly() {
        // Two different matrices forced onto the SAME primary bucket: full
        // key verification must keep them apart — tenant B must never
        // receive tenant A's engine.
        let pool = EnginePool::new(PoolConfig::default());
        let config = EngineConfig::default();
        let a = uniform(96, 96, 500, 9003);
        let b = uniform(64, 64, 300, 9004);
        let forced = 0xC011_1DED_C011_1DEDu64;
        let ea = pool.fetch(forced, key_of(&a, &config), prepare_dtc(&a, &config)).unwrap();
        let eb = pool.fetch(forced, key_of(&b, &config), prepare_dtc(&b, &config)).unwrap();
        assert!(!eb.hit, "collision must be detected, not served");
        assert_eq!(ea.engine.rows(), 96);
        assert_eq!(eb.engine.rows(), 64, "B must get its own engine");
        // Both now hit in the shared bucket.
        assert!(pool.fetch(forced, key_of(&a, &config), prepare_dtc(&a, &config)).unwrap().hit);
        assert!(pool.fetch(forced, key_of(&b, &config), prepare_dtc(&b, &config)).unwrap().hit);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn eviction_respects_warmup_pins() {
        // capacity 2, warmup 2: entries become evictable after 2 uses.
        let pool = EnginePool::new(PoolConfig { capacity: 2, warmup_uses: 2 });
        let config = EngineConfig::default();
        let a = uniform(64, 64, 300, 9005);
        let b = uniform(64, 64, 300, 9006);
        let c = uniform(64, 64, 300, 9007);
        pool.get_or_prepare(key_of(&a, &config), prepare_dtc(&a, &config)).unwrap();
        pool.get_or_prepare(key_of(&b, &config), prepare_dtc(&b, &config)).unwrap();
        // Both cold (1 use each < warmup 2): a third key must be refused.
        let err = pool.get_or_prepare(key_of(&c, &config), prepare_dtc(&c, &config)).unwrap_err();
        assert!(matches!(err, DtcError::PoolExhausted { capacity: 2 }));
        assert_eq!(pool.len(), 2);
        // Warm A past its pin; B stays cold. Inserting C must now evict A
        // (the only evictable entry), never the pinned B.
        pool.get_or_prepare(key_of(&a, &config), prepare_dtc(&a, &config)).unwrap();
        let fc = pool.get_or_prepare(key_of(&c, &config), prepare_dtc(&c, &config)).unwrap();
        assert!(!fc.hit);
        assert_eq!(pool.len(), 2);
        // B survived the eviction (still resident = hit).
        assert!(pool.get_or_prepare(key_of(&b, &config), prepare_dtc(&b, &config)).unwrap().hit);
        // A was evicted (miss again). B's slot got warmed by the hit above,
        // so the pool evicts it now rather than refusing.
        assert!(!pool.get_or_prepare(key_of(&a, &config), prepare_dtc(&a, &config)).unwrap().hit);
    }

    /// Serializes the tests that toggle or observe the process-wide front
    /// switch (cargo runs tests of one binary concurrently).
    static SWITCH: Mutex<()> = Mutex::new(());

    #[test]
    fn eviction_invalidates_the_front_tier() {
        let _g = SWITCH.lock().unwrap();
        // An evicted engine must be gone from BOTH tiers: a front entry
        // surviving its slot's eviction would point at a recycled arena
        // index and could hand one tenant another tenant's engine.
        let pool = EnginePool::new(PoolConfig { capacity: 2, warmup_uses: 1 });
        let config = EngineConfig::default();
        let a = uniform(64, 64, 300, 9101);
        let b = uniform(64, 64, 300, 9102);
        let c = uniform(48, 48, 200, 9103);
        pool.get_or_prepare(key_of(&a, &config), prepare_dtc(&a, &config)).unwrap();
        assert!(pool.get_or_prepare(key_of(&a, &config), prepare_dtc(&a, &config)).unwrap().hit);
        pool.get_or_prepare(key_of(&b, &config), prepare_dtc(&b, &config)).unwrap();
        assert!(pool.get_or_prepare(key_of(&b, &config), prepare_dtc(&b, &config)).unwrap().hit);
        // C evicts A (the LRU); A's arena slot index is recycled for C.
        let fc = pool.get_or_prepare(key_of(&c, &config), prepare_dtc(&c, &config)).unwrap();
        assert!(!fc.hit);
        assert_eq!(fc.engine.rows(), 48);
        // A must now be a full miss — never front-served from the stale slot.
        let fa = pool.get_or_prepare(key_of(&a, &config), prepare_dtc(&a, &config)).unwrap();
        assert!(!fa.hit, "evicted engine must not be served from the front tier");
        assert_eq!(fa.engine.rows(), 64);
    }

    #[test]
    fn exact_only_pool_is_bitwise_identical() {
        let _g = SWITCH.lock().unwrap();
        // With the front tier disabled the exact bucket walk must resolve
        // the very same resident engine (Arc identity).
        let pool = EnginePool::new(PoolConfig::default());
        let config = EngineConfig::default();
        let a = uniform(80, 80, 400, 9104);
        let two_tier = pool.get_or_prepare(key_of(&a, &config), prepare_dtc(&a, &config)).unwrap();
        dtc_par::set_front_tier_enabled(false);
        let exact_only =
            pool.get_or_prepare(key_of(&a, &config), prepare_dtc(&a, &config)).unwrap();
        dtc_par::set_front_tier_enabled(true);
        assert!(exact_only.hit);
        assert!(Arc::ptr_eq(&two_tier.engine, &exact_only.engine));
    }

    #[test]
    fn pool_event_stream_passes_the_protocol_lints() {
        let _g = SWITCH.lock().unwrap();
        // Capture the real protocol: two misses, hits, then an eviction.
        // The captured stream must satisfy every pool lint — insert before
        // publish, remove adjacent to its front invalidation.
        set_pool_event_log(true);
        let _ = drain_pool_events();
        let pool = EnginePool::new(PoolConfig { capacity: 2, warmup_uses: 1 });
        let config = EngineConfig::default();
        let a = uniform(64, 64, 300, 9201);
        let b = uniform(64, 64, 300, 9202);
        let c = uniform(48, 48, 200, 9203);
        pool.get_or_prepare(key_of(&a, &config), prepare_dtc(&a, &config)).unwrap();
        pool.get_or_prepare(key_of(&a, &config), prepare_dtc(&a, &config)).unwrap();
        pool.get_or_prepare(key_of(&b, &config), prepare_dtc(&b, &config)).unwrap();
        pool.get_or_prepare(key_of(&b, &config), prepare_dtc(&b, &config)).unwrap();
        pool.get_or_prepare(key_of(&c, &config), prepare_dtc(&c, &config)).unwrap(); // evicts A
        set_pool_event_log(false);
        let events = drain_pool_events();

        let pa = key_of(&a, &config).primary();
        assert!(events.contains(&PoolEvent::Insert { primary: pa }), "{events:?}");
        assert!(events.contains(&PoolEvent::Publish { primary: pa }), "{events:?}");
        let rm = events
            .iter()
            .position(|&e| e == PoolEvent::Remove { primary: pa })
            .expect("A was evicted");
        assert_eq!(events.get(rm + 1), Some(&PoolEvent::FrontInvalidate { primary: pa }));

        let diags = dtc_verify::verify_pool_events("pool", &events);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn invalidate_material_drops_every_family_but_spares_others() {
        // One matrix pooled under two configs plus a baseline family, a
        // second matrix resident alongside: invalidating the first matrix
        // must drop exactly its three slots — warmup pins notwithstanding —
        // and leave the bystander resident (still a hit).
        let pool = EnginePool::new(PoolConfig::default());
        let a = uniform(96, 96, 700, 9301);
        let b = uniform(64, 64, 300, 9302);
        let tf32 = EngineConfig::default();
        let fp16 = EngineConfig { precision: dtc_core::Precision::Fp16, ..EngineConfig::default() };
        pool.get_or_prepare(key_of(&a, &tf32), prepare_dtc(&a, &tf32)).unwrap();
        pool.get_or_prepare(key_of(&a, &fp16), prepare_dtc(&a, &fp16)).unwrap();
        let ck = PoolKey::new(EngineKind::Cusparse, &tf32, KeyMaterial::of(&a));
        pool.get_or_prepare(ck.clone(), || dtc_core::prepare(EngineKind::Cusparse, &tf32, &a))
            .unwrap();
        pool.get_or_prepare(key_of(&b, &tf32), prepare_dtc(&b, &tf32)).unwrap();
        assert_eq!(pool.len(), 4);

        assert_eq!(pool.invalidate_material(&KeyMaterial::of(&a)), 3);
        assert_eq!(pool.len(), 1);
        // The bystander survived; every purged key is a cold miss again.
        assert!(pool.get_or_prepare(key_of(&b, &tf32), prepare_dtc(&b, &tf32)).unwrap().hit);
        assert!(!pool.get_or_prepare(key_of(&a, &tf32), prepare_dtc(&a, &tf32)).unwrap().hit);
        assert!(
            !pool
                .get_or_prepare(ck, || dtc_core::prepare(EngineKind::Cusparse, &tf32, &a))
                .unwrap()
                .hit
        );
        // Purging again finds exactly what was re-prepared since.
        assert_eq!(pool.invalidate_material(&KeyMaterial::of(&b)), 1);
        assert_eq!(pool.invalidate_material(&KeyMaterial::of(&a)), 2);
        assert!(pool.is_empty());
    }

    #[test]
    fn failed_prepare_is_not_cached() {
        let pool = EnginePool::new(PoolConfig::default());
        let config = EngineConfig::default();
        // Non-square matrix: TCGNN preparation fails.
        let a = uniform(64, 32, 128, 9008);
        let key = PoolKey::new(EngineKind::Tcgnn, &config, KeyMaterial::of(&a));
        let err = pool
            .get_or_prepare(key.clone(), || dtc_core::prepare(EngineKind::Tcgnn, &config, &a))
            .unwrap_err();
        assert!(matches!(err, DtcError::Format(_)));
        assert_eq!(pool.len(), 0, "failed prepare must not occupy a slot");
        // A later request with a working builder succeeds under the same key.
        let ok = pool
            .get_or_prepare(key, || dtc_core::prepare(EngineKind::Cusparse, &config, &a))
            .unwrap();
        assert!(!ok.hit);
        assert_eq!(ok.engine.rows(), 64);
    }
}
