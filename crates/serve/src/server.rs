//! Admission, coalescing and batched execution: the request front end.
//!
//! Requests name a (tenant, engine family, [`EngineConfig`], matrix, dense
//! operand). Admission bounds the queue ([`DtcError::Admission`] when
//! full); the server drains the queue in batches, coalescing every queued
//! request that shares the front request's [`PoolKey`] into **one**
//! N-column SpMM: the dense operands are concatenated column-wise, the
//! prepared engine executes once, and the output is split back per
//! request. Column-wise concatenation is numerically free — every SpMM
//! kernel in the workspace computes output columns independently — so a
//! coalesced result is bitwise-identical to serving the request alone
//! (pinned by `tests/serve.rs`).
//!
//! With [`ServeConfig::verify`] set, every batch passes the dtc-verify
//! structural/resource lint replay over the engine's lowered trace before
//! executing — the per-request safety gate ([`DtcError::Verify`] on any
//! error-severity diagnostic).

use crate::pool::{EnginePool, PoolKey};
use crate::ServeConfig;
use dtc_core::{DtcError, EngineConfig, EngineKind, KeyMaterial, SpmmEngine};
use dtc_formats::{CsrMatrix, DenseMatrix};
use dtc_par::ShardPlan;
use dtc_verify::{SchedCase, Severity, TraceCase};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Admission-time static verification of a freshly prepared engine: the
/// lints that can run *before the first execute*, so an illegal engine is
/// rejected at prepare time ([`DtcError::Verify`]) instead of failing —
/// or silently miscounting — mid-request.
///
/// Two families run:
///
/// - the dtc-verify trace lints over the engine's lowering at a small
///   probe width (structural invariants, SM resource legality, cost-table
///   coverage — a device model with a zeroed cost table is caught here);
/// - the concurrency plan lints over the [`ShardPlan`] the parallel
///   execution paths would cut for this engine's row space (chunk/band
///   coverage and disjointness).
///
/// The server composes this into the pool's prepare closure when
/// [`ServeConfig::admission_verify`] is set (the default), so a failed
/// check behaves exactly like a failed prepare: the error surfaces to the
/// requesting batch and nothing is cached — a later request under a fixed
/// configuration retries cleanly.
pub fn admission_check(engine: &dyn SpmmEngine, config: &EngineConfig) -> Result<(), DtcError> {
    let _span = dtc_telemetry::span("serve.admission_check");
    const PROBE_COLS: usize = 8;
    let trace = engine.trace(PROBE_COLS, &config.device, false);
    let case = TraceCase::new(engine.name(), &config.device, &trace);
    let mut errors: Vec<String> = dtc_verify::verify_trace(&case)
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.to_string())
        .collect();

    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let plan = ShardPlan::even(engine.rows(), threads);
    errors.extend(
        dtc_verify::verify_plan(&SchedCase::new(engine.name(), &plan))
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.to_string()),
    );

    match errors.first() {
        Some(first) => Err(DtcError::Verify {
            kernel: engine.name().to_string(),
            diagnostic: first.clone(),
            errors: errors.len(),
        }),
        None => Ok(()),
    }
}

/// One tenant request: multiply `matrix` by `b` on an engine of family
/// `kind` prepared under `config`.
#[derive(Debug, Clone)]
pub struct Request {
    /// Requesting tenant (used for reporting only).
    pub tenant: usize,
    /// Engine family to serve this request with.
    pub kind: EngineKind,
    /// Tenant configuration (hashed into the pool key).
    pub config: EngineConfig,
    /// The sparse operand.
    pub matrix: Arc<CsrMatrix>,
    /// The dense operand (rows must equal `matrix.cols()`).
    pub b: DenseMatrix,
}

/// One served request's result.
#[derive(Debug)]
pub struct Response {
    /// Admission sequence number (matches the value `admit` returned).
    pub seq: u64,
    /// Requesting tenant.
    pub tenant: usize,
    /// The SpMM output for this request's own columns.
    pub c: DenseMatrix,
}

/// One drained batch: the coalesced responses plus batch metadata.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-request results, in admission order.
    pub responses: Vec<Response>,
    /// Number of requests coalesced into the single execution.
    pub batch_size: usize,
    /// Total dense columns of the batched execution.
    pub batch_cols: usize,
    /// Whether the engine came from the pool without a prepare.
    pub pool_hit: bool,
}

struct Pending {
    seq: u64,
    req: Request,
    key: PoolKey,
}

/// The multi-tenant SpMM server: bounded admission queue in front of a
/// keyed [`EnginePool`]. All methods take `&self`; share behind an `Arc`.
pub struct SpmmServer {
    cfg: ServeConfig,
    pool: EnginePool,
    queue: Mutex<VecDeque<Pending>>,
    next_seq: Mutex<u64>,
}

impl std::fmt::Debug for SpmmServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpmmServer")
            .field("cfg", &self.cfg)
            .field("queued", &self.queue.lock().unwrap().len())
            .field("pool", &self.pool)
            .finish()
    }
}

impl SpmmServer {
    /// Creates a server with an empty queue and pool.
    pub fn new(cfg: ServeConfig) -> Self {
        SpmmServer {
            pool: EnginePool::new(cfg.pool),
            cfg,
            queue: Mutex::new(VecDeque::new()),
            next_seq: Mutex::new(0),
        }
    }

    /// The underlying engine pool (for inspection).
    pub fn pool(&self) -> &EnginePool {
        &self.pool
    }

    /// Currently queued (admitted, unserved) requests.
    pub fn queued(&self) -> usize {
        self.queue.lock().unwrap().len()
    }

    /// Admits a request into the queue, returning its sequence number.
    ///
    /// # Errors
    ///
    /// [`DtcError::Admission`] when the request is malformed (dense rows ≠
    /// sparse cols) or the queue is at `max_queue`.
    pub fn admit(&self, req: Request) -> Result<u64, DtcError> {
        if req.b.rows() != req.matrix.cols() {
            crate::telemetry::requests_rejected().incr();
            return Err(DtcError::Admission {
                reason: format!(
                    "dense operand has {} rows, matrix has {} cols",
                    req.b.rows(),
                    req.matrix.cols()
                ),
            });
        }
        let key = PoolKey::new(req.kind, &req.config, KeyMaterial::of(&req.matrix));
        let mut queue = self.queue.lock().unwrap();
        if queue.len() >= self.cfg.max_queue {
            crate::telemetry::requests_rejected().incr();
            return Err(DtcError::Admission {
                reason: format!("queue full ({} requests)", self.cfg.max_queue),
            });
        }
        let seq = {
            let mut next = self.next_seq.lock().unwrap();
            *next += 1;
            *next
        };
        queue.push_back(Pending { seq, req, key });
        crate::telemetry::requests_admitted().incr();
        Ok(seq)
    }

    /// Drains and executes one batch: the front request plus every queued
    /// request sharing its pool key (up to `max_batch`), coalesced into a
    /// single N-column SpMM. Returns `None` when the queue is empty.
    ///
    /// On error the whole batch fails (the requests are consumed); the
    /// engine-prepare, verify-gate and execution errors all surface here.
    pub fn serve_next_batch(&self) -> Option<Result<BatchOutcome, DtcError>> {
        let batch: Vec<Pending> = {
            let mut queue = self.queue.lock().unwrap();
            let front = queue.pop_front()?;
            let mut batch = vec![front];
            let mut rest = VecDeque::with_capacity(queue.len());
            while let Some(p) = queue.pop_front() {
                if batch.len() < self.cfg.max_batch && p.key == batch[0].key {
                    batch.push(p);
                } else {
                    rest.push_back(p);
                }
            }
            *queue = rest;
            batch
        };
        crate::telemetry::requests_coalesced().add(batch.len() as u64 - 1);
        Some(self.execute_batch(batch))
    }

    fn execute_batch(&self, batch: Vec<Pending>) -> Result<BatchOutcome, DtcError> {
        let _span = dtc_telemetry::span("serve.batch");
        let head = &batch[0].req;
        let fetched = self.pool.get_or_prepare(batch[0].key.clone(), || {
            let engine = dtc_core::prepare(head.kind, &head.config, &head.matrix)?;
            if self.cfg.admission_verify {
                admission_check(engine.as_ref(), &head.config)?;
            }
            Ok(engine)
        })?;
        let engine = fetched.engine;

        // Column-wise concatenation of every request's dense operand.
        let rows = head.b.rows();
        let widths: Vec<usize> = batch.iter().map(|p| p.req.b.cols()).collect();
        let total_cols: usize = widths.iter().sum();
        let mut b = DenseMatrix::zeros(rows, total_cols);
        for r in 0..rows {
            let out = b.row_mut(r);
            let mut at = 0;
            for p in &batch {
                out[at..at + p.req.b.cols()].copy_from_slice(p.req.b.row(r));
                at += p.req.b.cols();
            }
        }

        if self.cfg.verify {
            self.verify_gate(engine.as_ref(), total_cols, &head.config)?;
        }

        let c = engine.execute(&b)?;

        // Split the batched output back per request.
        let mut responses = Vec::with_capacity(batch.len());
        let mut at = 0;
        for p in &batch {
            let w = p.req.b.cols();
            let mut own = DenseMatrix::zeros(c.rows(), w);
            for r in 0..c.rows() {
                own.row_mut(r).copy_from_slice(&c.row(r)[at..at + w]);
            }
            at += w;
            responses.push(Response { seq: p.seq, tenant: p.req.tenant, c: own });
        }
        Ok(BatchOutcome {
            responses,
            batch_size: batch.len(),
            batch_cols: total_cols,
            pool_hit: fetched.hit,
        })
    }

    /// The per-request safety gate: replays the dtc-verify structural and
    /// resource lints over the engine's lowered trace for this batch width.
    fn verify_gate(
        &self,
        engine: &dyn SpmmEngine,
        n: usize,
        config: &EngineConfig,
    ) -> Result<(), DtcError> {
        let trace = engine.trace(n, &config.device, false);
        let case = TraceCase::new(engine.name(), &config.device, &trace);
        let diags = dtc_verify::verify_trace(&case);
        let errors: Vec<String> =
            diags.iter().filter(|d| d.severity == Severity::Error).map(|d| d.to_string()).collect();
        if let Some(first) = errors.first() {
            return Err(DtcError::Verify {
                kernel: engine.name().to_string(),
                diagnostic: first.clone(),
                errors: errors.len(),
            });
        }
        Ok(())
    }

    /// Tears down every cached artifact derived from the matrix identified
    /// by `material`, after a tenant edited that matrix in place (e.g. via
    /// [`dtc_core::DtcSpmm::apply_delta`] or by re-submitting new
    /// triplets). Returns the number of pooled engines dropped.
    ///
    /// Two layers are purged, each by key so colliding residents survive:
    /// the engine pool (every family/device/config slot whose
    /// [`KeyMaterial`] matches, front tier included) and the process-wide
    /// ME-TCF conversion cache in `dtc-core` (exact bucket and lossy front
    /// tier). Queued requests are untouched: they carry their own
    /// `Arc<CsrMatrix>` snapshot, and a request admitted after the edit
    /// carries post-edit key material, so it can never resolve to a
    /// pre-edit engine once this returns.
    pub fn invalidate_matrix(&self, material: &KeyMaterial) -> usize {
        let dropped = self.pool.invalidate_material(material);
        dtc_core::invalidate_conversion(material);
        dropped
    }

    /// Convenience: admit one request and serve it immediately (it may
    /// still coalesce with requests other threads queued in between).
    /// Returns this request's own result.
    ///
    /// # Errors
    ///
    /// Admission, prepare, verify and execution errors.
    pub fn serve_one(&self, req: Request) -> Result<DenseMatrix, DtcError> {
        let seq = self.admit(req)?;
        loop {
            match self.serve_next_batch() {
                None => {
                    // Another thread's batch picked our request up.
                    return Err(DtcError::Admission {
                        reason: "request served by a concurrent batch".into(),
                    });
                }
                Some(Err(e)) => return Err(e),
                Some(Ok(outcome)) => {
                    if let Some(resp) = outcome.responses.into_iter().find(|r| r.seq == seq) {
                        return Ok(resp.c);
                    }
                    // Served someone else's batch; keep draining.
                }
            }
        }
    }
}
