//! Cached handles for the serving layer's registry counters.
//!
//! Naming (all in the process-wide `dtc-telemetry` registry):
//!
//! - `serve.requests.admitted` — requests accepted into the queue;
//! - `serve.requests.coalesced` — requests that rode another request's
//!   batch (batch size minus one, summed over batches);
//! - `serve.requests.rejected` — requests refused at admission;
//! - `serve.pool.hits` / `serve.pool.misses` — engine-pool lookups;
//! - `serve.pool.evictions` — engines evicted by the LRU policy;
//! - `serve.pool.invalidations` — engines dropped because their source
//!   matrix was edited in place (delta-update staleness purge);
//!
//! plus the `serve.batch` span around every batched execution and the
//! `serve.prepare` span around every engine build.

use dtc_telemetry::Counter;
use std::sync::OnceLock;

macro_rules! cached_counter {
    ($fn_name:ident, $name:expr) => {
        /// Cached handle for the registry counter of the same name.
        pub fn $fn_name() -> &'static Counter {
            static C: OnceLock<&'static Counter> = OnceLock::new();
            C.get_or_init(|| dtc_telemetry::counter($name))
        }
    };
}

cached_counter!(requests_admitted, "serve.requests.admitted");
cached_counter!(requests_coalesced, "serve.requests.coalesced");
cached_counter!(requests_rejected, "serve.requests.rejected");
cached_counter!(pool_hits, "serve.pool.hits");
cached_counter!(pool_misses, "serve.pool.misses");
cached_counter!(pool_evictions, "serve.pool.evictions");
cached_counter!(pool_invalidations, "serve.pool.invalidations");
